// Census scenario: who earns >50K? Mine an adult-style census dataset and
// compare what the three correction approaches certify at the same error
// level, including the cost of each.
//
// On adult-like data (large n, strong dependencies) the paper finds the
// approaches nearly agree — most rules are so significant (p <= 1e-12)
// that any reasonable cut-off keeps them. The interesting outputs here are
// the agreement and the runtime gap.
//
//	go run ./examples/census
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro"
)

func main() {
	data, err := repro.UCIStandIn("adult", 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adult stand-in: %d records, %d attributes\n\n",
		data.NumRecords(), data.Schema.NumAttrs())

	const minSup = 2000
	type row struct {
		label string
		res   *repro.Result
		took  time.Duration
	}
	var rows []row
	for _, c := range []struct {
		label string
		m     repro.Method
	}{
		{"Bonferroni (direct)", repro.MethodDirect},
		{"permutation FWER", repro.MethodPermutation},
		{"holdout (BC)", repro.MethodHoldout},
	} {
		start := time.Now()
		res, err := repro.Mine(data, repro.Config{
			MinSup:        minSup,
			Control:       repro.ControlFWER,
			Method:        c.m,
			Permutations:  200,
			Seed:          17,
			HoldoutRandom: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{c.label, res, time.Since(start)})
	}

	fmt.Printf("%-22s %8s %12s %12s %10s\n", "approach", "tested", "significant", "cutoff", "time")
	for _, r := range rows {
		fmt.Printf("%-22s %8d %12d %12.3g %10v\n",
			r.label, r.res.NumTested, len(r.res.Significant), r.res.Cutoff,
			r.took.Round(time.Millisecond))
	}

	fmt.Println("\ntop >50K indicators (Bonferroni):")
	shown := 0
	for _, r := range rows[0].res.Significant {
		if r.Class != ">50K" || len(r.Items) > 3 {
			continue
		}
		fmt.Printf("  %-64s conf=%.2f p=%.2g\n", strings.Join(r.Items, " ^ "), r.Confidence, r.P)
		shown++
		if shown == 5 {
			break
		}
	}

	agree := len(rows[0].res.Significant)
	fmt.Printf("\nOn large, strongly-dependent data the three approaches certify a\n")
	fmt.Printf("similar rule set (~%d rules here); the permutation test's extra\n", agree)
	fmt.Println("cost buys little — exactly the paper's adult/mushroom finding.")
}
