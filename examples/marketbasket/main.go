// Market-basket scenario: general association rules X ⇒ y over retail
// transactions — the classic Agrawal setting that the paper's class
// association rules specialise (§2: "the definitions and methods described
// in the paper can be easily extended to other forms of association
// rules"). One association is planted ({bread, butter} ⇒ milk); everything
// else is noise, and the demo shows how many noise rules survive raw
// p <= 0.05 versus the corrected procedures.
//
//	go run ./examples/marketbasket
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"repro"
)

func main() {
	// Build 3000 synthetic baskets: 30% contain {bread, butter} and then
	// milk with probability 0.8; ten filler products appear independently.
	rng := rand.New(rand.NewPCG(2024, 1))
	fillers := []string{"apples", "beer", "chips", "diapers", "eggs",
		"flour", "grapes", "ham", "iceberg", "jam"}
	var tx [][]string
	for i := 0; i < 3000; i++ {
		var t []string
		if rng.Float64() < 0.3 {
			t = append(t, "bread", "butter")
			if rng.Float64() < 0.8 {
				t = append(t, "milk")
			}
		} else {
			for _, it := range []string{"bread", "butter", "milk"} {
				if rng.Float64() < 0.3 {
					t = append(t, it)
				}
			}
		}
		for _, it := range fillers {
			if rng.Float64() < 0.25 {
				t = append(t, it)
			}
		}
		if len(t) == 0 {
			t = append(t, "eggs")
		}
		tx = append(tx, t)
	}
	data := repro.BasketFromTransactions(tx)
	fmt.Printf("%d transactions over %d products; planted: {bread, butter} => milk (conf 0.8)\n\n",
		data.NumTx, data.NumItems())

	rules, err := repro.MineBasket(data, repro.BasketOptions{
		MinSup:     150,
		MinRuleSup: 75,
		MinConf:    0.4,
	})
	if err != nil {
		log.Fatal(err)
	}
	raw := 0
	for i := range rules {
		if rules[i].P <= 0.05 {
			raw++
		}
	}
	bc := repro.BasketBonferroni(rules, 0.05)
	bh := repro.BasketBH(rules, 0.05)
	perm, err := repro.BasketPermFWER(data, rules, 0.05, 500, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %6d rules\n", "tested", len(rules))
	fmt.Printf("%-28s %6d rules\n", "raw p <= 0.05", raw)
	fmt.Printf("%-28s %6d rules\n", "Bonferroni FWER@5%", len(bc.Significant))
	fmt.Printf("%-28s %6d rules\n", "Benjamini-Hochberg FDR@5%", len(bh.Significant))
	fmt.Printf("%-28s %6d rules\n\n", "permutation FWER@5%", len(perm.Significant))

	fmt.Println("rules certified by the permutation test:")
	for _, i := range perm.Significant {
		fmt.Println("  " + rules[i].Format(data))
	}
}
