// Permutation-cost ladder: demonstrates how much each of the paper's §4.2
// optimisations — the dynamic p-value buffer, Diffsets, and the static
// buffer — cuts the cost of a 300-permutation test on a german-style
// dataset (the workload of Fig 4b).
//
//	go run ./examples/permopt
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	data, err := repro.UCIStandIn("german", 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("german stand-in: %d records, %d attributes; min_sup=60, 300 permutations\n\n",
		data.NumRecords(), data.Schema.NumAttrs())

	fmt.Printf("%-40s %10s %12s %9s\n", "optimisation level", "time", "significant", "speedup")
	var base time.Duration
	for _, opt := range []repro.OptLevel{
		repro.OptNone, repro.OptDynamicBuffer, repro.OptDiffsets, repro.OptStaticBuffer,
	} {
		start := time.Now()
		res, err := repro.Mine(data, repro.Config{
			MinSup:       60,
			Control:      repro.ControlFWER,
			Method:       repro.MethodPermutation,
			Permutations: 300,
			Seed:         1,
			Opt:          opt,
			OptSet:       true,
			Workers:      1, // single-threaded, like the paper's measurements
		})
		if err != nil {
			log.Fatal(err)
		}
		took := time.Since(start)
		if base == 0 {
			base = took
		}
		fmt.Printf("%-40s %10v %12d %8.1fx\n",
			opt, took.Round(time.Millisecond), len(res.Significant),
			float64(base)/float64(took))
	}

	fmt.Println("\nAll levels certify the identical rule set — the optimisations are")
	fmt.Println("exact. The dynamic buffer alone removes most of the p-value cost;")
	fmt.Println("Diffsets shrink the support-counting work; the static buffer mainly")
	fmt.Println("helps when many rules share coverages (paper Fig 4).")
}
