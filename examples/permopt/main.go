// Permutation-cost ladder: demonstrates how much each of the paper's §4.2
// optimisations — the dynamic p-value buffer, Diffsets, and the static
// buffer — cuts the cost of a 300-permutation test on a german-style
// dataset (the workload of Fig 4b).
//
// All four levels run through one Session.MineBatch: the session caches
// the prepared stages, so the dataset is encoded once and mined once per
// tree shape (the two Diffsets levels share one tree, the two
// non-Diffsets levels the other) instead of once per level — the cheap
// path for sweeping configurations over one dataset. Each level's own
// cost is its correction time, reported per result.
//
//	go run ./examples/permopt
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	data, err := repro.UCIStandIn("german", 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("german stand-in: %d records, %d attributes; min_sup=60, 300 permutations\n\n",
		data.NumRecords(), data.Schema.NumAttrs())

	levels := []repro.OptLevel{
		repro.OptNone, repro.OptDynamicBuffer, repro.OptDiffsets, repro.OptStaticBuffer,
	}
	cfgs := make([]repro.Config, len(levels))
	for i, opt := range levels {
		cfgs[i] = repro.Config{
			MinSup:       60,
			Control:      repro.ControlFWER,
			Method:       repro.MethodPermutation,
			Permutations: 300,
			Seed:         1,
			Opt:          opt,
			OptSet:       true,
			Workers:      1, // single-threaded, like the paper's measurements
		}
	}

	sess := repro.NewSession(data)
	results, err := sess.MineBatch(context.Background(), cfgs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-40s %10s %12s %9s\n", "optimisation level", "correct", "significant", "speedup")
	var base time.Duration
	for i, res := range results {
		took := res.CorrectTime
		if base == 0 {
			base = took
		}
		fmt.Printf("%-40s %10v %12d %8.1fx\n",
			levels[i], took.Round(time.Millisecond), len(res.Significant),
			float64(base)/float64(took))
	}

	st := sess.Stats()
	fmt.Printf("\nsession: %d mine(s) + %d score(s) served all %d levels — the\n",
		st.Mines, st.Scores, len(levels))
	fmt.Println("batch pays mining once per tree shape (with/without Diffsets) and")
	fmt.Println("re-runs only the permutation correction per level.")

	fmt.Println("\nAll levels certify the identical rule set — the optimisations are")
	fmt.Println("exact. The dynamic buffer alone removes most of the p-value cost;")
	fmt.Println("Diffsets shrink the support-counting work; the static buffer mainly")
	fmt.Println("helps when many rules share coverages (paper Fig 4).")
}
