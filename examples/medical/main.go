// Medical screening scenario: exploratory rule discovery on a
// hypothyroid-style dataset (the paper's "hypo") where the class of
// interest is rare (≈5%) and the cost of chasing false leads is high.
//
// This is the regime the paper highlights in §5.6/§7: hypo has a thick
// band of rules with moderate p-values (between alpha/Nt and alpha), so
// the permutation approach certifies noticeably more rules than the
// Bonferroni-style direct adjustment, while "no correction" floods the
// analyst with noise. FDR control fits the exploratory goal: a candidate
// set of which a known small fraction may be false.
//
//	go run ./examples/medical
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	data, err := repro.UCIStandIn("hypo", 11)
	if err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	for _, c := range data.Labels {
		counts[data.Schema.Class.Values[c]]++
	}
	fmt.Printf("hypo stand-in: %d patients, %d attributes, class split %v\n\n",
		data.NumRecords(), data.Schema.NumAttrs(), counts)

	// Exploratory study: control FDR at 5% so the reported candidate set
	// is ~95% real, then follow up on the survivors.
	const minSup = 1600
	run := func(m repro.Method, label string) *repro.Result {
		res, err := repro.Mine(data, repro.Config{
			MinSup:        minSup,
			Control:       repro.ControlFDR,
			Method:        m,
			Permutations:  300,
			Seed:          3,
			HoldoutRandom: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %5d tested  %5d reported significant\n",
			label, res.NumTested, len(res.Significant))
		return res
	}

	run(repro.MethodNone, "no correction")
	direct := run(repro.MethodDirect, "Benjamini-Hochberg")
	perm := run(repro.MethodPermutation, "permutation FDR")
	run(repro.MethodHoldout, "holdout (BH)")

	fmt.Println("\nstrongest certified risk indicators (permutation FDR):")
	seen := 0
	for _, r := range perm.Significant {
		if r.Class != "hypothyroid" {
			continue
		}
		fmt.Printf("  %-58s conf=%.2f p=%.2g\n",
			strings.Join(r.Items, " ^ "), r.Confidence, r.P)
		seen++
		if seen == 5 {
			break
		}
	}
	if seen == 0 {
		fmt.Println("  (none pointing at the rare class at this min_sup)")
	}

	fmt.Printf("\nThe permutation approach certified %d rules vs %d for direct BH —\n",
		len(perm.Significant), len(direct.Significant))
	fmt.Println("on hypo-like p-value distributions it recovers real rules the")
	fmt.Println("conservative direct adjustment throws away (paper §5.6).")
}
