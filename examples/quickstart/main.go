// Quickstart: generate a small dataset with one planted rule, mine it with
// each correction approach, and show why correction matters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	// A synthetic dataset with known ground truth: 1000 records, 15
	// attributes, and ONE real rule of coverage 200 and confidence 0.85.
	// Everything else in the data is noise.
	params := repro.SyntheticDefaults()
	params.N = 1000
	params.Attrs = 15
	params.NumRules = 1
	params.MinLen, params.MaxLen = 3, 3 // short LHS: few by-product rules
	params.MinCvg, params.MaxCvg = 200, 200
	params.MinConf, params.MaxConf = 0.85, 0.85
	params.Seed = 42

	gen, err := repro.Synthetic(params)
	if err != nil {
		log.Fatal(err)
	}
	truth := gen.Rules[0]
	var lhs []string
	for i, a := range truth.Attrs {
		lhs = append(lhs, fmt.Sprintf("%s=%s",
			gen.Data.Schema.Attrs[a].Name, gen.Data.Schema.Attrs[a].Values[truth.Vals[i]]))
	}
	fmt.Printf("ground truth: %s => class=%s (coverage %d, confidence %.2f)\n\n",
		strings.Join(lhs, " ^ "), gen.Data.Schema.Class.Values[truth.Class],
		truth.Coverage(), truth.Conf)

	// Mine with each approach at the same error level.
	for _, m := range []repro.Method{
		repro.MethodNone, repro.MethodDirect, repro.MethodPermutation, repro.MethodHoldout,
	} {
		res, err := repro.Mine(gen.Data, repro.Config{
			MinSup:        80,
			Alpha:         0.05,
			Control:       repro.ControlFWER,
			Method:        m,
			Permutations:  300,
			Seed:          7,
			HoldoutRandom: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s: %4d rules tested, %4d significant (cutoff p <= %.3g)\n",
			res.Method, res.NumTested, len(res.Significant), res.Cutoff)
		for i, r := range res.Significant {
			if i == 3 {
				fmt.Printf("              ... and %d more\n", len(res.Significant)-3)
				break
			}
			fmt.Printf("              %s => class=%s (cvg=%d conf=%.2f p=%.3g)\n",
				strings.Join(r.Items, " ^ "), r.Class, r.Coverage, r.Confidence, r.P)
		}
	}

	fmt.Println("\nWithout correction, dozens of noise rules pass p <= 0.05; the")
	fmt.Println("corrected approaches report only the planted rule and its closely")
	fmt.Println("related sub/super-patterns.")
}
