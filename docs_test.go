package repro

import (
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestPackageDocs is the doc-lint gate (run standalone in CI next to go
// vet): every package in the module — the facade, every internal
// package, every command and example — must carry a real package
// comment, not a bare package clause and not a one-liner stub. godoc is
// this repo's architecture index (DESIGN.md points into it), so an
// undocumented package is treated as a build defect.
func TestPackageDocs(t *testing.T) {
	dirs := map[string]bool{}
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && strings.HasPrefix(d.Name(), ".") && path != "." {
			return filepath.SkipDir
		}
		if d.IsDir() && d.Name() == "testdata" {
			// Analyzer fixtures are deliberately sinful packages with
			// minimal docs; go tooling ignores testdata and so does this
			// lint.
			return filepath.SkipDir
		}
		if !d.IsDir() && strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 20 {
		t.Fatalf("found only %d package dirs; the walk is broken", len(dirs))
	}
	// The static-analysis layer must stay under this lint: its packages
	// explain the invariants everything else is checked against.
	for _, must := range []string{
		filepath.Join("internal", "analysis"),
		filepath.Join("internal", "analysis", "driver"),
		filepath.Join("cmd", "armine-vet"),
	} {
		if !dirs[must] {
			t.Errorf("expected package dir %s in the walk", must)
		}
	}

	const minDocLen = 60 // a sentence, not a stub
	for dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Errorf("%s: %v", dir, err)
			continue
		}
		for name, pkg := range pkgs {
			doc := ""
			for _, f := range pkg.Files {
				if f.Doc != nil && len(f.Doc.Text()) > len(doc) {
					doc = f.Doc.Text()
				}
			}
			if len(doc) < minDocLen {
				t.Errorf("package %s (%s) has no real package comment (%d chars, want >= %d)",
					name, dir, len(doc), minDocLen)
			}
		}
	}
}
