package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestFacadeLoadCSVAndMine(t *testing.T) {
	csv := `age,color,class
25,red,yes
30,red,yes
35,red,yes
28,red,yes
31,red,yes
61,blue,no
64,blue,no
67,blue,no
66,blue,no
63,blue,no
`
	d, err := LoadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRecords() != 10 {
		t.Fatalf("records = %d", d.NumRecords())
	}
	// The numeric age column must have been discretized into intervals.
	ageAttr := d.Schema.Attrs[0]
	if ageAttr.Name != "age" {
		t.Fatalf("first attribute %q", ageAttr.Name)
	}
	for _, v := range ageAttr.Values {
		if !strings.Contains(v, "(") {
			t.Fatalf("age value %q does not look like an interval", v)
		}
	}

	res, err := Mine(d, Config{MinSup: 3, Method: MethodDirect, Control: ControlFWER})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumTested == 0 {
		t.Fatal("nothing tested")
	}
	// The perfectly separating color attribute must be significant even
	// under Bonferroni on this tiny dataset... p = 2/C(10,5) ≈ 0.0079 for
	// coverage 5; with few tests it clears alpha/Nt only if Nt is small.
	// Just assert the pipeline produced sane output.
	for _, r := range res.Significant {
		if r.P > res.Cutoff {
			t.Errorf("rule above cutoff reported")
		}
	}
}

func TestFacadeSynthetic(t *testing.T) {
	p := SyntheticDefaults()
	p.N = 200
	p.Attrs = 6
	p.Seed = 1
	res, err := Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Data.NumRecords() != 200 {
		t.Fatalf("records = %d", res.Data.NumRecords())
	}
	whole, first, second, err := SyntheticPaired(p)
	if err != nil {
		t.Fatal(err)
	}
	if whole.Data.NumRecords() != first.NumRecords()+second.NumRecords() {
		t.Error("paired halves do not sum to the whole")
	}
}

func TestFacadeUCIStandIn(t *testing.T) {
	for _, name := range UCINames() {
		d, err := UCIStandIn(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d.NumRecords() == 0 {
			t.Errorf("%s: empty dataset", name)
		}
	}
	if _, err := UCIStandIn("nope", 1); err == nil {
		t.Error("unknown stand-in accepted")
	}
}

func TestFacadeBasket(t *testing.T) {
	d := BasketFromTransactions([][]string{
		{"a", "b", "c"}, {"a", "b"}, {"a", "b", "c"}, {"b", "c"},
		{"a", "b", "c"}, {"a", "c"}, {"a", "b", "c"}, {"a", "b", "c"},
	})
	rules, err := MineBasket(d, BasketOptions{MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no basket rules")
	}
	bc := BasketBonferroni(rules, 0.05)
	bh := BasketBH(rules, 0.05)
	if len(bh.Significant) < len(bc.Significant) {
		t.Error("BH fewer than Bonferroni")
	}
	if _, err := BasketPermFWER(d, rules, 0.05, 30, 1); err != nil {
		t.Fatal(err)
	}
	rd, err := ReadBasket(strings.NewReader("a b\nb c\n"))
	if err != nil || rd.NumTx != 2 {
		t.Errorf("ReadBasket: %v, %d tx", err, rd.NumTx)
	}
}

func TestFacadeEndToEndWithGroundTruth(t *testing.T) {
	p := SyntheticDefaults()
	p.N = 800
	p.Attrs = 12
	p.NumRules = 1
	p.MinLen, p.MaxLen = 3, 3
	p.MinCvg, p.MaxCvg = 150, 150
	p.MinConf, p.MaxConf = 0.9, 0.9
	p.Seed = 3
	gen, err := Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(gen.Data, Config{
		MinSup:       60,
		Method:       MethodPermutation,
		Control:      ControlFWER,
		Permutations: 100,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Significant) == 0 {
		t.Fatal("planted rule not recovered")
	}
	// The top rule should involve the planted attributes.
	truth := gen.Rules[0]
	top := res.Significant[0]
	overlap := 0
	for _, a := range top.Attrs {
		for _, ta := range truth.Attrs {
			if a == ta {
				overlap++
			}
		}
	}
	if overlap == 0 {
		t.Errorf("top rule %v shares no attributes with the planted rule %v", top.Attrs, truth.Attrs)
	}
}

// TestFacadeMineContextWorkersIdentical checks the facade-level guarantee:
// the full permutation pipeline returns identical results for every
// Workers value.
func TestFacadeMineContextWorkersIdentical(t *testing.T) {
	p := SyntheticDefaults()
	p.N = 400
	p.Attrs = 8
	p.NumRules = 3
	p.MinCvg = 40
	p.MaxCvg = 80
	p.MinConf = 0.7
	p.MaxConf = 0.9
	p.Seed = 9
	res, err := Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		MinSup:       25,
		Method:       MethodPermutation,
		Control:      ControlFDR,
		Permutations: 40,
		Seed:         3,
	}
	var ref *Result
	for _, workers := range []int{1, 2, 8} {
		cfg.Workers = workers
		got, err := MineContext(context.Background(), res.Data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if got.NumPatterns != ref.NumPatterns || got.NumTested != ref.NumTested ||
			got.Cutoff != ref.Cutoff || len(got.Significant) != len(ref.Significant) {
			t.Fatalf("workers=%d: result differs from workers=1 reference", workers)
		}
		for i := range got.Significant {
			if got.Significant[i].P != ref.Significant[i].P ||
				strings.Join(got.Significant[i].Items, "^") != strings.Join(ref.Significant[i].Items, "^") {
				t.Fatalf("workers=%d: significant rule %d differs", workers, i)
			}
		}
	}
	if ref == nil || len(ref.Tested) == 0 {
		t.Fatal("empty reference run")
	}
}

// TestFacadeSessionBatch checks the public Session surface: MineBatch
// over configs sharing mining parameters costs one encode/mine/score
// (Stats), and every result matches a fresh Mine of the same config.
func TestFacadeSessionBatch(t *testing.T) {
	p := SyntheticDefaults()
	p.N = 600
	p.Attrs = 10
	p.NumRules = 2
	p.MinCvg, p.MaxCvg = 100, 150
	p.MinConf, p.MaxConf = 0.8, 0.9
	p.Seed = 17
	gen, err := Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		{MinSup: 50, Method: MethodNone},
		{MinSup: 50, Method: MethodDirect, Control: ControlFWER},
		{MinSup: 50, Method: MethodDirect, Control: ControlFDR},
		{MinSup: 50, Method: MethodPermutation, Control: ControlFWER, Permutations: 40, Seed: 2},
	}
	sess := NewSession(gen.Data)
	if sess.Dataset() != gen.Data {
		t.Fatal("Dataset() does not echo the session dataset")
	}
	outs, err := sess.MineBatch(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.Encodes != 1 || st.Mines != 1 || st.Scores != 1 {
		t.Errorf("stats = %+v, want one encode/mine/score", st)
	}
	for i, cfg := range cfgs {
		fresh, err := Mine(gen.Data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, want := outs[i], fresh
		if got.NumTested != want.NumTested || got.Cutoff != want.Cutoff ||
			len(got.Significant) != len(want.Significant) {
			t.Fatalf("config %d: session result differs from fresh Mine", i)
		}
		for j := range got.Significant {
			if got.Significant[j].P != want.Significant[j].P ||
				strings.Join(got.Significant[j].Items, "^") != strings.Join(want.Significant[j].Items, "^") {
				t.Fatalf("config %d: significant rule %d differs", i, j)
			}
		}
	}
	// Session.Mine reuses the cache too: a fifth config differing only in
	// alpha must not trigger another mine.
	if _, err := sess.Mine(Config{MinSup: 50, Method: MethodDirect, Alpha: 0.01}); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.Mines != 1 {
		t.Errorf("mines=%d after alpha-only config, want 1", st.Mines)
	}
}

// TestFacadeMineContextCancel checks that a cancelled context aborts the
// pipeline with context.Canceled.
func TestFacadeMineContextCancel(t *testing.T) {
	p := SyntheticDefaults()
	p.N = 300
	p.Attrs = 6
	p.Seed = 4
	res, err := Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, method := range []Method{MethodDirect, MethodPermutation, MethodHoldout} {
		cfg := Config{MinSup: 20, Method: method, Permutations: 20}
		if _, err := MineContext(ctx, res.Data, cfg); err != context.Canceled {
			t.Fatalf("method=%v: err = %v, want context.Canceled", method, err)
		}
	}
}

// TestFacadeServe drives the exported serving surface end to end: a
// registry-backed Server handler serves a mine request whose deterministic
// fields are byte-identical to a direct repro.Mine call's wire encoding.
func TestFacadeServe(t *testing.T) {
	p := SyntheticDefaults()
	p.N = 500
	p.Attrs = 8
	p.NumRules = 1
	p.MinCvg, p.MaxCvg = 120, 120
	p.MinConf, p.MaxConf = 0.9, 0.9
	p.Seed = 33
	gen, err := Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(4, CacheLimits{})
	if _, err := reg.Register("demo", gen.Data); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(reg, ServeOptions{Log: log.New(io.Discard, "", 0)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/datasets/demo/mine", "application/json",
		strings.NewReader(`{"min_sup": 60, "method": "direct", "control": "fdr"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	fresh, err := Mine(gen.Data, Config{MinSup: 60, Method: MethodDirect, Control: ControlFDR})
	if err != nil {
		t.Fatal(err)
	}
	want := EncodeRun(fresh, 0)
	var got RunJSON
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	// Wall-clock timings can never reproduce; everything else must.
	got.MineMillis, got.CorrectMillis = 0, 0
	want.MineMillis, want.CorrectMillis = 0, 0
	gotB, _ := json.Marshal(got)
	wantB, _ := json.Marshal(want)
	if !bytes.Equal(gotB, wantB) {
		t.Fatalf("served result differs from direct Mine:\n got %s\nwant %s", gotB, wantB)
	}

	// The health endpoint reflects the registry.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h struct {
		Status   string `json:"status"`
		Datasets int    `json:"datasets"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Datasets != 1 {
		t.Errorf("healthz = %+v", h)
	}
}
