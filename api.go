// Package repro is a Go reproduction of Liu, Zhang & Wong, "Controlling
// False Positives in Association Rule Mining" (PVLDB 5(2), VLDB 2011).
//
// It mines class association rules X ⇒ c (closed frequent patterns over
// categorical attribute–value items, class labels on the right-hand side),
// scores each rule's statistical significance with the two-tailed Fisher
// exact test, and controls false positives with any of the paper's three
// multiple-testing correction approaches:
//
//   - direct adjustment — Bonferroni (FWER) or Benjamini–Hochberg (FDR);
//   - permutation-based — Westfall–Young min-p cut-off (FWER) or pooled
//     empirical p-values + BH (FDR), accelerated with the paper's
//     mine-once, Diffsets and p-value-buffering optimisations;
//   - holdout — mine on an exploratory half, validate survivors on an
//     evaluation half (Webb, 2007).
//
// # Quick start
//
//	d, err := repro.LoadCSVFile("data.csv")          // last column = class
//	res, err := repro.Mine(d, repro.Config{
//	    MinSupFrac: 0.05,
//	    Control:    repro.ControlFDR,
//	    Method:     repro.MethodDirect,
//	})
//	for _, r := range res.Significant {
//	    fmt.Println(r.Items, "=>", r.Class, r.P)
//	}
//
// # Parallelism and reproducibility
//
// The pipeline is an explicit staged run (encode → mine → score →
// correct) whose two hot stages — closed pattern enumeration and
// permutation re-evaluation — execute on a bounded worker pool:
//
//   - Config.Workers sets the pool size (default runtime.GOMAXPROCS).
//     Every result is byte-identical for every worker count: first-level
//     enumeration subtrees merge back in deterministic order, and each
//     permutation derives its own RNG from (Config.Seed, permutation
//     index).
//   - Config.Seed makes runs reproducible. Seeding is fully explicit —
//     nothing reads global or time-based randomness — so equal (Seed,
//     Config) pairs reproduce identical rule sets and p-values.
//   - MineContext threads a context.Context through every stage; cancel
//     it to abort long mining or permutation runs promptly.
//
// # Sessions: many configs, one dataset
//
// When several configurations run against one dataset — comparing
// correction methods, sweeping alpha, serving repeated traffic — build a
// Session. It caches the expensive prepared stages (encode, mine, score)
// keyed by the subset of Config that affects them, so N configs differing
// only in correction method/control/alpha/seed/permutations cost one mine
// plus N cheap corrections:
//
//	sess := repro.NewSession(d)
//	results, err := sess.MineBatch(ctx, []repro.Config{
//	    {MinSup: 60, Method: repro.MethodDirect, Control: repro.ControlFWER},
//	    {MinSup: 60, Method: repro.MethodDirect, Control: repro.ControlFDR},
//	    {MinSup: 60, Method: repro.MethodPermutation, Permutations: 1000},
//	})
//
// Session results are byte-identical to fresh Mine calls. Session stage
// caches are size-bounded (CacheLimits): long-lived sessions evict their
// least-recently-used prepared stages instead of growing without bound.
//
// # Serving
//
// The pipeline is also available as a long-lived HTTP/JSON service: named
// datasets live in a capacity-bounded LRU Registry of Sessions, and a
// Server exposes upload, mine, batch and stats endpoints with per-request
// timeouts and graceful drain on shutdown ("armine serve" is the CLI
// entry point):
//
//	reg := repro.NewRegistry(16, repro.CacheLimits{})
//	reg.Register("census", d)
//	srv := repro.NewServer(reg, repro.ServeOptions{Addr: ":8080"})
//	go srv.ListenAndServe()
//	...
//	srv.Shutdown(ctx) // drains in-flight mining
//
// See Server.Handler for the endpoint table; concurrent requests against
// one dataset share mining stages through the session caches.
//
// The heavy machinery lives in internal packages; this package is the
// supported surface: datasets (LoadCSV/FromTable/Synthetic/UCIStandIn),
// the pipeline (Mine/MineContext, Session/NewSession for repeated
// mining), the HTTP service (Registry/NewServer), and the result types.
package repro

import (
	"context"
	"io"
	"os"

	"repro/internal/basket"
	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/correction"
	"repro/internal/dataset"
	"repro/internal/disc"
	"repro/internal/mining"
	"repro/internal/permute"
	"repro/internal/server"
	"repro/internal/synth"
	"repro/internal/uci"
)

// Dataset is a categorical, class-labelled record table.
type Dataset = dataset.Dataset

// Schema describes a Dataset's attributes and class labels.
type Schema = dataset.Schema

// Attribute is one categorical attribute (name + value vocabulary).
type Attribute = dataset.Attribute

// Table is a raw string-valued table (the CSV intermediate form).
type Table = dataset.Table

// Config configures Mine. The zero value needs at least MinSup or
// MinSupFrac; all other fields have sensible defaults (Alpha 0.05,
// Method direct, Control FWER, 1000 permutations).
type Config = core.Config

// Result is the outcome of a Mine run.
type Result = core.Result

// Rule is one reported significant rule.
type Rule = core.Rule

// Control selects the error measure (FWER or FDR).
type Control = core.Control

// Method selects the correction approach.
type Method = core.Method

// OptLevel selects which permutation-cost optimisations are active.
type OptLevel = permute.OptLevel

// Adaptive configures sequential early-stopping permutation testing
// (Config.Adaptive): a positive MaxPerms enables rounds with early rule
// retirement; Exceedances < 0 disables retirement, making the run
// byte-identical to a fixed run of MaxPerms permutations.
type Adaptive = permute.Adaptive

// PermStats reports an adaptive permutation run's telemetry
// (Result.Perm): rounds executed, permutations run, rules retired, and
// the rule-permutation evaluations saved versus a fixed run.
type PermStats = core.PermStats

// TestKind selects the significance test scoring each rule.
type TestKind = mining.TestKind

// SynthParams configures the synthetic dataset generator (Table 1 of the
// paper).
type SynthParams = synth.Params

// SynthResult bundles a generated dataset with its embedded ground truth.
type SynthResult = synth.Result

// EmbeddedRule is one planted ground-truth rule.
type EmbeddedRule = synth.EmbeddedRule

const (
	// ControlFWER controls the family-wise error rate.
	ControlFWER = core.ControlFWER
	// ControlFDR controls the false discovery rate.
	ControlFDR = core.ControlFDR

	// MethodNone reports every rule with p <= Alpha (no correction).
	MethodNone = core.MethodNone
	// MethodDirect is Bonferroni / Benjamini–Hochberg.
	MethodDirect = core.MethodDirect
	// MethodPermutation is the permutation-based approach.
	MethodPermutation = core.MethodPermutation
	// MethodHoldout is Webb's holdout evaluation.
	MethodHoldout = core.MethodHoldout
	// MethodLayered is Webb's layered critical values (FWER only).
	MethodLayered = core.MethodLayered

	// OptNone disables Diffsets and p-value buffering.
	OptNone = permute.OptNone
	// OptDynamicBuffer enables only the one-slot dynamic p-value buffer.
	OptDynamicBuffer = permute.OptDynamicBuffer
	// OptDiffsets adds Diffset storage to the dynamic buffer.
	OptDiffsets = permute.OptDiffsets
	// OptStaticBuffer adds the byte-budgeted static buffer (the default).
	OptStaticBuffer = permute.OptStaticBuffer

	// TestFisher is the paper's two-tailed Fisher exact test (default).
	TestFisher = mining.TestFisher
	// TestMidP is the less-conservative mid-p Fisher variant (extension).
	TestMidP = mining.TestMidP
	// TestChiSquare is Pearson's χ² test (the alternative in §2.2).
	TestChiSquare = mining.TestChiSquare
)

// Mine runs the full pipeline — closed rule mining, Fisher significance,
// and the configured correction — on d.
func Mine(d *Dataset, cfg Config) (*Result, error) {
	return core.Run(d, cfg)
}

// MineContext is Mine with cancellation: ctx is threaded through every
// pipeline stage (mining workers, permutation workers), and cancelling it
// aborts the run promptly with the context's error. cfg.Workers bounds the
// worker pool; results are byte-identical for every worker count.
func MineContext(ctx context.Context, d *Dataset, cfg Config) (*Result, error) {
	return core.RunContext(ctx, d, cfg)
}

// Session is a prepared dataset for repeated mining. It owns the encoded
// vertical representation and keyed caches of mined trees and scored rule
// sets, so that configs differing only in correction method, control,
// alpha, seed or permutation count share one encode + one mine + one score
// — the paper's "mine once, re-evaluate many times" optimisation (§4.2)
// promoted to the whole pipeline. A Session is safe for concurrent use,
// and every result is byte-identical to a fresh Mine call with the same
// (Seed, Config): the caches change cost, never output.
type Session struct {
	s *core.Session
}

// SessionStats counts the pipeline stages a Session has executed versus
// served from its caches.
type SessionStats = core.SessionStats

// CacheLimits bounds a Session's stage caches: each cache evicts its
// least-recently-used completed entry past the cap and recomputes it
// (bit-for-bit identically) on re-request. Zero fields pick the defaults;
// negative fields mean unbounded.
type CacheLimits = core.CacheLimits

// NewSession prepares d for repeated mining with Session.Mine and
// Session.MineBatch, using the default CacheLimits.
func NewSession(d *Dataset) *Session {
	return &Session{s: core.NewSession(d)}
}

// NewSessionLimits is NewSession with explicit stage-cache bounds.
func NewSessionLimits(d *Dataset, lim CacheLimits) *Session {
	return &Session{s: core.NewSessionLimits(d, lim)}
}

// Mine runs one config against the prepared dataset, reusing any cached
// encode/mine/score stage whose parameters match.
func (s *Session) Mine(cfg Config) (*Result, error) {
	return s.s.Run(cfg)
}

// MineContext is Session.Mine with cancellation.
func (s *Session) MineContext(ctx context.Context, cfg Config) (*Result, error) {
	return s.s.RunContext(ctx, cfg)
}

// MineBatch runs every config against the prepared dataset, deduplicating
// the encode/mine/score stages across them and running the corrections on
// a bounded worker pool. results[i] corresponds to cfgs[i]; the batch
// fails atomically on the first (lowest-index) error.
func (s *Session) MineBatch(ctx context.Context, cfgs []Config) ([]*Result, error) {
	return s.s.RunBatch(ctx, cfgs)
}

// Stats snapshots the session's stage counters (executed encodes, mines,
// scores and corrections, plus cache hits).
func (s *Session) Stats() SessionStats {
	return s.s.Stats()
}

// Dataset returns the dataset the session was built on, or nil for a
// store-backed session (which holds no in-memory dataset — use Schema
// and NumRecords instead).
func (s *Session) Dataset() *Dataset {
	return s.s.Data()
}

// Schema returns the current schema of the session's data, whether
// in-memory or store-backed.
func (s *Session) Schema() *Schema {
	return s.s.Schema()
}

// NumRecords returns the current record count of the session's data.
func (s *Session) NumRecords() int {
	return s.s.NumRecords()
}

// Store is an on-disk segmented columnar dataset: immutable segment
// files of packed per-item bitmaps plus an ordered manifest. Stores are
// built once (CreateStore/StoreFromDataset), reopened cheaply
// (OpenStore), grown by appending CSV deltas (Store.Append), and mined
// through NewStoreSession — peak ingest memory is one segment
// regardless of dataset size, and mining results are byte-identical to
// the in-memory path.
type Store = colstore.Store

// StoreOptions configures store ingest (segment size).
type StoreOptions = colstore.Options

// CreateStore ingests a CSV stream (header row; last column = class)
// into a new store directory. The input must be categorical already:
// segment bitmaps are immutable, so numeric columns cannot be
// discretized after ingest — run the data through LoadCSV +
// StoreFromDataset (or `armine convert`) when it has numeric columns.
func CreateStore(dir string, r io.Reader, opts StoreOptions) (*Store, error) {
	return colstore.Create(dir, r, opts)
}

// StoreFromDataset writes an in-memory (already discretized) dataset
// into a new store directory, preserving its schema verbatim.
func StoreFromDataset(dir string, d *Dataset, opts StoreOptions) (*Store, error) {
	return colstore.FromDataset(dir, d, opts)
}

// OpenStore loads an existing store directory, validating its manifest
// and segment chain.
func OpenStore(dir string) (*Store, error) {
	return colstore.Open(dir)
}

// RemoveStore deletes a store directory. It refuses directories that do
// not hold a store manifest, so a mistyped path cannot delete unrelated
// data.
func RemoveStore(dir string) error {
	return colstore.Remove(dir)
}

// NewStoreSession prepares a store-backed Session: mining snapshots the
// vertical encoding from the segment files instead of holding a dataset
// in memory, and results are byte-identical to NewSession over the
// equivalent in-memory dataset. Appends to the store bump its version,
// which invalidates the session's stage caches on the next run.
func NewStoreSession(st *Store) *Session {
	return &Session{s: core.NewSessionSource(st)}
}

// NewStoreSessionLimits is NewStoreSession with explicit stage-cache
// bounds.
func NewStoreSessionLimits(st *Store, lim CacheLimits) *Session {
	return &Session{s: core.NewSessionSourceLimits(st, lim)}
}

// LoadCSV reads a CSV stream with a header row into a Dataset, treating
// the LAST column as the class attribute and every other column as
// categorical. Numeric columns are discretized with the supervised
// Fayyad–Irani MDL method first. Missing values are "" or "?".
//
// The stream is encoded row by row: peak memory is one row of strings
// plus the encoded dataset, never a full string table — the result is
// byte-identical to ReadTable + FromTable.
func LoadCSV(r io.Reader) (*Dataset, error) {
	d, err := dataset.ReadDataset(r, -1)
	if err != nil {
		return nil, err
	}
	if err := disc.DiscretizeDataset(d); err != nil {
		return nil, err
	}
	return d, nil
}

// LoadCSVFile is LoadCSV over a file path.
func LoadCSVFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCSV(f)
}

// FromTable converts a raw table into a Dataset with the given class
// column, discretizing numeric columns with Fayyad–Irani first.
func FromTable(tab *Table, classCol int) (*Dataset, error) {
	dt, err := disc.DiscretizeTable(tab, classCol)
	if err != nil {
		return nil, err
	}
	return dt.ToDataset(classCol)
}

// Synthetic generates a dataset with embedded ground-truth rules using the
// paper's Table 1 generator. See SynthParams; synth.PaperDefaults gives
// the fixed parameters of §5.1.
func Synthetic(p SynthParams) (*SynthResult, error) {
	return synth.Generate(p)
}

// SyntheticDefaults returns the paper's fixed generator parameters
// (#C=2, min_v=2, max_v=8, min_l=2, max_l=16); set N, Attrs, rule counts
// and coverage/confidence ranges before calling Synthetic.
func SyntheticDefaults() SynthParams { return synth.PaperDefaults() }

// SyntheticPaired generates the paper's fair-holdout construction: two
// independently generated N/2 halves over one schema, each embedding the
// same rules at half coverage, catenated into the whole. Use the returned
// halves as the exploratory and evaluation datasets.
func SyntheticPaired(p SynthParams) (whole *SynthResult, first, second *Dataset, err error) {
	return synth.GeneratePaired(p)
}

// UCIStandIn generates the offline stand-in for one of the paper's four
// UCI datasets: "adult", "german", "hypo" or "mushroom". See DESIGN.md for
// the substitution rationale.
func UCIStandIn(name string, seed uint64) (*Dataset, error) {
	return uci.Load(name, seed)
}

// UCINames lists the available stand-in names.
func UCINames() []string { return uci.Names() }

// BasketData is a market-basket transaction database (general association
// rules X ⇒ y, the setting §2 of the paper generalises from).
type BasketData = basket.Data

// BasketRule is a general association rule with a single-item consequent.
type BasketRule = basket.Rule

// BasketOptions configures basket-rule mining.
type BasketOptions = basket.Options

// BasketFromTransactions builds a transaction database from item-name
// transactions.
func BasketFromTransactions(tx [][]string) *BasketData {
	return basket.FromTransactions(tx)
}

// ReadBasket parses one transaction per line (items separated by spaces or
// commas).
func ReadBasket(r io.Reader) (*BasketData, error) { return basket.ReadBasket(r) }

// MineBasket enumerates general association rules X ⇒ y (X a closed
// frequent itemset, y a single item) scored with the two-tailed Fisher
// exact test. Apply BasketBonferroni / BasketBH / BasketPermFWER to
// control false positives.
func MineBasket(d *BasketData, opts BasketOptions) ([]BasketRule, error) {
	return basket.Mine(d, opts)
}

// BasketBonferroni controls FWER over basket rules.
func BasketBonferroni(rules []BasketRule, alpha float64) *correction.Outcome {
	return basket.Bonferroni(rules, alpha)
}

// BasketBH controls FDR over basket rules.
func BasketBH(rules []BasketRule, alpha float64) *correction.Outcome {
	return basket.BenjaminiHochberg(rules, alpha)
}

// BasketPermFWER controls FWER over basket rules with per-consequent
// permutation nulls (see internal/basket for the composition argument).
func BasketPermFWER(d *BasketData, rules []BasketRule, alpha float64, numPerms int, seed uint64) (*correction.Outcome, error) {
	return basket.PermFWER(d, rules, alpha, numPerms, seed, 0)
}

// Outcome is a correction decision (indices of significant rules plus the
// effective cut-off).
type Outcome = correction.Outcome

// ParseControl maps a case-insensitive control name ("fwer" or "fdr") to
// its Control.
func ParseControl(s string) (Control, error) { return core.ParseControl(s) }

// ParseMethod maps a case-insensitive method name
// (none|direct|permutation|holdout|layered) to its Method.
func ParseMethod(s string) (Method, error) { return core.ParseMethod(s) }

// ParseTest maps a case-insensitive test name (fisher|midp|chisq) to its
// TestKind; the empty string selects Fisher.
func ParseTest(s string) (TestKind, error) { return core.ParseTest(s) }

// Registry maps dataset names to prepared mining sessions behind an LRU
// with a fixed capacity: registering past the capacity evicts the least
// recently used session, keeping a long-lived serving process's memory
// bounded. Safe for concurrent use.
type Registry = server.Registry

// ServeOptions configures the HTTP mining service (listen address,
// per-request timeout, upload cap, logger).
type ServeOptions = server.Options

// Server is the long-lived HTTP/JSON mining service over a Registry.
// Server.Handler documents the endpoint table; Shutdown drains in-flight
// mining before returning.
type Server = server.Server

// ConfigJSON is the wire form of a Config (enum fields as strings), used
// by the HTTP service's request bodies.
type ConfigJSON = server.ConfigJSON

// RunJSON is the wire form of one mining result, shared by the HTTP
// service's responses and "armine -json".
type RunJSON = server.RunJSON

// NewRegistry returns a registry holding at most capacity sessions
// (a default capacity if <= 0), each with the given stage-cache limits.
func NewRegistry(capacity int, limits CacheLimits) *Registry {
	return server.NewRegistry(capacity, limits)
}

// NewServer builds the HTTP mining service over reg. Use Server.Handler
// for a custom listener or Server.ListenAndServe for opts.Addr.
func NewServer(reg *Registry, opts ServeOptions) *Server {
	return server.New(reg, opts)
}

// EncodeRun converts a Result into its wire form, truncating the rule list
// to limit entries (0 = all).
func EncodeRun(res *Result, limit int) RunJSON { return server.EncodeRun(res, limit) }
