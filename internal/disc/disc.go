// Package disc implements Fayyad & Irani's MDL-based supervised
// discretization (the default entropy discretizer of MLC++, which the
// paper used to discretize the continuous attributes of its UCI datasets).
//
// The method recursively picks the binary cut that minimises the
// class-label entropy of the induced partition and accepts it only when
// the information gain passes the Minimum Description Length criterion;
// otherwise the interval is left whole.
package disc

import (
	"fmt"
	"math"
	"sort"
	"strconv"

	"repro/internal/dataset"
)

// FayyadIrani returns the sorted cut points for one numeric attribute.
// values[i] is the attribute value of record i and labels[i] its class
// (in [0, numClasses)). Records with NaN values are ignored. The returned
// cut points partition the real line into len(cuts)+1 intervals; an empty
// result means the attribute carries no MDL-acceptable class information
// and should become a single interval.
func FayyadIrani(values []float64, labels []int32, numClasses int) []float64 {
	type pair struct {
		v float64
		c int32
	}
	pairs := make([]pair, 0, len(values))
	for i, v := range values {
		if !math.IsNaN(v) {
			pairs = append(pairs, pair{v, labels[i]})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })

	vs := make([]float64, len(pairs))
	cs := make([]int32, len(pairs))
	for i, p := range pairs {
		vs[i] = p.v
		cs[i] = p.c
	}
	var cuts []float64
	splitMDL(vs, cs, numClasses, &cuts)
	sort.Float64s(cuts)
	return cuts
}

// entropy returns the class entropy (bits) of counts over total.
func entropy(counts []int, total int) float64 {
	if total == 0 {
		return 0
	}
	e := 0.0
	for _, c := range counts {
		if c > 0 {
			p := float64(c) / float64(total)
			e -= p * math.Log2(p)
		}
	}
	return e
}

// distinctClasses returns the number of classes with non-zero count.
func distinctClasses(counts []int) int {
	k := 0
	for _, c := range counts {
		if c > 0 {
			k++
		}
	}
	return k
}

// splitMDL recursively splits the (sorted) value range, appending accepted
// cut points.
func splitMDL(vs []float64, cs []int32, numClasses int, cuts *[]float64) {
	n := len(vs)
	if n < 2 {
		return
	}
	total := make([]int, numClasses)
	for _, c := range cs {
		total[c]++
	}
	entS := entropy(total, n)
	if entS == 0 {
		return // pure interval
	}

	// Scan all boundaries between distinct adjacent values; maintain left
	// counts incrementally. (Fayyad & Irani prove the optimal cut lies on
	// a class boundary, but scanning every value boundary is O(n) anyway
	// and simpler to verify.)
	left := make([]int, numClasses)
	bestEnt := math.Inf(1)
	bestIdx := -1
	for i := 0; i < n-1; i++ {
		left[cs[i]]++
		if vs[i] == vs[i+1] {
			continue
		}
		nl := i + 1
		nr := n - nl
		right := make([]int, numClasses)
		for c := range right {
			right[c] = total[c] - left[c]
		}
		e := (float64(nl)*entropy(left, nl) + float64(nr)*entropy(right, nr)) / float64(n)
		if e < bestEnt {
			bestEnt = e
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return // all values equal
	}

	// Recompute the winning partition's statistics for the MDL test.
	nl := bestIdx + 1
	nr := n - nl
	leftCounts := make([]int, numClasses)
	for _, c := range cs[:nl] {
		leftCounts[c]++
	}
	rightCounts := make([]int, numClasses)
	for c := range rightCounts {
		rightCounts[c] = total[c] - leftCounts[c]
	}
	entL := entropy(leftCounts, nl)
	entR := entropy(rightCounts, nr)
	gain := entS - bestEnt

	k := distinctClasses(total)
	k1 := distinctClasses(leftCounts)
	k2 := distinctClasses(rightCounts)
	delta := math.Log2(math.Pow(3, float64(k))-2) -
		(float64(k)*entS - float64(k1)*entL - float64(k2)*entR)
	threshold := (math.Log2(float64(n-1)) + delta) / float64(n)
	if gain <= threshold {
		return // MDL rejects the split
	}

	cut := (vs[bestIdx] + vs[bestIdx+1]) / 2
	*cuts = append(*cuts, cut)
	splitMDL(vs[:nl], cs[:nl], numClasses, cuts)
	splitMDL(vs[nl:], cs[nl:], numClasses, cuts)
}

// Apply maps each value to its interval index under the given sorted cut
// points: bin i covers (cuts[i-1], cuts[i]]. NaN maps to -1 (missing).
func Apply(values []float64, cuts []float64) []int32 {
	out := make([]int32, len(values))
	for i, v := range values {
		if math.IsNaN(v) {
			out[i] = -1
			continue
		}
		out[i] = int32(sort.SearchFloat64s(cuts, v))
		// SearchFloat64s returns the first cut >= v, i.e. v <= cuts[j]
		// lands in bin j — the (lo, hi] convention above.
	}
	return out
}

// IntervalName renders bin i of the given cuts as a human-readable label,
// e.g. "(-inf,37.5]", "(37.5,61.5]", "(61.5,+inf)".
func IntervalName(cuts []float64, i int) string {
	lo, hi := "-inf", "+inf"
	if i > 0 {
		lo = fmt.Sprintf("%.4g", cuts[i-1])
	}
	if i < len(cuts) {
		hi = fmt.Sprintf("%.4g", cuts[i])
	}
	if i < len(cuts) {
		return fmt.Sprintf("(%s,%s]", lo, hi)
	}
	return fmt.Sprintf("(%s,%s)", lo, hi)
}

// Column discretizes one numeric column, returning the value vocabulary
// (interval names) and per-record value indices. Records with NaN get -1.
func Column(values []float64, labels []int32, numClasses int) (vocab []string, idx []int32) {
	cuts := FayyadIrani(values, labels, numClasses)
	idx = Apply(values, cuts)
	vocab = make([]string, len(cuts)+1)
	for i := range vocab {
		vocab[i] = IntervalName(cuts, i)
	}
	return vocab, idx
}

// DiscretizeTable converts every numeric column of a raw table (other than
// the class column) into interval-labelled categorical values, using the
// class column for supervision. Non-numeric columns pass through.
func DiscretizeTable(t *dataset.Table, classCol int) (*dataset.Table, error) {
	if classCol < 0 || classCol >= len(t.Header) {
		return nil, fmt.Errorf("disc: class column %d out of range", classCol)
	}
	// Class vocabulary.
	classIdx := make(map[string]int32)
	labels := make([]int32, len(t.Rows))
	for r, row := range t.Rows {
		v := row[classCol]
		ci, ok := classIdx[v]
		if !ok {
			ci = int32(len(classIdx))
			classIdx[v] = ci
		}
		labels[r] = ci
	}

	out := &dataset.Table{Header: t.Header, Lines: t.Lines}
	rows := make([][]string, len(t.Rows))
	for r := range rows {
		rows[r] = make([]string, len(t.Header))
		copy(rows[r], t.Rows[r])
	}
	for c := range t.Header {
		if c == classCol || !t.NumericColumn(c) {
			continue
		}
		values := make([]float64, len(t.Rows))
		for r, row := range t.Rows {
			v := row[c]
			if v == "" || v == "?" {
				values[r] = math.NaN()
				continue
			}
			var f float64
			if _, err := fmt.Sscanf(v, "%g", &f); err != nil {
				return nil, fmt.Errorf("disc: row %d column %q: %w", r, t.Header[c], err)
			}
			values[r] = f
		}
		cuts := FayyadIrani(values, labels, len(classIdx))
		bins := Apply(values, cuts)
		for r := range rows {
			if bins[r] < 0 {
				rows[r][c] = "?"
			} else {
				rows[r][c] = IntervalName(cuts, int(bins[r]))
			}
		}
	}
	out.Rows = rows
	return out, nil
}

// DiscretizeDataset rewrites, in place, every numeric attribute of a
// dataset built by the streaming encoder (dataset.ReadDataset) into
// interval-labelled categorical values, supervised by the class labels.
// It is the post-encode twin of DiscretizeTable: because the streaming
// path never materialises a string table, the numeric test and the float
// parse run over the attribute's value vocabulary instead of the raw
// rows — which visit the exact same value sequence, so the cuts, the
// interval vocabularies and the rewritten cells are byte-identical to
// DiscretizeTable followed by Table.ToDataset.
//
// An attribute is numeric when its vocabulary is non-empty and every
// value parses as a float; vocabularies built by the streaming encoder
// contain exactly the values appearing in some record, matching
// Table.NumericColumn's "at least one non-missing value" rule.
func DiscretizeDataset(d *dataset.Dataset) error {
	n := d.NumRecords()
	var labels []int32
	var values []float64 // reused per attribute
	for a := range d.Schema.Attrs {
		attr := &d.Schema.Attrs[a]
		if !NumericVocab(attr.Values) {
			continue
		}
		// Parse each vocabulary value once with the same scanner
		// DiscretizeTable applies per row, so any parse quirk (a string
		// strconv accepts but Sscanf rejects) fails identically.
		parsed := make([]float64, len(attr.Values))
		for vi, v := range attr.Values {
			var f float64
			if _, err := fmt.Sscanf(v, "%g", &f); err != nil {
				return fmt.Errorf("disc: column %q value %q: %w", attr.Name, v, err)
			}
			parsed[vi] = f
		}
		if labels == nil {
			labels = d.Labels
			values = make([]float64, n)
		}
		for r, cells := range d.Cells {
			if v := cells[a]; v < 0 {
				values[r] = math.NaN()
			} else {
				values[r] = parsed[v]
			}
		}
		cuts := FayyadIrani(values, labels, d.Schema.NumClasses())
		bins := Apply(values, cuts)
		// Rebuild the vocabulary as interval names in first-appearance
		// order — keyed by rendered name, not bin index, because two
		// cuts can round to the same label and must merge, exactly as
		// they would when ToDataset re-reads the rewritten strings.
		byName := make(map[string]int32)
		var vocab []string
		for r := range d.Cells {
			if bins[r] < 0 {
				d.Cells[r][a] = -1
				continue
			}
			name := IntervalName(cuts, int(bins[r]))
			vi, ok := byName[name]
			if !ok {
				vi = int32(len(vocab))
				byName[name] = vi
				vocab = append(vocab, name)
			}
			d.Cells[r][a] = vi
		}
		attr.Values = vocab
	}
	return nil
}

// NumericVocab reports whether vocab is non-empty and entirely parseable
// as floats — the vocabulary-level mirror of Table.NumericColumn. Callers
// that cannot discretize (e.g. out-of-core ingest, where segment bitmaps
// are immutable) use it to detect and reject numeric columns up front.
func NumericVocab(vocab []string) bool {
	if len(vocab) == 0 {
		return false
	}
	for _, v := range vocab {
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			return false
		}
	}
	return true
}
