package disc

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/dataset"
)

func TestFayyadIraniCleanSplit(t *testing.T) {
	// Values below 10 are class 0, above are class 1: one clean cut.
	var values []float64
	var labels []int32
	for i := 0; i < 50; i++ {
		values = append(values, float64(i%10))
		labels = append(labels, 0)
	}
	for i := 0; i < 50; i++ {
		values = append(values, float64(20+i%10))
		labels = append(labels, 1)
	}
	cuts := FayyadIrani(values, labels, 2)
	if len(cuts) != 1 {
		t.Fatalf("cuts = %v, want exactly one", cuts)
	}
	if cuts[0] <= 9 || cuts[0] >= 20 {
		t.Errorf("cut %g not between the classes", cuts[0])
	}
}

func TestFayyadIraniNoSignal(t *testing.T) {
	// Labels independent of values: MDL must reject every split.
	rng := rand.New(rand.NewPCG(1, 2))
	values := make([]float64, 500)
	labels := make([]int32, 500)
	for i := range values {
		values[i] = rng.Float64() * 100
		labels[i] = int32(rng.IntN(2))
	}
	cuts := FayyadIrani(values, labels, 2)
	if len(cuts) > 1 {
		t.Errorf("random data produced %d cuts: %v", len(cuts), cuts)
	}
}

func TestFayyadIraniPureAndTiny(t *testing.T) {
	if cuts := FayyadIrani([]float64{1, 2, 3}, []int32{0, 0, 0}, 2); len(cuts) != 0 {
		t.Errorf("pure labels produced cuts %v", cuts)
	}
	if cuts := FayyadIrani([]float64{1}, []int32{0}, 2); len(cuts) != 0 {
		t.Errorf("single record produced cuts %v", cuts)
	}
	if cuts := FayyadIrani(nil, nil, 2); len(cuts) != 0 {
		t.Errorf("empty input produced cuts %v", cuts)
	}
	// All-equal values cannot be cut.
	if cuts := FayyadIrani([]float64{5, 5, 5, 5}, []int32{0, 1, 0, 1}, 2); len(cuts) != 0 {
		t.Errorf("constant values produced cuts %v", cuts)
	}
}

func TestFayyadIraniThreeWay(t *testing.T) {
	// Three separated clusters with distinct labels: expect two cuts.
	var values []float64
	var labels []int32
	for cl := 0; cl < 3; cl++ {
		for i := 0; i < 60; i++ {
			values = append(values, float64(cl*100+i))
			labels = append(labels, int32(cl))
		}
	}
	cuts := FayyadIrani(values, labels, 3)
	if len(cuts) != 2 {
		t.Fatalf("cuts = %v, want two", cuts)
	}
}

func TestFayyadIraniIgnoresNaN(t *testing.T) {
	values := []float64{1, 2, math.NaN(), 30, 31, math.NaN()}
	labels := []int32{0, 0, 1, 1, 1, 0}
	cuts := FayyadIrani(values, labels, 2)
	// 4 usable records, clean split at ~16.
	if len(cuts) != 1 || cuts[0] < 2 || cuts[0] > 30 {
		t.Errorf("cuts = %v", cuts)
	}
}

func TestApply(t *testing.T) {
	cuts := []float64{10, 20}
	values := []float64{5, 10, 15, 20, 25, math.NaN()}
	want := []int32{0, 0, 1, 1, 2, -1}
	got := Apply(values, cuts)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Apply[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestIntervalName(t *testing.T) {
	cuts := []float64{10, 20}
	names := []string{"(-inf,10]", "(10,20]", "(20,+inf)"}
	for i, want := range names {
		if got := IntervalName(cuts, i); got != want {
			t.Errorf("IntervalName(%d) = %q, want %q", i, got, want)
		}
	}
}

func TestColumnRoundTrip(t *testing.T) {
	var values []float64
	var labels []int32
	for i := 0; i < 100; i++ {
		values = append(values, float64(i))
		if i < 50 {
			labels = append(labels, 0)
		} else {
			labels = append(labels, 1)
		}
	}
	vocab, idx := Column(values, labels, 2)
	if len(vocab) < 2 {
		t.Fatalf("vocab = %v, want >= 2 intervals", vocab)
	}
	for i, v := range idx {
		if v < 0 || int(v) >= len(vocab) {
			t.Errorf("record %d assigned bin %d outside vocab", i, v)
		}
	}
	// Bin assignment is monotone in the value.
	for i := 1; i < len(values); i++ {
		if idx[i] < idx[i-1] {
			t.Error("bins not monotone in value")
		}
	}
}

func TestDiscretizeTable(t *testing.T) {
	tab := &dataset.Table{
		Header: []string{"num", "cat", "class"},
		Rows: [][]string{
			{"1", "a", "yes"}, {"2", "a", "yes"}, {"3", "b", "yes"},
			{"100", "b", "no"}, {"101", "a", "no"}, {"102", "b", "no"},
			{"?", "a", "yes"},
		},
	}
	out, err := DiscretizeTable(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Numeric column became intervals; missing stayed missing.
	if out.Rows[0][0] == "1" {
		t.Error("numeric column not discretized")
	}
	if out.Rows[6][0] != "?" {
		t.Errorf("missing numeric value became %q", out.Rows[6][0])
	}
	// Categorical column untouched.
	for r := range out.Rows {
		if out.Rows[r][1] != tab.Rows[r][1] {
			t.Error("categorical column modified")
		}
	}
	// The discretized table converts into a dataset cleanly.
	ds, err := out.ToDataset(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := DiscretizeTable(tab, 9); err == nil {
		t.Error("bad class column accepted")
	}
}
