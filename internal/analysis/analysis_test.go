package analysis

import "testing"

// Each analyzer gets one firing fixture (every diagnostic it can emit, each
// matched by a // want comment) and one clean fixture (the sanctioned
// idioms, zero diagnostics). RunFixture enforces exact agreement in both
// directions.

func TestDetLintFires(t *testing.T) { RunFixture(t, DetLint, "det/bad") }

func TestDetLintPackageWide(t *testing.T) { RunFixture(t, DetLint, "det/pkgwide") }

func TestDetLintClean(t *testing.T) { RunFixture(t, DetLint, "det/clean") }

func TestNoAllocFires(t *testing.T) { RunFixture(t, NoAlloc, "alloc/bad") }

func TestNoAllocClean(t *testing.T) { RunFixture(t, NoAlloc, "alloc/clean") }

func TestArenaLintFires(t *testing.T) { RunFixture(t, ArenaLint, "arena/bad") }

func TestArenaLintClean(t *testing.T) { RunFixture(t, ArenaLint, "arena/clean") }

func TestCtxLintFires(t *testing.T) { RunFixture(t, CtxLint, "ctx/bad") }

func TestCtxLintClean(t *testing.T) { RunFixture(t, CtxLint, "ctx/clean") }

// TestAnalyzersRegistry pins the suite roster: four analyzers, stable
// names, docs present. The vettool's -help and the DESIGN.md drift test
// both build on these names.
func TestAnalyzersRegistry(t *testing.T) {
	want := []string{"detlint", "noalloc", "arenalint", "ctxlint"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run function", a.Name)
		}
	}
}

// TestWaiverCoverage pins the waiver grammar: a directive covers its own
// line and the next, and nothing else.
func TestWaiverCoverage(t *testing.T) {
	passes := LoadFixture(t, "det/clean")
	for _, pass := range passes {
		found := false
		for file, lines := range pass.marks().waivers {
			for line, dirs := range lines {
				for _, d := range dirs {
					if d == DirOrderOK {
						found = true
						_ = file
						_ = line
					}
				}
			}
		}
		if !found {
			t.Errorf("package %s: no orderok waivers indexed", pass.Pkg.Path())
		}
	}
}
