package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc enforces //armine:noalloc: a marked function's own body must not
// contain the constructs the compiler turns into allocations —
//
//   - make / new / append (append may grow its backing array: preallocate
//     outside the hot path, or carve from an arena);
//   - slice and map composite literals (&T{...} included);
//   - fmt.* / errors.* calls (message formatting allocates; even
//     panic-message formatting belongs in a separate cold helper so the
//     annotated function body stays auditable at a glance);
//   - function literals (closure capture can heap-allocate);
//   - go statements (a goroutine is an allocation);
//   - string concatenation and string <-> []byte/[]rune conversions;
//   - interface boxing: passing or converting a concrete value where an
//     interface is expected (calls through an already-interface-typed
//     operand are fine).
//
// The check is an AST+types heuristic, not escape analysis: plain calls to
// other functions are trusted (that is where cold paths — chunk growth,
// panic formatting — must live), and the allocs/op benchmark gate remains
// the ground truth. A reviewed amortised allocation is waived with
// //armine:allocok -- reason.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "flag allocating constructs (make/append, composite literals, fmt, closures, " +
		"boxing) in //armine:noalloc functions",
}

func init() { NoAlloc.Run = runNoAlloc } // assigned here to avoid an initialization cycle

func runNoAlloc(pass *Pass) error {
	for _, f := range pass.ProdFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pass.FuncMarked(fd, DirNoAlloc) {
				continue
			}
			allocCheckFunc(pass, fd)
		}
	}
	return nil
}

func allocCheckFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(NoAlloc, DirAllocOK, n.Pos(),
				"function literal in noalloc scope: closure capture can heap-allocate")
			return false // its body is not on this function's hot path
		case *ast.GoStmt:
			pass.Reportf(NoAlloc, DirAllocOK, n.Pos(),
				"go statement in noalloc scope allocates a goroutine")
		case *ast.CompositeLit:
			switch pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(NoAlloc, DirAllocOK, n.Pos(),
					"slice literal allocates in noalloc scope")
			case *types.Map:
				pass.Reportf(NoAlloc, DirAllocOK, n.Pos(),
					"map literal allocates in noalloc scope")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass.Info.TypeOf(n.X)) {
				pass.Reportf(NoAlloc, DirAllocOK, n.Pos(),
					"string concatenation allocates in noalloc scope")
			}
		case *ast.CallExpr:
			allocCheckCall(pass, n)
		}
		return true
	})
}

func allocCheckCall(pass *Pass, call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				pass.Reportf(NoAlloc, DirAllocOK, call.Pos(),
					"%s allocates in noalloc scope; preallocate outside the hot path or carve from an arena", id.Name)
			case "append":
				pass.Reportf(NoAlloc, DirAllocOK, call.Pos(),
					"append may grow its backing array in noalloc scope; preallocate with capacity outside the hot path")
			}
			return // other builtins (len, copy, panic, ...) do not allocate themselves
		}
	}

	// Conversions: T(x).
	if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
		to, from := tv.Type, pass.Info.TypeOf(call.Args[0])
		switch {
		case types.IsInterface(to.Underlying()) && !types.IsInterface(from.Underlying()):
			pass.Reportf(NoAlloc, DirAllocOK, call.Pos(),
				"conversion to interface boxes the value in noalloc scope")
		case isString(to) && isByteOrRuneSlice(from), isByteOrRuneSlice(to) && isString(from):
			pass.Reportf(NoAlloc, DirAllocOK, call.Pos(),
				"string/byte-slice conversion copies in noalloc scope")
		}
		return
	}

	// Known-allocating packages.
	pkg, name := calleePath(pass.Info, call)
	switch pkg {
	case "fmt":
		pass.Reportf(NoAlloc, DirAllocOK, call.Pos(),
			"fmt.%s allocates in noalloc scope; move formatting (even panic messages) into a cold helper", name)
		return
	case "errors":
		pass.Reportf(NoAlloc, DirAllocOK, call.Pos(),
			"errors.%s allocates in noalloc scope", name)
		return
	}

	// Interface boxing at call boundaries: a concrete argument passed to an
	// interface-typed parameter forces an allocation (unless the compiler
	// can prove otherwise — which is exactly what this check refuses to bet
	// the hot path on).
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // a ...slice passed on, no per-element boxing here
			}
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if types.IsInterface(pt.Underlying()) && !types.IsInterface(at.Underlying()) {
			pass.Reportf(NoAlloc, DirAllocOK, arg.Pos(),
				"argument boxes a concrete value into an interface parameter in noalloc scope")
		}
	}
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
