package analysis

import (
	"go/ast"
	"go/types"
)

// DetLint enforces //armine:deterministic: inside a marked function (or
// every function of a marked package) it flags the constructs whose
// observable effect depends on scheduler or runtime ordering —
//
//   - ranging over a map (iteration order is randomised; collect the keys
//     and sort, or keep a side slice in insertion order);
//   - time.Now / time.Since / time.Until (wall-clock reads);
//   - the global math/rand and math/rand/v2 generators (shared, seedless
//     state; derive a seeded rand.New(rand.NewPCG(...)) instead);
//   - select statements (arrival order is nondeterministic);
//   - collecting goroutine results by appending inside a range over a
//     channel (completion order leaks into the slice; merge by index).
//
// A reviewed site that is genuinely order-insensitive is waived with
// //armine:orderok -- reason.
var DetLint = &Analyzer{
	Name: "detlint",
	Doc: "flag nondeterministic constructs (map iteration, wall clock, global rand, " +
		"select, unordered goroutine collection) in //armine:deterministic scope",
}

func init() { DetLint.Run = runDetLint } // assigned here to avoid an initialization cycle

// randDetCtors are the math/rand(/v2) package-level functions that merely
// construct explicitly seeded generators — the deterministic way in.
var randDetCtors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func runDetLint(pass *Pass) error {
	pkgWide := pass.PackageMarked(DirDeterministic)
	for _, f := range pass.ProdFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pkgWide || pass.FuncMarked(fd, DirDeterministic) {
				detCheckFunc(pass, fd)
			}
		}
	}
	return nil
}

// detCheckFunc walks one deterministic function, including any function
// literals it launches — a goroutine body spawned inside the scope inherits
// its determinism obligation.
func detCheckFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			detCheckRange(pass, n)
		case *ast.SelectStmt:
			pass.Reportf(DetLint, DirOrderOK, n.Pos(),
				"select in deterministic scope: case arrival order is nondeterministic")
		case *ast.CallExpr:
			detCheckCall(pass, n)
		}
		return true
	})
}

// detCheckRange flags map ranges and unordered channel collection.
func detCheckRange(pass *Pass, rng *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		pass.Reportf(DetLint, DirOrderOK, rng.Pos(),
			"map iteration order is nondeterministic in deterministic scope; sort the keys or keep an insertion-order slice")
	case *types.Chan:
		// Appending whatever arrives, in arrival order, onto a slice that
		// outlives the loop bakes scheduler order into the result. Merging
		// into an indexed slot (results[i] = ...) is fine.
		ast.Inspect(rng.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					pass.Reportf(DetLint, DirOrderOK, call.Pos(),
						"appending inside a range over a channel collects goroutine results in completion order; merge deterministically (e.g. by index)")
				}
			}
			return true
		})
	}
}

// detCheckCall flags wall-clock reads and the global math/rand generators.
func detCheckCall(pass *Pass, call *ast.CallExpr) {
	pkg, name := calleePath(pass.Info, call)
	switch pkg {
	case "time":
		switch name {
		case "Now", "Since", "Until":
			pass.Reportf(DetLint, DirOrderOK, call.Pos(),
				"time.%s reads the wall clock in deterministic scope", name)
		}
	case "math/rand", "math/rand/v2":
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Signature().Recv() != nil {
			return // method on an explicit *Rand: seeded by construction
		}
		if !randDetCtors[name] {
			pass.Reportf(DetLint, DirOrderOK, call.Pos(),
				"%s.%s uses the shared global generator in deterministic scope; derive a seeded rand.New(rand.NewPCG(...))", pkg, name)
		}
	}
}
