package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// This file is the suite's analysistest equivalent: RunFixture type-checks a
// fixture tree under testdata/src and asserts that an analyzer's diagnostics
// match the fixtures' inline `// want "regexp"` expectations exactly — every
// diagnostic must be expected, every expectation must fire. Fixtures import
// only the standard library, so type-checking uses the source importer and
// needs no build cache or network.

// TB is the subset of *testing.T the fixture harness needs; taking the
// interface keeps the testing package out of the armine-vet binary.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// wantRe extracts the quoted expectation patterns from a want comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// fixtureExpectation is one `// want` pattern awaiting a diagnostic.
type fixtureExpectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// LoadFixture parses and type-checks every package directory under
// testdata/src/<root> (nested directories allowed; each directory holding
// .go files is one package whose import path is its path relative to src).
// It returns one Pass per package, in path order, with Report left nil.
func LoadFixture(t TB, root string) []*Pass {
	t.Helper()
	src := filepath.Join("testdata", "src")
	base := filepath.Join(src, root)

	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking fixture %s: %v", root, err)
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		t.Fatalf("fixture %s holds no Go packages", root)
	}

	var passes []*Pass
	for _, dir := range dirs {
		fset := token.NewFileSet()
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		var files []*ast.File
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing fixture: %v", err)
			}
			files = append(files, f)
		}
		rel, err := filepath.Rel(src, dir)
		if err != nil {
			t.Fatalf("relativising %s: %v", dir, err)
		}
		path := filepath.ToSlash(rel)
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
		pkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			t.Fatalf("type-checking fixture package %s: %v", path, err)
		}
		passes = append(passes, &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info})
	}
	return passes
}

// RunFixture runs one analyzer over the fixture tree at testdata/src/<root>
// and checks its diagnostics against the fixtures' `// want` comments.
func RunFixture(t TB, a *Analyzer, root string) {
	t.Helper()
	var diags []Diagnostic
	passes := LoadFixture(t, root)
	for _, pass := range passes {
		pass.Report = func(d Diagnostic) { diags = append(diags, d) }
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on fixture %s: %v", a.Name, root, err)
		}
	}

	var wants []*fixtureExpectation
	for _, pass := range passes {
		for _, f := range pass.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					posn := pass.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", posn.Filename, posn.Line, m[1], err)
						}
						wants = append(wants, &fixtureExpectation{file: posn.Filename, line: posn.Line, re: re})
					}
				}
			}
		}
	}

	posOf := func(d Diagnostic) token.Position {
		for _, pass := range passes {
			if f := pass.Fset.File(d.Pos); f != nil {
				return pass.Fset.Position(d.Pos)
			}
		}
		return token.Position{}
	}
	for _, d := range diags {
		posn := posOf(d)
		matched := false
		for _, w := range wants {
			if !w.used && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", posn.Filename, posn.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q did not fire", w.file, w.line, w.re)
		}
	}
}

// RunSelf runs every analyzer over already-loaded passes and returns the
// combined diagnostics, formatted file:line: analyzer: message. The driver
// meta-test uses it to assert the production tree is clean.
func RunSelf(passes []*Pass) ([]string, error) {
	var out []string
	for _, pass := range passes {
		p := pass
		for _, a := range Analyzers() {
			p.Report = func(d Diagnostic) {
				posn := p.Fset.Position(d.Pos)
				out = append(out, fmt.Sprintf("%s:%d: %s: %s", posn.Filename, posn.Line, a.Name, d.Message))
			}
			if err := a.Run(p); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, p.Pkg.Path(), err)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}
