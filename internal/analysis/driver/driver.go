// Package driver loads type-checked packages for the armine-vet analyzers,
// standalone (via `go list -export`, for the self-check meta-test and the
// bare `armine-vet ./...` mode) and as a `go vet -vettool` unit checker
// speaking cmd/go's .cfg protocol. Both paths type-check the target's
// source against compiler export data, so a whole-repo run costs one build
// cache walk, not a recompile.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
)

// listedPackage is the subset of `go list -json` the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Load lists patterns in dir with export data and returns one type-checked
// analysis.Pass per non-dependency package, sorted by import path. Report
// is left nil for the caller to fill in.
func Load(dir string, patterns ...string) ([]*analysis.Pass, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v: %s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			target := p
			targets = append(targets, &target)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	var passes []*analysis.Pass
	for _, p := range targets {
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		pass, err := check(fset, p.ImportPath, files, exportLookup(exports), nil)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		passes = append(passes, pass)
	}
	return passes, nil
}

// exportLookup opens export data by (already-resolved) package path.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// check type-checks one package from its parsed files against gc export
// data. importMap, when non-nil, resolves source import paths to package
// paths (the vettool config's vendoring map); nil means identity.
func check(fset *token.FileSet, path string, files []*ast.File, lookup func(string) (io.ReadCloser, error), importMap map[string]string) (*analysis.Pass, error) {
	compImp := importer.ForCompiler(fset, "gc", lookup)
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importMap != nil {
			if mapped, ok := importMap[importPath]; ok {
				importPath = mapped
			}
		}
		return compImp.Import(importPath)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// Vet loads patterns in dir, runs the full analyzer suite and returns the
// formatted diagnostics (file:line: analyzer: message), sorted.
func Vet(dir string, patterns ...string) ([]string, error) {
	passes, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	return analysis.RunSelf(passes)
}
