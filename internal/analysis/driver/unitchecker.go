package driver

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

// This file speaks cmd/go's vettool protocol so armine-vet can run as
// `go vet -vettool=$(which armine-vet) ./...`: cmd/go probes the tool with
// -V=full and -flags, then invokes it once per package with a .cfg file
// describing sources, export data and the facts file to write. The facts
// file is always written (empty — these analyzers are package-local) so
// cmd/go can cache and chain dependency runs.

// vetConfig mirrors the JSON cmd/go writes to the .cfg file.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoreFiles               []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the armine-vet entry point. With a .cfg argument (or -V/-flags)
// it follows the vettool protocol; otherwise it loads the given package
// patterns standalone and prints any diagnostics.
func Main() {
	progname := "armine-vet"
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-list] [package patterns]\n", progname)
		fmt.Fprintf(os.Stderr, "   or: go vet -vettool=$(which %s) [package patterns]\n\n", progname)
		fmt.Fprintf(os.Stderr, "Analyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	printVersion := flag.String("V", "", "print version and exit (cmd/go protocol)")
	printFlags := flag.Bool("flags", false, "print analyzer flags as JSON and exit (cmd/go protocol)")
	listOnly := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	switch {
	case *printVersion == "full":
		// cmd/go uses the reported build ID to key the vet action cache, so
		// it must change whenever the tool's binary does.
		exe, err := os.Executable()
		if err != nil {
			fatalf("%v", err)
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, sha256.Sum256(data))
		return
	case *printVersion != "":
		fmt.Printf("%s version devel\n", progname)
		return
	case *printFlags:
		fmt.Println("[]")
		return
	case *listOnly:
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	diags, err := Vet(".", args...)
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "armine-vet: "+format+"\n", args...)
	os.Exit(1)
}

// runUnit analyzes the single package described by a cmd/go .cfg file and
// returns the process exit code.
func runUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fatalf("%v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing %s: %v", cfgFile, err)
	}
	if cfg.VetxOutput != "" {
		// No cross-package facts: an empty facts file satisfies cmd/go's
		// caching contract.
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatalf("%v", err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fatalf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	pass, err := check(fset, cfg.ImportPath, files, lookup, cfg.ImportMap)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fatalf("type-checking %s: %v", cfg.ImportPath, err)
	}

	exit := 0
	for _, a := range analysis.Analyzers() {
		a := a
		pass.Report = func(d analysis.Diagnostic) {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), a.Name, d.Message)
			exit = 2
		}
		if err := a.Run(pass); err != nil {
			fatalf("%s on %s: %v", a.Name, cfg.ImportPath, err)
		}
	}
	return exit
}
