package driver

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// repoRoot returns the module root (this package sits at
// internal/analysis/driver).
func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root not found at %s: %v", root, err)
	}
	return root
}

// TestRepoIsVetClean is the suite's meta-test: the full analyzer suite must
// run clean over the production tree. A failure here means a hot-path
// invariant regressed (or a new violation needs a fix or a reviewed
// //armine: waiver).
func TestRepoIsVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads every package with export data; skipped in -short")
	}
	diags, err := Vet(repoRoot(t), "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestLoadTypeChecks exercises the standalone loader on one package and
// checks the passes carry usable type information.
func TestLoadTypeChecks(t *testing.T) {
	passes, err := Load(repoRoot(t), "./internal/intset")
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 1 {
		t.Fatalf("got %d passes, want 1", len(passes))
	}
	p := passes[0]
	if p.Pkg.Path() != "repro/internal/intset" {
		t.Errorf("package path = %q", p.Pkg.Path())
	}
	if p.Pkg.Scope().Lookup("Arena") == nil {
		t.Errorf("type info lost: intset.Arena not in package scope")
	}
	if len(p.Files) == 0 || p.Info == nil {
		t.Errorf("pass missing files or type info")
	}
}

// TestGoVetVettool is the end-to-end protocol test: build armine-vet and
// run it under `go vet -vettool` the way CI does. It must exit zero and
// print nothing for a clean package.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet; skipped in -short")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "armine-vet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/armine-vet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building armine-vet: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/intset/", "./internal/stats/")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}

	// The protocol probe cmd/go uses must identify the tool and a build ID.
	probe := exec.Command(bin, "-V=full")
	out, err := probe.CombinedOutput()
	if err != nil {
		t.Fatalf("armine-vet -V=full: %v\n%s", err, out)
	}
	if !strings.HasPrefix(string(out), "armine-vet version") || !strings.Contains(string(out), "buildID=") {
		t.Errorf("unexpected -V=full output: %q", out)
	}
}

// TestVetReportsDiagnostics checks the standalone path actually surfaces a
// violation: a scratch module with a deterministic-marked map range must
// produce exactly one detlint diagnostic.
func TestVetReportsDiagnostics(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scratch/internal/permute\n\ngo 1.24\n")
	writeFile(t, filepath.Join(dir, "scratch.go"), `// Package permute is a scratch fixture for the driver test.
//
//armine:deterministic
package permute

func Sum(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`)
	diags, err := Vet(dir, ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0], "detlint") || !strings.Contains(diags[0], "map iteration") {
		t.Errorf("unexpected diagnostic: %s", diags[0])
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRunSelfFormatting pins the diagnostic line format the CI gate greps.
func TestRunSelfFormatting(t *testing.T) {
	passes, err := Load(repoRoot(t), "./internal/analysis")
	if err != nil {
		t.Fatal(err)
	}
	if diags, err := analysis.RunSelf(passes); err != nil {
		t.Fatal(err)
	} else if len(diags) != 0 {
		t.Errorf("internal/analysis not self-clean: %v", diags)
	}
}
