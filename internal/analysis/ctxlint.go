package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// CtxLint enforces context propagation through the long-running layers
// (internal/core, internal/permute, internal/server, internal/mining):
//
//   - context.Background() and context.TODO() are reserved for the API
//     layer; below it they sever cancellation. A single-statement wrapper
//     that delegates to its own *Context variant (Run -> RunContext) is the
//     one sanctioned use.
//   - a context parameter comes first, per convention, and must actually be
//     used — an ignored ctx is a silent cancellation leak;
//   - exported long-running entry points (Run*, Mine*, Serve*) accept a
//     context, delegate to a *Context variant, or carry an explicit
//     //armine:ctxok waiver naming the channel the context arrives through.
var CtxLint = &Analyzer{
	Name: "ctxlint",
	Doc: "require context acceptance and propagation in long-running packages; " +
		"forbid context.Background below the API layer",
}

func init() { CtxLint.Run = runCtxLint } // assigned here to avoid an initialization cycle

// ctxScope selects the packages whose entry points are long-running by
// design. Fixtures reuse the same suffixes under their own module paths.
var ctxScope = regexp.MustCompile(`(^|/)internal/(core|permute|server|mining)$`)

// ctxEntryPoint matches the exported names that start potentially unbounded
// work.
var ctxEntryPoint = regexp.MustCompile(`^(Run|Mine|Serve)`)

func runCtxLint(pass *Pass) error {
	if !ctxScope.MatchString(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.ProdFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxCheckParams(pass, fd)
			ctxCheckBackground(pass, fd)
			ctxCheckEntryPoint(pass, fd)
		}
	}
	return nil
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// ctxParam returns fd's context.Context parameter and its position, or
// (nil, -1).
func ctxParam(pass *Pass, fd *ast.FuncDecl) (*ast.Ident, int) {
	idx := 0
	for _, field := range fd.Type.Params.List {
		if isCtxType(pass.Info.TypeOf(field.Type)) {
			if len(field.Names) > 0 {
				return field.Names[0], idx
			}
			return nil, idx
		}
		if n := len(field.Names); n > 0 {
			idx += n
		} else {
			idx++
		}
	}
	return nil, -1
}

// ctxCheckParams: a context parameter must come first and must be used.
func ctxCheckParams(pass *Pass, fd *ast.FuncDecl) {
	name, idx := ctxParam(pass, fd)
	if idx < 0 {
		return
	}
	if idx > 0 {
		pass.Reportf(CtxLint, DirCtxOK, fd.Type.Params.Pos(),
			"context.Context must be the first parameter of %s", fd.Name.Name)
	}
	if name == nil || name.Name == "_" {
		pass.Reportf(CtxLint, DirCtxOK, fd.Type.Params.Pos(),
			"%s takes a context but discards it; an unnamed ctx severs cancellation", fd.Name.Name)
		return
	}
	obj := pass.Info.Defs[name]
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			used = true
			return false
		}
		return !used
	})
	if !used {
		pass.Reportf(CtxLint, DirCtxOK, name.Pos(),
			"%s accepts ctx but never uses it; propagate it or drop the parameter", fd.Name.Name)
	}
}

// ctxCheckBackground forbids fresh root contexts below the API layer. The
// one sanctioned shape is a delegate wrapper: a single return statement
// calling the function's own *Context variant.
func ctxCheckBackground(pass *Pass, fd *ast.FuncDecl) {
	if isCtxDelegate(pass, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name := calleePath(pass.Info, call); pkg == "context" && (name == "Background" || name == "TODO") {
			pass.Reportf(CtxLint, DirCtxOK, call.Pos(),
				"context.%s below the API layer severs cancellation; accept a ctx or delegate to a *Context variant", name)
		}
		return true
	})
}

// isCtxDelegate reports whether fd is a sanctioned convenience wrapper: its
// body is one return (or one expression statement for void functions) whose
// call resolves to a function named <fd.Name>Context.
func isCtxDelegate(pass *Pass, fd *ast.FuncDecl) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	var call *ast.CallExpr
	switch st := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(st.Results) != 1 {
			return false
		}
		call, _ = st.Results[0].(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = st.X.(*ast.CallExpr)
	}
	if call == nil {
		return false
	}
	fn := calleeFunc(pass.Info, call)
	return fn != nil && fn.Name() == fd.Name.Name+"Context"
}

// ctxCheckEntryPoint: exported Run*/Mine*/Serve* functions must accept a
// context, be a delegate wrapper onto one that does, or carry a waiver.
func ctxCheckEntryPoint(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	if !fd.Name.IsExported() || !ctxEntryPoint.MatchString(name) {
		return
	}
	if strings.HasSuffix(name, "Context") {
		return // the *Context variant is checked via ctxCheckParams
	}
	if _, idx := ctxParam(pass, fd); idx >= 0 {
		return
	}
	if isCtxDelegate(pass, fd) {
		return
	}
	if pass.FuncMarked(fd, DirCtxOK) {
		return
	}
	pass.Reportf(CtxLint, DirCtxOK, fd.Name.Pos(),
		"exported entry point %s starts long-running work without accepting a context; add a ctx parameter or a %sContext variant", name, name)
}
