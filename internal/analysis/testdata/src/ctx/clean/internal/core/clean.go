// Package core is a ctxlint clean fixture: entry points in the sanctioned
// shapes — a ctx-first variant, its single-statement convenience delegate,
// and an explicitly waived legacy entry point — producing zero diagnostics.
package core

import "context"

// RunContext is the real entry point; ctx comes first and is used.
func RunContext(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Run is the sanctioned convenience wrapper: one statement delegating to
// the *Context variant.
func Run(n int) error { return RunContext(context.Background(), n) }

// RunConfigured consumes its context through a config struct instead of a
// parameter, which the waiver records.
//
//armine:ctxok -- the context arrives via the session config, not a parameter
func RunConfigured() {}

// ServeContext exercises the Serve prefix with a compliant signature.
func ServeContext(ctx context.Context) error { return ctx.Err() }

// Serve delegates to ServeContext in the sanctioned single-statement shape.
func Serve() error { return ServeContext(context.Background()) }
