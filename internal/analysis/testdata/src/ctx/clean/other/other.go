// Package other is a ctxlint scope fixture: it commits every ctx sin but
// sits outside the internal/(core|permute|server|mining) scope, so ctxlint
// must stay silent.
package other

import "context"

func RunFree() error {
	return context.Background().Err()
}
