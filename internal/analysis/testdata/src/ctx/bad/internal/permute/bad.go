// Package permute is a ctxlint firing fixture: its import path ends in
// internal/permute, putting it in the long-running scope, and every entry
// point mishandles its context.
package permute

import "context"

func run(ctx context.Context) error { return ctx.Err() }

func RunAll() { // want "without accepting a context"
	_ = run(context.Background()) // want "severs cancellation"
}

func RunSwapped(n int, ctx context.Context) error { // want "must be the first parameter"
	_ = n
	return ctx.Err()
}

func RunIgnored(ctx context.Context) int { // want "never uses it"
	return 0
}

func RunAnon(context.Context) {} // want "discards it"

func MineTodo(ctx context.Context) error {
	_ = ctx
	inner := context.TODO() // want "severs cancellation"
	return inner.Err()
}
