// Package clean is an arenalint clean fixture: the same miniature arena
// used with the full sanctioned vocabulary — sibling pairs, LIFO nesting,
// deferred rewinds, loops — producing zero diagnostics.
package clean

type mark struct{ chunk, off int }

// Arena is the minimal Checkpoint/Rewind shape arenalint matches.
type Arena struct {
	used int
	m    mark
}

func (a *Arena) Checkpoint() mark { return a.m }

func (a *Arena) Rewind(m mark) { a.m = m }

func Paired(a *Arena) int {
	m := a.Checkpoint()
	a.used++
	a.Rewind(m)
	return a.used
}

func Nested(a *Arena) {
	outer := a.Checkpoint()
	inner := a.Checkpoint()
	a.used++
	a.Rewind(inner)
	a.Rewind(outer)
}

func Deferred(a *Arena, n int) int {
	m := a.Checkpoint()
	defer a.Rewind(m)
	if n > 0 {
		return n
	}
	return a.used
}

func InLoop(a *Arena, xs []int) int {
	total := 0
	for _, x := range xs {
		m := a.Checkpoint()
		total += x + a.used
		a.Rewind(m)
	}
	return total
}
