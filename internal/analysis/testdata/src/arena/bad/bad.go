// Package bad is an arenalint firing fixture: a miniature arena carrying
// the Checkpoint/Rewind method pair, used in every way the discipline
// forbids. No annotation is involved — arenalint recognises the shape.
package bad

type mark struct{ chunk, off int }

// Arena is the minimal shape arenalint matches: Checkpoint() returning a
// mark and Rewind(mark) returning nothing.
type Arena struct {
	used int
	m    mark
}

func (a *Arena) Checkpoint() mark { return a.m }

func (a *Arena) Rewind(m mark) { a.m = m }

func worker(a *Arena) { a.used++ }

var leaked *Arena

func Discarded(a *Arena) {
	a.Checkpoint()     // want "result discarded"
	_ = a.Checkpoint() // want "result discarded"
}

func Missing(a *Arena) int {
	m := a.Checkpoint() // want "no matching Rewind in this block"
	_ = m
	return a.used
}

func NonLIFO(a *Arena) {
	m1 := a.Checkpoint()
	m2 := a.Checkpoint()
	a.Rewind(m1) // want "non-LIFO rewind"
	a.Rewind(m2)
}

func Double(a *Arena) {
	m := a.Checkpoint()
	a.Rewind(m)
	a.Rewind(m) // want "rewound twice"
}

func Leaky(a *Arena, n int) int {
	m := a.Checkpoint()
	if n > 0 {
		return n // want "return between Arena.Checkpoint and its Rewind"
	}
	a.Rewind(m)
	return 0
}

func Escapes(a *Arena, ch chan *Arena) {
	ch <- a      // want "sent on a channel"
	leaked = a   // want "package-level variable"
	go worker(a) // want "passed to a new goroutine"
}
