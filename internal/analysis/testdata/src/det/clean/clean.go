// Package clean is a detlint clean fixture: deterministic-marked functions
// written the sanctioned way — sorted keys, seeded generators, waived
// order-insensitive sites — producing zero diagnostics.
package clean

import (
	"math/rand/v2"
	"sort"
)

//armine:deterministic
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//armine:orderok -- keys are sorted before any consumer sees them
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

//armine:deterministic
func Seeded(seed uint64) uint64 {
	r := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	return r.Uint64()
}

//armine:deterministic
func Watch(done chan struct{}, tick chan int) int {
	n := 0
	//armine:orderok -- cancellation watcher; the count is order-insensitive
	select {
	case <-done:
	case <-tick:
		n++
	}
	return n
}

//armine:deterministic
func MergeByIndex(ch chan int, results []int) {
	for v := range ch {
		results[v%len(results)] = v
	}
}
