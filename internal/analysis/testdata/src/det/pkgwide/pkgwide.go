// Package pkgwide verifies that a deterministic directive in the package
// comment puts every function in scope without per-function annotation.
//
//armine:deterministic
package pkgwide

func Flatten(m map[int]int) int {
	s := 0
	for _, v := range m { // want "map iteration order is nondeterministic"
		s += v
	}
	return s
}
