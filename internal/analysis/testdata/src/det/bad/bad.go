// Package bad is a detlint firing fixture: every function is marked
// deterministic and commits exactly the ordering sins the analyzer exists
// to catch.
package bad

import (
	"math/rand/v2"
	"time"
)

//armine:deterministic
func Collect(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order is nondeterministic"
		keys = append(keys, k)
	}
	return keys
}

//armine:deterministic
func Stamp() int64 {
	return time.Now().UnixNano() // want "reads the wall clock"
}

//armine:deterministic
func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "reads the wall clock"
}

//armine:deterministic
func Draw() uint64 {
	return rand.Uint64() // want "shared global generator"
}

//armine:deterministic
func Gather(ch chan int, done chan struct{}) []int {
	var out []int
	select { // want "case arrival order is nondeterministic"
	case <-done:
	default:
	}
	for v := range ch {
		out = append(out, v) // want "completion order"
	}
	return out
}

// Unmarked reproduces every construct above without the directive: detlint
// must stay silent here.
func Unmarked(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	n += int(time.Now().UnixNano()) + int(rand.Uint64())
	return n
}
