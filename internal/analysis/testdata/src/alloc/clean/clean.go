// Package clean is a noalloc clean fixture: marked functions that index,
// copy and call helpers without touching the allocator, plus one reviewed
// waived allocation — zero diagnostics.
package clean

func cold(n int) []int { return make([]int, n) }

//armine:noalloc
func Accumulate(dst, src []int) int {
	n := 0
	for i := range src {
		if i < len(dst) {
			dst[i] += src[i]
			n += dst[i]
		}
	}
	return n
}

//armine:noalloc
func Fill(dst []int, v int) {
	for i := range dst {
		dst[i] = v
	}
}

//armine:noalloc
func Waived(n int) []int {
	return make([]int, n) //armine:allocok -- one-time construction; the bench allocs/op gate is the backstop
}

//armine:noalloc
func WaivedAbove(n int) []int {
	//armine:allocok -- amortised growth, measured by the bench gate
	return append(cold(n), n)
}
