// Package bad is a noalloc firing fixture: each marked function commits one
// allocating construct the analyzer must flag.
package bad

import (
	"errors"
	"fmt"
)

func helper() {}

func sink(v any) { _ = v }

//armine:noalloc
func Builtins(dst []int, n int) []int {
	buf := make([]int, n) // want "make allocates"
	copy(buf, dst)
	return append(dst, n) // want "append may grow its backing array"
}

//armine:noalloc
func Literals(k string) int {
	xs := []int{1, 2, 3}      // want "slice literal allocates"
	m := map[string]int{k: 1} // want "map literal allocates"
	return xs[0] + m[k]
}

//armine:noalloc
func Closure() {
	f := func() {} // want "closure capture can heap-allocate"
	f()
	go helper() // want "go statement in noalloc scope"
}

//armine:noalloc
func Strings(a, b string, bs []byte) string {
	s := a + b      // want "string concatenation allocates"
	t := string(bs) // want "string/byte-slice conversion copies"
	return s + t    // want "string concatenation allocates"
}

//armine:noalloc
func Formatting(n int) error {
	_ = fmt.Sprintf("n=%d", n) // want "fmt.Sprintf allocates"
	return errors.New("boom")  // want "errors.New allocates"
}

//armine:noalloc
func Boxing(n int) {
	v := any(n) // want "conversion to interface boxes"
	_ = v
	sink(n) // want "boxes a concrete value into an interface parameter"
}

// Unmarked allocates freely: noalloc must stay silent without the directive.
func Unmarked(n int) []int {
	return append(make([]int, 0), n)
}
