// Package analysis is the repo's static-analysis suite: a small,
// dependency-free go/analysis-style framework plus four repo-specific
// analyzers that turn the engine's load-bearing conventions — byte-identical
// results at every worker count (detlint), allocation-free steady-state
// counting (noalloc), strictly-LIFO arena checkpoint/rewind discipline
// (arenalint) and context propagation through the long-running layers
// (ctxlint) — into machine-checked properties of every diff. The analyzers
// are driven by cmd/armine-vet (both standalone and as a `go vet -vettool`)
// and documented, together with the //armine: annotation grammar they
// consume, in DESIGN.md §9.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) so the suite could later move onto the real multichecker
// verbatim; it is hand-rolled here because the module is deliberately
// dependency-free and the toolchain's go/ast + go/types carry everything
// these checks need.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check. The shape deliberately matches
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and drift tests.
	Name string
	// Doc is the one-paragraph description printed by armine-vet -help.
	Doc string
	// Run executes the analyzer against one package.
	Run func(*Pass) error
}

// A Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Report receives each diagnostic. The driver fills it in.
	Report func(Diagnostic)

	marksCache *markSet // lazily built annotation index
}

// Diagnostic is one finding, positioned in Fset.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a formatted diagnostic at pos unless the position carries
// a matching waiver directive (see Waived).
func (p *Pass) Reportf(a *Analyzer, waiver string, pos token.Pos, format string, args ...any) {
	if waiver != "" && p.Waived(pos, waiver) {
		return
	}
	p.Report(Diagnostic{Pos: pos, Analyzer: a.Name, Message: fmt.Sprintf(format, args...)})
}

// The annotation grammar (DESIGN.md §9). Scope directives mark what a
// function (or package) promises; waiver directives acknowledge a specific
// flagged site as reviewed-and-safe and must carry a reason after " -- ".
const (
	// DirDeterministic marks a function — or, in a package comment, a whole
	// package — whose observable output must be byte-identical across runs,
	// worker counts and map iteration orders. Checked by detlint.
	DirDeterministic = "//armine:deterministic"
	// DirNoAlloc marks a function whose steady-state execution must not
	// touch the allocator. Checked by noalloc; cold paths (growth, panics)
	// belong in separate unannotated helpers.
	DirNoAlloc = "//armine:noalloc"
	// DirOrderOK waives one detlint finding: the flagged construct is
	// order-insensitive (e.g. a cancellation watcher, or a map collect loop
	// whose result is sorted before use).
	DirOrderOK = "//armine:orderok"
	// DirAllocOK waives one noalloc finding: the flagged allocation is
	// amortised or provably off the steady-state path.
	DirAllocOK = "//armine:allocok"
	// DirCtxOK waives one ctxlint finding: the entry point consumes a
	// context through another channel (e.g. permute.Config.Ctx).
	DirCtxOK = "//armine:ctxok"
)

// markSet indexes a package's //armine: directives: which functions (and
// whether the whole package) carry each scope directive, and which source
// lines carry each waiver.
type markSet struct {
	pkgDirs map[string]bool // package-comment scope directives present
	funcs   map[*ast.FuncDecl][]string
	// waivers maps file -> line -> waiver directives on or immediately
	// above that line.
	waivers map[string]map[int][]string
}

// parseDirective returns the directive token of a comment ("//armine:foo"
// or "//armine:foo -- reason"), or "" when the comment is not one.
func parseDirective(c *ast.Comment) string {
	t := c.Text
	if !strings.HasPrefix(t, "//armine:") {
		return ""
	}
	if i := strings.Index(t, " "); i >= 0 {
		t = t[:i]
	}
	return t
}

// marks builds (once) the package's annotation index.
func (p *Pass) marks() *markSet {
	if p.marksCache != nil {
		return p.marksCache
	}
	m := &markSet{
		pkgDirs: map[string]bool{},
		funcs:   map[*ast.FuncDecl][]string{},
		waivers: map[string]map[int][]string{},
	}
	for _, f := range p.Files {
		if f.Doc != nil {
			for _, c := range f.Doc.List {
				if d := parseDirective(c); d != "" {
					m.pkgDirs[d] = true
				}
			}
		}
		file := p.Fset.File(f.Pos())
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := parseDirective(c)
				if d == "" {
					continue
				}
				name := file.Name()
				if m.waivers[name] == nil {
					m.waivers[name] = map[int][]string{}
				}
				line := p.Fset.Position(c.Pos()).Line
				// A waiver covers its own line and the next: trailing
				// same-line comments and own-line comments above the
				// flagged statement both work.
				m.waivers[name][line] = append(m.waivers[name][line], d)
				m.waivers[name][line+1] = append(m.waivers[name][line+1], d)
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if d := parseDirective(c); d != "" {
					m.funcs[fd] = append(m.funcs[fd], d)
				}
			}
		}
	}
	p.marksCache = m
	return m
}

// Waived reports whether pos sits on (or directly under) a line carrying
// the given waiver directive.
func (p *Pass) Waived(pos token.Pos, dir string) bool {
	m := p.marks()
	posn := p.Fset.Position(pos)
	for _, d := range m.waivers[posn.Filename][posn.Line] {
		if d == dir {
			return true
		}
	}
	return false
}

// PackageMarked reports whether the package comment carries dir.
func (p *Pass) PackageMarked(dir string) bool { return p.marks().pkgDirs[dir] }

// FuncMarked reports whether fd's doc comment carries dir.
func (p *Pass) FuncMarked(fd *ast.FuncDecl, dir string) bool {
	for _, d := range p.marks().funcs[fd] {
		if d == dir {
			return true
		}
	}
	return false
}

// IsTestFile reports whether pos lies in a _test.go file. The analyzers
// check production invariants only: test files may iterate maps, allocate
// and block freely.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ProdFiles returns the pass's non-test files.
func (p *Pass) ProdFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		if !p.IsTestFile(f.Pos()) {
			out = append(out, f)
		}
	}
	return out
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function or method), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleePath returns the defining package path and name of a call's callee
// ("", "" when unresolved or not a named function).
func calleePath(info *types.Info, call *ast.CallExpr) (pkg, name string) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// Analyzers returns the full armine-vet suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetLint, NoAlloc, ArenaLint, CtxLint}
}
