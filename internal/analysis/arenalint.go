package analysis

import (
	"go/ast"
	"go/types"
)

// ArenaLint enforces the intset.Arena checkpoint/rewind discipline
// mechanically, with no annotation required: it recognises any type that
// carries a Checkpoint()/Rewind(mark) method pair (intset.Arena[T] in this
// repo) and checks, inside every production function that takes
// checkpoints, that
//
//   - every Checkpoint result is bound to a variable (not discarded) and
//     rewound in the same statement block, either by a later sibling
//     Rewind(mark) or by an immediate defer;
//   - sibling checkpoint/rewind pairs nest strictly LIFO — an outer mark is
//     never rewound while an inner one is outstanding (the arena panics on
//     this at runtime; the linter catches it before the test does);
//   - no return statement escapes the region between a checkpoint and its
//     rewind (defer the rewind instead);
//   - an arena value never leaves the worker that owns it: not sent on a
//     channel, not assigned to a package-level variable, not handed to a
//     new goroutine as an argument.
//
// Keeping each pair inside one block is part of the enforced style: it is
// what makes the LIFO discipline auditable locally.
var ArenaLint = &Analyzer{
	Name: "arenalint",
	Doc: "enforce block-local, strictly-LIFO Arena Checkpoint/Rewind pairing and " +
		"worker ownership of arena values",
}

func init() { ArenaLint.Run = runArenaLint } // assigned here to avoid an initialization cycle

func runArenaLint(pass *Pass) error {
	for _, f := range pass.ProdFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			arenaCheckBlock(pass, fd.Body.List)
			arenaCheckEscapes(pass, fd.Body)
		}
	}
	return nil
}

// isArenaType reports whether t (possibly behind a pointer) carries the
// Checkpoint/Rewind method pair.
func isArenaType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.(*types.Named); !ok {
		return false
	}
	var cp, rw bool
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		fn := ms.At(i).Obj().(*types.Func)
		sig := fn.Signature()
		switch fn.Name() {
		case "Checkpoint":
			cp = sig.Params().Len() == 0 && sig.Results().Len() == 1
		case "Rewind":
			rw = sig.Params().Len() == 1 && sig.Results().Len() == 0
		}
	}
	return cp && rw
}

// arenaMethodCall matches a call of the form recv.Name(...) where recv is
// an arena. It returns the call's receiver expression, or nil.
func arenaMethodCall(pass *Pass, call *ast.CallExpr, name string) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	if !isArenaType(pass.Info.TypeOf(sel.X)) {
		return nil
	}
	return sel.X
}

// pair tracks one sibling-level checkpoint awaiting its rewind.
type arenaPair struct {
	markObj  types.Object // the variable holding the mark
	pos      int          // index of the checkpoint statement in the block
	rewindAt int          // index of the sibling Rewind (-1: deferred or missing)
	deferred bool
}

// arenaCheckBlock scans one statement list for checkpoint/rewind pairs,
// then recurses into nested blocks. The pairing rules are deliberately
// syntactic — a pair must live in one block — so the scan never needs
// cross-block flow analysis.
func arenaCheckBlock(pass *Pass, stmts []ast.Stmt) {
	var pairs []*arenaPair

	markOf := func(arg ast.Expr) types.Object {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			return nil
		}
		return pass.Info.Uses[id]
	}

	for i, st := range stmts {
		switch st := st.(type) {
		case *ast.AssignStmt:
			if len(st.Rhs) == 1 {
				if call, ok := st.Rhs[0].(*ast.CallExpr); ok && arenaMethodCall(pass, call, "Checkpoint") != nil {
					if len(st.Lhs) == 1 {
						if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
							obj := pass.Info.Defs[id]
							if obj == nil {
								obj = pass.Info.Uses[id]
							}
							pairs = append(pairs, &arenaPair{markObj: obj, pos: i, rewindAt: -1})
							continue
						}
					}
					pass.Reportf(ArenaLint, "", call.Pos(),
						"Arena.Checkpoint result discarded: bind the mark and Rewind it in this block")
				}
			}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok && arenaMethodCall(pass, call, "Checkpoint") != nil {
				pass.Reportf(ArenaLint, "", call.Pos(),
					"Arena.Checkpoint result discarded: bind the mark and Rewind it in this block")
				continue
			}
			if call, ok := st.X.(*ast.CallExpr); ok && arenaMethodCall(pass, call, "Rewind") != nil && len(call.Args) == 1 {
				obj := markOf(call.Args[0])
				matched := false
				for j := len(pairs) - 1; j >= 0; j-- {
					p := pairs[j]
					if p.markObj != nil && p.markObj == obj {
						matched = true
						if p.rewindAt >= 0 || p.deferred {
							pass.Reportf(ArenaLint, "", call.Pos(),
								"mark is rewound twice in this block")
							break
						}
						// LIFO: every pair opened after this one must
						// already be closed.
						for k := j + 1; k < len(pairs); k++ {
							inner := pairs[k]
							if inner.rewindAt < 0 && !inner.deferred {
								pass.Reportf(ArenaLint, "", call.Pos(),
									"non-LIFO rewind: an inner checkpoint taken at a later statement is still outstanding")
								break
							}
						}
						p.rewindAt = i
						break
					}
				}
				_ = matched // a rewind of a mark from an enclosing scope or parameter is legal
			}
		case *ast.DeferStmt:
			if arenaMethodCall(pass, st.Call, "Rewind") != nil && len(st.Call.Args) == 1 {
				obj := markOf(st.Call.Args[0])
				for j := len(pairs) - 1; j >= 0; j-- {
					if p := pairs[j]; p.markObj != nil && p.markObj == obj && p.rewindAt < 0 && !p.deferred {
						p.deferred = true
						break
					}
				}
			}
		}
	}

	// Unrewound checkpoints, and returns escaping an open region.
	for _, p := range pairs {
		cpStmt := stmts[p.pos]
		if p.rewindAt < 0 && !p.deferred {
			pass.Reportf(ArenaLint, "", cpStmt.Pos(),
				"Arena.Checkpoint has no matching Rewind in this block (pairs must be block-local, as a sibling statement or an immediate defer)")
			continue
		}
		if p.deferred {
			continue // a deferred rewind covers every exit path
		}
		for i := p.pos + 1; i < p.rewindAt; i++ {
			ast.Inspect(stmts[i], func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return false
				case *ast.ReturnStmt:
					pass.Reportf(ArenaLint, "", n.Pos(),
						"return between Arena.Checkpoint and its Rewind leaks the checkpoint; defer the rewind")
				}
				return true
			})
		}
	}

	// Recurse into nested statement blocks.
	for _, st := range stmts {
		ast.Inspect(st, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				arenaCheckBlock(pass, n.List)
				return false
			case *ast.CaseClause:
				arenaCheckBlock(pass, n.Body)
				return false
			case *ast.CommClause:
				arenaCheckBlock(pass, n.Body)
				return false
			case *ast.FuncLit:
				arenaCheckBlock(pass, n.Body.List)
				return false
			}
			return true
		})
	}
}

// arenaCheckEscapes flags arena values leaving their owning worker.
func arenaCheckEscapes(pass *Pass, body *ast.BlockStmt) {
	isArena := func(e ast.Expr) bool { return isArenaType(pass.Info.TypeOf(e)) }
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if isArena(n.Value) {
				pass.Reportf(ArenaLint, "", n.Value.Pos(),
					"arena sent on a channel: an arena is owned by one worker and must not cross goroutines")
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) && len(n.Rhs) != 1 {
					continue
				}
				obj := pass.Info.Uses[id]
				if obj == nil {
					continue
				}
				v, ok := obj.(*types.Var)
				if !ok || v.Parent() != pass.Pkg.Scope() {
					continue
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if isArena(rhs) {
					pass.Reportf(ArenaLint, "", n.Pos(),
						"arena stored in a package-level variable: arenas are per-worker state")
				}
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if isArena(arg) {
					pass.Reportf(ArenaLint, "", arg.Pos(),
						"arena passed to a new goroutine: an arena is owned by one worker")
				}
			}
		}
		return true
	})
}
