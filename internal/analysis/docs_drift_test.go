package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// These drift tests keep DESIGN.md §9 and the README's "Static analysis"
// section in lockstep with the code, the same way the CLI's README flag
// test works: every directive the framework defines and every analyzer in
// the suite must be documented by name, so renaming one without re-reading
// the docs fails the build.

func readDoc(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatalf("reading %s: %v", name, err)
	}
	return string(data)
}

func TestDesignDocumentsAnnotationGrammar(t *testing.T) {
	design := readDoc(t, "DESIGN.md")
	if !strings.Contains(design, "## 9. Static Analysis") {
		t.Fatalf("DESIGN.md lost its §9 static-analysis section")
	}
	sec := design[strings.Index(design, "## 9. Static Analysis"):]
	for _, dir := range []string{DirDeterministic, DirNoAlloc, DirOrderOK, DirAllocOK, DirCtxOK} {
		if !strings.Contains(sec, dir) {
			t.Errorf("DESIGN.md §9 does not document the %s directive", dir)
		}
	}
	for _, a := range Analyzers() {
		if !strings.Contains(sec, a.Name) {
			t.Errorf("DESIGN.md §9 does not document the %s analyzer", a.Name)
		}
	}
}

func TestReadmeDocumentsStaticAnalysis(t *testing.T) {
	readme := readDoc(t, "README.md")
	if !strings.Contains(readme, "## Static analysis") {
		t.Fatalf("README.md lost its \"Static analysis\" section")
	}
	sec := readme[strings.Index(readme, "## Static analysis"):]
	for _, want := range []string{"armine-vet", "-vettool", DirDeterministic, DirNoAlloc} {
		if !strings.Contains(sec, want) {
			t.Errorf("README \"Static analysis\" section does not mention %s", want)
		}
	}
	for _, a := range Analyzers() {
		if !strings.Contains(sec, a.Name) {
			t.Errorf("README \"Static analysis\" section does not name the %s analyzer", a.Name)
		}
	}
}
