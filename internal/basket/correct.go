package basket

import (
	"sort"

	"repro/internal/correction"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/permute"
)

// mineClosedEncoded runs the shared closed miner over a basket encoding.
func mineClosedEncoded(enc *dataset.Encoded, opts Options) (*mining.Tree, error) {
	return mining.MineClosed(enc, mining.Options{
		MinSup:        opts.MinSup,
		StoreDiffsets: true,
		MaxLen:        opts.MaxLen,
		MaxNodes:      opts.MaxNodes,
		Workers:       opts.Workers,
	})
}

// Bonferroni controls FWER at alpha over the mined rules.
func Bonferroni(rules []Rule, alpha float64) *correction.Outcome {
	ps := pvalues(rules)
	return correction.Bonferroni(ps, len(ps), alpha)
}

// BenjaminiHochberg controls FDR at alpha over the mined rules.
func BenjaminiHochberg(rules []Rule, alpha float64) *correction.Outcome {
	ps := pvalues(rules)
	return correction.BenjaminiHochberg(ps, len(ps), alpha)
}

// PermFWER controls FWER at alpha with per-consequent permutation nulls:
// rules are grouped by consequent y; each group's null is built by
// shuffling the "contains y" labels (N permutations) — exactly the paper's
// §4.2 procedure on the induced two-class problem — and the alpha budget
// is split evenly across consequent groups (Bonferroni across groups,
// Westfall–Young within). Joint permutation across consequents would
// require permuting transaction contents themselves; the split is the
// conservative composition.
//
// The returned outcome indexes the input rules slice. Cutoff is -1 because
// thresholds are per consequent.
func PermFWER(d *Data, rules []Rule, alpha float64, numPerms int, seed uint64, workers int) (*correction.Outcome, error) {
	groups := make(map[int][]int) // consequent -> rule indices
	for i := range rules {
		groups[rules[i].Consequent] = append(groups[rules[i].Consequent], i)
	}
	out := &correction.Outcome{
		Method:   "Basket_Perm_FWER",
		Alpha:    alpha,
		NumTests: len(rules),
		Cutoff:   -1,
	}
	if len(groups) == 0 {
		return out, nil
	}
	perGroupAlpha := alpha / float64(len(groups))

	consequents := make([]int, 0, len(groups))
	for y := range groups {
		consequents = append(consequents, y)
	}
	sort.Ints(consequents)

	for _, y := range consequents {
		idx := groups[y]
		minSup := rules[idx[0]].Coverage
		for _, i := range idx {
			if rules[i].Coverage < minSup {
				minSup = rules[i].Coverage
			}
		}
		enc := d.LabeledByItem(y)
		tree, err := mineClosedEncoded(enc, Options{MinSup: minSup, Workers: workers})
		if err != nil {
			return nil, err
		}

		// Map each basket rule to the tree node carrying its antecedent.
		// Closedness is label-independent, so every antecedent (a closed
		// itemset of the same transaction data) appears in this tree.
		nodeOf := make(map[string]*mining.Node, len(tree.Nodes))
		for _, node := range tree.Nodes {
			nodeOf[closureKey(node.Closure)] = node
		}
		classRules := make([]mining.Rule, 0, len(idx))
		kept := make([]int, 0, len(idx))
		for _, i := range idx {
			node, ok := nodeOf[anteKey(rules[i].Antecedent)]
			if !ok {
				continue
			}
			classRules = append(classRules, mining.Rule{
				Node:       node,
				Class:      1, // "contains y"
				Support:    rules[i].Support,
				Coverage:   rules[i].Coverage,
				Confidence: rules[i].Confidence,
				P:          rules[i].P,
			})
			kept = append(kept, i)
		}
		if len(classRules) == 0 {
			continue
		}
		engine, err := permute.NewEngine(tree, classRules, permute.Config{
			NumPerms: numPerms,
			Seed:     seed ^ uint64(y)*0x9e3779b97f4a7c15,
			Opt:      permute.OptStaticBuffer,
			Workers:  workers,
		})
		if err != nil {
			return nil, err
		}
		cutoff := correction.PermFWERCutoff(engine.MinP(), perGroupAlpha)
		if cutoff < 0 {
			continue
		}
		for gi, cr := range classRules {
			if cr.P <= cutoff {
				out.Significant = append(out.Significant, kept[gi])
			}
		}
	}
	sort.Ints(out.Significant)
	return out, nil
}

// closureKey renders a closure as a map key.
func closureKey(items []dataset.Item) string {
	b := make([]byte, 0, 4*len(items))
	for _, it := range items {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

func anteKey(items []int) string {
	b := make([]byte, 0, 4*len(items))
	for _, it := range items {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

func pvalues(rules []Rule) []float64 {
	ps := make([]float64, len(rules))
	for i := range rules {
		ps[i] = rules[i].P
	}
	return ps
}
