// Package basket extends the reproduction to general (market-basket)
// association rules X ⇒ y over transaction data, the setting of Agrawal et
// al. that §2 of the paper presents class association rules as a special
// case of ("the definitions and methods described in the paper can be
// easily extended to other forms of association rules").
//
// A transaction is a set of items; rules have a single-item consequent
// y ∉ X. The two-tailed Fisher exact test applies unchanged to the 2×2
// table (X present/absent × y present/absent), and so do the direct
// adjustment corrections. The permutation null is built per consequent:
// shuffling which transactions contain y is exactly the class-label
// shuffle of the main pipeline with the binary class "contains y", so the
// engine is reused as is; the per-consequent FWER levels are combined with
// a Bonferroni split across consequents.
package basket

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/intset"
	"repro/internal/stats"
)

// Data is a transaction database in vertical form: Tids[i] lists the
// transactions containing item i, sorted ascending.
type Data struct {
	NumTx int
	Names []string // item names; item id = index
	Tids  [][]uint32
}

// NumItems returns the number of distinct items.
func (d *Data) NumItems() int { return len(d.Names) }

// Support returns an item's transaction count.
func (d *Data) Support(item int) int { return len(d.Tids[item]) }

// FromTransactions builds a Data from item-name transactions. Item ids are
// assigned in first-appearance order; duplicate items within a transaction
// are ignored.
func FromTransactions(tx [][]string) *Data {
	d := &Data{NumTx: len(tx)}
	index := make(map[string]int)
	for t, items := range tx {
		seen := make(map[int]bool, len(items))
		for _, name := range items {
			id, ok := index[name]
			if !ok {
				id = len(d.Names)
				index[name] = id
				d.Names = append(d.Names, name)
				d.Tids = append(d.Tids, nil)
			}
			if !seen[id] {
				seen[id] = true
				d.Tids[id] = append(d.Tids[id], uint32(t))
			}
		}
	}
	return d
}

// ReadBasket parses one transaction per line, items separated by spaces
// and/or commas. Empty lines are skipped.
func ReadBasket(r io.Reader) (*Data, error) {
	var tx [][]string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == ',' || r == '\t' })
		tx = append(tx, fields)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("basket: %w", err)
	}
	return FromTransactions(tx), nil
}

// Encoded adapts the transaction data to the closed miner's input: one
// single-valued attribute per item (item present ⇔ attribute set), a
// single dummy class. The miner's closed patterns over this encoding are
// exactly the closed frequent itemsets.
func (d *Data) Encoded() *dataset.Encoded {
	schema := &dataset.Schema{Class: dataset.Attribute{Name: "·", Values: []string{"·"}}}
	for _, name := range d.Names {
		schema.Attrs = append(schema.Attrs, dataset.Attribute{Name: name, Values: []string{"1"}})
	}
	return &dataset.Encoded{
		Enc:         dataset.NewEncoding(schema),
		NumRecords:  d.NumTx,
		Tids:        d.Tids,
		Labels:      make([]int32, d.NumTx),
		NumClasses:  1,
		ClassCounts: []int{d.NumTx},
	}
}

// LabeledByItem builds the class-rule view for consequent y: a two-class
// encoding of the same transactions where the class of a transaction is
// "contains y". Permuting these labels is the §4.2 null for all rules with
// consequent y.
func (d *Data) LabeledByItem(y int) *dataset.Encoded {
	enc := d.Encoded()
	labels := make([]int32, d.NumTx)
	for _, t := range d.Tids[y] {
		labels[t] = 1
	}
	enc.Labels = labels
	enc.NumClasses = 2
	enc.ClassCounts = []int{d.NumTx - len(d.Tids[y]), len(d.Tids[y])}
	return enc
}

// Rule is a general association rule X ⇒ y.
type Rule struct {
	Antecedent []int // item ids, ascending
	Consequent int   // item id, not in Antecedent
	Coverage   int   // supp(X)
	Support    int   // supp(X ∪ {y})
	Confidence float64
	P          float64 // two-tailed Fisher p-value
}

// String renders the rule with item names.
func (r *Rule) Format(d *Data) string {
	parts := make([]string, len(r.Antecedent))
	for i, it := range r.Antecedent {
		parts[i] = d.Names[it]
	}
	return fmt.Sprintf("%s => %s (cvg=%d supp=%d conf=%.3f p=%.3g)",
		strings.Join(parts, " ^ "), d.Names[r.Consequent],
		r.Coverage, r.Support, r.Confidence, r.P)
}

// Options configures basket rule mining.
type Options struct {
	// MinSup is the minimum antecedent support (transactions).
	MinSup int
	// MinRuleSup is the minimum support of X ∪ {y} (default 1).
	MinRuleSup int
	// MinConf filters rules below this confidence (domain filter; the
	// statistical filter is the correction downstream).
	MinConf float64
	// MaxLen caps antecedent length (0 = unlimited).
	MaxLen int
	// Consequents restricts the allowed RHS items (nil = every item).
	Consequents []int
	// MaxNodes bounds the closed-pattern count (0 = unlimited).
	MaxNodes int
	// Workers bounds the miner's goroutines (0 = GOMAXPROCS).
	Workers int
}

// Mine enumerates rules X ⇒ y with X a closed frequent itemset and y a
// single item outside X, scored with the two-tailed Fisher exact test.
// Rules are returned in tree order, consequents ascending within a
// pattern.
func Mine(d *Data, opts Options) ([]Rule, error) {
	if opts.MinSup < 1 {
		return nil, fmt.Errorf("basket: MinSup must be >= 1, got %d", opts.MinSup)
	}
	if opts.MinRuleSup < 1 {
		opts.MinRuleSup = 1
	}
	enc := d.Encoded()
	tree, err := mineClosedEncoded(enc, opts)
	if err != nil {
		return nil, err
	}

	allowed := opts.Consequents
	if allowed == nil {
		allowed = make([]int, d.NumItems())
		for i := range allowed {
			allowed[i] = i
		}
	}
	lf := stats.NewLogFact(d.NumTx)
	hyper := make(map[int]*stats.Hypergeom, len(allowed))
	for _, y := range allowed {
		hyper[y] = stats.NewHypergeom(d.NumTx, d.Support(y), lf)
	}

	var rules []Rule
	for _, node := range tree.Nodes {
		if len(node.Closure) == 0 {
			continue
		}
		ante := make([]int, len(node.Closure))
		inAnte := make(map[int]bool, len(node.Closure))
		for i, it := range node.Closure {
			ante[i] = int(it)
			inAnte[int(it)] = true
		}
		tids := node.MaterializeTids()
		for _, y := range allowed {
			if inAnte[y] {
				continue
			}
			k := intset.IntersectCount(tids, d.Tids[y])
			if k < opts.MinRuleSup {
				continue
			}
			conf := float64(k) / float64(node.Support)
			if conf < opts.MinConf {
				continue
			}
			rules = append(rules, Rule{
				Antecedent: ante,
				Consequent: y,
				Coverage:   node.Support,
				Support:    k,
				Confidence: conf,
				P:          hyper[y].FisherTwoTailed(k, node.Support),
			})
		}
	}
	return rules, nil
}

// SortByP orders rules ascending by p-value (ties: higher coverage first).
func SortByP(rules []Rule) {
	sort.SliceStable(rules, func(i, j int) bool {
		if rules[i].P != rules[j].P {
			return rules[i].P < rules[j].P
		}
		return rules[i].Coverage > rules[j].Coverage
	})
}
