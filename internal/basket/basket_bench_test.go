package basket

import (
	"math/rand/v2"
	"testing"
)

func benchData(b *testing.B) *Data {
	b.Helper()
	rng := rand.New(rand.NewPCG(1, 2))
	return FromTransactions(groceries(2000, rng))
}

func BenchmarkMineBasket(b *testing.B) {
	d := benchData(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rules, err := Mine(d, Options{MinSup: 100, MinRuleSup: 50})
		if err != nil {
			b.Fatal(err)
		}
		sinkRules = rules
	}
}

func BenchmarkBasketPermFWER(b *testing.B) {
	d := benchData(b)
	rules, err := Mine(d, Options{MinSup: 100, MinRuleSup: 50, MinConf: 0.4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := PermFWER(d, rules, 0.05, 50, 3, 0)
		if err != nil {
			b.Fatal(err)
		}
		sinkOutcome = out
	}
}

var (
	sinkRules   []Rule
	sinkOutcome any
)
