package basket

import (
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/stats"
)

// groceries builds a synthetic transaction set where {bread, butter} ⇒
// milk is a real planted association and the rest is noise.
func groceries(n int, rng *rand.Rand) [][]string {
	itemPool := []string{"apples", "beer", "chips", "diapers", "eggs", "flour", "grapes", "ham"}
	var tx [][]string
	for i := 0; i < n; i++ {
		var t []string
		if rng.Float64() < 0.3 {
			t = append(t, "bread", "butter")
			if rng.Float64() < 0.8 {
				t = append(t, "milk")
			}
		} else {
			if rng.Float64() < 0.3 {
				t = append(t, "bread")
			}
			if rng.Float64() < 0.3 {
				t = append(t, "butter")
			}
			if rng.Float64() < 0.3 {
				t = append(t, "milk")
			}
		}
		for _, it := range itemPool {
			if rng.Float64() < 0.25 {
				t = append(t, it)
			}
		}
		if len(t) == 0 {
			t = append(t, "eggs")
		}
		tx = append(tx, t)
	}
	return tx
}

func TestFromTransactions(t *testing.T) {
	d := FromTransactions([][]string{
		{"a", "b", "a"}, // duplicate ignored
		{"b", "c"},
		{"a"},
	})
	if d.NumTx != 3 || d.NumItems() != 3 {
		t.Fatalf("dims %d tx, %d items", d.NumTx, d.NumItems())
	}
	if d.Support(0) != 2 { // "a" in tx 0, 2
		t.Errorf("supp(a) = %d, want 2", d.Support(0))
	}
	if d.Support(1) != 2 || d.Support(2) != 1 {
		t.Errorf("supports wrong: b=%d c=%d", d.Support(1), d.Support(2))
	}
	// Tids sorted.
	for i, tids := range d.Tids {
		for j := 1; j < len(tids); j++ {
			if tids[j] <= tids[j-1] {
				t.Errorf("item %d tids not sorted: %v", i, tids)
			}
		}
	}
}

func TestReadBasket(t *testing.T) {
	in := "a b c\n\nb,c\n a\t d\n"
	d, err := ReadBasket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTx != 3 {
		t.Fatalf("%d transactions, want 3", d.NumTx)
	}
	if d.NumItems() != 4 {
		t.Fatalf("%d items, want 4", d.NumItems())
	}
}

func TestMineFindsPlantedRule(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	d := FromTransactions(groceries(2000, rng))
	rules, err := Mine(d, Options{MinSup: 100, MinRuleSup: 50, MinConf: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules mined")
	}
	SortByP(rules)
	// The planted rule (or a closure containing it) should be near the
	// top with milk as consequent.
	found := false
	for _, r := range rules[:min(10, len(rules))] {
		if d.Names[r.Consequent] != "milk" {
			continue
		}
		names := map[string]bool{}
		for _, a := range r.Antecedent {
			names[d.Names[a]] = true
		}
		if names["bread"] && names["butter"] {
			found = true
			if r.Confidence < 0.6 {
				t.Errorf("planted rule confidence %f, want >= 0.6", r.Confidence)
			}
		}
	}
	if !found {
		t.Error("planted {bread,butter} => milk not in the top 10 by p-value")
	}
	// Rule invariants.
	for _, r := range rules {
		if r.Support > r.Coverage {
			t.Fatal("support exceeds coverage")
		}
		if r.P < 0 || r.P > 1 {
			t.Fatalf("p = %g", r.P)
		}
		for _, a := range r.Antecedent {
			if a == r.Consequent {
				t.Fatal("consequent inside antecedent")
			}
		}
	}
}

func TestMineFisherAgreesWithDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	d := FromTransactions(groceries(500, rng))
	rules, err := Mine(d, Options{MinSup: 40, MinRuleSup: 10})
	if err != nil {
		t.Fatal(err)
	}
	lf := stats.NewLogFact(d.NumTx)
	for _, r := range rules[:min(50, len(rules))] {
		h := stats.NewHypergeom(d.NumTx, d.Support(r.Consequent), lf)
		want := h.FisherTwoTailed(r.Support, r.Coverage)
		if r.P != want {
			t.Fatalf("rule p %g != direct %g", r.P, want)
		}
	}
}

func TestCorrectionsOnNoise(t *testing.T) {
	// Pure-noise transactions: corrections should certify (almost)
	// nothing while raw alpha lets plenty through.
	rng := rand.New(rand.NewPCG(5, 6))
	items := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	var tx [][]string
	for t := 0; t < 1000; t++ {
		var row []string
		for _, it := range items {
			if rng.Float64() < 0.3 {
				row = append(row, it)
			}
		}
		if len(row) == 0 {
			row = append(row, "a")
		}
		tx = append(tx, row)
	}
	d := FromTransactions(tx)
	rules, err := Mine(d, Options{MinSup: 50, MinRuleSup: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) < 100 {
		t.Skipf("only %d rules", len(rules))
	}
	raw := 0
	for _, r := range rules {
		if r.P <= 0.05 {
			raw++
		}
	}
	bc := Bonferroni(rules, 0.05)
	bh := BenjaminiHochberg(rules, 0.05)
	if len(bc.Significant) > raw/10 {
		t.Errorf("Bonferroni kept %d of %d raw hits on noise", len(bc.Significant), raw)
	}
	if len(bh.Significant) > len(rules)/20 {
		t.Errorf("BH certified %d of %d rules on noise", len(bh.Significant), len(rules))
	}
}

func TestPermFWEREndToEnd(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	d := FromTransactions(groceries(1500, rng))
	rules, err := Mine(d, Options{MinSup: 80, MinRuleSup: 40, MinConf: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	out, err := PermFWER(d, rules, 0.05, 100, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Significant) == 0 {
		t.Fatal("permutation certified nothing despite a strong planted rule")
	}
	// Every certified rule involves the planted trio or a strong marginal
	// association — at minimum, the planted one must be certified.
	foundMilk := false
	for _, i := range out.Significant {
		r := rules[i]
		if d.Names[r.Consequent] == "milk" {
			names := map[string]bool{}
			for _, a := range r.Antecedent {
				names[d.Names[a]] = true
			}
			if names["bread"] && names["butter"] {
				foundMilk = true
			}
		}
	}
	if !foundMilk {
		t.Error("planted rule not certified by per-consequent permutation FWER")
	}
	// Certified set is a subset of the raw p <= 0.05 set.
	for _, i := range out.Significant {
		if rules[i].P > 0.05 {
			t.Errorf("certified rule with p = %g", rules[i].P)
		}
	}
}

func TestMineValidation(t *testing.T) {
	d := FromTransactions([][]string{{"a"}})
	if _, err := Mine(d, Options{MinSup: 0}); err == nil {
		t.Error("MinSup=0 accepted")
	}
}

func TestConsequentRestriction(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	d := FromTransactions(groceries(400, rng))
	milk := -1
	for i, n := range d.Names {
		if n == "milk" {
			milk = i
		}
	}
	rules, err := Mine(d, Options{MinSup: 30, Consequents: []int{milk}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Consequent != milk {
			t.Fatalf("rule with consequent %s despite restriction", d.Names[r.Consequent])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
