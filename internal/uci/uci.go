// Package uci provides offline stand-ins for the four UCI datasets the
// paper evaluates on (adult, german, hypo, mushroom). The module runs in
// an offline environment, so the real files cannot be fetched; instead,
// each stand-in is a seeded generator that matches the real dataset's
// shape — record count, attribute count and cardinalities, class balance —
// and plants class-conditional attribute dependencies whose strength is
// calibrated to reproduce the qualitative p-value distribution of Fig 15:
//
//   - adult and mushroom: strong dependencies on most attributes, so the
//     vast majority of mined rules have p-values below 1e-12;
//   - german and hypo: weak-to-moderate dependencies, leaving a thick band
//     of rules with p-values between 1e-6 and 1e-2 — the regime where the
//     permutation approach outperforms direct adjustment (§5.6).
//
// The paper's real-data experiments (Figs 4, 5, 14, 15, 16 and Table 4)
// compare the *relative* behaviour of the correction approaches, which is
// driven by exactly these distributional properties, not by the datasets'
// semantics — that is the substitution rationale: shape-matched stand-ins
// preserve the comparisons even though the records themselves differ.
// See DESIGN.md §5 for the full substitution rationale.
package uci

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/dataset"
	"repro/internal/disc"
)

// attrSpec describes one generated attribute.
type attrSpec struct {
	name string
	// card is the number of values (categorical) — 0 means continuous.
	card int
	// sep is the class separation strength in [0, 1): 0 = independent of
	// class, higher = stronger class-conditional shift.
	sep float64
}

// spec describes one stand-in dataset.
type spec struct {
	name       string
	numRecords int
	classes    []string
	classFrac  []float64 // fraction of records per class
	attrs      []attrSpec
}

// specs matches Table 2 of the paper: adult 32561×14, german 1000×20,
// hypo 3163×25, mushroom 8124×22, all 2-class.
var specs = map[string]spec{
	"adult": {
		name:       "adult",
		numRecords: 32561,
		classes:    []string{"<=50K", ">50K"},
		classFrac:  []float64{0.759, 0.241},
		attrs: []attrSpec{
			{"age", 0, 0.30}, {"workclass", 7, 0.15}, {"fnlwgt", 0, 0.02},
			{"education", 16, 0.35}, {"education-num", 0, 0.40},
			{"marital-status", 7, 0.45}, {"occupation", 14, 0.35},
			{"relationship", 6, 0.50}, {"race", 5, 0.10}, {"sex", 2, 0.20},
			{"capital-gain", 0, 0.30}, {"capital-loss", 0, 0.15},
			{"hours-per-week", 0, 0.25}, {"native-country", 10, 0.05},
		},
	},
	"german": {
		name:       "german",
		numRecords: 1000,
		classes:    []string{"good", "bad"},
		classFrac:  []float64{0.7, 0.3},
		attrs: []attrSpec{
			{"checking", 4, 0.22}, {"duration", 0, 0.15}, {"history", 5, 0.12},
			{"purpose", 10, 0.06}, {"amount", 0, 0.08}, {"savings", 5, 0.10},
			{"employment", 5, 0.08}, {"installment", 4, 0.04}, {"personal", 4, 0.05},
			{"debtors", 3, 0.04}, {"residence", 4, 0.02}, {"property", 4, 0.08},
			{"age", 0, 0.08}, {"plans", 3, 0.06}, {"housing", 3, 0.05},
			{"credits", 4, 0.03}, {"job", 4, 0.04}, {"liable", 2, 0.02},
			{"telephone", 2, 0.03}, {"foreign", 2, 0.04},
		},
	},
	"hypo": {
		name:       "hypo",
		numRecords: 3163,
		classes:    []string{"negative", "hypothyroid"},
		classFrac:  []float64{0.952, 0.048},
		attrs: []attrSpec{
			{"age", 0, 0.08}, {"sex", 2, 0.05}, {"on-thyroxine", 2, 0.10},
			{"query-thyroxine", 2, 0.03}, {"on-antithyroid", 2, 0.03},
			{"sick", 2, 0.04}, {"pregnant", 2, 0.02}, {"surgery", 2, 0.03},
			{"I131", 2, 0.03}, {"query-hypothyroid", 2, 0.08},
			{"query-hyperthyroid", 2, 0.04}, {"lithium", 2, 0.01},
			{"goitre", 2, 0.03}, {"tumor", 2, 0.02}, {"hypopituitary", 2, 0.01},
			{"psych", 2, 0.02}, {"TSH-measured", 2, 0.06}, {"TSH", 0, 0.35},
			{"T3-measured", 2, 0.05}, {"T3", 0, 0.20}, {"TT4-measured", 2, 0.05},
			{"TT4", 0, 0.30}, {"T4U", 0, 0.10}, {"FTI", 0, 0.30},
			{"referral", 5, 0.04},
		},
	},
	"mushroom": {
		name:       "mushroom",
		numRecords: 8124,
		classes:    []string{"edible", "poisonous"},
		classFrac:  []float64{0.518, 0.482},
		attrs: []attrSpec{
			{"cap-shape", 6, 0.35}, {"cap-surface", 4, 0.45}, {"cap-color", 10, 0.35},
			{"bruises", 2, 0.70}, {"odor", 9, 0.95}, {"gill-attachment", 2, 0.25},
			{"gill-spacing", 2, 0.50}, {"gill-size", 2, 0.75}, {"gill-color", 12, 0.65},
			{"stalk-shape", 2, 0.40}, {"stalk-root", 5, 0.55},
			{"stalk-surface-above", 4, 0.75}, {"stalk-surface-below", 4, 0.70},
			{"stalk-color-above", 9, 0.55}, {"stalk-color-below", 9, 0.55},
			{"veil-type", 2, 0.0}, {"veil-color", 4, 0.25}, {"ring-number", 3, 0.35},
			{"ring-type", 5, 0.80}, {"spore-print-color", 9, 0.85},
			{"population", 6, 0.50}, {"habitat", 7, 0.45},
		},
	},
}

// Names lists the available stand-ins in the order the paper's Table 2
// uses.
func Names() []string { return []string{"adult", "german", "hypo", "mushroom"} }

// Load generates the named stand-in dataset. Continuous attributes are
// generated as class-conditional Gaussians and discretized with the
// Fayyad–Irani MDL method (as the paper did with MLC++). Equal seeds give
// identical datasets.
func Load(name string, seed uint64) (*dataset.Dataset, error) {
	sp, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("uci: unknown dataset %q (have %v)", name, Names())
	}
	return generate(sp, seed), nil
}

// generate builds the dataset from its spec.
func generate(sp spec, seed uint64) *dataset.Dataset {
	rng := rand.New(rand.NewPCG(seed, hash64(sp.name)))
	n := sp.numRecords

	// Labels by exact class fractions, shuffled.
	labels := make([]int32, 0, n)
	for c := range sp.classes {
		cnt := int(math.Round(sp.classFrac[c] * float64(n)))
		if c == len(sp.classes)-1 {
			cnt = n - len(labels)
		}
		for i := 0; i < cnt; i++ {
			labels = append(labels, int32(c))
		}
	}
	rng.Shuffle(n, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })

	numClasses := len(sp.classes)
	schema := &dataset.Schema{Class: dataset.Attribute{Name: "class", Values: sp.classes}}
	cols := make([][]int32, len(sp.attrs))

	for a, as := range sp.attrs {
		if as.card == 0 {
			vocab, idx := continuousColumn(rng, labels, numClasses, as.sep)
			schema.Attrs = append(schema.Attrs, dataset.Attribute{Name: as.name, Values: vocab})
			cols[a] = idx
		} else {
			vocab, idx := categoricalColumn(rng, labels, numClasses, as.card, as.sep)
			schema.Attrs = append(schema.Attrs, dataset.Attribute{Name: as.name, Values: vocab})
			cols[a] = idx
		}
	}

	d := dataset.New(schema, n)
	for r := 0; r < n; r++ {
		cells := make([]int32, len(sp.attrs))
		for a := range cells {
			cells[a] = cols[a][r]
		}
		d.Append(cells, labels[r])
	}
	return d
}

// categoricalColumn draws a column whose value distribution shifts with
// the class: each class blends a shared base multinomial with its own
// class-specific multinomial, the blend weight being the separation
// strength.
func categoricalColumn(rng *rand.Rand, labels []int32, numClasses, card int, sep float64) ([]string, []int32) {
	base := dirichletish(rng, card)
	perClass := make([][]float64, numClasses)
	for c := range perClass {
		own := dirichletish(rng, card)
		mix := make([]float64, card)
		for v := 0; v < card; v++ {
			mix[v] = (1-sep)*base[v] + sep*own[v]
		}
		perClass[c] = cumulative(mix)
	}
	idx := make([]int32, len(labels))
	for r, c := range labels {
		idx[r] = int32(sample(rng, perClass[c]))
	}
	vocab := make([]string, card)
	for v := range vocab {
		vocab[v] = fmt.Sprintf("v%d", v)
	}
	return vocab, idx
}

// continuousColumn draws class-conditional Gaussians whose means are
// separated by sep (in units of the standard deviation) and discretizes
// them with Fayyad–Irani — exactly the treatment the paper applied to the
// real datasets' continuous attributes.
func continuousColumn(rng *rand.Rand, labels []int32, numClasses int, sep float64) ([]string, []int32) {
	means := make([]float64, numClasses)
	for c := range means {
		// Spread class means over ±3·sep standard deviations.
		means[c] = 6 * sep * (float64(c)/float64(max(numClasses-1, 1)) - 0.5)
	}
	values := make([]float64, len(labels))
	for r, c := range labels {
		values[r] = means[c] + rng.NormFloat64()
	}
	return disc.Column(values, labels, numClasses)
}

// dirichletish returns a random probability vector (normalised Exp(1)
// draws — a symmetric Dirichlet(1)).
func dirichletish(rng *rand.Rand, k int) []float64 {
	out := make([]float64, k)
	sum := 0.0
	for i := range out {
		out[i] = rng.ExpFloat64() + 1e-9
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// cumulative converts a probability vector into its CDF.
func cumulative(p []float64) []float64 {
	out := make([]float64, len(p))
	acc := 0.0
	for i, v := range p {
		acc += v
		out[i] = acc
	}
	out[len(out)-1] = 1 // guard against rounding
	return out
}

// sample draws an index from a CDF.
func sample(rng *rand.Rand, cdf []float64) int {
	u := rng.Float64()
	for i, c := range cdf {
		if u <= c {
			return i
		}
	}
	return len(cdf) - 1
}

// hash64 derives a stable per-name stream for the PCG.
func hash64(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
