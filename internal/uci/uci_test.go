package uci

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mining"
)

func TestLoadShapesMatchTable2(t *testing.T) {
	want := map[string]struct{ records, attrs int }{
		"adult":    {32561, 14},
		"german":   {1000, 20},
		"hypo":     {3163, 25},
		"mushroom": {8124, 22},
	}
	for name, w := range want {
		d, err := Load(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d.NumRecords() != w.records {
			t.Errorf("%s: %d records, want %d", name, d.NumRecords(), w.records)
		}
		if d.Schema.NumAttrs() != w.attrs {
			t.Errorf("%s: %d attributes, want %d", name, d.Schema.NumAttrs(), w.attrs)
		}
		if d.Schema.NumClasses() != 2 {
			t.Errorf("%s: %d classes, want 2", name, d.Schema.NumClasses())
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("iris", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestLoadDeterministic(t *testing.T) {
	a, _ := Load("german", 7)
	b, _ := Load("german", 7)
	for r := range a.Cells {
		if a.Labels[r] != b.Labels[r] {
			t.Fatal("labels differ for equal seeds")
		}
		for c := range a.Cells[r] {
			if a.Cells[r][c] != b.Cells[r][c] {
				t.Fatal("cells differ for equal seeds")
			}
		}
	}
}

func TestClassBalance(t *testing.T) {
	want := map[string]float64{"adult": 0.759, "german": 0.7, "hypo": 0.952, "mushroom": 0.518}
	for name, frac := range want {
		d, _ := Load(name, 3)
		counts := d.ClassCounts()
		got := float64(counts[0]) / float64(d.NumRecords())
		if math.Abs(got-frac) > 0.005 {
			t.Errorf("%s: majority fraction %g, want %g", name, got, frac)
		}
	}
}

// TestPValueDistributionShape verifies the Fig 15 calibration targets:
// on german a substantial share of rules falls in the moderate band
// p ∈ (1e-6, 1e-2], while on mushroom most rules are below 1e-12.
func TestPValueDistributionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("mining stand-ins is slow")
	}
	frac := func(name string, minSup int) (tiny, moderate float64) {
		d, err := Load(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		enc := dataset.Encode(d)
		tree, err := mining.MineClosed(enc, mining.Options{MinSup: minSup, StoreDiffsets: true, MaxNodes: 200000})
		if err != nil {
			t.Fatal(err)
		}
		rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
		if err != nil {
			t.Fatal(err)
		}
		if len(rules) == 0 {
			t.Fatalf("%s: no rules at minSup %d", name, minSup)
		}
		var nTiny, nMod int
		for i := range rules {
			switch {
			case rules[i].P <= 1e-12:
				nTiny++
			case rules[i].P > 1e-6 && rules[i].P <= 1e-2:
				nMod++
			}
		}
		return float64(nTiny) / float64(len(rules)), float64(nMod) / float64(len(rules))
	}

	tinyG, modG := frac("german", 60)
	if modG < 0.15 {
		t.Errorf("german: moderate-p fraction %.2f, want a thick band (>= 0.15)", modG)
	}
	_ = tinyG

	tinyM, _ := frac("mushroom", 600)
	if tinyM < 0.5 {
		t.Errorf("mushroom: tiny-p fraction %.2f, want most rules <= 1e-12", tinyM)
	}
}
