package correction

import (
	"context"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/permute"
	"repro/internal/synth"
)

// adaptiveCase mines a synthetic dataset and returns the tree and scored
// rule set an adaptive-vs-fixed comparison runs on.
func adaptiveCase(t *testing.T, seed uint64, n, attrs, minSup int, diffsets bool) (*mining.Tree, []mining.Rule) {
	t.Helper()
	p := synth.PaperDefaults()
	p.N = n
	p.Attrs = attrs
	p.Seed = seed
	res, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	enc := dataset.Encode(res.Data)
	tree, err := mining.MineClosed(enc, mining.Options{MinSup: minSup, StoreDiffsets: diffsets})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
	if err != nil {
		t.Fatal(err)
	}
	return tree, rules
}

func sameOutcome(t *testing.T, label string, got, want *Outcome) {
	t.Helper()
	if got.Cutoff != want.Cutoff {
		t.Errorf("%s: cutoff %g != %g", label, got.Cutoff, want.Cutoff)
	}
	if len(got.Significant) != len(want.Significant) {
		t.Fatalf("%s: %d significant != %d", label, len(got.Significant), len(want.Significant))
	}
	for i := range got.Significant {
		if got.Significant[i] != want.Significant[i] {
			t.Fatalf("%s: significant[%d] = %d != %d", label, i, got.Significant[i], want.Significant[i])
		}
	}
}

// TestAdaptiveNoRetireByteIdentical pins the tentpole contract: an
// adaptive run with retirement disabled (Exceedances < 0) is byte-
// identical to a fixed run of the same budget — per-permutation min-p,
// pooled counts and both correction outcomes — at every optimisation
// level and worker count, because every permutation derives its labels
// from (Seed, perm-index) regardless of round boundaries.
func TestAdaptiveNoRetireByteIdentical(t *testing.T) {
	const maxPerms = 120
	const alpha = 0.05
	for _, opt := range []permute.OptLevel{permute.OptNone, permute.OptDynamicBuffer, permute.OptDiffsets, permute.OptStaticBuffer} {
		tree, rules := adaptiveCase(t, 5, 300, 8, 20, opt.WantDiffsets())
		for _, workers := range []int{1, 3} {
			fixed, err := permute.NewEngine(tree, rules, permute.Config{
				NumPerms: maxPerms, Seed: 9, Opt: opt, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			mkAdaptive := func(mode permute.AdaptiveMode) *permute.AdaptiveResult {
				adaptive, err := permute.NewEngine(tree, rules, permute.Config{
					Seed: 9, Opt: opt, Workers: workers,
					Adaptive: permute.Adaptive{MinPerms: 16, MaxPerms: maxPerms, Exceedances: -1},
				})
				if err != nil {
					t.Fatal(err)
				}
				res, err := adaptive.RunAdaptive(mode, alpha)
				if err != nil {
					t.Fatal(err)
				}
				if res.PermsRun != maxPerms || res.Rounds < 2 {
					t.Fatalf("opt=%v: PermsRun=%d Rounds=%d, want full budget over several rounds", opt, res.PermsRun, res.Rounds)
				}
				if res.RulesRetired != 0 || res.PermsSaved != 0 {
					t.Fatalf("opt=%v: retirement disabled but %d retired, %d saved", opt, res.RulesRetired, res.PermsSaved)
				}
				return res
			}
			fres := mkAdaptive(permute.AdaptFWER)
			wantMinP := fixed.MinP()
			for j := range wantMinP {
				if fres.MinP[j] != wantMinP[j] {
					t.Fatalf("opt=%v workers=%d perm %d: adaptive MinP %g != fixed %g",
						opt, workers, j, fres.MinP[j], wantMinP[j])
				}
			}
			sameOutcome(t, "FWER", AdaptivePermFWER(fres, rules, alpha), PermFWER(fixed, rules, alpha))

			dres := mkAdaptive(permute.AdaptFDR)
			wantLE := fixed.CountLE()
			for i := range wantLE {
				if dres.PoolLE[i] != wantLE[i] {
					t.Fatalf("opt=%v workers=%d rule %d: adaptive PoolLE %d != fixed CountLE %d",
						opt, workers, i, dres.PoolLE[i], wantLE[i])
				}
			}
			if want := int64(maxPerms) * int64(len(rules)); dres.TotalSamples != want {
				t.Fatalf("opt=%v: TotalSamples %d != %d", opt, dres.TotalSamples, want)
			}
			sameOutcome(t, "FDR", AdaptivePermFDR(dres, rules, alpha), PermFDR(fixed, rules, alpha))
		}
	}
}

// TestAdaptiveMatchesFixedSignificantSet is the property test of the
// retirement prongs: with retirement ON, the adaptive and fixed runs must
// agree on the significant SET (not just the p-value ordering) across
// randomized synthetic datasets, seeds, worker counts and the
// word-counting ablation — while actually retiring rules, or the test
// would be vacuous.
func TestAdaptiveMatchesFixedSignificantSet(t *testing.T) {
	const maxPerms = 400
	const alpha = 0.05
	type cell struct {
		dataSeed uint64
		permSeed uint64
	}
	cells := []cell{{5, 101}, {11, 7}, {31, 42}}
	totalRetired := 0
	for _, c := range cells {
		tree, rules := adaptiveCase(t, c.dataSeed, 400, 10, 25, true)
		for _, workers := range []int{1, 4} {
			for _, disableWords := range []bool{false, true} {
				for _, fdr := range []bool{false, true} {
					fixed, err := permute.NewEngine(tree, rules, permute.Config{
						NumPerms: maxPerms, Seed: c.permSeed, Workers: workers,
						DisableWordCounting: disableWords,
					})
					if err != nil {
						t.Fatal(err)
					}
					adaptive, err := permute.NewEngine(tree, rules, permute.Config{
						Seed: c.permSeed, Workers: workers,
						DisableWordCounting: disableWords,
						Adaptive:            permute.Adaptive{MinPerms: 50, MaxPerms: maxPerms},
					})
					if err != nil {
						t.Fatal(err)
					}
					mode := permute.AdaptFWER
					if fdr {
						mode = permute.AdaptFDR
					}
					res, err := adaptive.RunAdaptive(mode, alpha)
					if err != nil {
						t.Fatal(err)
					}
					totalRetired += res.RulesRetired
					var got, want *Outcome
					if fdr {
						got, want = AdaptivePermFDR(res, rules, alpha), PermFDR(fixed, rules, alpha)
					} else {
						got, want = AdaptivePermFWER(res, rules, alpha), PermFWER(fixed, rules, alpha)
					}
					if len(got.Significant) != len(want.Significant) {
						t.Fatalf("seed=%d/%d workers=%d words=%v mode=%v: adaptive %d significant != fixed %d",
							c.dataSeed, c.permSeed, workers, !disableWords, mode, len(got.Significant), len(want.Significant))
					}
					for i := range got.Significant {
						if got.Significant[i] != want.Significant[i] {
							t.Fatalf("seed=%d/%d mode=%v: significant sets differ at %d: %d != %d",
								c.dataSeed, c.permSeed, mode, i, got.Significant[i], want.Significant[i])
						}
					}
				}
			}
		}
	}
	if totalRetired == 0 {
		t.Fatal("no rule ever retired: the property test exercised nothing")
	}
}

// TestAdaptiveRetirementSavesWork asserts the cost story: on a dataset
// where most rules are nowhere near significance, retirement must shrink
// the evaluation count by a large factor.
func TestAdaptiveRetirementSavesWork(t *testing.T) {
	tree, rules := adaptiveCase(t, 5, 400, 10, 25, true)
	e, err := permute.NewEngine(tree, rules, permute.Config{
		Seed:     3,
		Adaptive: permute.Adaptive{MinPerms: 50, MaxPerms: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunAdaptive(permute.AdaptFWER, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(1000) * int64(len(rules))
	if res.PermsSaved*2 < total {
		t.Errorf("adaptive saved only %d of %d rule-permutation evaluations", res.PermsSaved, total)
	}
	if res.RulesRetired == 0 {
		t.Error("no rules retired on a mostly-noise dataset")
	}
}

// TestAdaptiveConfigErrors covers the mode's input validation.
func TestAdaptiveConfigErrors(t *testing.T) {
	tree, rules := adaptiveCase(t, 51, 100, 4, 10, true)
	fixed, err := permute.NewEngine(tree, rules, permute.Config{NumPerms: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fixed.RunAdaptive(permute.AdaptFWER, 0.05); err == nil {
		t.Error("RunAdaptive accepted a fixed-mode engine")
	}
	e, err := permute.NewEngine(tree, rules, permute.Config{
		Seed: 1, Adaptive: permute.Adaptive{MaxPerms: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunAdaptive(permute.AdaptFWER, 0); err == nil {
		t.Error("RunAdaptive accepted alpha=0")
	}
	if _, err := e.RunAdaptive(permute.AdaptFWER, 1.5); err == nil {
		t.Error("RunAdaptive accepted alpha=1.5")
	}
}

// TestAdaptiveContextCancelled aborts an adaptive run between rounds.
func TestAdaptiveContextCancelled(t *testing.T) {
	tree, rules := adaptiveCase(t, 61, 200, 6, 12, true)
	ctx, cancel := context.WithCancel(context.Background())
	e, err := permute.NewEngine(tree, rules, permute.Config{
		Seed: 9, Ctx: ctx, Workers: 2,
		Adaptive: permute.Adaptive{MinPerms: 8, MaxPerms: 4000, Exceedances: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := e.RunAdaptive(permute.AdaptFWER, 0.05); err != context.Canceled {
		t.Fatalf("RunAdaptive err = %v, want context.Canceled", err)
	}
}

// TestEmpiricalP covers the per-rule empirical p-value helpers.
func TestEmpiricalP(t *testing.T) {
	counts := []int64{5, 0, 100}
	samples := []int64{100, 0, 100}
	ps := EmpiricalP(counts, samples)
	if ps[0] != 0.05 || ps[1] != 1 || ps[2] != 1 {
		t.Errorf("EmpiricalP = %v, want [0.05 1 1]", ps)
	}
	ups := EmpiricalPUpper(counts, samples, 1.96)
	if ups[0] <= ps[0] || ups[0] > 1 {
		t.Errorf("upper bound %g should exceed the point estimate %g", ups[0], ps[0])
	}
	if ups[1] != 1 {
		t.Errorf("zero samples should give the vacuous bound 1, got %g", ups[1])
	}
	// The Wilson upper bound at count 0 must stay informative (strictly
	// between 0 and 1).
	z := EmpiricalPUpper([]int64{0}, []int64{50}, 1.96)
	if z[0] <= 0 || z[0] >= 1 {
		t.Errorf("Wilson upper bound at 0/50 = %g, want within (0,1)", z[0])
	}
}
