package correction

import (
	"sort"

	"repro/internal/mining"
	"repro/internal/permute"
	"repro/internal/stats"
)

// PermFWERCutoff derives the FWER-controlling cut-off from the per-
// permutation minimum p-values (§4.2): sort them ascending and take the
// ⌊alpha·N⌋-th (1-based). Any rule at or below this threshold would have
// been the most extreme rule on at most an alpha fraction of null
// datasets. Returns a negative cut-off (nothing significant) when
// ⌊alpha·N⌋ < 1, i.e. when too few permutations were run to certify the
// level.
func PermFWERCutoff(minP []float64, alpha float64) float64 {
	k := int(alpha * float64(len(minP)))
	if k < 1 {
		return -1
	}
	sorted := make([]float64, len(minP))
	copy(sorted, minP)
	sort.Float64s(sorted)
	return sorted[k-1]
}

// NullSource supplies the permutation null statistics the correction
// procedures consume. *permute.Engine is the single-node source; the
// distributed coordinator adapter (internal/shard) provides the same
// surface over merged shard replies, byte-identical by construction.
type NullSource interface {
	// MinP returns the per-permutation minimum p-values.
	MinP() []float64
	// CountLE returns, per rule, the pooled count of permutation p-values
	// at or below its original p-value.
	CountLE() []int64
	// NumPerms returns the evaluated permutation count.
	NumPerms() int
}

// PermFWER runs the full permutation FWER procedure: build the min-p null
// distribution with the engine, derive the cut-off, and mark the rules at
// or below it.
func PermFWER(engine NullSource, rules []mining.Rule, alpha float64) *Outcome {
	minP := engine.MinP()
	cutoff := PermFWERCutoff(minP, alpha)
	o := &Outcome{Method: "Perm_FWER", Alpha: alpha, NumTests: len(rules), Cutoff: cutoff}
	if cutoff < 0 {
		return o
	}
	for i := range rules {
		if rules[i].P <= cutoff {
			o.Significant = append(o.Significant, i)
		}
	}
	return o
}

// PermAdjustedP converts pooled ≤-counts into the empirical adjusted
// p-values of §4.2: p_adj(R) = |{p' : p' <= p(R)}| / (N·Nt), where the
// pool holds all Nt rules' p-values on all N permutations.
func PermAdjustedP(countLE []int64, numPerms, numTests int) []float64 {
	den := float64(numPerms) * float64(numTests)
	out := make([]float64, len(countLE))
	for i, c := range countLE {
		out[i] = float64(c) / den
	}
	return out
}

// PermFDR runs the full permutation FDR procedure (§4.2): each rule's
// p-value is replaced by its pooled empirical adjusted p-value, then
// Benjamini–Hochberg is applied to the adjusted values at level alpha.
func PermFDR(engine NullSource, rules []mining.Rule, alpha float64) *Outcome {
	adj := PermAdjustedP(engine.CountLE(), engine.NumPerms(), len(rules))
	o := BenjaminiHochberg(adj, len(rules), alpha)
	o.Method = "Perm_FDR"
	o.NumTests = len(rules)
	return o
}

// AdaptivePermFWER derives the Westfall–Young FWER outcome of an adaptive
// permutation run (DESIGN.md §7): the cut-off comes from the executed
// permutations' live-set min-p distribution via the same order statistic
// PermFWER uses. When the run retired nothing, the outcome is
// byte-identical to PermFWER over a fixed run of the same budget.
func AdaptivePermFWER(res *permute.AdaptiveResult, rules []mining.Rule, alpha float64) *Outcome {
	cutoff := PermFWERCutoff(res.MinP, alpha)
	o := &Outcome{Method: "Perm_FWER", Alpha: alpha, NumTests: len(rules), Cutoff: cutoff}
	if cutoff < 0 {
		return o
	}
	for i := range rules {
		if rules[i].P <= cutoff {
			o.Significant = append(o.Significant, i)
		}
	}
	return o
}

// AdaptivePermFDR derives the pooled empirical FDR outcome of an adaptive
// run: each rule's adjusted p-value is its pooled exceedance count divided
// by the pool's actual size (the sum of per-rule sample counts — equal to
// N·Nt when nothing retired, making the outcome byte-identical to
// PermFDR), then Benjamini–Hochberg runs on the adjusted values. The run
// must have executed in AdaptFDR mode — only FDR runs accumulate the
// pool, and deriving an FDR outcome from an all-zero pool would silently
// declare everything significant.
func AdaptivePermFDR(res *permute.AdaptiveResult, rules []mining.Rule, alpha float64) *Outcome {
	if res.Mode != permute.AdaptFDR {
		panic("correction: AdaptivePermFDR needs a RunAdaptive(AdaptFDR, ...) result")
	}
	den := float64(res.TotalSamples)
	adj := make([]float64, len(res.PoolLE))
	for i, c := range res.PoolLE {
		adj[i] = float64(c) / den
	}
	o := BenjaminiHochberg(adj, len(rules), alpha)
	o.Method = "Perm_FDR"
	o.NumTests = len(rules)
	return o
}

// EmpiricalP returns per-rule empirical p-values from exceedance counts
// with per-rule sample counts: p̂_i = counts[i]/samples[i]. Rules an
// adaptive run retired early carry fewer samples than survivors; a zero
// sample count yields 1 (no evidence either way — the conservative
// reading). Panics if the slices differ in length.
func EmpiricalP(counts, samples []int64) []float64 {
	if len(counts) != len(samples) {
		panic("correction: EmpiricalP counts/samples length mismatch")
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		if samples[i] <= 0 {
			out[i] = 1
			continue
		}
		out[i] = float64(c) / float64(samples[i])
	}
	return out
}

// EmpiricalPUpper returns conservative upper confidence bounds on the
// per-rule empirical p-values: the Wilson score upper bound at z standard
// normal units (z = 1.96 for a one-sided 97.5% bound). Use it when acting
// on a retired rule's coarsely sampled empirical p-value — the bound
// accounts for how few permutations the estimate rests on. A zero sample
// count yields 1.
func EmpiricalPUpper(counts, samples []int64, z float64) []float64 {
	if len(counts) != len(samples) {
		panic("correction: EmpiricalPUpper counts/samples length mismatch")
	}
	out := make([]float64, len(counts))
	for i, c := range counts {
		if samples[i] <= 0 {
			out[i] = 1
			continue
		}
		_, hi := stats.WilsonBounds(c, samples[i], z)
		out[i] = hi
	}
	return out
}
