package correction

import (
	"sort"

	"repro/internal/mining"
	"repro/internal/permute"
)

// PermFWERCutoff derives the FWER-controlling cut-off from the per-
// permutation minimum p-values (§4.2): sort them ascending and take the
// ⌊alpha·N⌋-th (1-based). Any rule at or below this threshold would have
// been the most extreme rule on at most an alpha fraction of null
// datasets. Returns a negative cut-off (nothing significant) when
// ⌊alpha·N⌋ < 1, i.e. when too few permutations were run to certify the
// level.
func PermFWERCutoff(minP []float64, alpha float64) float64 {
	k := int(alpha * float64(len(minP)))
	if k < 1 {
		return -1
	}
	sorted := make([]float64, len(minP))
	copy(sorted, minP)
	sort.Float64s(sorted)
	return sorted[k-1]
}

// PermFWER runs the full permutation FWER procedure: build the min-p null
// distribution with the engine, derive the cut-off, and mark the rules at
// or below it.
func PermFWER(engine *permute.Engine, rules []mining.Rule, alpha float64) *Outcome {
	minP := engine.MinP()
	cutoff := PermFWERCutoff(minP, alpha)
	o := &Outcome{Method: "Perm_FWER", Alpha: alpha, NumTests: len(rules), Cutoff: cutoff}
	if cutoff < 0 {
		return o
	}
	for i := range rules {
		if rules[i].P <= cutoff {
			o.Significant = append(o.Significant, i)
		}
	}
	return o
}

// PermAdjustedP converts pooled ≤-counts into the empirical adjusted
// p-values of §4.2: p_adj(R) = |{p' : p' <= p(R)}| / (N·Nt), where the
// pool holds all Nt rules' p-values on all N permutations.
func PermAdjustedP(countLE []int64, numPerms, numTests int) []float64 {
	den := float64(numPerms) * float64(numTests)
	out := make([]float64, len(countLE))
	for i, c := range countLE {
		out[i] = float64(c) / den
	}
	return out
}

// PermFDR runs the full permutation FDR procedure (§4.2): each rule's
// p-value is replaced by its pooled empirical adjusted p-value, then
// Benjamini–Hochberg is applied to the adjusted values at level alpha.
func PermFDR(engine *permute.Engine, rules []mining.Rule, alpha float64) *Outcome {
	adj := PermAdjustedP(engine.CountLE(), engine.NumPerms(), len(rules))
	o := BenjaminiHochberg(adj, len(rules), alpha)
	o.Method = "Perm_FDR"
	o.NumTests = len(rules)
	return o
}
