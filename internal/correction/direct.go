// Package correction implements the three multiple-testing correction
// families of §4: direct adjustment (Bonferroni for FWER, Benjamini–
// Hochberg for FDR), the permutation-based approach (min-p cut-off for
// FWER, pooled empirical p-values + BH for FDR), and Webb's holdout
// evaluation. Webb's layered critical values [19] are included as an
// extension.
//
// All procedures consume plain p-value slices (plus whatever auxiliary
// data they need) and return an Outcome identifying the significant rules
// and the effective cut-off; they are agnostic to how the p-values were
// produced.
package correction

import (
	"fmt"
	"math"
	"sort"
)

// Outcome reports the decision of a correction procedure.
type Outcome struct {
	// Method is a short label ("BC", "BH", "Perm_FWER", ...; Table 3).
	Method string
	// Alpha is the error level the procedure controlled.
	Alpha float64
	// NumTests is the test count the procedure corrected for.
	NumTests int
	// Cutoff is the effective p-value threshold: rules with p <= Cutoff
	// are significant. Negative when nothing can be significant.
	Cutoff float64
	// Significant lists the indices of significant rules, ascending.
	Significant []int
}

// IsSignificant reports whether rule index i was declared significant.
// O(log n).
func (o *Outcome) IsSignificant(i int) bool {
	k := sort.SearchInts(o.Significant, i)
	return k < len(o.Significant) && o.Significant[k] == i
}

// None returns an outcome declaring every rule with p <= alpha significant
// — the paper's "No correction" baseline.
func None(ps []float64, alpha float64) *Outcome {
	o := &Outcome{Method: "No correction", Alpha: alpha, NumTests: len(ps), Cutoff: alpha}
	for i, p := range ps {
		if p <= alpha {
			o.Significant = append(o.Significant, i)
		}
	}
	return o
}

// Bonferroni controls FWER at alpha by the direct adjustment of §4.1:
// rules with p <= alpha/numTests are significant. numTests may exceed
// len(ps) (e.g. holdout corrects candidate rules by the candidate count,
// and multi-class mining tests m rules per pattern); it must be >= 1.
func Bonferroni(ps []float64, numTests int, alpha float64) *Outcome {
	if numTests < 1 {
		numTests = 1
	}
	cutoff := alpha / float64(numTests)
	o := &Outcome{Method: "BC", Alpha: alpha, NumTests: numTests, Cutoff: cutoff}
	for i, p := range ps {
		if p <= cutoff {
			o.Significant = append(o.Significant, i)
		}
	}
	return o
}

// Sidak controls FWER at alpha under the (slightly less conservative)
// Šidák correction of the paper's reference [1]: rules with
// p <= 1 - (1-alpha)^(1/numTests) are significant. Exact under
// independence of the tests; Bonferroni is its first-order approximation.
func Sidak(ps []float64, numTests int, alpha float64) *Outcome {
	if numTests < 1 {
		numTests = 1
	}
	cutoff := 1 - math.Pow(1-alpha, 1/float64(numTests))
	o := &Outcome{Method: "Sidak", Alpha: alpha, NumTests: numTests, Cutoff: cutoff}
	for i, p := range ps {
		if p <= cutoff {
			o.Significant = append(o.Significant, i)
		}
	}
	return o
}

// BenjaminiHochberg controls FDR at alpha (§4.1): with the p-values sorted
// ascending p(1) <= ... <= p(n), find the largest k with
// p(k) <= k·alpha/numTests and declare the k smallest p-values
// significant. numTests defaults to len(ps) when 0.
func BenjaminiHochberg(ps []float64, numTests int, alpha float64) *Outcome {
	if numTests <= 0 {
		numTests = len(ps)
	}
	o := &Outcome{Method: "BH", Alpha: alpha, NumTests: numTests, Cutoff: -1}
	if len(ps) == 0 {
		return o
	}
	order := make([]int, len(ps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ps[order[a]] < ps[order[b]] })

	k := -1
	for i := len(order) - 1; i >= 0; i-- {
		if ps[order[i]] <= float64(i+1)*alpha/float64(numTests) {
			k = i
			break
		}
	}
	if k < 0 {
		return o
	}
	o.Cutoff = ps[order[k]]
	for i, p := range ps {
		if p <= o.Cutoff {
			o.Significant = append(o.Significant, i)
		}
	}
	return o
}

// BHAdjustedP returns the BH-adjusted p-values ("q-values"):
// q(i) = min_{j >= i} ( numTests · p(j) / j ) over the ascending order,
// clamped to 1. A rule is significant at level alpha iff q <= alpha.
// Provided for library users; the experiments use BenjaminiHochberg.
func BHAdjustedP(ps []float64, numTests int) []float64 {
	if numTests <= 0 {
		numTests = len(ps)
	}
	n := len(ps)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ps[order[a]] < ps[order[b]] })
	out := make([]float64, n)
	minSoFar := math.Inf(1)
	for i := n - 1; i >= 0; i-- {
		q := float64(numTests) * ps[order[i]] / float64(i+1)
		if q < minSoFar {
			minSoFar = q
		}
		v := minSoFar
		if v > 1 {
			v = 1
		}
		out[order[i]] = v
	}
	return out
}

// LayeredCriticalValues implements Webb's layered critical values [19] as
// an extension: the FWER budget alpha is split evenly across rule lengths
// 1..maxLen, and within length l the budget alpha/maxLen is Bonferroni-
// divided by the number of rules of that length. lengths[i] is the LHS
// length of rule i.
func LayeredCriticalValues(ps []float64, lengths []int, maxLen int, alpha float64) (*Outcome, error) {
	if len(ps) != len(lengths) {
		return nil, fmt.Errorf("correction: %d p-values but %d lengths", len(ps), len(lengths))
	}
	if maxLen < 1 {
		for _, l := range lengths {
			if l > maxLen {
				maxLen = l
			}
		}
	}
	counts := make([]int, maxLen+1)
	for _, l := range lengths {
		if l < 1 || l > maxLen {
			return nil, fmt.Errorf("correction: rule length %d outside [1,%d]", l, maxLen)
		}
		counts[l]++
	}
	o := &Outcome{Method: "LCV", Alpha: alpha, NumTests: len(ps), Cutoff: -1}
	perLayer := alpha / float64(maxLen)
	for i, p := range ps {
		if p <= perLayer/float64(counts[lengths[i]]) {
			o.Significant = append(o.Significant, i)
		}
	}
	return o, nil
}
