package correction

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/permute"
	"repro/internal/synth"
)

func TestNone(t *testing.T) {
	ps := []float64{0.01, 0.04, 0.05, 0.06, 0.9}
	o := None(ps, 0.05)
	want := []int{0, 1, 2}
	if len(o.Significant) != len(want) {
		t.Fatalf("Significant = %v, want %v", o.Significant, want)
	}
	for i := range want {
		if o.Significant[i] != want[i] {
			t.Fatalf("Significant = %v, want %v", o.Significant, want)
		}
	}
}

func TestBonferroni(t *testing.T) {
	ps := []float64{0.0004, 0.0006, 0.01, 0.04}
	o := Bonferroni(ps, 100, 0.05) // cutoff 0.0005
	if len(o.Significant) != 1 || o.Significant[0] != 0 {
		t.Fatalf("Significant = %v, want [0]", o.Significant)
	}
	if math.Abs(o.Cutoff-0.0005) > 1e-12 {
		t.Errorf("Cutoff = %g, want 0.0005", o.Cutoff)
	}
	// Boundary p == cutoff is significant (<=).
	o = Bonferroni([]float64{0.0005}, 100, 0.05)
	if len(o.Significant) != 1 {
		t.Error("boundary p-value not declared significant")
	}
	// numTests below 1 is clamped.
	o = Bonferroni([]float64{0.04}, 0, 0.05)
	if len(o.Significant) != 1 {
		t.Error("numTests=0 should behave like a single test")
	}
}

func TestBenjaminiHochbergKnownExample(t *testing.T) {
	// Standard worked example: n = 10 p-values, alpha = 0.05.
	ps := []float64{0.0001, 0.0004, 0.0019, 0.0095, 0.0201, 0.0278, 0.0298, 0.0344, 0.0459, 0.3240}
	o := BenjaminiHochberg(ps, len(ps), 0.05)
	// Thresholds i*0.05/10 = 0.005i: p(8)=0.0344 <= 0.040 passes while
	// p(9)=0.0459 > 0.045 and p(10)=0.324 > 0.05 fail, so the largest
	// passing rank is k=8 and the 8 smallest p-values are significant.
	if len(o.Significant) != 8 {
		t.Fatalf("BH declared %d significant, want 8 (%v)", len(o.Significant), o.Significant)
	}
	for _, i := range o.Significant {
		if i > 7 {
			t.Errorf("rule %d should not be significant", i)
		}
	}
}

func TestBenjaminiHochbergEdgeCases(t *testing.T) {
	if o := BenjaminiHochberg(nil, 0, 0.05); len(o.Significant) != 0 {
		t.Error("empty input produced significances")
	}
	// Nothing passes.
	o := BenjaminiHochberg([]float64{0.5, 0.9}, 2, 0.05)
	if len(o.Significant) != 0 || o.Cutoff >= 0 {
		t.Error("no p-value should pass")
	}
	// Everything passes.
	o = BenjaminiHochberg([]float64{0.001, 0.002, 0.003}, 3, 0.05)
	if len(o.Significant) != 3 {
		t.Errorf("all should pass, got %v", o.Significant)
	}
	// BH with external numTests > len(ps) (holdout-style) is stricter.
	few := BenjaminiHochberg([]float64{0.01, 0.02}, 2, 0.05)
	many := BenjaminiHochberg([]float64{0.01, 0.02}, 1000, 0.05)
	if len(many.Significant) > len(few.Significant) {
		t.Error("larger numTests must not admit more rules")
	}
}

func TestBHNeverFewerThanBonferroni(t *testing.T) {
	f := func(raw []float64) bool {
		ps := make([]float64, 0, len(raw))
		for _, v := range raw {
			v = math.Abs(v)
			v -= math.Floor(v) // into [0,1)
			ps = append(ps, v)
		}
		bc := Bonferroni(ps, len(ps), 0.05)
		bh := BenjaminiHochberg(ps, len(ps), 0.05)
		// BH is uniformly more powerful than Bonferroni: every BC
		// discovery is a BH discovery.
		for _, i := range bc.Significant {
			if !bh.IsSignificant(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBHAdjustedPConsistent(t *testing.T) {
	ps := []float64{0.0001, 0.0004, 0.0019, 0.0095, 0.0201, 0.0278, 0.0298, 0.0344, 0.0459, 0.3240}
	adj := BHAdjustedP(ps, len(ps))
	o := BenjaminiHochberg(ps, len(ps), 0.05)
	for i := range ps {
		sig := adj[i] <= 0.05
		if sig != o.IsSignificant(i) {
			t.Errorf("rule %d: adjusted-p significance %v disagrees with BH %v (q=%g)",
				i, sig, o.IsSignificant(i), adj[i])
		}
	}
	// Adjusted p-values preserve the order of raw p-values.
	type pair struct{ raw, adj float64 }
	pairs := make([]pair, len(ps))
	for i := range ps {
		pairs[i] = pair{ps[i], adj[i]}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].raw < pairs[b].raw })
	for i := 1; i < len(pairs); i++ {
		if pairs[i].adj < pairs[i-1].adj-1e-15 {
			t.Error("adjusted p-values not monotone in raw p-values")
		}
	}
}

func TestPermFWERCutoff(t *testing.T) {
	// 20 min-p values 0.01..0.20; alpha=0.05 → k = ⌊0.05·20⌋ = 1 → the
	// smallest value.
	minP := make([]float64, 20)
	for i := range minP {
		minP[i] = float64(i+1) / 100
	}
	if got := PermFWERCutoff(minP, 0.05); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("cutoff = %g, want 0.01", got)
	}
	// alpha=0.25 → k=5 → 0.05.
	if got := PermFWERCutoff(minP, 0.25); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("cutoff = %g, want 0.05", got)
	}
	// Too few permutations: ⌊0.05·10⌋ = 0 → nothing certifiable.
	if got := PermFWERCutoff(minP[:10], 0.05); got >= 0 {
		t.Errorf("cutoff = %g, want negative sentinel", got)
	}
}

func TestPermAdjustedP(t *testing.T) {
	counts := []int64{0, 5, 100}
	adj := PermAdjustedP(counts, 10, 10) // N·Nt = 100
	want := []float64{0, 0.05, 1}
	for i := range want {
		if math.Abs(adj[i]-want[i]) > 1e-12 {
			t.Errorf("adj[%d] = %g, want %g", i, adj[i], want[i])
		}
	}
}

func TestLayeredCriticalValues(t *testing.T) {
	ps := []float64{0.001, 0.02, 0.001, 0.02}
	lengths := []int{1, 1, 2, 2}
	// maxLen=2: per-layer budget 0.025; layer 1 has 2 rules → cutoff
	// 0.0125; layer 2 likewise.
	o, err := LayeredCriticalValues(ps, lengths, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Significant) != 2 || o.Significant[0] != 0 || o.Significant[1] != 2 {
		t.Fatalf("Significant = %v, want [0 2]", o.Significant)
	}
	if _, err := LayeredCriticalValues(ps, lengths[:2], 2, 0.05); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LayeredCriticalValues(ps, []int{0, 1, 2, 2}, 2, 0.05); err == nil {
		t.Error("zero rule length accepted")
	}
}

func TestOutcomeIsSignificant(t *testing.T) {
	o := &Outcome{Significant: []int{2, 5, 9}}
	for _, i := range []int{2, 5, 9} {
		if !o.IsSignificant(i) {
			t.Errorf("IsSignificant(%d) = false", i)
		}
	}
	for _, i := range []int{0, 3, 10} {
		if o.IsSignificant(i) {
			t.Errorf("IsSignificant(%d) = true", i)
		}
	}
}

// End-to-end: on a pure-noise dataset the permutation FWER procedure at
// alpha=0.05 almost never declares anything significant, while "no
// correction" at 0.05 floods.
func TestPermutationControlsNoiseEndToEnd(t *testing.T) {
	p := synth.PaperDefaults()
	p.N = 400
	p.Attrs = 12
	p.Seed = 2024
	res, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	enc := dataset.Encode(res.Data)
	tree, err := mining.MineClosed(enc, mining.Options{MinSup: 30, StoreDiffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) < 50 {
		t.Skipf("only %d rules mined; dataset too small for this test", len(rules))
	}
	ps := make([]float64, len(rules))
	for i := range rules {
		ps[i] = rules[i].P
	}
	raw := None(ps, 0.05)

	engine, err := permute.NewEngine(tree, rules, permute.Config{NumPerms: 200, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	perm := PermFWER(engine, rules, 0.05)
	if len(perm.Significant) > len(raw.Significant)/2 && len(perm.Significant) > 3 {
		t.Errorf("permutation FWER admitted %d of %d raw discoveries on noise",
			len(perm.Significant), len(raw.Significant))
	}

	fdr := PermFDR(engine, rules, 0.05)
	if len(fdr.Significant) > len(rules)/10 {
		t.Errorf("permutation FDR admitted %d of %d rules on noise", len(fdr.Significant), len(rules))
	}
}

// End-to-end: a strongly embedded rule survives permutation FWER.
func TestPermutationDetectsStrongSignal(t *testing.T) {
	p := synth.PaperDefaults()
	p.N = 1000
	p.Attrs = 15
	p.NumRules = 1
	p.MinCvg, p.MaxCvg = 200, 200
	p.MinConf, p.MaxConf = 0.9, 0.9
	p.Seed = 77
	res, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	enc := dataset.Encode(res.Data)
	tree, err := mining.MineClosed(enc, mining.Options{MinSup: 80, StoreDiffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := permute.NewEngine(tree, rules, permute.Config{NumPerms: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	o := PermFWER(engine, rules, 0.05)
	if len(o.Significant) == 0 {
		t.Fatal("a coverage-200 confidence-0.9 rule in n=1000 should be detected")
	}
}

func TestHoldoutEndToEnd(t *testing.T) {
	p := synth.PaperDefaults()
	p.N = 1000
	p.Attrs = 12
	p.NumRules = 1
	p.MinCvg, p.MaxCvg = 300, 300
	p.MinConf, p.MaxConf = 0.9, 0.9
	p.Seed = 13
	whole, first, second, err := synth.GeneratePaired(p)
	if err != nil {
		t.Fatal(err)
	}
	_ = whole
	res, err := Holdout(first, second, HoldoutConfig{
		MinSupExplore: 50,
		Alpha:         0.05,
		Policy:        mining.PaperPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumExploreTested == 0 {
		t.Fatal("no rules tested on the exploratory dataset")
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates passed the exploratory filter despite an embedded rule")
	}
	if len(res.Candidates) > res.NumExploreTested {
		t.Error("more candidates than tested rules")
	}
	if res.Outcome.NumTests != len(res.Candidates) {
		t.Errorf("holdout corrected for %d tests, want %d (candidate count)",
			res.Outcome.NumTests, len(res.Candidates))
	}
	// The strongly embedded rule should survive evaluation.
	if len(res.Outcome.Significant) == 0 {
		t.Error("holdout failed to confirm a strong embedded rule")
	}
	// Candidates carry consistent evaluation statistics.
	for _, c := range res.Candidates {
		if c.EvalCvg < 0 || c.EvalSupp > c.EvalCvg {
			t.Errorf("candidate has inconsistent eval stats: cvg=%d supp=%d", c.EvalCvg, c.EvalSupp)
		}
		if c.EvalP < 0 || c.EvalP > 1 {
			t.Errorf("eval p-value %g outside [0,1]", c.EvalP)
		}
	}
	// FDR flavour also runs.
	resFDR, err := Holdout(first, second, HoldoutConfig{
		MinSupExplore: 50,
		Alpha:         0.05,
		UseFDR:        true,
		Policy:        mining.PaperPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resFDR.Outcome.Method != "HD_BH" {
		t.Errorf("method = %q, want HD_BH", resFDR.Outcome.Method)
	}
	if len(resFDR.Outcome.Significant) < len(res.Outcome.Significant) {
		t.Error("BH on the evaluation half should be at least as powerful as Bonferroni")
	}
}

func TestHoldoutSchemaMismatch(t *testing.T) {
	p := synth.PaperDefaults()
	p.N = 100
	p.Attrs = 5
	p.Seed = 1
	a, _ := synth.Generate(p)
	p.Seed = 2
	b, _ := synth.Generate(p)
	if _, err := Holdout(a.Data, b.Data, HoldoutConfig{MinSupExplore: 10, Alpha: 0.05}); err == nil {
		t.Error("different schemas accepted")
	}
}

func TestHoldoutBadMinSup(t *testing.T) {
	p := synth.PaperDefaults()
	p.N = 100
	p.Attrs = 5
	p.Seed = 1
	res, _ := synth.Generate(p)
	a, b := res.Data.SplitHalves()
	if _, err := Holdout(a, b, HoldoutConfig{MinSupExplore: 0, Alpha: 0.05}); err == nil {
		t.Error("MinSupExplore=0 accepted")
	}
}
