package correction

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSidakKnownCutoff(t *testing.T) {
	// 1 - (1-0.05)^(1/10) = 0.0051162...
	o := Sidak([]float64{0.004, 0.006}, 10, 0.05)
	if math.Abs(o.Cutoff-0.00511620) > 1e-7 {
		t.Errorf("cutoff = %g, want 0.0051162", o.Cutoff)
	}
	if len(o.Significant) != 1 || o.Significant[0] != 0 {
		t.Errorf("Significant = %v, want [0]", o.Significant)
	}
	// Single test degenerates to plain alpha.
	o = Sidak([]float64{0.05}, 1, 0.05)
	if len(o.Significant) != 1 {
		t.Error("single test at p=alpha should pass")
	}
}

func TestSidakDominatesBonferroni(t *testing.T) {
	// The Šidák cutoff is always >= the Bonferroni cutoff, so every
	// Bonferroni discovery is a Šidák discovery.
	f := func(raw []float64, n16 uint16) bool {
		n := int(n16%1000) + 1
		ps := make([]float64, 0, len(raw))
		for _, v := range raw {
			v = math.Abs(v)
			ps = append(ps, v-math.Floor(v))
		}
		bc := Bonferroni(ps, n, 0.05)
		sk := Sidak(ps, n, 0.05)
		if sk.Cutoff < bc.Cutoff-1e-18 {
			return false
		}
		for _, i := range bc.Significant {
			if !sk.IsSignificant(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
