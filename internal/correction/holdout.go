package correction

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/stats"
)

// HoldoutConfig configures Webb-style holdout evaluation (§4.3).
type HoldoutConfig struct {
	// MinSupExplore is the minimum support used when mining the
	// exploratory dataset. The paper sets it to half of the whole-dataset
	// min_sup in all experiments (§5.1).
	MinSupExplore int
	// Alpha is the error level; it doubles as the candidate filter on the
	// exploratory dataset (rules with exploratory p <= Alpha advance).
	Alpha float64
	// UseFDR selects Benjamini–Hochberg on the evaluation dataset (HD_BH);
	// false selects Bonferroni (HD_BC).
	UseFDR bool
	// Policy/Class control rule generation (see mining.RuleOptions).
	Policy mining.RuleClassPolicy
	Class  int32
	// MaxLen caps mined pattern length (0 = unlimited).
	MaxLen int
	// Workers bounds the exploratory miner's goroutines (0 = GOMAXPROCS).
	Workers int
	// Ctx, when non-nil, cancels the run (nil = no cancellation).
	Ctx context.Context
}

// HoldoutRule is one candidate rule with its statistics on both halves.
type HoldoutRule struct {
	Attrs []int   // LHS attribute indices
	Vals  []int32 // LHS value index per attribute
	Class int32   // RHS class

	ExploreCvg, ExploreSupp int
	ExploreP                float64
	EvalCvg, EvalSupp       int
	EvalConf                float64
	EvalP                   float64
}

// HoldoutResult reports a holdout run.
type HoldoutResult struct {
	// NumExploreTested is the number of rules tested on the exploratory
	// dataset (before the p <= alpha filter).
	NumExploreTested int
	// Candidates are the rules that passed the exploratory filter, in
	// exploratory p-value order of discovery; Outcome indexes into it.
	Candidates []HoldoutRule
	// Outcome is the Bonferroni/BH decision over the candidates'
	// evaluation p-values, with NumTests = len(Candidates).
	Outcome *Outcome
}

// Holdout mines the exploratory dataset, filters rules with exploratory
// p-value <= Alpha, recomputes their p-values on the evaluation dataset,
// and corrects those with Bonferroni (FWER) or Benjamini–Hochberg (FDR)
// over the candidate count only — typically orders of magnitude smaller
// than the number of rules tested on the whole dataset (§4.3).
//
// The two datasets must share the same schema (they are the two halves of
// one dataset).
func Holdout(explore, eval *dataset.Dataset, cfg HoldoutConfig) (*HoldoutResult, error) {
	if explore.Schema != eval.Schema {
		return nil, fmt.Errorf("correction: holdout halves must share a schema")
	}
	if cfg.MinSupExplore < 1 {
		return nil, fmt.Errorf("correction: MinSupExplore must be >= 1, got %d", cfg.MinSupExplore)
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	enc := dataset.Encode(explore)
	tree, err := mining.MineClosedContext(ctx, enc, mining.Options{
		MinSup:        cfg.MinSupExplore,
		StoreDiffsets: true,
		MaxLen:        cfg.MaxLen,
		Workers:       cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: cfg.Policy, Class: cfg.Class})
	if err != nil {
		return nil, err
	}

	res := &HoldoutResult{NumExploreTested: len(rules)}

	// Evaluation-side statistics substrate.
	evalN := eval.NumRecords()
	evalClassCounts := eval.ClassCounts()
	lf := stats.NewLogFact(evalN)
	hyper := make([]*stats.Hypergeom, len(evalClassCounts))
	for c := range hyper {
		hyper[c] = stats.NewHypergeom(evalN, evalClassCounts[c], lf)
	}

	for i := range rules {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := &rules[i]
		if r.P > cfg.Alpha {
			continue
		}
		attrs, vals := patternOf(enc.Enc, r.Node.Closure)
		cvg, supp := 0, 0
		for rec := 0; rec < evalN; rec++ {
			if eval.ContainsPattern(rec, attrs, vals) {
				cvg++
				if eval.Labels[rec] == r.Class {
					supp++
				}
			}
		}
		hr := HoldoutRule{
			Attrs:       attrs,
			Vals:        vals,
			Class:       r.Class,
			ExploreCvg:  r.Coverage,
			ExploreSupp: r.Support,
			ExploreP:    r.P,
			EvalCvg:     cvg,
			EvalSupp:    supp,
			EvalP:       1,
		}
		if cvg > 0 {
			hr.EvalConf = float64(supp) / float64(cvg)
			hr.EvalP = hyper[r.Class].FisherTwoTailed(supp, cvg)
		}
		res.Candidates = append(res.Candidates, hr)
	}

	evalPs := make([]float64, len(res.Candidates))
	for i := range res.Candidates {
		evalPs[i] = res.Candidates[i].EvalP
	}
	if cfg.UseFDR {
		res.Outcome = BenjaminiHochberg(evalPs, len(evalPs), cfg.Alpha)
		res.Outcome.Method = "HD_BH"
	} else {
		res.Outcome = Bonferroni(evalPs, len(evalPs), cfg.Alpha)
		res.Outcome.Method = "HD_BC"
	}
	return res, nil
}

// patternOf converts a closure's item ids into parallel attribute/value
// slices (items are sorted, and items of one attribute are contiguous, so
// the attrs come out ascending).
func patternOf(e *dataset.Encoding, items []dataset.Item) (attrs []int, vals []int32) {
	attrs = make([]int, len(items))
	vals = make([]int32, len(items))
	for i, it := range items {
		attrs[i], vals[i] = e.AttrValue(it)
	}
	return attrs, vals
}
