package benchio

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/permute"
	"repro/internal/synth"
)

func tinySpec(t *testing.T) Spec {
	t.Helper()
	p := synth.PaperDefaults()
	p.N = 300
	p.Attrs = 6
	p.Seed = 3
	res, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Datasets:      []Dataset{{Name: "tiny", Data: res.Data, MinSup: 20}},
		Opts:          []permute.OptLevel{permute.OptNone, permute.OptDiffsets},
		Workers:       []int{1},
		Perms:         []int{5},
		Warmup:        0,
		Repeat:        1,
		Seed:          7,
		MeasureScalar: true,
	}
}

func TestRunMatrixAndRoundTrip(t *testing.T) {
	rep, err := Run(context.Background(), tinySpec(t), "test-rev")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 2 {
		t.Fatalf("%d entries, want 2 (2 opts × 1 workers × 1 perms)", len(rep.Entries))
	}
	for _, e := range rep.Entries {
		if e.NsPerOp <= 0 {
			t.Errorf("%s/%s: ns_per_op = %d, want > 0", e.Dataset, e.Opt, e.NsPerOp)
		}
		if e.ScalarNsPerOp <= 0 || e.WordSpeedup <= 0 {
			t.Errorf("%s/%s: scalar ablation not measured (%d, %g)",
				e.Dataset, e.Opt, e.ScalarNsPerOp, e.WordSpeedup)
		}
		if e.SpeedupVsNone <= 0 {
			t.Errorf("%s/%s: speedup_vs_none = %g, want > 0", e.Dataset, e.Opt, e.SpeedupVsNone)
		}
		if e.Records != 300 || e.Rules == 0 || e.MinSup != 20 {
			t.Errorf("entry metadata wrong: %+v", e)
		}
	}
	if rep.Entries[0].Opt != "none" || rep.Entries[0].SpeedupVsNone != 1.0 {
		t.Errorf("none-level entry should have speedup 1.0, got %+v", rep.Entries[0])
	}

	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rev != "test-rev" || back.SchemaVersion != SchemaVersion || len(back.Entries) != len(rep.Entries) {
		t.Fatalf("round trip mangled the report: %+v", back)
	}
}

// TestRunShardDimension: Spec.Shards adds sharded cells that time the same
// pass through the shard coordinator — they must carry the shard count,
// skip the ablation columns, and coexist with the single-node cells.
func TestRunShardDimension(t *testing.T) {
	spec := tinySpec(t)
	spec.Opts = []permute.OptLevel{permute.OptDiffsets}
	spec.MeasureScalar = false
	spec.Shards = []int{1, 3}
	rep, err := Run(context.Background(), spec, "test-rev")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 2 {
		t.Fatalf("%d entries, want 2 (shards 1 and 3)", len(rep.Entries))
	}
	var single, sharded *Entry
	for i := range rep.Entries {
		switch rep.Entries[i].Shards {
		case 0:
			single = &rep.Entries[i]
		case 3:
			sharded = &rep.Entries[i]
		}
	}
	if single == nil || sharded == nil {
		t.Fatalf("missing single-node or sharded cell: %+v", rep.Entries)
	}
	if single.NsPerOp <= 0 || sharded.NsPerOp <= 0 {
		t.Fatalf("unmeasured cells: single=%d sharded=%d ns/op", single.NsPerOp, sharded.NsPerOp)
	}
	if sharded.ScalarNsPerOp != 0 || sharded.AdaptiveNsPerOp != 0 {
		t.Fatalf("sharded cell ran ablations: %+v", sharded)
	}
}

// TestCompareSkipsShardedCellsWithoutBaseline: a baseline recorded before
// the shard dimension existed must keep gating the single-node cells while
// never gating (or crashing on) shards>1 cells it has no counterpart for.
func TestCompareSkipsShardedCellsWithoutBaseline(t *testing.T) {
	entry := func(shards int, speedup float64) Entry {
		return Entry{Dataset: "d", Opt: "diffsets", Workers: 1, Perms: 100,
			Shards: shards, NsPerOp: 100, SpeedupVsNone: speedup}
	}
	base := &Report{SchemaVersion: SchemaVersion, Entries: []Entry{entry(0, 10)}}

	// A pre-shard-dimension baseline: the shards=3 cell is skipped even
	// when its speedup cratered, and the single-node cell still gates.
	cur := &Report{SchemaVersion: SchemaVersion, Entries: []Entry{entry(1, 10), entry(3, 1)}}
	if regs := Compare(base, cur, 0.20); len(regs) != 0 {
		t.Fatalf("sharded cell gated by a shardless baseline: %v", regs)
	}
	cur = &Report{SchemaVersion: SchemaVersion, Entries: []Entry{entry(1, 5), entry(3, 1)}}
	regs := Compare(base, cur, 0.20)
	if len(regs) != 1 || regs[0].Metric != "speedup_vs_none" || regs[0].Shards != 1 {
		t.Fatalf("single-node regression lost among sharded cells: %v", regs)
	}

	// Once a baseline records shards=3, that cell gates like any other.
	base.Entries = append(base.Entries, entry(3, 8))
	regs = Compare(base, cur, 0.20)
	if len(regs) != 2 {
		t.Fatalf("matched sharded cell not gated: %v", regs)
	}
	var found bool
	for _, r := range regs {
		if r.Shards == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no regression attributed to the sharded cell: %v", regs)
	}
}

// TestRunStoreDimension: Spec.MeasureStore doubles each single-node cell
// with an out-of-core twin that snapshots a segment store inside the
// timed region — the twin must carry the store mark, skip the ablation
// columns, and ladder against the store "none" cell.
func TestRunStoreDimension(t *testing.T) {
	spec := tinySpec(t)
	spec.MeasureStore = true
	rep, err := Run(context.Background(), spec, "test-rev")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 4 {
		t.Fatalf("%d entries, want 4 (2 opts × {memory, store})", len(rep.Entries))
	}
	byStore := map[bool]int{}
	for _, e := range rep.Entries {
		byStore[e.Store]++
		if e.NsPerOp <= 0 {
			t.Errorf("%s/%s store=%v: ns_per_op = %d, want > 0", e.Dataset, e.Opt, e.Store, e.NsPerOp)
		}
		if e.Store {
			if e.ScalarNsPerOp != 0 || e.AdaptiveNsPerOp != 0 {
				t.Errorf("store cell ran ablations: %+v", e)
			}
			if e.SpeedupVsNone <= 0 {
				t.Errorf("store cell missing its own ladder: %+v", e)
			}
		}
	}
	if byStore[false] != 2 || byStore[true] != 2 {
		t.Fatalf("cell split %v, want 2 in-memory + 2 store", byStore)
	}
}

// TestCompareSkipsStoreCellsWithoutBaseline: a baseline recorded before
// the store dimension existed must keep gating the in-memory cells while
// never gating the store cells it has no counterpart for.
func TestCompareSkipsStoreCellsWithoutBaseline(t *testing.T) {
	entry := func(store bool, speedup float64) Entry {
		return Entry{Dataset: "d", Opt: "diffsets", Workers: 1, Perms: 100,
			Store: store, NsPerOp: 100, SpeedupVsNone: speedup}
	}
	base := &Report{SchemaVersion: SchemaVersion, Entries: []Entry{entry(false, 10)}}

	cur := &Report{SchemaVersion: SchemaVersion, Entries: []Entry{entry(false, 10), entry(true, 1)}}
	if regs := Compare(base, cur, 0.20); len(regs) != 0 {
		t.Fatalf("store cell gated by a storeless baseline: %v", regs)
	}
	cur = &Report{SchemaVersion: SchemaVersion, Entries: []Entry{entry(false, 5), entry(true, 1)}}
	regs := Compare(base, cur, 0.20)
	if len(regs) != 1 || regs[0].Metric != "speedup_vs_none" || regs[0].Store {
		t.Fatalf("in-memory regression lost among store cells: %v", regs)
	}

	// Once a baseline records the store cell, it gates like any other.
	base.Entries = append(base.Entries, entry(true, 8))
	regs = Compare(base, cur, 0.20)
	if len(regs) != 2 {
		t.Fatalf("matched store cell not gated: %v", regs)
	}
	var found bool
	for _, r := range regs {
		if r.Store {
			found = true
		}
	}
	if !found {
		t.Fatalf("no regression attributed to the store cell: %v", regs)
	}
}

func TestRunRejectsEmptyMatrix(t *testing.T) {
	if _, err := Run(context.Background(), Spec{}, "r"); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestReadFileRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := WriteFile(path, &Report{SchemaVersion: SchemaVersion + 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("unknown schema version accepted")
	}
}

func TestCompareFlagsRelativeRegressions(t *testing.T) {
	mk := func(speedup, word float64) *Report {
		return &Report{
			SchemaVersion: SchemaVersion,
			Entries: []Entry{
				{Dataset: "d", Opt: "diffsets", Workers: 1, Perms: 100,
					NsPerOp: 100, SpeedupVsNone: speedup, WordSpeedup: word},
			},
		}
	}
	base := mk(10, 1.5)

	if regs := Compare(base, mk(9.5, 1.45), 0.20); len(regs) != 0 {
		t.Fatalf("within-tolerance drift flagged: %v", regs)
	}
	regs := Compare(base, mk(5, 1.5), 0.20)
	if len(regs) != 1 || regs[0].Metric != "speedup_vs_none" {
		t.Fatalf("halved speedup not flagged correctly: %v", regs)
	}
	regs = Compare(base, mk(10, 1.0), 0.20)
	if len(regs) != 1 || regs[0].Metric != "word_speedup" {
		t.Fatalf("word regression not flagged correctly: %v", regs)
	}
	// Cells only in one report are ignored.
	other := mk(1, 1)
	other.Entries[0].Dataset = "elsewhere"
	if regs := Compare(base, other, 0.20); len(regs) != 0 {
		t.Fatalf("unmatched cell flagged: %v", regs)
	}
}

func TestCompareGatesAdaptiveVsNone(t *testing.T) {
	mk := func(speedup, adaptive float64) *Report {
		return &Report{
			SchemaVersion: SchemaVersion,
			Entries: []Entry{
				{Dataset: "d", Opt: "static", Workers: 1, Perms: 10000,
					NsPerOp: 100, SpeedupVsNone: speedup, AdaptiveSpeedup: adaptive},
			},
		}
	}
	// The PR 6 shape: the fixed pass gets 3x faster, so the raw
	// adaptive_speedup ratio halves — but the adaptive run's own speedup
	// over "none" grew (10×4=40 -> 30×2=60). Not a regression.
	base := mk(10, 4)
	if regs := Compare(base, mk(30, 2), 0.20); len(regs) != 0 {
		t.Fatalf("faster fixed pass flagged as adaptive regression: %v", regs)
	}
	// A genuinely slower adaptive path (same fixed ladder, ratio halved)
	// is flagged, as adaptive_vs_none.
	regs := Compare(base, mk(10, 2), 0.20)
	if len(regs) != 1 || regs[0].Metric != "adaptive_vs_none" {
		t.Fatalf("halved adaptive path not flagged correctly: %v", regs)
	}
}

func TestCompareFlagsAllocGrowth(t *testing.T) {
	mk := func(allocs uint64) *Report {
		return &Report{
			SchemaVersion: SchemaVersion,
			Entries: []Entry{
				{Dataset: "d", Opt: "static", Workers: 1, Perms: 100,
					NsPerOp: 100, AllocsPerOp: allocs, SpeedupVsNone: 10},
			},
		}
	}
	base := mk(1000)

	// Growth within tolerance + slack passes; beyond it regresses.
	if regs := Compare(base, mk(1100), 0.20); len(regs) != 0 {
		t.Fatalf("within-tolerance alloc growth flagged: %v", regs)
	}
	regs := Compare(base, mk(2000), 0.20)
	if len(regs) != 1 || regs[0].Metric != "allocs_per_op" {
		t.Fatalf("doubled allocs not flagged correctly: %v", regs)
	}
	// Shrinking is never a regression (it is the point of this PR), and
	// tiny baselines get absolute slack so single-object noise passes.
	if regs := Compare(base, mk(100), 0.20); len(regs) != 0 {
		t.Fatalf("alloc reduction flagged: %v", regs)
	}
	small := mk(10)
	if regs := Compare(small, mk(70), 0.20); len(regs) != 0 {
		t.Fatalf("slack-covered growth on a tiny baseline flagged: %v", regs)
	}
	if regs := Compare(small, mk(100), 0.20); len(regs) != 1 {
		t.Fatalf("beyond-slack growth on a tiny baseline not flagged: %v", regs)
	}
}
