// Package benchio is the measurement half of the armine bench harness: it
// runs a fixed dataset × optimisation-level × workers × permutations
// matrix over the permutation engine — mining excluded from the timings,
// exactly what Fig 4 measures — with explicit warmup/repeat control, and
// reads, writes and compares the machine-readable BENCH_<rev>.json files
// that record the repo's performance trajectory (DESIGN.md §6).
//
// Each matrix cell times engine construction plus a full MinP pass
// (repeat times, keeping the minimum — the standard way to suppress
// scheduler noise) and, optionally, the same cell with word-parallel
// counting disabled, so every report carries its own word-vs-scalar
// ablation. Absolute ns/op is machine-dependent; the regression gate
// (Compare) therefore checks the machine-independent ratios — speedup
// versus the "none" level and the word-path speedup — rather than raw
// times, plus the allocation count per op, which is deterministic on a
// given build and so gated directly (relative growth, like the ratios).
package benchio

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/colstore"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/permute"
	"repro/internal/shard"
)

// SchemaVersion identifies the BENCH json layout; bump on incompatible
// changes so downstream tooling can reject files it cannot read.
const SchemaVersion = 1

// Dataset is one named input of a bench run.
type Dataset struct {
	// Name labels the dataset in entries (e.g. "synth-n1000-a15",
	// "german", or a CSV base name).
	Name string
	// Data is the loaded dataset.
	Data *dataset.Dataset
	// MinSup is the absolute minimum support used when mining it.
	MinSup int
}

// Spec fixes the benchmark matrix and its measurement discipline.
type Spec struct {
	Datasets []Dataset
	// Opts, Workers and Perms span the matrix (each combination is one
	// entry). A workers value of 0 means GOMAXPROCS.
	Opts    []permute.OptLevel
	Workers []int
	Perms   []int
	// Shards adds a distributed-counting dimension: each count > 1 times
	// the same fixed pass through a shard coordinator over that many
	// in-process workers (nil or empty = single-node only). Sharded cells
	// skip the scalar/adaptive ablations — they measure dispatch + merge
	// overhead, not counting variants.
	Shards []int
	// Warmup runs per cell are discarded; Repeat timed runs follow and
	// the minimum is kept. Repeat < 1 is treated as 1.
	Warmup, Repeat int
	// Seed drives the permutation shuffles of every cell.
	Seed uint64
	// MeasureScalar additionally times each cell with word-parallel
	// counting disabled and records the ratio as the word-path speedup.
	MeasureScalar bool
	// MeasureAdaptive additionally times each cell as an adaptive
	// (sequential early-stopping) Westfall–Young run with the same
	// permutation budget and records fixed/adaptive as the adaptive
	// speedup.
	MeasureAdaptive bool
	// MeasureStore adds an out-of-core dimension: each single-node cell
	// is additionally measured with the dataset's vertical encoding
	// rebuilt from an on-disk segment store (internal/colstore) inside
	// the timed region — snapshot + engine build + MinP — recording what
	// not holding the dataset in memory costs per run. Store cells skip
	// the scalar/adaptive ablations (they measure storage overhead, not
	// counting variants) and are keyed separately, so baselines written
	// before the dimension keep gating the in-memory cells.
	MeasureStore bool
	// Alpha is the error level the adaptive cells stop against (default
	// 0.05 when zero).
	Alpha float64
	// MaxLen caps mined pattern length (0 = unlimited).
	MaxLen int
}

// Entry is one measured matrix cell.
type Entry struct {
	Dataset string `json:"dataset"`
	Records int    `json:"records"`
	Rules   int    `json:"rules"`
	MinSup  int    `json:"min_sup"`
	Opt     string `json:"opt"`
	Workers int    `json:"workers"`
	Perms   int    `json:"perms"`
	// Shards records the distributed-counting dimension; omitted (0) for
	// single-node cells, so reports predating the dimension stay
	// comparable.
	Shards int `json:"shards,omitempty"`
	// Store marks out-of-core cells (encoding snapshot from a segment
	// store inside the timed region); omitted (false) for in-memory
	// cells, so reports predating the dimension stay comparable.
	Store bool `json:"store,omitempty"`

	// NsPerOp is the minimum wall-clock time of one engine build + MinP
	// pass; AllocsPerOp/BytesPerOp are the allocation counters of that
	// same run (monotonic runtime counters, so GC-independent).
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`

	// SpeedupVsNone is ns/op of the matching "none"-level cell divided by
	// this cell's — the Fig 4 ladder read off the same run (1.0 for the
	// "none" cells themselves, 0 when no matching cell was measured).
	SpeedupVsNone float64 `json:"speedup_vs_none"`

	// ScalarNsPerOp and WordSpeedup record the word-counting ablation:
	// the same cell with DisableWordCounting, and scalar/word ns ratio.
	// Zero when the ablation was not measured.
	ScalarNsPerOp int64   `json:"scalar_ns_per_op,omitempty"`
	WordSpeedup   float64 `json:"word_speedup,omitempty"`

	// The adaptive cell: the same budget run as an adaptive Westfall–Young
	// pass (engine build + RunAdaptive), fixed/adaptive ns ratio, and the
	// retirement telemetry of the fastest adaptive run. Zero when adaptive
	// measurement was off.
	AdaptiveNsPerOp      int64   `json:"adaptive_ns_per_op,omitempty"`
	AdaptiveSpeedup      float64 `json:"adaptive_speedup,omitempty"`
	AdaptivePermsRun     int     `json:"adaptive_perms_run,omitempty"`
	AdaptiveRulesRetired int     `json:"adaptive_rules_retired,omitempty"`
}

// Report is the persisted form of one bench run (one BENCH_<rev>.json).
type Report struct {
	SchemaVersion int     `json:"schema_version"`
	Rev           string  `json:"rev"`
	GoVersion     string  `json:"go_version"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	CPUs          int     `json:"cpus"`
	CreatedAt     string  `json:"created_at"` // RFC 3339
	Entries       []Entry `json:"entries"`
}

// Run measures the full matrix of spec. Cells are measured strictly
// sequentially (concurrent cells would contend and corrupt each other's
// timings); ctx aborts between runs.
func Run(ctx context.Context, spec Spec, rev string) (*Report, error) {
	if len(spec.Datasets) == 0 || len(spec.Opts) == 0 || len(spec.Workers) == 0 || len(spec.Perms) == 0 {
		return nil, fmt.Errorf("benchio: empty matrix dimension (datasets/opts/workers/perms)")
	}
	if spec.Repeat < 1 {
		spec.Repeat = 1
	}
	shardCounts := spec.Shards
	if len(shardCounts) == 0 {
		shardCounts = []int{1}
	}
	rep := &Report{
		SchemaVersion: SchemaVersion,
		Rev:           rev,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
	}
	var storeRoot string
	if spec.MeasureStore {
		dir, err := os.MkdirTemp("", "armine-bench-store-")
		if err != nil {
			return nil, fmt.Errorf("benchio: store dir: %w", err)
		}
		storeRoot = dir
		defer os.RemoveAll(storeRoot)
	}

	for _, ds := range spec.Datasets {
		enc := dataset.Encode(ds.Data)
		var store *colstore.Store
		if spec.MeasureStore {
			st, err := colstore.FromDataset(filepath.Join(storeRoot, ds.Name), ds.Data, colstore.Options{})
			if err != nil {
				return nil, fmt.Errorf("benchio: store for %s: %w", ds.Name, err)
			}
			store = st
		}
		for _, opt := range spec.Opts {
			// Mining is outside the timed region: the engine consumes a
			// prepared tree, mirroring the paper's mine-once accounting.
			tree, err := mining.MineClosedContext(ctx, enc, mining.Options{
				MinSup:        ds.MinSup,
				StoreDiffsets: opt.WantDiffsets(),
				MaxLen:        spec.MaxLen,
			})
			if err != nil {
				return nil, fmt.Errorf("benchio: mining %s: %w", ds.Name, err)
			}
			rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
			if err != nil {
				return nil, fmt.Errorf("benchio: rules for %s: %w", ds.Name, err)
			}
			for _, workers := range spec.Workers {
				for _, perms := range spec.Perms {
					for _, nShards := range shardCounts {
						cell := permute.Config{
							NumPerms: perms,
							Seed:     spec.Seed,
							Opt:      opt,
							Workers:  workers,
							Ctx:      ctx,
						}
						e := Entry{
							Dataset: ds.Name,
							Records: ds.Data.NumRecords(),
							Rules:   len(rules),
							MinSup:  ds.MinSup,
							Opt:     opt.Name(),
							Workers: workers,
							Perms:   perms,
						}
						if nShards > 1 {
							e.Shards = nShards
							m, err := measureSharded(ctx, tree, rules, cell, nShards, spec.Warmup, spec.Repeat)
							if err != nil {
								return nil, err
							}
							e.NsPerOp, e.AllocsPerOp, e.BytesPerOp = m.ns, m.allocs, m.bytes
							rep.Entries = append(rep.Entries, e)
							continue
						}
						m, err := measure(ctx, tree, rules, cell, spec.Warmup, spec.Repeat)
						if err != nil {
							return nil, err
						}
						e.NsPerOp, e.AllocsPerOp, e.BytesPerOp = m.ns, m.allocs, m.bytes
						if spec.MeasureScalar {
							scell := cell
							scell.DisableWordCounting = true
							sm, err := measure(ctx, tree, rules, scell, spec.Warmup, spec.Repeat)
							if err != nil {
								return nil, err
							}
							e.ScalarNsPerOp = sm.ns
							if e.NsPerOp > 0 {
								e.WordSpeedup = float64(sm.ns) / float64(e.NsPerOp)
							}
						}
						// Adaptive cells are only meaningful when the budget
						// allows at least one retirement round: with
						// MaxPerms <= the normalized MinPerms the whole run is
						// a single round and cannot retire anything, so the
						// ratio would be fixed-vs-fixed timing noise — and
						// noise must not enter the regression gate.
						ad := permute.Adaptive{MaxPerms: perms}.Normalized()
						if spec.MeasureAdaptive && perms > ad.MinPerms {
							acell := cell
							acell.Adaptive = ad
							alpha := spec.Alpha
							if alpha == 0 {
								alpha = 0.05
							}
							am, info, err := measureAdaptive(ctx, tree, rules, acell, alpha, spec.Warmup, spec.Repeat)
							if err != nil {
								return nil, err
							}
							e.AdaptiveNsPerOp = am.ns
							if am.ns > 0 {
								e.AdaptiveSpeedup = float64(e.NsPerOp) / float64(am.ns)
							}
							e.AdaptivePermsRun = info.PermsRun
							e.AdaptiveRulesRetired = info.RulesRetired
						}
						rep.Entries = append(rep.Entries, e)
						if store != nil {
							se := Entry{
								Dataset: e.Dataset,
								Records: e.Records,
								Rules:   e.Rules,
								MinSup:  e.MinSup,
								Opt:     e.Opt,
								Workers: e.Workers,
								Perms:   e.Perms,
								Store:   true,
							}
							sm, err := measureStore(ctx, store, tree, rules, cell, spec.Warmup, spec.Repeat)
							if err != nil {
								return nil, err
							}
							se.NsPerOp, se.AllocsPerOp, se.BytesPerOp = sm.ns, sm.allocs, sm.bytes
							rep.Entries = append(rep.Entries, se)
						}
					}
				}
			}
		}
	}
	fillSpeedups(rep.Entries)
	return rep, nil
}

type measurement struct {
	ns     int64
	allocs uint64
	bytes  uint64
}

// measureRuns is the shared measurement discipline: run fn warmup times
// discarded, then repeat times keeping the run with the smallest
// wall-clock, returning its measurement and payload. Allocation counters
// come from Mallocs/TotalAlloc deltas — monotonic, so unaffected by
// garbage collections during the run. ctx aborts between runs.
func measureRuns[T any](ctx context.Context, warmup, repeat int, fn func() (T, error)) (measurement, T, error) {
	var zero T
	run := func() (measurement, T, error) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		payload, err := fn()
		if err != nil {
			return measurement{}, zero, err
		}
		ns := time.Since(start).Nanoseconds()
		runtime.ReadMemStats(&after)
		return measurement{
			ns:     ns,
			allocs: after.Mallocs - before.Mallocs,
			bytes:  after.TotalAlloc - before.TotalAlloc,
		}, payload, nil
	}
	if repeat < 1 {
		repeat = 1
	}
	for i := 0; i < warmup; i++ {
		if err := ctx.Err(); err != nil {
			return measurement{}, zero, err
		}
		if _, _, err := run(); err != nil {
			return measurement{}, zero, err
		}
	}
	var best measurement
	var bestPayload T
	for i := 0; i < repeat; i++ {
		if err := ctx.Err(); err != nil {
			return measurement{}, zero, err
		}
		m, payload, err := run()
		if err != nil {
			return measurement{}, zero, err
		}
		if i == 0 || m.ns < best.ns {
			best, bestPayload = m, payload
		}
	}
	return best, bestPayload, nil
}

// measure times engine construction + one MinP pass under the shared
// warmup/repeat discipline.
func measure(ctx context.Context, tree *mining.Tree, rules []mining.Rule, cfg permute.Config, warmup, repeat int) (measurement, error) {
	m, _, err := measureRuns(ctx, warmup, repeat, func() (struct{}, error) {
		e, err := permute.NewEngine(tree, rules, cfg)
		if err != nil {
			return struct{}{}, fmt.Errorf("benchio: engine: %w", err)
		}
		e.MinP()
		return struct{}{}, e.Err()
	})
	return m, err
}

// measureAdaptive times engine construction + one adaptive Westfall–Young
// pass under the same discipline, returning the fastest run's measurement
// and its adaptive telemetry.
func measureAdaptive(ctx context.Context, tree *mining.Tree, rules []mining.Rule, cfg permute.Config, alpha float64, warmup, repeat int) (measurement, *permute.AdaptiveResult, error) {
	return measureRuns(ctx, warmup, repeat, func() (*permute.AdaptiveResult, error) {
		e, err := permute.NewEngine(tree, rules, cfg)
		if err != nil {
			return nil, fmt.Errorf("benchio: engine: %w", err)
		}
		return e.RunAdaptive(permute.AdaptFWER, alpha)
	})
}

// measureStore times one out-of-core pass: rebuilding the vertical
// encoding from the segment store (Snapshot re-reads and decodes every
// segment file — nothing is cached between runs) plus the same engine
// build + MinP pass as the in-memory cell. The statistics are
// byte-identical to the in-memory cell's; the timing difference is what
// the storage layer costs per run.
func measureStore(ctx context.Context, st *colstore.Store, tree *mining.Tree, rules []mining.Rule, cfg permute.Config, warmup, repeat int) (measurement, error) {
	m, _, err := measureRuns(ctx, warmup, repeat, func() (struct{}, error) {
		if _, _, err := st.Snapshot(); err != nil {
			return struct{}{}, fmt.Errorf("benchio: snapshot: %w", err)
		}
		e, err := permute.NewEngine(tree, rules, cfg)
		if err != nil {
			return struct{}{}, fmt.Errorf("benchio: engine: %w", err)
		}
		e.MinP()
		return struct{}{}, e.Err()
	})
	return m, err
}

// measureSharded times one fixed pass through a shard coordinator: engine
// construction (labels deferred — each shard builds only its own range),
// worker wrapping, dispatch and merge. The statistics are byte-identical
// to the single-node cell's; the timing difference is the cost (or gain)
// of the partition itself.
func measureSharded(ctx context.Context, tree *mining.Tree, rules []mining.Rule, cfg permute.Config, nShards, warmup, repeat int) (measurement, error) {
	ps := make([]float64, len(rules))
	for i := range rules {
		ps[i] = rules[i].P
	}
	m, _, err := measureRuns(ctx, warmup, repeat, func() (struct{}, error) {
		scfg := cfg
		scfg.DeferLabels = true
		e, err := permute.NewEngine(tree, rules, scfg)
		if err != nil {
			return struct{}{}, fmt.Errorf("benchio: engine: %w", err)
		}
		workers := make([]shard.Worker, nShards)
		for i := range workers {
			workers[i] = shard.NewLocal(e)
		}
		coord, err := shard.NewCoordinator(workers, ps, cfg.NumPerms, permute.Adaptive{})
		if err != nil {
			return struct{}{}, fmt.Errorf("benchio: coordinator: %w", err)
		}
		_, err = coord.MinP(ctx)
		return struct{}{}, err
	})
	return m, err
}

// cellKey identifies a matrix cell across reports and levels. shards is
// stored normalized (normShards): reports written before the dimension
// existed carry an implicit 0, which must keep matching today's
// single-node cells — while a shards=N cell never matches a single-node
// baseline, so Compare skips it like any other cell present in only one
// report. store needs no normalization: the JSON field is omitempty, so
// a baseline written before the dimension unmarshals to false and keeps
// gating the in-memory cells, while a store cell never matches an
// in-memory baseline.
type cellKey struct {
	dataset string
	opt     string
	workers int
	perms   int
	shards  int
	store   bool
}

// normShards collapses the two spellings of "single-node" (0 and 1) into
// one key value.
func normShards(n int) int {
	if n <= 1 {
		return 0
	}
	return n
}

// fillSpeedups derives each entry's speedup against the matching
// "none"-level cell of the same run (and the same shard count and store
// dimension — a sharded cell's ladder is measured against the sharded
// "none" cell, a store cell's against the store "none" cell, so the
// ladder isolates the optimisation from the dispatch/storage overhead).
func fillSpeedups(entries []Entry) {
	none := make(map[cellKey]int64)
	for _, e := range entries {
		if e.Opt == permute.OptNone.Name() {
			none[cellKey{e.Dataset, "", e.Workers, e.Perms, normShards(e.Shards), e.Store}] = e.NsPerOp
		}
	}
	for i := range entries {
		base := none[cellKey{entries[i].Dataset, "", entries[i].Workers, entries[i].Perms, normShards(entries[i].Shards), entries[i].Store}]
		if base > 0 && entries[i].NsPerOp > 0 {
			entries[i].SpeedupVsNone = float64(base) / float64(entries[i].NsPerOp)
		}
	}
}

// WriteFile writes the report as indented JSON.
func WriteFile(path string, rep *Report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a BENCH json, rejecting unknown schema versions.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("benchio: %s: %w", path, err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("benchio: %s: schema version %d, want %d", path, rep.SchemaVersion, SchemaVersion)
	}
	return &rep, nil
}

// Regression is one matrix cell whose relative performance fell more than
// the tolerance below the baseline.
type Regression struct {
	Dataset string
	Opt     string
	Workers int
	Perms   int
	Shards  int    // 0 = single-node
	Store   bool   // true = out-of-core (segment-store) cell
	Metric  string // "speedup_vs_none", "word_speedup", "adaptive_vs_none" or "allocs_per_op"
	Base    float64
	Now     float64
}

func (r Regression) String() string {
	s := fmt.Sprintf("%s opt=%s workers=%d perms=%d", r.Dataset, r.Opt, r.Workers, r.Perms)
	if r.Shards > 1 {
		s += fmt.Sprintf(" shards=%d", r.Shards)
	}
	if r.Store {
		s += " store"
	}
	return fmt.Sprintf("%s: %s %.2f -> %.2f", s, r.Metric, r.Base, r.Now)
}

// allocsSlack is the absolute headroom the allocs_per_op gate grants on
// top of the relative tolerance: tiny baselines (a few dozen allocations)
// would otherwise flag single-object noise as a regression.
const allocsSlack = 64

// Compare checks cur against base cell by cell and returns the cells that
// regressed by more than tolerance (e.g. 0.20 = 20%). Relative metrics
// are gated because raw ns/op is not comparable across machines:
// speedup_vs_none, word_speedup, and the adaptive path as
// adaptive_vs_none — the adaptive run's speedup over the same run's
// "none" cell (speedup_vs_none × adaptive_speedup). The raw
// adaptive_speedup ratio is deliberately not gated: its denominator is
// the same cell's fixed pass, so any improvement to fixed counting
// shrinks the ratio even when the adaptive run itself got faster.
// allocs_per_op is gated on growth (it is a property of the build, not
// the machine): a cell regresses when its allocation count exceeds the
// baseline's by more than the tolerance fraction plus a small absolute
// slack. Cells present in only one report are ignored (the matrix may
// legitimately grow or shrink).
func Compare(base, cur *Report, tolerance float64) []Regression {
	baseBy := make(map[cellKey]Entry, len(base.Entries))
	for _, e := range base.Entries {
		baseBy[cellKey{e.Dataset, e.Opt, e.Workers, e.Perms, normShards(e.Shards), e.Store}] = e
	}
	var regs []Regression
	for _, e := range cur.Entries {
		b, ok := baseBy[cellKey{e.Dataset, e.Opt, e.Workers, e.Perms, normShards(e.Shards), e.Store}]
		if !ok {
			// In particular, a baseline recorded before the shard or store
			// dimension (or at a different shard count) never gates a
			// sharded or store cell.
			continue
		}
		reg := func(metric string, was, now float64) {
			regs = append(regs, Regression{
				Dataset: e.Dataset, Opt: e.Opt, Workers: e.Workers, Perms: e.Perms,
				Shards: e.Shards, Store: e.Store, Metric: metric, Base: was, Now: now,
			})
		}
		check := func(metric string, was, now float64) {
			if was > 0 && now > 0 && now < was*(1-tolerance) {
				reg(metric, was, now)
			}
		}
		check("speedup_vs_none", b.SpeedupVsNone, e.SpeedupVsNone)
		check("word_speedup", b.WordSpeedup, e.WordSpeedup)
		check("adaptive_vs_none", b.SpeedupVsNone*b.AdaptiveSpeedup, e.SpeedupVsNone*e.AdaptiveSpeedup)
		if b.AllocsPerOp > 0 &&
			float64(e.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tolerance)+allocsSlack {
			reg("allocs_per_op", float64(b.AllocsPerOp), float64(e.AllocsPerOp))
		}
	}
	return regs
}
