package mining

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/intset"
)

// BrutePattern is a closed frequent pattern found by the reference miner.
type BrutePattern struct {
	Items   []dataset.Item
	Support int
	Tids    []uint32
}

// BruteForceClosed enumerates every closed frequent pattern by exhaustive
// search: all frequent itemsets are generated, grouped by their record
// sets, and the maximal itemset of each group (the union of the group,
// which is the closure) is emitted. Exponential in the number of items —
// for tests on small datasets only.
func BruteForceClosed(enc *dataset.Encoded, minSup int) []BrutePattern {
	numItems := enc.Enc.NumItems()
	var frequent []dataset.Item
	for i := 0; i < numItems; i++ {
		if len(enc.Tids[i]) >= minSup {
			frequent = append(frequent, dataset.Item(i))
		}
	}

	// Group frequent itemsets by tid-list signature. The closure of a
	// record set T is the union of all itemsets whose records are exactly
	// T; equivalently, all items i with tids(i) ⊇ T.
	type group struct {
		tids []uint32
	}
	groups := make(map[string]*group)
	// order keeps the groups in first-discovery order: the final emit loop
	// must not range over the map, or the pre-sort pattern order — and with
	// it the unstable sort's tie-breaking — would vary run to run.
	var order []*group
	var rec func(start int, items []dataset.Item, tids []uint32)
	key := func(tids []uint32) string {
		b := make([]byte, 0, 4*len(tids))
		for _, t := range tids {
			b = append(b, byte(t), byte(t>>8), byte(t>>16), byte(t>>24))
		}
		return string(b)
	}
	all := make([]uint32, enc.NumRecords)
	for r := range all {
		all[r] = uint32(r)
	}
	rec = func(start int, items []dataset.Item, tids []uint32) {
		if len(items) > 0 {
			k := key(tids)
			if _, ok := groups[k]; !ok {
				cp := make([]uint32, len(tids))
				copy(cp, tids)
				g := &group{tids: cp}
				groups[k] = g
				order = append(order, g)
			}
		}
		for i := start; i < len(frequent); i++ {
			it := frequent[i]
			nt := intset.Intersect(tids, enc.Tids[it])
			if len(nt) < minSup {
				continue
			}
			rec(i+1, append(items, it), nt)
		}
	}
	rec(0, nil, all)

	// Also the empty pattern's closure, if non-trivial: items covering all
	// records.
	var rootClosure []dataset.Item
	for _, it := range frequent {
		if len(enc.Tids[it]) == enc.NumRecords {
			rootClosure = append(rootClosure, it)
		}
	}
	if len(rootClosure) > 0 {
		k := key(all)
		if _, ok := groups[k]; !ok {
			g := &group{tids: all}
			groups[k] = g
			order = append(order, g)
		}
	}

	out := make([]BrutePattern, 0, len(order))
	for _, g := range order {
		// Closure = all frequent items whose tid-list contains g.tids.
		var closure []dataset.Item
		for _, it := range frequent {
			if len(enc.Tids[it]) >= len(g.tids) && intset.Subset(g.tids, enc.Tids[it]) {
				closure = append(closure, it)
			}
		}
		out = append(out, BrutePattern{Items: closure, Support: len(g.tids), Tids: g.tids})
	}
	sort.Slice(out, func(a, b int) bool { return lessItems(out[a].Items, out[b].Items) })
	return out
}

func lessItems(a, b []dataset.Item) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
