package mining

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

// Ablation: mining with and without Diffset storage. Diffsets trade a
// cheaper permutation phase for slightly different memory traffic during
// mining; these benches isolate the mining side (the permutation side is
// covered in internal/permute).

func benchDataset(b *testing.B, n, attrs int) *dataset.Encoded {
	b.Helper()
	p := synth.PaperDefaults()
	p.N = n
	p.Attrs = attrs
	p.NumRules = 2
	p.MinCvg, p.MaxCvg = n/10, n/5
	p.MinConf, p.MaxConf = 0.7, 0.9
	p.Seed = 9
	res, err := synth.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	return dataset.Encode(res.Data)
}

func BenchmarkMineClosedTidlists(b *testing.B) {
	enc := benchDataset(b, 2000, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := MineClosed(enc, Options{MinSup: 60, StoreDiffsets: false})
		if err != nil {
			b.Fatal(err)
		}
		sinkTree = tree
	}
}

func BenchmarkMineClosedDiffsets(b *testing.B) {
	enc := benchDataset(b, 2000, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := MineClosed(enc, Options{MinSup: 60, StoreDiffsets: true})
		if err != nil {
			b.Fatal(err)
		}
		sinkTree = tree
	}
}

func BenchmarkGenerateRules(b *testing.B) {
	enc := benchDataset(b, 2000, 20)
	tree, err := MineClosed(enc, Options{MinSup: 60, StoreDiffsets: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rules, err := GenerateRules(tree, RuleOptions{Policy: PaperPolicy})
		if err != nil {
			b.Fatal(err)
		}
		sinkRules = rules
	}
}

func BenchmarkMaterializeTids(b *testing.B) {
	enc := benchDataset(b, 2000, 20)
	tree, err := MineClosed(enc, Options{MinSup: 60, StoreDiffsets: true})
	if err != nil {
		b.Fatal(err)
	}
	nodes := tree.Nodes
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkTids = nodes[i%len(nodes)].MaterializeTids()
	}
}

var (
	sinkTree  *Tree
	sinkRules []Rule
	sinkTids  []uint32
)
