package mining

import (
	"context"
	"math/rand/v2"
	"testing"

	"repro/internal/dataset"
	"repro/internal/intset"
)

// treesIdentical asserts that two mined trees are byte-identical: same
// node order, closures, supports, tid-list/Diffset storage, class counts,
// indices and depths.
func treesIdentical(t *testing.T, label string, a, b *Tree) {
	t.Helper()
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("%s: %d nodes vs %d", label, len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		na, nb := a.Nodes[i], b.Nodes[i]
		if na.Index != nb.Index || na.Support != nb.Support || na.Depth != nb.Depth {
			t.Fatalf("%s node %d: index/support/depth (%d,%d,%d) vs (%d,%d,%d)",
				label, i, na.Index, na.Support, na.Depth, nb.Index, nb.Support, nb.Depth)
		}
		if patternKey(na.Closure) != patternKey(nb.Closure) {
			t.Fatalf("%s node %d: closure %v vs %v", label, i, na.Closure, nb.Closure)
		}
		if na.HasDiff() != nb.HasDiff() {
			t.Fatalf("%s node %d: storage kind differs (diff=%v vs %v)", label, i, na.HasDiff(), nb.HasDiff())
		}
		if !intset.Equal(na.Tids, nb.Tids) || !intset.Equal(na.Diff, nb.Diff) {
			t.Fatalf("%s node %d: tid/diff storage differs", label, i)
		}
		for c := range na.ClassCounts {
			if na.ClassCounts[c] != nb.ClassCounts[c] {
				t.Fatalf("%s node %d: class counts differ", label, i)
			}
		}
		pa, pb := -1, -1
		if na.Parent != nil {
			pa = na.Parent.Index
		}
		if nb.Parent != nil {
			pb = nb.Parent.Index
		}
		if pa != pb {
			t.Fatalf("%s node %d: parent %d vs %d", label, i, pa, pb)
		}
	}
}

// TestParallelMinerMatchesSequentialAndBrute is the property test of the
// worker-pool miner: on randomized small datasets, every worker count must
// produce a tree byte-identical to the Workers=1 run, the closed-pattern
// set must match the exhaustive brute-force reference, and the generated
// rule p-values must be identical across worker counts.
func TestParallelMinerMatchesSequentialAndBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(2026, 727))
	for trial := 0; trial < 25; trial++ {
		n := 20 + rng.IntN(80)
		attrs := 2 + rng.IntN(4)
		vals := 2 + rng.IntN(3)
		minSup := 2 + rng.IntN(5)
		diffsets := trial%2 == 0
		d := randomDataset(rng, n, attrs, vals, 2)
		enc := dataset.Encode(d)

		seq, err := MineClosed(enc, Options{MinSup: minSup, StoreDiffsets: diffsets, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		seqRules, err := GenerateRules(seq, RuleOptions{Policy: PaperPolicy})
		if err != nil {
			t.Fatal(err)
		}

		// Brute-force reference: same closed pattern set and supports.
		brute := BruteForceClosed(enc, minSup)
		want := make(map[string]int, len(brute))
		for _, p := range brute {
			want[patternKey(p.Items)] = p.Support
		}
		got := make(map[string]int)
		for _, node := range seq.Nodes {
			if len(node.Closure) > 0 {
				got[patternKey(node.Closure)] = node.Support
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: miner found %d patterns, brute force %d", trial, len(got), len(want))
		}
		for k, sup := range want {
			if got[k] != sup {
				t.Fatalf("trial %d: support mismatch (%d vs %d)", trial, got[k], sup)
			}
		}

		for _, workers := range []int{2, 8} {
			par, err := MineClosed(enc, Options{MinSup: minSup, StoreDiffsets: diffsets, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			treesIdentical(t, "workers", seq, par)
			parRules, err := GenerateRules(par, RuleOptions{Policy: PaperPolicy})
			if err != nil {
				t.Fatal(err)
			}
			if len(parRules) != len(seqRules) {
				t.Fatalf("trial %d workers=%d: %d rules vs %d", trial, workers, len(parRules), len(seqRules))
			}
			for i := range parRules {
				if parRules[i].P != seqRules[i].P ||
					parRules[i].Class != seqRules[i].Class ||
					parRules[i].Coverage != seqRules[i].Coverage ||
					parRules[i].Support != seqRules[i].Support {
					t.Fatalf("trial %d workers=%d rule %d: stats differ", trial, workers, i)
				}
			}
		}
	}
}

// TestParallelMinerMaxNodesTrips checks that the shared atomic node budget
// still aborts mining for every worker count, and that a budget high
// enough to hold the full tree never trips.
func TestParallelMinerMaxNodesTrips(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 9))
	d := randomDataset(rng, 100, 6, 3, 2)
	enc := dataset.Encode(d)
	full, err := MineClosed(enc, Options{MinSup: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		if _, err := MineClosed(enc, Options{MinSup: 2, MaxNodes: 5, Workers: workers}); err == nil {
			t.Errorf("workers=%d: expected node budget error", workers)
		}
		tree, err := MineClosed(enc, Options{MinSup: 2, MaxNodes: len(full.Nodes), Workers: workers})
		if err != nil {
			t.Errorf("workers=%d: exact budget should pass: %v", workers, err)
		} else if len(tree.Nodes) != len(full.Nodes) {
			t.Errorf("workers=%d: %d nodes under exact budget, want %d", workers, len(tree.Nodes), len(full.Nodes))
		}
		if _, err := MineClosed(enc, Options{MinSup: 2, MaxNodes: len(full.Nodes) - 1, Workers: workers}); err == nil {
			t.Errorf("workers=%d: budget one short of the tree must trip", workers)
		}
	}
}

// TestMineClosedContextCancelled checks that an already-cancelled context
// aborts mining with the context's error.
func TestMineClosedContextCancelled(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	d := randomDataset(rng, 200, 8, 3, 2)
	enc := dataset.Encode(d)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MineClosedContext(ctx, enc, Options{MinSup: 2, Workers: 4}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
