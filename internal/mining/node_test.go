package mining

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/intset"
	"repro/internal/synth"
)

func TestStoredIdsAndNodeReps(t *testing.T) {
	p := synth.PaperDefaults()
	p.N = 300
	p.Attrs = 8
	p.Seed = 5
	res, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	enc := dataset.Encode(res.Data)
	tree, err := MineClosed(enc, Options{MinSup: 20, StoreDiffsets: true})
	if err != nil {
		t.Fatal(err)
	}

	sawDiff := false
	for _, nd := range tree.Nodes {
		stored := nd.StoredIds()
		if nd.HasDiff() {
			sawDiff = true
			if &stored[0] != &nd.Diff[0] {
				t.Fatal("StoredIds of a Diffset node is not its Diff")
			}
		} else if len(nd.Tids) > 0 && &stored[0] != &nd.Tids[0] {
			t.Fatal("StoredIds of a tid-list node is not its Tids")
		}
	}
	if !sawDiff {
		t.Fatal("test tree has no Diffset nodes; raise N or lower MinSup")
	}

	for _, workers := range []int{1, 4} {
		reps := NodeReps(tree, workers)
		if len(reps) != len(tree.Nodes) {
			t.Fatalf("workers=%d: %d reps for %d nodes", workers, len(reps), len(tree.Nodes))
		}
		for i, r := range reps {
			stored := tree.Nodes[i].StoredIds()
			if r.Len() != len(stored) {
				t.Fatalf("workers=%d node %d: rep len %d, stored len %d", workers, i, r.Len(), len(stored))
			}
			if ws := r.Words(); ws != nil {
				// The word view must agree with the slice it wraps.
				self := make([]uint64, intset.Words(enc.NumRecords))
				intset.SetWords(self, stored)
				if got := intset.IntersectCountWords(ws, self); got != len(stored) {
					t.Fatalf("node %d: word view popcount %d, want %d", i, got, len(stored))
				}
			}
		}
	}

	// The root is fully dense and must take the shared-word fast path.
	if NodeReps(tree, 1)[tree.Root.Index].Words() == nil {
		t.Error("root Rep has no word view despite full density")
	}
}
