package mining

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func TestStoredIds(t *testing.T) {
	p := synth.PaperDefaults()
	p.N = 300
	p.Attrs = 8
	p.Seed = 5
	res, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	enc := dataset.Encode(res.Data)
	tree, err := MineClosed(enc, Options{MinSup: 20, StoreDiffsets: true})
	if err != nil {
		t.Fatal(err)
	}

	sawDiff := false
	for _, nd := range tree.Nodes {
		stored := nd.StoredIds()
		if nd.HasDiff() {
			sawDiff = true
			if &stored[0] != &nd.Diff[0] {
				t.Fatal("StoredIds of a Diffset node is not its Diff")
			}
		} else if len(nd.Tids) > 0 && &stored[0] != &nd.Tids[0] {
			t.Fatal("StoredIds of a tid-list node is not its Tids")
		}
	}
	if !sawDiff {
		t.Fatal("test tree has no Diffset nodes; raise N or lower MinSup")
	}
}
