package mining

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/intset"
)

// randomDataset builds a random categorical dataset for cross-checking the
// miner against the brute-force reference.
func randomDataset(rng *rand.Rand, n, attrs, valsPerAttr, classes int) *dataset.Dataset {
	s := &dataset.Schema{}
	for a := 0; a < attrs; a++ {
		attr := dataset.Attribute{Name: fmt.Sprintf("A%d", a)}
		for v := 0; v < valsPerAttr; v++ {
			attr.Values = append(attr.Values, fmt.Sprintf("v%d", v))
		}
		s.Attrs = append(s.Attrs, attr)
	}
	for c := 0; c < classes; c++ {
		s.Class.Values = append(s.Class.Values, fmt.Sprintf("c%d", c))
	}
	s.Class.Name = "class"
	d := dataset.New(s, n)
	for r := 0; r < n; r++ {
		cells := make([]int32, attrs)
		for a := range cells {
			cells[a] = int32(rng.IntN(valsPerAttr))
		}
		d.Append(cells, int32(rng.IntN(classes)))
	}
	return d
}

func patternKey(items []dataset.Item) string {
	b := make([]byte, 0, 2*len(items))
	for _, it := range items {
		b = append(b, byte(it), byte(it>>8))
	}
	return string(b)
}

func TestMineClosedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.IntN(60)
		attrs := 2 + rng.IntN(4)
		vals := 2 + rng.IntN(3)
		minSup := 2 + rng.IntN(6)
		d := randomDataset(rng, n, attrs, vals, 2)
		enc := dataset.Encode(d)

		for _, diffsets := range []bool{false, true} {
			tree, err := MineClosed(enc, Options{MinSup: minSup, StoreDiffsets: diffsets})
			if err != nil {
				t.Fatal(err)
			}
			brute := BruteForceClosed(enc, minSup)

			got := make(map[string]int)
			for _, node := range tree.Nodes {
				if len(node.Closure) == 0 {
					continue
				}
				got[patternKey(node.Closure)] = node.Support
			}
			want := make(map[string]int)
			for _, p := range brute {
				want[patternKey(p.Items)] = p.Support
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d diffsets=%v: miner found %d closed patterns, brute force %d",
					trial, diffsets, len(got), len(want))
			}
			for k, sup := range want {
				if got[k] != sup {
					t.Fatalf("trial %d: pattern support mismatch: miner %d, brute %d", trial, got[k], sup)
				}
			}
		}
	}
}

func TestMineClosedTidsConsistent(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	d := randomDataset(rng, 80, 4, 3, 2)
	enc := dataset.Encode(d)
	tree, err := MineClosed(enc, Options{MinSup: 3, StoreDiffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range tree.Nodes {
		tids := node.MaterializeTids()
		if len(tids) != node.Support {
			t.Fatalf("node %d: |tids| = %d, support = %d", node.Index, len(tids), node.Support)
		}
		if !intset.IsSorted(tids) {
			t.Fatalf("node %d: tids not sorted", node.Index)
		}
		// Tid-list must be exactly the records containing the closure.
		for r := 0; r < enc.NumRecords; r++ {
			contains := true
			for _, it := range node.Closure {
				if !intset.Contains(enc.Tids[it], uint32(r)) {
					contains = false
					break
				}
			}
			if contains != intset.Contains(tids, uint32(r)) {
				t.Fatalf("node %d (closure %v): record %d membership mismatch", node.Index, node.Closure, r)
			}
		}
		// Class counts must match the labels over the tid-list.
		counts := CountClasses(tids, enc.Labels, enc.NumClasses)
		for c := range counts {
			if counts[c] != node.ClassCounts[c] {
				t.Fatalf("node %d: class %d count %d, want %d", node.Index, c, node.ClassCounts[c], counts[c])
			}
		}
	}
}

func TestMineClosedDiffsetRule(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	d := randomDataset(rng, 100, 5, 2, 2)
	enc := dataset.Encode(d)
	tree, err := MineClosed(enc, Options{MinSup: 2, StoreDiffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	sawDiff, sawFull := false, false
	for _, node := range tree.Nodes[1:] {
		if node.HasDiff() {
			sawDiff = true
			// §4.2.2: diffsets only when supp > parent/2.
			if 2*node.Support <= node.Parent.Support {
				t.Errorf("node %d stores a diffset but support %d <= parent/2 (%d)",
					node.Index, node.Support, node.Parent.Support)
			}
			if len(node.Diff) != node.Parent.Support-node.Support {
				t.Errorf("node %d: |diff| = %d, want %d", node.Index, len(node.Diff),
					node.Parent.Support-node.Support)
			}
		} else {
			sawFull = true
			if 2*node.Support > node.Parent.Support {
				t.Errorf("node %d stores full tids but support %d > parent/2 (%d)",
					node.Index, node.Support, node.Parent.Support)
			}
		}
	}
	if !sawDiff || !sawFull {
		t.Logf("coverage note: sawDiff=%v sawFull=%v", sawDiff, sawFull)
	}
}

func TestMineClosedDFSOrder(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 29))
	d := randomDataset(rng, 60, 4, 3, 2)
	enc := dataset.Encode(d)
	tree, err := MineClosed(enc, Options{MinSup: 2, StoreDiffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, node := range tree.Nodes {
		if node.Index != i {
			t.Fatalf("node at position %d has Index %d", i, node.Index)
		}
		if node.Parent != nil && node.Parent.Index >= node.Index {
			t.Fatalf("node %d appears before its parent %d", node.Index, node.Parent.Index)
		}
		if node.Parent != nil && node.Depth != node.Parent.Depth+1 {
			t.Fatalf("node %d depth %d, parent depth %d", node.Index, node.Depth, node.Parent.Depth)
		}
	}
}

func TestMineClosedUniquePatterns(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 37))
	for trial := 0; trial < 10; trial++ {
		d := randomDataset(rng, 50+rng.IntN(50), 5, 3, 2)
		enc := dataset.Encode(d)
		tree, err := MineClosed(enc, Options{MinSup: 2, StoreDiffsets: trial%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool)
		tidsSeen := make(map[string]bool)
		for _, node := range tree.Nodes {
			k := patternKey(node.Closure)
			if seen[k] {
				t.Fatalf("duplicate closed pattern %v", node.Closure)
			}
			seen[k] = true
			// Closed patterns have pairwise distinct record sets.
			tids := node.MaterializeTids()
			tk := fmt.Sprint(tids)
			if tidsSeen[tk] {
				t.Fatalf("two closed patterns share a record set (pattern %v)", node.Closure)
			}
			tidsSeen[tk] = true
		}
	}
}

func TestMineClosedMinSupRespected(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 43))
	d := randomDataset(rng, 100, 4, 2, 2)
	enc := dataset.Encode(d)
	for _, minSup := range []int{2, 5, 10, 25, 60} {
		tree, err := MineClosed(enc, Options{MinSup: minSup})
		if err != nil {
			t.Fatal(err)
		}
		for _, node := range tree.Nodes {
			if node.Support < minSup {
				t.Fatalf("minSup=%d: pattern %v has support %d", minSup, node.Closure, node.Support)
			}
		}
	}
	// Monotonicity: higher minSup yields no more patterns.
	prev := -1
	for _, minSup := range []int{2, 5, 10, 25, 60} {
		tree, _ := MineClosed(enc, Options{MinSup: minSup})
		if prev >= 0 && len(tree.Nodes) > prev {
			t.Fatalf("pattern count increased when minSup rose to %d", minSup)
		}
		prev = len(tree.Nodes)
	}
}

func TestMineClosedMaxLen(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 53))
	d := randomDataset(rng, 60, 6, 2, 2)
	enc := dataset.Encode(d)
	tree, err := MineClosed(enc, Options{MinSup: 2, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range tree.Nodes {
		if len(node.Closure) > 2 {
			t.Fatalf("MaxLen=2 violated by pattern %v", node.Closure)
		}
	}
}

func TestMineClosedMaxNodes(t *testing.T) {
	rng := rand.New(rand.NewPCG(59, 61))
	d := randomDataset(rng, 100, 6, 3, 2)
	enc := dataset.Encode(d)
	if _, err := MineClosed(enc, Options{MinSup: 2, MaxNodes: 5}); err == nil {
		t.Error("expected node budget error")
	}
}

func TestMineClosedInvalidMinSup(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	d := randomDataset(rng, 10, 2, 2, 2)
	if _, err := MineClosed(dataset.Encode(d), Options{MinSup: 0}); err == nil {
		t.Error("MinSup=0 should be rejected")
	}
}

func TestMineClosedConstantAttribute(t *testing.T) {
	// An attribute with a single value appears in every record; its item
	// belongs to the root closure and every pattern's closure.
	s := &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "const", Values: []string{"only"}},
			{Name: "x", Values: []string{"a", "b"}},
		},
		Class: dataset.Attribute{Name: "class", Values: []string{"y", "n"}},
	}
	d := dataset.New(s, 6)
	for r := 0; r < 6; r++ {
		d.Append([]int32{0, int32(r % 2)}, int32(r%2))
	}
	enc := dataset.Encode(d)
	tree, err := MineClosed(enc, Options{MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Root.Closure) != 1 {
		t.Fatalf("root closure = %v, want the constant item", tree.Root.Closure)
	}
	for _, node := range tree.Nodes {
		found := false
		for _, it := range node.Closure {
			if it == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("pattern %v misses the constant item", node.Closure)
		}
	}
}

func TestGenerateRulesPaperPolicyTwoClasses(t *testing.T) {
	rng := rand.New(rand.NewPCG(67, 71))
	d := randomDataset(rng, 80, 4, 2, 2)
	enc := dataset.Encode(d)
	tree, err := MineClosed(enc, Options{MinSup: 3})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := GenerateRules(tree, RuleOptions{Policy: PaperPolicy})
	if err != nil {
		t.Fatal(err)
	}
	// One rule per non-root pattern.
	if got, want := len(rules), tree.NumPatterns(); got != want {
		t.Fatalf("generated %d rules, want %d (one per pattern)", got, want)
	}
	hs := NewHypergeoms(enc)
	for _, r := range rules {
		if r.Coverage != r.Node.Support {
			t.Errorf("rule coverage %d != node support %d", r.Coverage, r.Node.Support)
		}
		if r.Support != int(r.Node.ClassCounts[r.Class]) {
			t.Errorf("rule support inconsistent")
		}
		want := hs[r.Class].FisherTwoTailed(r.Support, r.Coverage)
		if diff := r.P - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("rule p-value %g, want %g", r.P, want)
		}
		// Both classes give the same two-tailed p-value.
		other := 1 - r.Class
		pOther := hs[other].FisherTwoTailed(int(r.Node.ClassCounts[other]), r.Coverage)
		if rel := (r.P - pOther) / (r.P + 1e-300); rel > 1e-6 || rel < -1e-6 {
			t.Errorf("two-class symmetry broken: p(c)=%g p(¬c)=%g", r.P, pOther)
		}
	}
}

func TestGenerateRulesMultiClass(t *testing.T) {
	rng := rand.New(rand.NewPCG(73, 79))
	d := randomDataset(rng, 90, 3, 2, 3)
	enc := dataset.Encode(d)
	tree, err := MineClosed(enc, Options{MinSup: 3})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := GenerateRules(tree, RuleOptions{Policy: PaperPolicy})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rules), 3*tree.NumPatterns(); got != want {
		t.Fatalf("generated %d rules, want %d (m per pattern)", got, want)
	}
}

func TestGenerateRulesFixedClass(t *testing.T) {
	rng := rand.New(rand.NewPCG(83, 89))
	d := randomDataset(rng, 60, 3, 2, 2)
	enc := dataset.Encode(d)
	tree, _ := MineClosed(enc, Options{MinSup: 3})
	rules, err := GenerateRules(tree, RuleOptions{Policy: FixedClass, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Class != 1 {
			t.Fatalf("FixedClass produced class %d", r.Class)
		}
	}
	if _, err := GenerateRules(tree, RuleOptions{Policy: FixedClass, Class: 5}); err == nil {
		t.Error("out-of-range fixed class should be rejected")
	}
}

func TestGenerateRulesMinConf(t *testing.T) {
	rng := rand.New(rand.NewPCG(97, 101))
	d := randomDataset(rng, 80, 4, 2, 2)
	enc := dataset.Encode(d)
	tree, _ := MineClosed(enc, Options{MinSup: 3})
	rules, err := GenerateRules(tree, RuleOptions{Policy: AllClasses, MinConf: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		if r.Confidence < 0.6 {
			t.Fatalf("rule with confidence %f below MinConf", r.Confidence)
		}
	}
}

func TestSortRulesByP(t *testing.T) {
	rng := rand.New(rand.NewPCG(103, 107))
	d := randomDataset(rng, 100, 4, 3, 2)
	enc := dataset.Encode(d)
	tree, _ := MineClosed(enc, Options{MinSup: 3})
	rules, _ := GenerateRules(tree, RuleOptions{Policy: PaperPolicy})
	SortRulesByP(rules)
	if !sort.SliceIsSorted(rules, func(i, j int) bool { return rules[i].P < rules[j].P }) {
		for i := 1; i < len(rules); i++ {
			if rules[i].P < rules[i-1].P {
				t.Fatalf("rules not sorted at %d: %g > %g", i, rules[i-1].P, rules[i].P)
			}
		}
	}
}

func TestRuleFormat(t *testing.T) {
	s := &dataset.Schema{
		Attrs: []dataset.Attribute{{Name: "color", Values: []string{"red", "blue"}}},
		Class: dataset.Attribute{Name: "class", Values: []string{"yes", "no"}},
	}
	d := dataset.New(s, 4)
	d.Append([]int32{0}, 0)
	d.Append([]int32{0}, 0)
	d.Append([]int32{1}, 1)
	d.Append([]int32{1}, 1)
	enc := dataset.Encode(d)
	tree, _ := MineClosed(enc, Options{MinSup: 1})
	rules, _ := GenerateRules(tree, RuleOptions{Policy: AllClasses})
	if len(rules) == 0 {
		t.Fatal("no rules")
	}
	got := rules[0].Format(enc.Enc)
	if got == "" || len(got) < 10 {
		t.Errorf("Format produced %q", got)
	}
}
