// Package mining implements closed frequent pattern mining over the
// vertical (item → tid-list) dataset representation, following §3 and
// §4.2.2 of the paper: patterns are explored depth-first in a
// set-enumeration tree, only closed patterns are kept (one representative
// per distinct record set), and a child node may store a Diffset — the ids
// its parent has and it lacks — instead of its full tid-list when the
// child retains more than half of the parent's records.
//
// The miner produces a Tree whose nodes carry enough information for the
// permutation engine to recompute class-conditional supports under any
// relabelling without re-mining (the paper's "mine association rules only
// once" optimisation, §4.2.1).
//
// The package comment directive below puts every function in detlint's
// deterministic scope (DESIGN.md §9): the mined tree is input to the
// byte-identical permutation engine, so its shape and order must not
// depend on scheduling or map iteration.
//
//armine:deterministic
package mining

import (
	"repro/internal/dataset"
)

// Node is one closed frequent pattern in the set-enumeration tree.
//
// Exactly one of Tids and Diff is non-nil (except for the root, which
// always carries Tids): Tids is the full sorted record id list of the
// pattern; Diff is Parent's tid-list minus this node's (§4.2.2), stored
// when the pattern keeps more than half of its parent's records.
type Node struct {
	// Closure is the closed pattern itself: sorted item ids.
	Closure []dataset.Item
	// Support = |T(X)|, the pattern's coverage when used as a rule LHS.
	Support int
	// Parent is the DFS parent in the set-enumeration tree (nil for root).
	Parent *Node
	// Tids is the full record id list, or nil if Diff is stored.
	Tids []uint32
	// Diff = Parent tid-list \ this tid-list, or nil if Tids is stored.
	Diff []uint32
	// ClassCounts[c] = number of records in T(X) with class c, under the
	// original (unpermuted) labels.
	ClassCounts []int32
	// Index is the position of this node in Tree.Nodes (DFS pre-order).
	Index int
	// Depth is the node's depth in the tree (root = 0).
	Depth int
}

// HasDiff reports whether the node stores a Diffset instead of a tid-list.
func (n *Node) HasDiff() bool { return n.Tids == nil }

// MaterializeTids returns the node's full tid-list, reconstructing it from
// the parent chain if the node stores a Diffset. The returned slice must
// not be modified; it may be freshly allocated or shared with the node.
func (n *Node) MaterializeTids() []uint32 {
	if n.Tids != nil {
		return n.Tids
	}
	parent := n.Parent.MaterializeTids()
	out := make([]uint32, 0, len(parent)-len(n.Diff))
	i := 0
	for _, t := range parent {
		if i < len(n.Diff) && n.Diff[i] == t {
			i++
			continue
		}
		out = append(out, t)
	}
	return out
}

// StoredIds returns the id list the node physically stores: the full
// tid-list, or the Diffset when the node stores one. It is what
// per-permutation counting consumes — a Diffset node's class counts are
// derived from its parent's by subtracting the counts of the stored
// difference.
func (n *Node) StoredIds() []uint32 {
	if n.Tids != nil {
		return n.Tids
	}
	return n.Diff
}

// Tree is the output of the closed miner: all closed frequent patterns in
// DFS pre-order (so every node appears after its parent), rooted at the
// closure of the empty pattern.
type Tree struct {
	Enc  *dataset.Encoded
	Root *Node
	// Nodes lists every node including the root, in DFS pre-order.
	Nodes []*Node
	// MinSup is the threshold the tree was mined with.
	MinSup int
}

// NumPatterns returns the number of closed frequent patterns, excluding
// the root when the root's closure is empty (the empty pattern is not a
// rule LHS).
func (t *Tree) NumPatterns() int {
	n := len(t.Nodes)
	if len(t.Root.Closure) == 0 {
		n--
	}
	return n
}

// CountClasses returns the per-class record counts of tids under labels.
func CountClasses(tids []uint32, labels []int32, numClasses int) []int32 {
	counts := make([]int32, numClasses)
	for _, t := range tids {
		counts[labels[t]]++
	}
	return counts
}
