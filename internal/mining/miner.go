package mining

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/intset"
)

// Options configures the closed miner.
type Options struct {
	// MinSup is the minimum support (absolute record count) a pattern
	// needs. Must be >= 1.
	MinSup int
	// StoreDiffsets enables the §4.2.2 optimisation: a node whose support
	// exceeds half of its parent's stores the difference of the two
	// tid-lists instead of its own full list. Disabled it reproduces the
	// "no Diffsets" configurations of Fig 4.
	StoreDiffsets bool
	// MaxLen caps pattern length (0 = unlimited). The paper's synthetic
	// generator embeds rules up to length 16; real mining runs unlimited.
	MaxLen int
	// MaxNodes aborts mining after this many closed patterns (0 =
	// unlimited); a defensive bound for adversarial datasets. The budget is
	// shared atomically across workers, so the bound trips under
	// concurrency exactly when it would trip sequentially.
	MaxNodes int
	// Workers is the number of goroutines mining first-level enumeration
	// subtrees concurrently (0 = GOMAXPROCS). The merge is deterministic:
	// the produced tree — node order, indices, Diffsets — is byte-identical
	// for every worker count.
	Workers int
}

// errStopped aborts a worker's DFS when another worker has already failed
// (budget exhausted) or the context was cancelled.
var errStopped = fmt.Errorf("mining: stopped")

// MineClosed enumerates every closed frequent pattern of enc and returns
// the set-enumeration tree. The algorithm is LCM-style prefix-preserving
// closure extension: items are visited in ascending-support order, each
// candidate extension's tid-list is intersected with the parent's, the
// closure of the resulting record set is computed, and a branch is pruned
// when its closure contains an item ordered before the extension item that
// is not already in the parent closure (such a pattern was or will be
// produced in another branch).
func MineClosed(enc *dataset.Encoded, opts Options) (*Tree, error) {
	return MineClosedContext(context.Background(), enc, opts)
}

// MineClosedContext is MineClosed with cancellation. The first-level
// closure extensions of the root are independent subtrees; they are mined
// concurrently by opts.Workers goroutines and merged back in enumeration
// order, so the result is identical to the sequential run.
func MineClosedContext(ctx context.Context, enc *dataset.Encoded, opts Options) (*Tree, error) {
	if opts.MinSup < 1 {
		return nil, fmt.Errorf("mining: MinSup must be >= 1, got %d", opts.MinSup)
	}
	n := enc.NumRecords
	numItems := enc.Enc.NumItems()

	// Frequent items in ascending support order. Working in "order index"
	// space makes the prefix-preservation check a simple integer compare.
	type orderedItem struct {
		item dataset.Item
		sup  int
	}
	freq := make([]orderedItem, 0, numItems)
	for i := 0; i < numItems; i++ {
		if s := len(enc.Tids[i]); s >= opts.MinSup {
			freq = append(freq, orderedItem{dataset.Item(i), s})
		}
	}
	sort.Slice(freq, func(a, b int) bool {
		if freq[a].sup != freq[b].sup {
			return freq[a].sup < freq[b].sup
		}
		return freq[a].item < freq[b].item
	})

	m := &miner{
		enc:  enc,
		opts: opts,
		freq: make([]dataset.Item, len(freq)),
		reps: make([]*intset.Rep, len(freq)),
	}
	for oi, f := range freq {
		m.freq[oi] = f.item
		m.reps[oi] = intset.NewRep(n, enc.Tids[f.item])
	}

	// Root: the closure of the empty pattern is every item present in all
	// records.
	rootTids := make([]uint32, n)
	for r := 0; r < n; r++ {
		rootTids[r] = uint32(r)
	}
	rootInSet := make([]bool, len(m.freq))
	rootClosure := make([]int, 0)
	for oi := range m.freq {
		if m.reps[oi].Len() == n {
			rootClosure = append(rootClosure, oi)
			rootInSet[oi] = true
		}
	}
	root := &Node{
		Closure:     m.itemsOf(rootClosure),
		Support:     n,
		Tids:        rootTids,
		ClassCounts: CountClasses(rootTids, enc.Labels, enc.NumClasses),
		Index:       0,
		Depth:       0,
	}
	tree := &Tree{Enc: enc, Root: root, Nodes: []*Node{root}, MinSup: opts.MinSup}
	m.nodeCount.Store(1) // the root occupies one budget slot

	// Every first-level candidate spawns an independent subtree task.
	tasks := make([]int, 0, len(m.freq))
	for cand := range m.freq {
		if !rootInSet[cand] {
			tasks = append(tasks, cand)
		}
	}
	if len(tasks) == 0 {
		return tree, nil
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	// A watcher translates context cancellation into the cheap stop flag
	// the DFS polls.
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		//armine:orderok -- cancellation watcher; either arm only raises the sticky stop flag
		select {
		case <-ctx.Done():
			m.stop.Store(true)
		case <-watchDone:
		}
	}()

	results := make([][]*Node, len(tasks))
	var next atomic.Int64
	var firstErr atomic.Pointer[error]
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := &workerState{m: m, inSet: make([]bool, len(m.freq))}
			copy(ws.inSet, rootInSet)
			for {
				ti := int(next.Add(1)) - 1
				if ti >= len(tasks) || m.stop.Load() {
					return
				}
				ws.nodes = ws.nodes[:0]
				err := ws.mineRootChild(root, rootTids, rootClosure, tasks[ti])
				if err != nil {
					if err != errStopped {
						firstErr.CompareAndSwap(nil, &err)
						m.stop.Store(true)
					}
					return
				}
				sub := make([]*Node, len(ws.nodes))
				copy(sub, ws.nodes)
				results[ti] = sub
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ep := firstErr.Load(); ep != nil {
		return nil, *ep
	}

	// Deterministic merge: subtrees concatenate in first-level enumeration
	// order (each already in DFS pre-order), then indices are assigned —
	// reproducing the sequential append order exactly.
	for _, sub := range results {
		tree.Nodes = append(tree.Nodes, sub...)
	}
	for i, nd := range tree.Nodes {
		nd.Index = i
	}
	return tree, nil
}

// miner holds the shared, read-only mining state plus the two cross-worker
// atomics (node budget, stop flag).
type miner struct {
	enc  *dataset.Encoded
	opts Options

	freq []dataset.Item // order index -> original item id
	reps []*intset.Rep  // order index -> adaptive tid-set (dense items carry bitsets; Ids is the tid-list)

	nodeCount atomic.Int64 // nodes created across all workers (incl. root)
	stop      atomic.Bool  // set on budget exhaustion or cancellation
}

// itemsOf converts order indices to sorted original item ids.
func (m *miner) itemsOf(orderIdx []int) []dataset.Item {
	out := make([]dataset.Item, len(orderIdx))
	for i, oi := range orderIdx {
		out[i] = m.freq[oi]
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// chargeNode claims one slot of the shared node budget, failing when
// MaxNodes is exceeded. Because the budget counts every node any worker
// creates, the bound trips if and only if the sequential enumeration would
// exceed it.
func (m *miner) chargeNode() error {
	if m.opts.MaxNodes > 0 && m.nodeCount.Add(1) > int64(m.opts.MaxNodes) {
		m.stop.Store(true)
		return fmt.Errorf("mining: node budget %d exhausted (lower MinSup or raise MaxNodes)", m.opts.MaxNodes)
	}
	return nil
}

// workerState carries one worker's mutable DFS state. inSet mirrors the
// sequential miner's invariant: inSet[oi] is true exactly for oi in the
// closure currently on the DFS stack.
type workerState struct {
	m     *miner
	inSet []bool
	nodes []*Node // this task's subtree in DFS pre-order
}

// mineRootChild runs the body of the root-level enumeration loop for a
// single first-level candidate: extend the root closure with cand, apply
// the prefix-preservation check, and if the pattern survives, emit its
// node and expand the subtree below it.
func (ws *workerState) mineRootChild(root *Node, rootTids []uint32, rootClosure []int, cand int) error {
	m := ws.m
	if m.opts.MaxLen > 0 && len(rootClosure) >= m.opts.MaxLen {
		return nil
	}
	child, newTids, newClosure, err := ws.extend(root, rootTids, rootClosure, cand)
	if err != nil || child == nil {
		return err
	}
	for _, oi := range newClosure[len(rootClosure):] {
		ws.inSet[oi] = true
	}
	err = ws.expand(child, newTids, newClosure, cand)
	for _, oi := range newClosure[len(rootClosure):] {
		ws.inSet[oi] = false
	}
	return err
}

// extend tries to grow node's closure with candidate cand. It returns the
// new child node (nil when the extension is infrequent, too long, or
// pruned by prefix preservation) along with the child's tid-list and
// closure. The child is appended to ws.nodes but its inSet bits are NOT
// set; the caller owns the set/unset pairing around recursion.
func (ws *workerState) extend(node *Node, tids []uint32, closure []int, cand int) (*Node, []uint32, []int, error) {
	m := ws.m
	newTids := m.reps[cand].Intersect(tids)
	if len(newTids) < m.opts.MinSup {
		return nil, nil, nil, nil
	}
	// Closure of the extended record set: every item (not already in
	// the closure) whose tid-list covers newTids. Prefix-preservation:
	// if any such item is ordered before cand, this closed pattern
	// belongs to (and was generated by) an earlier branch.
	newClosure := make([]int, 0, len(closure)+4)
	newClosure = append(newClosure, closure...)
	newClosure = append(newClosure, cand)
	for oi := 0; oi < len(m.freq); oi++ {
		if oi == cand || ws.inSet[oi] {
			continue
		}
		// A superset needs at least as many records.
		if m.reps[oi].Len() < len(newTids) {
			continue
		}
		if m.reps[oi].ContainsAll(newTids) {
			if oi < cand {
				return nil, nil, nil, nil
			}
			newClosure = append(newClosure, oi)
		}
	}
	if m.opts.MaxLen > 0 && len(newClosure) > m.opts.MaxLen {
		return nil, nil, nil, nil
	}

	child := &Node{
		Closure:     m.itemsOf(newClosure),
		Support:     len(newTids),
		Parent:      node,
		ClassCounts: CountClasses(newTids, m.enc.Labels, m.enc.NumClasses),
		Depth:       node.Depth + 1,
	}
	if m.opts.StoreDiffsets && 2*len(newTids) > len(tids) {
		child.Diff = intset.Diff(tids, newTids)
	} else {
		child.Tids = newTids
	}
	ws.nodes = append(ws.nodes, child)
	if err := m.chargeNode(); err != nil {
		return nil, nil, nil, err
	}
	return child, newTids, newClosure, nil
}

// expand grows the set-enumeration tree below node, whose closure (as
// order indices) is closure and whose tid-list is tids. core is the order
// index of the extension item that produced node.
//
// Invariant: ws.inSet[oi] is true exactly for oi ∈ closure.
func (ws *workerState) expand(node *Node, tids []uint32, closure []int, core int) error {
	m := ws.m
	if m.opts.MaxLen > 0 && len(closure) >= m.opts.MaxLen {
		return nil
	}
	for cand := core + 1; cand < len(m.freq); cand++ {
		if ws.inSet[cand] {
			continue
		}
		if m.stop.Load() {
			return errStopped
		}
		child, newTids, newClosure, err := ws.extend(node, tids, closure, cand)
		if err != nil {
			return err
		}
		if child == nil {
			continue
		}
		for _, oi := range newClosure[len(closure):] {
			ws.inSet[oi] = true
		}
		err = ws.expand(child, newTids, newClosure, cand)
		for _, oi := range newClosure[len(closure):] {
			ws.inSet[oi] = false
		}
		if err != nil {
			return err
		}
	}
	return nil
}
