package mining

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Rule is a class association rule X ⇒ c (§2.1) built from a closed
// pattern. Coverage is supp(X), Support is supp(R) = supp(X ∪ {c}),
// Confidence = Support/Coverage, and P is the two-tailed Fisher exact
// p-value of the rule on the original labels.
type Rule struct {
	Node       *Node
	Class      int32
	Support    int
	Coverage   int
	Confidence float64
	P          float64
}

// Length returns the number of items in the rule's LHS.
func (r *Rule) Length() int { return len(r.Node.Closure) }

// String renders the rule with the encoding of enc, e.g.
// "color=red ∧ size=L ⇒ class=yes (cvg=12 conf=0.83 p=1.2e-05)".
func (r *Rule) Format(enc *dataset.Encoding) string {
	var b strings.Builder
	for i, it := range r.Node.Closure {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		b.WriteString(enc.String(it))
	}
	fmt.Fprintf(&b, " ⇒ %s=%s (cvg=%d conf=%.3f p=%.3g)",
		enc.Schema.Class.Name, enc.Schema.Class.Values[r.Class],
		r.Coverage, r.Confidence, r.P)
	return b.String()
}

// RuleClassPolicy selects which rule(s) each closed pattern generates.
type RuleClassPolicy int

const (
	// PaperPolicy follows §3: with two classes, one rule per pattern
	// (testing X ⇒ c is equivalent to testing X ⇒ ¬c under the two-tailed
	// test; the enriched class is reported); with m > 2 classes, m rules
	// per pattern.
	PaperPolicy RuleClassPolicy = iota
	// AllClasses generates one rule per class for every pattern.
	AllClasses
	// FixedClass generates a single rule per pattern with the class given
	// in RuleOptions.Class (used e.g. for Table 4, whose RHS is fixed to
	// class=good).
	FixedClass
)

// TestKind selects the statistical test scoring each rule.
type TestKind int

const (
	// TestFisher is the paper's two-tailed Fisher exact test (§2.2).
	TestFisher TestKind = iota
	// TestMidP is the mid-p variant of the Fisher test (less
	// conservative; extension).
	TestMidP
	// TestChiSquare is the Pearson χ² test of Brin et al., the common
	// alternative the paper cites (§2.2/[5]).
	TestChiSquare
)

// String names the test.
func (k TestKind) String() string {
	switch k {
	case TestFisher:
		return "fisher"
	case TestMidP:
		return "mid-p"
	case TestChiSquare:
		return "chi2"
	default:
		return fmt.Sprintf("TestKind(%d)", int(k))
	}
}

// RuleOptions configures rule generation.
type RuleOptions struct {
	Policy RuleClassPolicy
	// Class is the RHS class index when Policy == FixedClass.
	Class int32
	// MinConf drops rules below this confidence. The paper sets it to 0
	// in all experiments (domain significance is orthogonal to the
	// statistical question studied); it is exposed for the library API.
	MinConf float64
	// Test selects the significance test (default TestFisher). Buffer
	// pools only apply to TestFisher.
	Test TestKind
	// Pools, if non-nil, maps each class to a p-value buffer pool; when
	// nil, p-values are computed directly (the Fig-4 "no optimization"
	// path).
	Pools []*stats.BufferPool
	// Hypergeoms maps each class to its evaluator (required when Pools is
	// nil). Exactly one of Pools/Hypergeoms may be nil.
	Hypergeoms []*stats.Hypergeom
}

// NewHypergeoms builds one hypergeometric evaluator per class, sharing a
// single log-factorial table.
func NewHypergeoms(enc *dataset.Encoded) []*stats.Hypergeom {
	lf := stats.NewLogFact(enc.NumRecords)
	hs := make([]*stats.Hypergeom, enc.NumClasses)
	for c := range hs {
		hs[c] = stats.NewHypergeom(enc.NumRecords, enc.ClassCounts[c], lf)
	}
	return hs
}

// GenerateRules produces the tested rule set of a mined tree under the
// given policy. The root is skipped when its closure is empty (the empty
// pattern is not a rule LHS). Rules appear in tree (DFS) order; for
// multi-class policies the per-pattern rules appear in class order.
func GenerateRules(tree *Tree, opts RuleOptions) ([]Rule, error) {
	enc := tree.Enc
	if opts.Pools == nil && opts.Hypergeoms == nil {
		opts.Hypergeoms = NewHypergeoms(enc)
	}
	pval := func(class int32, cvg, k int) float64 {
		switch opts.Test {
		case TestMidP:
			h := hyperOf(opts, class)
			return h.FisherMidP(k, cvg)
		case TestChiSquare:
			h := hyperOf(opts, class)
			return stats.ChiSquarePValue(stats.ChiSquare2x2(k, cvg, h.N(), h.NC()), 1)
		default:
			if opts.Pools != nil {
				return opts.Pools[class].PValue(cvg, k)
			}
			return opts.Hypergeoms[class].FisherTwoTailed(k, cvg)
		}
	}

	var rules []Rule
	emit := func(node *Node, class int32) {
		k := int(node.ClassCounts[class])
		conf := float64(k) / float64(node.Support)
		if conf < opts.MinConf {
			return
		}
		rules = append(rules, Rule{
			Node:       node,
			Class:      class,
			Support:    k,
			Coverage:   node.Support,
			Confidence: conf,
			P:          pval(class, node.Support, k),
		})
	}

	for _, node := range tree.Nodes {
		if len(node.Closure) == 0 {
			continue
		}
		switch opts.Policy {
		case PaperPolicy:
			if enc.NumClasses == 2 {
				emit(node, enrichedClass(node, enc))
			} else {
				for c := int32(0); int(c) < enc.NumClasses; c++ {
					emit(node, c)
				}
			}
		case AllClasses:
			for c := int32(0); int(c) < enc.NumClasses; c++ {
				emit(node, c)
			}
		case FixedClass:
			if int(opts.Class) >= enc.NumClasses {
				return nil, fmt.Errorf("mining: FixedClass %d out of range [0,%d)", opts.Class, enc.NumClasses)
			}
			emit(node, opts.Class)
		default:
			return nil, fmt.Errorf("mining: unknown rule class policy %d", opts.Policy)
		}
	}
	return rules, nil
}

// hyperOf returns the class's hypergeometric evaluator whether the caller
// supplied pools or evaluators.
func hyperOf(opts RuleOptions, class int32) *stats.Hypergeom {
	if opts.Hypergeoms != nil {
		return opts.Hypergeoms[class]
	}
	return opts.Pools[class].H
}

// enrichedClass returns, for a two-class dataset, the class whose observed
// count within the pattern exceeds its expectation under independence
// (ties break toward class 0). The two-tailed p-value is identical for
// either choice; this only affects the reported confidence.
func enrichedClass(node *Node, enc *dataset.Encoded) int32 {
	// observed0/sup >= n0/n  <=>  observed0*n >= n0*sup (integer-exact).
	if int(node.ClassCounts[0])*enc.NumRecords >= enc.ClassCounts[0]*node.Support {
		return 0
	}
	return 1
}

// SortRulesByP orders rules by ascending p-value (ties broken by higher
// coverage then tree order) — the presentation order used throughout the
// experiments.
func SortRulesByP(rules []Rule) {
	sort.SliceStable(rules, func(i, j int) bool {
		if rules[i].P != rules[j].P {
			return rules[i].P < rules[j].P
		}
		if rules[i].Coverage != rules[j].Coverage {
			return rules[i].Coverage > rules[j].Coverage
		}
		return rules[i].Node.Index < rules[j].Node.Index
	})
}
