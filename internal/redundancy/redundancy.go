// Package redundancy implements the reduction the paper proposes as
// future work in §7: closed frequent patterns still carry near-duplicates
// — a pattern X and a super-pattern X' whose supports are almost equal
// test essentially the same hypothesis, so testing both both wastes
// multiple-testing budget and splits the discovery between two rules.
//
// The reducer keeps one representative per near-duplicate chain: walking
// the set-enumeration tree top-down, a node is folded into its nearest
// kept ancestor when it retains at least a (1-epsilon) fraction of that
// ancestor's records. Folding is transitive along tree paths, mirroring
// how Diffsets already exploit parent/child tid-list similarity.
//
// Reducing the tested set shrinks N_t, which directly raises the power of
// Bonferroni/BH (cut-offs scale with 1/N_t) and of the permutation
// approach (fewer chances for a noise rule to produce the per-permutation
// minimum) — the effect the paper anticipates.
package redundancy

import (
	"fmt"

	"repro/internal/mining"
)

// Reduction maps the full rule set to its representative subset.
type Reduction struct {
	// Keep[i] reports whether rule i survived the reduction.
	Keep []bool
	// Representative[i] is the index of the rule that represents rule i
	// (itself, when kept).
	Representative []int
	// KeptRules lists the surviving rules in original order.
	KeptRules []mining.Rule
	// KeptIndex[k] is the original index of KeptRules[k].
	KeptIndex []int
}

// NumKept returns the size of the representative set.
func (r *Reduction) NumKept() int { return len(r.KeptRules) }

// Reduce selects representative rules. epsilon is the relative support
// tolerance: a node whose support is >= (1-epsilon)·(nearest kept
// ancestor's support) is folded into that ancestor. epsilon = 0 keeps
// everything (exact closedness already removed exact duplicates).
//
// Rules must have been generated from tree with one rule per pattern (the
// two-class PaperPolicy); multi-rule-per-pattern sets fold per pattern.
func Reduce(tree *mining.Tree, rules []mining.Rule, epsilon float64) (*Reduction, error) {
	if epsilon < 0 || epsilon >= 1 {
		return nil, fmt.Errorf("redundancy: epsilon %g outside [0,1)", epsilon)
	}
	// keeperOf[nodeIndex] = the tree node that represents it (following
	// kept ancestors only).
	keeperOf := make([]int, len(tree.Nodes))
	for _, node := range tree.Nodes {
		keeperOf[node.Index] = node.Index
		if node.Parent == nil {
			continue
		}
		anchor := keeperOf[node.Parent.Index]
		anchorSup := tree.Nodes[anchor].Support
		if float64(node.Support) >= (1-epsilon)*float64(anchorSup) {
			keeperOf[node.Index] = anchor
		}
	}

	// Rules of folded nodes map to the kept rule of the representative
	// node with the same class (or the first rule of that node).
	rulesByNode := make(map[int][]int)
	for i := range rules {
		idx := rules[i].Node.Index
		rulesByNode[idx] = append(rulesByNode[idx], i)
	}
	repRule := func(nodeIdx int, class int32) int {
		cands := rulesByNode[nodeIdx]
		for _, ri := range cands {
			if rules[ri].Class == class {
				return ri
			}
		}
		if len(cands) > 0 {
			return cands[0]
		}
		return -1
	}

	red := &Reduction{
		Keep:           make([]bool, len(rules)),
		Representative: make([]int, len(rules)),
	}
	for i := range rules {
		nodeIdx := rules[i].Node.Index
		keeper := keeperOf[nodeIdx]
		if keeper == nodeIdx {
			red.Keep[i] = true
			red.Representative[i] = i
			continue
		}
		rep := repRule(keeper, rules[i].Class)
		if rep < 0 {
			// The representative node generated no rule (e.g. filtered by
			// MinConf); keep the original rather than lose the test.
			red.Keep[i] = true
			red.Representative[i] = i
			continue
		}
		red.Representative[i] = rep
	}
	for i := range rules {
		if red.Keep[i] {
			red.KeptIndex = append(red.KeptIndex, i)
			red.KeptRules = append(red.KeptRules, rules[i])
		}
	}
	return red, nil
}

// ExpandSignificant translates significant indices over KeptRules back to
// original rule indices.
func (r *Reduction) ExpandSignificant(significantKept []int) []int {
	out := make([]int, 0, len(significantKept))
	for _, k := range significantKept {
		out = append(out, r.KeptIndex[k])
	}
	return out
}
