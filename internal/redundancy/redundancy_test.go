package redundancy

import (
	"testing"

	"repro/internal/correction"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/synth"
)

func mineCase(t *testing.T, seed uint64, n, attrs, minSup int) (*mining.Tree, []mining.Rule) {
	t.Helper()
	p := synth.PaperDefaults()
	p.N = n
	p.Attrs = attrs
	p.NumRules = 1
	p.MinLen, p.MaxLen = 3, 3
	p.MinCvg, p.MaxCvg = n/5, n/5
	p.MinConf, p.MaxConf = 0.85, 0.85
	p.Seed = seed
	res, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	enc := dataset.Encode(res.Data)
	tree, err := mining.MineClosed(enc, mining.Options{MinSup: minSup, StoreDiffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
	if err != nil {
		t.Fatal(err)
	}
	return tree, rules
}

func TestReduceEpsilonZeroKeepsAll(t *testing.T) {
	tree, rules := mineCase(t, 1, 600, 10, 40)
	red, err := Reduce(tree, rules, 0)
	if err != nil {
		t.Fatal(err)
	}
	if red.NumKept() != len(rules) {
		t.Fatalf("epsilon=0 kept %d of %d", red.NumKept(), len(rules))
	}
	for i := range rules {
		if !red.Keep[i] || red.Representative[i] != i {
			t.Fatal("epsilon=0 must keep every rule as its own representative")
		}
	}
}

func TestReduceShrinksMonotonically(t *testing.T) {
	tree, rules := mineCase(t, 2, 800, 12, 40)
	prev := len(rules) + 1
	for _, eps := range []float64{0, 0.02, 0.05, 0.1, 0.25} {
		red, err := Reduce(tree, rules, eps)
		if err != nil {
			t.Fatal(err)
		}
		if red.NumKept() > prev {
			t.Fatalf("kept %d at eps=%g, more than %d at smaller eps", red.NumKept(), eps, prev)
		}
		prev = red.NumKept()
	}
	// A meaningful epsilon should actually remove something on this data.
	red, _ := Reduce(tree, rules, 0.1)
	if red.NumKept() == len(rules) {
		t.Log("note: eps=0.1 removed nothing on this dataset")
	}
}

func TestReduceRepresentativeProperties(t *testing.T) {
	tree, rules := mineCase(t, 3, 700, 10, 35)
	red, err := Reduce(tree, rules, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rules {
		rep := red.Representative[i]
		if !red.Keep[rep] {
			t.Fatalf("rule %d's representative %d was itself folded", i, rep)
		}
		if red.Keep[i] && rep != i {
			t.Fatalf("kept rule %d has foreign representative %d", i, rep)
		}
		if !red.Keep[i] {
			// The representative's pattern is an ancestor: a sub-pattern
			// with support within the tolerance.
			ri, rr := &rules[i], &rules[rep]
			if rr.Coverage < ri.Coverage {
				t.Fatalf("representative has smaller coverage (%d < %d)", rr.Coverage, ri.Coverage)
			}
			if float64(ri.Coverage) < 0.9*float64(rr.Coverage)-1e-9 {
				t.Fatalf("folded rule support %d below tolerance of representative %d",
					ri.Coverage, rr.Coverage)
			}
		}
	}
	// KeptIndex/KeptRules consistency.
	if len(red.KeptIndex) != len(red.KeptRules) {
		t.Fatal("kept slices inconsistent")
	}
	for k, idx := range red.KeptIndex {
		if red.KeptRules[k].Node != rules[idx].Node {
			t.Fatal("KeptRules misaligned with KeptIndex")
		}
	}
}

func TestReduceImprovesBonferroniCutoff(t *testing.T) {
	tree, rules := mineCase(t, 4, 1000, 14, 50)
	red, err := Reduce(tree, rules, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if red.NumKept() == len(rules) {
		t.Skip("no redundancy on this dataset")
	}
	psAll := make([]float64, len(rules))
	for i := range rules {
		psAll[i] = rules[i].P
	}
	psKept := make([]float64, red.NumKept())
	for k, r := range red.KeptRules {
		psKept[k] = r.P
	}
	full := correction.Bonferroni(psAll, len(psAll), 0.05)
	reduced := correction.Bonferroni(psKept, len(psKept), 0.05)
	if reduced.Cutoff <= full.Cutoff {
		t.Errorf("reduced cutoff %g not looser than full %g", reduced.Cutoff, full.Cutoff)
	}
	// Round-trip of significant indices.
	back := red.ExpandSignificant(reduced.Significant)
	if len(back) != len(reduced.Significant) {
		t.Fatal("ExpandSignificant changed cardinality")
	}
	for _, idx := range back {
		if idx < 0 || idx >= len(rules) {
			t.Fatalf("expanded index %d out of range", idx)
		}
	}
}

func TestReduceValidation(t *testing.T) {
	tree, rules := mineCase(t, 5, 300, 6, 30)
	for _, eps := range []float64{-0.1, 1, 1.5} {
		if _, err := Reduce(tree, rules, eps); err == nil {
			t.Errorf("epsilon %g accepted", eps)
		}
	}
}
