// Package core wires the substrates into the paper's end-to-end pipeline:
// dataset → closed class-association-rule mining → Fisher p-values → one
// of the multiple-testing correction approaches → the statistically
// significant rule set. It is the implementation behind the repo's public
// facade (the root package). DESIGN.md §2 describes the stages, §4 the
// Session layer that caches them.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/correction"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/permute"
	"repro/internal/shard"
)

// Control selects the error measure being controlled (§2.3).
type Control int

const (
	// ControlFWER controls the family-wise error rate: the probability of
	// reporting at least one false positive.
	ControlFWER Control = iota
	// ControlFDR controls the false discovery rate: the expected fraction
	// of false positives among reported rules.
	ControlFDR
)

// String returns "FWER" or "FDR".
func (c Control) String() string {
	if c == ControlFDR {
		return "FDR"
	}
	return "FWER"
}

// Method selects the correction approach (§4).
type Method int

const (
	// MethodNone applies no correction: every rule with p <= Alpha is
	// reported (the paper's baseline, and a demonstration of why
	// correction is needed).
	MethodNone Method = iota
	// MethodDirect is the direct adjustment approach: Bonferroni under
	// ControlFWER, Benjamini–Hochberg under ControlFDR.
	MethodDirect
	// MethodPermutation is the permutation-based approach of §4.2.
	MethodPermutation
	// MethodHoldout is Webb's holdout evaluation (§4.3): the dataset is
	// split, rules are mined on the exploratory half and validated on the
	// evaluation half.
	MethodHoldout
	// MethodLayered is Webb's layered critical values [19] (an extension
	// the paper discusses in related work): the FWER budget is split
	// evenly across rule lengths and Bonferroni-divided within each
	// length. FWER control only.
	MethodLayered
)

// String returns the method's name.
func (m Method) String() string {
	switch m {
	case MethodNone:
		return "none"
	case MethodDirect:
		return "direct"
	case MethodPermutation:
		return "permutation"
	case MethodHoldout:
		return "holdout"
	case MethodLayered:
		return "layered"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseControl maps a case-insensitive control name ("fwer" or "fdr") to
// its Control. Surrounding whitespace is ignored.
func ParseControl(s string) (Control, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "fwer":
		return ControlFWER, nil
	case "fdr":
		return ControlFDR, nil
	default:
		return 0, fmt.Errorf("core: unknown control %q (want fwer or fdr)", s)
	}
}

// ParseMethod maps a case-insensitive method name to its Method.
// Surrounding whitespace is ignored; the empty string is rejected (callers
// choose their own default).
func ParseMethod(s string) (Method, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none":
		return MethodNone, nil
	case "direct":
		return MethodDirect, nil
	case "permutation":
		return MethodPermutation, nil
	case "holdout":
		return MethodHoldout, nil
	case "layered":
		return MethodLayered, nil
	default:
		return 0, fmt.Errorf("core: unknown method %q (want none|direct|permutation|holdout|layered)", s)
	}
}

// ParseTest maps a case-insensitive significance-test name to its
// TestKind. The empty string selects the paper's default (Fisher).
func ParseTest(s string) (mining.TestKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "fisher":
		return mining.TestFisher, nil
	case "midp", "mid-p":
		return mining.TestMidP, nil
	case "chisq", "chi2", "chisquare", "chi-square":
		return mining.TestChiSquare, nil
	default:
		return 0, fmt.Errorf("core: unknown test %q (want fisher|midp|chisq)", s)
	}
}

// Config configures a mining-plus-correction run.
type Config struct {
	// MinSup is the absolute minimum coverage of a rule LHS. If 0,
	// MinSupFrac·NumRecords is used instead.
	MinSup int
	// MinSupFrac is the relative minimum support (used when MinSup == 0).
	MinSupFrac float64
	// MinConf drops rules below this confidence before testing. The
	// paper's experiments use 0 (statistical and domain significance are
	// orthogonal filters; see §2.3).
	MinConf float64
	// Alpha is the error level (default 0.05).
	Alpha float64
	// Control selects FWER or FDR.
	Control Control
	// Method selects the correction approach.
	Method Method
	// Permutations is N for MethodPermutation (default 1000, the paper's
	// setting). Ignored when Adaptive mode is on — Adaptive.MaxPerms is
	// the budget then.
	Permutations int
	// Adaptive, when Adaptive.MaxPerms > 0, runs MethodPermutation with
	// sequential early stopping (DESIGN.md §7): permutations execute in
	// growing rounds and rules whose correction fate is decided retire
	// from further counting. Off by default. With Adaptive.Exceedances < 0
	// (retirement disabled) the results are byte-identical to a fixed run
	// of MaxPerms permutations; with retirement on, the significant set
	// matches the fixed run's up to the conservative stopping rule (see
	// the design doc for the exactness argument).
	Adaptive permute.Adaptive
	// Shards, when > 1, splits MethodPermutation's absolute
	// permutation-index range into that many disjoint contiguous shards
	// dispatched through the internal/shard coordinator (DESIGN.md §10).
	// The default in-process workers share one deferred-label engine;
	// ShardWorkers overrides them. Results are byte-identical to a
	// single-node run for every shard count — the (Seed, absolute index)
	// label contract makes the partition invisible to the statistics.
	Shards int
	// ShardWorkers, when non-empty, supplies the shard workers directly
	// (one shard per worker, e.g. HTTP peers wired up by the server) and
	// takes precedence over Shards. Like Workers, it never participates in
	// serialisation or cache keys beyond the shard count.
	ShardWorkers []shard.Worker
	// Seed drives permutation shuffles and holdout splits. Seeding is
	// fully explicit — nothing in the pipeline reads global or time-based
	// randomness — so equal (Seed, Config) pairs reproduce byte-identical
	// results for any Workers value. Permutation j derives its own RNG
	// from (Seed, j), which is what keeps the shuffles independent of the
	// worker count.
	Seed uint64
	// Opt is the permutation optimisation level (default OptStaticBuffer,
	// i.e. everything on). Orthogonally to the level, the engine counts
	// class supports with the blocked word-parallel kernel (striped label
	// bitmaps + popcount; DESIGN.md §8) — an exact acceleration active at
	// every level.
	Opt permute.OptLevel
	// DisableWordCounting and DisableBlockedCounting are ablation knobs
	// forwarded to the permutation engine (permute.Config): the first
	// falls back to element-by-element label counting, the second drops
	// the blocked kernel's stripe width to one permutation per pass.
	// Results are byte-identical either way — only the cost changes.
	// armine bench flips them to report the word and blocking speedups.
	DisableWordCounting    bool
	DisableBlockedCounting bool
	// OptSet marks Opt as explicitly set (lets callers request OptNone,
	// which is otherwise indistinguishable from "unset").
	OptSet bool
	// StaticBudget is the static p-value buffer budget in bytes under
	// OptStaticBuffer (default 16 MB).
	StaticBudget int
	// Workers caps the worker goroutines of every parallel stage — closed
	// pattern mining and permutation re-evaluation (default GOMAXPROCS).
	// Results are byte-identical for every value.
	Workers int
	// MaxLen caps mined pattern length (0 = unlimited).
	MaxLen int
	// MaxNodes caps the closed-pattern count (0 = unlimited); mining
	// fails loudly when exceeded.
	MaxNodes int
	// Policy selects rule generation (default mining.PaperPolicy).
	Policy mining.RuleClassPolicy
	// FixedClass is the RHS class under mining.FixedClass.
	FixedClass int32
	// HoldoutRandom uses a random split for MethodHoldout (the paper's
	// "random holdout"); false splits into first/second halves, which is
	// exact for synth.GeneratePaired data.
	HoldoutRandom bool
	// HoldoutMinSupDivisor divides MinSup for the exploratory half
	// (default 2, the paper's setting).
	HoldoutMinSupDivisor int
	// Test selects the significance test (default: the paper's two-tailed
	// Fisher exact test). TestChiSquare and TestMidP are extensions; the
	// holdout method currently supports Fisher only.
	Test mining.TestKind
	// RedundancyEpsilon, when > 0, folds near-duplicate patterns before
	// testing (the §7 future-work reduction): a pattern keeping at least
	// a (1-epsilon) fraction of its tree parent representative's records
	// is not tested separately. Reducing the tested count raises the
	// power of every correction method. 0 disables.
	RedundancyEpsilon float64
}

func (c Config) withDefaults(n int) (Config, error) {
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	if c.Alpha < 0 || c.Alpha > 1 {
		return c, fmt.Errorf("core: Alpha %g outside [0,1]", c.Alpha)
	}
	if c.MinSup == 0 {
		if c.MinSupFrac <= 0 || c.MinSupFrac > 1 {
			return c, fmt.Errorf("core: need MinSup or MinSupFrac in (0,1], got %d / %g", c.MinSup, c.MinSupFrac)
		}
		c.MinSup = int(c.MinSupFrac * float64(n))
		if c.MinSup < 1 {
			c.MinSup = 1
		}
	}
	if c.Permutations == 0 {
		c.Permutations = 1000
	}
	c.Adaptive = c.Adaptive.Normalized()
	if !c.OptSet {
		c.Opt = permute.OptStaticBuffer
	}
	if c.HoldoutMinSupDivisor == 0 {
		c.HoldoutMinSupDivisor = 2
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c, nil
}

// Rule is a reported significant rule in user-facing form.
type Rule struct {
	// Items renders the LHS as "attribute=value" strings.
	Items []string
	// Attrs/Vals are the LHS in index form (parallel slices).
	Attrs []int
	Vals  []int32
	// Class is the RHS label; ClassIndex its index.
	Class      string
	ClassIndex int32
	// Coverage, Support, Confidence and P are the rule's statistics on
	// the dataset it was validated on (the evaluation half for holdout,
	// the whole dataset otherwise).
	Coverage   int
	Support    int
	Confidence float64
	P          float64
}

// Result reports one pipeline run.
type Result struct {
	// Method/Control/Alpha echo the effective configuration.
	Method  Method
	Control Control
	Alpha   float64
	MinSup  int
	// NumRecords is the dataset size; NumPatterns the closed frequent
	// pattern count; NumTested the number of rules tested (for holdout:
	// on the exploratory half).
	NumRecords  int
	NumPatterns int
	NumTested   int
	// Cutoff is the effective p-value threshold (negative = none).
	Cutoff float64
	// Significant lists the reported rules, most significant first.
	Significant []Rule
	// Tested exposes the full tested rule set with p-values (nil for
	// holdout, whose tested rules live on the exploratory half).
	Tested []mining.Rule
	// Outcome is the raw correction decision over Tested (or over the
	// holdout candidates).
	Outcome *correction.Outcome
	// Holdout carries the two-phase detail when Method == MethodHoldout.
	Holdout *correction.HoldoutResult
	// Perm carries the adaptive permutation engine's telemetry; nil for
	// every non-adaptive run.
	Perm *PermStats
	// MineTime and CorrectTime split the wall-clock cost.
	MineTime    time.Duration
	CorrectTime time.Duration
}

// PermStats reports an adaptive permutation run (Config.Adaptive): how
// far the round schedule ran and how much counting the retirement rule
// avoided.
type PermStats struct {
	// Rounds is the number of rounds executed; PermsRun the permutations
	// actually evaluated (MaxPerms unless every rule retired first).
	Rounds   int
	PermsRun int
	// MaxPerms echoes the configured budget.
	MaxPerms int
	// RulesRetired counts rules retired before the budget was exhausted.
	RulesRetired int
	// PermsSaved is the number of (rule, permutation) evaluations avoided
	// relative to a fixed run of MaxPerms.
	PermsSaved int64
}

// Run executes the configured pipeline on d.
func Run(d *dataset.Dataset, cfg Config) (*Result, error) {
	return RunContext(context.Background(), d, cfg)
}

// RunContext executes the configured pipeline on d as an explicit staged
// run — encode → mine → score → correct — threading ctx and cfg.Workers
// into every parallel stage. Cancelling ctx aborts the run promptly with
// the context's error; results are byte-identical for every worker count.
//
// RunContext is a one-shot Session: callers with several configs over one
// dataset should build a Session (or use RunBatch) so the prepared stages
// amortise across runs.
func RunContext(ctx context.Context, d *dataset.Dataset, cfg Config) (*Result, error) {
	return NewSession(d).RunContext(ctx, cfg)
}

// runCorrection applies the configured multiple-testing correction to the
// scored rule set. It never mutates tree or rules, which may be shared
// across concurrent runs of one Session. The second result carries the
// adaptive engine's telemetry and is nil for every non-adaptive method.
func runCorrection(ctx context.Context, cfg Config, tree *mining.Tree, rules []mining.Rule) (*correction.Outcome, *PermStats, error) {
	ps := make([]float64, len(rules))
	for i := range rules {
		ps[i] = rules[i].P
	}
	switch cfg.Method {
	case MethodNone:
		return correction.None(ps, cfg.Alpha), nil, nil
	case MethodLayered:
		if cfg.Control != ControlFWER {
			return nil, nil, fmt.Errorf("core: layered critical values control FWER only")
		}
		lengths := make([]int, len(rules))
		for i := range rules {
			lengths[i] = rules[i].Length()
		}
		outcome, err := correction.LayeredCriticalValues(ps, lengths, 0, cfg.Alpha)
		return outcome, nil, err
	case MethodDirect:
		if cfg.Control == ControlFWER {
			return correction.Bonferroni(ps, len(ps), cfg.Alpha), nil, nil
		}
		return correction.BenjaminiHochberg(ps, len(ps), cfg.Alpha), nil, nil
	case MethodPermutation:
		src, err := cfg.permSource(ctx, tree, rules)
		if err != nil {
			return nil, nil, err
		}
		if cfg.Adaptive.Enabled() {
			return runAdaptiveCorrection(src, cfg, rules)
		}
		var outcome *correction.Outcome
		if cfg.Control == ControlFWER {
			outcome = correction.PermFWER(src, rules, cfg.Alpha)
		} else {
			outcome = correction.PermFDR(src, rules, cfg.Alpha)
		}
		if err := src.Err(); err != nil {
			return nil, nil, err
		}
		return outcome, nil, nil
	default:
		return nil, nil, fmt.Errorf("core: unknown method %d", cfg.Method)
	}
}

// permRunner is the engine-shaped surface the permutation correction paths
// consume, satisfied by both *permute.Engine and the sharded *shard.Bound
// — the byte-identity contract (DESIGN.md §10) is precisely that swapping
// one for the other never changes an output bit.
type permRunner interface {
	correction.NullSource
	RunAdaptive(permute.AdaptiveMode, float64) (*permute.AdaptiveResult, error)
	Err() error
}

// shardCount normalizes the requested fan-out: the explicit worker count
// when ShardWorkers is set, else Shards, with "no sharding" always 0.
func (c Config) shardCount() int {
	if n := len(c.ShardWorkers); n > 0 {
		return n
	}
	if c.Shards > 1 {
		return c.Shards
	}
	return 0
}

// permSource builds cfg's permutation null source over the scored rules: a
// single-node engine, or — when sharding is requested — a shard
// coordinator bound to ctx. The default in-process workers share one
// engine built with DeferLabels, so shard dispatch decides which label
// blocks ever materialise; explicit ShardWorkers (the server's HTTP peers)
// take precedence and each evaluate their spans remotely.
func (c Config) permSource(ctx context.Context, tree *mining.Tree, rules []mining.Rule) (permRunner, error) {
	workers := c.ShardWorkers
	if len(workers) == 0 && c.Shards > 1 {
		pcfg := c.permConfig(ctx)
		pcfg.DeferLabels = true
		e, err := permute.NewEngine(tree, rules, pcfg)
		if err != nil {
			return nil, err
		}
		workers = make([]shard.Worker, c.Shards)
		for i := range workers {
			workers[i] = shard.NewLocal(e)
		}
	}
	if len(workers) == 0 {
		return permute.NewEngine(tree, rules, c.permConfig(ctx))
	}
	ps := make([]float64, len(rules))
	for i := range rules {
		ps[i] = rules[i].P
	}
	coord, err := shard.NewCoordinator(workers, ps, c.Permutations, c.Adaptive)
	if err != nil {
		return nil, err
	}
	return shard.Bind(coord, ctx), nil
}

// permConfig derives the permutation engine configuration of a normalized
// Config.
func (c Config) permConfig(ctx context.Context) permute.Config {
	return permute.Config{
		NumPerms:               c.Permutations,
		Seed:                   c.Seed,
		Opt:                    c.Opt,
		StaticBudget:           c.StaticBudget,
		Workers:                c.Workers,
		Test:                   c.Test,
		DisableWordCounting:    c.DisableWordCounting,
		DisableBlockedCounting: c.DisableBlockedCounting,
		Adaptive:               c.Adaptive,
		Ctx:                    ctx,
	}
}

// adaptiveMode maps the configured control to the engine's retirement
// statistic.
func (c Config) adaptiveMode() permute.AdaptiveMode {
	if c.Control == ControlFDR {
		return permute.AdaptFDR
	}
	return permute.AdaptFWER
}

// runAdaptiveCorrection executes the adaptive permutation schedule on an
// already-built null source and derives the configured outcome.
func runAdaptiveCorrection(engine permRunner, cfg Config, rules []mining.Rule) (*correction.Outcome, *PermStats, error) {
	res, err := engine.RunAdaptive(cfg.adaptiveMode(), cfg.Alpha)
	if err != nil {
		return nil, nil, err
	}
	outcome, pstats := adaptiveOutcome(cfg, res, rules)
	return outcome, pstats, nil
}

// adaptiveOutcome derives one config's correction outcome and telemetry
// from an adaptive engine result — shared by single runs and batch
// groups so the two paths cannot diverge.
func adaptiveOutcome(cfg Config, res *permute.AdaptiveResult, rules []mining.Rule) (*correction.Outcome, *PermStats) {
	var outcome *correction.Outcome
	if cfg.Control == ControlFWER {
		outcome = correction.AdaptivePermFWER(res, rules, cfg.Alpha)
	} else {
		outcome = correction.AdaptivePermFDR(res, rules, cfg.Alpha)
	}
	return outcome, permStatsOf(cfg, res)
}

// permStatsOf converts the engine's adaptive result into the user-facing
// telemetry.
func permStatsOf(cfg Config, res *permute.AdaptiveResult) *PermStats {
	return &PermStats{
		Rounds:       res.Rounds,
		PermsRun:     res.PermsRun,
		MaxPerms:     cfg.Adaptive.MaxPerms,
		RulesRetired: res.RulesRetired,
		PermsSaved:   res.PermsSaved,
	}
}

// runHoldout executes the two-phase holdout pipeline.
func runHoldout(ctx context.Context, d *dataset.Dataset, cfg Config) (*Result, error) {
	start := time.Now()
	var explore, eval *dataset.Dataset
	if cfg.HoldoutRandom {
		explore, eval = d.RandomSplit(cfg.Seed)
	} else {
		explore, eval = d.SplitHalves()
	}
	minSupExplore := cfg.MinSup / cfg.HoldoutMinSupDivisor
	if minSupExplore < 1 {
		minSupExplore = 1
	}
	hres, err := correction.Holdout(explore, eval, correction.HoldoutConfig{
		MinSupExplore: minSupExplore,
		Alpha:         cfg.Alpha,
		UseFDR:        cfg.Control == ControlFDR,
		Policy:        cfg.Policy,
		Class:         cfg.FixedClass,
		MaxLen:        cfg.MaxLen,
		Workers:       cfg.Workers,
		Ctx:           ctx,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Method:      MethodHoldout,
		Control:     cfg.Control,
		Alpha:       cfg.Alpha,
		MinSup:      cfg.MinSup,
		NumRecords:  d.NumRecords(),
		NumTested:   hres.NumExploreTested,
		Cutoff:      hres.Outcome.Cutoff,
		Outcome:     hres.Outcome,
		Holdout:     hres,
		CorrectTime: time.Since(start),
	}
	for _, i := range hres.Outcome.Significant {
		c := &hres.Candidates[i]
		r := Rule{
			Attrs:      c.Attrs,
			Vals:       c.Vals,
			Class:      d.Schema.Class.Values[c.Class],
			ClassIndex: c.Class,
			Coverage:   c.EvalCvg,
			Support:    c.EvalSupp,
			Confidence: c.EvalConf,
			P:          c.EvalP,
		}
		for k, a := range c.Attrs {
			r.Items = append(r.Items, fmt.Sprintf("%s=%s",
				d.Schema.Attrs[a].Name, d.Schema.Attrs[a].Values[c.Vals[k]]))
		}
		res.Significant = append(res.Significant, r)
	}
	sortRules(res.Significant)
	return res, nil
}

// toRule converts a mined rule into user-facing form.
func toRule(r *mining.Rule, enc *dataset.Encoding) Rule {
	out := Rule{
		Class:      enc.Schema.Class.Values[r.Class],
		ClassIndex: r.Class,
		Coverage:   r.Coverage,
		Support:    r.Support,
		Confidence: r.Confidence,
		P:          r.P,
	}
	for _, it := range r.Node.Closure {
		a, v := enc.AttrValue(it)
		out.Attrs = append(out.Attrs, a)
		out.Vals = append(out.Vals, v)
		out.Items = append(out.Items, enc.String(it))
	}
	return out
}

// sortRules orders reported rules by ascending p, then descending
// coverage.
func sortRules(rules []Rule) {
	sort.SliceStable(rules, func(i, j int) bool {
		if rules[i].P != rules[j].P {
			return rules[i].P < rules[j].P
		}
		return rules[i].Coverage > rules[j].Coverage
	})
}
