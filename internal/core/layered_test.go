package core

import "testing"

func TestRunLayeredCriticalValues(t *testing.T) {
	res := signalDataset(t, 41)
	out, err := Run(res.Data, Config{MinSup: 100, Method: MethodLayered, Control: ControlFWER})
	if err != nil {
		t.Fatal(err)
	}
	if out.Outcome.Method != "LCV" {
		t.Errorf("method = %q, want LCV", out.Outcome.Method)
	}
	if len(out.Significant) == 0 {
		t.Error("layered critical values found nothing on a strong signal")
	}
	// Sanity vs plain Bonferroni: LCV reallocates the same total budget,
	// so both control FWER; the discovered sets need not nest but should
	// be within an order of magnitude on this clean workload.
	bc, err := Run(res.Data, Config{MinSup: 100, Method: MethodDirect, Control: ControlFWER})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Significant) > 20*len(bc.Significant)+20 {
		t.Errorf("LCV found %d vs BC %d — implausible", len(out.Significant), len(bc.Significant))
	}
}

func TestRunLayeredRejectsFDR(t *testing.T) {
	res := signalDataset(t, 42)
	if _, err := Run(res.Data, Config{MinSup: 100, Method: MethodLayered, Control: ControlFDR}); err == nil {
		t.Error("layered + FDR should be rejected")
	}
}
