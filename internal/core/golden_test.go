package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/big"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/colstore"
	"repro/internal/dataset"
	"repro/internal/permute"
)

// The statistical golden-test corpus: three tiny hand-checkable datasets
// under testdata/golden with exact expected Fisher p-values (verified
// against an exact-rational oracle) and the significant sets of every
// correction Method × Control, recorded once as golden JSON. The
// end-to-end test requires every Method × Control × OptLevel — including
// adaptive permutation mode with MaxPerms reached — to reproduce the
// recorded results byte for byte.
//
// Regenerate with: go test ./internal/core -run TestGolden -update

var updateGolden = flag.Bool("update", false, "rewrite the testdata/golden JSON files")

const goldenDir = "../../testdata/golden"

// goldenCase fixes one dataset's mining parameters.
type goldenCase struct {
	name   string
	minSup int
}

var goldenCases = []goldenCase{
	{"contrast", 6},
	{"skew", 5},
	{"tri", 5},
}

// Permutation settings shared by every golden permutation run.
const (
	goldenPerms    = 200
	goldenSeed     = 5
	goldenMinPerms = 50
)

// goldenRule records one tested rule with its production p-value (full
// round-trip precision, compared byte for byte) and the exact-oracle
// p-value it was validated against at -update time.
type goldenRule struct {
	Items    []string `json:"items"`
	Class    string   `json:"class"`
	Coverage int      `json:"coverage"`
	Support  int      `json:"support"`
	P        string   `json:"p"`
	OracleP  string   `json:"oracle_p"`
}

// goldenOutcome records one correction run's decision.
type goldenOutcome struct {
	Name    string `json:"name"`
	Method  string `json:"method"`
	Control string `json:"control"`
	// Adaptive marks sequential early-stopping permutation runs;
	// PermsRun/RulesRetired record their schedule.
	Adaptive     bool     `json:"adaptive,omitempty"`
	PermsRun     int      `json:"perms_run,omitempty"`
	RulesRetired int      `json:"rules_retired,omitempty"`
	Cutoff       string   `json:"cutoff"`
	Significant  []int    `json:"significant"`
	Rules        []string `json:"rules"`
}

// goldenFile is one dataset's recorded expectations.
type goldenFile struct {
	Dataset    string          `json:"dataset"`
	MinSup     int             `json:"min_sup"`
	NumRecords int             `json:"num_records"`
	NumTested  int             `json:"num_tested"`
	Rules      []goldenRule    `json:"rules"`
	Outcomes   []goldenOutcome `json:"outcomes"`
}

// fmtFloat renders a float with full round-trip precision, so golden
// comparisons are bit-exact.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }

// oracleFisher computes the two-tailed Fisher exact p-value of a 2×2
// table in exact rational arithmetic: the sum of all hypergeometric terms
// no more probable than the observed one, for n records of which nc carry
// the class, coverage sx and support k. It is an independent
// implementation — big.Int binomials, no logs, no floats — so agreement
// with the production path is meaningful.
func oracleFisher(n, nc, sx, k int) *big.Rat {
	choose := func(n, k int64) *big.Int { return new(big.Int).Binomial(n, k) }
	denom := new(big.Rat).SetInt(choose(int64(n), int64(sx)))
	pmf := func(j int) *big.Rat {
		num := new(big.Int).Mul(choose(int64(nc), int64(j)), choose(int64(n-nc), int64(sx-j)))
		return new(big.Rat).Quo(new(big.Rat).SetInt(num), denom)
	}
	lo := nc + sx - n
	if lo < 0 {
		lo = 0
	}
	hi := nc
	if sx < hi {
		hi = sx
	}
	obs := pmf(k)
	sum := new(big.Rat)
	for j := lo; j <= hi; j++ {
		if t := pmf(j); t.Cmp(obs) <= 0 {
			sum.Add(sum, t)
		}
	}
	return sum
}

// loadGoldenDataset reads one corpus CSV (categorical columns only, class
// last).
func loadGoldenDataset(t *testing.T, name string) *dataset.Dataset {
	t.Helper()
	tab, err := dataset.ReadTableFile(filepath.Join(goldenDir, name+".csv"))
	if err != nil {
		t.Fatal(err)
	}
	d, err := tab.ToDataset(len(tab.Header) - 1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// goldenConfigs returns the correction matrix. optSweep entries are run
// at every OptLevel and must agree across levels.
func goldenConfigs(minSup int) []struct {
	name     string
	cfg      Config
	optSweep bool
} {
	base := Config{MinSup: minSup, Seed: goldenSeed, Permutations: goldenPerms}
	mk := func(m Method, c Control) Config {
		cfg := base
		cfg.Method = m
		cfg.Control = c
		return cfg
	}
	adaptive := func(c Control) Config {
		cfg := mk(MethodPermutation, c)
		cfg.Adaptive = permute.Adaptive{MinPerms: goldenMinPerms, MaxPerms: goldenPerms}
		return cfg
	}
	holdout := mk(MethodHoldout, ControlFWER)
	holdout.HoldoutRandom = true
	return []struct {
		name     string
		cfg      Config
		optSweep bool
	}{
		{"none-fwer", mk(MethodNone, ControlFWER), false},
		{"direct-fwer", mk(MethodDirect, ControlFWER), false},
		{"direct-fdr", mk(MethodDirect, ControlFDR), false},
		{"layered-fwer", mk(MethodLayered, ControlFWER), false},
		{"perm-fwer", mk(MethodPermutation, ControlFWER), true},
		{"perm-fdr", mk(MethodPermutation, ControlFDR), true},
		{"adaptive-fwer", adaptive(ControlFWER), true},
		{"adaptive-fdr", adaptive(ControlFDR), true},
		{"holdout-fwer", holdout, false},
	}
}

// renderRule is the stable one-line form of a significant rule.
func renderRule(r Rule) string {
	return fmt.Sprintf("%s => %s (cvg=%d supp=%d p=%s)",
		strings.Join(r.Items, " ^ "), r.Class, r.Coverage, r.Support, fmtFloat(r.P))
}

// outcomeFromResult renders one correction run as its golden record.
func outcomeFromResult(name string, ref *Result) goldenOutcome {
	out := goldenOutcome{
		Name:    name,
		Method:  ref.Method.String(),
		Control: ref.Control.String(),
		Cutoff:  fmtFloat(ref.Cutoff),
		Rules:   []string{},
	}
	if ref.Perm != nil {
		out.Adaptive = true
		out.PermsRun = ref.Perm.PermsRun
		out.RulesRetired = ref.Perm.RulesRetired
	}
	if ref.Outcome != nil {
		out.Significant = append([]int{}, ref.Outcome.Significant...)
	}
	if out.Significant == nil {
		out.Significant = []int{}
	}
	for _, r := range ref.Significant {
		out.Rules = append(out.Rules, renderRule(r))
	}
	return out
}

// buildGolden runs the full matrix on one dataset and assembles its
// golden file, asserting the cross-OptLevel agreement along the way.
func buildGolden(t *testing.T, gc goldenCase) *goldenFile {
	t.Helper()
	d := loadGoldenDataset(t, gc.name)
	enc := dataset.Encode(d)
	sess := NewSession(d)

	gf := &goldenFile{Dataset: gc.name, MinSup: gc.minSup, NumRecords: d.NumRecords()}
	for _, entry := range goldenConfigs(gc.minSup) {
		var ref *Result
		levels := []permute.OptLevel{permute.OptStaticBuffer}
		if entry.optSweep {
			levels = []permute.OptLevel{permute.OptNone, permute.OptDynamicBuffer, permute.OptDiffsets, permute.OptStaticBuffer}
		}
		for _, opt := range levels {
			cfg := entry.cfg
			cfg.Opt = opt
			cfg.OptSet = true
			res, err := sess.Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s opt=%v: %v", gc.name, entry.name, opt, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			// Every optimisation level must reproduce the same decision.
			if res.Cutoff != ref.Cutoff || len(res.Significant) != len(ref.Significant) {
				t.Fatalf("%s/%s opt=%v: cutoff/significant (%g, %d) differ from first level (%g, %d)",
					gc.name, entry.name, opt, res.Cutoff, len(res.Significant), ref.Cutoff, len(ref.Significant))
			}
			for i := range res.Significant {
				if renderRule(res.Significant[i]) != renderRule(ref.Significant[i]) {
					t.Fatalf("%s/%s opt=%v: rule %d differs across levels", gc.name, entry.name, opt, i)
				}
			}
		}

		gf.Outcomes = append(gf.Outcomes, outcomeFromResult(entry.name, ref))

		// The tested rule set (shared by every non-holdout entry): record
		// it once, with each p-value validated against the exact oracle.
		if gf.Rules == nil && ref.Tested != nil {
			gf.NumTested = len(ref.Tested)
			for i := range ref.Tested {
				mr := &ref.Tested[i]
				gr := goldenRule{
					Class:    enc.Enc.Schema.Class.Values[mr.Class],
					Coverage: mr.Coverage,
					Support:  mr.Support,
					P:        fmtFloat(mr.P),
				}
				for _, it := range mr.Node.Closure {
					gr.Items = append(gr.Items, enc.Enc.String(it))
				}
				oracle := oracleFisher(enc.NumRecords, enc.ClassCounts[mr.Class], mr.Coverage, mr.Support)
				of, _ := oracle.Float64()
				gr.OracleP = oracle.FloatString(25)
				if diff := math.Abs(mr.P - of); diff > 1e-9*of+1e-300 {
					t.Errorf("%s rule %d (%s => %s): production p %.17g differs from exact oracle %.17g",
						gc.name, i, strings.Join(gr.Items, " ^ "), gr.Class, mr.P, of)
				}
				gf.Rules = append(gf.Rules, gr)
			}
		}
	}
	return gf
}

// TestGoldenCorpus runs every Method × Control × OptLevel on the three
// corpus datasets and requires byte-for-byte agreement with the committed
// golden JSON (p-values at full round-trip precision, significant sets,
// cutoffs) — including the adaptive permutation entries, whose schedule
// must have reached MaxPerms.
func TestGoldenCorpus(t *testing.T) {
	for _, gc := range goldenCases {
		t.Run(gc.name, func(t *testing.T) {
			gf := buildGolden(t, gc)

			// The ISSUE's "MaxPerms reached" requirement: the adaptive
			// schedule must not have stopped early on any corpus dataset.
			for _, out := range gf.Outcomes {
				if out.Adaptive && out.PermsRun != goldenPerms {
					t.Errorf("%s/%s: adaptive run stopped at %d of %d perms", gc.name, out.Name, out.PermsRun, goldenPerms)
				}
			}

			got, err := json.MarshalIndent(gf, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join(goldenDir, gc.name+".golden.json")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d rules, %d outcomes)", path, len(gf.Rules), len(gf.Outcomes))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create the golden file)", err)
			}
			if string(got) != string(want) {
				t.Errorf("%s: results diverge from the golden file;\n got: %s\nrun with -update after verifying the change is intentional", gc.name, got)
			}
		})
	}
}

// goldenShardedFile records the distributed e2e entry of the corpus: every
// permutation config of one dataset evaluated across coordinated shards.
type goldenShardedFile struct {
	Dataset  string          `json:"dataset"`
	Shards   int             `json:"shards"`
	Outcomes []goldenOutcome `json:"outcomes"`
}

// TestGoldenShardedCorpus is the distributed half of the golden contract:
// the permutation and adaptive configs of the corpus run across 3
// coordinated in-process shards must byte-reproduce both the committed
// sharded golden file and the corresponding single-node outcomes in the
// per-dataset golden JSON — sharding may move work, never answers.
// Regenerate with: go test ./internal/core -run TestGoldenSharded -update
func TestGoldenShardedCorpus(t *testing.T) {
	const shards = 3
	gc := goldenCases[0] // contrast
	d := loadGoldenDataset(t, gc.name)
	sess := NewSession(d)

	sf := &goldenShardedFile{Dataset: gc.name, Shards: shards}
	for _, entry := range goldenConfigs(gc.minSup) {
		if entry.cfg.Method != MethodPermutation {
			continue
		}
		cfg := entry.cfg
		cfg.Shards = shards
		cfg.Opt = permute.OptStaticBuffer
		cfg.OptSet = true
		res, err := sess.Run(cfg)
		if err != nil {
			t.Fatalf("%s/%s shards=%d: %v", gc.name, entry.name, shards, err)
		}
		sf.Outcomes = append(sf.Outcomes, outcomeFromResult(entry.name, res))
	}

	got, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join(goldenDir, "sharded.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d outcomes)", path, len(sf.Outcomes))
	} else {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to create the golden file)", err)
		}
		if string(got) != string(want) {
			t.Errorf("sharded results diverge from the golden file;\n got: %s\nrun with -update after verifying the change is intentional", got)
		}
	}

	// Cross-file identity: every sharded outcome must byte-equal the
	// single-node outcome of the same name in the dataset's golden file.
	raw, err := os.ReadFile(filepath.Join(goldenDir, gc.name+".golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var gf goldenFile
	if err := json.Unmarshal(raw, &gf); err != nil {
		t.Fatal(err)
	}
	single := make(map[string]string, len(gf.Outcomes))
	for _, out := range gf.Outcomes {
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		single[out.Name] = string(b)
	}
	for _, out := range sf.Outcomes {
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := single[out.Name]
		if !ok {
			t.Fatalf("no single-node golden outcome named %q", out.Name)
		}
		if string(b) != want {
			t.Errorf("%s: sharded outcome diverged from single-node golden:\n got: %s\nwant: %s", out.Name, b, want)
		}
	}
}

// goldenSegmentedFile records the out-of-core e2e entry of the corpus:
// the permutation configs of one dataset mined from a segment store
// across coordinated shards.
type goldenSegmentedFile struct {
	Dataset    string          `json:"dataset"`
	Shards     int             `json:"shards"`
	SegRecords int             `json:"seg_records"`
	Segments   int             `json:"segments"`
	Outcomes   []goldenOutcome `json:"outcomes"`
}

// TestGoldenSegmentedCorpus is the out-of-core third of the golden
// contract: the permutation and adaptive configs of the corpus dataset,
// mined from a segment store split into 7-record segments and fanned
// across 3 shards, must byte-reproduce both the committed segmented
// golden file and the sharded golden outcomes — storage layout may move
// bytes, never answers.
// Regenerate with: go test ./internal/core -run TestGoldenSegmented -update
func TestGoldenSegmentedCorpus(t *testing.T) {
	const shards, segRecords = 3, 7
	gc := goldenCases[0] // contrast, matching the sharded golden entry
	f, err := os.Open(filepath.Join(goldenDir, gc.name+".csv"))
	if err != nil {
		t.Fatal(err)
	}
	store, err := colstore.Create(filepath.Join(t.TempDir(), gc.name), f, colstore.Options{SegRecords: segRecords})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSessionSource(store)

	sf := &goldenSegmentedFile{Dataset: gc.name, Shards: shards, SegRecords: segRecords, Segments: store.NumSegments()}
	if sf.Segments < 2 {
		t.Fatalf("corpus too small to segment: %d segment(s)", sf.Segments)
	}
	for _, entry := range goldenConfigs(gc.minSup) {
		if entry.cfg.Method != MethodPermutation {
			continue
		}
		cfg := entry.cfg
		cfg.Shards = shards
		cfg.Opt = permute.OptStaticBuffer
		cfg.OptSet = true
		res, err := sess.Run(cfg)
		if err != nil {
			t.Fatalf("%s/%s shards=%d: %v", gc.name, entry.name, shards, err)
		}
		sf.Outcomes = append(sf.Outcomes, outcomeFromResult(entry.name, res))
	}

	got, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join(goldenDir, "segmented.golden.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d outcomes)", path, len(sf.Outcomes))
	} else {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (run with -update to create the golden file)", err)
		}
		if string(got) != string(want) {
			t.Errorf("segmented results diverge from the golden file;\n got: %s\nrun with -update after verifying the change is intentional", got)
		}
	}

	// Cross-file identity: every segmented outcome must byte-equal the
	// sharded outcome of the same name — the store is a storage detail.
	raw, err := os.ReadFile(filepath.Join(goldenDir, "sharded.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var sharded goldenShardedFile
	if err := json.Unmarshal(raw, &sharded); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]string, len(sharded.Outcomes))
	for _, out := range sharded.Outcomes {
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		byName[out.Name] = string(b)
	}
	for _, out := range sf.Outcomes {
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := byName[out.Name]
		if !ok {
			t.Fatalf("no sharded golden outcome named %q", out.Name)
		}
		if string(b) != want {
			t.Errorf("%s: segmented outcome diverged from sharded golden:\n got: %s\nwant: %s", out.Name, b, want)
		}
	}
}

// TestGoldenOracleIndependence spot-checks the oracle itself on a case
// small enough to verify by hand: 24 records, 12 per class, coverage 12,
// support 11. The hypergeometric terms for k=11 and k=12 are
// 144/2704156 and 1/2704156; by symmetry k=0 and k=1 mirror them, so the
// two-tailed p-value is exactly 290/2704156 = 145/1352078.
func TestGoldenOracleIndependence(t *testing.T) {
	got := oracleFisher(24, 12, 12, 11)
	want := big.NewRat(145, 1352078)
	if got.Cmp(want) != 0 {
		t.Fatalf("oracleFisher(24,12,12,11) = %s, want %s", got.RatString(), want.RatString())
	}
}
