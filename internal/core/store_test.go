package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/colstore"
	"repro/internal/dataset"
	"repro/internal/permute"
)

// storeFixture materialises a synthetic signal dataset as CSV text, an
// in-memory dataset read from it, and a segment store ingested from it
// (small segments, so every store test crosses many segment boundaries).
func storeFixture(t *testing.T, seed uint64, segRecords int) (csvText string, mem *dataset.Dataset, store *colstore.Store) {
	t.Helper()
	res := signalDataset(t, seed)
	var buf bytes.Buffer
	if err := res.Data.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csvText = buf.String()
	mem, err := dataset.ReadDataset(strings.NewReader(csvText), -1)
	if err != nil {
		t.Fatal(err)
	}
	store, err = colstore.Create(filepath.Join(t.TempDir(), "store"), strings.NewReader(csvText),
		colstore.Options{SegRecords: segRecords})
	if err != nil {
		t.Fatal(err)
	}
	return csvText, mem, store
}

// TestStoreSessionMatchesInMemory is the tentpole byte-identity
// property: a session prepared from a segment store must produce
// bit-for-bit the results of a session over the equivalent in-memory
// dataset, at every optimisation level × worker count × shard fan-out.
func TestStoreSessionMatchesInMemory(t *testing.T) {
	_, mem, store := storeFixture(t, 31, 173)
	memSess := NewSession(mem)
	storeSess := NewSessionSource(store)

	// Non-permutation methods once each.
	for _, method := range []Method{MethodNone, MethodDirect, MethodLayered} {
		cfg := Config{MinSup: 100, Method: method, Control: ControlFWER, Permutations: 40, Seed: 7}
		want, err := memSess.Run(cfg)
		if err != nil {
			t.Fatalf("%v: in-memory: %v", method, err)
		}
		got, err := storeSess.Run(cfg)
		if err != nil {
			t.Fatalf("%v: store-backed: %v", method, err)
		}
		assertSameResult(t, fmt.Sprintf("method=%v", method), got, want)
	}

	// The permutation matrix.
	opts := []permute.OptLevel{permute.OptNone, permute.OptDynamicBuffer, permute.OptDiffsets, permute.OptStaticBuffer}
	for oi, opt := range opts {
		for _, workers := range []int{1, 3} {
			for _, shards := range []int{0, 3} {
				control := ControlFWER
				if (oi+workers+shards)%2 == 1 {
					control = ControlFDR
				}
				cfg := Config{
					MinSup:       100,
					Method:       MethodPermutation,
					Control:      control,
					Permutations: 60,
					Seed:         11,
					Opt:          opt,
					Workers:      workers,
					Shards:       shards,
				}
				label := fmt.Sprintf("opt=%v workers=%d shards=%d", opt.Name(), workers, shards)
				want, err := memSess.Run(cfg)
				if err != nil {
					t.Fatalf("%s: in-memory: %v", label, err)
				}
				got, err := storeSess.Run(cfg)
				if err != nil {
					t.Fatalf("%s: store-backed: %v", label, err)
				}
				assertSameResult(t, label, got, want)
			}
		}
	}

	// The whole sweep snapshots the store exactly once.
	if st := storeSess.Stats(); st.Encodes != 1 {
		t.Errorf("store session encodes = %d, want 1", st.Encodes)
	}

	// Holdout needs raw records, which a store-backed session does not
	// hold; it must refuse, not misbehave.
	if _, err := storeSess.Run(Config{MinSup: 100, Method: MethodHoldout}); err == nil {
		t.Error("store-backed holdout run did not fail")
	}
	if _, err := storeSess.RunBatch(t.Context(), []Config{{MinSup: 100, Method: MethodHoldout}}); err == nil {
		t.Error("store-backed holdout batch did not fail")
	}
}

// TestStoreSessionAppendInvalidates is the append half of the property:
// after appending a CSV delta, a re-mine of the store-backed session
// must equal a fresh in-memory mine of the concatenated CSV — the
// version bump flows through treeKey into every stage-cache key, so no
// stale stage can leak into the new results.
func TestStoreSessionAppendInvalidates(t *testing.T) {
	csvText, _, store := storeFixture(t, 32, 173)
	storeSess := NewSessionSource(store)

	cfg := Config{MinSup: 100, Method: MethodPermutation, Control: ControlFWER,
		Permutations: 60, Seed: 11, Opt: permute.OptStaticBuffer}
	before, err := storeSess.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Build a delta with the same header (and some new attribute values)
	// from a second synthetic dataset, then append it.
	res2 := signalDataset(t, 33)
	var buf bytes.Buffer
	if err := res2.Data.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	parts := strings.SplitAfterN(buf.String(), "\n", 2)
	header, deltaRows := parts[0], parts[1]
	if !strings.HasPrefix(csvText, header) {
		t.Fatalf("fixture drift: headers differ (%q)", header)
	}
	added, err := store.Append(strings.NewReader(header+deltaRows), colstore.Options{SegRecords: 173})
	if err != nil {
		t.Fatal(err)
	}
	if added != res2.Data.NumRecords() {
		t.Fatalf("append added %d records, want %d", added, res2.Data.NumRecords())
	}

	grown, err := dataset.ReadDataset(strings.NewReader(csvText+deltaRows), -1)
	if err != nil {
		t.Fatal(err)
	}
	if grown.NumRecords() != store.NumRecords() {
		t.Fatalf("store has %d records, concatenated CSV has %d", store.NumRecords(), grown.NumRecords())
	}
	freshSess := NewSession(grown)

	for _, shards := range []int{0, 3} {
		c := cfg
		c.Shards = shards
		want, err := freshSess.Run(c)
		if err != nil {
			t.Fatalf("shards=%d: fresh in-memory: %v", shards, err)
		}
		got, err := storeSess.Run(c)
		if err != nil {
			t.Fatalf("shards=%d: store-backed after append: %v", shards, err)
		}
		assertSameResult(t, fmt.Sprintf("after append, shards=%d", shards), got, want)
		if got.NumRecords != grown.NumRecords() {
			t.Fatalf("result still sized for the old dataset: %d records", got.NumRecords)
		}
	}

	// The grown result really is new work, not a cache hit keyed under
	// the old version.
	if before.NumRecords == store.NumRecords() {
		t.Fatal("fixture drift: append added no records")
	}
	st := storeSess.Stats()
	if st.Encodes != 2 {
		t.Errorf("encodes = %d, want 2 (one per store version)", st.Encodes)
	}
	if st.Mines != 2 {
		t.Errorf("mines = %d, want 2 (one per store version)", st.Mines)
	}
}
