package core

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/mining"
)

// assertSameResult fails unless got is byte-identical to want everywhere
// except the wall-clock durations (which can never reproduce).
func assertSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Method != want.Method || got.Control != want.Control ||
		got.Alpha != want.Alpha || got.MinSup != want.MinSup {
		t.Fatalf("%s: config echo differs: got %v/%v/%g/%d want %v/%v/%g/%d", label,
			got.Method, got.Control, got.Alpha, got.MinSup,
			want.Method, want.Control, want.Alpha, want.MinSup)
	}
	if got.NumRecords != want.NumRecords || got.NumPatterns != want.NumPatterns ||
		got.NumTested != want.NumTested {
		t.Fatalf("%s: counts differ: got %d/%d/%d want %d/%d/%d", label,
			got.NumRecords, got.NumPatterns, got.NumTested,
			want.NumRecords, want.NumPatterns, want.NumTested)
	}
	if got.Cutoff != want.Cutoff {
		t.Fatalf("%s: cutoff %g != %g", label, got.Cutoff, want.Cutoff)
	}
	if !reflect.DeepEqual(got.Significant, want.Significant) {
		t.Fatalf("%s: significant rule sets differ (%d vs %d rules)", label,
			len(got.Significant), len(want.Significant))
	}
	if !reflect.DeepEqual(got.Outcome, want.Outcome) {
		t.Fatalf("%s: outcomes differ", label)
	}
	if len(got.Tested) != len(want.Tested) {
		t.Fatalf("%s: tested %d != %d", label, len(got.Tested), len(want.Tested))
	}
	for i := range got.Tested {
		g, w := &got.Tested[i], &want.Tested[i]
		if g.P != w.P || g.Class != w.Class || g.Support != w.Support ||
			g.Coverage != w.Coverage || g.Confidence != w.Confidence ||
			!reflect.DeepEqual(g.Node.Closure, w.Node.Closure) {
			t.Fatalf("%s: tested rule %d differs", label, i)
		}
	}
	if (got.Holdout == nil) != (want.Holdout == nil) {
		t.Fatalf("%s: holdout detail presence differs", label)
	}
	if got.Holdout != nil && !reflect.DeepEqual(got.Holdout, want.Holdout) {
		t.Fatalf("%s: holdout details differ", label)
	}
}

// sessionPropertyConfigs enumerates every Method × Control combination
// (layered is FWER-only) at small permutation counts.
func sessionPropertyConfigs() []Config {
	var cfgs []Config
	for _, method := range []Method{MethodNone, MethodDirect, MethodPermutation, MethodHoldout, MethodLayered} {
		for _, control := range []Control{ControlFWER, ControlFDR} {
			if method == MethodLayered && control != ControlFWER {
				continue
			}
			cfg := Config{
				MinSup:       100,
				Method:       method,
				Control:      control,
				Permutations: 60,
				Seed:         11,
			}
			cfgs = append(cfgs, cfg)
			if method == MethodHoldout {
				random := cfg
				random.HoldoutRandom = true
				random.Seed = 13
				cfgs = append(cfgs, random)
			}
		}
	}
	return cfgs
}

// TestSessionMatchesFreshRun is the Session correctness property: for
// every Method × Control (including both holdout splits and layered), a
// Session run — warm or cold — is byte-identical to a fresh core.Run of
// the same (Seed, Config).
func TestSessionMatchesFreshRun(t *testing.T) {
	res := signalDataset(t, 21)
	sess := NewSession(res.Data)
	for _, cfg := range sessionPropertyConfigs() {
		label := fmt.Sprintf("%v/%v/random=%v", cfg.Method, cfg.Control, cfg.HoldoutRandom)
		fresh, err := Run(res.Data, cfg)
		if err != nil {
			t.Fatalf("%s: fresh run: %v", label, err)
		}
		cached, err := sess.Run(cfg)
		if err != nil {
			t.Fatalf("%s: session run: %v", label, err)
		}
		assertSameResult(t, label, cached, fresh)
	}
	// All non-holdout configs above share mining parameters: the whole
	// sweep must have cost exactly one encode + one mine + one score.
	st := sess.Stats()
	if st.Encodes != 1 || st.Mines != 1 || st.Scores != 1 {
		t.Errorf("stage counters after sweep: encodes=%d mines=%d scores=%d, want 1/1/1",
			st.Encodes, st.Mines, st.Scores)
	}
}

// TestSessionBatchSingleMine is the acceptance property: RunBatch over N
// configs sharing mining parameters performs exactly one encode/mine/score
// (stage counters), and every per-config result is byte-identical to a
// fresh run.
func TestSessionBatchSingleMine(t *testing.T) {
	res := signalDataset(t, 22)
	cfgs := []Config{
		{MinSup: 100, Method: MethodNone},
		{MinSup: 100, Method: MethodDirect, Control: ControlFWER},
		{MinSup: 100, Method: MethodDirect, Control: ControlFDR, Alpha: 0.01},
		{MinSup: 100, Method: MethodLayered, Control: ControlFWER},
		{MinSup: 100, Method: MethodPermutation, Control: ControlFWER, Permutations: 50, Seed: 3},
		// Shares an engine with the FWER config above (same seed/perms).
		{MinSup: 100, Method: MethodPermutation, Control: ControlFDR, Permutations: 50, Seed: 3},
		{MinSup: 100, Method: MethodPermutation, Control: ControlFDR, Permutations: 80, Seed: 4},
	}
	sess := NewSession(res.Data)
	outs, err := sess.RunBatch(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(cfgs) {
		t.Fatalf("got %d results for %d configs", len(outs), len(cfgs))
	}
	st := sess.Stats()
	if st.Encodes != 1 || st.Mines != 1 || st.Scores != 1 {
		t.Errorf("batch stage counters: encodes=%d mines=%d scores=%d, want 1/1/1",
			st.Encodes, st.Mines, st.Scores)
	}
	if st.Corrections != int64(len(cfgs)) {
		t.Errorf("corrections=%d, want %d", st.Corrections, len(cfgs))
	}
	for i, cfg := range cfgs {
		fresh, err := Run(res.Data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, fmt.Sprintf("config %d", i), outs[i], fresh)
	}
}

// TestSessionDistinctKeysRemine verifies the caches key on the
// mining-relevant config subset: changing MinSup or MaxLen mines a new
// tree, changing only the scoring knobs (policy, test) rescores the same
// tree, and changing only the correction does neither.
func TestSessionDistinctKeysRemine(t *testing.T) {
	res := signalDataset(t, 23)
	sess := NewSession(res.Data)
	run := func(cfg Config) {
		t.Helper()
		if _, err := sess.Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	run(Config{MinSup: 100, Method: MethodDirect})                            // mine 1, score 1
	run(Config{MinSup: 100, Method: MethodNone})                              // cache hit
	run(Config{MinSup: 120, Method: MethodDirect})                            // mine 2, score 2
	run(Config{MinSup: 100, MaxLen: 2, Method: MethodDirect})                 // mine 3, score 3
	run(Config{MinSup: 100, Method: MethodDirect, Policy: mining.AllClasses}) // score 4 on tree 1
	run(Config{MinSup: 100, Method: MethodDirect, Test: mining.TestChiSquare})
	st := sess.Stats()
	if st.Mines != 3 {
		t.Errorf("mines=%d, want 3", st.Mines)
	}
	if st.Scores != 5 {
		t.Errorf("scores=%d, want 5", st.Scores)
	}
	if st.Encodes != 1 {
		t.Errorf("encodes=%d, want 1", st.Encodes)
	}
	if st.TreeHits == 0 || st.ScoreHits == 0 {
		t.Errorf("expected cache hits, got treeHits=%d scoreHits=%d", st.TreeHits, st.ScoreHits)
	}
}

// TestSessionCacheNoLeak runs A, then a config with different scoring
// state, then A again: the second A must match the first (and a fresh run)
// exactly — a cache hit must not leak state between configs.
func TestSessionCacheNoLeak(t *testing.T) {
	res := signalDataset(t, 24)
	cfgA := Config{MinSup: 100, Method: MethodPermutation, Control: ControlFWER, Permutations: 60, Seed: 5}
	cfgB := Config{MinSup: 100, Method: MethodDirect, Control: ControlFDR, Policy: mining.AllClasses, Test: mining.TestMidP}

	sess := NewSession(res.Data)
	first, err := sess.Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(cfgB); err != nil {
		t.Fatal(err)
	}
	second, err := sess.Run(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "repeat A", second, first)
	fresh, err := Run(res.Data, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "fresh A", second, fresh)
}

// TestSessionConcurrent issues the same config from many goroutines: the
// singleflight must mine once, and every caller gets the same answer.
func TestSessionConcurrent(t *testing.T) {
	res := signalDataset(t, 25)
	cfg := Config{MinSup: 100, Method: MethodDirect, Control: ControlFWER}
	sess := NewSession(res.Data)

	const goroutines = 8
	outs := make([]*Result, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			outs[g], errs[g] = sess.Run(cfg)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		assertSameResult(t, fmt.Sprintf("goroutine %d", g), outs[g], outs[0])
	}
	st := sess.Stats()
	if st.Mines != 1 || st.Scores != 1 || st.Encodes != 1 {
		t.Errorf("concurrent stage counters: encodes=%d mines=%d scores=%d, want 1/1/1",
			st.Encodes, st.Mines, st.Scores)
	}
}

// TestSessionCacheEviction sweeps more MinSup values than the caches can
// hold: eviction must fire (observable in Stats), the retained entry count
// must stay at the cap, and an evicted stage must recompute bit-for-bit on
// re-request.
func TestSessionCacheEviction(t *testing.T) {
	res := signalDataset(t, 27)
	sess := NewSessionLimits(res.Data, CacheLimits{MaxTrees: 2, MaxRules: 2})
	sweep := []int{100, 110, 120, 130}
	first := make([]*Result, len(sweep))
	for i, ms := range sweep {
		out, err := sess.Run(Config{MinSup: ms, Method: MethodDirect})
		if err != nil {
			t.Fatal(err)
		}
		first[i] = out
	}
	st := sess.Stats()
	if st.Mines != int64(len(sweep)) {
		t.Fatalf("mines=%d, want %d", st.Mines, len(sweep))
	}
	if st.TreeEvictions != 2 || st.RuleEvictions != 2 {
		t.Errorf("evictions: trees=%d rules=%d, want 2/2", st.TreeEvictions, st.RuleEvictions)
	}
	if st.CachedTrees != 2 || st.CachedRules != 2 {
		t.Errorf("cached entries: trees=%d rules=%d, want 2/2", st.CachedTrees, st.CachedRules)
	}
	// MinSup=100 was evicted; re-running it mines again and reproduces the
	// original result exactly.
	again, err := sess.Run(Config{MinSup: sweep[0], Method: MethodDirect})
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "recompute after eviction", again, first[0])
	if st2 := sess.Stats(); st2.Mines != int64(len(sweep))+1 {
		t.Errorf("mines after re-request=%d, want %d", st2.Mines, len(sweep)+1)
	}
}

// TestSessionBatchExceedsCacheCaps pins RunBatch's once-per-key guarantee
// against the bounded caches: a batch with more distinct stage keys than
// the caches retain still mines each key exactly once (stages are held
// for the batch, not re-fetched through the evictable cache), and every
// result matches a fresh run.
func TestSessionBatchExceedsCacheCaps(t *testing.T) {
	res := signalDataset(t, 30)
	sess := NewSessionLimits(res.Data, CacheLimits{MaxTrees: 2, MaxRules: 2})
	sweep := []int{100, 105, 110, 115, 120}
	var cfgs []Config
	for _, ms := range sweep {
		cfgs = append(cfgs,
			Config{MinSup: ms, Method: MethodDirect},
			Config{MinSup: ms, Method: MethodDirect, Control: ControlFDR})
	}
	outs, err := sess.RunBatch(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.Mines != int64(len(sweep)) {
		t.Errorf("mines=%d, want %d (one per distinct key despite cap 2)", st.Mines, len(sweep))
	}
	if st.TreeEvictions == 0 {
		t.Error("expected evictions while filling past the cap")
	}
	for i, cfg := range cfgs {
		fresh, err := Run(res.Data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, fmt.Sprintf("config %d", i), outs[i], fresh)
	}
}

// TestStageCacheLRUOrder verifies recency, not insertion order, decides
// the victim: touching the older entry saves it.
func TestStageCacheLRUOrder(t *testing.T) {
	c := newStageCache[string, int](2)
	computes := 0
	get := func(key string) {
		t.Helper()
		v, _, err := c.getOrCompute(key, func() (int, error) {
			computes++
			return len(key), nil
		})
		if err != nil || v != len(key) {
			t.Fatalf("get(%q) = %d, %v", key, v, err)
		}
	}
	get("a")  // computes: a
	get("bb") // computes: a, bb
	get("a")  // hit, touches a: bb is now the LRU victim
	get("ccc")
	if c.idx.Evictions() != 1 {
		t.Fatalf("evictions=%d, want 1", c.idx.Evictions())
	}
	get("a") // must still be cached
	if computes != 3 {
		t.Errorf("computes=%d, want 3 (touched entry must survive eviction)", computes)
	}
	get("bb") // the victim: recomputes
	if computes != 4 {
		t.Errorf("computes after re-requesting victim=%d, want 4", computes)
	}
	if c.len() != 2 {
		t.Errorf("retained=%d, want 2", c.len())
	}
}

// TestStageCacheErrorNotRetained verifies a failed compute occupies no
// cache slot: errors are returned but never cached or counted as entries.
func TestStageCacheErrorNotRetained(t *testing.T) {
	c := newStageCache[string, int](2)
	wantErr := fmt.Errorf("boom")
	if _, _, err := c.getOrCompute("k", func() (int, error) { return 0, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if c.len() != 0 {
		t.Fatalf("failed compute retained: len=%d", c.len())
	}
	v, hit, err := c.getOrCompute("k", func() (int, error) { return 7, nil })
	if err != nil || hit || v != 7 {
		t.Fatalf("retry after error: v=%d hit=%v err=%v", v, hit, err)
	}
}

// TestSessionDefaultCacheLimits pins the defaults: NewSession must be
// bounded (a long-lived serving process must not leak stages), with the
// documented capacities.
func TestSessionDefaultCacheLimits(t *testing.T) {
	res := signalDataset(t, 29)
	sess := NewSession(res.Data)
	if sess.trees.idx.Cap() != DefaultTreeCacheCap {
		t.Errorf("default tree cache cap = %d, want %d", sess.trees.idx.Cap(), DefaultTreeCacheCap)
	}
	if sess.rules.idx.Cap() != DefaultRuleCacheCap {
		t.Errorf("default rule cache cap = %d, want %d", sess.rules.idx.Cap(), DefaultRuleCacheCap)
	}
	if unbounded := NewSessionLimits(res.Data, CacheLimits{MaxTrees: -1, MaxRules: -1}); unbounded.trees.idx.Cap() > 0 || unbounded.rules.idx.Cap() > 0 {
		t.Error("negative limits should mean unbounded")
	}
}

// TestSessionBatchErrors verifies atomic failure with the offending config
// index in the error.
func TestSessionBatchErrors(t *testing.T) {
	res := signalDataset(t, 26)
	sess := NewSession(res.Data)
	_, err := sess.RunBatch(context.Background(), []Config{
		{MinSup: 100, Method: MethodDirect},
		{MinSup: 100, Alpha: 2, Method: MethodDirect},
	})
	if err == nil {
		t.Fatal("invalid batch config accepted")
	}
	// Layered under FDR fails at correction time; the batch must report it.
	_, err = sess.RunBatch(context.Background(), []Config{
		{MinSup: 100, Method: MethodLayered, Control: ControlFDR},
	})
	if err == nil {
		t.Fatal("layered FDR accepted")
	}
	// Cancelled context aborts the batch...
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.RunBatch(ctx, []Config{{MinSup: 90, Method: MethodDirect}}); err == nil {
		t.Fatal("cancelled batch succeeded")
	}
	// ...without poisoning the cache for later live runs.
	if _, err := sess.Run(Config{MinSup: 90, Method: MethodDirect}); err != nil {
		t.Fatalf("run after cancelled batch: %v", err)
	}
}
