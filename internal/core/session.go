package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/correction"
	"repro/internal/dataset"
	"repro/internal/lru"
	"repro/internal/mining"
	"repro/internal/permute"
	"repro/internal/redundancy"
	"repro/internal/shard"
)

// treeKey is the subset of Config that determines the mined tree: two
// configs with equal treeKeys share one closed-pattern enumeration.
// Workers is deliberately absent — the miner's output is byte-identical
// for every worker count — as are the correction knobs (Method, Control,
// Alpha, Seed, Permutations, ...), which only consume the tree.
//
// version is the dataset version the tree was mined against (always 1
// for in-memory sessions). Appending to a segment store bumps its
// version, so every stage keyed under the old version — and, since
// ruleKey and permKey embed treeKey, every rule and permutation stage
// above it — is invalidated at once: the next run keys under the new
// version and recomputes from a fresh snapshot.
type treeKey struct {
	version       uint64
	minSup        int
	maxLen        int
	maxNodes      int
	storeDiffsets bool
}

// ruleKey extends treeKey with the scoring-relevant fields: configs with
// equal ruleKeys share one scored (rule generation + significance +
// redundancy reduction) stage.
type ruleKey struct {
	tree       treeKey
	policy     mining.RuleClassPolicy
	fixedClass int32
	minConf    float64
	test       mining.TestKind
	redundancy float64
}

// permKey identifies a permutation-null construction: batch configs with
// equal permKeys (differing only in Control/Alpha) share one engine. The
// significance test is keyed via ruleKey; Workers is absent because
// engine output is byte-identical for every worker count.
//
// Adaptive runs are keyed more finely: the retirement rule consumes the
// error level and the control (they decide which rules stop being
// counted), so alpha and control join the key — and perms leaves it,
// because Adaptive.MaxPerms replaces Permutations as the budget.
type permKey struct {
	rule     ruleKey
	perms    int
	seed     uint64
	opt      permute.OptLevel
	budget   int
	adaptive permute.Adaptive
	alpha    float64 // zero unless adaptive
	control  Control // ControlFWER unless adaptive
	// The counting ablation knobs never change results, but they select
	// different engine internals (striped vs element label matrices), so
	// configs that flip them must not share an engine — a shared engine
	// would silently ignore one config's requested counting path.
	noWords, noBlocks bool
	// shards is the normalized shard count (0 = single-node). Sharding
	// never changes results either, but a sharded group runs through the
	// coordinator rather than a plain engine, so the requested fan-out
	// must not be silently dropped by group sharing.
	shards int
}

// permKey derives the engine-sharing key of a normalized permutation
// config.
func (c Config) permKey() permKey {
	k := permKey{
		rule:     c.ruleKey(),
		perms:    c.Permutations,
		seed:     c.Seed,
		opt:      c.Opt,
		budget:   c.StaticBudget,
		noWords:  c.DisableWordCounting,
		noBlocks: c.DisableBlockedCounting,
		shards:   c.shardCount(),
	}
	if c.Adaptive.Enabled() {
		k.perms = 0
		k.adaptive = c.Adaptive
		k.alpha = c.Alpha
		k.control = c.Control
	}
	return k
}

// storeDiffsets reports whether the mined tree needs Diffset storage under
// cfg — the same decision the one-shot pipeline makes: every non-
// permutation method stores them, and permutation runs follow the
// optimisation level (so the Fig-4 "no Diffsets" ablations stay exact).
func (c Config) storeDiffsets() bool {
	return c.Method != MethodPermutation || c.Opt.WantDiffsets()
}

// treeKey derives the mining cache key of a normalized config.
func (c Config) treeKey() treeKey {
	return treeKey{
		minSup:        c.MinSup,
		maxLen:        c.MaxLen,
		maxNodes:      c.MaxNodes,
		storeDiffsets: c.storeDiffsets(),
	}
}

// ruleKey derives the scoring cache key of a normalized config.
func (c Config) ruleKey() ruleKey {
	k := ruleKey{
		tree:       c.treeKey(),
		policy:     c.Policy,
		minConf:    c.MinConf,
		test:       c.Test,
		redundancy: c.RedundancyEpsilon,
	}
	if c.Policy == mining.FixedClass {
		k.fixedClass = c.FixedClass
	}
	return k
}

// treeStage is a cached mine stage: the tree, the encoded snapshot it
// was mined from (carried so downstream consumers — rule rendering,
// record counts — stay consistent with the tree even if the source has
// since moved to a newer version), and the wall-clock cost of producing
// it.
type treeStage struct {
	tree *mining.Tree
	enc  *dataset.Encoded
	dur  time.Duration
}

// ruleStage is a cached score stage: the tested rule set (shared by every
// run that hits it — treat as read-only) plus its producing tree stage and
// cost.
type ruleStage struct {
	tree  treeStage
	rules []mining.Rule
	dur   time.Duration
}

// entry is one singleflight cache slot: done is closed when the compute
// finished, after which exactly one of val/err is meaningful.
type entry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// ErrStageIncomplete is the error singleflight waiters observe when the
// goroutine computing their stage panicked: the slot is unpublished (so a
// retry recomputes) and the panic propagates on the computing caller. A
// caller receiving it hit an internal fault, not a bad configuration.
var ErrStageIncomplete = errors.New("core: stage computation did not complete")

// stageCache is a bounded, keyed singleflight cache: each key's value is
// computed at most once across concurrent callers, and the number of
// retained *completed* entries never exceeds the index capacity — the
// least recently used entry is evicted first. In-flight computations are
// never evicted (they are not retained state yet; waiters hold the slot
// pointer directly), so the singleflight guarantee is unaffected by the
// bound. A re-request of an evicted key simply recomputes — eviction
// changes cost, never output.
type stageCache[K comparable, V any] struct {
	mu  sync.Mutex
	m   map[K]*entry[V]
	idx *lru.Index[K] // completed keys only
}

func newStageCache[K comparable, V any](cap int) *stageCache[K, V] {
	return &stageCache[K, V]{m: make(map[K]*entry[V]), idx: lru.New[K](cap)}
}

// len reports the number of completed entries currently retained.
func (c *stageCache[K, V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx.Len()
}

// retain records key as the most recently used completed entry and evicts
// past the capacity. Callers hold c.mu.
func (c *stageCache[K, V]) retain(key K) {
	for _, victim := range c.idx.Insert(key) {
		delete(c.m, victim)
	}
}

// getOrCompute returns the cached value of key, computing it with fn at
// most once across concurrent callers. On error the slot is removed before
// callers are released, so a later call (with a live context) retries
// instead of observing a poisoned cache. The second result reports a cache
// hit.
func (c *stageCache[K, V]) getOrCompute(key K, fn func() (V, error)) (V, bool, error) {
	for {
		c.mu.Lock()
		e, ok := c.m[key]
		if !ok {
			e = &entry[V]{done: make(chan struct{})}
			c.m[key] = e
			c.mu.Unlock()
			// Unpublish the slot and release waiters on ANY failure,
			// including a panic in fn: the panic propagates to this
			// caller (as in a fresh run), while waiters observe an error
			// and retry rather than blocking on a never-closed channel.
			completed := false
			defer func() {
				if !completed {
					c.mu.Lock()
					delete(c.m, key)
					c.mu.Unlock()
					e.err = ErrStageIncomplete
					close(e.done)
				}
			}()
			v, err := fn()
			completed = true
			if err != nil {
				c.mu.Lock()
				delete(c.m, key)
				c.mu.Unlock()
				e.err = err
				close(e.done)
				var zero V
				return zero, false, err
			}
			e.val = v
			c.mu.Lock()
			c.retain(key)
			c.mu.Unlock()
			close(e.done)
			return v, false, nil
		}
		c.idx.Touch(key)
		c.mu.Unlock()
		<-e.done
		if e.err == nil {
			return e.val, true, nil
		}
		// The computing call failed (cancelled context, exhausted node
		// budget, ...) and unpublished its slot; retry with our own fn.
	}
}

// SessionStats counts the pipeline stages a Session has executed (not the
// cheap cache hits). A batch of N configs sharing mining parameters shows
// Encodes == Mines == Scores == 1 and Corrections == N.
type SessionStats struct {
	// Encodes / Mines / Scores count executed encode, mine and score
	// stages; TreeHits / ScoreHits count runs served from the caches
	// instead.
	Encodes   int64
	Mines     int64
	Scores    int64
	TreeHits  int64
	ScoreHits int64
	// Corrections counts correction stages (always one per non-holdout
	// run; corrections are never cached because Method/Control/Alpha/Seed
	// vary freely across runs).
	Corrections int64
	// AdaptiveRuns counts adaptive permutation engine executions, and
	// PermsSaved accumulates the (rule, permutation) evaluations their
	// retirement avoided relative to fixed runs of the same budgets.
	AdaptiveRuns int64
	PermsSaved   int64
	// Holdouts counts holdout runs, which bypass the shared stages (they
	// mine the exploratory half, not the whole dataset).
	Holdouts int64
	// TreeEvictions / RuleEvictions count cache entries dropped by the
	// size bound (see CacheLimits). A long-lived session sweeping many
	// distinct mining parameters shows these grow while the cached entry
	// count stays at the cap.
	TreeEvictions int64
	RuleEvictions int64
	// CachedTrees / CachedRules are the completed entries currently
	// retained (always <= the configured caps).
	CachedTrees int64
	CachedRules int64
}

// Default stage-cache capacities: generous enough that any realistic
// parameter sweep stays fully cached, small enough that a long-lived
// session (a serving daemon) cannot grow without bound.
const (
	DefaultTreeCacheCap = 64
	DefaultRuleCacheCap = 128
)

// CacheLimits bounds a Session's stage caches. Each cache evicts its least
// recently used completed entry once it holds more than the cap; an
// evicted stage is recomputed (bit-for-bit identically) if requested
// again. Zero fields pick the defaults (DefaultTreeCacheCap /
// DefaultRuleCacheCap); negative fields mean unbounded.
type CacheLimits struct {
	MaxTrees int
	MaxRules int
}

func (l CacheLimits) withDefaults() CacheLimits {
	if l.MaxTrees == 0 {
		l.MaxTrees = DefaultTreeCacheCap
	}
	if l.MaxRules == 0 {
		l.MaxRules = DefaultRuleCacheCap
	}
	return l
}

// Session is a prepared dataset for repeated mining: it owns the encoded
// vertical representation and small keyed caches of mined trees and scored
// rule sets, so that N configs differing only in correction method,
// control, alpha, seed or permutation count share one encode + one mine +
// one score (the paper's "mine once, re-evaluate many times" posture,
// §4.2.1, promoted to the whole pipeline).
//
// A Session is safe for concurrent use. Results are byte-identical to
// fresh Run calls with the same (Seed, Config) — the caches only ever
// reuse stages whose outputs a fresh run would recompute bit-for-bit.
// Cached stages are shared across results: treat Result.Tested as
// read-only.
//
// The stage caches are size-bounded (see CacheLimits): a session that
// outlives one batch — a serving daemon sweeping many distinct mining
// parameters — evicts least-recently-used stages instead of growing
// without bound, and recomputes them identically on re-request.
type Session struct {
	data *dataset.Dataset // nil for source-backed (e.g. segment store) sessions
	src  EncodedSource

	encMu  sync.Mutex
	enc    *dataset.Encoded
	encVer uint64 // version enc corresponds to; 0 = not yet encoded

	trees *stageCache[treeKey, treeStage]
	rules *stageCache[ruleKey, ruleStage]

	encodes, mines, scores   atomic.Int64
	treeHits, scoreHits      atomic.Int64
	corrections, holdouts    atomic.Int64
	adaptiveRuns, permsSaved atomic.Int64
}

// EncodedSource supplies a session's vertical encoding. An in-memory
// dataset is the trivial source (version pinned at 1); a segment store
// (internal/colstore) is the out-of-core one, whose version bumps on
// every append. Snapshot must return the encoding and the version it
// corresponds to atomically — the session folds that version into its
// stage-cache keys, so a version bump invalidates every cached stage.
// Returned encodings are treated as immutable.
type EncodedSource interface {
	NumRecords() int
	Schema() *dataset.Schema
	Version() uint64
	Snapshot() (*dataset.Encoded, uint64, error)
}

// memSource adapts an in-memory dataset to EncodedSource.
type memSource struct {
	d *dataset.Dataset
}

func (m memSource) NumRecords() int         { return m.d.NumRecords() }
func (m memSource) Schema() *dataset.Schema { return m.d.Schema }
func (m memSource) Version() uint64         { return 1 }
func (m memSource) Snapshot() (*dataset.Encoded, uint64, error) {
	return dataset.Encode(m.d), 1, nil
}

// NewSession prepares d for repeated mining with the default CacheLimits.
// The encode stage runs lazily on the first Run.
func NewSession(d *dataset.Dataset) *Session {
	return NewSessionLimits(d, CacheLimits{})
}

// NewSessionLimits is NewSession with explicit stage-cache bounds.
func NewSessionLimits(d *dataset.Dataset, lim CacheLimits) *Session {
	s := NewSessionSourceLimits(memSource{d: d}, lim)
	s.data = d
	return s
}

// NewSessionSource prepares an encoded source — typically a segment
// store — for repeated mining. Holdout runs are unavailable (they need
// the raw record matrix); every other method behaves exactly as on an
// in-memory session over the equivalent dataset, byte for byte.
func NewSessionSource(src EncodedSource) *Session {
	return NewSessionSourceLimits(src, CacheLimits{})
}

// NewSessionSourceLimits is NewSessionSource with explicit stage-cache
// bounds.
func NewSessionSourceLimits(src EncodedSource, lim CacheLimits) *Session {
	lim = lim.withDefaults()
	return &Session{
		src:   src,
		trees: newStageCache[treeKey, treeStage](lim.MaxTrees),
		rules: newStageCache[ruleKey, ruleStage](lim.MaxRules),
	}
}

// Data returns the dataset the session was built on, or nil for a
// source-backed session (use NumRecords/Schema instead).
func (s *Session) Data() *dataset.Dataset { return s.data }

// Source returns the session's encoded source (for in-memory sessions,
// an adapter over the dataset).
func (s *Session) Source() EncodedSource { return s.src }

// NumRecords returns the current record count of the session's source.
func (s *Session) NumRecords() int { return s.src.NumRecords() }

// Schema returns the current schema of the session's source.
func (s *Session) Schema() *dataset.Schema { return s.src.Schema() }

// Stats snapshots the stage counters.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Encodes:       s.encodes.Load(),
		Mines:         s.mines.Load(),
		Scores:        s.scores.Load(),
		TreeHits:      s.treeHits.Load(),
		ScoreHits:     s.scoreHits.Load(),
		Corrections:   s.corrections.Load(),
		AdaptiveRuns:  s.adaptiveRuns.Load(),
		PermsSaved:    s.permsSaved.Load(),
		Holdouts:      s.holdouts.Load(),
		TreeEvictions: s.trees.idx.Evictions(),
		RuleEvictions: s.rules.idx.Evictions(),
		CachedTrees:   int64(s.trees.len()),
		CachedRules:   int64(s.rules.len()),
	}
}

// snapshot returns the session-wide vertical representation and the
// source version it corresponds to, (re)building it when the source has
// moved past the cached version. For in-memory sessions the version is
// constant, so the encode runs once, on first use.
func (s *Session) snapshot() (*dataset.Encoded, uint64, error) {
	s.encMu.Lock()
	defer s.encMu.Unlock()
	if s.enc != nil && s.encVer == s.src.Version() {
		return s.enc, s.encVer, nil
	}
	enc, ver, err := s.src.Snapshot()
	if err != nil {
		return nil, 0, err
	}
	s.enc, s.encVer = enc, ver
	s.encodes.Add(1)
	return enc, ver, nil
}

// treeFor returns the mined tree of cfg against the current source
// version, mining it at most once per distinct (version, treeKey).
func (s *Session) treeFor(ctx context.Context, cfg Config) (treeStage, error) {
	enc, ver, err := s.snapshot()
	if err != nil {
		return treeStage{}, err
	}
	return s.treeForVer(ctx, cfg, enc, ver)
}

// treeForVer is treeFor against an already-taken snapshot, so callers
// composing several stages key them all under one consistent version.
func (s *Session) treeForVer(ctx context.Context, cfg Config, enc *dataset.Encoded, ver uint64) (treeStage, error) {
	key := cfg.treeKey()
	key.version = ver
	v, hit, err := s.trees.getOrCompute(key, func() (treeStage, error) {
		start := time.Now()
		tree, err := mining.MineClosedContext(ctx, enc, mining.Options{
			MinSup:        key.minSup,
			StoreDiffsets: key.storeDiffsets,
			MaxLen:        key.maxLen,
			MaxNodes:      key.maxNodes,
			Workers:       cfg.Workers,
		})
		if err != nil {
			return treeStage{}, err
		}
		s.mines.Add(1)
		return treeStage{tree: tree, enc: enc, dur: time.Since(start)}, nil
	})
	if hit {
		s.treeHits.Add(1)
	}
	return v, err
}

// rulesFor returns the scored rule set of cfg against the current source
// version, scoring it at most once per distinct (version, ruleKey).
func (s *Session) rulesFor(ctx context.Context, cfg Config) (ruleStage, error) {
	enc, ver, err := s.snapshot()
	if err != nil {
		return ruleStage{}, err
	}
	return s.rulesForVer(ctx, cfg, enc, ver)
}

// rulesForVer is rulesFor against an already-taken snapshot.
func (s *Session) rulesForVer(ctx context.Context, cfg Config, enc *dataset.Encoded, ver uint64) (ruleStage, error) {
	key := cfg.ruleKey()
	key.tree.version = ver
	v, hit, err := s.rules.getOrCompute(key, func() (ruleStage, error) {
		ts, err := s.treeForVer(ctx, cfg, enc, ver)
		if err != nil {
			return ruleStage{}, err
		}
		start := time.Now()
		rules, err := mining.GenerateRules(ts.tree, mining.RuleOptions{
			Policy:  cfg.Policy,
			Class:   cfg.FixedClass,
			MinConf: cfg.MinConf,
			Test:    cfg.Test,
		})
		if err != nil {
			return ruleStage{}, err
		}
		if cfg.RedundancyEpsilon > 0 {
			reduction, err := redundancy.Reduce(ts.tree, rules, cfg.RedundancyEpsilon)
			if err != nil {
				return ruleStage{}, err
			}
			rules = reduction.KeptRules
		}
		s.scores.Add(1)
		return ruleStage{tree: ts, rules: rules, dur: time.Since(start)}, nil
	})
	if hit {
		s.scoreHits.Add(1)
	}
	return v, err
}

// Run executes one config against the prepared dataset, reusing any
// already-computed encode/mine/score stage whose parameters match.
func (s *Session) Run(cfg Config) (*Result, error) {
	return s.RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation. The result is byte-identical to
// RunContext(ctx, s.Data(), cfg) — the caches never change outputs, only
// cost.
func (s *Session) RunContext(ctx context.Context, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults(s.src.NumRecords())
	if err != nil {
		return nil, err
	}
	return s.run(ctx, cfg)
}

// run executes an already-normalized config.
func (s *Session) run(ctx context.Context, cfg Config) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.Method == MethodHoldout {
		if cfg.Test != mining.TestFisher {
			return nil, fmt.Errorf("core: the holdout method supports the Fisher test only")
		}
		if s.data == nil {
			return nil, fmt.Errorf("core: the holdout method needs an in-memory dataset (it splits raw records); store-backed sessions support the other methods")
		}
		s.holdouts.Add(1)
		return runHoldout(ctx, s.data, cfg)
	}
	rs, err := s.rulesFor(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return s.correctWith(ctx, cfg, rs)
}

// correctWith runs cfg's correction over an already-prepared scored stage.
func (s *Session) correctWith(ctx context.Context, cfg Config, rs ruleStage) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	outcome, pstats, err := runCorrection(ctx, cfg, rs.tree.tree, rs.rules)
	if err != nil {
		return nil, err
	}
	s.corrections.Add(1)
	if pstats != nil {
		s.adaptiveRuns.Add(1)
		s.permsSaved.Add(pstats.PermsSaved)
	}
	return s.assemble(cfg, rs, outcome, pstats, time.Since(start)), nil
}

// assemble builds the user-facing Result of one corrected run. MineTime
// reports the cost of the (possibly shared) mine + score stages behind
// the result; CorrectTime is this run's own correction cost.
//
//armine:deterministic
func (s *Session) assemble(cfg Config, rs ruleStage, outcome *correction.Outcome, pstats *PermStats, correctTime time.Duration) *Result {
	res := &Result{
		Method:      cfg.Method,
		Control:     cfg.Control,
		Alpha:       cfg.Alpha,
		MinSup:      cfg.MinSup,
		NumRecords:  rs.tree.enc.NumRecords,
		NumPatterns: rs.tree.tree.NumPatterns(),
		NumTested:   len(rs.rules),
		Cutoff:      outcome.Cutoff,
		Tested:      rs.rules,
		Outcome:     outcome,
		Perm:        pstats,
		MineTime:    rs.tree.dur + rs.dur,
		CorrectTime: correctTime,
	}
	for _, i := range outcome.Significant {
		res.Significant = append(res.Significant, toRule(&rs.rules[i], rs.tree.enc.Enc))
	}
	sortRules(res.Significant)
	return res
}

// RunBatch executes every config against the prepared dataset,
// deduplicating the encode/mine/score stages across them: each distinct
// stage key is computed exactly once (in first-appearance order), then the
// per-config corrections run concurrently on a worker pool bounded by the
// largest per-config Workers value. results[i] corresponds to cfgs[i] and
// is byte-identical to a fresh Run of that config. The batch fails
// atomically: the first error (lowest config index) is returned and no
// results are.
//
//armine:deterministic
func (s *Session) RunBatch(ctx context.Context, cfgs []Config) ([]*Result, error) {
	n := s.src.NumRecords()
	norm := make([]Config, len(cfgs))
	maxWorkers := 1
	for i := range cfgs {
		c, err := cfgs[i].withDefaults(n)
		if err != nil {
			return nil, fmt.Errorf("core: batch config %d: %w", i, err)
		}
		norm[i] = c
		if c.Workers > maxWorkers {
			maxWorkers = c.Workers
		}
	}

	// Stage pass: compute each distinct scored rule set once, up front and
	// in order, so the heavy mining work runs deterministically before the
	// corrections fan out (and a mining failure surfaces with the first
	// config that needs it). The stages are held locally for the duration
	// of the batch — not re-fetched through the bounded cache — so the
	// once-per-key guarantee stands even when the batch has more distinct
	// keys than the cache retains. One snapshot is taken for the whole
	// batch (lazily, so a holdout-only batch never encodes): every stage
	// keys under the same source version even if an append lands mid-way.
	var (
		enc *dataset.Encoded
		ver uint64
	)
	held := make(map[ruleKey]ruleStage)
	for i := range norm {
		if norm[i].Method == MethodHoldout {
			continue
		}
		if enc == nil {
			var err error
			if enc, ver, err = s.snapshot(); err != nil {
				return nil, fmt.Errorf("core: batch config %d: %w", i, err)
			}
		}
		key := norm[i].ruleKey()
		key.tree.version = ver
		if _, ok := held[key]; ok {
			continue
		}
		rs, err := s.rulesForVer(ctx, norm[i], enc, ver)
		if err != nil {
			return nil, fmt.Errorf("core: batch config %d: %w", i, err)
		}
		held[key] = rs
	}

	// Correction pass: independent per config, bounded by the pool.
	// Permutation configs sharing a null construction (same scored rules,
	// permutation count, seed, optimisation level and budget) are grouped
	// onto one engine: the label matrix and the tree-walk index are built
	// once per group — the paper's FWER/FDR pairing — instead of once per
	// config.
	groups := make(map[permKey][]int)
	var groupKeys []permKey // deterministic group launch order
	var singles []int
	for i := range norm {
		if norm[i].Method == MethodPermutation {
			k := norm[i].permKey()
			k.rule.tree.version = ver // match the held-stage keys
			if _, ok := groups[k]; !ok {
				groupKeys = append(groupKeys, k)
			}
			groups[k] = append(groups[k], i)
		} else {
			singles = append(singles, i)
		}
	}

	results := make([]*Result, len(norm))
	errs := make([]error, len(norm))
	sem := make(chan struct{}, maxWorkers)
	var wg sync.WaitGroup
	for _, i := range singles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if norm[i].Method == MethodHoldout {
				results[i], errs[i] = s.run(ctx, norm[i])
			} else {
				key := norm[i].ruleKey()
				key.tree.version = ver
				results[i], errs[i] = s.correctWith(ctx, norm[i], held[key])
			}
		}(i)
	}
	for _, k := range groupKeys {
		idxs := groups[k]
		rs := held[k.rule]
		wg.Add(1)
		go func(idxs []int, rs ruleStage) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s.runPermGroup(ctx, norm, idxs, rs, results, errs)
		}(idxs, rs)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: batch config %d: %w", i, err)
		}
	}
	return results, nil
}

// runPermGroup evaluates several permutation configs on one shared
// engine. The engine's MinP/CountLE walks are per-correction either way;
// sharing saves the label-matrix fill and index construction. Results are
// byte-identical to per-config engines because the engine is fully
// determined by (tree, rules, NumPerms, Seed, Opt, StaticBudget, Test)
// and its walks are deterministic for every worker count. Adaptive groups
// additionally share one RunAdaptive execution — their permKey pins
// control and alpha, so every config in the group wants the same
// schedule.
func (s *Session) runPermGroup(ctx context.Context, norm []Config, idxs []int, rs ruleStage, results []*Result, errs []error) {
	fail := func(err error) {
		for _, i := range idxs {
			errs[i] = err
		}
	}
	if err := ctx.Err(); err != nil {
		fail(err)
		return
	}
	cfg0 := norm[idxs[0]]
	start := time.Now()
	engine, err := cfg0.permSource(ctx, rs.tree.tree, rs.rules)
	if err != nil {
		fail(err)
		return
	}
	if cfg0.Adaptive.Enabled() {
		res, err := engine.RunAdaptive(cfg0.adaptiveMode(), cfg0.Alpha)
		if err != nil {
			fail(err)
			return
		}
		engineDur := time.Since(start)
		s.adaptiveRuns.Add(1)
		s.permsSaved.Add(res.PermsSaved)
		for _, i := range idxs {
			cfg := norm[i]
			correct := time.Now()
			outcome, pstats := adaptiveOutcome(cfg, res, rs.rules)
			s.corrections.Add(1)
			results[i] = s.assemble(cfg, rs, outcome, pstats, engineDur+time.Since(correct))
		}
		return
	}
	engineDur := time.Since(start)
	for _, i := range idxs {
		cfg := norm[i]
		correct := time.Now()
		var outcome *correction.Outcome
		if cfg.Control == ControlFWER {
			outcome = correction.PermFWER(engine, rs.rules, cfg.Alpha)
		} else {
			outcome = correction.PermFDR(engine, rs.rules, cfg.Alpha)
		}
		if err := engine.Err(); err != nil {
			errs[i] = err
			continue
		}
		s.corrections.Add(1)
		results[i] = s.assemble(cfg, rs, outcome, nil, engineDur+time.Since(correct))
	}
}

// ShardSpan evaluates one distributed-shard work assignment against cfg's
// prepared stages — the worker half of the DESIGN.md §10 protocol, served
// over HTTP by /v1/datasets/{name}/shard. The config identifies the
// mine/score stages (cached and shared with ordinary runs of the same
// parameters); the permutation engine itself is built per call with
// deferred labels, bound to ctx, so a worker only ever materialises the
// label blocks of the ranges it is assigned. cfg's own Shards/ShardWorkers
// fields are ignored: a shard evaluation is a leaf of the fan-out and
// never fans out further.
func (s *Session) ShardSpan(ctx context.Context, cfg Config, req shard.Request) (*shard.Reply, error) {
	cfg, err := cfg.withDefaults(s.src.NumRecords())
	if err != nil {
		return nil, err
	}
	if cfg.Method != MethodPermutation {
		return nil, fmt.Errorf("core: ShardSpan needs Method == permutation, got %s", cfg.Method)
	}
	rs, err := s.rulesFor(ctx, cfg)
	if err != nil {
		return nil, err
	}
	pcfg := cfg.permConfig(ctx)
	pcfg.DeferLabels = true
	engine, err := permute.NewEngine(rs.tree.tree, rs.rules, pcfg)
	if err != nil {
		return nil, err
	}
	return shard.NewLocal(engine).Span(ctx, req)
}
