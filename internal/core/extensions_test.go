package core

import (
	"testing"

	"repro/internal/mining"
)

func TestRunChiSquareTest(t *testing.T) {
	res := signalDataset(t, 21)
	fisher, err := Run(res.Data, Config{MinSup: 100, Method: MethodDirect, Control: ControlFWER})
	if err != nil {
		t.Fatal(err)
	}
	chi, err := Run(res.Data, Config{
		MinSup: 100, Method: MethodDirect, Control: ControlFWER, Test: mining.TestChiSquare,
	})
	if err != nil {
		t.Fatal(err)
	}
	if chi.NumTested != fisher.NumTested {
		t.Fatalf("test kind changed the tested count: %d vs %d", chi.NumTested, fisher.NumTested)
	}
	// Both recover the strong embedded rule; the certified sets are close
	// (chi-square is the asymptotic approximation of Fisher).
	if len(chi.Significant) == 0 {
		t.Fatal("chi-square found nothing")
	}
	ratio := float64(len(chi.Significant)) / float64(len(fisher.Significant)+1)
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("chi2 found %d vs fisher %d — implausibly far apart",
			len(chi.Significant), len(fisher.Significant))
	}
}

func TestRunChiSquarePermutation(t *testing.T) {
	res := signalDataset(t, 22)
	out, err := Run(res.Data, Config{
		MinSup: 120, Method: MethodPermutation, Control: ControlFWER,
		Permutations: 60, Seed: 4, Test: mining.TestChiSquare,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Significant) == 0 {
		t.Error("permutation with chi-square found nothing")
	}
}

func TestRunMidPTest(t *testing.T) {
	res := signalDataset(t, 23)
	std, err := Run(res.Data, Config{MinSup: 100, Method: MethodDirect, Control: ControlFDR})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := Run(res.Data, Config{
		MinSup: 100, Method: MethodDirect, Control: ControlFDR, Test: mining.TestMidP,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mid-p is uniformly less conservative: it cannot find fewer rules.
	if len(mid.Significant) < len(std.Significant) {
		t.Errorf("mid-p found %d < standard %d", len(mid.Significant), len(std.Significant))
	}
}

func TestRunHoldoutRejectsNonFisher(t *testing.T) {
	res := signalDataset(t, 24)
	if _, err := Run(res.Data, Config{
		MinSup: 100, Method: MethodHoldout, Test: mining.TestChiSquare,
	}); err == nil {
		t.Error("holdout with chi-square should be rejected")
	}
}

func TestRunRedundancyReduction(t *testing.T) {
	res := signalDataset(t, 25)
	full, err := Run(res.Data, Config{MinSup: 100, Method: MethodDirect, Control: ControlFWER})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := Run(res.Data, Config{
		MinSup: 100, Method: MethodDirect, Control: ControlFWER, RedundancyEpsilon: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reduced.NumTested > full.NumTested {
		t.Fatalf("reduction increased tested count: %d > %d", reduced.NumTested, full.NumTested)
	}
	if reduced.NumTested == full.NumTested {
		t.Skip("no redundancy on this dataset")
	}
	// Fewer tests => looser Bonferroni cutoff.
	if reduced.Cutoff <= full.Cutoff {
		t.Errorf("reduced cutoff %g not looser than %g", reduced.Cutoff, full.Cutoff)
	}
	// The embedded rule (or its representative) is still found.
	if len(reduced.Significant) == 0 {
		t.Error("reduction lost the embedded rule")
	}
}

func TestRunRedundancyWithPermutation(t *testing.T) {
	res := signalDataset(t, 26)
	out, err := Run(res.Data, Config{
		MinSup: 120, Method: MethodPermutation, Control: ControlFWER,
		Permutations: 60, Seed: 2, RedundancyEpsilon: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumTested == 0 || len(out.Significant) == 0 {
		t.Error("permutation over the reduced rule set failed")
	}
}

func TestRunRedundancyInvalidEpsilon(t *testing.T) {
	res := signalDataset(t, 27)
	if _, err := Run(res.Data, Config{
		MinSup: 100, Method: MethodDirect, RedundancyEpsilon: 1.5,
	}); err == nil {
		t.Error("epsilon > 1 accepted")
	}
}
