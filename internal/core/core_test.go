package core

import (
	"testing"

	"repro/internal/permute"
	"repro/internal/synth"
)

// signalDataset returns a dataset with one strong embedded rule.
func signalDataset(t *testing.T, seed uint64) *synth.Result {
	t.Helper()
	p := synth.PaperDefaults()
	p.N = 1000
	p.Attrs = 15
	p.NumRules = 1
	p.MinCvg, p.MaxCvg = 250, 250
	p.MinConf, p.MaxConf = 0.9, 0.9
	p.Seed = seed
	res, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunDirectFWER(t *testing.T) {
	res := signalDataset(t, 1)
	out, err := Run(res.Data, Config{MinSup: 100, Method: MethodDirect, Control: ControlFWER})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumTested == 0 || out.NumPatterns == 0 {
		t.Fatal("nothing mined")
	}
	if len(out.Significant) == 0 {
		t.Fatal("strong embedded rule not found by Bonferroni")
	}
	// Rules are sorted by ascending p.
	for i := 1; i < len(out.Significant); i++ {
		if out.Significant[i].P < out.Significant[i-1].P {
			t.Fatal("significant rules not sorted by p")
		}
	}
	// Every reported rule respects the cutoff.
	for _, r := range out.Significant {
		if r.P > out.Cutoff {
			t.Errorf("rule with p=%g above cutoff %g", r.P, out.Cutoff)
		}
		if r.Coverage < 100 {
			t.Errorf("rule coverage %d below MinSup", r.Coverage)
		}
		if len(r.Items) != len(r.Attrs) || len(r.Attrs) != len(r.Vals) {
			t.Error("rule item slices inconsistent")
		}
	}
}

func TestRunMethodsOrdering(t *testing.T) {
	// On the same dataset: none >= permutation >= direct (discovery
	// counts, FWER control), per §7's power ordering.
	res := signalDataset(t, 2)
	count := func(m Method) int {
		out, err := Run(res.Data, Config{
			MinSup: 100, Method: m, Control: ControlFWER,
			Permutations: 150, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return len(out.Significant)
	}
	none := count(MethodNone)
	direct := count(MethodDirect)
	perm := count(MethodPermutation)
	if none < perm || perm < direct {
		t.Errorf("discovery counts none=%d perm=%d direct=%d violate none >= perm >= direct",
			none, perm, direct)
	}
}

func TestRunFDRAtLeastFWER(t *testing.T) {
	res := signalDataset(t, 3)
	fwer, err := Run(res.Data, Config{MinSup: 100, Method: MethodDirect, Control: ControlFWER})
	if err != nil {
		t.Fatal(err)
	}
	fdr, err := Run(res.Data, Config{MinSup: 100, Method: MethodDirect, Control: ControlFDR})
	if err != nil {
		t.Fatal(err)
	}
	if len(fdr.Significant) < len(fwer.Significant) {
		t.Errorf("BH found %d < Bonferroni %d", len(fdr.Significant), len(fwer.Significant))
	}
}

func TestRunHoldout(t *testing.T) {
	p := synth.PaperDefaults()
	p.N = 1000
	p.Attrs = 12
	p.NumRules = 1
	p.MinCvg, p.MaxCvg = 300, 300
	p.MinConf, p.MaxConf = 0.95, 0.95
	p.Seed = 4
	whole, _, _, err := synth.GeneratePaired(p)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(whole.Data, Config{MinSup: 100, Method: MethodHoldout, Control: ControlFWER})
	if err != nil {
		t.Fatal(err)
	}
	if out.Holdout == nil {
		t.Fatal("holdout detail missing")
	}
	if out.NumTested != out.Holdout.NumExploreTested {
		t.Error("NumTested should echo exploratory test count")
	}
	if len(out.Significant) == 0 {
		t.Error("holdout failed to confirm a strong (conf 0.95, coverage 300) rule")
	}
	// Random holdout also runs.
	out2, err := Run(whole.Data, Config{
		MinSup: 100, Method: MethodHoldout, Control: ControlFDR, HoldoutRandom: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Outcome.Method != "HD_BH" {
		t.Errorf("outcome method %q, want HD_BH", out2.Outcome.Method)
	}
}

func TestRunMinSupFrac(t *testing.T) {
	res := signalDataset(t, 6)
	out, err := Run(res.Data, Config{MinSupFrac: 0.1, Method: MethodDirect})
	if err != nil {
		t.Fatal(err)
	}
	if out.MinSup != 100 {
		t.Errorf("MinSup = %d, want 100 (10%% of 1000)", out.MinSup)
	}
}

func TestRunConfigErrors(t *testing.T) {
	res := signalDataset(t, 7)
	if _, err := Run(res.Data, Config{}); err == nil {
		t.Error("missing MinSup accepted")
	}
	if _, err := Run(res.Data, Config{MinSup: 10, Alpha: 2}); err == nil {
		t.Error("Alpha > 1 accepted")
	}
}

func TestRunOptLevels(t *testing.T) {
	// All optimisation levels give identical significant sets.
	res := signalDataset(t, 8)
	var ref []Rule
	for _, opt := range []permute.OptLevel{
		permute.OptNone, permute.OptDynamicBuffer, permute.OptDiffsets, permute.OptStaticBuffer,
	} {
		out, err := Run(res.Data, Config{
			MinSup: 120, Method: MethodPermutation, Control: ControlFWER,
			Permutations: 60, Seed: 9, Opt: opt, OptSet: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = out.Significant
			continue
		}
		if len(out.Significant) != len(ref) {
			t.Fatalf("opt=%v: %d significant, reference %d", opt, len(out.Significant), len(ref))
		}
		for i := range ref {
			if out.Significant[i].P != ref[i].P {
				t.Fatalf("opt=%v: p mismatch at %d", opt, i)
			}
		}
	}
}
