package core

import (
	"context"
	"testing"

	"repro/internal/permute"
	"repro/internal/synth"
)

// adaptiveDataset generates a mid-size synthetic dataset with one planted
// rule, so adaptive runs have both survivors and plenty of retirable
// noise.
func adaptiveDataset(t *testing.T) *synth.Result {
	t.Helper()
	p := synth.PaperDefaults()
	p.N = 500
	p.Attrs = 10
	p.NumRules = 1
	p.MinCvg, p.MaxCvg = 100, 120
	p.MinConf, p.MaxConf = 0.85, 0.9
	p.Seed = 42
	res, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAdaptiveEndToEnd drives Config.Adaptive through the whole pipeline
// on a signal-heavy dataset (~130 co-significant rules — the hardest
// regime for early stopping) and asserts the mode's documented contract:
//
//   - FDR: the pooled empirical estimator with per-rule sample counts
//     reproduces the fixed run's significant set exactly.
//   - FWER: retirement can only move the min-p cut-off UP (retired rules'
//     permutation p-values stop feeding the null), so the fixed run's
//     significant set is always contained in the adaptive one and any
//     extra admission lies in the (fixed cutoff, adaptive cutoff] drift
//     window. DESIGN.md §7 derives both properties.
func TestAdaptiveEndToEnd(t *testing.T) {
	res := adaptiveDataset(t)
	sess := NewSession(res.Data)
	for _, control := range []Control{ControlFWER, ControlFDR} {
		fixed, err := sess.Run(Config{
			MinSup: 30, Method: MethodPermutation, Control: control,
			Permutations: 300, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if fixed.Perm != nil {
			t.Fatalf("%v: fixed run unexpectedly carries adaptive telemetry", control)
		}
		adaptive, err := sess.Run(Config{
			MinSup: 30, Method: MethodPermutation, Control: control,
			Seed:     9,
			Adaptive: permute.Adaptive{MinPerms: 50, MaxPerms: 300},
		})
		if err != nil {
			t.Fatal(err)
		}
		if adaptive.Perm == nil {
			t.Fatalf("%v: adaptive run has no telemetry", control)
		}
		if adaptive.Perm.MaxPerms != 300 || adaptive.Perm.Rounds < 2 {
			t.Errorf("%v: telemetry %+v, want MaxPerms=300 over several rounds", control, adaptive.Perm)
		}
		if adaptive.Perm.RulesRetired == 0 || adaptive.Perm.PermsSaved == 0 {
			t.Errorf("%v: nothing retired (%+v)", control, adaptive.Perm)
		}
		if control == ControlFDR {
			if len(adaptive.Significant) != len(fixed.Significant) {
				t.Fatalf("FDR: adaptive found %d significant, fixed %d",
					len(adaptive.Significant), len(fixed.Significant))
			}
			for i := range adaptive.Significant {
				if adaptive.Significant[i].P != fixed.Significant[i].P {
					t.Fatalf("FDR: significant rule %d differs", i)
				}
			}
			continue
		}
		// FWER: one-sided containment.
		if adaptive.Cutoff < fixed.Cutoff {
			t.Fatalf("FWER: adaptive cutoff %g below fixed %g — the drift must be one-sided",
				adaptive.Cutoff, fixed.Cutoff)
		}
		if len(adaptive.Significant) < len(fixed.Significant) {
			t.Fatalf("FWER: adaptive lost significant rules (%d < %d)",
				len(adaptive.Significant), len(fixed.Significant))
		}
		adaptiveSet := make(map[float64]bool, len(adaptive.Significant))
		for _, r := range adaptive.Significant {
			adaptiveSet[r.P] = true
		}
		for _, r := range fixed.Significant {
			if !adaptiveSet[r.P] {
				t.Fatalf("FWER: fixed-significant rule p=%g missing from the adaptive set", r.P)
			}
		}
		for _, r := range adaptive.Significant {
			if r.P > fixed.Cutoff && r.P > adaptive.Cutoff {
				t.Fatalf("FWER: extra admission p=%g outside the drift window (%g, %g]",
					r.P, fixed.Cutoff, adaptive.Cutoff)
			}
		}
	}
	st := sess.Stats()
	if st.AdaptiveRuns != 2 {
		t.Errorf("AdaptiveRuns = %d, want 2", st.AdaptiveRuns)
	}
	if st.PermsSaved <= 0 {
		t.Errorf("PermsSaved = %d, want > 0", st.PermsSaved)
	}
	// One dataset, one mining parameterisation: everything shares a single
	// mine + score despite the adaptive/fixed split.
	if st.Mines != 1 || st.Scores != 1 {
		t.Errorf("Mines=%d Scores=%d, want 1/1 (adaptive must not fork the cached stages)", st.Mines, st.Scores)
	}
}

// TestAdaptiveBatchMatchesSoloRuns pins the engine-sharing keys: a batch
// mixing fixed and adaptive permutation configs (including a duplicated
// adaptive cell and a different alpha) must reproduce each config's solo
// run byte-for-byte — adaptive engines may only be shared when control
// and alpha agree, because the retirement rule consumes both.
func TestAdaptiveBatchMatchesSoloRuns(t *testing.T) {
	res := adaptiveDataset(t)
	ad := permute.Adaptive{MinPerms: 50, MaxPerms: 200}
	base := Config{MinSup: 30, Method: MethodPermutation, Seed: 3}
	mk := func(control Control, alpha float64, adaptive bool) Config {
		cfg := base
		cfg.Control = control
		cfg.Alpha = alpha
		if adaptive {
			cfg.Adaptive = ad
		}
		return cfg
	}
	cfgs := []Config{
		mk(ControlFWER, 0.05, false),
		mk(ControlFWER, 0.05, true),
		mk(ControlFWER, 0.05, true), // duplicate: shares the adaptive engine
		mk(ControlFWER, 0.01, true), // different alpha: must NOT share
		mk(ControlFDR, 0.05, true),  // different control: must NOT share
	}
	batchSess := NewSession(res.Data)
	results, err := batchSess.RunBatch(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		solo, err := NewSession(res.Data).Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, want := results[i], solo
		if got.Cutoff != want.Cutoff || len(got.Significant) != len(want.Significant) {
			t.Fatalf("config %d: batch (cutoff %g, %d sig) != solo (cutoff %g, %d sig)",
				i, got.Cutoff, len(got.Significant), want.Cutoff, len(want.Significant))
		}
		for j := range got.Significant {
			if got.Significant[j].P != want.Significant[j].P {
				t.Fatalf("config %d: significant rule %d differs between batch and solo", i, j)
			}
		}
	}
	// Three distinct adaptive groups (0.05-FWER shared by two configs,
	// 0.01-FWER, 0.05-FDR) → three engine executions.
	if st := batchSess.Stats(); st.AdaptiveRuns != 3 {
		t.Errorf("batch AdaptiveRuns = %d, want 3 (duplicate configs must share one adaptive engine)", st.AdaptiveRuns)
	}
}

// TestAdaptiveNormalization covers the config defaulting path.
func TestAdaptiveNormalization(t *testing.T) {
	a := permute.Adaptive{MaxPerms: 40}.Normalized()
	if a.MinPerms != 40 {
		t.Errorf("MinPerms = %d, want clamped to MaxPerms=40", a.MinPerms)
	}
	if a.Exceedances != permute.DefaultExceedances {
		t.Errorf("Exceedances = %d, want default %d", a.Exceedances, permute.DefaultExceedances)
	}
	b := permute.Adaptive{MaxPerms: 1000}.Normalized()
	if b.MinPerms != permute.DefaultMinPerms {
		t.Errorf("MinPerms = %d, want default %d", b.MinPerms, permute.DefaultMinPerms)
	}
	if z := (permute.Adaptive{}).Normalized(); z.Enabled() || z.MinPerms != 0 {
		t.Errorf("zero Adaptive should stay zero, got %+v", z)
	}
}
