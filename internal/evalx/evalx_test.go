package evalx

import (
	"math"
	"testing"

	"repro/internal/correction"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/synth"
)

// mineCase generates a dataset, mines it and returns everything needed.
func mineCase(t *testing.T, p synth.Params, minSup int) (*synth.Result, []mining.Rule) {
	t.Helper()
	res, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	enc := dataset.Encode(res.Data)
	tree, err := mining.MineClosed(enc, mining.Options{MinSup: minSup, StoreDiffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
	if err != nil {
		t.Fatal(err)
	}
	return res, rules
}

func TestJudgeAllFPOnRandomData(t *testing.T) {
	p := synth.PaperDefaults()
	p.N = 300
	p.Attrs = 10
	p.Seed = 1
	res, rules := mineCase(t, p, 20)
	j := NewJudge(res.Data, res.Rules, 0.05)
	for i := range rules {
		if !j.IsFalsePositive(&rules[i]) {
			t.Fatal("rule on a pure-random dataset not judged a false positive")
		}
	}
	// Everything reported significant counts as FP.
	all := make([]int, len(rules))
	for i := range all {
		all[i] = i
	}
	ev := j.Evaluate(rules, all)
	if ev.FalsePositives != len(rules) || ev.Detected != 0 {
		t.Errorf("Evaluate = %+v, want all FP, none detected", ev)
	}
	if ev.Power() != 0 || !ev.AnyFalsePositive() {
		t.Error("power/FWER flags wrong on random data")
	}
}

func TestJudgeEmbeddedRuleIsTruePositive(t *testing.T) {
	p := synth.PaperDefaults()
	p.N = 1000
	p.Attrs = 15
	p.NumRules = 1
	p.MinCvg, p.MaxCvg = 300, 300
	p.MinConf, p.MaxConf = 0.9, 0.9
	p.Seed = 5
	res, rules := mineCase(t, p, 100)
	j := NewJudge(res.Data, res.Rules, 0.05)

	// Find the mined rule whose record set equals T(Xt).
	found := -1
	for i := range rules {
		if j.IsEmbedded(&rules[i], 0) {
			found = i
			break
		}
	}
	if found < 0 {
		t.Fatal("the embedded rule's closure was not mined (coverage 300 >= minSup 100)")
	}
	if j.IsFalsePositive(&rules[found]) {
		t.Error("the embedded rule judged a false positive")
	}

	ev := j.Evaluate(rules, []int{found})
	if ev.Detected != 1 || ev.FalsePositives != 0 {
		t.Errorf("Evaluate = %+v, want detected=1 fp=0", ev)
	}
	if ev.Power() != 1 {
		t.Errorf("power = %g, want 1", ev.Power())
	}
}

func TestJudgeByProductsExcused(t *testing.T) {
	// A strong embedded rule spawns sub/super-pattern by-products with low
	// p-values; the §5.2 judge must excuse most of them, keeping measured
	// FDR of an exact method low.
	p := synth.PaperDefaults()
	p.N = 2000
	p.Attrs = 40
	p.NumRules = 1
	p.MinCvg, p.MaxCvg = 400, 400
	p.MinConf, p.MaxConf = 0.8, 0.8
	p.Seed = 9
	res, rules := mineCase(t, p, 150)

	ps := make([]float64, len(rules))
	for i := range rules {
		ps[i] = rules[i].P
	}
	// Bonferroni at 5%: everything it reports should be the embedded rule
	// or an excused by-product — FDR ≈ 0 per the paper's Figure 10.
	o := correction.Bonferroni(ps, len(ps), 0.05)
	if len(o.Significant) < 2 {
		t.Skipf("only %d significant rules; not enough by-products to test", len(o.Significant))
	}
	j := NewJudge(res.Data, res.Rules, 0.05)
	ev := j.Evaluate(rules, o.Significant)
	if ev.FDR() > 0.2 {
		t.Errorf("FDR = %g with %d FP of %d significant; by-products not being excused",
			ev.FDR(), ev.FalsePositives, ev.NumSignificant)
	}
	if ev.Detected != 1 {
		t.Errorf("embedded rule not among Bonferroni discoveries (detected=%d)", ev.Detected)
	}
}

func TestAdjustedPRemovesEmbeddedEffect(t *testing.T) {
	p := synth.PaperDefaults()
	p.N = 1000
	p.Attrs = 15
	p.NumRules = 1
	p.MinCvg, p.MaxCvg = 300, 300
	p.MinConf, p.MaxConf = 0.9, 0.9
	p.Seed = 21
	res, rules := mineCase(t, p, 100)
	j := NewJudge(res.Data, res.Rules, 0.05)
	for i := range rules {
		if !j.IsEmbedded(&rules[i], 0) {
			continue
		}
		raw := rules[i].P
		adj := j.AdjustedP(&rules[i], 0)
		if adj <= raw {
			t.Errorf("adjusted p %g not larger than raw %g for the embedded rule itself", adj, raw)
		}
		// Removing the rule's own effect should destroy its significance.
		if adj < 0.01 {
			t.Errorf("adjusted p %g still highly significant after removing the effect", adj)
		}
	}
}

func TestAggregate(t *testing.T) {
	evals := []DatasetEval{
		{RulesTested: 100, NumSignificant: 2, FalsePositives: 0, Detected: 1, Embedded: 1},
		{RulesTested: 120, NumSignificant: 4, FalsePositives: 2, Detected: 0, Embedded: 1},
		{RulesTested: 80, NumSignificant: 0, FalsePositives: 0, Detected: 0, Embedded: 1},
		{RulesTested: 100, NumSignificant: 1, FalsePositives: 1, Detected: 1, Embedded: 1},
	}
	b := Aggregate(evals)
	if b.Datasets != 4 {
		t.Fatalf("Datasets = %d", b.Datasets)
	}
	if math.Abs(b.FWER-0.5) > 1e-12 { // datasets 2 and 4 have FPs
		t.Errorf("FWER = %g, want 0.5", b.FWER)
	}
	if math.Abs(b.Power-0.5) > 1e-12 { // detected on 1 and 4
		t.Errorf("Power = %g, want 0.5", b.Power)
	}
	wantFDR := (0.0 + 0.5 + 0.0 + 1.0) / 4
	if math.Abs(b.FDR-wantFDR) > 1e-12 {
		t.Errorf("FDR = %g, want %g", b.FDR, wantFDR)
	}
	if math.Abs(b.AvgFalsePositives-0.75) > 1e-12 {
		t.Errorf("AvgFalsePositives = %g, want 0.75", b.AvgFalsePositives)
	}
	if math.Abs(b.AvgRulesTested-100) > 1e-12 {
		t.Errorf("AvgRulesTested = %g, want 100", b.AvgRulesTested)
	}
	// Empty batch.
	if z := Aggregate(nil); z.Datasets != 0 || z.FWER != 0 {
		t.Error("empty aggregate not zero")
	}
}

func TestDatasetEvalEdge(t *testing.T) {
	e := DatasetEval{NumSignificant: 0, FalsePositives: 0, Embedded: 0}
	if e.FDR() != 0 || e.Power() != 0 || e.AnyFalsePositive() {
		t.Error("zero-case metrics wrong")
	}
}
