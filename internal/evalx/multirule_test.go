package evalx

import (
	"testing"

	"repro/internal/correction"
	"repro/internal/synth"
)

// TestJudgeMultipleEmbeddedRules exercises the multi-rule excuse path: a
// by-product explained by ANY embedded rule is not a false positive, and
// every embedded rule's closure counts toward power independently.
func TestJudgeMultipleEmbeddedRules(t *testing.T) {
	p := synth.PaperDefaults()
	p.N = 2000
	p.Attrs = 30
	p.NumRules = 3
	p.MinLen, p.MaxLen = 3, 3
	p.MinCvg, p.MaxCvg = 250, 300
	p.MinConf, p.MaxConf = 0.85, 0.9
	p.Seed = 71
	res, rules := mineCase(t, p, 100)
	if len(res.Rules) != 3 {
		t.Fatalf("embedded %d rules", len(res.Rules))
	}
	judge := NewJudge(res.Data, res.Rules, 0.05)

	ps := make([]float64, len(rules))
	for i := range rules {
		ps[i] = rules[i].P
	}
	outcome := correction.Bonferroni(ps, len(ps), 0.05)
	ev := judge.Evaluate(rules, outcome.Significant)
	if ev.Embedded != 3 {
		t.Fatalf("Embedded = %d", ev.Embedded)
	}
	if ev.Detected < 2 {
		t.Errorf("only %d of 3 strong rules detected", ev.Detected)
	}
	if ev.Power() < 0.6 {
		t.Errorf("power = %g", ev.Power())
	}
	// Strong clean rules: the by-products around each must be excused.
	if ev.FDR() > 0.5 {
		t.Errorf("FDR = %g with %d FPs of %d significant",
			ev.FDR(), ev.FalsePositives, ev.NumSignificant)
	}
}
