// Package evalx implements the evaluation protocol of §5.2: deciding which
// reported rules are false positives in the presence of embedded rules
// (whose sub- and super-patterns legitimately carry low p-values and must
// not be counted as false discoveries), and aggregating power, FWER and
// FDR over batches of generated datasets.
package evalx

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/intset"
	"repro/internal/mining"
	"repro/internal/stats"
	"repro/internal/synth"
)

// Judge classifies reported rules against the embedded rules of one
// synthetic dataset.
type Judge struct {
	data  *dataset.Dataset
	alpha float64
	n     int

	embedded []synth.EmbeddedRule
	// embTids[i] is T(Xt_i): ALL records containing embedded pattern i
	// (planted records plus chance matches).
	embTids [][]uint32

	hyper []*stats.Hypergeom // per class
}

// NewJudge precomputes the record sets of the embedded patterns. alpha is
// the error level at which the adjusted-p false-positive test is applied
// (the paper uses the same 5% as the correction procedures).
func NewJudge(data *dataset.Dataset, embedded []synth.EmbeddedRule, alpha float64) *Judge {
	n := data.NumRecords()
	classCounts := data.ClassCounts()
	lf := stats.NewLogFact(n)
	hyper := make([]*stats.Hypergeom, len(classCounts))
	for c := range hyper {
		hyper[c] = stats.NewHypergeom(n, classCounts[c], lf)
	}
	j := &Judge{data: data, alpha: alpha, n: n, embedded: embedded, hyper: hyper}
	for i := range embedded {
		var tids []uint32
		for r := 0; r < n; r++ {
			if data.ContainsPattern(r, embedded[i].Attrs, embedded[i].Vals) {
				tids = append(tids, uint32(r))
			}
		}
		j.embTids = append(j.embTids, tids)
	}
	return j
}

// IsEmbedded reports whether rule R *is* embedded rule t, identified by
// record-set equality: the miner represents the embedded pattern Xt by its
// closure, which occurs in exactly T(Xt).
func (j *Judge) IsEmbedded(r *mining.Rule, t int) bool {
	return j.isEmbeddedRaw(rawOf(r), t)
}

func (j *Judge) isEmbeddedRaw(r RawRule, t int) bool {
	if r.Class != j.embedded[t].Class {
		return false
	}
	return intset.Equal(r.Tids, j.embTids[t])
}

// AdjustedP returns p(R|¬Rt), the p-value rule R would have if embedded
// rule t did not exist (§5.2): the class-c records that Rt pushed into
// T(X) ∩ T(Xt) are replaced by the expectation under independence,
//
//	supp(R|¬Rt) = supp(X ∪ Xt)·n_c/n + (supp(R) − supp(X ∪ Xt ∪ c)),
//
// and the Fisher test is re-run at the adjusted support (rounded to the
// nearest attainable integer).
func (j *Judge) AdjustedP(r *mining.Rule, t int) float64 {
	return j.adjustedPRaw(rawOf(r), t)
}

func (j *Judge) adjustedPRaw(r RawRule, t int) float64 {
	inter := intset.Intersect(r.Tids, j.embTids[t])
	suppXXt := len(inter)
	suppXXtC := 0
	for _, rec := range inter {
		if j.data.Labels[rec] == r.Class {
			suppXXtC++
		}
	}
	h := j.hyper[r.Class]
	exp := float64(suppXXt) * float64(h.NC()) / float64(j.n)
	adj := exp + float64(r.Support-suppXXtC)
	k := int(math.Round(adj))
	lo, hi := h.Bounds(r.Coverage)
	if k < lo {
		k = lo
	}
	if k > hi {
		k = hi
	}
	return h.FisherTwoTailed(k, r.Coverage)
}

// IsFalsePositive classifies one reported significant rule per §5.2:
//
//   - if no rules are embedded, every reported rule is a false positive;
//   - a rule identical to an embedded rule is a true positive;
//   - a rule whose record set is disjoint from every embedded pattern's is
//     a false positive (nothing real could explain it);
//   - a rule overlapping an embedded pattern is a false positive only if
//     its adjusted p-value — with that embedded rule's effect removed —
//     still passes alpha (its significance is NOT explained by the
//     embedded rule). Otherwise it is an excused by-product.
//
// With several embedded rules, a rule is excused if at least one embedded
// rule explains it.
func (j *Judge) IsFalsePositive(r *mining.Rule) bool {
	return j.isFalsePositiveRaw(rawOf(r))
}

func (j *Judge) isFalsePositiveRaw(r RawRule) bool {
	if len(j.embedded) == 0 {
		return true
	}
	for t := range j.embedded {
		if j.isEmbeddedRaw(r, t) {
			return false
		}
	}
	for t := range j.embedded {
		if intset.IntersectCount(r.Tids, j.embTids[t]) == 0 {
			continue // this embedded rule cannot explain R
		}
		if j.adjustedPRaw(r, t) > j.alpha {
			return false // by-product of embedded rule t: excused
		}
	}
	return true
}

// DatasetEval summarises one dataset × one correction method.
type DatasetEval struct {
	RulesTested    int
	NumSignificant int
	FalsePositives int
	// Detected counts embedded rules reported significant.
	Detected int
	Embedded int
}

// Power returns Detected/Embedded (0 when nothing was embedded).
func (e DatasetEval) Power() float64 {
	if e.Embedded == 0 {
		return 0
	}
	return float64(e.Detected) / float64(e.Embedded)
}

// FDR returns FalsePositives/NumSignificant (0 when nothing was reported).
func (e DatasetEval) FDR() float64 {
	if e.NumSignificant == 0 {
		return 0
	}
	return float64(e.FalsePositives) / float64(e.NumSignificant)
}

// AnyFalsePositive reports whether at least one false positive was made
// (the per-dataset FWER indicator).
func (e DatasetEval) AnyFalsePositive() bool { return e.FalsePositives > 0 }

// Evaluate judges the significant rules (indices into rules) of one
// correction outcome.
func (j *Judge) Evaluate(rules []mining.Rule, significant []int) DatasetEval {
	ev := DatasetEval{
		RulesTested:    len(rules),
		NumSignificant: len(significant),
		Embedded:       len(j.embedded),
	}
	detected := make([]bool, len(j.embedded))
	for _, i := range significant {
		r := &rules[i]
		isEmb := false
		for t := range j.embedded {
			if j.IsEmbedded(r, t) {
				detected[t] = true
				isEmb = true
			}
		}
		if isEmb {
			continue
		}
		if j.IsFalsePositive(r) {
			ev.FalsePositives++
		}
	}
	for _, d := range detected {
		if d {
			ev.Detected++
		}
	}
	return ev
}

// Batch aggregates per-dataset evaluations over a Monte-Carlo batch
// exactly as §5.2 prescribes: FWER is the fraction of datasets with at
// least one false positive; FDR and power are averaged per dataset.
type Batch struct {
	Datasets          int
	FWER              float64
	FDR               float64
	Power             float64
	AvgFalsePositives float64
	AvgSignificant    float64
	AvgRulesTested    float64
}

// Aggregate combines per-dataset evaluations into batch-level metrics.
func Aggregate(evals []DatasetEval) Batch {
	b := Batch{Datasets: len(evals)}
	if len(evals) == 0 {
		return b
	}
	for _, e := range evals {
		if e.AnyFalsePositive() {
			b.FWER++
		}
		b.FDR += e.FDR()
		b.Power += e.Power()
		b.AvgFalsePositives += float64(e.FalsePositives)
		b.AvgSignificant += float64(e.NumSignificant)
		b.AvgRulesTested += float64(e.RulesTested)
	}
	k := float64(len(evals))
	b.FWER /= k
	b.FDR /= k
	b.Power /= k
	b.AvgFalsePositives /= k
	b.AvgSignificant /= k
	b.AvgRulesTested /= k
	return b
}
