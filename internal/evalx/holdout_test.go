package evalx

import (
	"testing"

	"repro/internal/correction"
	"repro/internal/mining"
	"repro/internal/synth"
)

// pairedCase generates a paired dataset with one strong embedded rule.
func pairedCase(t *testing.T, seed uint64) (*synth.Result, *Judge, *correction.HoldoutResult, *correction.HoldoutResult) {
	t.Helper()
	p := synth.PaperDefaults()
	p.N = 1000
	p.Attrs = 12
	p.NumRules = 1
	p.MinLen, p.MaxLen = 3, 3
	p.MinCvg, p.MaxCvg = 300, 300
	p.MinConf, p.MaxConf = 0.95, 0.95
	p.Seed = seed
	whole, first, second, err := synth.GeneratePaired(p)
	if err != nil {
		t.Fatal(err)
	}
	judge := NewJudge(whole.Data, whole.Rules, 0.05)
	hres, err := correction.Holdout(first, second, correction.HoldoutConfig{
		MinSupExplore: 50, Alpha: 0.05, Policy: mining.PaperPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	hresFDR, err := correction.Holdout(first, second, correction.HoldoutConfig{
		MinSupExplore: 50, Alpha: 0.05, UseFDR: true, Policy: mining.PaperPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return whole, judge, hres, hresFDR
}

func TestEvaluateHoldoutDetectsEmbedded(t *testing.T) {
	whole, judge, hres, _ := pairedCase(t, 31)
	first, _ := whole.Data.SplitHalves()
	ev := judge.EvaluateHoldout(first, hres)
	if ev.RulesTested != hres.NumExploreTested {
		t.Errorf("RulesTested = %d, want %d", ev.RulesTested, hres.NumExploreTested)
	}
	if ev.NumSignificant != len(hres.Outcome.Significant) {
		t.Errorf("NumSignificant mismatch")
	}
	if ev.Detected != 1 {
		t.Errorf("embedded rule not detected by holdout (detected=%d of %d significant)",
			ev.Detected, ev.NumSignificant)
	}
	// A conf-0.95 embedding skews the class balance of the UNCOVERED
	// region (picking 285 class-c records into the coverage depletes c
	// elsewhere), spawning rules that are genuinely significant on this
	// dataset but count as false positives under §5.2 — the same artefact
	// behind the paper's Fig 8(b) FWER climb. So we don't assert FDR ≈ 0
	// here; we assert holdout is no worse than applying no correction.
	all := make([]int, len(hres.Candidates))
	for i := range all {
		all[i] = i
	}
	rawEv := judge.EvaluateHoldout(first, &correction.HoldoutResult{
		NumExploreTested: hres.NumExploreTested,
		Candidates:       hres.Candidates,
		Outcome:          &correction.Outcome{Significant: all},
	})
	if ev.FalsePositives > rawEv.FalsePositives {
		t.Errorf("holdout produced %d FPs, more than the uncorrected %d",
			ev.FalsePositives, rawEv.FalsePositives)
	}
}

func TestEvaluateHoldoutFDRVariant(t *testing.T) {
	whole, judge, _, hresFDR := pairedCase(t, 32)
	first, _ := whole.Data.SplitHalves()
	ev := judge.EvaluateHoldout(first, hresFDR)
	if ev.Detected != 1 {
		t.Errorf("embedded rule not detected under HD_BH")
	}
}

func TestRawOfPattern(t *testing.T) {
	p := synth.PaperDefaults()
	p.N = 200
	p.Attrs = 6
	p.NumRules = 1
	p.MinLen, p.MaxLen = 2, 2
	p.MinCvg, p.MaxCvg = 40, 40
	p.MinConf, p.MaxConf = 1, 1
	p.Seed = 33
	res, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	rule := res.Rules[0]
	raw := RawOfPattern(res.Data, rule.Attrs, rule.Vals, rule.Class)
	if raw.Coverage < 40 {
		t.Errorf("coverage %d below embedded 40", raw.Coverage)
	}
	if raw.Support > raw.Coverage {
		t.Error("support exceeds coverage")
	}
	// Confidence 1.0 embedding: every embedded record is in class.
	if raw.Support < 40 {
		t.Errorf("support %d below embedded in-class 40", raw.Support)
	}
	if len(raw.Tids) != raw.Coverage {
		t.Error("tids inconsistent with coverage")
	}
}
