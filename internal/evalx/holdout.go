package evalx

import (
	"repro/internal/correction"
	"repro/internal/dataset"
	"repro/internal/intset"
	"repro/internal/mining"
)

// RawRule is the representation-independent form the judge actually needs:
// the rule's record set on the WHOLE dataset, its class, and its
// whole-dataset coverage/support. Tree-mined rules and holdout candidates
// both reduce to it.
type RawRule struct {
	Tids     []uint32
	Class    int32
	Coverage int
	Support  int
}

// rawOf converts a tree-mined rule.
func rawOf(r *mining.Rule) RawRule {
	return RawRule{
		Tids:     r.Node.MaterializeTids(),
		Class:    r.Class,
		Coverage: r.Coverage,
		Support:  r.Support,
	}
}

// RawOfPattern scans data for the records containing the pattern and
// builds the raw rule for judging.
func RawOfPattern(data *dataset.Dataset, attrs []int, vals []int32, class int32) RawRule {
	raw := RawRule{Class: class}
	for r := 0; r < data.NumRecords(); r++ {
		if data.ContainsPattern(r, attrs, vals) {
			raw.Tids = append(raw.Tids, uint32(r))
			if data.Labels[r] == class {
				raw.Support++
			}
		}
	}
	raw.Coverage = len(raw.Tids)
	return raw
}

// EvaluateHoldout judges a holdout outcome against the embedded rules.
// explore is the exploratory half the candidates were mined on (used only
// to identify the embedded rule among candidates by exploratory record-set
// equality); false positives are judged on the whole dataset like every
// other method.
func (j *Judge) EvaluateHoldout(explore *dataset.Dataset, res *correction.HoldoutResult) DatasetEval {
	ev := DatasetEval{
		RulesTested:    res.NumExploreTested,
		NumSignificant: len(res.Outcome.Significant),
		Embedded:       len(j.embedded),
	}

	// Exploratory record sets of the embedded patterns, for detection.
	embExp := make([][]uint32, len(j.embedded))
	for t := range j.embedded {
		for r := 0; r < explore.NumRecords(); r++ {
			if explore.ContainsPattern(r, j.embedded[t].Attrs, j.embedded[t].Vals) {
				embExp[t] = append(embExp[t], uint32(r))
			}
		}
	}

	detected := make([]bool, len(j.embedded))
	for _, i := range res.Outcome.Significant {
		c := &res.Candidates[i]
		// Detection: the candidate pattern occupies exactly the embedded
		// pattern's exploratory records (the miner represents the
		// embedded pattern by its exploratory closure) with the right
		// class.
		isEmb := false
		expTids := exploreTids(explore, c)
		for t := range j.embedded {
			if c.Class == j.embedded[t].Class && intset.Equal(expTids, embExp[t]) {
				detected[t] = true
				isEmb = true
			}
		}
		if isEmb {
			continue
		}
		raw := RawOfPattern(j.data, c.Attrs, c.Vals, c.Class)
		if j.isFalsePositiveRaw(raw) {
			ev.FalsePositives++
		}
	}
	for _, d := range detected {
		if d {
			ev.Detected++
		}
	}
	return ev
}

// exploreTids returns the candidate pattern's record set on the
// exploratory half.
func exploreTids(explore *dataset.Dataset, c *correction.HoldoutRule) []uint32 {
	var tids []uint32
	for r := 0; r < explore.NumRecords(); r++ {
		if explore.ContainsPattern(r, c.Attrs, c.Vals) {
			tids = append(tids, uint32(r))
		}
	}
	return tids
}
