package experiments

import (
	"strconv"
	"testing"
)

func TestExtRedundancyShape(t *testing.T) {
	o := Options{Datasets: 3, Seed: 1}
	f, err := ExtRedundancy(o)
	if err != nil {
		t.Fatal(err)
	}
	tested := f.Series[0]
	power := f.Series[1]
	// Tested count decreases monotonically with epsilon; power never
	// decreases (the representative inherits the folded rules' evidence
	// while the cut-off loosens).
	for i := 1; i < len(tested.Y); i++ {
		if tested.Y[i] > tested.Y[i-1] {
			t.Errorf("tested count rose with epsilon: %v", tested.Y)
		}
		if power.Y[i] < power.Y[i-1]-1e-9 {
			t.Errorf("power fell with epsilon: %v", power.Y)
		}
	}
}

func TestExtTestKinds(t *testing.T) {
	o := Options{Seed: 1}
	tab, err := ExtTestKinds(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(tab.Rows))
	}
	// All three tests see the same tested count.
	for _, row := range tab.Rows[1:] {
		if row[1] != tab.Rows[0][1] {
			t.Error("tested counts differ across test kinds")
		}
	}
	// Mid-p is less conservative than Fisher under BC.
	fisherBC, _ := strconv.Atoi(tab.Rows[0][2])
	midBC, _ := strconv.Atoi(tab.Rows[1][2])
	if midBC < fisherBC {
		t.Errorf("mid-p BC count %d < fisher %d", midBC, fisherBC)
	}
}

func TestExtBufferBudget(t *testing.T) {
	o := Options{Seed: 1}
	tab, err := ExtBufferBudget(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tab.Rows))
	}
	// Larger budgets can only raise max_sup and static hits.
	prevMaxSup, prevHits := -1, int64(-1)
	for _, row := range tab.Rows {
		ms, _ := strconv.Atoi(row[1])
		hits, _ := strconv.ParseInt(row[2], 10, 64)
		if ms < prevMaxSup {
			t.Errorf("max_sup fell as budget grew: %v", row)
		}
		if hits < prevHits {
			t.Errorf("static hits fell as budget grew: %v", row)
		}
		prevMaxSup, prevHits = ms, hits
	}
	// The paper's 16 MB budget should eliminate dynamic rebuilds entirely
	// on this workload.
	last := tab.Rows[len(tab.Rows)-1]
	if last[5] != "0" {
		t.Errorf("16MB budget still has %s dynamic builds", last[5])
	}
}
