package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/evalx"
	"repro/internal/synth"
)

// Method labels (Table 3 of the paper).
const (
	MNone     = "No correction"
	MBC       = "BC"
	MBH       = "BH"
	MPermFWER = "Perm_FWER"
	MPermFDR  = "Perm_FDR"
	MHDBC     = "HD_BC"
	MHDBH     = "HD_BH"
	MRHBC     = "RH_BC"
	MRHBH     = "RH_BH"
)

// batteryConfig describes one Monte-Carlo point: a synthetic data
// configuration evaluated by all correction methods over many generated
// datasets.
type batteryConfig struct {
	params      synth.Params // per-dataset generator parameters (Seed is re-derived)
	minSupWhole int          // min_sup on the whole dataset
	alpha       float64
	datasets    int
	perms       int
	seed        uint64
	workers     int
	methods     []string // which methods to run (nil = all)
}

// batteryResult aggregates per-method evaluation plus tested-rule counts.
type batteryResult struct {
	byMethod map[string]evalx.Batch
	// Average #rules tested on the whole dataset / the holdout phases.
	testedWhole, testedHDExp, testedHDEval float64
	testedRHExp, testedRHEval              float64
}

func (b *batteryConfig) wants(m string) bool {
	if len(b.methods) == 0 {
		return true
	}
	for _, x := range b.methods {
		if x == m {
			return true
		}
	}
	return false
}

// runBattery generates cfg.datasets datasets, runs every requested
// correction method on each, judges the outcomes per §5.2, and aggregates.
// Datasets are processed in parallel; permutations within a dataset run
// single-threaded in that case (the worker pool is the dataset loop).
func runBattery(cfg batteryConfig, o Options) (*batteryResult, error) {
	results := make([]perDataset, cfg.datasets)

	par := cfg.workers
	if par < 1 {
		par = 1
	}
	if par > cfg.datasets {
		par = cfg.datasets
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for di := 0; di < cfg.datasets; di++ {
		wg.Add(1)
		go func(di int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[di] = runOneDataset(cfg, di)
		}(di)
	}
	wg.Wait()

	out := &batteryResult{byMethod: make(map[string]evalx.Batch)}
	perMethod := make(map[string][]evalx.DatasetEval)
	for di := range results {
		if results[di].err != nil {
			return nil, fmt.Errorf("dataset %d: %w", di, results[di].err)
		}
		for m, ev := range results[di].evals {
			perMethod[m] = append(perMethod[m], ev)
		}
		out.testedWhole += results[di].tw / float64(cfg.datasets)
		out.testedHDExp += results[di].the / float64(cfg.datasets)
		out.testedHDEval += results[di].thev / float64(cfg.datasets)
		out.testedRHExp += results[di].tre / float64(cfg.datasets)
		out.testedRHEval += results[di].trev / float64(cfg.datasets)
	}
	for m, evs := range perMethod {
		out.byMethod[m] = evalx.Aggregate(evs)
	}
	return out, nil
}

// perDataset carries one generated dataset's evaluation across methods.
type perDataset struct {
	evals                    map[string]evalx.DatasetEval
	tw, the, thev, tre, trev float64
	err                      error
}

// methodSpec maps one battery method label onto the shared pipeline
// config that produces it.
type methodSpec struct {
	method string
	cfg    core.Config
}

// batterySpecs builds the pipeline configs of the requested methods. The
// no-correction run always rides along (first) because every battery
// reports the whole-dataset tested-rule count (Figs 6, 7 and 11 plot it);
// it shares the batch's single mine and its correction is free.
func batterySpecs(cfg batteryConfig, genSeed uint64) []methodSpec {
	base := core.Config{
		MinSup:       cfg.minSupWhole,
		Alpha:        cfg.alpha,
		MaxNodes:     2_000_000,
		Permutations: cfg.perms,
		Workers:      1, // parallelism lives at the dataset level here
	}
	specs := []methodSpec{{MNone, base}}
	add := func(m string, mut func(c *core.Config)) {
		if !cfg.wants(m) {
			return
		}
		c := base
		mut(&c)
		specs = append(specs, methodSpec{m, c})
	}
	add(MBC, func(c *core.Config) { c.Method = core.MethodDirect; c.Control = core.ControlFWER })
	add(MBH, func(c *core.Config) { c.Method = core.MethodDirect; c.Control = core.ControlFDR })
	add(MPermFWER, func(c *core.Config) {
		c.Method = core.MethodPermutation
		c.Control = core.ControlFWER
		c.Seed = genSeed ^ 0xa5a5a5a5
	})
	add(MPermFDR, func(c *core.Config) {
		c.Method = core.MethodPermutation
		c.Control = core.ControlFDR
		c.Seed = genSeed ^ 0xa5a5a5a5
	})
	add(MHDBC, func(c *core.Config) { c.Method = core.MethodHoldout; c.Control = core.ControlFWER })
	add(MHDBH, func(c *core.Config) { c.Method = core.MethodHoldout; c.Control = core.ControlFDR })
	add(MRHBC, func(c *core.Config) {
		c.Method = core.MethodHoldout
		c.Control = core.ControlFWER
		c.HoldoutRandom = true
		c.Seed = genSeed ^ 0x5a5a5a5a
	})
	add(MRHBH, func(c *core.Config) {
		c.Method = core.MethodHoldout
		c.Control = core.ControlFDR
		c.HoldoutRandom = true
		c.Seed = genSeed ^ 0x5a5a5a5a
	})
	return specs
}

// runOneDataset generates dataset di of the battery and evaluates all
// requested methods on it through one shared mining Session: every
// whole-dataset method reuses a single encode/mine/score, and the holdout
// variants run through the same pipeline instead of private plumbing.
func runOneDataset(cfg batteryConfig, di int) (res perDataset) {
	res.evals = make(map[string]evalx.DatasetEval)

	p := cfg.params
	p.Seed = cfg.seed + uint64(di)*0x9e3779b97f4a7c15 + 1
	whole, first, _, err := synth.GeneratePaired(p)
	if err != nil {
		res.err = err
		return res
	}
	judge := evalx.NewJudge(whole.Data, whole.Rules, cfg.alpha)

	specs := batterySpecs(cfg, p.Seed)
	cfgs := make([]core.Config, len(specs))
	for i := range specs {
		cfgs[i] = specs[i].cfg
	}
	sess := core.NewSession(whole.Data)
	outs, err := sess.RunBatch(context.Background(), cfgs)
	if err != nil {
		res.err = err
		return res
	}

	var rexp *dataset.Dataset // random-holdout exploratory half, for judging
	for i, sp := range specs {
		out := outs[i]
		switch sp.method {
		case MHDBC, MHDBH:
			res.evals[sp.method] = judge.EvaluateHoldout(first, out.Holdout)
			res.the = float64(out.Holdout.NumExploreTested)
			res.thev = float64(len(out.Holdout.Candidates))
		case MRHBC, MRHBH:
			if rexp == nil {
				// The same split the pipeline's random holdout performed
				// (both derive it from Config.Seed).
				rexp, _ = whole.Data.RandomSplit(sp.cfg.Seed)
			}
			res.evals[sp.method] = judge.EvaluateHoldout(rexp, out.Holdout)
			res.tre = float64(out.Holdout.NumExploreTested)
			res.trev = float64(len(out.Holdout.Candidates))
		default:
			if sp.method == MNone {
				res.tw = float64(out.NumTested)
				if !cfg.wants(MNone) {
					continue
				}
			}
			res.evals[sp.method] = judge.Evaluate(out.Tested, out.Outcome.Significant)
		}
	}
	return res
}

// embeddedRuleParams returns the §5.5 generator configuration: N=2000,
// A=40, one embedded rule of coverage 400 at the given confidence.
func embeddedRuleParams(conf float64) synth.Params {
	p := synth.PaperDefaults()
	p.N = 2000
	p.Attrs = 40
	p.NumRules = 1
	p.MinCvg, p.MaxCvg = 400, 400
	p.MinConf, p.MaxConf = conf, conf
	return p
}

// randomParams returns the §5.4 configuration: N=2000, A=40, no rules.
func randomParams() synth.Params {
	p := synth.PaperDefaults()
	p.N = 2000
	p.Attrs = 40
	return p
}

// confGrid is the §5.5 x-axis: conf(Rt) from 0.55 to 0.70.
func confGrid(full bool) []float64 {
	if full {
		return []float64{0.55, 0.575, 0.60, 0.625, 0.65, 0.675, 0.70}
	}
	return []float64{0.55, 0.60, 0.65, 0.70}
}

// minSupGrid6 is the Fig 6 x-axis (random datasets).
func minSupGrid6(full bool) []int {
	if full {
		return []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	}
	return []int{200, 400, 700, 1000}
}

// minSupGrid12 is the Figs 11–13 x-axis (embedded rule, conf 0.60).
func minSupGrid12(full bool) []int {
	if full {
		return []int{100, 150, 200, 250, 300, 350, 400}
	}
	return []int{100, 200, 300, 400}
}

// Fig6 reproduces Figure 6: FWER, #rules tested and #false positives on
// pure-random datasets (no embedded rules) as min_sup varies.
func Fig6(o Options) ([]*Figure, error) {
	grid := minSupGrid6(o.Full)
	methods := []string{MNone, MBC, MBH, MPermFWER, MPermFDR, MHDBC, MHDBH}

	fwer := &Figure{ID: "fig6a", Title: "FWER on random datasets (N=2000, A=40)", XLabel: "minimum support", YLabel: "FWER"}
	tested := &Figure{ID: "fig6b", Title: "#rules tested on random datasets", XLabel: "minimum support", YLabel: "average number of rules tested", LogY: true}
	fps := &Figure{ID: "fig6c", Title: "#false positives on random datasets", XLabel: "minimum support", YLabel: "average number of significant rules", LogY: true}

	fwerS := map[string]*Series{}
	fpS := map[string]*Series{}
	for _, m := range methods {
		fwerS[m] = &Series{Label: m}
		fpS[m] = &Series{Label: m}
	}
	testedWhole := &Series{Label: "whole dataset"}
	testedExp := &Series{Label: "HD_exploratory"}
	testedEval := &Series{Label: "HD_evaluation"}

	for _, ms := range grid {
		o.progress("fig6: min_sup=%d", ms)
		res, err := runBattery(batteryConfig{
			params:      randomParams(),
			minSupWhole: ms,
			alpha:       0.05,
			datasets:    o.datasets(),
			perms:       o.perms(),
			seed:        o.Seed + uint64(ms),
			workers:     o.workers(),
			methods:     methods,
		}, o)
		if err != nil {
			return nil, err
		}
		x := float64(ms)
		for _, m := range methods {
			b := res.byMethod[m]
			fwerS[m].X = append(fwerS[m].X, x)
			fwerS[m].Y = append(fwerS[m].Y, b.FWER)
			fpS[m].X = append(fpS[m].X, x)
			fpS[m].Y = append(fpS[m].Y, b.AvgFalsePositives)
		}
		testedWhole.X = append(testedWhole.X, x)
		testedWhole.Y = append(testedWhole.Y, res.testedWhole)
		testedExp.X = append(testedExp.X, x)
		testedExp.Y = append(testedExp.Y, res.testedHDExp)
		testedEval.X = append(testedEval.X, x)
		testedEval.Y = append(testedEval.Y, res.testedHDEval)
	}
	for _, m := range methods {
		fwer.Series = append(fwer.Series, *fwerS[m])
		fps.Series = append(fps.Series, *fpS[m])
	}
	tested.Series = []Series{*testedWhole, *testedExp, *testedEval}
	return []*Figure{fwer, tested, fps}, nil
}

// powerFigures is the shared driver for Figures 8 and 10 (x = confidence)
// and Figures 12 and 13 (x = min_sup): power, error rate, #false
// positives.
func powerFigures(o Options, id, errName string, fdr bool, xs []float64, mk func(x float64) (synth.Params, int)) ([]*Figure, error) {
	var methods []string
	if fdr {
		methods = []string{MNone, MBH, MPermFDR, MHDBH, MRHBH}
	} else {
		methods = []string{MNone, MBC, MPermFWER, MHDBC, MRHBC}
	}
	power := &Figure{ID: id + "a", Title: "power when controlling " + errName, XLabel: "x", YLabel: "power"}
	errFig := &Figure{ID: id + "b", Title: errName, XLabel: "x", YLabel: errName}
	fps := &Figure{ID: id + "c", Title: "#false positives", XLabel: "x", YLabel: "average number of false positives", LogY: true}

	powerS := map[string]*Series{}
	errS := map[string]*Series{}
	fpS := map[string]*Series{}
	for _, m := range methods {
		powerS[m] = &Series{Label: m}
		errS[m] = &Series{Label: m}
		fpS[m] = &Series{Label: m}
	}

	for _, x := range xs {
		params, minSup := mk(x)
		o.progress("%s: x=%g", id, x)
		res, err := runBattery(batteryConfig{
			params:      params,
			minSupWhole: minSup,
			alpha:       0.05,
			datasets:    o.datasets(),
			perms:       o.perms(),
			seed:        o.Seed + uint64(x*1000),
			workers:     o.workers(),
			methods:     methods,
		}, o)
		if err != nil {
			return nil, err
		}
		for _, m := range methods {
			b := res.byMethod[m]
			powerS[m].X = append(powerS[m].X, x)
			powerS[m].Y = append(powerS[m].Y, b.Power)
			errS[m].X = append(errS[m].X, x)
			e := b.FWER
			if fdr {
				e = b.FDR
			}
			errS[m].Y = append(errS[m].Y, e)
			fpS[m].X = append(fpS[m].X, x)
			fpS[m].Y = append(fpS[m].Y, b.AvgFalsePositives)
		}
	}
	for _, m := range methods {
		power.Series = append(power.Series, *powerS[m])
		errFig.Series = append(errFig.Series, *errS[m])
		fps.Series = append(fps.Series, *fpS[m])
	}
	return []*Figure{power, errFig, fps}, nil
}

// Fig8 reproduces Figure 8: power / FWER / #FP vs conf(Rt) with FWER
// controlled at 5%; min_sup=150, rule coverage 400, N=2000, A=40.
func Fig8(o Options) ([]*Figure, error) {
	figs, err := powerFigures(o, "fig8", "FWER", false, confGrid(o.Full),
		func(conf float64) (synth.Params, int) { return embeddedRuleParams(conf), 150 })
	if err != nil {
		return nil, err
	}
	for _, f := range figs {
		f.XLabel = "confidence of the embedded rule"
	}
	return figs, nil
}

// Fig10 reproduces Figure 10: power / FDR / #FP vs conf(Rt) with FDR
// controlled at 5%.
func Fig10(o Options) ([]*Figure, error) {
	figs, err := powerFigures(o, "fig10", "FDR", true, confGrid(o.Full),
		func(conf float64) (synth.Params, int) { return embeddedRuleParams(conf), 150 })
	if err != nil {
		return nil, err
	}
	for _, f := range figs {
		f.XLabel = "confidence of the embedded rule"
	}
	return figs, nil
}

// Fig12 reproduces Figure 12: power / FWER / #FP vs min_sup at
// conf(Rt)=0.60.
func Fig12(o Options) ([]*Figure, error) {
	var xs []float64
	for _, ms := range minSupGrid12(o.Full) {
		xs = append(xs, float64(ms))
	}
	figs, err := powerFigures(o, "fig12", "FWER", false, xs,
		func(x float64) (synth.Params, int) { return embeddedRuleParams(0.60), int(x) })
	if err != nil {
		return nil, err
	}
	for _, f := range figs {
		f.XLabel = "minimum support"
	}
	return figs, nil
}

// Fig13 reproduces Figure 13: power / FDR / #FP vs min_sup at
// conf(Rt)=0.60.
func Fig13(o Options) ([]*Figure, error) {
	var xs []float64
	for _, ms := range minSupGrid12(o.Full) {
		xs = append(xs, float64(ms))
	}
	figs, err := powerFigures(o, "fig13", "FDR", true, xs,
		func(x float64) (synth.Params, int) { return embeddedRuleParams(0.60), int(x) })
	if err != nil {
		return nil, err
	}
	for _, f := range figs {
		f.XLabel = "minimum support"
	}
	return figs, nil
}

// testedFigure is the shared driver for Figures 7 and 11: the number of
// rules tested on the whole dataset and on the holdout phases.
func testedFigure(o Options, id, xlabel string, xs []float64, mk func(x float64) (synth.Params, int)) (*Figure, error) {
	fig := &Figure{ID: id, Title: "number of rules tested", XLabel: xlabel,
		YLabel: "average number of rules tested", LogY: true}
	whole := &Series{Label: "whole dataset"}
	hdExp := &Series{Label: "HD_exploratory"}
	rhExp := &Series{Label: "RH_exploratory"}
	hdEval := &Series{Label: "HD_evaluation"}
	rhEval := &Series{Label: "RH_evaluation"}

	for _, x := range xs {
		params, minSup := mk(x)
		o.progress("%s: x=%g", id, x)
		res, err := runBattery(batteryConfig{
			params:      params,
			minSupWhole: minSup,
			alpha:       0.05,
			datasets:    o.datasets(),
			perms:       1, // permutations not needed here
			seed:        o.Seed + uint64(x*1000),
			workers:     o.workers(),
			methods:     []string{MHDBC, MRHBC},
		}, o)
		if err != nil {
			return nil, err
		}
		whole.X = append(whole.X, x)
		whole.Y = append(whole.Y, res.testedWhole)
		hdExp.X = append(hdExp.X, x)
		hdExp.Y = append(hdExp.Y, res.testedHDExp)
		rhExp.X = append(rhExp.X, x)
		rhExp.Y = append(rhExp.Y, res.testedRHExp)
		hdEval.X = append(hdEval.X, x)
		hdEval.Y = append(hdEval.Y, res.testedHDEval)
		rhEval.X = append(rhEval.X, x)
		rhEval.Y = append(rhEval.Y, res.testedRHEval)
	}
	fig.Series = []Series{*whole, *hdExp, *rhExp, *hdEval, *rhEval}
	return fig, nil
}

// Fig7 reproduces Figure 7: #rules tested vs conf(Rt); min_sup=150.
func Fig7(o Options) (*Figure, error) {
	return testedFigure(o, "fig7", "confidence of the embedded rule", confGrid(o.Full),
		func(conf float64) (synth.Params, int) { return embeddedRuleParams(conf), 150 })
}

// Fig11 reproduces Figure 11: #rules tested vs min_sup; conf(Rt)=0.60.
func Fig11(o Options) (*Figure, error) {
	var xs []float64
	for _, ms := range minSupGrid12(o.Full) {
		xs = append(xs, float64(ms))
	}
	return testedFigure(o, "fig11", "minimum support", xs,
		func(x float64) (synth.Params, int) { return embeddedRuleParams(0.60), int(x) })
}
