package experiments

import (
	"fmt"

	"repro/internal/stats"
)

// Fig1 reproduces Figure 1: the two-tailed Fisher p-value of a rule
// R : X ⇒ c as a function of its confidence, for several coverages, on a
// dataset with 1000 records of which 500 carry class c. It is a
// closed-form computation (no data involved).
func Fig1() *Figure {
	const n, nc = 1000, 500
	h := stats.NewHypergeom(n, nc, nil)
	fig := &Figure{
		ID:     "fig1",
		Title:  "p-values of rule X => c under different supp(X) and conf(R); #records=1000, supp(c)=500",
		XLabel: "confidence",
		YLabel: "p-value",
		LogY:   true,
	}
	coverages := []int{5, 10, 20, 40, 70, 100}
	// Confidence grid 0.5..1.0.
	var confs []float64
	for c := 0.50; c <= 1.0000001; c += 0.02 {
		confs = append(confs, c)
	}
	for _, sx := range coverages {
		s := Series{Label: fmt.Sprintf("supp(X)=%d", sx)}
		for _, conf := range confs {
			k := int(conf*float64(sx) + 0.5)
			lo, hi := h.Bounds(sx)
			if k < lo {
				k = lo
			}
			if k > hi {
				k = hi
			}
			s.X = append(s.X, conf)
			s.Y = append(s.Y, h.FisherTwoTailed(k, sx))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig2 reproduces Figure 2: the hypergeometric terms H(k; 20, 11, 6), the
// p-value buffer contents after the two-ends-inward sum-up, and the sum-up
// order, exactly as the paper's worked example.
func Fig2() *Table {
	h := stats.NewHypergeom(20, 11, nil)
	buf := h.BuildPBuffer(6)
	// Recover the sum-up order: ranks of H ascending.
	type kh struct {
		k int
		h float64
	}
	terms := make([]kh, 0, 7)
	for k := 0; k <= 6; k++ {
		terms = append(terms, kh{k, h.PMF(k, 6)})
	}
	// Selection-sort indices by ascending H to get the order.
	order := make([]int, len(terms))
	used := make([]bool, len(terms))
	for i := range order {
		best := -1
		for j := range terms {
			if used[j] {
				continue
			}
			if best < 0 || terms[j].h < terms[best].h {
				best = j
			}
		}
		used[best] = true
		order[i] = best
	}
	rank := make([]int, len(terms))
	for i, k := range order {
		rank[k] = i
	}

	t := &Table{
		ID:      "fig2",
		Title:   "p-value buffer B_supp(X) and its calculation; n=20, supp(c)=11, supp(X)=6",
		Headers: []string{"k", "H(k;20,11,6)", "p(k;20,11,6)", "sum-up order"},
	}
	for k := 0; k <= 6; k++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.7g", h.PMF(k, 6)),
			fmt.Sprintf("%.7g", buf.PValue(k)),
			fmt.Sprintf("%d", rank[k]),
		})
	}
	return t
}

// Fig9 reproduces Figure 9: p-value vs confidence for an embedded rule at
// full size (N=2000, coverage 400) and at holdout size (N=1000, coverage
// 200), plus the supp(X)=50 curve, with supp(c) = N/2 — the halving of
// coverage raises p-values by orders of magnitude, explaining the holdout
// approach's power loss.
func Fig9() *Figure {
	fig := &Figure{
		ID:     "fig9",
		Title:  "p-values under different N, coverage(Rt) and conf(Rt); Nc=N/2",
		XLabel: "confidence",
		YLabel: "p-value",
		LogY:   true,
	}
	var confs []float64
	for c := 0.50; c <= 0.7500001; c += 0.01 {
		confs = append(confs, c)
	}
	curve := func(label string, n, cvg int) {
		h := stats.NewHypergeom(n, n/2, nil)
		s := Series{Label: label}
		for _, conf := range confs {
			k := int(conf*float64(cvg) + 0.5)
			lo, hi := h.Bounds(cvg)
			if k < lo {
				k = lo
			}
			if k > hi {
				k = hi
			}
			s.X = append(s.X, conf)
			s.Y = append(s.Y, h.FisherTwoTailed(k, cvg))
		}
		fig.Series = append(fig.Series, s)
	}
	curve("supp(X)=50, supp(c)=#records/2", 2000, 50)
	curve("N=2000, rule_cvg=400", 2000, 400)
	curve("N=1000, rule_cvg=200", 1000, 200)
	return fig
}
