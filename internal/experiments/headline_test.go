package experiments

import "testing"

// TestPaperHeadlineOrdering is an executable summary of the paper's §7
// findings on a small Monte-Carlo batch: in terms of power,
// permutation >= direct >= holdout, and no correction detects everything
// at the price of FWER == 1.
func TestPaperHeadlineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo batch")
	}
	cfg := batteryConfig{
		params:      embeddedRuleParams(0.62),
		minSupWhole: 150,
		alpha:       0.05,
		datasets:    6,
		perms:       80,
		seed:        12345,
		workers:     8,
		methods:     []string{MNone, MBC, MPermFWER, MHDBC},
	}
	res, err := runBattery(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	none := res.byMethod[MNone]
	bc := res.byMethod[MBC]
	perm := res.byMethod[MPermFWER]
	hd := res.byMethod[MHDBC]

	if none.Power < 0.999 {
		t.Errorf("no-correction power = %g, want 1", none.Power)
	}
	if none.FWER < 0.999 {
		t.Errorf("no-correction FWER = %g, want 1 (spurious rules everywhere)", none.FWER)
	}
	// §7: permutation >= direct >= holdout in power. Allow equality; with
	// 6 datasets the granularity is 1/6.
	if perm.Power+1e-9 < bc.Power {
		t.Errorf("power ordering violated: permutation %g < direct %g", perm.Power, bc.Power)
	}
	if bc.Power+1e-9 < hd.Power {
		t.Errorf("power ordering violated: direct %g < holdout %g", bc.Power, hd.Power)
	}
	// All corrected methods control FWER far below the uncorrected 1.0.
	for name, b := range map[string]float64{"BC": bc.FWER, "Perm": perm.FWER, "HD": hd.FWER} {
		if b > 0.67 {
			t.Errorf("%s FWER = %g, not controlled", name, b)
		}
	}
}
