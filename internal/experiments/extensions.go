package experiments

import (
	"fmt"

	"repro/internal/correction"
	"repro/internal/dataset"
	"repro/internal/evalx"
	"repro/internal/mining"
	"repro/internal/redundancy"
	"repro/internal/stats"
	"repro/internal/synth"
)

// ExtRedundancy is the ablation for the §7 future-work redundancy
// reduction: on datasets with one embedded rule at a marginal confidence,
// sweep the folding tolerance epsilon and report the tested-rule count and
// the Bonferroni power. Power here counts the embedded rule as detected
// when its REPRESENTATIVE under the reduction is declared significant —
// after folding, the kept sub-pattern carries the embedded rule's test.
// The paper predicts that shrinking the tested set raises the power of the
// correction approaches; this experiment quantifies it.
func ExtRedundancy(o Options) (*Figure, error) {
	fig := &Figure{
		ID:     "ext-redundancy",
		Title:  "redundancy reduction ablation (1 embedded rule, len 10, conf 0.60, min_sup 150)",
		XLabel: "epsilon",
		YLabel: "see series labels",
	}
	epsilons := []float64{0, 0.02, 0.05, 0.10, 0.20}
	tested := &Series{Label: "avg rules tested"}
	power := &Series{Label: "BC power (representative)"}

	for _, eps := range epsilons {
		o.progress("ext-redundancy: eps=%g", eps)
		var testedSum, detected float64
		for di := 0; di < o.datasets(); di++ {
			p := embeddedRuleParams(0.60)
			// A long embedded pattern spawns many near-duplicate closed
			// sub-patterns — the redundancy the reduction targets.
			p.MinLen, p.MaxLen = 10, 10
			p.Seed = o.Seed + uint64(di)*31 + 7
			res, err := synth.Generate(p)
			if err != nil {
				return nil, err
			}
			enc := dataset.Encode(res.Data)
			tree, err := mining.MineClosed(enc, mining.Options{MinSup: 150, StoreDiffsets: true, Workers: o.workers()})
			if err != nil {
				return nil, err
			}
			rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
			if err != nil {
				return nil, err
			}
			// Locate the embedded rule in the full rule set.
			judge := evalx.NewJudge(res.Data, res.Rules, 0.05)
			embIdx := -1
			for i := range rules {
				if judge.IsEmbedded(&rules[i], 0) {
					embIdx = i
					break
				}
			}
			red, err := redundancy.Reduce(tree, rules, eps)
			if err != nil {
				return nil, err
			}
			testedSum += float64(red.NumKept())
			ps := make([]float64, red.NumKept())
			for k := range red.KeptRules {
				ps[k] = red.KeptRules[k].P
			}
			outcome := correction.Bonferroni(ps, red.NumKept(), 0.05)
			if embIdx >= 0 {
				rep := red.Representative[embIdx]
				// Position of the representative within the kept set.
				for k, orig := range red.KeptIndex {
					if orig == rep && outcome.IsSignificant(k) {
						detected++
						break
					}
				}
			}
		}
		n := float64(o.datasets())
		tested.X = append(tested.X, eps)
		tested.Y = append(tested.Y, testedSum/n)
		power.X = append(power.X, eps)
		power.Y = append(power.Y, detected/n)
	}
	fig.Series = []Series{*tested, *power}
	return fig, nil
}

// ExtTestKinds compares the three significance tests (Fisher exact, mid-p,
// χ²) on one german-style workload: tested counts are identical by
// construction; the interesting columns are the Bonferroni-significant
// counts and the cut-off p-values each test family induces.
func ExtTestKinds(o Options) (*Table, error) {
	d, err := loadGerman(o)
	if err != nil {
		return nil, err
	}
	enc := dataset.Encode(d)
	tree, err := mining.MineClosed(enc, mining.Options{MinSup: 60, StoreDiffsets: true, MaxNodes: 2_000_000, Workers: o.workers()})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-testkinds",
		Title:   "significance-test ablation on german (stand-in), min_sup=60, BC@5%",
		Headers: []string{"test", "rules tested", "BC significant", "BH significant", "min p"},
	}
	for _, kind := range []mining.TestKind{mining.TestFisher, mining.TestMidP, mining.TestChiSquare} {
		rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy, Test: kind})
		if err != nil {
			return nil, err
		}
		ps := make([]float64, len(rules))
		minP := 1.0
		for i := range rules {
			ps[i] = rules[i].P
			if ps[i] < minP {
				minP = ps[i]
			}
		}
		bc := correction.Bonferroni(ps, len(ps), 0.05)
		bh := correction.BenjaminiHochberg(ps, len(ps), 0.05)
		t.Rows = append(t.Rows, []string{
			kind.String(),
			fmt.Sprintf("%d", len(rules)),
			fmt.Sprintf("%d", len(bc.Significant)),
			fmt.Sprintf("%d", len(bh.Significant)),
			fmt.Sprintf("%.3g", minP),
		})
	}
	return t, nil
}

// ExtBufferBudget sweeps the static buffer byte budget and reports the
// derived max_sup together with the hit/build counters of a simulated
// lookup stream — the sizing analysis behind the paper's 16 MB choice.
func ExtBufferBudget(o Options) (*Table, error) {
	d, err := loadGerman(o)
	if err != nil {
		return nil, err
	}
	enc := dataset.Encode(d)
	tree, err := mining.MineClosed(enc, mining.Options{MinSup: 60, StoreDiffsets: true, MaxNodes: 2_000_000, Workers: o.workers()})
	if err != nil {
		return nil, err
	}
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ext-bufferbudget",
		Title:   "static buffer budget vs cache behaviour (german stand-in, min_sup=60)",
		Headers: []string{"budget", "max_sup", "static hits", "static builds", "dyn hits", "dyn builds"},
	}
	lf := stats.NewLogFact(enc.NumRecords)
	for _, budget := range []int{0, 64 << 10, 1 << 20, 16 << 20} {
		h := stats.NewHypergeom(enc.NumRecords, enc.ClassCounts[0], lf)
		maxSup := tree.MinSup - 1
		if budget > 0 {
			maxSup = stats.MaxSupForBudget(h, tree.MinSup, budget)
		}
		pool := stats.NewBufferPool(h, tree.MinSup, maxSup)
		// Replay the rule stream twice — the second pass is what a
		// permutation run looks like to the pool.
		for pass := 0; pass < 2; pass++ {
			for i := range rules {
				pool.PValue(rules[i].Coverage, rules[i].Support)
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", budget),
			fmt.Sprintf("%d", maxSup),
			fmt.Sprintf("%d", pool.StaticHits),
			fmt.Sprintf("%d", pool.StaticBuilds),
			fmt.Sprintf("%d", pool.DynHits),
			fmt.Sprintf("%d", pool.DynBuilds),
		})
	}
	return t, nil
}

func loadGerman(o Options) (*dataset.Dataset, error) {
	return loadUCI("german", o)
}
