package experiments

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/synth"
	"repro/internal/uci"
)

// pThresholds returns log-spaced p-value thresholds from 10^-lo to 1.
func pThresholds(loExp int) []float64 {
	var out []float64
	for e := -loExp; e <= 0; e++ {
		out = append(out, math.Pow(10, float64(e)))
	}
	return out
}

// minePValues mines d and returns the p-values of all tested rules.
func minePValues(d *dataset.Dataset, minSup int, maxNodes int, workers int) ([]float64, error) {
	enc := dataset.Encode(d)
	tree, err := mining.MineClosed(enc, mining.Options{
		MinSup:        minSup,
		StoreDiffsets: true,
		MaxNodes:      maxNodes,
		Workers:       workers,
	})
	if err != nil {
		return nil, err
	}
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
	if err != nil {
		return nil, err
	}
	ps := make([]float64, len(rules))
	for i := range rules {
		ps[i] = rules[i].P
	}
	return ps, nil
}

// cumulativeCounts returns, for each threshold, the number of p-values at
// or below it.
func cumulativeCounts(ps []float64, thresholds []float64) []float64 {
	out := make([]float64, len(thresholds))
	for _, p := range ps {
		for i, t := range thresholds {
			if p <= t {
				out[i]++
			}
		}
	}
	return out
}

// Fig3 reproduces Figure 3: the distribution of rule p-values on three
// datasets — pure random, one embedded rule of coverage 200, and one of
// coverage 400 (confidence 0.8; N=2000, A=40) — showing how a single
// embedded rule spawns many low-p by-product rules.
func Fig3(o Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig3",
		Title:  "Distribution of p-values; N=2000, A=40, conf(R)=0.8",
		XLabel: "p-value",
		YLabel: "number of rules with p-value <= x",
		LogY:   true,
	}
	thresholds := pThresholds(12)
	cases := []struct {
		label string
		cvg   int
	}{
		{"random", 0},
		{"supp(X)=200", 200},
		{"supp(X)=400", 400},
	}
	for ci, c := range cases {
		p := synth.PaperDefaults()
		p.N = 2000
		p.Attrs = 40
		p.Seed = o.Seed + uint64(ci) + 1
		if c.cvg > 0 {
			p.NumRules = 1
			p.MinCvg, p.MaxCvg = c.cvg, c.cvg
			p.MinConf, p.MaxConf = 0.8, 0.8
			// Fix the embedded pattern length so the two embedded-rule
			// curves differ only in coverage (the quantity Fig 3 varies);
			// a drawn length in [2,16] would swamp the comparison with
			// by-product-count noise.
			p.MinLen, p.MaxLen = 4, 4
			p.Seed = o.Seed + 1 // same base randomness for both curves
		}
		res, err := synth.Generate(p)
		if err != nil {
			return nil, err
		}
		ps, err := minePValues(res.Data, 100, 2_000_000, o.workers())
		if err != nil {
			return nil, err
		}
		s := Series{Label: c.label, X: thresholds, Y: cumulativeCounts(ps, thresholds)}
		fig.Series = append(fig.Series, s)
		o.progress("fig3: %s mined %d rules", c.label, len(ps))
	}
	return fig, nil
}

// loadUCI loads a stand-in dataset with the experiment seed.
func loadUCI(name string, o Options) (*dataset.Dataset, error) {
	return uci.Load(name, o.Seed+1)
}

// fig15MinSups gives each stand-in's min_sup in Figure 15.
var fig15MinSups = map[string]int{
	"adult": 1000, "german": 60, "hypo": 2000, "mushroom": 600,
}

// Fig15 reproduces Figure 15: the cumulative p-value distribution
// (fraction of rules with p <= x) on the four real-data stand-ins.
func Fig15(o Options) (*Figure, error) {
	fig := &Figure{
		ID:     "fig15",
		Title:  "Distribution of p-values on real-world datasets (stand-ins)",
		XLabel: "p-value",
		YLabel: "percentage of rules with p-value <= x",
	}
	thresholds := pThresholds(12)
	for _, name := range uci.Names() {
		d, err := uci.Load(name, o.Seed+1)
		if err != nil {
			return nil, err
		}
		ps, err := minePValues(d, fig15MinSups[name], 2_000_000, o.workers())
		if err != nil {
			return nil, err
		}
		counts := cumulativeCounts(ps, thresholds)
		frac := make([]float64, len(counts))
		for i := range counts {
			frac[i] = counts[i] / float64(len(ps))
		}
		fig.Series = append(fig.Series, Series{
			Label: fmt.Sprintf("%s, min_sup=%d", name, fig15MinSups[name]),
			X:     thresholds,
			Y:     frac,
		})
		o.progress("fig15: %s mined %d rules", name, len(ps))
	}
	return fig, nil
}
