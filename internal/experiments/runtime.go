package experiments

import (
	"fmt"
	"time"

	"repro/internal/correction"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/permute"
	"repro/internal/synth"
	"repro/internal/uci"
)

// runtimeDataset is one panel of Figures 4 and 5: a dataset plus its
// min_sup sweep. Sweeps follow the paper's panel ranges; the scaled mode
// takes the upper (cheaper) part of each range.
type runtimeDataset struct {
	name  string
	sweep []int // descending difficulty: larger min_sup first
	load  func(o Options) (*dataset.Dataset, error)
}

// runtimePerms caps the permutation count in scaled mode: the Fig 4/5
// quantities under test are the RATIOS between optimisation levels /
// approaches, which are preserved per permutation; 20 permutations keep
// the "no optimization" baseline affordable. Full mode uses the paper's
// 1000.
func runtimePerms(o Options) int {
	if o.Full {
		return o.perms()
	}
	p := o.perms()
	if p > 20 {
		p = 20
	}
	return p
}

func runtimeDatasets(full bool) []runtimeDataset {
	pick := func(fullSweep, scaled []int) []int {
		if full {
			return fullSweep
		}
		return scaled
	}
	return []runtimeDataset{
		{
			name:  "adult",
			sweep: pick([]int{3000, 2500, 2000, 1500, 1000, 500}, []int{3000, 2000, 1000}),
			load:  func(o Options) (*dataset.Dataset, error) { return uci.Load("adult", o.Seed+1) },
		},
		{
			name:  "german",
			sweep: pick([]int{90, 80, 70, 60, 50, 40, 30, 20}, []int{90, 60, 30}),
			load:  func(o Options) (*dataset.Dataset, error) { return uci.Load("german", o.Seed+1) },
		},
		{
			name:  "hypo",
			sweep: pick([]int{2100, 2000, 1900, 1800, 1700, 1600, 1500, 1400}, []int{2100, 1800, 1500}),
			load:  func(o Options) (*dataset.Dataset, error) { return uci.Load("hypo", o.Seed+1) },
		},
		{
			name:  "mushroom",
			sweep: pick([]int{1200, 1000, 800, 600, 400, 200}, []int{1200, 800, 400}),
			load:  func(o Options) (*dataset.Dataset, error) { return uci.Load("mushroom", o.Seed+1) },
		},
		{
			name:  "D8hA20R0",
			sweep: pick([]int{35, 30, 25, 20, 15, 10, 5}, []int{35, 20, 10}),
			load: func(o Options) (*dataset.Dataset, error) {
				p := synth.PaperDefaults()
				p.N = 800
				p.Attrs = 20
				p.Seed = o.Seed + 8
				res, err := synth.Generate(p)
				if err != nil {
					return nil, err
				}
				return res.Data, nil
			},
		},
		{
			name:  "D2kA20R5",
			sweep: pick([]int{140, 120, 100, 80, 60, 40}, []int{140, 90, 40}),
			load: func(o Options) (*dataset.Dataset, error) {
				p := synth.PaperDefaults()
				p.N = 2000
				p.Attrs = 20
				p.NumRules = 5
				p.MinCvg, p.MaxCvg = 400, 600
				p.MinConf, p.MaxConf = 0.6, 0.8
				p.AllowOverlap = true // 5 rules of coverage 400–600 in 2000 records must share records
				p.Seed = o.Seed + 2
				res, err := synth.Generate(p)
				if err != nil {
					return nil, err
				}
				return res.Data, nil
			},
		},
	}
}

// permutationTime runs the full permutation pipeline (mining + N
// permutations, FWER flavour) at the given optimisation level and returns
// the wall-clock seconds — the quantity Fig 4 plots.
func permutationTime(d *dataset.Dataset, minSup, perms int, opt permute.OptLevel, seed uint64, workers int) (float64, error) {
	start := time.Now()
	enc := dataset.Encode(d)
	tree, err := mining.MineClosed(enc, mining.Options{
		MinSup:        minSup,
		StoreDiffsets: opt.WantDiffsets(),
		MaxNodes:      2_000_000,
		Workers:       workers,
	})
	if err != nil {
		return 0, err
	}
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
	if err != nil {
		return 0, err
	}
	engine, err := permute.NewEngine(tree, rules, permute.Config{
		NumPerms: perms,
		Seed:     seed,
		Opt:      opt,
		Workers:  workers,
	})
	if err != nil {
		return 0, err
	}
	correction.PermFWER(engine, rules, 0.05)
	return time.Since(start).Seconds(), nil
}

// Fig4 reproduces Figure 4: permutation-approach running time under the
// four optimisation levels, one panel per dataset, swept over min_sup.
// Absolute seconds differ from the paper's 2008-era hardware; the claims
// under test are the ratios between levels.
func Fig4(o Options) ([]*Figure, error) {
	levels := []permute.OptLevel{
		permute.OptNone, permute.OptDynamicBuffer, permute.OptDiffsets, permute.OptStaticBuffer,
	}
	var figs []*Figure
	for di, rd := range runtimeDatasets(o.Full) {
		d, err := rd.load(o)
		if err != nil {
			return nil, err
		}
		fig := &Figure{
			ID:     fmt.Sprintf("fig4%c", 'a'+di),
			Title:  fmt.Sprintf("permutation optimisations on %s", rd.name),
			XLabel: "minimum support",
			YLabel: "running time (sec)",
			LogY:   true,
		}
		series := make([]Series, len(levels))
		for li, lvl := range levels {
			series[li].Label = lvl.String()
		}
		for _, ms := range rd.sweep {
			o.progress("fig4 %s: min_sup=%d", rd.name, ms)
			for li, lvl := range levels {
				// Single worker: Fig 4 measures the paper's single-threaded
				// cost model, and buffer reuse across permutations (the
				// very thing under test) would be destroyed by splitting
				// few permutations over many workers.
				secs, err := permutationTime(d, ms, runtimePerms(o), lvl, o.Seed+99, 1)
				if err != nil {
					return nil, err
				}
				series[li].X = append(series[li].X, float64(ms))
				series[li].Y = append(series[li].Y, secs)
			}
		}
		fig.Series = series
		figs = append(figs, fig)
	}
	return figs, nil
}

// approachTime measures one correction approach end to end (mining
// included), returning seconds.
func approachTime(d *dataset.Dataset, minSup, perms int, approach string, seed uint64, workers int) (float64, error) {
	start := time.Now()
	switch approach {
	case "permutation":
		return permutationTime(d, minSup, perms, permute.OptStaticBuffer, seed, workers)
	case "direct adjustment":
		enc := dataset.Encode(d)
		tree, err := mining.MineClosed(enc, mining.Options{MinSup: minSup, StoreDiffsets: true, MaxNodes: 2_000_000, Workers: workers})
		if err != nil {
			return 0, err
		}
		rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
		if err != nil {
			return 0, err
		}
		ps := make([]float64, len(rules))
		for i := range rules {
			ps[i] = rules[i].P
		}
		correction.Bonferroni(ps, len(ps), 0.05)
	case "holdout":
		explore, eval := d.SplitHalves()
		if _, err := correction.Holdout(explore, eval, correction.HoldoutConfig{
			MinSupExplore: max(1, minSup/2),
			Alpha:         0.05,
			Policy:        mining.PaperPolicy,
			Workers:       workers,
		}); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("experiments: unknown approach %q", approach)
	}
	return time.Since(start).Seconds(), nil
}

// Fig5 reproduces Figure 5: running time of the three correction
// approaches (permutation with all optimisations, holdout, direct
// adjustment), one panel per dataset.
func Fig5(o Options) ([]*Figure, error) {
	approaches := []string{"permutation", "holdout", "direct adjustment"}
	var figs []*Figure
	for di, rd := range runtimeDatasets(o.Full) {
		d, err := rd.load(o)
		if err != nil {
			return nil, err
		}
		fig := &Figure{
			ID:     fmt.Sprintf("fig5%c", 'a'+di),
			Title:  fmt.Sprintf("correction approaches on %s", rd.name),
			XLabel: "minimum support",
			YLabel: "running time (sec)",
			LogY:   true,
		}
		series := make([]Series, len(approaches))
		for ai, a := range approaches {
			series[ai].Label = a
		}
		for _, ms := range rd.sweep {
			o.progress("fig5 %s: min_sup=%d", rd.name, ms)
			for ai, a := range approaches {
				// Single worker, matching Fig 4's measurement model.
				secs, err := approachTime(d, ms, runtimePerms(o), a, o.Seed+7, 1)
				if err != nil {
					return nil, err
				}
				series[ai].X = append(series[ai].X, float64(ms))
				series[ai].Y = append(series[ai].Y, secs)
			}
		}
		fig.Series = series
		figs = append(figs, fig)
	}
	return figs, nil
}
