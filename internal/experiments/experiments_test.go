package experiments

import (
	"math"
	"strings"
	"testing"
)

// tiny returns the smallest useful scale for experiment smoke tests.
func tiny() Options {
	return Options{Datasets: 2, Perms: 20, Seed: 1}
}

func TestFig1Shape(t *testing.T) {
	f := Fig1()
	if len(f.Series) != 6 {
		t.Fatalf("%d series, want 6 coverages", len(f.Series))
	}
	for _, s := range f.Series {
		// p-values decrease (weakly) as confidence grows.
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+1e-12 {
				t.Fatalf("%s: p increased from %g to %g at x=%g", s.Label, s.Y[i-1], s.Y[i], s.X[i])
			}
		}
	}
	// Larger coverage gives (weakly) smaller p at high confidence.
	last := func(s Series) float64 { return s.Y[len(s.Y)-1] }
	for i := 1; i < len(f.Series); i++ {
		if last(f.Series[i]) > last(f.Series[i-1])*1.0001 {
			t.Errorf("coverage order violated at conf=1: %s=%g vs %s=%g",
				f.Series[i].Label, last(f.Series[i]), f.Series[i-1].Label, last(f.Series[i-1]))
		}
	}
	if !strings.Contains(f.Render(), "supp(X)=100") {
		t.Error("render missing series")
	}
}

// Figure 2's published table, to four significant digits.
func TestFig2MatchesPaper(t *testing.T) {
	tab := Fig2()
	wantP := []string{"0.002167183", "0.0498452", "0.3359133", "1", "0.6424149", "0.1571207", "0.01408669"}
	wantOrder := []string{"0", "2", "4", "6", "5", "3", "1"}
	if len(tab.Rows) != 7 {
		t.Fatalf("%d rows, want 7", len(tab.Rows))
	}
	for k, row := range tab.Rows {
		if row[2] != wantP[k] {
			t.Errorf("k=%d: p = %s, want %s", k, row[2], wantP[k])
		}
		if row[3] != wantOrder[k] {
			t.Errorf("k=%d: sum-up order = %s, want %s", k, row[3], wantOrder[k])
		}
	}
}

func TestFig9Shape(t *testing.T) {
	f := Fig9()
	if len(f.Series) != 3 {
		t.Fatalf("%d series, want 3", len(f.Series))
	}
	// At every confidence, the N=1000/cvg=200 p-value is >= the
	// N=2000/cvg=400 p-value (halving the data weakens significance).
	full := f.Series[1]
	halved := f.Series[2]
	for i := range full.Y {
		if halved.Y[i] < full.Y[i]*(1-1e-9) {
			t.Errorf("halved dataset more significant at conf=%g: %g < %g",
				full.X[i], halved.Y[i], full.Y[i])
		}
	}
}

func TestFig3Shape(t *testing.T) {
	f, err := Fig3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Series) != 3 {
		t.Fatalf("%d series, want 3", len(f.Series))
	}
	random, c200, c400 := f.Series[0], f.Series[1], f.Series[2]
	// Random data has (essentially) no rules below 1e-6.
	for i, x := range random.X {
		if x <= 1e-6 && random.Y[i] > 2 {
			t.Errorf("random dataset has %g rules at p <= %g", random.Y[i], x)
		}
	}
	// The embedded-rule datasets dominate random at low p, and coverage
	// 400 dominates coverage 200.
	for i, x := range c400.X {
		if x > 1e-3 {
			continue
		}
		if c400.Y[i] < c200.Y[i] {
			t.Errorf("at p <= %g: cvg400 count %g < cvg200 count %g", x, c400.Y[i], c200.Y[i])
		}
		if c200.Y[i] < random.Y[i] {
			t.Errorf("at p <= %g: cvg200 count %g < random count %g", x, c200.Y[i], random.Y[i])
		}
	}
}

func TestFig6Controls(t *testing.T) {
	o := tiny()
	figs, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("%d panels, want 3", len(figs))
	}
	fwer := figs[0]
	// "No correction" must have FWER 1 at the lowest min_sup; the
	// corrected methods must all stay below it there.
	var none, maxCorrected float64
	for _, s := range fwer.Series {
		if s.Label == MNone {
			none = s.Y[0]
		} else if s.Y[0] > maxCorrected {
			maxCorrected = s.Y[0]
		}
	}
	if none < 0.99 {
		t.Errorf("no-correction FWER at lowest min_sup = %g, want 1", none)
	}
	if maxCorrected > none {
		t.Errorf("a corrected method has FWER %g above no-correction %g", maxCorrected, none)
	}
	// Rules tested decrease with min_sup.
	tested := figs[1].Series[0]
	for i := 1; i < len(tested.Y); i++ {
		if tested.Y[i] > tested.Y[i-1] {
			t.Errorf("rules tested increased with min_sup: %v", tested.Y)
		}
	}
}

func TestFig8PowerMonotone(t *testing.T) {
	o := tiny()
	o.Datasets = 3
	figs, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	power := figs[0]
	// "No correction" detects the embedded rule everywhere (power 1).
	for _, s := range power.Series {
		if s.Label != MNone {
			continue
		}
		for i, y := range s.Y {
			if y < 0.99 {
				t.Errorf("no-correction power %g at conf=%g, want 1", y, s.X[i])
			}
		}
	}
	// Power at the highest confidence >= power at the lowest, per method.
	for _, s := range power.Series {
		if s.Y[len(s.Y)-1]+1e-9 < s.Y[0] {
			t.Errorf("%s: power decreased from %g to %g as confidence rose",
				s.Label, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
}

func TestTable4Consistent(t *testing.T) {
	o := tiny()
	tab, err := Table4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 || len(tab.Headers) != 5 {
		t.Fatalf("table shape %dx%d, want 9x5", len(tab.Rows), len(tab.Headers))
	}
	// High-p bands must be empty at high confidence: a german-scale rule
	// with confidence >= 0.9 and coverage >= 60 cannot have p > 0.05.
	top := tab.Rows[0] // (0.05,1]
	for c := 2; c < 5; c++ {
		if top[c] != "0" {
			t.Errorf("(0.05,1] × %s = %s, want 0", tab.Headers[c], top[c])
		}
	}
	if !strings.Contains(tab.Title, "cutoff") {
		t.Error("title missing cutoffs")
	}
}

func TestRenderFigure(t *testing.T) {
	f := &Figure{
		ID: "x", Title: "t", XLabel: "xs", YLabel: "ys",
		Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}}},
	}
	out := f.Render()
	for _, want := range []string{"# x — t", "xs", "a", "3", "4"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsScaling(t *testing.T) {
	var o Options
	if o.datasets() != 10 || o.perms() != 100 {
		t.Errorf("scaled defaults = %d/%d, want 10/100", o.datasets(), o.perms())
	}
	o.Full = true
	if o.datasets() != 100 || o.perms() != 1000 {
		t.Errorf("full defaults = %d/%d, want 100/1000", o.datasets(), o.perms())
	}
	o.Datasets, o.Perms = 3, 7
	if o.datasets() != 3 || o.perms() != 7 {
		t.Error("overrides ignored")
	}
	if runtimePerms(Options{Full: true, Perms: 500}) != 500 {
		t.Error("full runtime perms should not be capped")
	}
	if runtimePerms(Options{Perms: 500}) != 20 {
		t.Error("scaled runtime perms should cap at 20")
	}
	if math.IsNaN(float64(o.workers())) || o.workers() < 1 {
		t.Error("workers must be >= 1")
	}
}
