// Package experiments regenerates every figure and table of the paper's
// evaluation (§5). Each FigNN/TableN function returns plain data (Series
// of x/y points, or string tables) that cmd/experiments renders and that
// bench_test.go exercises and compares against
// the paper.
//
// Two scales are supported: the default scaled-down runs (few Monte-Carlo
// datasets, ~100 permutations) finish in seconds-to-minutes per figure;
// Options.Full switches to the paper's scale (100 datasets per point,
// 1000 permutations).
package experiments

import (
	"fmt"
	"runtime"
	"strings"
)

// Options scales the experiments.
type Options struct {
	// Full selects paper-scale parameters (100 datasets, 1000
	// permutations, full sweep grids).
	Full bool
	// Datasets overrides the Monte-Carlo dataset count per point (0 =
	// scale default: 10 scaled / 100 full).
	Datasets int
	// Perms overrides the permutation count (0 = 100 scaled / 1000 full).
	Perms int
	// Seed makes every experiment deterministic.
	Seed uint64
	// Workers caps mining and permutation parallelism (0 = GOMAXPROCS).
	Workers int
	// Progress, if non-nil, receives one-line progress messages.
	Progress func(string)
}

func (o Options) datasets() int {
	if o.Datasets > 0 {
		return o.Datasets
	}
	if o.Full {
		return 100
	}
	return 10
}

func (o Options) perms() int {
	if o.Perms > 0 {
		return o.Perms
	}
	if o.Full {
		return 1000
	}
	return 100
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		o.Progress(fmt.Sprintf(format, args...))
	}
}

// Series is one plotted line.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is one reproduced figure (or one panel of a multi-panel figure).
type Figure struct {
	ID     string // e.g. "fig6a"
	Title  string
	XLabel string
	YLabel string
	LogY   bool
	Series []Series
}

// Table is a reproduced tabular result.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
}

// Render formats the figure as aligned text columns (x followed by one
// column per series) suitable for a terminal or gnuplot.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "# x: %s, y: %s%s\n", f.XLabel, f.YLabel, map[bool]string{true: " (log)", false: ""}[f.LogY])
	fmt.Fprintf(&b, "%-12s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %22s", s.Label)
	}
	b.WriteByte('\n')
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].X {
		fmt.Fprintf(&b, "%-12g", f.Series[0].X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, " %22.6g", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, h := range t.Headers {
		fmt.Fprintf(&b, "%-*s  ", widths[i], h)
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
