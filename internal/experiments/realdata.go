package experiments

import (
	"fmt"

	"repro/internal/correction"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/permute"
	"repro/internal/uci"
)

// realSweep gives the min_sup grids of Figures 14/16 per dataset (the
// paper sweeps adult 500–3000, german 30–80, hypo 1500–2000).
func realSweep(name string, full bool) []int {
	switch name {
	case "adult":
		if full {
			return []int{3000, 2500, 2000, 1500, 1000, 500}
		}
		return []int{3000, 2000, 1000}
	case "german":
		if full {
			return []int{80, 70, 60, 50, 40, 30}
		}
		return []int{80, 60, 40}
	case "hypo":
		if full {
			return []int{2000, 1900, 1800, 1700, 1600, 1500}
		}
		return []int{2000, 1800, 1600}
	default:
		return nil
	}
}

// significantCounts mines one real stand-in at one min_sup and counts the
// significant rules under each method of the figure.
func significantCounts(d *dataset.Dataset, minSup, perms int, fdr bool, seed uint64, workers int) (map[string]float64, error) {
	enc := dataset.Encode(d)
	tree, err := mining.MineClosed(enc, mining.Options{MinSup: minSup, StoreDiffsets: true, MaxNodes: 2_000_000, Workers: workers})
	if err != nil {
		return nil, err
	}
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
	if err != nil {
		return nil, err
	}
	ps := make([]float64, len(rules))
	for i := range rules {
		ps[i] = rules[i].P
	}

	out := make(map[string]float64)
	out[MNone] = float64(len(correction.None(ps, 0.05).Significant))

	if fdr {
		out[MBH] = float64(len(correction.BenjaminiHochberg(ps, len(ps), 0.05).Significant))
	} else {
		out[MBC] = float64(len(correction.Bonferroni(ps, len(ps), 0.05).Significant))
	}

	engine, err := permute.NewEngine(tree, rules, permute.Config{
		NumPerms: perms, Seed: seed, Opt: permute.OptStaticBuffer, Workers: workers,
	})
	if err != nil {
		return nil, err
	}
	if fdr {
		out[MPermFDR] = float64(len(correction.PermFDR(engine, rules, 0.05).Significant))
	} else {
		out[MPermFWER] = float64(len(correction.PermFWER(engine, rules, 0.05).Significant))
	}

	// Random holdout (real data has no paired construction).
	explore, eval := d.RandomSplit(seed ^ 0xbeef)
	hres, err := correction.Holdout(explore, eval, correction.HoldoutConfig{
		MinSupExplore: max(1, minSup/2),
		Alpha:         0.05,
		UseFDR:        fdr,
		Policy:        mining.PaperPolicy,
	})
	if err != nil {
		return nil, err
	}
	if fdr {
		out[MRHBH] = float64(len(hres.Outcome.Significant))
	} else {
		out[MRHBC] = float64(len(hres.Outcome.Significant))
	}
	return out, nil
}

// realDataFigures is the shared driver for Figures 14 (FWER) and 16
// (FDR): the number of significant rules reported on adult, german and
// hypo across a min_sup sweep.
func realDataFigures(o Options, id string, fdr bool) ([]*Figure, error) {
	methods := []string{MNone, MBC, MPermFWER, MRHBC}
	if fdr {
		methods = []string{MNone, MBH, MPermFDR, MRHBH}
	}
	var figs []*Figure
	for di, name := range []string{"adult", "german", "hypo"} {
		d, err := uci.Load(name, o.Seed+1)
		if err != nil {
			return nil, err
		}
		fig := &Figure{
			ID:     fmt.Sprintf("%s%c", id, 'a'+di),
			Title:  fmt.Sprintf("significant rules on %s (stand-in)", name),
			XLabel: "minimum support",
			YLabel: "average number of significant rules",
			LogY:   true,
		}
		series := make(map[string]*Series, len(methods))
		for _, m := range methods {
			series[m] = &Series{Label: m}
		}
		for _, ms := range realSweep(name, o.Full) {
			o.progress("%s %s: min_sup=%d", id, name, ms)
			counts, err := significantCounts(d, ms, o.perms(), fdr, o.Seed+uint64(ms), o.workers())
			if err != nil {
				return nil, err
			}
			for _, m := range methods {
				series[m].X = append(series[m].X, float64(ms))
				series[m].Y = append(series[m].Y, counts[m])
			}
		}
		for _, m := range methods {
			fig.Series = append(fig.Series, *series[m])
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig14 reproduces Figure 14: #significant rules on the real stand-ins
// when FWER is controlled at 5%.
func Fig14(o Options) ([]*Figure, error) { return realDataFigures(o, "fig14", false) }

// Fig16 reproduces Figure 16: #significant rules on the real stand-ins
// when FDR is controlled at 5%.
func Fig16(o Options) ([]*Figure, error) { return realDataFigures(o, "fig16", true) }

// Table4 reproduces Table 4: the number of rules on german (min_sup=60,
// RHS fixed to the majority class "good") in each confidence × p-value
// band, plus the cut-off thresholds chosen by the direct-adjustment and
// permutation approaches — the paper's demonstration that no min_conf
// setting separates significant from insignificant rules.
func Table4(o Options) (*Table, error) {
	d, err := uci.Load("german", o.Seed+1)
	if err != nil {
		return nil, err
	}
	enc := dataset.Encode(d)
	tree, err := mining.MineClosed(enc, mining.Options{MinSup: 60, StoreDiffsets: true, MaxNodes: 2_000_000, Workers: o.workers()})
	if err != nil {
		return nil, err
	}
	// RHS fixed to class "good" (index 0 in the stand-in spec).
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.FixedClass, Class: 0})
	if err != nil {
		return nil, err
	}

	confEdges := []float64{0.75, 0.85, 0.90, 0.95, 1.0000001}
	confNames := []string{"[0.75,0.85)", "[0.85,0.9)", "[0.9,0.95)", "[0.95,1]"}
	pEdges := []float64{0, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.05, 1}
	pNames := []string{"(0,1e-8]", "(1e-8,1e-7]", "(1e-7,1e-6]", "(1e-6,1e-5]",
		"(1e-5,1e-4]", "(1e-4,0.001]", "(0.001,0.01]", "(0.01,0.05]", "(0.05,1]"}

	counts := make([][]int, len(pNames))
	for i := range counts {
		counts[i] = make([]int, len(confNames))
	}
	for i := range rules {
		r := &rules[i]
		if r.Confidence < confEdges[0] {
			continue
		}
		ci := -1
		for c := 0; c < len(confNames); c++ {
			if r.Confidence >= confEdges[c] && r.Confidence < confEdges[c+1] {
				ci = c
				break
			}
		}
		if ci < 0 {
			continue
		}
		pi := -1
		for b := 0; b < len(pNames); b++ {
			if r.P > pEdges[b] && r.P <= pEdges[b+1] {
				pi = b
				break
			}
		}
		if pi < 0 {
			pi = 0 // p == 0 exactly: most significant band
		}
		counts[pi][ci]++
	}

	// Cut-offs: Bonferroni and permutation FWER at 5%.
	ps := make([]float64, len(rules))
	for i := range rules {
		ps[i] = rules[i].P
	}
	bc := correction.Bonferroni(ps, len(ps), 0.05)
	engine, err := permute.NewEngine(tree, rules, permute.Config{
		NumPerms: o.perms(), Seed: o.Seed + 4, Opt: permute.OptStaticBuffer, Workers: o.workers(),
	})
	if err != nil {
		return nil, err
	}
	pm := correction.PermFWER(engine, rules, 0.05)

	t := &Table{
		ID: "table4",
		Title: fmt.Sprintf(
			"rules by confidence and p-value on german (stand-in), min_sup=60, RHS class=good; %d rules tested; BC cutoff %.3g, Perm_FWER cutoff %.3g",
			len(rules), bc.Cutoff, pm.Cutoff),
		Headers: append([]string{"p-value \\ conf"}, confNames...),
	}
	// Present high-p bands first, like the paper.
	for pi := len(pNames) - 1; pi >= 0; pi-- {
		row := []string{pNames[pi]}
		for c := range confNames {
			row = append(row, fmt.Sprintf("%d", counts[pi][c]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
