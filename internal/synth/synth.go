// Package synth generates the synthetic datasets of §5.1: categorical
// matrices with class labels into which a configurable number of class
// association rules are embedded, the remaining cells filled uniformly at
// random. It also provides the paper's paired construction for fair
// holdout evaluation (two independently generated N/2 sub-datasets with
// half-coverage rules, catenated).
package synth

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/dataset"
)

// Params mirrors Table 1 of the paper.
type Params struct {
	N        int     // number of records
	Classes  int     // #C: number of classes
	Attrs    int     // A: number of attributes
	MinV     int     // minimum number of values taken by an attribute
	MaxV     int     // maximum number of values taken by an attribute
	NumRules int     // Nr: number of rules embedded
	MinLen   int     // minimum length of embedded rules
	MaxLen   int     // maximum length of embedded rules
	MinCvg   int     // minimum coverage of embedded rules
	MaxCvg   int     // maximum coverage of embedded rules
	MinConf  float64 // minimum confidence of embedded rules
	MaxConf  float64 // maximum confidence of embedded rules
	Seed     uint64
	// AllowOverlap lets embedded rules share records. By default rules
	// claim disjoint record sets so each planted rule's coverage and
	// confidence are realised exactly (required by the §5.2 ground-truth
	// evaluation); with overlap, a later rule may overwrite cells of an
	// earlier one and shift its statistics. The paper's D2kA20R5 runtime
	// dataset (5 rules of coverage 400–600 in 2000 records) needs overlap.
	AllowOverlap bool
}

// PaperDefaults returns the parameter values fixed across the paper's
// experiments (§5.1): #C=2, min_v=2, max_v=8, min_l=2, max_l=16.
func PaperDefaults() Params {
	return Params{
		Classes: 2,
		MinV:    2,
		MaxV:    8,
		MinLen:  2,
		MaxLen:  16,
	}
}

// EmbeddedRule records one rule planted in a generated dataset: its LHS
// pattern (parallel attribute/value slices), RHS class, the records chosen
// to contain the pattern, and the realised confidence.
type EmbeddedRule struct {
	Attrs   []int    // attribute indices of the LHS, ascending
	Vals    []int32  // value index of each LHS attribute
	Class   int32    // RHS class
	Records []uint32 // ids of the records made to contain the pattern
	Conf    float64  // realised confidence: fraction of Records in Class
}

// Coverage returns the number of records embedding the rule's LHS.
func (e *EmbeddedRule) Coverage() int { return len(e.Records) }

// Result bundles a generated dataset with its planted rules.
type Result struct {
	Data  *dataset.Dataset
	Rules []EmbeddedRule
}

// validate reports the first structural problem with the parameters.
func (p *Params) validate() error {
	switch {
	case p.N < 1:
		return fmt.Errorf("synth: N must be >= 1, got %d", p.N)
	case p.Classes < 2:
		return fmt.Errorf("synth: Classes must be >= 2, got %d", p.Classes)
	case p.Attrs < 1:
		return fmt.Errorf("synth: Attrs must be >= 1, got %d", p.Attrs)
	case p.MinV < 2 || p.MaxV < p.MinV:
		return fmt.Errorf("synth: need 2 <= MinV <= MaxV, got [%d,%d]", p.MinV, p.MaxV)
	}
	if p.NumRules > 0 {
		switch {
		case p.MinLen < 1 || p.MaxLen < p.MinLen:
			return fmt.Errorf("synth: need 1 <= MinLen <= MaxLen, got [%d,%d]", p.MinLen, p.MaxLen)
		case p.MinLen > p.Attrs:
			return fmt.Errorf("synth: MinLen %d exceeds Attrs %d", p.MinLen, p.Attrs)
		case p.MinCvg < 1 || p.MaxCvg < p.MinCvg || p.MaxCvg > p.N:
			return fmt.Errorf("synth: need 1 <= MinCvg <= MaxCvg <= N, got [%d,%d]", p.MinCvg, p.MaxCvg)
		case p.MinConf < 0 || p.MaxConf < p.MinConf || p.MaxConf > 1:
			return fmt.Errorf("synth: need 0 <= MinConf <= MaxConf <= 1, got [%g,%g]", p.MinConf, p.MaxConf)
		}
	}
	return nil
}

// BuildSchema samples the schema implied by the parameters: Attrs
// attributes whose cardinalities are drawn uniformly from [MinV, MaxV].
func BuildSchema(p Params, rng *rand.Rand) *dataset.Schema {
	schema := &dataset.Schema{}
	for a := 0; a < p.Attrs; a++ {
		card := p.MinV + rng.IntN(p.MaxV-p.MinV+1)
		attr := dataset.Attribute{Name: fmt.Sprintf("A%d", a)}
		for v := 0; v < card; v++ {
			attr.Values = append(attr.Values, fmt.Sprintf("v%d", v))
		}
		schema.Attrs = append(schema.Attrs, attr)
	}
	schema.Class.Name = "class"
	for c := 0; c < p.Classes; c++ {
		schema.Class.Values = append(schema.Class.Values, fmt.Sprintf("c%d", c))
	}
	return schema
}

// Generate builds one synthetic dataset. Class labels are distributed
// evenly (§5.1: "the records are evenly distributed in different
// classes"); rule embedding never alters labels — instead, the records a
// rule covers are sampled from the label classes so that the requested
// confidence is met exactly, which keeps the class balance intact.
func Generate(p Params) (*Result, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(p.Seed, 0xda3e39cb94b95bdb))
	schema := BuildSchema(p, rng)
	return generate(p, schema, nil, rng)
}

// generate does the work of Generate over a fixed schema. If patterns is
// non-nil, its rules' LHS/class are re-embedded (with freshly drawn
// coverage and confidence) instead of sampling NumRules new patterns —
// this is how the paired construction plants the same rule in both halves.
func generate(p Params, schema *dataset.Schema, patterns []EmbeddedRule, rng *rand.Rand) (*Result, error) {
	// Labels: even distribution, then shuffled.
	labels := make([]int32, p.N)
	for r := range labels {
		labels[r] = int32(r % p.Classes)
	}
	rng.Shuffle(p.N, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })

	// Cells start unset; "unset" marks cells not covered by any embedded
	// rule, to be filled uniformly at the end.
	const unset = -2
	cells := make([][]int32, p.N)
	for r := range cells {
		row := make([]int32, p.Attrs)
		for a := range row {
			row[a] = unset
		}
		cells[r] = row
	}

	emb := &embedder{
		p:       p,
		rng:     rng,
		schema:  schema,
		cells:   cells,
		byClass: make([][]uint32, p.Classes),
		used:    make([]bool, p.N),
	}
	for r, c := range labels {
		emb.byClass[c] = append(emb.byClass[c], uint32(r))
	}
	for _, ids := range emb.byClass {
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	}

	res := &Result{}
	if patterns != nil {
		for ri := range patterns {
			rule, err := emb.embed(ri, patterns[ri].Attrs, patterns[ri].Vals, patterns[ri].Class)
			if err != nil {
				return nil, err
			}
			res.Rules = append(res.Rules, *rule)
		}
	} else {
		for ri := 0; ri < p.NumRules; ri++ {
			attrs, vals, class := emb.samplePattern()
			rule, err := emb.embed(ri, attrs, vals, class)
			if err != nil {
				return nil, err
			}
			res.Rules = append(res.Rules, *rule)
		}
	}

	// Fill every cell not covered by an embedded rule uniformly at random.
	for r := range cells {
		for a := range cells[r] {
			if cells[r][a] == unset {
				cells[r][a] = int32(rng.IntN(len(schema.Attrs[a].Values)))
			}
		}
	}

	d := dataset.New(schema, p.N)
	for r := range cells {
		d.Append(cells[r], labels[r])
	}
	res.Data = d
	return res, nil
}

// embedder carries the state shared by successive rule embeddings within
// one generated dataset.
type embedder struct {
	p       Params
	rng     *rand.Rand
	schema  *dataset.Schema
	cells   [][]int32
	byClass [][]uint32 // shuffled record ids per class
	used    []bool     // records already claimed by an embedded rule
}

// samplePattern draws a random LHS pattern and RHS class.
func (e *embedder) samplePattern() (attrs []int, vals []int32, class int32) {
	maxLen := e.p.MaxLen
	if maxLen > e.p.Attrs {
		maxLen = e.p.Attrs
	}
	length := e.p.MinLen + e.rng.IntN(maxLen-e.p.MinLen+1)
	attrs = e.rng.Perm(e.p.Attrs)[:length]
	sortInts(attrs)
	vals = make([]int32, length)
	for i, a := range attrs {
		vals[i] = int32(e.rng.IntN(len(e.schema.Attrs[a].Values)))
	}
	return attrs, vals, int32(e.rng.IntN(e.p.Classes))
}

// embed plants one rule with freshly drawn coverage and confidence:
// round(cvg·conf) covered records are sampled from the RHS class and the
// rest from the other classes, all previously unclaimed, so rules occupy
// disjoint record sets and realised confidence is exact.
func (e *embedder) embed(ruleIdx int, attrs []int, vals []int32, class int32) (*EmbeddedRule, error) {
	cvg := e.p.MinCvg + e.rng.IntN(e.p.MaxCvg-e.p.MinCvg+1)
	conf := e.p.MinConf + e.rng.Float64()*(e.p.MaxConf-e.p.MinConf)
	inClass := int(float64(cvg)*conf + 0.5)
	if inClass > cvg {
		inClass = cvg
	}

	records := make([]uint32, 0, cvg)
	taken := make(map[uint32]bool, cvg) // no duplicates within one rule
	take := func(c int32, want int) int {
		got := 0
		for _, r := range e.byClass[c] {
			if got == want {
				break
			}
			if taken[r] {
				continue
			}
			if e.used[r] && !e.p.AllowOverlap {
				continue
			}
			e.used[r] = true
			taken[r] = true
			records = append(records, r)
			got++
		}
		return got
	}
	if got := take(class, inClass); got < inClass {
		return nil, fmt.Errorf("synth: rule %d: class %d has only %d unused records, need %d (reduce NumRules or coverage)",
			ruleIdx, class, got, inClass)
	}
	needOther := cvg - inClass
	for c := int32(0); int(c) < e.p.Classes && needOther > 0; c++ {
		if c == class {
			continue
		}
		needOther -= take(c, needOther)
	}
	if needOther > 0 {
		return nil, fmt.Errorf("synth: rule %d: not enough unused records outside class %d (reduce NumRules or coverage)",
			ruleIdx, class)
	}
	sortU32(records)

	for _, r := range records {
		for i, a := range attrs {
			e.cells[r][a] = vals[i]
		}
	}
	return &EmbeddedRule{
		Attrs:   attrs,
		Vals:    vals,
		Class:   class,
		Records: records,
		Conf:    float64(inClass) / float64(cvg),
	}, nil
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func sortU32(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// GeneratePaired builds the paper's fair-holdout construction (§5.1): two
// sub-datasets of N/2 records each are generated independently over a
// shared schema, with rule coverage drawn from [MinCvg/2, MaxCvg/2];
// corresponding rules carry the same pattern and class in both halves. The
// catenated whole therefore embeds each rule with coverage in
// [MinCvg, MaxCvg], and holdout evaluation can use one half as exploratory
// and the other as evaluation data with partitioning noise eliminated.
func GeneratePaired(p Params) (whole *Result, first, second *dataset.Dataset, err error) {
	if err := p.validate(); err != nil {
		return nil, nil, nil, err
	}
	rng := rand.New(rand.NewPCG(p.Seed, 0xda3e39cb94b95bdb))
	schema := BuildSchema(p, rng)

	half := p
	half.N = p.N / 2
	half.MinCvg = p.MinCvg / 2
	half.MaxCvg = p.MaxCvg / 2
	if half.MinCvg < 1 {
		half.MinCvg = 1
	}
	if half.MaxCvg < half.MinCvg {
		half.MaxCvg = half.MinCvg
	}

	r1, err := generate(half, schema, nil, rng)
	if err != nil {
		return nil, nil, nil, err
	}
	half2 := half
	half2.N = p.N - half.N
	r2, err := generate(half2, schema, r1.Rules, rng)
	if err != nil {
		return nil, nil, nil, err
	}

	wholeData := dataset.Concat(r1.Data, r2.Data)
	res := &Result{Data: wholeData}
	off := uint32(r1.Data.NumRecords())
	for i := range r1.Rules {
		a, b := &r1.Rules[i], &r2.Rules[i]
		merged := EmbeddedRule{Attrs: a.Attrs, Vals: a.Vals, Class: a.Class}
		merged.Records = append(merged.Records, a.Records...)
		for _, r := range b.Records {
			merged.Records = append(merged.Records, r+off)
		}
		nIn := int(a.Conf*float64(len(a.Records))+0.5) + int(b.Conf*float64(len(b.Records))+0.5)
		if len(merged.Records) > 0 {
			merged.Conf = float64(nIn) / float64(len(merged.Records))
		}
		res.Rules = append(res.Rules, merged)
	}
	return res, r1.Data, r2.Data, nil
}
