package synth

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestGenerateRandomDataset(t *testing.T) {
	p := PaperDefaults()
	p.N = 500
	p.Attrs = 10
	p.Seed = 1
	res, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Data
	if d.NumRecords() != 500 {
		t.Fatalf("NumRecords = %d, want 500", d.NumRecords())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Even class distribution.
	counts := d.ClassCounts()
	if counts[0] != 250 || counts[1] != 250 {
		t.Errorf("class counts = %v, want [250 250]", counts)
	}
	// Cardinalities within [2, 8].
	for _, a := range d.Schema.Attrs {
		if len(a.Values) < 2 || len(a.Values) > 8 {
			t.Errorf("attribute %s has %d values, want [2,8]", a.Name, len(a.Values))
		}
	}
	if len(res.Rules) != 0 {
		t.Errorf("random dataset embedded %d rules", len(res.Rules))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := PaperDefaults()
	p.N = 200
	p.Attrs = 8
	p.NumRules = 2
	p.MinCvg, p.MaxCvg = 20, 40
	p.MinConf, p.MaxConf = 0.6, 0.8
	p.Seed = 7
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for r := range a.Data.Cells {
		if a.Data.Labels[r] != b.Data.Labels[r] {
			t.Fatal("labels differ across equal seeds")
		}
		for c := range a.Data.Cells[r] {
			if a.Data.Cells[r][c] != b.Data.Cells[r][c] {
				t.Fatal("cells differ across equal seeds")
			}
		}
	}
	// Different seed produces a different dataset.
	p.Seed = 8
	c, _ := Generate(p)
	same := true
	for r := range a.Data.Cells {
		for col := range a.Data.Cells[r] {
			if a.Data.Cells[r][col] != c.Data.Cells[r][col] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical cells")
	}
}

func TestEmbeddedRuleProperties(t *testing.T) {
	p := PaperDefaults()
	p.N = 2000
	p.Attrs = 40
	p.NumRules = 1
	p.MinCvg, p.MaxCvg = 400, 400
	p.MinConf, p.MaxConf = 0.65, 0.65
	p.Seed = 42
	res, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) != 1 {
		t.Fatalf("embedded %d rules, want 1", len(res.Rules))
	}
	rule := res.Rules[0]
	if rule.Coverage() != 400 {
		t.Fatalf("coverage = %d, want 400", rule.Coverage())
	}
	// Realised confidence = round(400*0.65)/400 = 260/400 = 0.65.
	if math.Abs(rule.Conf-0.65) > 1e-9 {
		t.Errorf("realised confidence = %g, want 0.65", rule.Conf)
	}
	// Every listed record contains the pattern; its label distribution
	// matches the confidence.
	d := res.Data
	inClass := 0
	for _, r := range rule.Records {
		if !d.ContainsPattern(int(r), rule.Attrs, rule.Vals) {
			t.Fatalf("record %d does not contain the embedded pattern", r)
		}
		if d.Labels[r] == rule.Class {
			inClass++
		}
	}
	if inClass != 260 {
		t.Errorf("in-class covered records = %d, want 260", inClass)
	}
	// The pattern's total support equals at least the embedded coverage;
	// chance matches can add a few but not many for a length >= 2 pattern.
	total := 0
	for r := 0; r < d.NumRecords(); r++ {
		if d.ContainsPattern(r, rule.Attrs, rule.Vals) {
			total++
		}
	}
	if total < 400 {
		t.Fatalf("pattern support %d < embedded coverage 400", total)
	}
	if total > 600 {
		t.Errorf("pattern support %d suspiciously exceeds embedded coverage", total)
	}
	// Class balance preserved exactly.
	counts := d.ClassCounts()
	if counts[0] != 1000 || counts[1] != 1000 {
		t.Errorf("class counts = %v, want [1000 1000]", counts)
	}
}

func TestEmbedMultipleRulesDisjoint(t *testing.T) {
	p := PaperDefaults()
	p.N = 2000
	p.Attrs = 20
	p.NumRules = 5
	p.MinCvg, p.MaxCvg = 100, 200
	p.MinConf, p.MaxConf = 0.6, 0.8
	p.Seed = 3
	res, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) != 5 {
		t.Fatalf("embedded %d rules, want 5", len(res.Rules))
	}
	seen := make(map[uint32]bool)
	for _, rule := range res.Rules {
		for _, r := range rule.Records {
			if seen[r] {
				t.Fatalf("record %d claimed by two embedded rules", r)
			}
			seen[r] = true
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Params{
		{N: 0, Classes: 2, Attrs: 5, MinV: 2, MaxV: 4},
		{N: 10, Classes: 1, Attrs: 5, MinV: 2, MaxV: 4},
		{N: 10, Classes: 2, Attrs: 0, MinV: 2, MaxV: 4},
		{N: 10, Classes: 2, Attrs: 5, MinV: 3, MaxV: 2},
		{N: 10, Classes: 2, Attrs: 5, MinV: 2, MaxV: 4,
			NumRules: 1, MinLen: 2, MaxLen: 1, MinCvg: 2, MaxCvg: 5},
		{N: 10, Classes: 2, Attrs: 5, MinV: 2, MaxV: 4,
			NumRules: 1, MinLen: 2, MaxLen: 3, MinCvg: 5, MaxCvg: 50},
		{N: 10, Classes: 2, Attrs: 5, MinV: 2, MaxV: 4,
			NumRules: 1, MinLen: 2, MaxLen: 3, MinCvg: 2, MaxCvg: 5, MinConf: 0.9, MaxConf: 0.5},
	}
	for i, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestGenerateImpossibleEmbedding(t *testing.T) {
	// Coverage demands more in-class records than exist.
	p := PaperDefaults()
	p.N = 100 // 50 per class
	p.Attrs = 5
	p.NumRules = 1
	p.MinCvg, p.MaxCvg = 90, 90
	p.MinConf, p.MaxConf = 1.0, 1.0
	p.Seed = 1
	if _, err := Generate(p); err == nil {
		t.Error("expected embedding failure when class has too few records")
	}
}

func TestGeneratePaired(t *testing.T) {
	p := PaperDefaults()
	p.N = 2000
	p.Attrs = 20
	p.NumRules = 3
	p.MinCvg, p.MaxCvg = 200, 300
	p.MinConf, p.MaxConf = 0.6, 0.8
	p.Seed = 11
	whole, first, second, err := GeneratePaired(p)
	if err != nil {
		t.Fatal(err)
	}
	if first.NumRecords() != 1000 || second.NumRecords() != 1000 {
		t.Fatalf("halves sized %d/%d", first.NumRecords(), second.NumRecords())
	}
	if whole.Data.NumRecords() != 2000 {
		t.Fatalf("whole sized %d", whole.Data.NumRecords())
	}
	if first.Schema != second.Schema || first.Schema != whole.Data.Schema {
		t.Fatal("halves do not share the whole's schema")
	}
	if err := whole.Data.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(whole.Rules) != 3 {
		t.Fatalf("whole carries %d rules, want 3", len(whole.Rules))
	}
	// Each merged rule's coverage is the sum of two draws from
	// [MinCvg/2, MaxCvg/2] = [100, 150], i.e. within [200, 300].
	for i, rule := range whole.Rules {
		cvg := rule.Coverage()
		if cvg < 200-2 || cvg > 300+2 {
			t.Errorf("rule %d: merged coverage %d outside [200,300]", i, cvg)
		}
		// Every covered record contains the pattern in the whole dataset.
		for _, r := range rule.Records {
			if !whole.Data.ContainsPattern(int(r), rule.Attrs, rule.Vals) {
				t.Fatalf("rule %d: record %d lacks the pattern", i, r)
			}
		}
		// The rule is present in BOTH halves (records on both sides of the
		// boundary).
		lo, hi := false, false
		for _, r := range rule.Records {
			if r < 1000 {
				lo = true
			} else {
				hi = true
			}
		}
		if !lo || !hi {
			t.Errorf("rule %d not embedded in both halves", i)
		}
	}
	// Whole = first ++ second, record by record.
	for r := 0; r < 1000; r++ {
		for a := range whole.Data.Cells[r] {
			if whole.Data.Cells[r][a] != first.Cells[r][a] {
				t.Fatal("whole's first half differs from first")
			}
		}
		if whole.Data.Labels[r] != first.Labels[r] {
			t.Fatal("whole's first-half labels differ")
		}
	}
}

func TestGenerateThreeClasses(t *testing.T) {
	p := PaperDefaults()
	p.Classes = 3
	p.N = 300
	p.Attrs = 10
	p.NumRules = 1
	p.MinCvg, p.MaxCvg = 30, 30
	p.MinConf, p.MaxConf = 0.7, 0.7
	p.Seed = 5
	res, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	counts := res.Data.ClassCounts()
	for c, n := range counts {
		if n != 100 {
			t.Errorf("class %d count = %d, want 100", c, n)
		}
	}
	var _ *dataset.Dataset = res.Data
}
