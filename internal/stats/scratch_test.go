package stats

import (
	"math"
	"testing"
)

// TestFisherScratchBitIdentical pins the one-numeric-path contract across
// all three Fisher evaluation routes: the scratch form, the direct form
// and the buffered form must return the exact same float64 for every
// attainable (k, coverage) — bit-identical, not approximately equal.
func TestFisherScratchBitIdentical(t *testing.T) {
	var s PScratch
	for _, dims := range [][2]int{{100, 40}, {500, 250}, {301, 7}} {
		h := NewHypergeom(dims[0], dims[1], nil)
		for _, sx := range []int{1, 7, 40, dims[0] / 2, dims[0]} {
			b := h.BuildPBuffer(sx)
			lo, hi := h.Bounds(sx)
			for k := lo; k <= hi; k++ {
				direct := h.FisherTwoTailed(k, sx)
				scratch := h.FisherTwoTailedScratch(&s, k, sx)
				buffered := b.PValue(k)
				if math.Float64bits(direct) != math.Float64bits(scratch) ||
					math.Float64bits(direct) != math.Float64bits(buffered) {
					t.Fatalf("n=%d nc=%d sx=%d k=%d: direct=%x scratch=%x buffered=%x",
						dims[0], dims[1], sx, k,
						math.Float64bits(direct), math.Float64bits(scratch), math.Float64bits(buffered))
				}
			}
			// Out-of-range supports return 0 on every route.
			if got := h.FisherTwoTailedScratch(&s, hi+1, sx); got != 0 {
				t.Fatalf("sx=%d: scratch out-of-range = %g, want 0", sx, got)
			}
		}
	}
}

// TestFisherScratchZeroAllocs pins the steady state of the scratch form —
// the OptNone permutation inner loop — at zero heap allocations once the
// scratch has grown to the largest coverage in play.
func TestFisherScratchZeroAllocs(t *testing.T) {
	h := NewHypergeom(1000, 400, nil)
	var s PScratch
	h.FisherTwoTailedScratch(&s, 100, 600) // warm to the largest ladder
	allocs := testing.AllocsPerRun(100, func() {
		h.FisherTwoTailedScratch(&s, 30, 50)
		h.FisherTwoTailedScratch(&s, 100, 300)
		h.FisherTwoTailedScratch(&s, 240, 600)
	})
	if allocs != 0 {
		t.Fatalf("FisherTwoTailedScratch steady state allocates %.1f times, want 0", allocs)
	}
}

// TestBufferPoolSteadyStateAllocs pins the pool's steady state: dynamic
// rebuilds reuse the slot's capacity and static lookups are pure reads, so
// a warmed pool serves both without touching the heap.
func TestBufferPoolSteadyStateAllocs(t *testing.T) {
	h := NewHypergeom(1000, 400, nil)
	pool := NewBufferPool(h, 10, 50)
	for s := 10; s <= 50; s++ {
		pool.Buffer(s) // build out the static range
	}
	pool.Buffer(800) // grow the dynamic slot to the largest ladder
	allocs := testing.AllocsPerRun(100, func() {
		pool.Buffer(20)
		pool.Buffer(100) // dynamic rebuild
		pool.Buffer(200) // dynamic rebuild, different coverage
		pool.Buffer(45)
	})
	if allocs != 0 {
		t.Fatalf("warmed BufferPool allocates %.1f times per lookup cycle, want 0", allocs)
	}
}

// TestBufferPoolSlabValuesStable verifies that slab-carved static buffers
// keep their values (and identities) as later builds fill further chunks —
// chunk turnover must never move or clobber live entries.
func TestBufferPoolSlabValuesStable(t *testing.T) {
	h := NewHypergeom(2000, 900, nil)
	pool := NewBufferPool(h, 2, 1500)
	first := pool.Buffer(700)
	want := make([]float64, first.Size())
	for k := first.Lo; k <= first.Hi; k++ {
		want[k-first.Lo] = first.PValue(k)
	}
	// Force many chunk boundaries.
	for s := 2; s <= 1500; s++ {
		pool.Buffer(s)
	}
	again := pool.Buffer(700)
	if again != first {
		t.Fatal("static entry identity changed after later builds")
	}
	ref := h.BuildPBuffer(700)
	for k := first.Lo; k <= first.Hi; k++ {
		if math.Float64bits(again.PValue(k)) != math.Float64bits(want[k-first.Lo]) ||
			math.Float64bits(again.PValue(k)) != math.Float64bits(ref.PValue(k)) {
			t.Fatalf("k=%d: slab value drifted: %g vs %g (ref %g)",
				k, again.PValue(k), want[k-first.Lo], ref.PValue(k))
		}
	}
}
