package stats

import "testing"

// FuzzFisherTwoTailed checks the core invariants of the test statistic on
// arbitrary margins: p ∈ [0,1], observed term included (p >= pmf), buffer
// agreement, and two-class symmetry p(k; nc) == p(sx-k; n-nc).
func FuzzFisherTwoTailed(f *testing.F) {
	f.Add(uint16(20), uint16(11), uint16(6), uint16(3))
	f.Add(uint16(1000), uint16(500), uint16(100), uint16(50))
	f.Add(uint16(2), uint16(0), uint16(2), uint16(0))
	f.Add(uint16(500), uint16(499), uint16(500), uint16(499))
	f.Fuzz(func(t *testing.T, n16, nc16, sx16, k16 uint16) {
		n := int(n16)%800 + 1
		nc := int(nc16) % (n + 1)
		sx := int(sx16) % (n + 1)
		h := NewHypergeom(n, nc, nil)
		lo, hi := h.Bounds(sx)
		k := lo
		if hi > lo {
			k = lo + int(k16)%(hi-lo+1)
		}

		p := h.FisherTwoTailed(k, sx)
		if p < 0 || p > 1 {
			t.Fatalf("p = %g outside [0,1] (n=%d nc=%d sx=%d k=%d)", p, n, nc, sx, k)
		}
		if pmf := h.PMF(k, sx); p < pmf*(1-1e-9) {
			t.Fatalf("p = %g below pmf %g: observed case excluded", p, pmf)
		}
		if b := h.BuildPBuffer(sx); b.PValue(k) != p {
			t.Fatalf("buffer p %g != direct %g", b.PValue(k), p)
		}
		// Two-class symmetry: testing X ⇒ c vs X ⇒ ¬c.
		h2 := NewHypergeom(n, n-nc, nil)
		p2 := h2.FisherTwoTailed(sx-k, sx)
		rel := p - p2
		if rel < 0 {
			rel = -rel
		}
		if rel > 1e-9*(p+1e-300) && rel > 1e-12 {
			t.Fatalf("class symmetry broken: p=%g vs complementary %g", p, p2)
		}
	})
}

// FuzzChiSquare checks the χ² statistic is non-negative and its p-value
// stays in [0,1] for any margins.
func FuzzChiSquare(f *testing.F) {
	f.Add(uint16(100), uint16(40), uint16(30), uint16(10))
	f.Fuzz(func(t *testing.T, n16, nc16, sx16, k16 uint16) {
		n := int(n16)%1000 + 1
		nc := int(nc16) % (n + 1)
		sx := int(sx16) % (n + 1)
		lo := nc + sx - n
		if lo < 0 {
			lo = 0
		}
		hi := nc
		if sx < hi {
			hi = sx
		}
		if hi < lo {
			return
		}
		k := lo
		if hi > lo {
			k = lo + int(k16)%(hi-lo+1)
		}
		x := ChiSquare2x2(k, sx, n, nc)
		if x < 0 {
			t.Fatalf("chi2 = %g negative", x)
		}
		p := ChiSquarePValue(x, 1)
		if p < 0 || p > 1 {
			t.Fatalf("chi2 p = %g outside [0,1]", p)
		}
	})
}
