package stats

import "math"

// PBuffer is the per-coverage p-value buffer B_supp(X) of §4.2.3: for a
// fixed dataset (n, nc) and a fixed coverage sx, it stores the two-tailed
// Fisher p-value of every attainable support k ∈ [L, U], where
// L = max(0, nc+sx-n) and U = min(nc, sx).
//
// The buffer is built in O(U-L+1) time by the paper's scheme: compute all
// hypergeometric terms, then sum them two-ends-inward in ascending order of
// H(k), storing the running sum back into the slot of the term just added.
// Because the pmf is unimodal, the next-smallest unprocessed term is always
// at one of the two ends of the unprocessed window.
//
// A PBuffer is immutable after construction and safe for concurrent use.
type PBuffer struct {
	Lo, Hi int       // attainable support bounds [L, U]
	Cvg    int       // the coverage sx this buffer was built for
	p      []float64 // p[k-Lo] = two-tailed p-value at support k
}

// Bytes returns the approximate memory footprint of the buffer, used by
// BufferPool to enforce its byte budget.
func (b *PBuffer) Bytes() int { return 8*len(b.p) + 48 }

// PValue returns the two-tailed Fisher p-value for supp(R) = k. Values of
// k outside [Lo, Hi] are impossible under the margins; they return 0 so
// that an inconsistent caller fails loudly downstream rather than silently
// passing significance filters with p = 1.
//
//armine:noalloc
func (b *PBuffer) PValue(k int) float64 {
	if k < b.Lo || k > b.Hi {
		return 0
	}
	return b.p[k-b.Lo]
}

// Size returns the number of attainable support values (U - L + 1).
func (b *PBuffer) Size() int { return len(b.p) }

// PValuesInto fills dst[i] with PValue(ks[i]) for every support in ks —
// the batch form the permutation engine uses after counting one rule's
// supports across a whole block of permutations. dst and ks must have
// equal length.
//
//armine:noalloc
func (b *PBuffer) PValuesInto(dst []float64, ks []int32) {
	lo, hi := int32(b.Lo), int32(b.Hi)
	for i, k := range ks {
		if k < lo || k > hi {
			dst[i] = 0
			continue
		}
		dst[i] = b.p[k-lo]
	}
}

// BuildPBuffer computes the p-value buffer for coverage sx.
//
// Ties are handled in groups: supports whose hypergeometric terms are equal
// (within a relative tolerance) receive the same p-value — the running sum
// after ALL tied terms are added — matching the definition
// E = {k : H(k) <= H(obs)} exactly even when the distribution is symmetric.
func (h *Hypergeom) BuildPBuffer(sx int) *PBuffer {
	lo, hi := h.Bounds(sx)
	m := hi - lo + 1
	terms := make([]float64, m)
	p := make([]float64, m)
	h.fillPValues(terms, p, sx, lo, hi)
	return &PBuffer{Lo: lo, Hi: hi, Cvg: sx, p: p}
}

// fillPValues computes the two-tailed p-value ladder of coverage sx into p,
// using terms as scratch; both must have length hi-lo+1 for lo, hi =
// Bounds(sx). It is the single ladder construction shared by BuildPBuffer,
// the BufferPool's slab-backed builds and FisherTwoTailedScratch, so
// buffered and direct p-values are BIT-IDENTICAL — one summation order,
// no 1-ulp divergence to flip downstream tie decisions.
//
// Two pointers walk in from the ends; at each step consume the smaller end
// term. Ties (within tieEps relative tolerance) are consumed as a group —
// all end terms equal to the current minimum — before any p-value in the
// group is finalised.
func (h *Hypergeom) fillPValues(terms, p []float64, sx, lo, hi int) {
	for k := lo; k <= hi; k++ {
		terms[k-lo] = math.Exp(h.LogPMF(k, sx))
	}
	left, right := 0, len(p)-1
	sum := 0.0
	for left <= right {
		minTerm := terms[left]
		if terms[right] < minTerm {
			minTerm = terms[right]
		}
		hiBound := minTerm * (1 + tieEps)
		l0, r0 := left, right
		for left <= right && terms[left] <= hiBound {
			sum += terms[left]
			left++
		}
		for right >= left && terms[right] <= hiBound {
			sum += terms[right]
			right--
		}
		v := sum
		if v > 1 {
			v = 1
		}
		// The group is the two consumed end runs: [l0, left) and (right, r0].
		for i := l0; i < left; i++ {
			p[i] = v
		}
		for i := right + 1; i <= r0; i++ {
			p[i] = v
		}
	}
}
