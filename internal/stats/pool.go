package stats

import "fmt"

// BufferPool implements the static + dynamic p-value buffer organisation of
// §4.2.3. The static buffer caches the p-value buffers of every coverage in
// [minSup, maxSup], where maxSup is derived from a byte budget (the paper
// uses 16 MB). Coverages above maxSup share a single dynamic slot that
// always holds the buffer of the last such coverage seen (the variable
// sup_d in the paper).
//
// A BufferPool is NOT safe for concurrent use: the permutation engine gives
// each worker its own pool (sharing the immutable Hypergeom and LogFact
// underneath), which mirrors the paper's single-threaded design while
// letting the reproduction scale out.
type BufferPool struct {
	H      *Hypergeom
	minSup int
	maxSup int

	static []*PBuffer // static[cvg-minSup] for cvg in [minSup, maxSup]
	dyn    *PBuffer   // dynamic one-slot buffer
	supd   int        // coverage currently held by dyn; 0 = none

	// Lazily built static buffers carve their payload from chunked slabs
	// and share one ladder-terms scratch, so a pool's allocation count is
	// O(chunks), not O(coverages built) — the permutation engine keeps one
	// pool per worker on its hot path. The dynamic slot rebuilds in place,
	// reusing its capacity.
	slab  []float64 // current payload chunk (len = used, cap = chunk size)
	bufs  []PBuffer // current header chunk; static entries point into it
	terms []float64 // ladder scratch, grown to the largest coverage seen

	// Counters for instrumentation (Fig 4 analysis and tests).
	StaticHits, StaticBuilds int
	DynHits, DynBuilds       int
}

// poolChunk sizes the payload slab chunks (float64s, 256 KiB each) and
// bufChunk the PBuffer header chunks.
const (
	poolChunk = 1 << 15
	bufChunk  = 256
)

// NewBufferPool returns a pool for the dataset described by h, caching
// coverages in [minSup, maxSup] statically. Use MaxSupForBudget to derive
// maxSup from a byte budget. maxSup < minSup disables the static buffer
// entirely (every lookup goes through the dynamic slot), which is the
// "dynamic buffer" configuration of Fig 4.
func NewBufferPool(h *Hypergeom, minSup, maxSup int) *BufferPool {
	if minSup < 1 {
		minSup = 1
	}
	p := &BufferPool{H: h, minSup: minSup, maxSup: maxSup}
	if maxSup >= minSup {
		p.static = make([]*PBuffer, maxSup-minSup+1)
	}
	return p
}

// MaxSupForBudget returns the largest maxSup such that the static buffers
// for all coverages in [minSup, maxSup] fit within budgetBytes. The buffer
// for coverage s holds U-L+1 float64 values with U = min(nc, s) and
// L = max(0, nc+s-n). Returns minSup-1 (static buffer disabled) when not
// even the first buffer fits.
func MaxSupForBudget(h *Hypergeom, minSup int, budgetBytes int) int {
	if minSup < 1 {
		minSup = 1
	}
	total := 0
	s := minSup
	for s <= h.n {
		lo, hi := h.Bounds(s)
		total += 8*(hi-lo+1) + 48
		if total > budgetBytes {
			return s - 1
		}
		s++
	}
	return h.n
}

// PValue returns the two-tailed Fisher p-value of a rule with coverage cvg
// and support k, routing the lookup through the static or dynamic buffer
// exactly as §4.2.3 prescribes.
//
//armine:noalloc
func (p *BufferPool) PValue(cvg, k int) float64 {
	return p.Buffer(cvg).PValue(k)
}

// Buffer returns the p-value buffer for coverage cvg, building and caching
// it if necessary. The returned buffer is only valid until the next call
// when it comes from the dynamic slot. Buffer itself is allocation-free on
// hits; builds happen in the cold buildStatic/buildDyn helpers.
//
//armine:noalloc
func (p *BufferPool) Buffer(cvg int) *PBuffer {
	if cvg < 0 || cvg > p.H.n {
		panicCoverage(cvg, p.H.n)
	}
	if p.static != nil && cvg >= p.minSup && cvg <= p.maxSup {
		b := p.static[cvg-p.minSup]
		if b == nil {
			b = p.buildStatic(cvg)
			p.static[cvg-p.minSup] = b
			p.StaticBuilds++
		} else {
			p.StaticHits++
		}
		return b
	}
	if p.dyn != nil && p.supd == cvg {
		p.DynHits++
		return p.dyn
	}
	p.buildDyn(cvg)
	p.supd = cvg
	p.DynBuilds++
	return p.dyn
}

// panicCoverage keeps the message formatting — an allocation — out of
// Buffer's noalloc body.
func panicCoverage(cvg, n int) {
	panic(fmt.Sprintf("stats: BufferPool.Buffer: coverage %d out of [0, %d]", cvg, n))
}

// growTerms returns the shared ladder scratch with room for m terms.
func (p *BufferPool) growTerms(m int) []float64 {
	if cap(p.terms) < m {
		p.terms = make([]float64, m)
	}
	return p.terms[:m]
}

// buildStatic builds the buffer for coverage cvg with its payload carved
// from the pool's chunked slab and its header appended to the current
// header chunk; filled chunks are abandoned in place (their entries stay
// live) and a fresh chunk starts.
func (p *BufferPool) buildStatic(cvg int) *PBuffer {
	lo, hi := p.H.Bounds(cvg)
	m := hi - lo + 1
	if cap(p.slab)-len(p.slab) < m {
		c := poolChunk
		if m > c {
			c = m
		}
		p.slab = make([]float64, 0, c)
	}
	pv := p.slab[len(p.slab) : len(p.slab)+m : len(p.slab)+m]
	p.slab = p.slab[:len(p.slab)+m]
	p.H.fillPValues(p.growTerms(m), pv, cvg, lo, hi)
	if len(p.bufs) == cap(p.bufs) {
		p.bufs = make([]PBuffer, 0, bufChunk)
	}
	p.bufs = append(p.bufs, PBuffer{Lo: lo, Hi: hi, Cvg: cvg, p: pv})
	return &p.bufs[len(p.bufs)-1]
}

// buildDyn rebuilds the dynamic slot in place for coverage cvg, reusing
// the slot's payload capacity.
func (p *BufferPool) buildDyn(cvg int) {
	if p.dyn == nil {
		p.dyn = &PBuffer{}
	}
	lo, hi := p.H.Bounds(cvg)
	m := hi - lo + 1
	if cap(p.dyn.p) < m {
		p.dyn.p = make([]float64, m)
	}
	p.dyn.Lo, p.dyn.Hi, p.dyn.Cvg = lo, hi, cvg
	p.dyn.p = p.dyn.p[:m]
	p.H.fillPValues(p.growTerms(m), p.dyn.p, cvg, lo, hi)
}

// StaticBytes returns the memory currently held by built static buffers.
func (p *BufferPool) StaticBytes() int {
	total := 0
	for _, b := range p.static {
		if b != nil {
			total += b.Bytes()
		}
	}
	return total
}
