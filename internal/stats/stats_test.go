package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m || d <= 1e-300
}

func TestLogFactValues(t *testing.T) {
	lf := NewLogFact(20)
	// ln(k!) against direct products.
	fact := 1.0
	for k := 0; k <= 20; k++ {
		if k > 0 {
			fact *= float64(k)
		}
		if !approx(lf.At(k), math.Log(fact), 1e-12) {
			t.Errorf("ln(%d!) = %g, want %g", k, lf.At(k), math.Log(fact))
		}
	}
}

func TestLogChoose(t *testing.T) {
	lf := NewLogFact(30)
	cases := []struct {
		a, b int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {30, 15, 155117520},
	}
	for _, c := range cases {
		got := math.Exp(lf.LogChoose(c.a, c.b))
		if !approx(got, c.want, 1e-10) {
			t.Errorf("C(%d,%d) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}

func TestLogChoosePanics(t *testing.T) {
	lf := NewLogFact(10)
	for _, c := range [][2]int{{5, -1}, {5, 6}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LogChoose(%d,%d) did not panic", c[0], c[1])
				}
			}()
			lf.LogChoose(c[0], c[1])
		}()
	}
}

// Figure 2 of the paper tabulates H(k; 20, 11, 6) and the corresponding
// two-tailed p-values. These are our primary ground-truth vectors.
var fig2H = []float64{0.0021672, 0.035759, 0.17879, 0.35759, 0.30650, 0.10728, 0.011920}
var fig2P = []float64{0.0021672, 0.049845, 0.33591, 1.0000, 0.64241, 0.15712, 0.014087}

func TestHypergeomFigure2PMF(t *testing.T) {
	h := NewHypergeom(20, 11, nil)
	lo, hi := h.Bounds(6)
	if lo != 0 || hi != 6 {
		t.Fatalf("Bounds(6) = [%d,%d], want [0,6]", lo, hi)
	}
	for k := 0; k <= 6; k++ {
		if got := h.PMF(k, 6); !approx(got, fig2H[k], 1e-4) {
			t.Errorf("H(%d;20,11,6) = %g, want %g", k, got, fig2H[k])
		}
	}
}

func TestFisherFigure2PValues(t *testing.T) {
	h := NewHypergeom(20, 11, nil)
	for k := 0; k <= 6; k++ {
		if got := h.FisherTwoTailed(k, 6); !approx(got, fig2P[k], 1e-4) {
			t.Errorf("p(%d;20,11,6) = %g, want %g", k, got, fig2P[k])
		}
	}
}

func TestPBufferFigure2(t *testing.T) {
	h := NewHypergeom(20, 11, nil)
	b := h.BuildPBuffer(6)
	if b.Lo != 0 || b.Hi != 6 || b.Size() != 7 {
		t.Fatalf("buffer bounds [%d,%d] size %d, want [0,6] size 7", b.Lo, b.Hi, b.Size())
	}
	for k := 0; k <= 6; k++ {
		if got := b.PValue(k); !approx(got, fig2P[k], 1e-4) {
			t.Errorf("buffer p(%d) = %g, want %g", k, got, fig2P[k])
		}
	}
	// Out-of-range supports are impossible observations.
	if b.PValue(-1) != 0 || b.PValue(7) != 0 {
		t.Error("out-of-range PValue should be 0")
	}
}

func TestPMFSumsToOne(t *testing.T) {
	for _, c := range []struct{ n, nc, sx int }{
		{20, 11, 6}, {100, 50, 30}, {1000, 500, 100}, {77, 13, 60}, {10, 10, 4}, {10, 0, 4},
	} {
		h := NewHypergeom(c.n, c.nc, nil)
		lo, hi := h.Bounds(c.sx)
		s := 0.0
		for k := lo; k <= hi; k++ {
			s += h.PMF(k, c.sx)
		}
		if !approx(s, 1, 1e-10) {
			t.Errorf("PMF(%d,%d,%d) sums to %g", c.n, c.nc, c.sx, s)
		}
	}
}

func TestBufferMatchesDirectFisher(t *testing.T) {
	for _, c := range []struct{ n, nc, sx int }{
		{50, 25, 10}, {200, 70, 45}, {333, 111, 99}, {1000, 500, 40}, {64, 32, 32},
	} {
		h := NewHypergeom(c.n, c.nc, nil)
		b := h.BuildPBuffer(c.sx)
		lo, hi := h.Bounds(c.sx)
		for k := lo; k <= hi; k++ {
			direct := h.FisherTwoTailed(k, c.sx)
			buffered := b.PValue(k)
			if !approx(direct, buffered, 1e-9) {
				t.Errorf("n=%d nc=%d sx=%d k=%d: direct %g != buffered %g",
					c.n, c.nc, c.sx, k, direct, buffered)
			}
		}
	}
}

func TestPBufferPValuesInto(t *testing.T) {
	h := NewHypergeom(200, 70, nil)
	b := h.BuildPBuffer(45)
	// Sweep every attainable support plus out-of-range values on both
	// sides; the batch form must agree with element-wise PValue.
	ks := []int32{int32(b.Lo) - 2, int32(b.Lo) - 1}
	for k := b.Lo; k <= b.Hi; k++ {
		ks = append(ks, int32(k))
	}
	ks = append(ks, int32(b.Hi)+1, int32(b.Hi)+5)
	dst := make([]float64, len(ks))
	b.PValuesInto(dst, ks)
	for i, k := range ks {
		if want := b.PValue(int(k)); dst[i] != want {
			t.Errorf("k=%d: PValuesInto %g, PValue %g", k, dst[i], want)
		}
	}
}

func TestFisherSymmetricTies(t *testing.T) {
	// With nc = n/2 the distribution is symmetric: H(k) == H(sx-k), so the
	// two-tailed p-value of k must include the mirrored support as a tie.
	h := NewHypergeom(100, 50, nil)
	for sx := 2; sx <= 40; sx += 7 {
		lo, hi := h.Bounds(sx)
		for k := lo; k <= hi; k++ {
			mirror := sx - k
			pk := h.FisherTwoTailed(k, sx)
			pm := h.FisherTwoTailed(mirror, sx)
			if !approx(pk, pm, 1e-9) {
				t.Errorf("sx=%d: p(%d)=%g != p(%d)=%g under symmetry", sx, k, pk, mirror, pm)
			}
		}
	}
}

func TestFisherKnownValuesFromPaper(t *testing.T) {
	// §2.3: "when #records=1000, supp(c)=500 and supp(X)=5, even if
	// conf(R)=1, the p-value of R : X ⇒ c is as high as 0.062."
	h := NewHypergeom(1000, 500, nil)
	if got := h.FisherTwoTailed(5, 5); !approx(got, 0.062, 0.02) {
		t.Errorf("p(5;1000,500,5) = %g, want ≈ 0.062", got)
	}
	// "When #records=1000 and supp(c)=500 and conf(R)=0.55, even if
	// supp(X)=200, the p-value of R is as high as 0.133."
	if got := h.FisherTwoTailed(110, 200); !approx(got, 0.133, 0.02) {
		t.Errorf("p(110;1000,500,200) = %g, want ≈ 0.133", got)
	}
}

func TestFisherPropertyRange(t *testing.T) {
	f := func(n16, nc16, sx16, k16 uint16) bool {
		n := int(n16%400) + 1
		nc := int(nc16) % (n + 1)
		sx := int(sx16) % (n + 1)
		h := NewHypergeom(n, nc, nil)
		lo, hi := h.Bounds(sx)
		k := lo
		if hi > lo {
			k = lo + int(k16)%(hi-lo+1)
		}
		p := h.FisherTwoTailed(k, sx)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFisherPropertyObservedIncluded(t *testing.T) {
	// p(k) >= H(k): the observed case is always part of the tail set.
	f := func(n16, nc16, sx16, k16 uint16) bool {
		n := int(n16%300) + 2
		nc := int(nc16) % (n + 1)
		sx := int(sx16) % (n + 1)
		h := NewHypergeom(n, nc, nil)
		lo, hi := h.Bounds(sx)
		k := lo
		if hi > lo {
			k = lo + int(k16)%(hi-lo+1)
		}
		return h.FisherTwoTailed(k, sx) >= h.PMF(k, sx)*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUpperLowerTail(t *testing.T) {
	h := NewHypergeom(20, 11, nil)
	// Upper + lower overlap on exactly H(k).
	for k := 0; k <= 6; k++ {
		up := h.UpperTail(k, 6)
		low := h.LowerTail(k, 6)
		if !approx(up+low, 1+h.PMF(k, 6), 1e-9) {
			t.Errorf("k=%d: upper %g + lower %g != 1 + pmf %g", k, up, low, h.PMF(k, 6))
		}
	}
	if h.UpperTail(0, 6) != 1 {
		t.Error("UpperTail at lower bound should be 1")
	}
	if h.UpperTail(7, 6) != 0 {
		t.Error("UpperTail above upper bound should be 0")
	}
	if h.LowerTail(6, 6) != 1 {
		t.Error("LowerTail at upper bound should be 1")
	}
}

func TestHypergeomMean(t *testing.T) {
	h := NewHypergeom(1000, 500, nil)
	if got := h.Mean(100); !approx(got, 50, 1e-12) {
		t.Errorf("Mean(100) = %g, want 50", got)
	}
}

func TestMidPBelowStandard(t *testing.T) {
	h := NewHypergeom(200, 90, nil)
	for _, sx := range []int{10, 40, 80} {
		lo, hi := h.Bounds(sx)
		for k := lo; k <= hi; k++ {
			std := h.FisherTwoTailed(k, sx)
			mid := h.FisherMidP(k, sx)
			if mid > std+1e-12 {
				t.Errorf("sx=%d k=%d: mid-p %g > standard %g", sx, k, mid, std)
			}
		}
	}
}

func TestBufferPoolRouting(t *testing.T) {
	h := NewHypergeom(500, 250, nil)
	pool := NewBufferPool(h, 10, 50)

	// Static range: repeated access hits the cache.
	b1 := pool.Buffer(20)
	b2 := pool.Buffer(20)
	if b1 != b2 {
		t.Error("static buffer not cached")
	}
	if pool.StaticBuilds != 1 || pool.StaticHits != 1 {
		t.Errorf("static builds/hits = %d/%d, want 1/1", pool.StaticBuilds, pool.StaticHits)
	}

	// Dynamic range: same coverage hits, different coverage rebuilds.
	pool.Buffer(100)
	pool.Buffer(100)
	pool.Buffer(200)
	pool.Buffer(100)
	if pool.DynBuilds != 3 || pool.DynHits != 1 {
		t.Errorf("dyn builds/hits = %d/%d, want 3/1", pool.DynBuilds, pool.DynHits)
	}

	// Values agree with direct computation in both ranges.
	for _, cvg := range []int{10, 35, 50, 60, 400} {
		lo, hi := h.Bounds(cvg)
		for k := lo; k <= hi; k += 7 {
			if got, want := pool.PValue(cvg, k), h.FisherTwoTailed(k, cvg); !approx(got, want, 1e-9) {
				t.Errorf("pool.PValue(%d,%d) = %g, want %g", cvg, k, got, want)
			}
		}
	}
}

func TestBufferPoolDisabledStatic(t *testing.T) {
	h := NewHypergeom(100, 40, nil)
	pool := NewBufferPool(h, 10, 0) // maxSup < minSup: no static buffer
	pool.Buffer(20)
	pool.Buffer(20)
	if pool.StaticBuilds != 0 || pool.DynBuilds != 1 || pool.DynHits != 1 {
		t.Errorf("static/dyn builds = %d/%d hits=%d; want 0/1 hits=1",
			pool.StaticBuilds, pool.DynBuilds, pool.DynHits)
	}
}

func TestMaxSupForBudget(t *testing.T) {
	h := NewHypergeom(1000, 500, nil)
	// A generous budget covers everything.
	if got := MaxSupForBudget(h, 10, 1<<30); got != 1000 {
		t.Errorf("MaxSupForBudget(huge) = %d, want 1000", got)
	}
	// A zero budget covers nothing.
	if got := MaxSupForBudget(h, 10, 0); got != 9 {
		t.Errorf("MaxSupForBudget(0) = %d, want 9", got)
	}
	// A moderate budget is monotone in the budget.
	a := MaxSupForBudget(h, 10, 10_000)
	b := MaxSupForBudget(h, 10, 100_000)
	if a > b {
		t.Errorf("MaxSupForBudget not monotone: %d > %d", a, b)
	}
	// The implied allocation respects the budget.
	pool := NewBufferPool(h, 10, a)
	for s := 10; s <= a; s++ {
		pool.Buffer(s)
	}
	if pool.StaticBytes() > 10_000 {
		t.Errorf("static bytes %d exceed budget 10000", pool.StaticBytes())
	}
}

func TestChiSquare2x2(t *testing.T) {
	// Table a=10, b=20, c=30, d=40 (k=10, sx=30, n=100, nc=40): expected
	// counts are 12/18/28/42, so χ² = 4/12 + 4/18 + 4/28 + 4/42 = 0.79365.
	x := ChiSquare2x2(10, 30, 100, 40)
	if !approx(x, 0.7936507936507936, 1e-9) {
		t.Errorf("chi2 = %g, want 0.79365", x)
	}
	// Independence gives 0.
	if got := ChiSquare2x2(20, 40, 100, 50); !approx(got, 0, 1e-12) && got != 0 {
		t.Errorf("chi2 at independence = %g, want 0", got)
	}
	// Degenerate margins give 0.
	if got := ChiSquare2x2(0, 0, 100, 40); got != 0 {
		t.Errorf("chi2 with empty row = %g, want 0", got)
	}
}

func TestChiSquarePValue(t *testing.T) {
	// df=1 known quantiles: P[χ²₁ >= 3.841] ≈ 0.05.
	if got := ChiSquarePValue(3.8415, 1); !approx(got, 0.05, 1e-3) {
		t.Errorf("P[chi2_1 >= 3.8415] = %g, want 0.05", got)
	}
	// df=2: P[χ²₂ >= x] = exp(-x/2).
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		if got, want := ChiSquarePValue(x, 2), math.Exp(-x/2); !approx(got, want, 1e-8) {
			t.Errorf("P[chi2_2 >= %g] = %g, want %g", x, got, want)
		}
	}
	// df=5 known value: P[χ²₅ >= 11.07] ≈ 0.05.
	if got := ChiSquarePValue(11.0705, 5); !approx(got, 0.05, 1e-3) {
		t.Errorf("P[chi2_5 >= 11.07] = %g, want 0.05", got)
	}
	if ChiSquarePValue(0, 3) != 1 {
		t.Error("P at x=0 should be 1")
	}
}

func TestChiSquareAgreesWithFisherAsymptotically(t *testing.T) {
	// For large balanced tables the χ² p-value approaches the Fisher
	// two-tailed p-value. Check order-of-magnitude agreement.
	h := NewHypergeom(2000, 1000, nil)
	for _, k := range []int{220, 240, 260} {
		fp := h.FisherTwoTailed(k, 400)
		cp := ChiSquarePValue(ChiSquare2x2(k, 400, 2000, 1000), 1)
		if fp == 0 || cp == 0 {
			continue
		}
		ratio := math.Log10(fp) / math.Log10(cp)
		if cp > 1e-10 && (ratio < 0.5 || ratio > 2) {
			t.Errorf("k=%d: fisher %g vs chi2 %g disagree beyond tolerance", k, fp, cp)
		}
	}
}

func TestBoundsProperties(t *testing.T) {
	f := func(n16, nc16, sx16 uint16) bool {
		n := int(n16%500) + 1
		nc := int(nc16) % (n + 1)
		sx := int(sx16) % (n + 1)
		h := NewHypergeom(n, nc, nil)
		lo, hi := h.Bounds(sx)
		return lo >= 0 && hi <= nc && hi <= sx && lo <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
