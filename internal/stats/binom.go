package stats

import "math"

// WilsonBounds returns the Wilson score confidence interval [lo, hi] for a
// binomial proportion with count successes in n trials, at z standard
// normal units (z = 1.96 for a 95% two-sided interval; larger z widens
// the interval). Unlike the Wald interval, the Wilson interval stays
// informative at count 0 and count n, which is exactly where sequential
// permutation testing consults it. n <= 0 returns the vacuous [0, 1].
func WilsonBounds(count, n int64, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := float64(count) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = center - half
	if lo < 0 {
		lo = 0
	}
	hi = center + half
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
