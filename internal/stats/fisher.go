package stats

import "math"

// tieEps is the relative tolerance used when deciding whether a
// hypergeometric term is "equally extreme" as the observed one. Without a
// tolerance, terms that are mathematically equal (the distribution is
// symmetric when nc = n/2) would be excluded or included at the mercy of
// floating-point rounding. R's fisher.test uses a relative tolerance of
// 1e-7 for the same reason; we are slightly stricter.
const tieEps = 1e-9

// FisherTwoTailed returns the two-tailed Fisher exact p-value of the rule
// R : X ⇒ c with supp(R) = k and coverage supp(X) = sx (§2.2):
//
//	p(R) = Σ_{j ∈ E} H(j; n, nc, sx),   E = {j : H(j) <= H(k)}
//
// i.e. the total probability of all support values at most as likely as the
// observed one. The result is clamped to [0, 1].
//
// The computation delegates to BuildPBuffer so that direct and buffered
// p-values are BIT-IDENTICAL: permutation p-values land on the same
// discrete grid as the original ones, and the correction procedures
// compare them with <=, so even a 1-ulp difference between two summation
// orders would flip tie decisions. One numeric path removes that hazard.
func (h *Hypergeom) FisherTwoTailed(k, sx int) float64 {
	lo, hi := h.Bounds(sx)
	if k < lo || k > hi {
		// Impossible observation under the margins; treat as most extreme.
		return 0
	}
	return h.BuildPBuffer(sx).PValue(k)
}

// PScratch is reusable scratch for FisherTwoTailedScratch: the ladder
// terms and p-values of one coverage. The zero value is ready to use; the
// backing slices grow to the largest coverage seen and are then reused, so
// steady-state direct Fisher evaluation allocates nothing. Not safe for
// concurrent use — give each worker its own.
type PScratch struct {
	terms, p []float64
}

// FisherTwoTailedScratch is FisherTwoTailed with the ladder built in s
// instead of a freshly allocated PBuffer. It shares fillPValues with
// BuildPBuffer, so the result is bit-identical to both FisherTwoTailed and
// the buffered lookups — the "no optimization" configuration pays the
// per-evaluation ladder rebuild the paper charges it, just not the
// allocator.
//
//armine:noalloc
func (h *Hypergeom) FisherTwoTailedScratch(s *PScratch, k, sx int) float64 {
	lo, hi := h.Bounds(sx)
	if k < lo || k > hi {
		return 0
	}
	m := hi - lo + 1
	if cap(s.terms) < m {
		s.grow(m)
	}
	terms, p := s.terms[:m], s.p[:m]
	h.fillPValues(terms, p, sx, lo, hi)
	return p[k-lo]
}

// grow widens the scratch to hold m ladder positions — the cold path of
// FisherTwoTailedScratch, hit once per high-water coverage.
func (s *PScratch) grow(m int) {
	s.terms = make([]float64, m)
	s.p = make([]float64, m)
}

// FisherOneTailed returns the one-tailed (enrichment) Fisher exact p-value
// P[K >= k]. It is provided for callers that test directional hypotheses;
// the paper itself uses the two-tailed form.
func (h *Hypergeom) FisherOneTailed(k, sx int) float64 {
	return h.UpperTail(k, sx)
}

// FisherMidP returns the mid-p variant of the two-tailed test: the observed
// terms count half. Mid-p is less conservative than the standard exact test
// and is included as an extension; the paper uses the standard form.
func (h *Hypergeom) FisherMidP(k, sx int) float64 {
	lo, hi := h.Bounds(sx)
	if k < lo || k > hi {
		return 0
	}
	if lo == hi {
		return 0.5
	}
	obs := math.Exp(h.LogPMF(k, sx))
	threshold := obs * (1 + tieEps)
	tieLow := obs * (1 - tieEps)
	full, ties := 0.0, 0.0
	for j := lo; j <= hi; j++ {
		t := math.Exp(h.LogPMF(j, sx))
		if t > threshold {
			continue
		}
		if t >= tieLow {
			ties += t
		} else {
			full += t
		}
	}
	p := full + ties/2
	if p > 1 {
		p = 1
	}
	return p
}
