// Package stats implements the statistical machinery of Liu, Zhang & Wong,
// "Controlling False Positives in Association Rule Mining" (VLDB 2011):
// the hypergeometric distribution, the two-tailed Fisher exact test used to
// score class association rules (§2.2), the χ² alternative mentioned in the
// paper's related work, and the p-value buffering scheme of §4.2.3 (per-
// coverage buffers built two-ends-inward, cached in a byte-budgeted static
// buffer plus a one-slot dynamic buffer).
package stats

import (
	"fmt"
	"math"
)

// LogFact memoises ln(k!) for k in [0, n]. The paper stores the logarithm of
// the factorials (rather than the factorials themselves) precisely because
// n! overflows float64 already for n = 171; we do the same.
//
// The table is immutable after construction and safe for concurrent use.
type LogFact struct {
	lf []float64
}

// NewLogFact builds the table of ln(k!) for k = 0..n incrementally in
// O(n+1) time, as described in §4.2.3.
func NewLogFact(n int) *LogFact {
	if n < 0 {
		panic(fmt.Sprintf("stats: NewLogFact(%d): n must be >= 0", n))
	}
	lf := make([]float64, n+1)
	for k := 2; k <= n; k++ {
		lf[k] = lf[k-1] + math.Log(float64(k))
	}
	return &LogFact{lf: lf}
}

// N returns the largest k for which At(k) is defined.
func (t *LogFact) N() int { return len(t.lf) - 1 }

// At returns ln(k!).
func (t *LogFact) At(k int) float64 {
	return t.lf[k]
}

// LogChoose returns ln(C(a, b)). It panics if b < 0 or b > a.
func (t *LogFact) LogChoose(a, b int) float64 {
	if b < 0 || b > a {
		panic(fmt.Sprintf("stats: LogChoose(%d, %d): out of range", a, b))
	}
	return t.lf[a] - t.lf[b] - t.lf[a-b]
}
