package stats

import "math"

// ChiSquare2x2 returns the Pearson χ² statistic of the 2×2 contingency
// table induced by a rule R : X ⇒ c with support k, coverage sx, on a
// dataset of n records with nc in class c:
//
//	            c        ¬c
//	 X       k        sx-k
//	¬X    nc-k   n-nc-sx+k
//
// This is the statistic Brin et al. (SIGMOD 1997) use to assess rules; the
// paper adopts Fisher's exact test instead but cites χ² as the common
// alternative (§2.2). Degenerate margins (empty row or column) yield 0.
func ChiSquare2x2(k, sx, n, nc int) float64 {
	a := float64(k)
	b := float64(sx - k)
	c := float64(nc - k)
	d := float64(n - nc - sx + k)
	rowX, rowNX := a+b, c+d
	colC, colNC := a+c, b+d
	if rowX == 0 || rowNX == 0 || colC == 0 || colNC == 0 {
		return 0
	}
	det := a*d - b*c
	return float64(n) * det * det / (rowX * rowNX * colC * colNC)
}

// ChiSquarePValue returns the upper-tail probability P[χ²_df >= x], the
// p-value of a chi-square statistic x with df degrees of freedom.
// A 2×2 table has df = 1.
func ChiSquarePValue(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	if df == 1 {
		// χ²₁ is the square of a standard normal: P[χ²₁ >= x] = erfc(√(x/2)).
		return math.Erfc(math.Sqrt(x / 2))
	}
	return gammaQ(float64(df)/2, x/2)
}

// gammaQ returns the regularised upper incomplete gamma function Q(a, x) =
// Γ(a, x)/Γ(a), computed by the series expansion for x < a+1 and by the
// Lentz continued fraction otherwise (Numerical Recipes §6.2).
func gammaQ(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
