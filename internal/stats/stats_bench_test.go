package stats

import "testing"

// Ablation: direct Fisher computation vs buffered lookup. The dynamic/
// static buffers exist because a permutation test evaluates the same
// (coverage, support) pairs millions of times; these benches quantify the
// per-lookup gap that Fig 4 aggregates.

func BenchmarkFisherDirect(b *testing.B) {
	h := NewHypergeom(2000, 1000, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkF = h.FisherTwoTailed(150+i%50, 400)
	}
}

func BenchmarkFisherBuffered(b *testing.B) {
	h := NewHypergeom(2000, 1000, nil)
	pool := NewBufferPool(h, 100, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF = pool.PValue(400, 150+i%50)
	}
}

func BenchmarkBuildPBuffer(b *testing.B) {
	h := NewHypergeom(2000, 1000, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkB = h.BuildPBuffer(100 + i%400)
	}
}

func BenchmarkBufferPoolDynamicChurn(b *testing.B) {
	// Worst case for the one-slot dynamic buffer: alternating coverages.
	h := NewHypergeom(2000, 1000, nil)
	pool := NewBufferPool(h, 100, 99) // static disabled
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkF = pool.PValue(600+(i%2)*100, 350)
	}
}

func BenchmarkChiSquarePValue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkF = ChiSquarePValue(ChiSquare2x2(150+i%50, 400, 2000, 1000), 1)
	}
}

func BenchmarkLogFactBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkL = NewLogFact(32561)
	}
}

var (
	sinkF float64
	sinkB *PBuffer
	sinkL *LogFact
)
