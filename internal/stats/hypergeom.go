package stats

import (
	"fmt"
	"math"
)

// Hypergeom evaluates the hypergeometric distribution
//
//	H(k; n, nc, sx) = C(nc, k) · C(n-nc, sx-k) / C(n, sx)
//
// which, in the paper's notation (§2.2), is the probability that a rule
// R : X ⇒ c with coverage supp(X) = sx has support supp(R) = k under the
// null hypothesis that X and c are independent, given n records of which
// nc carry class c.
//
// Hypergeom is immutable after construction and safe for concurrent use.
type Hypergeom struct {
	n, nc int
	lf    *LogFact
}

// NewHypergeom returns a hypergeometric evaluator for a dataset with n
// records, nc of which carry the class of interest. The log-factorial
// table lf must cover at least n; pass nil to have one built internally.
func NewHypergeom(n, nc int, lf *LogFact) *Hypergeom {
	if n < 0 || nc < 0 || nc > n {
		panic(fmt.Sprintf("stats: NewHypergeom(%d, %d): need 0 <= nc <= n", n, nc))
	}
	if lf == nil {
		lf = NewLogFact(n)
	}
	if lf.N() < n {
		panic(fmt.Sprintf("stats: NewHypergeom: log-factorial table covers %d < n=%d", lf.N(), n))
	}
	return &Hypergeom{n: n, nc: nc, lf: lf}
}

// N returns the number of records.
func (h *Hypergeom) N() int { return h.n }

// NC returns the number of records carrying the class of interest.
func (h *Hypergeom) NC() int { return h.nc }

// Bounds returns the support range [L, U] attainable by a rule with
// coverage sx: L = max(0, nc+sx-n), U = min(nc, sx).
func (h *Hypergeom) Bounds(sx int) (lo, hi int) {
	lo = h.nc + sx - h.n
	if lo < 0 {
		lo = 0
	}
	hi = h.nc
	if sx < hi {
		hi = sx
	}
	return lo, hi
}

// LogPMF returns ln H(k; n, nc, sx). k must lie within Bounds(sx) and
// 0 <= sx <= n must hold.
func (h *Hypergeom) LogPMF(k, sx int) float64 {
	return h.lf.LogChoose(h.nc, k) +
		h.lf.LogChoose(h.n-h.nc, sx-k) -
		h.lf.LogChoose(h.n, sx)
}

// PMF returns H(k; n, nc, sx), or 0 for k outside Bounds(sx).
func (h *Hypergeom) PMF(k, sx int) float64 {
	lo, hi := h.Bounds(sx)
	if k < lo || k > hi {
		return 0
	}
	return math.Exp(h.LogPMF(k, sx))
}

// UpperTail returns P[K >= k] = Σ_{j >= k} H(j; n, nc, sx), the one-tailed
// (enrichment) Fisher p-value. Values of k below the lower bound give 1.
func (h *Hypergeom) UpperTail(k, sx int) float64 {
	lo, hi := h.Bounds(sx)
	if k <= lo {
		return 1
	}
	if k > hi {
		return 0
	}
	// Sum from the extreme end inward so that small terms accumulate first.
	s := 0.0
	for j := hi; j >= k; j-- {
		s += math.Exp(h.LogPMF(j, sx))
	}
	if s > 1 {
		s = 1
	}
	return s
}

// LowerTail returns P[K <= k] = Σ_{j <= k} H(j; n, nc, sx), the one-tailed
// depletion p-value.
func (h *Hypergeom) LowerTail(k, sx int) float64 {
	lo, hi := h.Bounds(sx)
	if k >= hi {
		return 1
	}
	if k < lo {
		return 0
	}
	s := 0.0
	for j := lo; j <= k; j++ {
		s += math.Exp(h.LogPMF(j, sx))
	}
	if s > 1 {
		s = 1
	}
	return s
}

// Mean returns E[K] = sx · nc / n for coverage sx.
func (h *Hypergeom) Mean(sx int) float64 {
	if h.n == 0 {
		return 0
	}
	return float64(sx) * float64(h.nc) / float64(h.n)
}
