package lru

import (
	"reflect"
	"testing"
)

func TestInsertEvictsLRU(t *testing.T) {
	x := New[string](2)
	if ev := x.Insert("a"); ev != nil {
		t.Fatalf("evicted %v on first insert", ev)
	}
	x.Insert("b")
	if !x.Touch("a") { // a most recent: b is the victim
		t.Fatal("a not present")
	}
	if ev := x.Insert("c"); !reflect.DeepEqual(ev, []string{"b"}) {
		t.Fatalf("evicted %v, want [b]", ev)
	}
	if x.Len() != 2 || x.Evictions() != 1 {
		t.Fatalf("len=%d evictions=%d, want 2/1", x.Len(), x.Evictions())
	}
	if got := x.Keys(); !reflect.DeepEqual(got, []string{"c", "a"}) {
		t.Fatalf("Keys() = %v, want [c a]", got)
	}
}

func TestInsertExistingTouches(t *testing.T) {
	x := New[int](2)
	x.Insert(1)
	x.Insert(2)
	if ev := x.Insert(1); ev != nil { // re-insert: touch, no growth
		t.Fatalf("re-insert evicted %v", ev)
	}
	if ev := x.Insert(3); !reflect.DeepEqual(ev, []int{2}) {
		t.Fatalf("evicted %v, want [2]", ev)
	}
}

func TestRemoveAndUnbounded(t *testing.T) {
	x := New[int](0) // unbounded
	for i := 0; i < 100; i++ {
		if ev := x.Insert(i); ev != nil {
			t.Fatalf("unbounded index evicted %v", ev)
		}
	}
	if x.Len() != 100 || x.Evictions() != 0 {
		t.Fatalf("len=%d evictions=%d", x.Len(), x.Evictions())
	}
	if !x.Remove(50) || x.Remove(50) {
		t.Fatal("Remove should succeed once then report missing")
	}
	if x.Len() != 99 || x.Evictions() != 0 {
		t.Fatal("Remove must not count as an eviction")
	}
}
