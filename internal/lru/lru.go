// Package lru provides a small recency index: an ordered set of
// comparable keys with a capacity bound and an eviction counter. It holds
// keys only — callers keep the associated values in their own map and
// drop the entries Insert reports evicted. An Index is not synchronized;
// callers guard it with the same lock as their value map.
package lru

import (
	"container/list"
	"sync/atomic"
)

// Index tracks key recency: Touch and Insert move a key to the front, and
// Insert evicts back-of-list keys past the capacity.
type Index[K comparable] struct {
	cap       int // <= 0 means unbounded
	ll        *list.List
	pos       map[K]*list.Element
	evictions atomic.Int64
}

// New returns an index evicting past cap keys (cap <= 0: unbounded).
func New[K comparable](cap int) *Index[K] {
	return &Index[K]{cap: cap, ll: list.New(), pos: make(map[K]*list.Element)}
}

// Touch marks k most recently used, reporting whether it was present.
func (x *Index[K]) Touch(k K) bool {
	el, ok := x.pos[k]
	if ok {
		x.ll.MoveToFront(el)
	}
	return ok
}

// Insert records k as the most recently used key (inserting it if new)
// and returns the keys evicted to restore the capacity bound.
func (x *Index[K]) Insert(k K) (evicted []K) {
	if !x.Touch(k) {
		x.pos[k] = x.ll.PushFront(k)
	}
	for x.cap > 0 && len(x.pos) > x.cap {
		oldest := x.ll.Back()
		victim := oldest.Value.(K)
		x.ll.Remove(oldest)
		delete(x.pos, victim)
		x.evictions.Add(1)
		evicted = append(evicted, victim)
	}
	return evicted
}

// Remove drops k without counting an eviction. It reports whether k was
// present.
func (x *Index[K]) Remove(k K) bool {
	el, ok := x.pos[k]
	if !ok {
		return false
	}
	x.ll.Remove(el)
	delete(x.pos, k)
	return true
}

// Len reports the number of indexed keys.
func (x *Index[K]) Len() int { return len(x.pos) }

// Cap reports the capacity bound (<= 0: unbounded).
func (x *Index[K]) Cap() int { return x.cap }

// Evictions reports how many keys Insert has evicted. It may be read
// without the caller's lock.
func (x *Index[K]) Evictions() int64 { return x.evictions.Load() }

// Keys lists the indexed keys, most recently used first.
func (x *Index[K]) Keys() []K {
	keys := make([]K, 0, len(x.pos))
	for el := x.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(K))
	}
	return keys
}
