package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/permute"
)

// Worker evaluates shard work assignments against its prepared session.
// Implementations must be exact: a reply's statistics must equal what a
// single-node engine would compute for the assignment's range, or the
// coordinator's merged results silently diverge from the conformance
// contract.
type Worker interface {
	Span(ctx context.Context, req Request) (*Reply, error)
}

// Local is the in-process Worker: a thin wrapper over a permutation
// engine. Several Local workers may share one engine — ShardSpan is safe
// for concurrent spans and the shared engine keeps the label matrix and
// node-word views materialised once.
type Local struct{ e *permute.Engine }

// NewLocal wraps an engine (typically built with Config.DeferLabels so
// construction skips the full label matrix).
func NewLocal(e *permute.Engine) *Local { return &Local{e: e} }

// Span validates and evaluates one assignment. Cancellation arrives via
// the engine's Config.Ctx; callers wire the dispatch context there when
// building the engine, which is why ctx is unused here.
func (l *Local) Span(_ context.Context, req Request) (*Reply, error) {
	if err := req.Validate(l.e.NumPerms(), l.e.NumRules()); err != nil {
		return nil, err
	}
	st, err := l.e.ShardSpan(req.Lo, req.Hi, req.Live(l.e.NumRules()), req.WithOwn, req.WithPool)
	if err != nil {
		return nil, err
	}
	return &Reply{Shard: req.Shard, Lo: st.Lo, Hi: st.Hi, MinP: st.MinP, OwnLE: st.OwnLE, PoolHist: st.PoolHist}, nil
}

// HTTP is the wire-transport Worker: each assignment is POSTed to a peer's
// /v1/datasets/{name}/shard endpoint together with the mining config that
// identifies the prepared session on the peer. Go's JSON encoding emits
// float64s in shortest-round-trip form, so p-values survive the wire
// bit for bit and HTTP shards merge as exactly as in-process ones.
type HTTP struct {
	// Client issues the requests; nil means http.DefaultClient.
	Client *http.Client
	// URL is the peer's shard endpoint, e.g.
	// http://host:8080/v1/datasets/census/shard.
	URL string
	// Config is the peer-side mining configuration, pre-marshalled in the
	// server's ConfigJSON wire form.
	Config json.RawMessage
}

// Span posts the assignment and decodes the peer's reply.
func (h *HTTP) Span(ctx context.Context, req Request) (*Reply, error) {
	body, err := json.Marshal(struct {
		Config  json.RawMessage `json:"config"`
		Request Request         `json:"request"`
	}{h.Config, req})
	if err != nil {
		return nil, fmt.Errorf("shard: encoding request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, h.URL, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("shard: building request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("shard: posting to %s: %w", h.URL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, fmt.Errorf("shard: peer %s returned %s: %s", h.URL, resp.Status, bytes.TrimSpace(msg))
	}
	var rep Reply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return nil, fmt.Errorf("shard: decoding reply from %s: %w", h.URL, err)
	}
	return &rep, nil
}
