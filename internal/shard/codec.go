package shard

import "fmt"

// Request is the wire form of one shard work assignment: evaluate the
// absolute permutation-index range [Lo, Hi) against the rules still live
// under the coordinator's retirement frontier. The JSON shape is the body
// the HTTP transport posts to a worker's /v1/datasets/{name}/shard
// endpoint (alongside the mining config that identifies the prepared
// session), and what in-process workers consume directly.
type Request struct {
	// Shard is the assignment's ordinal within its round — the slot the
	// reply must echo so the merge can reject duplicates.
	Shard int `json:"shard"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	// Retired lists the rule indices the coordinator has retired so far,
	// strictly ascending; empty means every rule is live. Broadcasting the
	// frontier (rather than per-worker state) is what keeps adaptive
	// sharding exact: every worker compacts against the same frontier the
	// single-node run would use.
	Retired []int32 `json:"retired,omitempty"`
	// WithOwn and WithPool request the per-rule own-exceedance counts and
	// the pooled histogram alongside the always-present minima.
	WithOwn  bool `json:"with_own,omitempty"`
	WithPool bool `json:"with_pool,omitempty"`
}

// Validate checks the assignment against the worker's session shape.
func (r Request) Validate(numPerms, numRules int) error {
	if r.Shard < 0 {
		return fmt.Errorf("shard: negative shard ordinal %d", r.Shard)
	}
	if r.Lo < 0 || r.Hi > numPerms || r.Lo >= r.Hi {
		return fmt.Errorf("shard: request range [%d, %d) not within [0, %d)", r.Lo, r.Hi, numPerms)
	}
	prev := int32(-1)
	for _, ri := range r.Retired {
		if ri < 0 || int(ri) >= numRules {
			return fmt.Errorf("shard: retired rule %d outside [0, %d)", ri, numRules)
		}
		if ri <= prev {
			return fmt.Errorf("shard: retired list not strictly ascending at rule %d", ri)
		}
		prev = ri
	}
	return nil
}

// Live expands the retirement frontier into the live mask
// Engine.ShardSpan consumes; nil when nothing has retired.
func (r Request) Live(numRules int) []bool {
	if len(r.Retired) == 0 {
		return nil
	}
	live := make([]bool, numRules)
	for i := range live {
		live[i] = true
	}
	for _, ri := range r.Retired {
		live[ri] = false
	}
	return live
}

// RetiredFromLive derives the wire-form frontier of a live mask: the
// indices of the retired rules, strictly ascending. nil masks (and masks
// with nothing retired) yield nil.
func RetiredFromLive(live []bool) []int32 {
	var retired []int32
	for ri, l := range live {
		if !l {
			retired = append(retired, int32(ri))
		}
	}
	return retired
}

// Reply is the wire form of one shard's statistics over [Lo, Hi), echoing
// the assignment's ordinal and range so the merge can verify the replies
// tile the round exactly. The fields mirror permute.ShardStats.
type Reply struct {
	Shard    int       `json:"shard"`
	Lo       int       `json:"lo"`
	Hi       int       `json:"hi"`
	MinP     []float64 `json:"min_p"`
	OwnLE    []int64   `json:"own_le,omitempty"`
	PoolHist []int64   `json:"pool_hist,omitempty"`
}
