package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Drift tests in the internal/analysis style: DESIGN.md §10 and the
// README's "Distributed mining" section must keep naming the pieces of
// the sharding surface, so renaming a flag, endpoint, or entry point
// without re-reading the docs fails the build.

func readDoc(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatalf("reading %s: %v", name, err)
	}
	return string(data)
}

func TestDesignDocumentsSharding(t *testing.T) {
	design := readDoc(t, "DESIGN.md")
	const heading = "## 10. Distributed Permutation Sharding"
	if !strings.Contains(design, heading) {
		t.Fatalf("DESIGN.md lost its §10 distributed-sharding section")
	}
	sec := design[strings.Index(design, heading):]
	for _, want := range []string{
		"byte-identical",
		"ShardSpan",
		"/v1/datasets/{name}/shard",
		"//armine:deterministic",
		"FuzzShardMerge",
		"-shards",
		"-shard-peers",
		"retirement frontier",
		"AdaptiveResult",
	} {
		if !strings.Contains(sec, want) {
			t.Errorf("DESIGN.md §10 does not mention %s", want)
		}
	}
}

func TestReadmeDocumentsDistributedMining(t *testing.T) {
	readme := readDoc(t, "README.md")
	const heading = "## Distributed mining"
	if !strings.Contains(readme, heading) {
		t.Fatalf("README.md lost its \"Distributed mining\" section")
	}
	sec := readme[strings.Index(readme, heading):]
	for _, want := range []string{
		"byte-identical",
		"-shards",
		"-shard-peers",
		"/v1/datasets/{name}/shard",
		`"shards"`,
		"DESIGN.md §10",
	} {
		if !strings.Contains(sec, want) {
			t.Errorf("README \"Distributed mining\" section does not mention %s", want)
		}
	}
}
