package shard

import (
	"fmt"

	"repro/internal/permute"
)

// Merge validates the per-shard replies and merges them into the
// statistics of the full range [lo, hi): minima concatenate (each
// permutation lives in exactly one shard) and counts add (int64 sums are
// associative), so the merged statistics equal a single-node evaluation of
// the range bit for bit. Replies must tile [lo, hi) exactly, in range
// order — the first reply starts at lo, each next reply starts where the
// previous ended, and the last ends at hi; gaps, overlaps, duplicate shard
// ordinals, count values outside their per-shard bounds, and minima
// outside [0, 1] (including NaN) are rejected rather than merged, since a
// malformed reply would silently corrupt the null distribution.
//
//armine:deterministic
func Merge(lo, hi, numRules int, replies []*Reply, withOwn, withPool bool) (*permute.ShardStats, error) {
	if lo < 0 || lo >= hi {
		return nil, fmt.Errorf("shard: merge range [%d, %d) is empty or negative", lo, hi)
	}
	if numRules < 0 {
		return nil, fmt.Errorf("shard: merge with negative rule count %d", numRules)
	}
	st := &permute.ShardStats{Lo: lo, Hi: hi, MinP: make([]float64, 0, hi-lo)}
	if withOwn {
		st.OwnLE = make([]int64, numRules)
	}
	if withPool {
		st.PoolHist = make([]int64, numRules+1)
	}
	seen := make(map[int]bool, len(replies))
	next := lo
	for i, r := range replies {
		if r == nil {
			return nil, fmt.Errorf("shard: merge reply %d is missing", i)
		}
		if seen[r.Shard] {
			return nil, fmt.Errorf("shard: duplicate reply from shard %d", r.Shard)
		}
		seen[r.Shard] = true
		if r.Lo != next {
			return nil, fmt.Errorf("shard: reply %d covers [%d, %d); want a range starting at %d (replies must tile [%d, %d) in order)",
				i, r.Lo, r.Hi, next, lo, hi)
		}
		if r.Hi <= r.Lo || r.Hi > hi {
			return nil, fmt.Errorf("shard: reply %d range [%d, %d) overruns [%d, %d)", i, r.Lo, r.Hi, lo, hi)
		}
		span := int64(r.Hi - r.Lo)
		if len(r.MinP) != int(span) {
			return nil, fmt.Errorf("shard: reply %d carries %d minima for %d permutations", i, len(r.MinP), span)
		}
		for _, p := range r.MinP {
			if !(p >= 0 && p <= 1) {
				return nil, fmt.Errorf("shard: reply %d min-p %v outside [0, 1]", i, p)
			}
		}
		if withOwn {
			if len(r.OwnLE) != numRules {
				return nil, fmt.Errorf("shard: reply %d carries %d own counts for %d rules", i, len(r.OwnLE), numRules)
			}
			for ri, c := range r.OwnLE {
				if c < 0 || c > span {
					return nil, fmt.Errorf("shard: reply %d own count %d for rule %d outside [0, %d]", i, c, ri, span)
				}
				st.OwnLE[ri] += c
			}
		} else if len(r.OwnLE) != 0 {
			return nil, fmt.Errorf("shard: reply %d carries unrequested own counts", i)
		}
		if withPool {
			if len(r.PoolHist) != numRules+1 {
				return nil, fmt.Errorf("shard: reply %d carries a %d-bucket pool histogram for %d rules", i, len(r.PoolHist), numRules)
			}
			// A shard evaluates at most span·numRules (rule, permutation)
			// pairs, bounding every bucket — and, transitively, the int64
			// accumulation — before anything is added.
			var total int64
			for bi, c := range r.PoolHist {
				if c < 0 || c > span*int64(numRules) {
					return nil, fmt.Errorf("shard: reply %d pool bucket %d count %d outside [0, %d]", i, bi, c, span*int64(numRules))
				}
				total += c
			}
			if total > span*int64(numRules) {
				return nil, fmt.Errorf("shard: reply %d pool holds %d values; at most %d were evaluated", i, total, span*int64(numRules))
			}
			for bi, c := range r.PoolHist {
				st.PoolHist[bi] += c
			}
		} else if len(r.PoolHist) != 0 {
			return nil, fmt.Errorf("shard: reply %d carries an unrequested pool histogram", i)
		}
		st.MinP = append(st.MinP, r.MinP...)
		next = r.Hi
	}
	if next != hi {
		return nil, fmt.Errorf("shard: replies cover [%d, %d) of [%d, %d); the tail is missing", lo, next, lo, hi)
	}
	return st, nil
}
