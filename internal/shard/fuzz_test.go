package shard

import (
	"encoding/json"
	"testing"
)

// FuzzShardMerge drives adversarial reply sets through the wire codec and
// the merge: whatever JSON a (malicious or buggy) peer sends, Merge must
// either reject it or produce statistics satisfying the merge contract —
// minima for exactly the requested range, every value inside its bound.
// Overlaps, gaps, duplicate ordinals, short minima and out-of-range
// counts must never survive into a merged result.
func FuzzShardMerge(f *testing.F) {
	seed := func(replies []Reply) {
		data, err := json.Marshal(replies)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(0, 10, 2, true, true, data)
	}
	// A valid tiling, and one seed per rejection class.
	seed([]Reply{
		{Shard: 0, Lo: 0, Hi: 5, MinP: []float64{1, 0.5, 0.25, 1, 1}, OwnLE: []int64{1, 0}, PoolHist: []int64{2, 3, 0}},
		{Shard: 1, Lo: 5, Hi: 10, MinP: []float64{1, 1, 1, 0.125, 1}, OwnLE: []int64{0, 2}, PoolHist: []int64{0, 1, 4}},
	})
	seed([]Reply{ // duplicate ordinal
		{Shard: 0, Lo: 0, Hi: 5, MinP: []float64{1, 1, 1, 1, 1}, OwnLE: []int64{0, 0}, PoolHist: []int64{0, 0, 0}},
		{Shard: 0, Lo: 5, Hi: 10, MinP: []float64{1, 1, 1, 1, 1}, OwnLE: []int64{0, 0}, PoolHist: []int64{0, 0, 0}},
	})
	seed([]Reply{ // gap: [0,4) then [5,10)
		{Shard: 0, Lo: 0, Hi: 4, MinP: []float64{1, 1, 1, 1}, OwnLE: []int64{0, 0}, PoolHist: []int64{0, 0, 0}},
		{Shard: 1, Lo: 5, Hi: 10, MinP: []float64{1, 1, 1, 1, 1}, OwnLE: []int64{0, 0}, PoolHist: []int64{0, 0, 0}},
	})
	seed([]Reply{ // overlap: [0,6) then [5,10)
		{Shard: 0, Lo: 0, Hi: 6, MinP: []float64{1, 1, 1, 1, 1, 1}, OwnLE: []int64{0, 0}, PoolHist: []int64{0, 0, 0}},
		{Shard: 1, Lo: 5, Hi: 10, MinP: []float64{1, 1, 1, 1, 1}, OwnLE: []int64{0, 0}, PoolHist: []int64{0, 0, 0}},
	})
	seed([]Reply{ // NaN minimum (encodes as null, decodes to 0 — the codec must not let it through as NaN)
		{Shard: 0, Lo: 0, Hi: 10, MinP: []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 2}, OwnLE: []int64{0, 0}, PoolHist: []int64{0, 0, 0}},
	})
	f.Add(0, 10, 2, true, true, []byte(`[{"shard":0,"lo":0,"hi":10,"min_p":[1,1,1,1,1,1,1,1,1,"x"]}]`))
	f.Add(3, 3, 2, false, false, []byte(`[]`))
	f.Add(0, 2, 0, false, true, []byte(`[{"shard":0,"lo":0,"hi":2,"min_p":[0.5,0.5],"pool_hist":[0]}]`))

	f.Fuzz(func(t *testing.T, lo, hi, numRules int, withOwn, withPool bool, data []byte) {
		if numRules < 0 || numRules > 64 || hi-lo > 1<<16 {
			return
		}
		var wire []*Reply
		if err := json.Unmarshal(data, &wire); err != nil {
			return // malformed JSON is the transport's problem, not the merge's
		}
		st, err := Merge(lo, hi, numRules, wire, withOwn, withPool)
		if err != nil {
			return
		}
		// The merge accepted the replies: the contract must hold.
		if st.Lo != lo || st.Hi != hi {
			t.Fatalf("merged range [%d, %d) != requested [%d, %d)", st.Lo, st.Hi, lo, hi)
		}
		if len(st.MinP) != hi-lo {
			t.Fatalf("%d minima for a %d-permutation range", len(st.MinP), hi-lo)
		}
		for j, p := range st.MinP {
			if !(p >= 0 && p <= 1) {
				t.Fatalf("merged min-p[%d] = %v escaped [0, 1]", j, p)
			}
		}
		span := int64(hi - lo)
		if withOwn {
			if len(st.OwnLE) != numRules {
				t.Fatalf("%d own counts for %d rules", len(st.OwnLE), numRules)
			}
			for ri, c := range st.OwnLE {
				if c < 0 || c > span {
					t.Fatalf("merged own count %d for rule %d escaped [0, %d]", c, ri, span)
				}
			}
		} else if st.OwnLE != nil {
			t.Fatal("own counts materialised without being requested")
		}
		if withPool {
			if len(st.PoolHist) != numRules+1 {
				t.Fatalf("%d pool buckets for %d rules", len(st.PoolHist), numRules)
			}
			var total int64
			for _, c := range st.PoolHist {
				if c < 0 {
					t.Fatalf("negative pool bucket %d", c)
				}
				total += c
			}
			if total > span*int64(numRules) {
				t.Fatalf("merged pool holds %d values; at most %d were evaluated", total, span*int64(numRules))
			}
		} else if st.PoolHist != nil {
			t.Fatal("pool histogram materialised without being requested")
		}
	})
}
