// Package shard distributes permutation counting across workers
// (DESIGN.md §10): a coordinator partitions the absolute permutation-index
// range [0, MaxPerms) into disjoint contiguous shards, dispatches them to
// workers that each hold the same prepared session — in-process engines or
// HTTP peers — and merges the per-shard minima, own-exceedance counts and
// pooled histograms into results bit-identical to a single-node
// permute.Engine run. The (Seed, absolute index) label contract makes the
// partition invisible to the statistics; adaptive rounds stay exact
// because the coordinator makes every retirement decision centrally from
// the merged histograms and broadcasts the frontier to all workers.
package shard

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/permute"
)

// Plan partitions the permutation-index range [lo, hi) into at most shards
// contiguous non-empty subranges of near-equal length (earlier shards take
// the remainder). The plan is a pure function of its arguments, so a
// coordinator and a conformance test derive the same tiling.
func Plan(lo, hi, shards int) [][2]int {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	out := make([][2]int, 0, shards)
	per, extra := n/shards, n%shards
	x := lo
	for s := 0; s < shards; s++ {
		ln := per
		if s < extra {
			ln++
		}
		out = append(out, [2]int{x, x + ln})
		x += ln
	}
	return out
}

// Coordinator fans permutation spans out to a fixed set of workers and
// merges their replies. All workers must hold the same prepared session
// (tree, rules, seed and counting configuration); ps carries the rules'
// original p-values by rule index, the coordinator's share of that
// session.
type Coordinator struct {
	workers  []Worker
	ps       []float64
	numPerms int
	ad       permute.Adaptive
}

// NewCoordinator builds a coordinator over the given workers. numPerms is
// the fixed-mode permutation count; a non-zero ad switches the adaptive
// budget on (MaxPerms replaces numPerms, mirroring permute.Config).
func NewCoordinator(workers []Worker, ps []float64, numPerms int, ad permute.Adaptive) (*Coordinator, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one worker")
	}
	if ad.Enabled() {
		ad = ad.Normalized()
		numPerms = ad.MaxPerms
	}
	if numPerms < 1 {
		return nil, fmt.Errorf("shard: coordinator needs NumPerms >= 1, got %d", numPerms)
	}
	return &Coordinator{workers: workers, ps: ps, numPerms: numPerms, ad: ad}, nil
}

// NumPerms returns the coordinator's permutation count (the adaptive
// budget in adaptive mode).
func (c *Coordinator) NumPerms() int { return c.numPerms }

// span dispatches the range [lo, hi) across the workers — one goroutine
// per planned shard, replies collected by shard index so completion order
// never leaks into the result — and merges the replies. The first
// worker error (by shard index) aborts the dispatch and cancels the
// remaining shards.
func (c *Coordinator) span(ctx context.Context, lo, hi int, retired []int32, withOwn, withPool bool) (*permute.ShardStats, error) {
	plan := Plan(lo, hi, len(c.workers))
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	replies := make([]*Reply, len(plan))
	errs := make([]error, len(plan))
	var wg sync.WaitGroup
	for s := range plan {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			req := Request{Shard: s, Lo: plan[s][0], Hi: plan[s][1], Retired: retired, WithOwn: withOwn, WithPool: withPool}
			replies[s], errs[s] = c.workers[s].Span(sctx, req)
			if errs[s] != nil {
				cancel()
			}
		}(s)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		// The caller's own context ended; sibling errors are just echoes.
		return nil, err
	}
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d [%d, %d): %w", s, plan[s][0], plan[s][1], err)
		}
	}
	return Merge(lo, hi, len(c.ps), replies, withOwn, withPool)
}

// MinP returns the per-permutation minimum p-values over the full range,
// bit-identical to Engine.MinP on an equivalent single-node engine.
func (c *Coordinator) MinP(ctx context.Context) ([]float64, error) {
	st, err := c.span(ctx, 0, c.numPerms, nil, false, false)
	if err != nil {
		return nil, err
	}
	return st.MinP, nil
}

// CountLE returns each rule's pooled <=-count over the full range,
// bit-identical to Engine.CountLE: shard histograms add, and the shared
// Rank bucketing maps the merged histogram back to per-rule counts.
func (c *Coordinator) CountLE(ctx context.Context) ([]int64, error) {
	st, err := c.span(ctx, 0, c.numPerms, nil, false, true)
	if err != nil {
		return nil, err
	}
	return permute.NewRank(c.ps).CountsFromHist(st.PoolHist), nil
}

// RunAdaptive executes the adaptive schedule with every round fanned out
// across the workers: permute.DriveAdaptive makes the retirement decisions
// from the merged histograms, exactly as Engine.RunAdaptive does from its
// own, so the result — every round length, frontier and statistic — is
// bit-identical to the single-node run.
func (c *Coordinator) RunAdaptive(ctx context.Context, mode permute.AdaptiveMode, alpha float64) (*permute.AdaptiveResult, error) {
	if !c.ad.Enabled() {
		return nil, fmt.Errorf("shard: RunAdaptive needs an adaptive budget (Adaptive.MaxPerms > 0)")
	}
	return permute.DriveAdaptive(c.ps, c.ad, mode, alpha,
		func(lo, hi int, live []bool, withPool bool) (*permute.ShardStats, error) {
			return c.span(ctx, lo, hi, RetiredFromLive(live), true, withPool)
		})
}

// Bound adapts a Coordinator to the context-free engine-shaped surface the
// correction layer consumes (correction.NullSource plus RunAdaptive and
// Err): methods run under the bound context, and the first error sticks,
// mirroring Engine.Err's "partial results must be discarded" contract. A
// Bound is used by one correction at a time, like the engine it stands in
// for.
type Bound struct {
	c   *Coordinator
	ctx context.Context
	err error
}

// Bind couples a coordinator to the context a correction runs under.
func Bind(c *Coordinator, ctx context.Context) *Bound {
	return &Bound{c: c, ctx: ctx}
}

// NumPerms returns the coordinator's permutation count.
func (b *Bound) NumPerms() int { return b.c.numPerms }

// Err reports the first dispatch error; results obtained after a non-nil
// Err are placeholders and must be discarded.
func (b *Bound) Err() error { return b.err }

// MinP returns the merged per-permutation minima, or all-ones after a
// dispatch error (check Err, as with the engine).
func (b *Bound) MinP() []float64 {
	minP, err := b.c.MinP(b.ctx)
	if err != nil {
		b.fail(err)
		minP = make([]float64, b.c.numPerms)
		for i := range minP {
			minP[i] = 1
		}
	}
	return minP
}

// CountLE returns the merged per-rule pooled counts, or all-zeros after a
// dispatch error (check Err, as with the engine).
func (b *Bound) CountLE() []int64 {
	counts, err := b.c.CountLE(b.ctx)
	if err != nil {
		b.fail(err)
		counts = make([]int64, len(b.c.ps))
	}
	return counts
}

// RunAdaptive runs the coordinator's adaptive schedule under the bound
// context.
func (b *Bound) RunAdaptive(mode permute.AdaptiveMode, alpha float64) (*permute.AdaptiveResult, error) {
	res, err := b.c.RunAdaptive(b.ctx, mode, alpha)
	if err != nil {
		b.fail(err)
	}
	return res, err
}

func (b *Bound) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}
