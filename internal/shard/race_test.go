package shard

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/permute"
)

// TestCoordinatorConcurrentSpansAndCancel is the scheduler-pressure test
// the CI race matrix runs at GOMAXPROCS 1, 2 and 8: several coordinators
// over the same shared engine run full spans concurrently — exercising the
// engine's compact-mask memoisation and rank caches under contention —
// while another batch of runs is cancelled mid-flight. Every uncancelled
// run must produce the identical byte-exact result; cancelled runs must
// fail with the cancellation, not corrupt their siblings.
func TestCoordinatorConcurrentSpansAndCancel(t *testing.T) {
	const maxPerms = 200
	tree, rules, ps := buildCase(t, 7, 300, 8, 20)
	ad := permute.Adaptive{MinPerms: 50, MaxPerms: maxPerms}
	cfg := permute.Config{Seed: 13, Workers: 2, Adaptive: ad}

	single, err := permute.NewEngine(tree, rules, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.RunAdaptive(permute.AdaptFDR, 0.05)
	if err != nil {
		t.Fatal(err)
	}

	// One shared labels-deferred engine behind every worker of every
	// coordinator: the most contended configuration.
	workers := localWorkers(t, tree, rules, cfg, 4)

	var wg sync.WaitGroup
	results := make([]*permute.AdaptiveResult, 6)
	errs := make([]error, len(results))
	for i := range results {
		coord, err := NewCoordinator(workers, ps, 0, ad)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = coord.RunAdaptive(context.Background(), permute.AdaptFDR, 0.05)
		}(i)
	}

	// Cancellation pressure: engines bound to a context that dies while
	// their spans are in flight. They share nothing with the engine above,
	// so the runs racing toward results stay unaffected.
	cancelDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		ccfg := permute.Config{NumPerms: maxPerms, Seed: 13, Workers: 2, Ctx: ctx}
		coord, err := NewCoordinator(localWorkers(t, tree, rules, ccfg, 3), ps, maxPerms, permute.Adaptive{})
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			time.Sleep(time.Millisecond)
			cancel()
		}()
		go func() {
			_, err := coord.MinP(ctx)
			cancelDone <- err
		}()
	}

	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d failed: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Fatalf("concurrent run %d diverged from the single-node result", i)
		}
	}
	for i := 0; i < 2; i++ {
		// A cancelled run may still win the race and finish cleanly; what
		// it must never do is return a wrong error kind or deadlock.
		if err := <-cancelDone; err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want nil or context.Canceled", err)
		}
	}
}
