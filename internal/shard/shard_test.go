package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/permute"
	"repro/internal/synth"
)

// buildCase mines a synthetic dataset and returns the prepared session
// pieces every conformance test needs.
func buildCase(t *testing.T, seed uint64, n, attrs, minSup int) (*mining.Tree, []mining.Rule, []float64) {
	t.Helper()
	p := synth.PaperDefaults()
	p.N = n
	p.Attrs = attrs
	p.Seed = seed
	res, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	enc := dataset.Encode(res.Data)
	tree, err := mining.MineClosed(enc, mining.Options{MinSup: minSup, StoreDiffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
	if err != nil {
		t.Fatal(err)
	}
	ps := make([]float64, len(rules))
	for i := range rules {
		ps[i] = rules[i].P
	}
	return tree, rules, ps
}

// localWorkers builds n Local workers sharing one labels-deferred engine.
func localWorkers(t *testing.T, tree *mining.Tree, rules []mining.Rule, cfg permute.Config, n int) []Worker {
	t.Helper()
	cfg.DeferLabels = true
	e, err := permute.NewEngine(tree, rules, cfg)
	if err != nil {
		t.Fatal(err)
	}
	workers := make([]Worker, n)
	for i := range workers {
		workers[i] = NewLocal(e)
	}
	return workers
}

func TestPlanTilesExactly(t *testing.T) {
	for _, c := range []struct{ lo, hi, shards int }{
		{0, 10, 1}, {0, 10, 3}, {0, 10, 10}, {0, 10, 40}, {5, 12, 2}, {0, 1, 8}, {3, 3, 2}, {4, 2, 2},
	} {
		plan := Plan(c.lo, c.hi, c.shards)
		if c.hi <= c.lo {
			if plan != nil {
				t.Errorf("Plan(%d, %d, %d) = %v, want nil for an empty range", c.lo, c.hi, c.shards, plan)
			}
			continue
		}
		next := c.lo
		for _, r := range plan {
			if r[0] != next || r[1] <= r[0] {
				t.Fatalf("Plan(%d, %d, %d) = %v: tile %v breaks contiguity at %d", c.lo, c.hi, c.shards, plan, r, next)
			}
			next = r[1]
		}
		if next != c.hi {
			t.Errorf("Plan(%d, %d, %d) = %v: covers up to %d", c.lo, c.hi, c.shards, plan, next)
		}
		if want := min(c.shards, c.hi-c.lo); len(plan) != want && c.shards >= 1 {
			t.Errorf("Plan(%d, %d, %d): %d tiles, want %d", c.lo, c.hi, c.shards, len(plan), want)
		}
	}
}

// TestCoordinatorFixedByteIdentical: for 1, 2, 3 and 8 workers, the
// coordinator's MinP and CountLE must equal a single-node engine's byte
// for byte.
func TestCoordinatorFixedByteIdentical(t *testing.T) {
	const numPerms = 40
	const seed = 17
	tree, rules, ps := buildCase(t, 9, 300, 8, 20)
	cfg := permute.Config{NumPerms: numPerms, Seed: seed, Workers: 2}
	single, err := permute.NewEngine(tree, rules, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantMinP := single.MinP()
	wantLE := single.CountLE()
	if err := single.Err(); err != nil {
		t.Fatal(err)
	}
	for _, nw := range []int{1, 2, 3, 8} {
		coord, err := NewCoordinator(localWorkers(t, tree, rules, cfg, nw), ps, numPerms, permute.Adaptive{})
		if err != nil {
			t.Fatal(err)
		}
		gotMinP, err := coord.MinP(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotMinP, wantMinP) {
			t.Fatalf("%d workers: coordinator MinP differs from single-node", nw)
		}
		gotLE, err := coord.CountLE(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotLE, wantLE) {
			t.Fatalf("%d workers: coordinator CountLE differs from single-node", nw)
		}
	}
}

// TestCoordinatorAdaptiveExactAgreement is the sharded half of the PR 5
// adaptive property test: across the same randomized dataset × seed ×
// workers × word-ablation × mode matrix, the coordinator's RunAdaptive
// must reproduce the single-node engine's AdaptiveResult exactly — every
// round length, retirement decision, per-rule count and permutation
// minimum — because the coordinator drives the identical schedule from
// merged histograms that equal the single-node ones. The matrix must
// actually retire rules, or the frontier broadcast goes untested.
func TestCoordinatorAdaptiveExactAgreement(t *testing.T) {
	const maxPerms = 400
	const alpha = 0.05
	cells := []struct{ dataSeed, permSeed uint64 }{{5, 101}, {11, 7}, {31, 42}}
	totalRetired := 0
	for _, c := range cells {
		tree, rules, ps := buildCase(t, c.dataSeed, 400, 10, 25)
		for _, workers := range []int{1, 4} {
			for _, disableWords := range []bool{false, true} {
				for _, fdr := range []bool{false, true} {
					cfg := permute.Config{
						Seed: c.permSeed, Workers: workers,
						DisableWordCounting: disableWords,
						Adaptive:            permute.Adaptive{MinPerms: 50, MaxPerms: maxPerms},
					}
					single, err := permute.NewEngine(tree, rules, cfg)
					if err != nil {
						t.Fatal(err)
					}
					mode := permute.AdaptFWER
					if fdr {
						mode = permute.AdaptFDR
					}
					want, err := single.RunAdaptive(mode, alpha)
					if err != nil {
						t.Fatal(err)
					}
					coord, err := NewCoordinator(localWorkers(t, tree, rules, cfg, 3), ps, 0, cfg.Adaptive)
					if err != nil {
						t.Fatal(err)
					}
					got, err := coord.RunAdaptive(context.Background(), mode, alpha)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed=%d/%d workers=%d words=%v mode=%v: sharded AdaptiveResult differs from single-node",
							c.dataSeed, c.permSeed, workers, !disableWords, mode)
					}
					totalRetired += got.RulesRetired
				}
			}
		}
	}
	if totalRetired == 0 {
		t.Fatal("no rule retired anywhere in the matrix; the frontier broadcast went untested")
	}
}

// shardTestHandler serves the worker half of the wire protocol over a
// Local worker, mirroring the server's /v1/datasets/{name}/shard endpoint
// shape without importing the server package.
func shardTestHandler(w Worker) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		var body struct {
			Config  json.RawMessage `json:"config"`
			Request Request         `json:"request"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		rep, err := w.Span(r.Context(), body.Request)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(rep)
	}
}

// TestHTTPWorkerByteIdentical proves the wire codec preserves
// bit-identity: a coordinator whose workers POST every assignment through
// a real HTTP round-trip (JSON-encoded floats and all) must still match
// the single-node engine exactly, fixed and adaptive.
func TestHTTPWorkerByteIdentical(t *testing.T) {
	const maxPerms = 200
	const alpha = 0.05
	tree, rules, ps := buildCase(t, 5, 400, 10, 25)
	cfg := permute.Config{
		Seed: 101, Workers: 2,
		Adaptive: permute.Adaptive{MinPerms: 50, MaxPerms: maxPerms},
	}
	ts := httptest.NewServer(shardTestHandler(localWorkers(t, tree, rules, cfg, 1)[0]))
	defer ts.Close()

	workers := make([]Worker, 3)
	for i := range workers {
		workers[i] = &HTTP{URL: ts.URL, Config: json.RawMessage(`{}`)}
	}
	coord, err := NewCoordinator(workers, ps, 0, cfg.Adaptive)
	if err != nil {
		t.Fatal(err)
	}

	single, err := permute.NewEngine(tree, rules, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.RunAdaptive(permute.AdaptFDR, alpha)
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.RunAdaptive(context.Background(), permute.AdaptFDR, alpha)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("HTTP-transported AdaptiveResult differs from single-node")
	}
}

// TestHTTPWorkerPeerError surfaces a peer's failure with its body excerpt.
func TestHTTPWorkerPeerError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		http.Error(rw, "no such session", http.StatusNotFound)
	}))
	defer ts.Close()
	h := &HTTP{URL: ts.URL}
	_, err := h.Span(context.Background(), Request{Hi: 1})
	if err == nil {
		t.Fatal("expected an error from a 404 peer")
	}
	if got := err.Error(); !strings.Contains(got, "404") || !strings.Contains(got, "no such session") {
		t.Fatalf("peer error %q lacks status or body excerpt", got)
	}
}

// failingWorker fails every span after a configurable number of calls.
type failingWorker struct {
	calls atomic.Int64
	after int64
}

func (f *failingWorker) Span(ctx context.Context, req Request) (*Reply, error) {
	if f.calls.Add(1) > f.after {
		return nil, fmt.Errorf("worker exploded")
	}
	minP := make([]float64, req.Hi-req.Lo)
	for i := range minP {
		minP[i] = 1
	}
	return &Reply{Shard: req.Shard, Lo: req.Lo, Hi: req.Hi, MinP: minP}, nil
}

// TestCoordinatorWorkerErrorAborts: one failing worker fails the whole
// span with the shard's range in the error, and cancels the siblings.
func TestCoordinatorWorkerErrorAborts(t *testing.T) {
	workers := []Worker{&failingWorker{after: 1 << 62}, &failingWorker{}}
	coord, err := NewCoordinator(workers, []float64{0.5}, 10, permute.Adaptive{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.MinP(context.Background())
	if err == nil || !strings.Contains(err.Error(), "worker exploded") || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("coordinator error %v does not identify the failing shard", err)
	}
}

// TestCoordinatorContextCancelled: the caller's own cancellation wins over
// sibling echo errors.
func TestCoordinatorContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	tree, rules, ps := buildCase(t, 51, 150, 5, 10)
	cfg := permute.Config{NumPerms: 10, Seed: 1, Ctx: ctx}
	coord, err := NewCoordinator(localWorkers(t, tree, rules, cfg, 2), ps, 10, permute.Adaptive{})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := coord.MinP(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled coordinator returned %v, want context.Canceled", err)
	}
}

// TestBoundStickyError: Bound presents the engine-shaped surface — after
// a failure MinP/CountLE return placeholders and Err reports the first
// failure, mirroring Engine.Err's discard contract.
func TestBoundStickyError(t *testing.T) {
	workers := []Worker{&failingWorker{}}
	coord, err := NewCoordinator(workers, []float64{0.5, 0.1}, 10, permute.Adaptive{})
	if err != nil {
		t.Fatal(err)
	}
	b := Bind(coord, context.Background())
	if b.NumPerms() != 10 {
		t.Fatalf("NumPerms = %d, want 10", b.NumPerms())
	}
	minP := b.MinP()
	if len(minP) != 10 || minP[0] != 1 {
		t.Fatalf("failed MinP placeholder = %v, want all ones", minP)
	}
	if counts := b.CountLE(); len(counts) != 2 || counts[0] != 0 {
		t.Fatalf("failed CountLE placeholder = %v, want all zeros", counts)
	}
	if b.Err() == nil {
		t.Fatal("Bound.Err lost the dispatch failure")
	}
}

// TestRequestCodecRoundTrip: Live and RetiredFromLive are inverses, and
// Validate rejects malformed frontiers.
func TestRequestCodecRoundTrip(t *testing.T) {
	live := []bool{true, false, true, false, false, true}
	retired := RetiredFromLive(live)
	if want := []int32{1, 3, 4}; !reflect.DeepEqual(retired, want) {
		t.Fatalf("RetiredFromLive = %v, want %v", retired, want)
	}
	req := Request{Hi: 4, Retired: retired}
	if !reflect.DeepEqual(req.Live(6), live) {
		t.Fatalf("Live round-trip = %v, want %v", req.Live(6), live)
	}
	if (Request{Hi: 4}).Live(6) != nil {
		t.Fatal("empty frontier should expand to a nil mask")
	}
	if err := req.Validate(10, 6); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Request{
		{Shard: -1, Hi: 4},
		{Lo: -1, Hi: 4},
		{Lo: 4, Hi: 4},
		{Hi: 11},
		{Hi: 4, Retired: []int32{6}},
		{Hi: 4, Retired: []int32{2, 2}},
		{Hi: 4, Retired: []int32{3, 1}},
	} {
		if err := bad.Validate(10, 6); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
}

// TestMergeRejectsMalformedReplies pins every rejection class the merge
// guards: nil, duplicate-ordinal, gapped, overlapping, short and
// out-of-bounds replies must all fail rather than corrupt the null
// distribution.
func TestMergeRejectsMalformedReplies(t *testing.T) {
	mk := func(shard, lo, hi int) *Reply {
		minP := make([]float64, hi-lo)
		for i := range minP {
			minP[i] = 0.5
		}
		return &Reply{Shard: shard, Lo: lo, Hi: hi, MinP: minP,
			OwnLE: make([]int64, 2), PoolHist: make([]int64, 3)}
	}
	if _, err := Merge(0, 10, 2, []*Reply{mk(0, 0, 5), mk(1, 5, 10)}, true, true); err != nil {
		t.Fatalf("valid tiling rejected: %v", err)
	}
	cases := []struct {
		name    string
		replies []*Reply
	}{
		{"nil reply", []*Reply{mk(0, 0, 5), nil}},
		{"duplicate ordinal", []*Reply{mk(0, 0, 5), mk(0, 5, 10)}},
		{"gap", []*Reply{mk(0, 0, 4), mk(1, 5, 10)}},
		{"overlap", []*Reply{mk(0, 0, 6), mk(1, 5, 10)}},
		{"missing tail", []*Reply{mk(0, 0, 5)}},
		{"overrun", []*Reply{mk(0, 0, 5), mk(1, 5, 11)}},
		{"empty tile", []*Reply{mk(0, 0, 5), {Shard: 1, Lo: 5, Hi: 5}, mk(2, 5, 10)}},
		{"short minima", []*Reply{mk(0, 0, 5), {Shard: 1, Lo: 5, Hi: 10, MinP: []float64{1},
			OwnLE: make([]int64, 2), PoolHist: make([]int64, 3)}}},
	}
	for _, c := range cases {
		if _, err := Merge(0, 10, 2, c.replies, true, true); err == nil {
			t.Errorf("%s: merge accepted malformed replies", c.name)
		}
	}

	bad := mk(1, 5, 10)
	bad.MinP[0] = 1.5
	if _, err := Merge(0, 10, 2, []*Reply{mk(0, 0, 5), bad}, true, true); err == nil {
		t.Error("min-p above 1 accepted")
	}
	bad = mk(1, 5, 10)
	bad.OwnLE[0] = 6
	if _, err := Merge(0, 10, 2, []*Reply{mk(0, 0, 5), bad}, true, true); err == nil {
		t.Error("own count above the shard span accepted")
	}
	bad = mk(1, 5, 10)
	bad.PoolHist = []int64{5, 5, 5}
	if _, err := Merge(0, 10, 2, []*Reply{mk(0, 0, 5), bad}, true, true); err == nil {
		t.Error("pool histogram holding more values than evaluated accepted")
	}
	withExtras := mk(1, 5, 10)
	if _, err := Merge(0, 10, 2, []*Reply{
		{Shard: 0, Lo: 0, Hi: 5, MinP: mk(0, 0, 5).MinP, OwnLE: make([]int64, 2), PoolHist: make([]int64, 3)},
		withExtras,
	}, false, false); err == nil {
		t.Error("unrequested counts accepted")
	}
}
