// Package permute implements the permutation-based multiple testing
// machinery of §4.2: class labels are randomly shuffled N times, and the
// p-values of all mined rules are recomputed on every permutation to
// approximate the null distribution. The paper's three cost reductions are
// all implemented and individually switchable (Fig 4):
//
//   - mine once (§4.2.1): patterns and tid-lists never change across
//     permutations, only the class labels do, so the set-enumeration tree is
//     mined a single time and supports are recounted per permutation;
//   - Diffsets (§4.2.2): a node that keeps more than half of its parent's
//     records stores only the difference, and its per-permutation class
//     counts are derived from the parent's by subtracting the difference;
//   - p-value buffering (§4.2.3): per-coverage buffers of all attainable
//     Fisher p-values, served from a byte-budgeted static buffer plus a
//     one-slot dynamic buffer, shared across rules and permutations.
//
// On top of the paper's ladder the engine counts with a blocked,
// allocation-free word-parallel kernel (DESIGN.md §8): permuted labels are
// packed into a striped bitmap matrix that interleaves the same bitmap
// word of eight consecutive permutations, and each node's stored tid-list
// — materialised once, at engine construction, in sparse word form — is
// AND+popcounted against eight permutations per pass over its words. All
// per-node scratch (count tiles, child-count buffers) lives in per-worker
// arenas with checkpoint/rewind, so the steady-state walk never touches
// the allocator. The blocked, unblocked (stripe width 1) and element-walk
// paths produce identical integer counts, so results stay byte-identical
// at every optimisation level and worker count.
//
// The package comment directive below puts every function in detlint's
// deterministic scope (DESIGN.md §9): byte-identical output is the
// package's contract, so ordering hazards are machine-checked.
//
//armine:deterministic
package permute

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/intset"
	"repro/internal/mining"
	"repro/internal/stats"
)

// OptLevel selects which of the paper's optimisations are active,
// mirroring the four configurations of Fig 4. Mine-once is always on (the
// alternative — re-mining per permutation — is not a configuration the
// paper measures; its Fig 4 baseline "no optimization" already mines once).
type OptLevel int

const (
	// OptNone: full tid-lists, Fisher p-values computed from scratch at
	// every (rule, permutation) evaluation.
	OptNone OptLevel = iota
	// OptDynamicBuffer: full tid-lists; p-values served from the one-slot
	// dynamic buffer.
	OptDynamicBuffer
	// OptDiffsets: Diffsets storage plus the dynamic buffer.
	OptDiffsets
	// OptStaticBuffer: Diffsets plus a static buffer (StaticBudget bytes)
	// in front of the dynamic buffer.
	OptStaticBuffer
)

// String returns the Fig 4 series label of the optimisation level.
func (o OptLevel) String() string {
	switch o {
	case OptNone:
		return "no optimization"
	case OptDynamicBuffer:
		return "dynamic buf"
	case OptDiffsets:
		return "Diffsets+dynamic buf"
	case OptStaticBuffer:
		return "16M static buf+Diffsets+dynamic buf"
	default:
		return fmt.Sprintf("OptLevel(%d)", int(o))
	}
}

// WantDiffsets reports whether trees consumed under this level should be
// mined with Diffset storage.
func (o OptLevel) WantDiffsets() bool { return o >= OptDiffsets }

// Name returns the level's short machine-readable name, the form ParseOpt
// accepts and BENCH_<rev>.json records.
func (o OptLevel) Name() string {
	switch o {
	case OptNone:
		return "none"
	case OptDynamicBuffer:
		return "dynamic"
	case OptDiffsets:
		return "diffsets"
	case OptStaticBuffer:
		return "static"
	default:
		return fmt.Sprintf("OptLevel(%d)", int(o))
	}
}

// ParseOpt maps a case-insensitive short level name — none | dynamic |
// diffsets | static — to its OptLevel. Surrounding whitespace is ignored.
func ParseOpt(s string) (OptLevel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none":
		return OptNone, nil
	case "dynamic":
		return OptDynamicBuffer, nil
	case "diffsets":
		return OptDiffsets, nil
	case "static":
		return OptStaticBuffer, nil
	default:
		return 0, fmt.Errorf("permute: unknown optimisation level %q (want none|dynamic|diffsets|static)", s)
	}
}

// Config configures a permutation run.
type Config struct {
	// NumPerms is N, the number of label permutations (the paper uses
	// 1000).
	NumPerms int
	// Seed drives the label shuffles; equal seeds give identical
	// permutations. Each permutation j derives its own RNG from
	// (Seed, j), so the shuffles are generated concurrently and are
	// byte-identical for every worker count.
	Seed uint64
	// Ctx, when non-nil, cancels a run early: workers poll the context's
	// cancellation and the engine's Err method reports the context error
	// after an aborted run. A nil Ctx means no cancellation.
	Ctx context.Context
	// Opt selects the optimisation level (default OptStaticBuffer).
	Opt OptLevel
	// StaticBudget is the static buffer size in bytes under
	// OptStaticBuffer (default 16 MB, the paper's value).
	StaticBudget int
	// Workers caps the number of goroutines (default GOMAXPROCS). Each
	// worker processes a disjoint block of permutations with its own
	// buffer pool, so results are deterministic regardless of Workers.
	Workers int
	// Test selects the statistical test; it must match the test used to
	// compute the rules' original p-values. TestFisher uses the buffer
	// machinery selected by Opt; TestChiSquare is O(1) per evaluation and
	// ignores Opt's buffering; TestMidP recomputes per evaluation
	// (expensive, extension only).
	Test mining.TestKind
	// DisableWordCounting forces every per-permutation class count back to
	// the element-by-element label walk, disabling the packed-bitmap
	// AND+popcount path. An ablation/debugging knob in the spirit of the
	// Fig 4 ladder — results are byte-identical either way; only the cost
	// changes. armine bench measures both sides to report the word-path
	// speedup.
	DisableWordCounting bool
	// DisableBlockedCounting drops the blocked kernel's stripe width from
	// stripeWidth to 1, so the label matrix degenerates to one bitmap per
	// permutation (the PR 4 word layout) and each pass over a node's tid
	// words counts a single permutation. A second ablation knob — it
	// measures what the blocking itself buys on top of word counting.
	// Results are byte-identical either way. Ignored when word counting
	// is disabled.
	DisableBlockedCounting bool
	// DeferLabels skips the fixed-mode label materialisation at
	// construction: label blocks are built lazily, per ShardSpan range (or
	// on the first fixed-mode call). Shard workers set it so an engine that
	// only ever evaluates a slice of the permutation range never pays for
	// the whole matrix. Results are unaffected — every block derives from
	// (Seed, absolute index) regardless of when it is built.
	DeferLabels bool
	// Adaptive, when Adaptive.MaxPerms > 0, switches the engine into
	// sequential early-stopping mode (DESIGN.md §7): permutations run in
	// rounds via RunAdaptive, and NumPerms is ignored in favour of
	// Adaptive.MaxPerms. The fixed-mode methods (MinP, CountLE, PerRuleLE)
	// still work on an adaptive engine, evaluating the full MaxPerms
	// matrix.
	Adaptive Adaptive
}

func (c Config) withDefaults() Config {
	if c.StaticBudget == 0 {
		c.StaticBudget = 16 << 20
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// stripeWidth is the blocked kernel's stripe width: the number of
// consecutive permutations whose label bitmaps interleave word by word,
// and hence the number of permutations counted per pass over a node's tid
// words. Eight int32 lane accumulators fit comfortably in registers.
const stripeWidth = 8

// labelBlock holds the materialised label shuffles of the permutation
// range [lo, hi). Fixed-mode engines build one block covering every
// permutation; adaptive rounds build one block per round, so memory is
// bounded by the round length rather than the whole budget. Permutation
// j's shuffle always derives from (Seed, j) regardless of which block
// carries it, so block boundaries never change results.
type labelBlock struct {
	lo, hi int
	// stripeS is the stripe width of the packed matrix: stripeWidth, or 1
	// under the DisableBlockedCounting ablation.
	stripeS int
	// permLabels is the transposed label matrix of the block:
	// permLabels[r*(hi-lo) + (j-lo)] is record r's class under
	// permutation j. It serves the element-walk path and is only built
	// when word counting is off (the word path never reads labels
	// element-wise).
	permLabels []int8
	// stripes is the striped packed label matrix serving the blocked
	// word-parallel path. Permutations are grouped into tiles of stripeS
	// consecutive indices; for tile t, class c in [1, numClasses) and
	// bitmap word i in [0, words), the stripeS words starting at
	//
	//	((t*(numClasses-1) + (c-1))*words + i) * stripeS
	//
	// hold word i of the class-c bitmaps of the tile's permutations, one
	// per stripe lane — so the kernel reads lane-adjacent words for eight
	// permutations at once. Class 0 is derived (counts across classes sum
	// to the tid-list length), keeping the matrix one class slimmer. nil
	// when word counting is disabled or there are fewer than two classes.
	stripes []uint64
}

// adjacency is a compact CSR mapping from tree-node index to an int32 list
// (rule indices, or child node indices). Two flat slabs replace the
// per-node slices the engine used to allocate.
type adjacency struct {
	off  []int32 // len(nodes)+1 prefix offsets into list
	list []int32
}

// row returns node i's list.
func (a *adjacency) row(i int) []int32 { return a.list[a.off[i]:a.off[i+1]] }

// newAdjacency builds a CSR adjacency with n rows from the (row, value)
// pairs produced by emit. emit is called twice — once to size the rows,
// once to fill them — and must produce the same pairs, in the same order,
// both times.
func newAdjacency(n int, emit func(add func(row int, val int32))) *adjacency {
	off := make([]int32, n+1)
	emit(func(row int, _ int32) { off[row+1]++ })
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	list := make([]int32, off[n])
	next := append([]int32(nil), off[:n]...)
	emit(func(row int, val int32) {
		list[next[row]] = val
		next[row]++
	})
	return &adjacency{off: off, list: list}
}

// nodeWords is the engine-wide sparse word form of every node's stored
// list, materialised once at construction (killing the per-visit tid-list
// repacking of earlier revisions): node i's occupied bitmap words are
// idx[off[i]:off[i+1]] with their 64-bit contents in the matching word
// range. Memory is bounded by the total stored-id count (at most one
// entry per id), and the flat slabs cost a constant number of
// allocations. Immutable after construction, shared by all workers.
type nodeWords struct {
	off  []int32
	idx  []int32
	word []uint64
}

// Engine evaluates rule p-values across permutations of the class labels.
type Engine struct {
	tree  *mining.Tree
	rules []mining.Rule
	cfg   Config

	n          int
	numClasses int
	// lab is the fixed-mode label block covering [0, NumPerms); nil until
	// built (adaptive engines build per-round blocks instead and only
	// materialise the full block if a fixed-mode method is called).
	lab     *labelBlock
	labOnce sync.Once
	// words is the bitmap width in uint64s: ceil(n / 64).
	words int
	// stripeS is the engine's stripe width (stripeWidth, or 1 under the
	// DisableBlockedCounting ablation); worker block boundaries align to
	// it so no stripe tile straddles two workers.
	stripeS int
	// nw is the per-node sparse word view feeding the blocked kernel;
	// nil when word counting is disabled.
	nw *nodeWords
	// rulesByNode maps tree node index -> indices (into rules) of the
	// rules whose LHS is that node; children is the subtree adjacency.
	rulesByNode *adjacency
	children    *adjacency
	hypergeoms  []*stats.Hypergeom

	// stFree caches per-worker scratch states across runs and adaptive
	// rounds, so repeated walks reuse arenas, buffer pools and batch
	// slices instead of rebuilding them.
	stMu   sync.Mutex
	stFree []*workerState

	// rankOnce memoises the ascending rank of the rules' original p-values
	// (and the raw p-value slice), shared by CountLE, ShardSpan and the
	// adaptive driver.
	rankOnce sync.Once
	rankVal  Rank
	origVal  []float64

	// compactMu guards the memoised retirement-compacted walk indexes:
	// every ShardSpan of one retirement frontier — all workers of a round,
	// and all following rounds without new retirements — reuses a single
	// compactLive result, keyed by the live mask's content.
	compactMu       sync.Mutex
	compactKey      []bool
	compactRules    *adjacency
	compactChildren *adjacency

	stop   atomic.Bool           // set when cfg.Ctx is cancelled mid-run
	runErr atomic.Pointer[error] // sticky: first cancellation error observed
}

// setErr records the first cancellation error (later calls are no-ops).
func (e *Engine) setErr(err error) {
	if err != nil {
		e.runErr.CompareAndSwap(nil, &err)
	}
}

// permStreamBase offsets the per-permutation PCG stream: permutation j is
// shuffled by rand.NewPCG(seed, permStreamBase+j). Deriving an independent
// RNG per permutation index (rather than one sequential stream) lets any
// worker generate any permutation and keeps the label matrix byte-identical
// for every worker count.
const permStreamBase = 0x9e3779b97f4a7c15

// shufflePerm fills dst with labels shuffled under permutation j's RNG.
func shufflePerm(dst, labels []int32, seed uint64, j int) {
	src := rand.NewPCG(0, 0)
	shufflePermInto(dst, labels, src, rand.New(src), seed, j)
}

// shufflePermInto is shufflePerm with the RNG supplied by the caller so a
// worker generating many permutations reuses one PCG and one Rand:
// re-seeding the PCG to (seed, permStreamBase+j) reproduces the exact
// stream a freshly constructed rand.New(rand.NewPCG(...)) would produce —
// rand.Rand is a stateless wrapper around its source — so the shuffles
// stay byte-identical to shufflePerm's.
func shufflePermInto(dst, labels []int32, src *rand.PCG, rng *rand.Rand, seed uint64, j int) {
	src.Seed(seed, permStreamBase+uint64(j))
	copy(dst, labels)
	rng.Shuffle(len(dst), func(a, b int) { dst[a], dst[b] = dst[b], dst[a] })
}

// NewEngine prepares a permutation run over the given mined tree and rule
// set. The rules must have been generated from the same tree. In fixed
// mode the packed label permutation matrix is materialised here; an
// adaptive engine (Config.Adaptive.MaxPerms > 0) defers it to the
// per-round blocks of RunAdaptive.
func NewEngine(tree *mining.Tree, rules []mining.Rule, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Adaptive.Enabled() {
		cfg.Adaptive = cfg.Adaptive.Normalized()
		cfg.NumPerms = cfg.Adaptive.MaxPerms
	}
	if cfg.NumPerms < 1 {
		return nil, fmt.Errorf("permute: NumPerms must be >= 1, got %d", cfg.NumPerms)
	}
	enc := tree.Enc
	if enc.NumClasses > 127 {
		return nil, fmt.Errorf("permute: %d classes exceed the int8 label matrix", enc.NumClasses)
	}
	e := &Engine{
		tree:       tree,
		rules:      rules,
		cfg:        cfg,
		n:          enc.NumRecords,
		numClasses: enc.NumClasses,
		words:      intset.Words(enc.NumRecords),
		stripeS:    stripeWidth,
		hypergeoms: mining.NewHypergeoms(enc),
	}
	if cfg.DisableBlockedCounting {
		e.stripeS = 1
	}

	if !cfg.Adaptive.Enabled() && !cfg.DeferLabels {
		e.lab = e.buildLabels(0, cfg.NumPerms)
	}
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	if e.wordPath() {
		e.nw = buildNodeWords(tree, cfg.Workers)
	}

	nNodes := len(tree.Nodes)
	e.rulesByNode = newAdjacency(nNodes, func(add func(row int, val int32)) {
		for ri := range rules {
			add(rules[ri].Node.Index, int32(ri))
		}
	})
	e.children = newAdjacency(nNodes, func(add func(row int, val int32)) {
		for _, node := range tree.Nodes {
			if node.Parent != nil {
				add(node.Parent.Index, int32(node.Index))
			}
		}
	})
	return e, nil
}

// wordPath reports whether the word-parallel counting path is available.
func (e *Engine) wordPath() bool {
	return !e.cfg.DisableWordCounting && e.numClasses >= 2
}

// buildNodeWords materialises every node's stored list in sparse word
// form, parallelising over node ranges with at most workers goroutines.
func buildNodeWords(tree *mining.Tree, workers int) *nodeWords {
	nodes := tree.Nodes
	nw := &nodeWords{off: make([]int32, len(nodes)+1)}
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	forRanges := func(fn func(i int)) {
		for w := 0; w < workers; w++ {
			lo := w * len(nodes) / workers
			hi := (w + 1) * len(nodes) / workers
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	forRanges(func(i int) {
		nw.off[i+1] = int32(intset.NonzeroWords(nodes[i].StoredIds()))
	})
	for i := 0; i < len(nodes); i++ {
		nw.off[i+1] += nw.off[i]
	}
	total := int(nw.off[len(nodes)])
	nw.idx = make([]int32, total)
	nw.word = make([]uint64, total)
	forRanges(func(i int) {
		o, p := nw.off[i], nw.off[i+1]
		intset.FillNonzeroWords(nw.idx[o:p], nw.word[o:p], nodes[i].StoredIds())
	})
	return nw
}

// tileBlocks splits the permutations [lo, hi) into at most workers
// contiguous blocks whose boundaries fall on stripe-tile multiples of S
// (relative to lo), so no stripe tile straddles two workers — the label
// generators would race on a shared tile's words, and the blocked kernel
// assumes whole tiles. Only the final block may end mid-tile. The split
// never affects results: every permutation derives from its absolute
// index.
func tileBlocks(lo, hi, workers, S int) [][2]int {
	tiles := (hi - lo + S - 1) / S
	if workers > tiles {
		workers = tiles
	}
	if workers < 1 {
		workers = 1
	}
	blocks := make([][2]int, 0, workers)
	per, extra := tiles/workers, tiles%workers
	t0 := 0
	for w := 0; w < workers; w++ {
		t1 := t0 + per
		if w < extra {
			t1++
		}
		bhi := lo + t1*S
		if bhi > hi {
			bhi = hi
		}
		blocks = append(blocks, [2]int{lo + t0*S, bhi})
		t0 = t1
	}
	return blocks
}

// buildLabels materialises the label block of permutations [lo, hi).
// Workers fill disjoint tile-aligned permutation ranges concurrently;
// per-permutation RNG derivation from (Seed, j) with the ABSOLUTE
// permutation index j makes the block independent of both the worker
// count and the block boundaries. On the word path only the striped
// bitmap matrix is built (the blocked kernel never reads labels
// element-wise); the scalar path builds the transposed element matrix
// instead. A cancelled Ctx aborts the fill; callers must check the
// context before consuming the (then partial) block.
func (e *Engine) buildLabels(lo, hi int) *labelBlock {
	cfg := e.cfg
	count := hi - lo
	S := e.stripeS
	lab := &labelBlock{lo: lo, hi: hi, stripeS: S}
	wordPath := e.wordPath()
	if wordPath {
		tiles := (count + S - 1) / S
		lab.stripes = make([]uint64, tiles*(e.numClasses-1)*e.words*S)
	} else {
		lab.permLabels = make([]int8, e.n*count)
	}
	labels := e.tree.Enc.Labels
	tileStride := (e.numClasses - 1) * e.words * S
	var wg sync.WaitGroup
	for _, b := range tileBlocks(lo, hi, cfg.Workers, S) {
		wg.Add(1)
		go func(wlo, whi int) {
			defer wg.Done()
			src := rand.NewPCG(0, 0)
			rng := rand.New(src)
			shuffled := make([]int32, e.n)
			for j := wlo; j < whi; j++ {
				if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
					return
				}
				shufflePermInto(shuffled, labels, src, rng, cfg.Seed, j)
				rel := j - lo
				if wordPath {
					base := (rel/S)*tileStride + rel%S
					if e.numClasses == 2 {
						// Binary labels scatter branchlessly: c is 0 or
						// 1, and a zero label contributes no bit.
						for r, c := range shuffled {
							lab.stripes[base+(r>>6)*S] |= uint64(c) << (uint(r) & 63)
						}
					} else {
						for r, c := range shuffled {
							if c > 0 {
								lab.stripes[base+((int(c)-1)*e.words+r>>6)*S] |= 1 << (uint(r) & 63)
							}
						}
					}
				} else {
					for r := 0; r < e.n; r++ {
						lab.permLabels[r*count+rel] = int8(shuffled[r])
					}
				}
			}
		}(b[0], b[1])
	}
	wg.Wait()
	return lab
}

// fixedLab returns the full-range label block, building it on first use.
// Fixed-mode engines built it at construction; on an adaptive engine this
// materialises the whole MaxPerms matrix so the fixed-mode methods stay
// usable.
func (e *Engine) fixedLab() *labelBlock {
	e.labOnce.Do(func() {
		if e.lab == nil {
			e.lab = e.buildLabels(0, e.cfg.NumPerms)
		}
	})
	return e.lab
}

// ctxErr reports the configured context's error, if any.
func (e *Engine) ctxErr() error {
	if e.cfg.Ctx != nil {
		return e.cfg.Ctx.Err()
	}
	return nil
}

// NumPerms returns the configured permutation count (Adaptive.MaxPerms in
// adaptive mode).
func (e *Engine) NumPerms() int { return e.cfg.NumPerms }

// Err reports the first cancellation error observed by any run; results
// returned by MinP, CountLE or PerRuleLE after a non-nil Err are partial
// and must be discarded.
func (e *Engine) Err() error {
	if ep := e.runErr.Load(); ep != nil {
		return *ep
	}
	return nil
}

// visitor receives the p-values of one rule across a block of
// permutations: ps[j] is the rule's p-value on permutation perm0+j.
// Visitors are called from worker goroutines; a visitor instance is only
// used by one worker at a time for a given block.
type visitor interface {
	visit(ruleIdx int, perm0 int, ps []float64)
}

// run walks the full fixed-mode permutation range (building the label
// block on first use).
func (e *Engine) run(mkVisitor func() visitor, merge func(visitor)) {
	e.runSpan(e.fixedLab(), e.rulesByNode, e.children, mkVisitor, merge)
}

// runSpan walks the tree once per worker block over the permutations of
// lab, computing per-permutation class counts bottom-up and handing
// per-rule p-value slices to v's instances. rulesByNode and children
// select the (possibly retirement-compacted) rule set and subtree walk.
// mkVisitor is called once per worker; merge is called with each worker's
// visitor after all blocks finish, in worker order.
func (e *Engine) runSpan(lab *labelBlock, rulesByNode, children *adjacency, mkVisitor func() visitor, merge func(visitor)) {
	// Split the span's permutations into one tile-aligned contiguous block
	// per worker.
	blocks := tileBlocks(lab.lo, lab.hi, e.cfg.Workers, lab.stripeS)

	// Translate context cancellation into the cheap stop flag the DFS
	// polls at every node.
	if e.cfg.Ctx != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			//armine:orderok -- cancellation watcher; either arm only raises the sticky stop flag
			select {
			case <-e.cfg.Ctx.Done():
				e.setErr(e.cfg.Ctx.Err())
				e.stop.Store(true)
			case <-watchDone:
			}
		}()
	}

	visitors := make([]visitor, len(blocks))
	var wg sync.WaitGroup
	for w := range blocks {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			visitors[w] = mkVisitor()
			e.runBlock(lab, rulesByNode, children, blocks[w][0], blocks[w][1], visitors[w])
		}(w)
	}
	wg.Wait()
	if e.cfg.Ctx != nil {
		e.setErr(e.cfg.Ctx.Err())
	}
	for _, v := range visitors {
		merge(v)
	}
}

// workerState is the per-worker scratch one walk needs: buffer pools, the
// counts arena, the p-value batch and the OptNone Fisher ladder scratch.
// States are cached on the engine (acquireState/releaseState) and reused
// across runs and adaptive rounds, so steady-state walking allocates
// nothing — pools keep their built buffers, arenas their chunks.
type workerState struct {
	pools  []*stats.BufferPool // nil unless Opt buffers Fisher p-values
	arena  *intset.Arena[int32]
	ps     []float64 // p-value batch: one entry per permutation in block
	fisher stats.PScratch
}

// acquireState pops a cached worker state or builds a fresh one.
func (e *Engine) acquireState() *workerState {
	e.stMu.Lock()
	if n := len(e.stFree); n > 0 {
		st := e.stFree[n-1]
		e.stFree = e.stFree[:n-1]
		e.stMu.Unlock()
		return st
	}
	e.stMu.Unlock()
	st := &workerState{arena: intset.NewArena[int32](1 << 16)}
	if e.cfg.Test == mining.TestFisher {
		switch e.cfg.Opt {
		case OptNone:
			// Direct Fisher computation via the ladder scratch, no buffers.
		case OptDynamicBuffer, OptDiffsets:
			st.pools = e.newPools(0) // static disabled: dynamic slot only
		case OptStaticBuffer:
			st.pools = e.newPools(e.cfg.StaticBudget)
		}
	}
	return st
}

func (e *Engine) releaseState(st *workerState) {
	e.stMu.Lock()
	e.stFree = append(e.stFree, st)
	e.stMu.Unlock()
}

// runBlock processes permutations [perm0, perm1) in one goroutine.
func (e *Engine) runBlock(lab *labelBlock, rulesByNode, children *adjacency, perm0, perm1 int, v visitor) {
	st := e.acquireState()
	defer e.releaseState(st)
	blockLen := perm1 - perm0
	if cap(st.ps) < blockLen {
		st.ps = make([]float64, blockLen)
	}
	w := &walker{
		e:           e,
		lab:         lab,
		rulesByNode: rulesByNode,
		children:    children,
		perm0:       perm0,
		blockLen:    blockLen,
		tile0:       (perm0 - lab.lo) / lab.stripeS,
		v:           v,
		st:          st,
	}
	mark := st.arena.Checkpoint()
	root := e.tree.Root
	w.node(root, w.countsFromNode(root))
	st.arena.Rewind(mark)
}

// newPools builds one buffer pool per class; budget 0 disables the static
// buffer (dynamic-slot-only behaviour).
func (e *Engine) newPools(budget int) []*stats.BufferPool {
	pools := make([]*stats.BufferPool, e.numClasses)
	for c := range pools {
		maxSup := e.tree.MinSup - 1 // static disabled
		if budget > 0 {
			maxSup = stats.MaxSupForBudget(e.hypergeoms[c], e.tree.MinSup, budget/e.numClasses)
		}
		pools[c] = stats.NewBufferPool(e.hypergeoms[c], e.tree.MinSup, maxSup)
	}
	return pools
}

// walker carries per-worker DFS state.
type walker struct {
	e           *Engine
	lab         *labelBlock // label block covering [perm0, perm0+blockLen)
	rulesByNode *adjacency  // rule indices per node (live subset in adaptive rounds)
	children    *adjacency  // subtree walk (compacted in adaptive rounds)
	perm0       int
	blockLen    int
	tile0       int // stripe-tile index of perm0 within lab
	v           visitor
	st          *workerState
}

// countsFromNode returns the node's class-count matrix for the block: for
// every class c and permutation j, how many of the node's records carry
// class c under permutation j, as counts[c*blockLen+j]. Only called for
// nodes that store full tid-lists (the root always does); Diffset children
// derive their counts from the parent's in node. The buffer comes from
// the worker arena — the caller's checkpoint scopes its lifetime.
//
//armine:noalloc
func (w *walker) countsFromNode(nd *mining.Node) []int32 {
	if w.lab.stripes != nil {
		counts := w.st.arena.Alloc(w.e.numClasses * w.blockLen)
		w.blockedCounts(counts, nil, nd)
		return counts
	}
	counts := w.st.arena.AllocZero(w.e.numClasses * w.blockLen)
	w.elementAccumulate(counts, nd.Tids, +1)
	return counts
}

// blockedCounts fills dst with nd's class-count matrix using the blocked
// striped kernel: one pass per stripe tile over the node's sparse tid
// words counts stripeS permutations for all classes, accumulating into a
// register tile and writing each class row back in one go. With base nil
// the node's stored list is counted directly (dst[c][j] = k_c); with base
// non-nil the stored list is the node's Diffset and dst[c][j] =
// base[c][j] - k_c — §4.2.2's subtraction fused into the write-back, so
// no separate parent copy is needed. Class 0 is derived from the
// remainder: the counts of one list across classes sum to its length.
//
//armine:noalloc
func (w *walker) blockedCounts(dst, base []int32, nd *mining.Node) {
	e := w.e
	nw := e.nw
	o, p := nw.off[nd.Index], nw.off[nd.Index+1]
	idx, word := nw.idx[o:p], nw.word[o:p]
	ln := int32(len(nd.StoredIds()))
	C, W, bl := e.numClasses, e.words, w.blockLen
	if w.lab.stripeS == 1 {
		// DisableBlockedCounting ablation: perm-major layout, one
		// permutation per pass.
		tileStride := (C - 1) * W
		for j := 0; j < bl; j++ {
			tbase := (w.tile0 + j) * tileStride
			rest := ln
			for c := 1; c < C; c++ {
				k := intset.IntersectCountStripes1(idx, word, w.lab.stripes[tbase+(c-1)*W:tbase+c*W])
				if base != nil {
					dst[c*bl+j] = base[c*bl+j] - k
				} else {
					dst[c*bl+j] = k
				}
				rest -= k
			}
			if base != nil {
				dst[j] = base[j] - rest
			} else {
				dst[j] = rest
			}
		}
		return
	}

	const S = stripeWidth
	tileStride := (C - 1) * W * S
	j0start := 0
	if C == 2 {
		// Binary classes — the paper's setting — run the fused kernel:
		// count, Diffset subtraction, and both class rows in one pass
		// over all full tiles. The generic loop below picks up a
		// partial tail tile.
		if fullTiles := bl / S; fullTiles > 0 {
			sb := w.lab.stripes[w.tile0*tileStride:]
			var base0, base1 []int32
			if base != nil {
				base0, base1 = base[:bl], base[bl:2*bl]
			}
			intset.CountStripesBinary(dst[:bl], dst[bl:2*bl], base0, base1,
				ln, idx, word, sb, fullTiles, tileStride)
			j0start = fullTiles * S
		}
	}
	for j0 := j0start; j0 < bl; j0 += S {
		m := bl - j0
		if m > S {
			m = S
		}
		tbase := (w.tile0 + j0/S) * tileStride
		var rest [S]int32
		for s := 0; s < m; s++ {
			rest[s] = ln
		}
		for c := 1; c < C; c++ {
			var k [S]int32
			intset.IntersectCountStripes8(&k, idx, word, w.lab.stripes[tbase+(c-1)*W*S:tbase+c*W*S])
			row := dst[c*bl+j0 : c*bl+j0+m]
			if base != nil {
				brow := base[c*bl+j0 : c*bl+j0+m]
				for s := 0; s < m; s++ {
					row[s] = brow[s] - k[s]
					rest[s] -= k[s]
				}
			} else {
				for s := 0; s < m; s++ {
					row[s] = k[s]
					rest[s] -= k[s]
				}
			}
		}
		row := dst[j0 : j0+m]
		if base != nil {
			brow := base[j0 : j0+m]
			for s := 0; s < m; s++ {
				row[s] = brow[s] - rest[s]
			}
		} else {
			for s := 0; s < m; s++ {
				row[s] = rest[s]
			}
		}
	}
}

// elementAccumulate adds (sign = +1) or subtracts (sign = -1) the
// per-class, per-permutation counts of ids into counts by walking the
// transposed element label matrix — the scalar ablation path
// (DisableWordCounting), byte-identical in output to the blocked kernel.
//
//armine:noalloc
func (w *walker) elementAccumulate(counts []int32, ids []uint32, sign int32) {
	bl := w.blockLen
	lab := w.lab
	stride := lab.hi - lab.lo
	rel := w.perm0 - lab.lo
	if sign >= 0 {
		for _, r := range ids {
			row := lab.permLabels[int(r)*stride+rel : int(r)*stride+rel+bl]
			for j, c := range row {
				counts[int(c)*bl+j]++
			}
		}
	} else {
		for _, r := range ids {
			row := lab.permLabels[int(r)*stride+rel : int(r)*stride+rel+bl]
			for j, c := range row {
				counts[int(c)*bl+j]--
			}
		}
	}
}

// node emits the p-values of every rule anchored at nd and recurses into
// its children. counts is nd's class-count matrix for the block; ownership
// stays with the caller (arena checkpoints scope each child's buffer to
// its subtree walk).
//
//armine:noalloc
func (w *walker) node(nd *mining.Node, counts []int32) {
	if w.e.stop.Load() {
		return
	}
	bl := w.blockLen
	ps := w.st.ps[:bl]
	for _, ri := range w.rulesByNode.row(nd.Index) {
		rule := &w.e.rules[ri]
		class := int(rule.Class)
		cvg := rule.Coverage
		ks := counts[class*bl : (class+1)*bl]
		switch {
		case w.st.pools != nil:
			w.st.pools[class].Buffer(cvg).PValuesInto(ps, ks)
		case w.e.cfg.Test == mining.TestChiSquare:
			h := w.e.hypergeoms[class]
			for j, k := range ks {
				ps[j] = stats.ChiSquarePValue(stats.ChiSquare2x2(int(k), cvg, h.N(), h.NC()), 1)
			}
		case w.e.cfg.Test == mining.TestMidP:
			h := w.e.hypergeoms[class]
			for j, k := range ks {
				ps[j] = h.FisherMidP(int(k), cvg)
			}
		default:
			// OptNone: the paper's "no optimization" configuration rebuilds
			// the Fisher ladder at every (rule, permutation) evaluation; the
			// scratch form keeps that cost model while cutting the
			// per-evaluation allocations to zero.
			h := w.e.hypergeoms[class]
			for j, k := range ks {
				ps[j] = h.FisherTwoTailedScratch(&w.st.fisher, int(k), cvg)
			}
		}
		w.v.visit(int(ri), w.perm0, ps)
	}

	for _, ci := range w.children.row(nd.Index) {
		child := w.e.tree.Nodes[ci]
		mark := w.st.arena.Checkpoint()
		var childCounts []int32
		switch {
		case !child.HasDiff():
			childCounts = w.countsFromNode(child)
		case w.lab.stripes != nil:
			// counts(child) = counts(parent) - counts(diff), per class and
			// permutation (§4.2.2 applied to the permutation matrix), fused
			// into the blocked kernel's write-back.
			childCounts = w.st.arena.Alloc(w.e.numClasses * bl)
			w.blockedCounts(childCounts, counts, child)
		default:
			childCounts = w.st.arena.Alloc(w.e.numClasses * bl)
			copy(childCounts, counts)
			w.elementAccumulate(childCounts, child.Diff, -1)
		}
		w.node(child, childCounts)
		w.st.arena.Rewind(mark)
	}
}

// MinP returns, for each permutation, the minimum p-value over all rules —
// the Westfall–Young null distribution used to control FWER (§4.2).
func (e *Engine) MinP() []float64 {
	out := make([]float64, e.cfg.NumPerms)
	for i := range out {
		out[i] = 1
	}
	e.run(
		func() visitor { return &minPVisitor{min: out} },
		func(visitor) {}, // workers write disjoint permutation ranges in place
	)
	return out
}

type minPVisitor struct{ min []float64 }

func (v *minPVisitor) visit(_ int, perm0 int, ps []float64) {
	for j, p := range ps {
		if p < v.min[perm0+j] {
			v.min[perm0+j] = p
		}
	}
}

// CountLE returns, for each rule, how many of the N·Nt permutation
// p-values are <= the rule's original p-value — the numerator of the
// empirical adjusted p-value used to control FDR (§4.2):
//
//	p_adj(R) = |{p' in permutation p-values : p' <= p(R)}| / (N·Nt)
func (e *Engine) CountLE() []int64 {
	// Rank the original p-values once; every permutation p-value then
	// contributes to a suffix of the sorted order via binary search, and
	// the prefix sums of the histogram recover the per-rule counts.
	rk := e.rank()
	var mu sync.Mutex
	hist := make([]int64, len(rk.Sorted)+1)
	e.run(
		func() visitor {
			return &countLEVisitor{sorted: rk.Sorted, hist: make([]int64, len(rk.Sorted)+1)}
		},
		func(v visitor) {
			cv := v.(*countLEVisitor)
			mu.Lock()
			for i, h := range cv.hist {
				hist[i] += h
			}
			mu.Unlock()
		},
	)
	return rk.CountsFromHist(hist)
}

type countLEVisitor struct {
	sorted []float64
	hist   []int64
}

func (v *countLEVisitor) visit(_ int, _ int, ps []float64) {
	for _, p := range ps {
		// First index i with sorted[i] >= p: the permutation value p is
		// <= every original p-value from i on.
		i := sort.SearchFloat64s(v.sorted, p)
		v.hist[i]++
	}
}

// PerRuleLE returns for each rule the number of ITS OWN permutation
// p-values <= its original p-value, divided by N — the per-rule empirical
// p-value. Not used by the paper's FDR procedure (which pools across
// rules) but exposed for diagnostics and tests.
func (e *Engine) PerRuleLE() []float64 {
	counts := make([]int64, len(e.rules))
	var mu sync.Mutex
	e.run(
		func() visitor {
			return &perRuleVisitor{orig: e.rules, counts: make([]int64, len(e.rules))}
		},
		func(v visitor) {
			pv := v.(*perRuleVisitor)
			mu.Lock()
			for i, c := range pv.counts {
				counts[i] += c
			}
			mu.Unlock()
		},
	)
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c) / float64(e.cfg.NumPerms)
	}
	return out
}

type perRuleVisitor struct {
	orig   []mining.Rule
	counts []int64
}

func (v *perRuleVisitor) visit(ruleIdx int, _ int, ps []float64) {
	p0 := v.orig[ruleIdx].P
	var c int64
	for _, p := range ps {
		if p <= p0 {
			c++
		}
	}
	v.counts[ruleIdx] += c
}
