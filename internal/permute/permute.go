// Package permute implements the permutation-based multiple testing
// machinery of §4.2: class labels are randomly shuffled N times, and the
// p-values of all mined rules are recomputed on every permutation to
// approximate the null distribution. The paper's three cost reductions are
// all implemented and individually switchable (Fig 4):
//
//   - mine once (§4.2.1): patterns and tid-lists never change across
//     permutations, only the class labels do, so the set-enumeration tree is
//     mined a single time and supports are recounted per permutation;
//   - Diffsets (§4.2.2): a node that keeps more than half of its parent's
//     records stores only the difference, and its per-permutation class
//     counts are derived from the parent's by subtracting the difference;
//   - p-value buffering (§4.2.3): per-coverage buffers of all attainable
//     Fisher p-values, served from a byte-budgeted static buffer plus a
//     one-slot dynamic buffer, shared across rules and permutations.
//
// On top of the paper's ladder the engine counts word-parallel (DESIGN.md
// §3): permuted class labels are packed into per-permutation []uint64
// bitmaps, so a rule's class count under a permutation is
// popcount(tidWords & labelWords) — 64 records per AND+popcount — instead
// of an element-by-element label walk. Dense nodes reuse shared word views
// (mining.NodeReps); sparse ones pack a pooled scratch bitmap or fall back
// to the element walk when the list is too short to pay for it. The word
// and element paths produce identical integer counts, so results stay
// byte-identical at every optimisation level and worker count.
package permute

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/intset"
	"repro/internal/mining"
	"repro/internal/stats"
)

// OptLevel selects which of the paper's optimisations are active,
// mirroring the four configurations of Fig 4. Mine-once is always on (the
// alternative — re-mining per permutation — is not a configuration the
// paper measures; its Fig 4 baseline "no optimization" already mines once).
type OptLevel int

const (
	// OptNone: full tid-lists, Fisher p-values computed from scratch at
	// every (rule, permutation) evaluation.
	OptNone OptLevel = iota
	// OptDynamicBuffer: full tid-lists; p-values served from the one-slot
	// dynamic buffer.
	OptDynamicBuffer
	// OptDiffsets: Diffsets storage plus the dynamic buffer.
	OptDiffsets
	// OptStaticBuffer: Diffsets plus a static buffer (StaticBudget bytes)
	// in front of the dynamic buffer.
	OptStaticBuffer
)

// String returns the Fig 4 series label of the optimisation level.
func (o OptLevel) String() string {
	switch o {
	case OptNone:
		return "no optimization"
	case OptDynamicBuffer:
		return "dynamic buf"
	case OptDiffsets:
		return "Diffsets+dynamic buf"
	case OptStaticBuffer:
		return "16M static buf+Diffsets+dynamic buf"
	default:
		return fmt.Sprintf("OptLevel(%d)", int(o))
	}
}

// WantDiffsets reports whether trees consumed under this level should be
// mined with Diffset storage.
func (o OptLevel) WantDiffsets() bool { return o >= OptDiffsets }

// Name returns the level's short machine-readable name, the form ParseOpt
// accepts and BENCH_<rev>.json records.
func (o OptLevel) Name() string {
	switch o {
	case OptNone:
		return "none"
	case OptDynamicBuffer:
		return "dynamic"
	case OptDiffsets:
		return "diffsets"
	case OptStaticBuffer:
		return "static"
	default:
		return fmt.Sprintf("OptLevel(%d)", int(o))
	}
}

// ParseOpt maps a case-insensitive short level name — none | dynamic |
// diffsets | static — to its OptLevel. Surrounding whitespace is ignored.
func ParseOpt(s string) (OptLevel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none":
		return OptNone, nil
	case "dynamic":
		return OptDynamicBuffer, nil
	case "diffsets":
		return OptDiffsets, nil
	case "static":
		return OptStaticBuffer, nil
	default:
		return 0, fmt.Errorf("permute: unknown optimisation level %q (want none|dynamic|diffsets|static)", s)
	}
}

// Config configures a permutation run.
type Config struct {
	// NumPerms is N, the number of label permutations (the paper uses
	// 1000).
	NumPerms int
	// Seed drives the label shuffles; equal seeds give identical
	// permutations. Each permutation j derives its own RNG from
	// (Seed, j), so the shuffles are generated concurrently and are
	// byte-identical for every worker count.
	Seed uint64
	// Ctx, when non-nil, cancels a run early: workers poll the context's
	// cancellation and the engine's Err method reports the context error
	// after an aborted run. A nil Ctx means no cancellation.
	Ctx context.Context
	// Opt selects the optimisation level (default OptStaticBuffer).
	Opt OptLevel
	// StaticBudget is the static buffer size in bytes under
	// OptStaticBuffer (default 16 MB, the paper's value).
	StaticBudget int
	// Workers caps the number of goroutines (default GOMAXPROCS). Each
	// worker processes a disjoint block of permutations with its own
	// buffer pool, so results are deterministic regardless of Workers.
	Workers int
	// Test selects the statistical test; it must match the test used to
	// compute the rules' original p-values. TestFisher uses the buffer
	// machinery selected by Opt; TestChiSquare is O(1) per evaluation and
	// ignores Opt's buffering; TestMidP recomputes per evaluation
	// (expensive, extension only).
	Test mining.TestKind
	// DisableWordCounting forces every per-permutation class count back to
	// the element-by-element label walk, disabling the packed-bitmap
	// AND+popcount path. An ablation/debugging knob in the spirit of the
	// Fig 4 ladder — results are byte-identical either way; only the cost
	// changes. armine bench measures both sides to report the word-path
	// speedup.
	DisableWordCounting bool
	// Adaptive, when Adaptive.MaxPerms > 0, switches the engine into
	// sequential early-stopping mode (DESIGN.md §7): permutations run in
	// rounds via RunAdaptive, and NumPerms is ignored in favour of
	// Adaptive.MaxPerms. The fixed-mode methods (MinP, CountLE, PerRuleLE)
	// still work on an adaptive engine, evaluating the full MaxPerms
	// matrix.
	Adaptive Adaptive
}

func (c Config) withDefaults() Config {
	if c.StaticBudget == 0 {
		c.StaticBudget = 16 << 20
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// labelBlock holds the materialised label shuffles of the permutation
// range [lo, hi). Fixed-mode engines build one block covering every
// permutation; adaptive rounds build one block per round, so memory is
// bounded by the round length rather than the whole budget. Permutation
// j's shuffle always derives from (Seed, j) regardless of which block
// carries it, so block boundaries never change results.
type labelBlock struct {
	lo, hi int
	// permLabels is the transposed label matrix of the block:
	// permLabels[r*(hi-lo) + (j-lo)] is record r's class under
	// permutation j. It serves the element-walk path (sparse nodes read
	// one byte per (record, permutation)).
	permLabels []int8
	// labelWords is the packed label matrix serving the word-parallel
	// path: for permutation j and class c in [1, numClasses), the W =
	// words uint64s starting at (((j-lo)*(numClasses-1))+(c-1))*words
	// form a bitmap over records with bit r set iff record r has class c
	// under permutation j. Class 0 is derived (counts sum to the tid-list
	// length), which keeps the matrix one class slimmer. nil when word
	// counting is disabled or there are fewer than two classes.
	labelWords []uint64
}

// Engine evaluates rule p-values across permutations of the class labels.
type Engine struct {
	tree  *mining.Tree
	rules []mining.Rule
	cfg   Config

	n          int
	numClasses int
	// lab is the fixed-mode label block covering [0, NumPerms); nil until
	// built (adaptive engines build per-round blocks instead and only
	// materialise the full block if a fixed-mode method is called).
	lab     *labelBlock
	labOnce sync.Once
	// words is the bitmap width in uint64s: ceil(n / 64).
	words int
	// nodeReps[i] is the adaptive set representation of node i's stored
	// list; dense nodes carry shared word views the walkers use without
	// packing scratch bitmaps. nil when word counting is disabled.
	nodeReps []*intset.Rep
	// rulesByNode[i] lists the indices (into rules) of the rules whose LHS
	// is tree node i.
	rulesByNode [][]int32
	children    [][]int32
	hypergeoms  []*stats.Hypergeom

	stop   atomic.Bool           // set when cfg.Ctx is cancelled mid-run
	runErr atomic.Pointer[error] // sticky: first cancellation error observed
}

// setErr records the first cancellation error (later calls are no-ops).
func (e *Engine) setErr(err error) {
	if err != nil {
		e.runErr.CompareAndSwap(nil, &err)
	}
}

// permStreamBase offsets the per-permutation PCG stream: permutation j is
// shuffled by rand.NewPCG(seed, permStreamBase+j). Deriving an independent
// RNG per permutation index (rather than one sequential stream) lets any
// worker generate any permutation and keeps the label matrix byte-identical
// for every worker count.
const permStreamBase = 0x9e3779b97f4a7c15

// shufflePerm fills dst with labels shuffled under permutation j's RNG.
func shufflePerm(dst, labels []int32, seed uint64, j int) {
	copy(dst, labels)
	rng := rand.New(rand.NewPCG(seed, permStreamBase+uint64(j)))
	rng.Shuffle(len(dst), func(a, b int) { dst[a], dst[b] = dst[b], dst[a] })
}

// NewEngine prepares a permutation run over the given mined tree and rule
// set. The rules must have been generated from the same tree. In fixed
// mode the label permutation matrix (NumRecords × NumPerms bytes) is
// materialised here; an adaptive engine (Config.Adaptive.MaxPerms > 0)
// defers it to the per-round blocks of RunAdaptive.
func NewEngine(tree *mining.Tree, rules []mining.Rule, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	if cfg.Adaptive.Enabled() {
		cfg.Adaptive = cfg.Adaptive.Normalized()
		cfg.NumPerms = cfg.Adaptive.MaxPerms
	}
	if cfg.NumPerms < 1 {
		return nil, fmt.Errorf("permute: NumPerms must be >= 1, got %d", cfg.NumPerms)
	}
	enc := tree.Enc
	if enc.NumClasses > 127 {
		return nil, fmt.Errorf("permute: %d classes exceed the int8 label matrix", enc.NumClasses)
	}
	e := &Engine{
		tree:       tree,
		rules:      rules,
		cfg:        cfg,
		n:          enc.NumRecords,
		numClasses: enc.NumClasses,
		words:      intset.Words(enc.NumRecords),
		hypergeoms: mining.NewHypergeoms(enc),
	}

	if !cfg.Adaptive.Enabled() {
		e.lab = e.buildLabels(0, cfg.NumPerms)
	}
	if cfg.Ctx != nil {
		if err := cfg.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	if e.wordPath() {
		// Shared word views for dense stored lists; sparse nodes pack
		// per-worker scratch bitmaps (or walk elements) instead.
		e.nodeReps = mining.NodeReps(tree, cfg.Workers)
	}

	e.rulesByNode = make([][]int32, len(tree.Nodes))
	for ri := range rules {
		idx := rules[ri].Node.Index
		e.rulesByNode[idx] = append(e.rulesByNode[idx], int32(ri))
	}
	e.children = make([][]int32, len(tree.Nodes))
	for _, node := range tree.Nodes {
		if node.Parent != nil {
			e.children[node.Parent.Index] = append(e.children[node.Parent.Index], int32(node.Index))
		}
	}
	return e, nil
}

// wordPath reports whether the word-parallel counting path is available.
func (e *Engine) wordPath() bool {
	return !e.cfg.DisableWordCounting && e.numClasses >= 2
}

// buildLabels materialises the label block of permutations [lo, hi),
// transposed for cache-friendly access when iterating a tid-list across a
// block of permutations. Workers fill disjoint permutation (column)
// ranges concurrently; per-permutation RNG derivation from (Seed, j) with
// the ABSOLUTE permutation index j makes the block independent of both
// the worker count and the block boundaries. The packed labelWords matrix
// for word-parallel counting is filled in the same pass — each
// permutation's bitmaps are again a disjoint range, so no synchronisation
// is needed. A cancelled Ctx aborts the fill; callers must check the
// context before consuming the (then partial) block.
func (e *Engine) buildLabels(lo, hi int) *labelBlock {
	cfg := e.cfg
	count := hi - lo
	lab := &labelBlock{lo: lo, hi: hi, permLabels: make([]int8, e.n*count)}
	if e.wordPath() {
		lab.labelWords = make([]uint64, count*(e.numClasses-1)*e.words)
	}
	genWorkers := cfg.Workers
	if genWorkers > count {
		genWorkers = count
	}
	labels := e.tree.Enc.Labels
	var wg sync.WaitGroup
	for w := 0; w < genWorkers; w++ {
		wlo := lo + w*count/genWorkers
		whi := lo + (w+1)*count/genWorkers
		wg.Add(1)
		go func(wlo, whi int) {
			defer wg.Done()
			shuffled := make([]int32, e.n)
			for j := wlo; j < whi; j++ {
				if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
					return
				}
				shufflePerm(shuffled, labels, cfg.Seed, j)
				rel := j - lo
				for r := 0; r < e.n; r++ {
					lab.permLabels[r*count+rel] = int8(shuffled[r])
				}
				if lab.labelWords != nil {
					base := rel * (e.numClasses - 1) * e.words
					for r := 0; r < e.n; r++ {
						if c := shuffled[r]; c > 0 {
							idx := base + (int(c)-1)*e.words + r>>6
							lab.labelWords[idx] |= 1 << (uint(r) & 63)
						}
					}
				}
			}
		}(wlo, whi)
	}
	wg.Wait()
	return lab
}

// fixedLab returns the full-range label block, building it on first use.
// Fixed-mode engines built it at construction; on an adaptive engine this
// materialises the whole MaxPerms matrix so the fixed-mode methods stay
// usable.
func (e *Engine) fixedLab() *labelBlock {
	e.labOnce.Do(func() {
		if e.lab == nil {
			e.lab = e.buildLabels(0, e.cfg.NumPerms)
		}
	})
	return e.lab
}

// ctxErr reports the configured context's error, if any.
func (e *Engine) ctxErr() error {
	if e.cfg.Ctx != nil {
		return e.cfg.Ctx.Err()
	}
	return nil
}

// NumPerms returns the configured permutation count (Adaptive.MaxPerms in
// adaptive mode).
func (e *Engine) NumPerms() int { return e.cfg.NumPerms }

// Err reports the first cancellation error observed by any run; results
// returned by MinP, CountLE or PerRuleLE after a non-nil Err are partial
// and must be discarded.
func (e *Engine) Err() error {
	if ep := e.runErr.Load(); ep != nil {
		return *ep
	}
	return nil
}

// visitor receives the p-values of one rule across a block of
// permutations: ps[j] is the rule's p-value on permutation perm0+j.
// Visitors are called from worker goroutines; a visitor instance is only
// used by one worker at a time for a given block.
type visitor interface {
	visit(ruleIdx int, perm0 int, ps []float64)
}

// run walks the full fixed-mode permutation range (building the label
// block on first use).
func (e *Engine) run(mkVisitor func() visitor, merge func(visitor)) {
	e.runSpan(e.fixedLab(), e.rulesByNode, e.children, mkVisitor, merge)
}

// runSpan walks the tree once per worker block over the permutations of
// lab, computing per-permutation class counts bottom-up and handing
// per-rule p-value slices to v's instances. rulesByNode and children
// select the (possibly retirement-compacted) rule set and subtree walk.
// mkVisitor is called once per worker; merge is called with each worker's
// visitor after all blocks finish, in worker order.
func (e *Engine) runSpan(lab *labelBlock, rulesByNode, children [][]int32, mkVisitor func() visitor, merge func(visitor)) {
	// Split the span's permutations into one contiguous block per worker.
	total := lab.hi - lab.lo
	workers := e.cfg.Workers
	if workers > total {
		workers = total
	}
	type block struct{ lo, hi int }
	blocks := make([]block, 0, workers)
	per := total / workers
	extra := total % workers
	lo := lab.lo
	for w := 0; w < workers; w++ {
		hi := lo + per
		if w < extra {
			hi++
		}
		blocks = append(blocks, block{lo, hi})
		lo = hi
	}

	// Translate context cancellation into the cheap stop flag the DFS
	// polls at every node.
	if e.cfg.Ctx != nil {
		watchDone := make(chan struct{})
		defer close(watchDone)
		go func() {
			select {
			case <-e.cfg.Ctx.Done():
				e.setErr(e.cfg.Ctx.Err())
				e.stop.Store(true)
			case <-watchDone:
			}
		}()
	}

	visitors := make([]visitor, workers)
	var wg sync.WaitGroup
	for w := range blocks {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			visitors[w] = mkVisitor()
			e.runBlock(lab, rulesByNode, children, blocks[w].lo, blocks[w].hi, visitors[w])
		}(w)
	}
	wg.Wait()
	if e.cfg.Ctx != nil {
		e.setErr(e.cfg.Ctx.Err())
	}
	for _, v := range visitors {
		merge(v)
	}
}

// runBlock processes permutations [perm0, perm1) in one goroutine.
func (e *Engine) runBlock(lab *labelBlock, rulesByNode, children [][]int32, perm0, perm1 int, v visitor) {
	blockLen := perm1 - perm0
	w := &walker{
		e:           e,
		lab:         lab,
		rulesByNode: rulesByNode,
		children:    children,
		perm0:       perm0,
		blockLen:    blockLen,
		v:           v,
		ps:          make([]float64, blockLen),
		arena:       intset.NewWordArena(e.n),
	}
	if e.cfg.Test == mining.TestFisher {
		switch e.cfg.Opt {
		case OptNone:
			// Direct Fisher computation, no buffers.
		case OptDynamicBuffer, OptDiffsets:
			w.pools = e.newPools(0) // static disabled: dynamic slot only
		case OptStaticBuffer:
			w.pools = e.newPools(e.cfg.StaticBudget)
		}
	}

	root := e.tree.Root
	counts := w.countsFromNode(root)
	w.node(root, counts)
	w.release(counts)
}

// newPools builds one buffer pool per class; budget 0 disables the static
// buffer (dynamic-slot-only behaviour).
func (e *Engine) newPools(budget int) []*stats.BufferPool {
	pools := make([]*stats.BufferPool, e.numClasses)
	for c := range pools {
		maxSup := e.tree.MinSup - 1 // static disabled
		if budget > 0 {
			maxSup = stats.MaxSupForBudget(e.hypergeoms[c], e.tree.MinSup, budget/e.numClasses)
		}
		pools[c] = stats.NewBufferPool(e.hypergeoms[c], e.tree.MinSup, maxSup)
	}
	return pools
}

// walker carries per-worker DFS state.
type walker struct {
	e           *Engine
	lab         *labelBlock // label block covering [perm0, perm0+blockLen)
	rulesByNode [][]int32   // rule indices per node (live subset in adaptive rounds)
	children    [][]int32   // subtree walk (compacted in adaptive rounds)
	perm0       int
	blockLen    int
	v           visitor
	pools       []*stats.BufferPool // nil under OptNone
	ps          []float64           // scratch: one p per permutation in block
	free        [][]int32           // recycled count buffers
	arena       *intset.WordArena   // scratch bitmaps for the word path
}

// alloc returns a zeroed counts buffer of numClasses × blockLen.
func (w *walker) alloc() []int32 {
	if n := len(w.free); n > 0 {
		buf := w.free[n-1]
		w.free = w.free[:n-1]
		for i := range buf {
			buf[i] = 0
		}
		return buf
	}
	return make([]int32, w.e.numClasses*w.blockLen)
}

func (w *walker) release(buf []int32) { w.free = append(w.free, buf) }

// countsFromNode returns the node's class-count matrix for the block: for
// every class c and permutation j, how many of the node's records carry
// class c under permutation j. Only called for nodes that store full
// tid-lists (the root always does); Diffset children derive their counts
// from the parent's in node.
func (w *walker) countsFromNode(nd *mining.Node) []int32 {
	counts := w.alloc()
	w.accumulate(counts, nd.Tids, w.sharedWords(nd), +1)
	return counts
}

// sharedWords returns the node's shared word view (the Rep fast path), or
// nil when the node's stored list is sparse or word counting is off.
func (w *walker) sharedWords(nd *mining.Node) []uint64 {
	if w.e.nodeReps == nil {
		return nil
	}
	return w.e.nodeReps[nd.Index].Words()
}

// useWords decides the counting path for one stored list by comparing the
// two costs directly: the word path touches (numClasses-1)·words bitmap
// words per permutation in the block (plus a one-off 2·len(ids) scratch
// pack/unpack when no shared view exists), the element path reads
// len(ids) labels per permutation. Both paths produce identical integer
// counts, so the choice — which varies with the block length and hence
// the worker count — never changes results.
func (w *walker) useWords(nIds int, haveShared bool) bool {
	e := w.e
	if w.lab.labelWords == nil {
		return false
	}
	wordCost := (e.numClasses - 1) * e.words * w.blockLen
	if !haveShared {
		wordCost += 2 * nIds
	}
	return wordCost < nIds*w.blockLen
}

// accumulate adds (sign = +1) or subtracts (sign = -1) the per-class,
// per-permutation counts of ids into counts. shared, when non-nil, is
// ids packed as a word bitmap (a node's dense Rep view).
//
// The word path computes each class count as popcount(ids & labels) over
// the packed label matrix — 64 records per AND+popcount — and derives
// class 0 from the remainder (the counts of one list across classes sum
// to its length). This is the §4.2 permutation loop made word-parallel,
// including the Diffsets case: a child's counts are the parent's minus
// the popcounts of its difference list.
func (w *walker) accumulate(counts []int32, ids []uint32, shared []uint64, sign int32) {
	e := w.e
	bl := w.blockLen
	lab := w.lab
	if !w.useWords(len(ids), shared != nil) {
		stride := lab.hi - lab.lo
		rel := w.perm0 - lab.lo
		if sign >= 0 {
			for _, r := range ids {
				row := lab.permLabels[int(r)*stride+rel : int(r)*stride+rel+bl]
				for j, c := range row {
					counts[int(c)*bl+j]++
				}
			}
		} else {
			for _, r := range ids {
				row := lab.permLabels[int(r)*stride+rel : int(r)*stride+rel+bl]
				for j, c := range row {
					counts[int(c)*bl+j]--
				}
			}
		}
		return
	}

	words := shared
	if words == nil {
		words = w.arena.Get()
		intset.SetWords(words, ids)
	}
	C := e.numClasses
	W := e.words
	base := (w.perm0 - lab.lo) * (C - 1) * W
	for j := 0; j < bl; j++ {
		rest := int32(len(ids))
		for c := 1; c < C; c++ {
			k := int32(intset.IntersectCountWords(words, lab.labelWords[base:base+W]))
			counts[c*bl+j] += sign * k
			rest -= k
			base += W
		}
		counts[j] += sign * rest // class 0 by remainder
	}
	if shared == nil {
		w.arena.Put(words, ids)
	}
}

// node emits the p-values of every rule anchored at nd and recurses into
// its children. counts is nd's class-count matrix for the block; ownership
// stays with the caller.
func (w *walker) node(nd *mining.Node, counts []int32) {
	if w.e.stop.Load() {
		return
	}
	bl := w.blockLen
	for _, ri := range w.rulesByNode[nd.Index] {
		rule := &w.e.rules[ri]
		class := int(rule.Class)
		cvg := rule.Coverage
		ks := counts[class*bl : (class+1)*bl]
		switch {
		case w.pools != nil:
			w.pools[class].Buffer(cvg).PValuesInto(w.ps[:bl], ks)
		case w.e.cfg.Test == mining.TestChiSquare:
			h := w.e.hypergeoms[class]
			for j, k := range ks {
				w.ps[j] = stats.ChiSquarePValue(stats.ChiSquare2x2(int(k), cvg, h.N(), h.NC()), 1)
			}
		case w.e.cfg.Test == mining.TestMidP:
			h := w.e.hypergeoms[class]
			for j, k := range ks {
				w.ps[j] = h.FisherMidP(int(k), cvg)
			}
		default:
			h := w.e.hypergeoms[class]
			for j, k := range ks {
				w.ps[j] = h.FisherTwoTailed(int(k), cvg)
			}
		}
		w.v.visit(int(ri), w.perm0, w.ps[:bl])
	}

	for _, ci := range w.children[nd.Index] {
		child := w.e.tree.Nodes[ci]
		var childCounts []int32
		if child.HasDiff() {
			// counts(child) = counts(parent) - counts(diff), per class and
			// permutation (§4.2.2 applied to the permutation matrix) — on
			// the word path the subtraction is the difference list's
			// popcount against the packed labels.
			childCounts = w.alloc()
			copy(childCounts, counts)
			w.accumulate(childCounts, child.Diff, w.sharedWords(child), -1)
		} else {
			childCounts = w.countsFromNode(child)
		}
		w.node(child, childCounts)
		w.release(childCounts)
	}
}

// MinP returns, for each permutation, the minimum p-value over all rules —
// the Westfall–Young null distribution used to control FWER (§4.2).
func (e *Engine) MinP() []float64 {
	out := make([]float64, e.cfg.NumPerms)
	for i := range out {
		out[i] = 1
	}
	e.run(
		func() visitor { return &minPVisitor{min: out} },
		func(visitor) {}, // workers write disjoint permutation ranges in place
	)
	return out
}

type minPVisitor struct{ min []float64 }

func (v *minPVisitor) visit(_ int, perm0 int, ps []float64) {
	for j, p := range ps {
		if p < v.min[perm0+j] {
			v.min[perm0+j] = p
		}
	}
}

// CountLE returns, for each rule, how many of the N·Nt permutation
// p-values are <= the rule's original p-value — the numerator of the
// empirical adjusted p-value used to control FDR (§4.2):
//
//	p_adj(R) = |{p' in permutation p-values : p' <= p(R)}| / (N·Nt)
func (e *Engine) CountLE() []int64 {
	// Sort the original p-values once; every permutation p-value then
	// contributes to a suffix of the sorted order via binary search.
	orig := make([]float64, len(e.rules))
	for i := range e.rules {
		orig[i] = e.rules[i].P
	}
	order := make([]int, len(orig))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return orig[order[a]] < orig[order[b]] })
	sorted := make([]float64, len(order))
	for i, idx := range order {
		sorted[i] = orig[idx]
	}

	var mu sync.Mutex
	hist := make([]int64, len(sorted)+1)
	e.run(
		func() visitor {
			return &countLEVisitor{sorted: sorted, hist: make([]int64, len(sorted)+1)}
		},
		func(v visitor) {
			cv := v.(*countLEVisitor)
			mu.Lock()
			for i, h := range cv.hist {
				hist[i] += h
			}
			mu.Unlock()
		},
	)

	// counts in sorted order are prefix sums of the histogram; map back to
	// rule order.
	out := make([]int64, len(orig))
	var acc int64
	for i := range sorted {
		acc += hist[i]
		out[order[i]] = acc
	}
	return out
}

type countLEVisitor struct {
	sorted []float64
	hist   []int64
}

func (v *countLEVisitor) visit(_ int, _ int, ps []float64) {
	for _, p := range ps {
		// First index i with sorted[i] >= p: the permutation value p is
		// <= every original p-value from i on.
		i := sort.SearchFloat64s(v.sorted, p)
		v.hist[i]++
	}
}

// PerRuleLE returns for each rule the number of ITS OWN permutation
// p-values <= its original p-value, divided by N — the per-rule empirical
// p-value. Not used by the paper's FDR procedure (which pools across
// rules) but exposed for diagnostics and tests.
func (e *Engine) PerRuleLE() []float64 {
	counts := make([]int64, len(e.rules))
	var mu sync.Mutex
	e.run(
		func() visitor {
			return &perRuleVisitor{orig: e.rules, counts: make([]int64, len(e.rules))}
		},
		func(v visitor) {
			pv := v.(*perRuleVisitor)
			mu.Lock()
			for i, c := range pv.counts {
				counts[i] += c
			}
			mu.Unlock()
		},
	)
	out := make([]float64, len(counts))
	for i, c := range counts {
		out[i] = float64(c) / float64(e.cfg.NumPerms)
	}
	return out
}

type perRuleVisitor struct {
	orig   []mining.Rule
	counts []int64
}

func (v *perRuleVisitor) visit(ruleIdx int, _ int, ps []float64) {
	p0 := v.orig[ruleIdx].P
	var c int64
	for _, p := range ps {
		if p <= p0 {
			c++
		}
	}
	v.counts[ruleIdx] += c
}
