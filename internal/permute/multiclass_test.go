package permute

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/synth"
)

// TestEngineThreeClasses checks the engine against the naive oracle when
// every pattern generates m rules (m > 2 classes, §3).
func TestEngineThreeClasses(t *testing.T) {
	p := synth.PaperDefaults()
	p.Classes = 3
	p.N = 300
	p.Attrs = 7
	p.Seed = 55
	res, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	enc := dataset.Encode(res.Data)
	tree, err := mining.MineClosed(enc, mining.Options{MinSup: 20, StoreDiffsets: true})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3*tree.NumPatterns() {
		t.Fatalf("%d rules for %d patterns; want 3 per pattern", len(rules), tree.NumPatterns())
	}

	const numPerms = 15
	const seed = 77
	e, err := NewEngine(tree, rules, Config{NumPerms: numPerms, Seed: seed, Opt: OptStaticBuffer, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := e.MinP()

	// Naive recomputation.
	hyper := mining.NewHypergeoms(enc)
	shuffled := make([]int32, enc.NumRecords)
	tidsOf := make([][]uint32, len(tree.Nodes))
	for i, node := range tree.Nodes {
		tidsOf[i] = node.MaterializeTids()
	}
	for j := 0; j < numPerms; j++ {
		shufflePerm(shuffled, enc.Labels, seed, j)
		minP := 1.0
		for ri := range rules {
			r := &rules[ri]
			k := 0
			for _, tt := range tidsOf[r.Node.Index] {
				if shuffled[tt] == r.Class {
					k++
				}
			}
			if pv := hyper[r.Class].FisherTwoTailed(k, r.Coverage); pv < minP {
				minP = pv
			}
		}
		if math.Abs(got[j]-minP) > 1e-9*minP+1e-300 {
			t.Fatalf("perm %d: engine minP %g != naive %g", j, got[j], minP)
		}
	}
}
