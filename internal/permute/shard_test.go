package permute

import (
	"reflect"
	"testing"
)

// tilePlan partitions [0, n) into shards near-equal contiguous ranges —
// an independent re-derivation of the coordinator's Plan, kept local so
// these tests state the shard-range contract themselves.
func tilePlan(n, shards int) [][2]int {
	if shards > n {
		shards = n
	}
	var out [][2]int
	per, extra := n/shards, n%shards
	x := 0
	for s := 0; s < shards; s++ {
		ln := per
		if s < extra {
			ln++
		}
		out = append(out, [2]int{x, x + ln})
		x += ln
	}
	return out
}

// TestShardSpanByteIdentical is the shard-range conformance property: for
// every optimisation level, worker count and counting ablation, evaluating
// [0, N) as 1, 2, 3 or 8 disjoint contiguous ShardSpan tiles and merging
// (concatenating minima, summing counts) must equal the single-node
// engine's MinP and CountLE byte for byte — not approximately. The (Seed,
// absolute index) label contract makes the tiling invisible: permutation j
// derives its labels from the absolute index j no matter which tile
// evaluates it.
func TestShardSpanByteIdentical(t *testing.T) {
	const numPerms = 25
	const seed = 99
	type ablation struct {
		name           string
		noWords, noBlk bool
	}
	ablations := []ablation{
		{"default", false, false},
		{"scalar", true, false},
		{"unblocked", false, true},
	}
	for _, opt := range []OptLevel{OptNone, OptDynamicBuffer, OptDiffsets, OptStaticBuffer} {
		tree, rules := buildCase(t, 5, 300, 8, 20, opt.WantDiffsets())
		ps := make([]float64, len(rules))
		for i := range rules {
			ps[i] = rules[i].P
		}
		rank := NewRank(ps)
		for _, ab := range ablations {
			for _, workers := range []int{1, 4} {
				cfg := Config{
					NumPerms: numPerms, Seed: seed, Opt: opt, Workers: workers,
					DisableWordCounting:    ab.noWords,
					DisableBlockedCounting: ab.noBlk,
				}
				single, err := NewEngine(tree, rules, cfg)
				if err != nil {
					t.Fatal(err)
				}
				wantMinP := single.MinP()
				wantLE := single.CountLE()
				if err := single.Err(); err != nil {
					t.Fatal(err)
				}
				for _, shards := range []int{1, 2, 3, 8} {
					scfg := cfg
					scfg.DeferLabels = true
					e, err := NewEngine(tree, rules, scfg)
					if err != nil {
						t.Fatal(err)
					}
					gotMinP := make([]float64, 0, numPerms)
					poolHist := make([]int64, len(rules)+1)
					ownLE := make([]int64, len(rules))
					for _, tile := range tilePlan(numPerms, shards) {
						st, err := e.ShardSpan(tile[0], tile[1], nil, true, true)
						if err != nil {
							t.Fatalf("opt=%v ab=%s workers=%d shards=%d tile %v: %v",
								opt, ab.name, workers, shards, tile, err)
						}
						gotMinP = append(gotMinP, st.MinP...)
						for b, c := range st.PoolHist {
							poolHist[b] += c
						}
						for ri, c := range st.OwnLE {
							ownLE[ri] += c
						}
					}
					if !reflect.DeepEqual(gotMinP, wantMinP) {
						t.Fatalf("opt=%v ab=%s workers=%d shards=%d: merged MinP differs from single-node",
							opt, ab.name, workers, shards)
					}
					if gotLE := rank.CountsFromHist(poolHist); !reflect.DeepEqual(gotLE, wantLE) {
						t.Fatalf("opt=%v ab=%s workers=%d shards=%d: merged CountLE differs from single-node",
							opt, ab.name, workers, shards)
					}
					// Own counts are additive across tiles: the tiled sum
					// must equal one span over the whole range.
					full, err := e.ShardSpan(0, numPerms, nil, true, false)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(ownLE, full.OwnLE) {
						t.Fatalf("opt=%v ab=%s workers=%d shards=%d: tiled OwnLE sums differ from full span",
							opt, ab.name, workers, shards)
					}
				}
			}
		}
	}
}

// TestShardSpanLiveMaskMatchesCompact verifies the retirement-frontier
// contract on a single worker: spanning with an explicit all-true mask
// equals spanning with nil (base adjacencies), and spanning under a
// partial mask produces minima over exactly the live rules.
func TestShardSpanLiveMaskMatchesCompact(t *testing.T) {
	const numPerms = 16
	const seed = 3
	tree, rules := buildCase(t, 11, 250, 7, 15, true)
	e, err := NewEngine(tree, rules, Config{NumPerms: numPerms, Seed: seed, DeferLabels: true})
	if err != nil {
		t.Fatal(err)
	}

	allTrue := make([]bool, len(rules))
	for i := range allTrue {
		allTrue[i] = true
	}
	base, err := e.ShardSpan(0, numPerms, nil, true, true)
	if err != nil {
		t.Fatal(err)
	}
	masked, err := e.ShardSpan(0, numPerms, allTrue, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, masked) {
		t.Fatal("all-true live mask differs from nil mask")
	}

	// Retire every other rule; live minima can only grow (the min runs
	// over a subset), and retired rules must contribute no own counts.
	live := make([]bool, len(rules))
	for i := range live {
		live[i] = i%2 == 0
	}
	part, err := e.ShardSpan(0, numPerms, live, true, false)
	if err != nil {
		t.Fatal(err)
	}
	for j := range part.MinP {
		if part.MinP[j] < base.MinP[j] {
			t.Fatalf("perm %d: live-subset min %g below full min %g", j, part.MinP[j], base.MinP[j])
		}
	}
	for ri, c := range part.OwnLE {
		if !live[ri] && c != 0 {
			t.Fatalf("retired rule %d accumulated %d own counts", ri, c)
		}
	}
}

// TestShardSpanRejectsBadRanges pins the span entry point's validation.
func TestShardSpanRejectsBadRanges(t *testing.T) {
	tree, rules := buildCase(t, 51, 100, 4, 10, true)
	e, err := NewEngine(tree, rules, Config{NumPerms: 10, Seed: 1, DeferLabels: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 5}, {5, 5}, {8, 4}, {0, 11}} {
		if _, err := e.ShardSpan(r[0], r[1], nil, true, true); err == nil {
			t.Errorf("ShardSpan(%d, %d) accepted an invalid range", r[0], r[1])
		}
	}
	if _, err := e.ShardSpan(0, 10, make([]bool, len(rules)+1), true, true); err == nil {
		t.Error("ShardSpan accepted a live mask of the wrong length")
	}
}
