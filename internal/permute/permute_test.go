package permute

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/synth"
)

// buildCase mines a synthetic dataset and returns everything a permutation
// test needs.
func buildCase(t *testing.T, seed uint64, n, attrs, minSup int, diffsets bool) (*mining.Tree, []mining.Rule) {
	t.Helper()
	p := synth.PaperDefaults()
	p.N = n
	p.Attrs = attrs
	p.Seed = seed
	res, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	enc := dataset.Encode(res.Data)
	tree, err := mining.MineClosed(enc, mining.Options{MinSup: minSup, StoreDiffsets: diffsets})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
	if err != nil {
		t.Fatal(err)
	}
	return tree, rules
}

// naiveMinP recomputes the per-permutation minimum p-value from scratch:
// regenerate the same label shuffles, materialise every node's tid-list,
// count supports, and call Fisher directly.
func naiveMinP(tree *mining.Tree, rules []mining.Rule, numPerms int, seed uint64) []float64 {
	enc := tree.Enc
	n := enc.NumRecords
	hyper := mining.NewHypergeoms(enc)

	shuffled := make([]int32, n)

	tidsOf := make([][]uint32, len(tree.Nodes))
	for i, node := range tree.Nodes {
		tidsOf[i] = node.MaterializeTids()
	}

	out := make([]float64, numPerms)
	for j := 0; j < numPerms; j++ {
		shufflePerm(shuffled, enc.Labels, seed, j)
		minP := 1.0
		for ri := range rules {
			r := &rules[ri]
			k := 0
			for _, t := range tidsOf[r.Node.Index] {
				if shuffled[t] == r.Class {
					k++
				}
			}
			p := hyper[r.Class].FisherTwoTailed(k, r.Coverage)
			if p < minP {
				minP = p
			}
		}
		out[j] = minP
	}
	return out
}

func TestEngineMinPMatchesNaiveAllOptLevels(t *testing.T) {
	const numPerms = 25
	const seed = 99
	for _, opt := range []OptLevel{OptNone, OptDynamicBuffer, OptDiffsets, OptStaticBuffer} {
		tree, rules := buildCase(t, 5, 300, 8, 20, opt.WantDiffsets())
		want := naiveMinP(tree, rules, numPerms, seed)
		for _, workers := range []int{1, 4} {
			e, err := NewEngine(tree, rules, Config{
				NumPerms: numPerms, Seed: seed, Opt: opt, Workers: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := e.MinP()
			for j := range want {
				if math.Abs(got[j]-want[j]) > 1e-9*math.Max(got[j], want[j])+1e-300 {
					t.Fatalf("opt=%v workers=%d perm %d: minP = %g, want %g",
						opt, workers, j, got[j], want[j])
				}
			}
		}
	}
}

func TestEngineCountLEMatchesNaive(t *testing.T) {
	const numPerms = 20
	const seed = 7
	tree, rules := buildCase(t, 11, 250, 7, 15, true)

	// Naive pooled counts.
	enc := tree.Enc
	n := enc.NumRecords
	hyper := mining.NewHypergeoms(enc)
	shuffled := make([]int32, n)
	tidsOf := make([][]uint32, len(tree.Nodes))
	for i, node := range tree.Nodes {
		tidsOf[i] = node.MaterializeTids()
	}
	var pool []float64
	for j := 0; j < numPerms; j++ {
		shufflePerm(shuffled, enc.Labels, seed, j)
		for ri := range rules {
			r := &rules[ri]
			k := 0
			for _, tt := range tidsOf[r.Node.Index] {
				if shuffled[tt] == r.Class {
					k++
				}
			}
			pool = append(pool, hyper[r.Class].FisherTwoTailed(k, r.Coverage))
		}
	}
	want := make([]int64, len(rules))
	for ri := range rules {
		for _, p := range pool {
			if p <= rules[ri].P {
				want[ri]++
			}
		}
	}

	for _, workers := range []int{1, 3} {
		e, err := NewEngine(tree, rules, Config{
			NumPerms: numPerms, Seed: seed, Opt: OptStaticBuffer, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := e.CountLE()
		for ri := range rules {
			// Tolerate off-by-small-count drift from float ties at the
			// boundary: direct and buffered p-values agree to ~1e-12
			// relative, so exact equality is expected in practice.
			if got[ri] != want[ri] {
				t.Fatalf("workers=%d rule %d: CountLE = %d, want %d", workers, ri, got[ri], want[ri])
			}
		}
	}
}

func TestEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	tree, rules := buildCase(t, 21, 400, 10, 25, true)
	var ref []float64
	for _, workers := range []int{1, 2, 8} {
		e, err := NewEngine(tree, rules, Config{NumPerms: 30, Seed: 3, Opt: OptStaticBuffer, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got := e.MinP()
		if ref == nil {
			ref = got
			continue
		}
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("workers=%d: minP[%d] = %g differs from reference %g", workers, j, got[j], ref[j])
			}
		}
	}
}

func TestEnginePerRuleLE(t *testing.T) {
	tree, rules := buildCase(t, 31, 200, 6, 12, true)
	e, err := NewEngine(tree, rules, Config{NumPerms: 40, Seed: 5, Opt: OptStaticBuffer})
	if err != nil {
		t.Fatal(err)
	}
	perRule := e.PerRuleLE()
	if len(perRule) != len(rules) {
		t.Fatalf("PerRuleLE returned %d values for %d rules", len(perRule), len(rules))
	}
	for i, v := range perRule {
		if v < 0 || v > 1 {
			t.Errorf("rule %d: empirical p %g outside [0,1]", i, v)
		}
	}
}

func TestEngineMinPInUnitInterval(t *testing.T) {
	tree, rules := buildCase(t, 41, 150, 5, 10, true)
	e, _ := NewEngine(tree, rules, Config{NumPerms: 15, Seed: 1, Opt: OptDiffsets})
	for j, p := range e.MinP() {
		if p < 0 || p > 1 {
			t.Errorf("perm %d: minP = %g outside [0,1]", j, p)
		}
	}
}

func TestEngineRejectsBadConfig(t *testing.T) {
	tree, rules := buildCase(t, 51, 100, 4, 10, true)
	if _, err := NewEngine(tree, rules, Config{NumPerms: 0}); err == nil {
		t.Error("NumPerms=0 accepted")
	}
}

func TestOptLevelStrings(t *testing.T) {
	labels := map[OptLevel]string{
		OptNone:          "no optimization",
		OptDynamicBuffer: "dynamic buf",
		OptDiffsets:      "Diffsets+dynamic buf",
		OptStaticBuffer:  "16M static buf+Diffsets+dynamic buf",
	}
	for lvl, want := range labels {
		if lvl.String() != want {
			t.Errorf("OptLevel(%d).String() = %q, want %q", lvl, lvl.String(), want)
		}
	}
	if !OptDiffsets.WantDiffsets() || OptDynamicBuffer.WantDiffsets() {
		t.Error("WantDiffsets boundaries wrong")
	}
}

func TestEngineContextCancelled(t *testing.T) {
	tree, rules := buildCase(t, 61, 200, 6, 12, true)

	// Already-cancelled context: construction itself aborts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewEngine(tree, rules, Config{NumPerms: 50, Seed: 9, Opt: OptStaticBuffer, Ctx: ctx, Workers: 2}); err != context.Canceled {
		t.Fatalf("NewEngine err = %v, want context.Canceled", err)
	}

	// Cancellation between construction and the run: Err() reports it.
	ctx2, cancel2 := context.WithCancel(context.Background())
	e, err := NewEngine(tree, rules, Config{NumPerms: 50, Seed: 9, Opt: OptStaticBuffer, Ctx: ctx2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cancel2()
	e.MinP()
	if e.Err() != context.Canceled {
		t.Fatalf("Err() = %v, want context.Canceled", e.Err())
	}
}
