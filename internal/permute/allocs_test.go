package permute

import "testing"

// TestEngineSteadyStateAllocs pins the allocation discipline of the
// blocked kernel and the per-worker arenas: once an engine has run once
// (arenas grown, buffer pools and Fisher scratch warmed, worker states
// cached), repeated full MinP evaluations allocate only the handful of
// per-run bookkeeping objects (result slice, visitor, goroutine plumbing)
// — nothing per node, per rule or per permutation. The bound is
// deliberately loose against scheduler noise but two orders of magnitude
// below what any per-node allocation would cost on this tree
// (hundreds of nodes × dozens of permutations).
func TestEngineSteadyStateAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  OptLevel
	}{
		{"static", OptStaticBuffer},
		{"none", OptNone},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tree, rules := buildCase(t, 5, 300, 8, 20, tc.opt.WantDiffsets())
			e, err := NewEngine(tree, rules, Config{
				NumPerms: 48, Seed: 11, Opt: tc.opt, Workers: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			e.MinP() // warm: arena chunks, pools, scratch, worker state
			allocs := testing.AllocsPerRun(10, func() { sinkMinP = e.MinP() })
			if allocs > 25 {
				t.Fatalf("opt=%v: steady-state MinP allocates %.0f times per run, want <= 25",
					tc.opt, allocs)
			}
		})
	}
}
