package permute

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// This file implements sequential early-stopping ("adaptive") permutation
// testing (DESIGN.md §7): instead of paying for a fixed permutation count
// up front, the engine runs geometrically growing rounds and retires rules
// whose correction fate is already decided — in the spirit of Besag &
// Clifford's sequential Monte Carlo p-values — shrinking the live rule set
// (and the tree walk that counts it) each round. Permutation j's shuffle
// always derives from (Seed, j), so the labels an adaptive run evaluates
// are exactly the prefix a fixed run of MaxPerms would evaluate: an
// adaptive run that retires nothing is byte-identical to the fixed run.

// Default Adaptive knobs: the first round is DefaultMinPerms permutations,
// and the soft retirement prong needs at least DefaultExceedances observed
// exceedances before it trusts a rule's empirical rate.
const (
	DefaultMinPerms    = 100
	DefaultExceedances = 20
)

// retireZ is the normal-score width of the Wilson confidence bound behind
// the soft retirement prong. Four standard units keep the per-decision
// error probability around 3e-5, so even ten thousand retirement decisions
// stay overwhelmingly likely to all be correct.
const retireZ = 4.0

// Adaptive configures sequential early-stopping permutation testing.
// A positive MaxPerms enables the mode (see Engine.RunAdaptive); the zero
// value leaves the engine in fixed mode.
type Adaptive struct {
	// MinPerms is the first round's permutation count (default
	// DefaultMinPerms, clamped to MaxPerms). Each following round doubles
	// the total executed so far, so the schedule is MinPerms, 2·MinPerms,
	// 4·MinPerms, ... capped at MaxPerms.
	MinPerms int
	// MaxPerms is the total permutation budget; a positive value enables
	// adaptive mode and takes the place of Config.NumPerms.
	MaxPerms int
	// Exceedances is the minimum exceedance count a rule must accumulate
	// before the soft (confidence-bound) retirement prong may fire: larger
	// values resolve each rule's empirical rate more precisely before
	// acting on it. 0 picks DefaultExceedances; a negative value disables
	// retirement entirely — rounds still run, and the results are
	// byte-identical to a fixed run of MaxPerms permutations.
	Exceedances int
}

// Enabled reports whether the configuration switches the engine into
// adaptive mode.
func (a Adaptive) Enabled() bool { return a.MaxPerms > 0 }

// Normalized fills the defaults in: MinPerms and Exceedances get their
// package defaults, and MinPerms is clamped to MaxPerms. Callers that key
// caches on an Adaptive value should normalize first so equivalent
// configurations collide.
func (a Adaptive) Normalized() Adaptive {
	if !a.Enabled() {
		return a
	}
	if a.MinPerms <= 0 {
		a.MinPerms = DefaultMinPerms
	}
	if a.MinPerms > a.MaxPerms {
		a.MinPerms = a.MaxPerms
	}
	if a.Exceedances == 0 {
		a.Exceedances = DefaultExceedances
	}
	return a
}

// AdaptiveMode selects the correction family the adaptive run is feeding,
// which determines the exceedance statistic driving retirement.
type AdaptiveMode int

const (
	// AdaptFWER drives Westfall–Young min-p FWER control: a rule's
	// exceedance count is the number of permutations whose live-set
	// minimum p-value falls strictly below the rule's original p-value.
	AdaptFWER AdaptiveMode = iota
	// AdaptFDR drives pooled empirical FDR control: a rule's exceedance
	// count is the number of counted (rule, permutation) p-values at or
	// below the rule's original p-value, pooled across all live rules.
	AdaptFDR
)

// String names the mode.
func (m AdaptiveMode) String() string {
	switch m {
	case AdaptFWER:
		return "fwer"
	case AdaptFDR:
		return "fdr"
	default:
		return fmt.Sprintf("AdaptiveMode(%d)", int(m))
	}
}

// AdaptiveResult reports one adaptive permutation run.
type AdaptiveResult struct {
	// Mode records which retirement statistic drove the run; only
	// AdaptFDR results carry a pooled histogram (see PoolLE).
	Mode AdaptiveMode
	// MinP is the per-permutation minimum p-value over the rules live
	// during that permutation's round, one entry per executed permutation.
	// With retirement disabled it equals the fixed engine's MinP.
	MinP []float64
	// OwnLE[r] counts rule r's own permutation p-values at or below its
	// original p-value, over the Samples[r] permutations it was counted on
	// — the numerator of its per-rule empirical p-value.
	OwnLE []int64
	// PoolLE[r] counts the (rule', permutation) p-values in the pool at or
	// below rule r's original p-value — the numerator of the pooled
	// empirical adjusted p-value of §4.2. The pool holds every counted
	// pair, TotalSamples in all. Only AdaptFDR runs accumulate the pool
	// (nothing on the FWER path reads it, and the per-value histogram
	// update is the dominant bookkeeping cost); under AdaptFWER the slice
	// is all zeros.
	PoolLE []int64
	// MinPLE[r] counts executed permutations whose MinP falls strictly
	// below rule r's original p-value — the Westfall–Young exceedances.
	MinPLE []int64
	// Samples[r] is the number of permutations rule r was counted on
	// (MaxPerms unless it retired early).
	Samples []int64
	// TotalSamples is the pool size: the sum of Samples over all rules.
	TotalSamples int64
	// PermsRun is the number of permutations executed (MaxPerms unless
	// every rule retired first); Rounds the number of rounds.
	PermsRun int
	Rounds   int
	// RulesRetired counts rules that retired before MaxPerms.
	RulesRetired int
	// PermsSaved is the number of (rule, permutation) evaluations avoided
	// relative to a fixed run of MaxPerms: Σ_r (MaxPerms - Samples[r]).
	PermsSaved int64
}

// RunAdaptive executes the adaptive permutation schedule and returns the
// accumulated exceedance statistics. mode selects the retirement
// statistic; alpha is the error level the downstream correction will run
// at (the stopping rule needs it — a retirement decision is a claim about
// the final decision at that level).
//
// Two retirement prongs fire after each round, both gated on
// Adaptive.Exceedances >= 0:
//
//   - sealed: the rule's final decision can no longer change. Under
//     AdaptFWER a rule with MinPLE >= floor(alpha·MaxPerms) is provably
//     non-significant in the full fixed run (MinPLE only grows, and the
//     live-set MinP is an upper bound on the all-rules MinP, so the bound
//     transfers). Under AdaptFDR a rule whose pooled count already
//     satisfies PoolLE > alpha·NumRules·MaxPerms has a final pooled
//     adjusted p-value above alpha no matter what the remaining
//     permutations contribute, and BH at level alpha can never select it.
//   - resolved: the rule accumulated at least Adaptive.Exceedances
//     exceedances and the Wilson lower confidence bound (retireZ normal
//     units) of its exceedance rate clears alpha — its empirical p-value
//     is precisely enough above the level that keeping it alive cannot
//     change the outcome except with negligible probability.
//
// Retired rules stop contributing to the following rounds' counting (their
// dead subtrees drop out of the walk entirely), which is where the cost
// saving comes from. The exactness ledger (derived in DESIGN.md §7):
// retirement-disabled runs are byte-identical to fixed runs; retired rules
// are never significant in the fixed run; under AdaptFWER the live-set
// min-p null can only raise the cut-off, so the fixed run's significant
// set is always contained in the adaptive one and extra admissions are
// confined to the (fixed cutoff, adaptive cutoff] drift window — empty
// whenever the p-value spectrum has a gap at the cut-off; under AdaptFDR
// the pooled estimator divides by the pool's true sample count, which
// keeps it unbiased under retirement.
//
// RunAdaptive recomputes from scratch on every call; run it once and share
// the result.
//
//armine:ctxok -- cancellation arrives via Config.Ctx, wired to the stop flag by runSpan
func (e *Engine) RunAdaptive(mode AdaptiveMode, alpha float64) (*AdaptiveResult, error) {
	if !e.cfg.Adaptive.Enabled() {
		return nil, fmt.Errorf("permute: RunAdaptive needs Config.Adaptive.MaxPerms > 0")
	}
	return DriveAdaptive(e.origPs(), e.cfg.Adaptive, mode, alpha,
		func(lo, hi int, live []bool, withPool bool) (*ShardStats, error) {
			return e.ShardSpan(lo, hi, live, true, withPool)
		})
}

// RoundRunner evaluates the permutations [lo, hi) against the rules still
// live and returns the round's mergeable statistics: per-permutation
// live-set minima, per-rule own exceedances, and — when withPool is set —
// the pooled histogram over the sorted original p-values.
// Engine.ShardSpan is the single-node runner; the distributed coordinator
// (internal/shard) fans each range out to its workers and merges their
// replies into the same shape.
type RoundRunner func(lo, hi int, live []bool, withPool bool) (*ShardStats, error)

// DriveAdaptive executes RunAdaptive's round schedule over an abstract
// round runner. ps holds the rules' original p-values by rule index; ad
// must have MaxPerms > 0. Factoring the driver out of the engine is what
// makes distributed adaptive runs byte-identical by construction
// (DESIGN.md §10): retirement depends only on the aggregated exceedance
// histograms, so the driver makes every retirement decision centrally and
// broadcasts the resulting frontier to the next round through the
// runner's live mask. Any runner that returns exact span statistics —
// one engine, or any merge of per-shard replies — yields the exact result
// a single-node run would.
func DriveAdaptive(ps []float64, ad Adaptive, mode AdaptiveMode, alpha float64, run RoundRunner) (*AdaptiveResult, error) {
	ad = ad.Normalized()
	if !ad.Enabled() {
		return nil, fmt.Errorf("permute: DriveAdaptive needs Adaptive.MaxPerms > 0")
	}
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("permute: adaptive alpha %g outside (0, 1]", alpha)
	}
	nR := len(ps)
	maxPerms := ad.MaxPerms

	// The exceedance tallies are kept as histograms over the sorted
	// original p-values (the CountLE technique): each permutation p-value
	// lands in one bucket by binary search, and a prefix sum recovers
	// every rule's count, so a round costs O(values · log rules + rules)
	// bookkeeping regardless of how many rules a value affects.
	rank := NewRank(ps)
	order, sorted := rank.Order, rank.Sorted

	live := make([]bool, nR)
	for i := range live {
		live[i] = true
	}
	numLive := nR
	own := make([]int64, nR)        // per-rule own-exceedance counts, by rule index
	poolHist := make([]int64, nR+1) // pooled p-values, bucketed over sorted positions
	minHist := make([]int64, nR+1)  // per-permutation MinP, bucketed over sorted positions
	samples := make([]int64, nR)    // permutations each rule was counted on
	var totalSamples int64
	minP := make([]float64, maxPerms)
	for i := range minP {
		minP[i] = 1
	}

	// kmax is the 1-based order statistic PermFWERCutoff will read from
	// the final min-p distribution: a rule with kmax strictly smaller MinP
	// values below its p-value can never sit at or below the cut-off.
	kmax := int64(alpha * float64(maxPerms))

	res := &AdaptiveResult{Mode: mode}
	permsRun := 0
	roundLen := ad.MinPerms
	for permsRun < maxPerms && numLive > 0 {
		hi := permsRun + roundLen
		if hi > maxPerms {
			hi = maxPerms
		}
		// Only the FDR path consumes the pool; skipping the histogram
		// spares the FWER hot loop a binary search per (rule, permutation)
		// p-value.
		st, err := run(permsRun, hi, live, mode == AdaptFDR)
		if err != nil {
			return nil, err
		}
		copy(minP[permsRun:hi], st.MinP)
		for i, c := range st.OwnLE {
			own[i] += c
		}
		if mode == AdaptFDR {
			for i, c := range st.PoolHist {
				poolHist[i] += c
			}
		}
		res.Rounds++
		for ri := range live {
			if live[ri] {
				samples[ri] += int64(hi - permsRun)
			}
		}
		totalSamples += int64(numLive) * int64(hi-permsRun)
		for j := permsRun; j < hi; j++ {
			// First sorted position whose p-value lies strictly above this
			// permutation's MinP: the permutation is an exceedance for
			// every rule from that position on.
			idx := sort.Search(nR, func(i int) bool { return sorted[i] > minP[j] })
			minHist[idx]++
		}
		permsRun = hi

		if ad.Exceedances >= 0 && permsRun < maxPerms {
			retireLive(mode, alpha, kmax, int64(ad.Exceedances), maxPerms, permsRun, totalSamples,
				order, poolHist, minHist, live, &numLive, &res.RulesRetired)
		}
		roundLen = permsRun // double the executed total each round
	}

	res.MinP = minP[:permsRun]
	res.OwnLE = own
	res.PoolLE = make([]int64, nR)
	res.MinPLE = make([]int64, nR)
	res.Samples = samples
	res.TotalSamples = totalSamples
	res.PermsRun = permsRun
	var pc, mc int64
	for i := 0; i < nR; i++ {
		pc += poolHist[i]
		mc += minHist[i]
		res.PoolLE[order[i]] = pc
		res.MinPLE[order[i]] = mc
	}
	for _, n := range samples {
		res.PermsSaved += int64(maxPerms) - n
	}
	return res, nil
}

// retireLive applies the two retirement prongs to every live rule and
// reports whether any rule retired. The histograms are cumulative over all
// executed permutations; walking the sorted order keeps the per-rule
// counts as running prefix sums.
func retireLive(mode AdaptiveMode, alpha float64, kmax, exceedTarget int64, maxPerms, permsRun int, totalSamples int64,
	order []int, poolHist, minHist []int64, live []bool, numLive, retired *int) bool {
	nR := len(order)
	changed := false
	var pc, mc int64
	for i := 0; i < nR; i++ {
		pc += poolHist[i]
		mc += minHist[i]
		ri := order[i]
		if !live[ri] {
			continue
		}
		drop := false
		switch mode {
		case AdaptFWER:
			switch {
			case mc >= kmax:
				// Sealed: at least kmax permutations already have a MinP
				// strictly below this rule's p-value, so the final cut-off
				// (the kmax-th smallest MinP) lies below it for certain.
				// (kmax < 1 means the budget cannot certify the level and
				// nothing can ever be significant.)
				drop = true
			case exceedTarget > 0 && mc >= exceedTarget:
				if lo, _ := stats.WilsonBounds(mc, int64(permsRun), retireZ); lo > alpha {
					drop = true
				}
			}
		case AdaptFDR:
			switch {
			case float64(pc) > alpha*float64(nR)*float64(maxPerms):
				// Sealed: the pooled count only grows and the final pool
				// holds at most nR·MaxPerms values, so the final adjusted
				// p-value exceeds alpha no matter what follows.
				drop = true
			case exceedTarget > 0 && pc >= exceedTarget:
				if lo, _ := stats.WilsonBounds(pc, totalSamples, retireZ); lo > alpha {
					drop = true
				}
			}
		}
		if drop {
			live[ri] = false
			*numLive--
			*retired++
			changed = true
		}
	}
	return changed
}

// compactLive rebuilds the walk indexes over the still-live rules: a node
// whose subtree holds no live rule drops out of the children adjacency, so
// the per-round DFS — and the packed tid-word views it consults — only
// touches the live part of the tree. Nodes without live rules of their own
// but with live descendants stay as Diffset bridges.
func (e *Engine) compactLive(live []bool) (rulesByNode, children *adjacency) {
	n := len(e.tree.Nodes)
	alive := make([]bool, n)
	for ri := range e.rules {
		if live[ri] {
			alive[e.rules[ri].Node.Index] = true
		}
	}
	rulesByNode = newAdjacency(n, func(add func(row int, val int32)) {
		for ri := range e.rules {
			if live[ri] {
				add(e.rules[ri].Node.Index, int32(ri))
			}
		}
	})
	// Nodes are in DFS pre-order (children after parents), so a reverse
	// sweep propagates liveness up to the root.
	for i := n - 1; i >= 0; i-- {
		if alive[i] && e.tree.Nodes[i].Parent != nil {
			alive[e.tree.Nodes[i].Parent.Index] = true
		}
	}
	children = newAdjacency(n, func(add func(row int, val int32)) {
		for _, nd := range e.tree.Nodes {
			if nd.Parent != nil && alive[nd.Index] {
				add(nd.Parent.Index, int32(nd.Index))
			}
		}
	})
	return rulesByNode, children
}
