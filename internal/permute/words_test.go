package permute

import (
	"testing"
)

// countVariants is the full ablation matrix of the counting paths: the
// blocked striped kernel (the default), the unblocked word path (stripe
// width 1) and the element walk. Every test asserting byte-identity
// quantifies over all three.
var countVariants = []struct {
	name                  string
	disableWord, disableB bool
}{
	{"blocked", false, false},
	{"unblocked", false, true},
	{"scalar", true, false},
}

// TestEngineWordVsScalarByteIdentical pins the tentpole guarantee: the
// blocked word-parallel kernel, the unblocked (stripe width 1) word path
// and the element-walk path produce exactly the same results — not
// approximately — at every optimisation level and worker count, for both
// the FWER (MinP) and FDR (CountLE) outputs.
func TestEngineWordVsScalarByteIdentical(t *testing.T) {
	for _, opt := range []OptLevel{OptNone, OptDynamicBuffer, OptDiffsets, OptStaticBuffer} {
		// 300 records: a universe that is not a multiple of 64.
		tree, rules := buildCase(t, 5, 300, 8, 20, opt.WantDiffsets())
		for _, workers := range []int{1, 3} {
			var refP []float64
			var refC []int64
			for _, v := range countVariants {
				e, err := NewEngine(tree, rules, Config{
					NumPerms: 40, Seed: 11, Opt: opt, Workers: workers,
					DisableWordCounting:    v.disableWord,
					DisableBlockedCounting: v.disableB,
				})
				if err != nil {
					t.Fatal(err)
				}
				if v.disableWord {
					if e.lab.stripes != nil || e.lab.permLabels == nil || e.nw != nil {
						t.Fatalf("opt=%v: scalar engine still carries word state", opt)
					}
				} else {
					if e.lab.stripes == nil || e.lab.permLabels != nil || e.nw == nil {
						t.Fatalf("opt=%v %s: word engine lacks the striped matrix", opt, v.name)
					}
					wantS := stripeWidth
					if v.disableB {
						wantS = 1
					}
					if e.lab.stripeS != wantS {
						t.Fatalf("opt=%v %s: stripe width %d, want %d", opt, v.name, e.lab.stripeS, wantS)
					}
				}
				gotP, gotC := e.MinP(), e.CountLE()
				if refP == nil {
					refP, refC = gotP, gotC
					continue
				}
				for j := range refP {
					if gotP[j] != refP[j] {
						t.Fatalf("opt=%v workers=%d %s perm %d: MinP %g != blocked %g",
							opt, workers, v.name, j, gotP[j], refP[j])
					}
				}
				for i := range refC {
					if gotC[i] != refC[i] {
						t.Fatalf("opt=%v workers=%d %s rule %d: CountLE %d != blocked %d",
							opt, workers, v.name, i, gotC[i], refC[i])
					}
				}
			}
		}
	}
}

// TestEngineAdaptiveVariantsByteIdentical extends the byte-identity
// guarantee to adaptive runs: all three counting paths must retire the
// same rules on the same rounds and report identical statistics.
func TestEngineAdaptiveVariantsByteIdentical(t *testing.T) {
	for _, opt := range []OptLevel{OptNone, OptStaticBuffer} {
		tree, rules := buildCase(t, 5, 300, 8, 20, opt.WantDiffsets())
		for _, workers := range []int{1, 3} {
			var ref *AdaptiveResult
			for _, v := range countVariants {
				e, err := NewEngine(tree, rules, Config{
					Seed: 11, Opt: opt, Workers: workers,
					DisableWordCounting:    v.disableWord,
					DisableBlockedCounting: v.disableB,
					Adaptive:               Adaptive{MinPerms: 16, MaxPerms: 96},
				})
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.RunAdaptive(AdaptFDR, 0.05)
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = got
					continue
				}
				if got.PermsRun != ref.PermsRun || got.Rounds != ref.Rounds ||
					got.RulesRetired != ref.RulesRetired || got.TotalSamples != ref.TotalSamples {
					t.Fatalf("opt=%v workers=%d %s: run shape %+v != blocked %+v",
						opt, workers, v.name, got, ref)
				}
				for j := range ref.MinP {
					if got.MinP[j] != ref.MinP[j] {
						t.Fatalf("opt=%v workers=%d %s perm %d: adaptive MinP %g != blocked %g",
							opt, workers, v.name, j, got.MinP[j], ref.MinP[j])
					}
				}
				for i := range ref.PoolLE {
					if got.PoolLE[i] != ref.PoolLE[i] || got.OwnLE[i] != ref.OwnLE[i] ||
						got.Samples[i] != ref.Samples[i] {
						t.Fatalf("opt=%v workers=%d %s rule %d: adaptive counts diverge",
							opt, workers, v.name, i)
					}
				}
			}
		}
	}
}

// TestEngineWordPathSmallBlocks drives block lengths down to one
// permutation per worker — partial stripe tiles everywhere — where the
// outputs must not care about the counting path.
func TestEngineWordPathSmallBlocks(t *testing.T) {
	tree, rules := buildCase(t, 21, 400, 10, 25, true)
	var ref []float64
	for _, workers := range []int{1, 7} {
		for _, v := range countVariants {
			e, err := NewEngine(tree, rules, Config{
				NumPerms: 7, Seed: 2, Opt: OptDiffsets, Workers: workers,
				DisableWordCounting:    v.disableWord,
				DisableBlockedCounting: v.disableB,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := e.MinP()
			if ref == nil {
				ref = got
				continue
			}
			for j := range ref {
				if got[j] != ref[j] {
					t.Fatalf("workers=%d %s: MinP[%d] = %g, want %g",
						workers, v.name, j, got[j], ref[j])
				}
			}
		}
	}
}
