package permute

import (
	"testing"
)

// TestEngineWordVsScalarByteIdentical pins the tentpole guarantee: the
// word-parallel counting path and the element-walk path produce exactly
// the same results — not approximately — at every optimisation level and
// worker count, for both the FWER (MinP) and FDR (CountLE) outputs.
func TestEngineWordVsScalarByteIdentical(t *testing.T) {
	for _, opt := range []OptLevel{OptNone, OptDynamicBuffer, OptDiffsets, OptStaticBuffer} {
		// 300 records: a universe that is not a multiple of 64.
		tree, rules := buildCase(t, 5, 300, 8, 20, opt.WantDiffsets())
		for _, workers := range []int{1, 3} {
			mk := func(disable bool) *Engine {
				e, err := NewEngine(tree, rules, Config{
					NumPerms: 40, Seed: 11, Opt: opt, Workers: workers,
					DisableWordCounting: disable,
				})
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			word, scalar := mk(false), mk(true)
			if word.lab.labelWords == nil {
				t.Fatalf("opt=%v: word engine has no packed label matrix", opt)
			}
			if scalar.lab.labelWords != nil || scalar.nodeReps != nil {
				t.Fatalf("opt=%v: scalar engine still carries word state", opt)
			}
			wp, sp := word.MinP(), scalar.MinP()
			for j := range wp {
				if wp[j] != sp[j] {
					t.Fatalf("opt=%v workers=%d perm %d: word MinP %g != scalar %g",
						opt, workers, j, wp[j], sp[j])
				}
			}
			wc, sc := mk(false).CountLE(), mk(true).CountLE()
			for i := range wc {
				if wc[i] != sc[i] {
					t.Fatalf("opt=%v workers=%d rule %d: word CountLE %d != scalar %d",
						opt, workers, i, wc[i], sc[i])
				}
			}
		}
	}
}

// TestEngineWordPathSmallBlocks drives block lengths down to one
// permutation per worker, where the cost model should often prefer the
// element walk — the outputs must not care.
func TestEngineWordPathSmallBlocks(t *testing.T) {
	tree, rules := buildCase(t, 21, 400, 10, 25, true)
	var ref []float64
	for _, workers := range []int{1, 7} {
		for _, disable := range []bool{false, true} {
			e, err := NewEngine(tree, rules, Config{
				NumPerms: 7, Seed: 2, Opt: OptDiffsets, Workers: workers,
				DisableWordCounting: disable,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := e.MinP()
			if ref == nil {
				ref = got
				continue
			}
			for j := range ref {
				if got[j] != ref[j] {
					t.Fatalf("workers=%d disable=%v: MinP[%d] = %g, want %g",
						workers, disable, j, got[j], ref[j])
				}
			}
		}
	}
}
