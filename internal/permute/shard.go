package permute

import (
	"fmt"
	"sort"
)

// This file is the engine's distributed-sharding surface (DESIGN.md §10).
// ShardSpan evaluates one contiguous range [lo, hi) of the absolute
// permutation-index space and returns mergeable statistics. Every
// permutation's label shuffle derives from (Seed, absolute index), so the
// statistics of any partition of [0, NumPerms) into spans merge — minima
// concatenated, counts summed — into exactly the single-node run's output,
// bit for bit, no matter how the spans are distributed across engines,
// processes or machines.

// Rank is the ascending ordering of a rule set's original p-values — the
// shared bucketing scheme behind every pooled exceedance histogram. A
// permutation p-value lands in one bucket by binary search (the first
// sorted position at or above it), and a prefix sum over the histogram
// recovers every rule's <=-count (see CountsFromHist). The ordering is a
// pure function of ps — the sort is deterministic, and tied p-values
// receive identical counts regardless of their relative order — so a
// coordinator and its workers agree on the bucketing by construction.
type Rank struct {
	// Order[i] is the index into ps of the i-th smallest original p-value;
	// Sorted[i] is that p-value.
	Order  []int
	Sorted []float64
}

// NewRank ranks the original p-values ps, given by rule index.
func NewRank(ps []float64) Rank {
	order := make([]int, len(ps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ps[order[a]] < ps[order[b]] })
	sorted := make([]float64, len(order))
	for i, idx := range order {
		sorted[i] = ps[idx]
	}
	return Rank{Order: order, Sorted: sorted}
}

// CountsFromHist converts a pooled histogram over sorted positions —
// hist[i] counting the permutation p-values whose SearchFloat64s bucket is
// i — into per-rule <=-counts: counts in sorted order are the prefix sums
// of the histogram, mapped back to rule order through Order.
func (r Rank) CountsFromHist(hist []int64) []int64 {
	out := make([]int64, len(r.Order))
	var acc int64
	for i := range r.Sorted {
		acc += hist[i]
		out[r.Order[i]] = acc
	}
	return out
}

// NumRules returns the size of the rule set the engine evaluates.
func (e *Engine) NumRules() int { return len(e.rules) }

// rank memoises the rules' p-value rank and the raw p-value slice.
func (e *Engine) rank() Rank {
	e.rankOnce.Do(func() {
		ps := make([]float64, len(e.rules))
		for i := range e.rules {
			ps[i] = e.rules[i].P
		}
		e.origVal = ps
		e.rankVal = NewRank(ps)
	})
	return e.rankVal
}

// origPs returns the rules' original p-values by rule index. The slice is
// shared; callers must not mutate it.
func (e *Engine) origPs() []float64 {
	e.rank()
	return e.origVal
}

// ShardStats carries the mergeable statistics of one evaluated permutation
// range [Lo, Hi). Everything downstream correction consumes is either a
// per-permutation value (MinP — disjoint across shards, so shards
// concatenate) or an additive count (OwnLE, PoolHist — int64 sums, so
// shards add), which is why sharded runs are byte-identical to single-node
// runs by construction.
type ShardStats struct {
	Lo, Hi int
	// MinP[j] is the minimum p-value over the live rules on permutation
	// Lo+j, 1 when no rule was counted.
	MinP []float64
	// OwnLE[r] counts rule r's own p-values at or below its original
	// p-value within the range; nil unless requested.
	OwnLE []int64
	// PoolHist buckets every counted p-value over the sorted original
	// p-values (see Rank); nil unless requested.
	PoolHist []int64
}

// ShardSpan evaluates the permutations [lo, hi) — one shard of the
// absolute index range [0, NumPerms) — against the rules still live and
// returns the range's mergeable statistics. live == nil (or all true)
// means no rule has retired; otherwise the walk runs over the same
// retirement-compacted indexes an adaptive round would use, memoised by
// frontier content so the many spans sharing one frontier pay for one
// compaction. Cancellation arrives via Config.Ctx as with every engine
// entry point; on a non-nil error the statistics must be discarded.
func (e *Engine) ShardSpan(lo, hi int, live []bool, withOwn, withPool bool) (*ShardStats, error) {
	if lo < 0 || hi > e.cfg.NumPerms || lo >= hi {
		return nil, fmt.Errorf("permute: shard span [%d, %d) not within [0, %d)", lo, hi, e.cfg.NumPerms)
	}
	if live != nil && len(live) != len(e.rules) {
		return nil, fmt.Errorf("permute: live mask has %d entries for %d rules", len(live), len(e.rules))
	}
	if err := e.ctxErr(); err != nil {
		e.setErr(err)
		return nil, err
	}
	rulesByNode, children := e.liveIndexes(live)
	lab := e.buildLabels(lo, hi)
	if err := e.ctxErr(); err != nil {
		e.setErr(err)
		return nil, err
	}
	st := &ShardStats{Lo: lo, Hi: hi, MinP: make([]float64, hi-lo)}
	for i := range st.MinP {
		st.MinP[i] = 1
	}
	if withOwn {
		st.OwnLE = make([]int64, len(e.rules))
	}
	if withPool {
		st.PoolHist = make([]int64, len(e.rules)+1)
	}
	orig := e.origPs()
	var sorted []float64
	if withPool {
		sorted = e.rank().Sorted
	}
	e.runSpan(lab, rulesByNode, children,
		func() visitor {
			v := &shardVisitor{orig: orig, lo: lo, min: st.MinP}
			if withOwn {
				v.own = make([]int64, len(e.rules))
			}
			if withPool {
				v.sorted = sorted
				v.poolHist = make([]int64, len(e.rules)+1)
			}
			return v
		},
		func(v visitor) {
			sv := v.(*shardVisitor)
			for i, c := range sv.own {
				st.OwnLE[i] += c
			}
			for i, c := range sv.poolHist {
				st.PoolHist[i] += c
			}
		})
	if err := e.ctxErr(); err != nil {
		return nil, err
	}
	return st, nil
}

// liveIndexes returns the walk indexes of the given retirement frontier:
// the base adjacencies when nothing has retired, else a memoised
// compactLive. The memo holds the latest frontier only — exactly the
// access pattern of an adaptive run, where frontiers only grow.
func (e *Engine) liveIndexes(live []bool) (*adjacency, *adjacency) {
	allLive := true
	for _, l := range live {
		if !l {
			allLive = false
			break
		}
	}
	if allLive { // includes live == nil
		return e.rulesByNode, e.children
	}
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	if e.compactKey != nil && boolSliceEqual(e.compactKey, live) {
		return e.compactRules, e.compactChildren
	}
	r, c := e.compactLive(live)
	e.compactKey = append([]bool(nil), live...)
	e.compactRules, e.compactChildren = r, c
	return r, c
}

func boolSliceEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// shardVisitor accumulates a span's statistics in one pass, generalising
// minPVisitor, countLEVisitor and adaptiveVisitor: per-permutation minima
// always (written in place — workers own disjoint permutation ranges),
// own exceedances and the pooled histogram on demand. The float
// comparisons and the SearchFloat64s bucketing match the fixed-mode
// visitors operation for operation; the byte-identity conformance suite
// pins that equivalence.
type shardVisitor struct {
	orig     []float64
	sorted   []float64 // nil unless the pool is requested
	lo       int
	min      []float64 // span-relative per-permutation minima (shared)
	own      []int64   // nil unless requested
	poolHist []int64   // nil unless requested
}

func (v *shardVisitor) visit(ruleIdx int, perm0 int, ps []float64) {
	base := perm0 - v.lo
	min := v.min[base : base+len(ps)]
	p0 := v.orig[ruleIdx]
	switch {
	case v.own == nil && v.poolHist == nil:
		for j, p := range ps {
			if p < min[j] {
				min[j] = p
			}
		}
	case v.poolHist == nil:
		for j, p := range ps {
			if p <= p0 {
				v.own[ruleIdx]++
			}
			if p < min[j] {
				min[j] = p
			}
		}
	case v.own == nil:
		for j, p := range ps {
			v.poolHist[sort.SearchFloat64s(v.sorted, p)]++
			if p < min[j] {
				min[j] = p
			}
		}
	default:
		for j, p := range ps {
			if p <= p0 {
				v.own[ruleIdx]++
			}
			v.poolHist[sort.SearchFloat64s(v.sorted, p)]++
			if p < min[j] {
				min[j] = p
			}
		}
	}
}
