package permute

import "testing"

// BenchmarkPermute* measure the word-parallel counting path against the
// element-walk ablation (Config.DisableWordCounting) on the Fig 4-style
// synthetic workload, for the two optimisation levels where counting
// dominates: OptNone (full tid-lists everywhere) and OptDiffsets
// (difference-list subtraction). armine bench runs the same comparison
// and records it in BENCH_<rev>.json.

func benchPermute(b *testing.B, opt OptLevel, disableWords bool) {
	tree, rules := benchTree(b, opt.WantDiffsets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(tree, rules, Config{
			NumPerms: 50, Seed: 3, Opt: opt, Workers: 1,
			DisableWordCounting: disableWords,
		})
		if err != nil {
			b.Fatal(err)
		}
		sinkMinP = e.MinP()
	}
}

func BenchmarkPermuteWordNone(b *testing.B)       { benchPermute(b, OptNone, false) }
func BenchmarkPermuteScalarNone(b *testing.B)     { benchPermute(b, OptNone, true) }
func BenchmarkPermuteWordDiffsets(b *testing.B)   { benchPermute(b, OptDiffsets, false) }
func BenchmarkPermuteScalarDiffsets(b *testing.B) { benchPermute(b, OptDiffsets, true) }
