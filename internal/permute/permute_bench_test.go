package permute

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/synth"
)

// Ablation: the §4.2 optimisation ladder measured at the engine level
// (mining excluded), plus worker scaling. These isolate what Fig 4
// measures end to end.

func benchTree(b *testing.B, diffsets bool) (*mining.Tree, []mining.Rule) {
	b.Helper()
	p := synth.PaperDefaults()
	p.N = 1000
	p.Attrs = 15
	p.Seed = 5
	res, err := synth.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	enc := dataset.Encode(res.Data)
	tree, err := mining.MineClosed(enc, mining.Options{MinSup: 50, StoreDiffsets: diffsets})
	if err != nil {
		b.Fatal(err)
	}
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
	if err != nil {
		b.Fatal(err)
	}
	return tree, rules
}

func benchMinP(b *testing.B, opt OptLevel, workers int) {
	tree, rules := benchTree(b, opt.WantDiffsets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(tree, rules, Config{
			NumPerms: 50, Seed: 3, Opt: opt, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		sinkMinP = e.MinP()
	}
}

func BenchmarkMinPNoOptimization(b *testing.B) { benchMinP(b, OptNone, 1) }
func BenchmarkMinPDynamicBuffer(b *testing.B)  { benchMinP(b, OptDynamicBuffer, 1) }
func BenchmarkMinPDiffsets(b *testing.B)       { benchMinP(b, OptDiffsets, 1) }
func BenchmarkMinPStaticBuffer(b *testing.B)   { benchMinP(b, OptStaticBuffer, 1) }
func BenchmarkMinPStaticParallel(b *testing.B) { benchMinP(b, OptStaticBuffer, 0) }

func BenchmarkCountLE(b *testing.B) {
	tree, rules := benchTree(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := NewEngine(tree, rules, Config{NumPerms: 50, Seed: 3, Opt: OptStaticBuffer})
		if err != nil {
			b.Fatal(err)
		}
		sinkCounts = e.CountLE()
	}
}

var (
	sinkMinP   []float64
	sinkCounts []int64
)
