package colstore

import (
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// csvStream generates a categorical CSV on the fly with a splitmix64
// stream — rows are produced as Read is called, so the test never holds
// the CSV in memory and the generator itself cannot pollute the heap
// measurement.
type csvStream struct {
	rows, attrs int
	state       uint64
	row         int
	buf         []byte
	written     int64
}

func (g *csvStream) next() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (g *csvStream) Read(p []byte) (int, error) {
	for len(g.buf) == 0 {
		switch {
		case g.row > g.rows:
			return 0, io.EOF
		case g.row == 0:
			for a := 0; a < g.attrs; a++ {
				g.buf = fmt.Appendf(g.buf, "attribute_%02d,", a)
			}
			g.buf = append(g.buf, "class\n"...)
		default:
			for a := 0; a < g.attrs; a++ {
				g.buf = fmt.Appendf(g.buf, "a%02d_value_%02d,", a, g.next()%8)
			}
			g.buf = fmt.Appendf(g.buf, "c%d\n", g.next()%2)
		}
		g.row++
	}
	n := copy(p, g.buf)
	g.buf = g.buf[n:]
	g.written += int64(n)
	return n, nil
}

// TestCreateStreamingPeakHeap is the out-of-core acceptance bound: store
// ingest must work in memory proportional to ONE segment, not the input.
// A ~24 MB CSV streams into a store while a sampler tracks the heap;
// both the sampled peak and the post-ingest live heap must stay far
// below the input size (the in-memory Table + Dataset path holds
// several multiples of it). Sampling can only under-report the peak, so
// a pass here is conservative in the safe direction for the claim — and
// any real regression to "hold everything" blows the bound by an order
// of magnitude.
func TestCreateStreamingPeakHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-MB ingest")
	}
	gen := &csvStream{rows: 240_000, attrs: 10, state: 42}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var peak atomic.Uint64
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		var ms runtime.MemStats
		for {
			select {
			case <-done:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	st, err := Create(filepath.Join(t.TempDir(), "big"), gen, Options{})
	close(done)
	<-sampled
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRecords() != 240_000 {
		t.Fatalf("ingested %d records, want 240000", st.NumRecords())
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	csvBytes := gen.written
	if csvBytes < 20<<20 {
		t.Fatalf("generated CSV only %d bytes; grow the generator", csvBytes)
	}
	peakDelta := int64(peak.Load()) - int64(before.HeapAlloc)
	if peakDelta > csvBytes/3 {
		t.Errorf("peak heap during ingest grew %d bytes, want <= %d (csv/3 of %d)",
			peakDelta, csvBytes/3, csvBytes)
	}
	liveDelta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if liveDelta > csvBytes/8 {
		t.Errorf("live heap after ingest grew %d bytes, want <= %d (csv/8 of %d)",
			liveDelta, csvBytes/8, csvBytes)
	}
	t.Logf("csv=%d peak+%d live%+d", csvBytes, peakDelta, liveDelta)
}
