package colstore

import (
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// randCSV builds a deterministic categorical CSV with missing values.
func randCSV(seed uint64, rows, attrs int) string {
	rng := rand.New(rand.NewPCG(seed, 0))
	var b strings.Builder
	for a := 0; a < attrs; a++ {
		fmt.Fprintf(&b, "a%d,", a)
	}
	b.WriteString("class\n")
	for r := 0; r < rows; r++ {
		for a := 0; a < attrs; a++ {
			switch rng.IntN(10) {
			case 0:
				b.WriteString("?")
			case 1:
				// empty = missing
			default:
				fmt.Fprintf(&b, "v%d", rng.IntN(2+a))
			}
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "c%d\n", rng.IntN(3))
	}
	return b.String()
}

// checkEncodedEqual fails the test unless the two vertical encodings are
// byte-identical (schema, tid-lists, labels, class counts).
func checkEncodedEqual(t *testing.T, got, want *dataset.Encoded) {
	t.Helper()
	if !reflect.DeepEqual(got.Enc.Schema, want.Enc.Schema) {
		t.Fatalf("schema mismatch:\n got %+v\nwant %+v", got.Enc.Schema, want.Enc.Schema)
	}
	if got.NumRecords != want.NumRecords || got.NumClasses != want.NumClasses {
		t.Fatalf("shape mismatch: got (%d,%d), want (%d,%d)",
			got.NumRecords, got.NumClasses, want.NumRecords, want.NumClasses)
	}
	if !reflect.DeepEqual(got.Labels, want.Labels) {
		t.Fatal("labels mismatch")
	}
	if !reflect.DeepEqual(got.ClassCounts, want.ClassCounts) {
		t.Fatalf("class counts %v, want %v", got.ClassCounts, want.ClassCounts)
	}
	if len(got.Tids) != len(want.Tids) {
		t.Fatalf("%d items, want %d", len(got.Tids), len(want.Tids))
	}
	for i := range got.Tids {
		g, w := got.Tids[i], want.Tids[i]
		if len(g) == 0 && len(w) == 0 {
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("item %d tids %v, want %v", i, g, w)
		}
	}
}

func TestCreateSnapshotMatchesEncode(t *testing.T) {
	csvText := randCSV(1, 257, 5)
	want, err := dataset.ReadDataset(strings.NewReader(csvText), -1)
	if err != nil {
		t.Fatal(err)
	}
	wantEnc := dataset.Encode(want)
	for _, segRecords := range []int{1, 17, 64, 1000} {
		t.Run(fmt.Sprintf("seg=%d", segRecords), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "store")
			st, err := Create(dir, strings.NewReader(csvText), Options{SegRecords: segRecords})
			if err != nil {
				t.Fatal(err)
			}
			if st.NumRecords() != want.NumRecords() {
				t.Fatalf("records = %d, want %d", st.NumRecords(), want.NumRecords())
			}
			if v := st.Version(); v != 1 {
				t.Fatalf("fresh store version = %d, want 1", v)
			}
			got, ver, err := st.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if ver != 1 {
				t.Fatalf("snapshot version = %d, want 1", ver)
			}
			checkEncodedEqual(t, got, wantEnc)

			// Reopen from disk and check again: everything must survive
			// the round trip through the files alone.
			st2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			got2, _, err := st2.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			checkEncodedEqual(t, got2, wantEnc)
		})
	}
}

func TestAppendMatchesConcatenatedCSV(t *testing.T) {
	head := randCSV(2, 90, 4)
	delta1 := strings.SplitAfterN(randCSV(3, 40, 4), "\n", 2)[1]
	delta2 := strings.SplitAfterN(randCSV(4, 70, 4), "\n", 2)[1]
	header := strings.SplitAfterN(head, "\n", 2)[0]

	dir := filepath.Join(t.TempDir(), "store")
	st, err := Create(dir, strings.NewReader(head), Options{SegRecords: 32})
	if err != nil {
		t.Fatal(err)
	}
	schemaBefore := st.Schema()
	vocabBefore := append([]string(nil), schemaBefore.Attrs[0].Values...)

	n, err := st.Append(strings.NewReader(header+delta1), Options{SegRecords: 32})
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("append added %d records, want 40", n)
	}
	if v := st.Version(); v != 2 {
		t.Fatalf("version after append = %d, want 2", v)
	}
	if _, err := st.Append(strings.NewReader(header+delta2), Options{SegRecords: 32}); err != nil {
		t.Fatal(err)
	}
	if v := st.Version(); v != 3 {
		t.Fatalf("version after 2nd append = %d, want 3", v)
	}

	// The schema held before the appends must be untouched (snapshot
	// isolation for concurrent readers).
	if !reflect.DeepEqual(vocabBefore, schemaBefore.Attrs[0].Values) {
		t.Fatal("append mutated a previously returned schema")
	}

	whole, err := dataset.ReadDataset(strings.NewReader(head+delta1+delta2), -1)
	if err != nil {
		t.Fatal(err)
	}
	got, ver, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if ver != 3 {
		t.Fatalf("snapshot version = %d, want 3", ver)
	}
	checkEncodedEqual(t, got, dataset.Encode(whole))

	// And after reopening.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Version() != 3 {
		t.Fatalf("reopened version = %d, want 3", st2.Version())
	}
	got2, _, err := st2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	checkEncodedEqual(t, got2, dataset.Encode(whole))
}

func TestAppendRejectsMismatchedHeader(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := Create(dir, strings.NewReader("a,b,class\nx,y,c\n"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(strings.NewReader("a,z,class\nx,y,c\n"), Options{}); err == nil {
		t.Fatal("append accepted a mismatched header")
	}
	// A failed append must leave the store at its previous version and
	// still consistent on disk.
	if st.Version() != 1 {
		t.Fatalf("version after failed append = %d, want 1", st.Version())
	}
	if _, err := Open(dir); err != nil {
		t.Fatalf("store inconsistent after failed append: %v", err)
	}
}

func TestFromDatasetPreservesSchemaVerbatim(t *testing.T) {
	// Build a dataset whose vocabulary order differs from first
	// appearance and includes a value no record carries: the store must
	// preserve the schema verbatim, or item ids (and therefore mining
	// output) would shift.
	schema := &dataset.Schema{
		Attrs: []dataset.Attribute{
			{Name: "a", Values: []string{"unused", "x", "y"}},
			{Name: "b", Values: []string{"q", "p"}},
		},
		Class: dataset.Attribute{Name: "class", Values: []string{"c1", "c0"}},
	}
	d := dataset.New(schema, 0)
	rng := rand.New(rand.NewPCG(9, 0))
	for r := 0; r < 150; r++ {
		d.Append([]int32{int32(1 + rng.IntN(2)), int32(rng.IntN(2))}, int32(rng.IntN(2)))
	}
	dir := filepath.Join(t.TempDir(), "store")
	st, err := FromDataset(dir, d, Options{SegRecords: 41})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	checkEncodedEqual(t, got, dataset.Encode(d))
	if st.NumSegments() != 4 {
		t.Fatalf("segments = %d, want 4", st.NumSegments())
	}
}

func TestCreateRefusesExistingStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if _, err := Create(dir, strings.NewReader("a,class\nx,c\n"), Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, strings.NewReader("a,class\nx,c\n"), Options{}); err == nil {
		t.Fatal("Create overwrote an existing store")
	}
}

func TestManifestValidation(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if _, err := Create(dir, strings.NewReader(randCSV(5, 80, 3)), Options{SegRecords: 32}); err != nil {
		t.Fatal(err)
	}
	manPath := filepath.Join(dir, ManifestName)
	orig, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(s string) string{
		"bad format":       func(s string) string { return strings.Replace(s, `"format": 1`, `"format": 99`, 1) },
		"zero version":     func(s string) string { return strings.Replace(s, `"version": 1`, `"version": 0`, 1) },
		"wrong total":      func(s string) string { return strings.Replace(s, `"num_records": 80`, `"num_records": 81`, 1) },
		"out of order":     func(s string) string { return strings.Replace(s, `"base": 32`, `"base": 33`, 1) },
		"unknown field":    func(s string) string { return strings.Replace(s, `"format": 1`, `"format": 1, "extra": true`, 1) },
		"wrong seg name":   func(s string) string { return strings.Replace(s, "seg-00000001.arm", "seg-00000009.arm", 1) },
		"negative records": func(s string) string { return strings.Replace(s, `"records": 32`, `"records": -32`, 1) },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			mutated := mutate(string(orig))
			if mutated == string(orig) {
				t.Fatal("mutation had no effect; fixture drifted")
			}
			if err := os.WriteFile(manPath, []byte(mutated), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(dir); err == nil {
				t.Fatalf("Open accepted manifest with %s", name)
			}
		})
	}
	if err := os.WriteFile(manPath, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err != nil {
		t.Fatalf("restored manifest no longer opens: %v", err)
	}
}

func TestSegmentCorruptionDetected(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	if _, err := Create(dir, strings.NewReader(randCSV(6, 100, 3)), Options{SegRecords: 64}); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, segFileName(0))
	orig, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("bit flip", func(t *testing.T) {
		bad := append([]byte(nil), orig...)
		bad[len(bad)/2] ^= 0x40
		if err := os.WriteFile(segPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Fatal("Open accepted a corrupted segment")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if err := os.WriteFile(segPath, orig[:len(orig)/3], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Fatal("Open accepted a truncated segment")
		}
	})
	t.Run("missing", func(t *testing.T) {
		if err := os.Remove(segPath); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir); err == nil {
			t.Fatal("Open accepted a store with a missing segment")
		}
	})
}

func TestRemoveAndList(t *testing.T) {
	root := t.TempDir()
	if err := os.MkdirAll(filepath.Join(root, "not-a-store"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"beta", "alpha"} {
		if _, err := Create(filepath.Join(root, name), strings.NewReader("a,class\nx,c\n"), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	names, err := List(root)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"alpha", "beta"}) {
		t.Fatalf("List = %v", names)
	}
	if err := Remove(filepath.Join(root, "not-a-store")); err == nil {
		t.Fatal("Remove deleted a non-store directory")
	}
	if err := Remove(filepath.Join(root, "alpha")); err != nil {
		t.Fatal(err)
	}
	if names, _ = List(root); !reflect.DeepEqual(names, []string{"beta"}) {
		t.Fatalf("List after Remove = %v", names)
	}
	if names, err = List(filepath.Join(root, "absent")); err != nil || names != nil {
		t.Fatalf("List on absent root = %v, %v", names, err)
	}
}

func TestEmptyCSVStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	st, err := Create(dir, strings.NewReader("a,class\n"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRecords() != 0 || st.NumSegments() != 0 {
		t.Fatalf("empty store has %d records, %d segments", st.NumRecords(), st.NumSegments())
	}
	e, _, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if e.NumRecords != 0 || len(e.Labels) != 0 {
		t.Fatal("empty snapshot not empty")
	}
	// Appending to an empty store must still work.
	if _, err := st.Append(strings.NewReader("a,class\nx,c\n"), Options{}); err != nil {
		t.Fatal(err)
	}
	if st.NumRecords() != 1 {
		t.Fatalf("records after append = %d", st.NumRecords())
	}
}
