package colstore

import (
	"encoding/binary"
	"encoding/json"
	"hash/crc32"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// overflowSegment corrupts a valid segment's first footer class count
// and re-seals the CRC, so the decoder reaches the overflow check
// rather than failing the checksum.
func overflowSegment(seg []byte) []byte {
	out := append([]byte(nil), seg...)
	footerOff := binary.LittleEndian.Uint64(out[len(out)-trailerSize:])
	binary.LittleEndian.PutUint64(out[int(footerOff)+len(footerMagic):], 1<<40)
	body := len(out) - trailerSize
	binary.LittleEndian.PutUint32(out[body+8:], crc32.ChecksumIEEE(out[:body]))
	return out
}

// validSegmentBytes returns a well-formed two-attribute segment for the
// seed corpus.
func validSegmentBytes() []byte {
	blk := &dataset.SegmentBlock{
		Base:        0,
		NumRecords:  3,
		Labels:      []int32{0, 1, 0},
		Bitmaps:     [][][]uint64{{{0b101}, {0b010}}, {{0b011}, nil}},
		AttrDeltas:  [][]string{{"x", "y"}, {"p", "q"}},
		ClassDelta:  []string{"c0", "c1"},
		ClassCounts: []int{2, 1},
	}
	return encodeSegment(blk, 2, blk.ClassCounts)
}

func validManifestBytes() []byte {
	m := manifest{
		Format:     manifestFormat,
		Version:    1,
		NumRecords: 3,
		AttrNames:  []string{"a", "b"},
		ClassName:  "class",
		Segments:   []manifestSeg{{File: segFileName(0), Records: 3, Base: 0}},
	}
	data, err := json.Marshal(m)
	if err != nil {
		panic(err)
	}
	return data
}

// FuzzSegmentCodec drives the segment decoder and manifest validator
// with arbitrary bytes: corrupt input of any shape — truncated footers,
// overflowing class counts, out-of-order manifests — must produce an
// error, never a panic or a huge allocation, and accepted segments must
// expose self-consistent data.
func FuzzSegmentCodec(f *testing.F) {
	seg := validSegmentBytes()
	man := validManifestBytes()
	f.Add(seg, man)
	// Truncations: mid-header, mid-bitmaps, mid-footer, mid-trailer.
	for _, cut := range []int{4, len(seg) / 3, len(seg) - trailerSize - 2, len(seg) - 3} {
		f.Add(seg[:cut], man)
	}
	// Class-count overflow with a valid CRC: reaches the count checks.
	f.Add(overflowSegment(seg), man)
	// Out-of-order manifest.
	f.Add(seg, []byte(strings.Replace(string(man), `"base":0`, `"base":7`, 1)))
	f.Add([]byte{}, []byte(`{"format":1,"version":1,"segments":[]}`))

	f.Fuzz(func(t *testing.T, segData, manData []byte) {
		if sg, err := decodeSegment(segData); err == nil {
			// Accepted segments must be safe to walk: the decoder
			// validated every section size, so the lazy bitmap reads
			// cannot step out of bounds.
			var tids []uint32
			counts := make([]int, 0)
			for a, nv := range sg.attrVals {
				for v := 0; v < nv; v++ {
					tids = sg.appendTids(a, v, 0, tids[:0])
					for _, r := range tids {
						if int(r) >= sg.records {
							t.Fatalf("tid %d out of range [0,%d)", r, sg.records)
						}
					}
				}
				counts = append(counts, 0)
			}
			if len(sg.labels) != sg.records {
				t.Fatalf("%d labels for %d records", len(sg.labels), sg.records)
			}
		}
		var m manifest
		if err := json.Unmarshal(manData, &m); err == nil {
			if err := m.validate(); err == nil {
				// A valid manifest's segment ranges tile [0, NumRecords).
				total := 0
				for _, s := range m.Segments {
					if s.Base != total {
						t.Fatalf("validate accepted non-contiguous segments")
					}
					total += s.Records
				}
				if total != m.NumRecords {
					t.Fatalf("validate accepted mismatched record total")
				}
			}
		}
	})
}

// decodeErr returns the decode error text ("" on success).
func decodeErr(data []byte) string {
	if _, err := decodeSegment(data); err != nil {
		return err.Error()
	}
	return ""
}

// TestFuzzSeedsBehave pins the seed corpus semantics: the valid seeds
// decode, and each corrupt variant is rejected with an error (the fuzz
// harness itself only checks for panics).
func TestFuzzSeedsBehave(t *testing.T) {
	seg := validSegmentBytes()
	if _, err := decodeSegment(seg); err != nil {
		t.Fatalf("valid segment rejected: %v", err)
	}
	for _, cut := range []int{0, 4, len(seg) / 3, len(seg) - trailerSize - 2, len(seg) - 3} {
		if _, err := decodeSegment(seg[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := decodeSegment(overflowSegment(seg)); err == nil {
		t.Fatal("class-count overflow accepted")
	}
	if !strings.Contains(decodeErr(overflowSegment(seg)), "exceeds") {
		t.Fatal("overflow not rejected by the count check")
	}

	var m manifest
	if err := json.Unmarshal(validManifestBytes(), &m); err != nil {
		t.Fatal(err)
	}
	if err := m.validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	m.Segments[0].Base = 7
	if err := m.validate(); err == nil {
		t.Fatal("out-of-order manifest accepted")
	}
}
