// Package colstore is the out-of-core columnar dataset store: a
// directory of immutable segment files plus a manifest listing them in
// record order (DESIGN.md §11). Each segment covers a contiguous record
// range and holds, per item (attribute–value pair), a packed tid-word
// bitmap over the range, together with a footer carrying the segment's
// per-class record counts and the vocabulary values first seen inside
// it. Replaying the footer deltas in manifest order reconstructs the
// full schema; concatenating the per-item word runs reconstructs the
// exact vertical encoding dataset.Encode would have produced in memory —
// mining from a store is byte-identical to the in-memory path.
//
// Ingest streams (dataset.EncodeSegments): peak memory is one segment,
// independent of dataset size, and Append adds new immutable segments
// without rewriting old ones, bumping the store version that the session
// layer folds into its cache keys.
package colstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"

	"repro/internal/dataset"
)

// Segment wire format (all integers little-endian):
//
//	header:  magic "ARMSEG1\n" · records u32 · attrs u32 · classes u32 ·
//	         attrVals [attrs]u32  (per-attribute vocab size at segment end)
//	labels:  records × u32       (class index per record)
//	bitmaps: for a in attrs, v in attrVals[a]:
//	         ceil(records/64) × u64  (bit r-base set ⇔ record carries value)
//	footer:  fmagic "SFTR" · classCounts [classes]u64 ·
//	         per attr: n u32, n × (len u32 · bytes)   (vocab delta) ·
//	         class delta: n u32, n × (len u32 · bytes)
//	trailer: footerOff u64 · crc u32 (IEEE, bytes [0,footerEnd)) ·
//	         tmagic "ARMSEGE\n"
const (
	segMagic     = "ARMSEG1\n"
	footerMagic  = "SFTR"
	trailerMagic = "ARMSEGE\n"
	trailerSize  = 8 + 4 + 8
)

// segment is a decoded segment file. Bitmap words are not materialised:
// appendTids decodes them straight out of raw, so a loaded segment costs
// its file size plus the small decoded footer.
type segment struct {
	records     int
	classes     int
	attrVals    []int
	labels      []int32
	classCounts []uint64
	attrDeltas  [][]string
	classDelta  []string

	raw     []byte
	valOff  []int // valOff[a] = sum attrVals[:a], prefix for bitmap offsets
	bitmaps int   // byte offset of the first bitmap word
}

func (sg *segment) words() int { return (sg.records + 63) / 64 }

// appendTids appends base+r for every record r in the bitmap of
// attribute a's value v, in increasing order.
func (sg *segment) appendTids(a int, v int, base uint32, dst []uint32) []uint32 {
	w := sg.words()
	off := sg.bitmaps + (sg.valOff[a]+v)*w*8
	for wi := 0; wi < w; wi++ {
		word := binary.LittleEndian.Uint64(sg.raw[off+wi*8:])
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			dst = append(dst, base+uint32(wi*64+b))
		}
	}
	return dst
}

// itemCounts adds each value's bitmap population count into counts
// (indexed like valOff: attribute-major, value-minor).
func (sg *segment) itemCounts(counts []int) {
	w := sg.words()
	off := sg.bitmaps
	for a, nv := range sg.attrVals {
		for v := 0; v < nv; v++ {
			c := 0
			for wi := 0; wi < w; wi++ {
				c += bits.OnesCount64(binary.LittleEndian.Uint64(sg.raw[off:]))
				off += 8
			}
			counts[sg.valOff[a]+v] += c
		}
	}
}

// encodeSegment serialises a streaming-encoder block into the wire
// format above.
func encodeSegment(blk *dataset.SegmentBlock, classes int, classCounts []int) []byte {
	records := blk.NumRecords
	w := (records + 63) / 64
	nAttrs := len(blk.Bitmaps)

	size := len(segMagic) + 12 + 4*nAttrs + 4*records
	for a := range blk.Bitmaps {
		size += len(blk.Bitmaps[a]) * w * 8
	}
	size += len(footerMagic) + 8*classes
	for a := range blk.AttrDeltas {
		size += 4
		for _, s := range blk.AttrDeltas[a] {
			size += 4 + len(s)
		}
	}
	size += 4
	for _, s := range blk.ClassDelta {
		size += 4 + len(s)
	}
	size += trailerSize

	buf := make([]byte, 0, size)
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	str := func(s string) { u32(uint32(len(s))); buf = append(buf, s...) }

	buf = append(buf, segMagic...)
	u32(uint32(records))
	u32(uint32(nAttrs))
	u32(uint32(classes))
	for a := range blk.Bitmaps {
		u32(uint32(len(blk.Bitmaps[a])))
	}
	for _, c := range blk.Labels {
		u32(uint32(c))
	}
	for a := range blk.Bitmaps {
		for _, bm := range blk.Bitmaps[a] {
			for wi := 0; wi < w; wi++ {
				if wi < len(bm) {
					u64(bm[wi])
				} else {
					u64(0) // nil or short bitmap: the value never occurs
				}
			}
		}
	}
	footerOff := len(buf)
	buf = append(buf, footerMagic...)
	for c := 0; c < classes; c++ {
		if c < len(classCounts) {
			u64(uint64(classCounts[c]))
		} else {
			u64(0)
		}
	}
	for a := range blk.AttrDeltas {
		u32(uint32(len(blk.AttrDeltas[a])))
		for _, s := range blk.AttrDeltas[a] {
			str(s)
		}
	}
	u32(uint32(len(blk.ClassDelta)))
	for _, s := range blk.ClassDelta {
		str(s)
	}
	crc := crc32.ChecksumIEEE(buf)
	u64(uint64(footerOff))
	u32(crc)
	buf = append(buf, trailerMagic...)
	return buf
}

// segReader walks raw segment bytes with bounds checking; every read
// reports a positioned error instead of panicking, and no count field is
// trusted before the bytes it implies are known to exist.
type segReader struct {
	data []byte
	pos  int
}

func (r *segReader) need(n int) error {
	if n < 0 || len(r.data)-r.pos < n {
		return fmt.Errorf("colstore: segment truncated at byte %d (need %d more)", r.pos, n)
	}
	return nil
}

func (r *segReader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *segReader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.data[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *segReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// strs reads a u32-counted list of strings. The count is bounded by the
// remaining bytes (each string costs at least its 4-byte length), so a
// corrupt count cannot drive a huge allocation.
func (r *segReader) strs(what string) ([]string, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int64(n) > int64(len(r.data)-r.pos)/4 {
		return nil, fmt.Errorf("colstore: segment %s count %d exceeds remaining bytes", what, n)
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// decodeSegment parses and fully validates a segment file: magics, CRC,
// section sizes against the trailer's footer offset, label range, and
// class-count agreement with the labels. It never panics on corrupt
// input, and allocations stay proportional to the input size.
func decodeSegment(data []byte) (*segment, error) {
	if len(data) < len(segMagic)+12+trailerSize {
		return nil, fmt.Errorf("colstore: segment too short (%d bytes)", len(data))
	}
	if string(data[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("colstore: bad segment magic")
	}
	tr := segReader{data: data, pos: len(data) - trailerSize}
	footerOff64, _ := tr.u64()
	wantCRC, _ := tr.u32()
	if string(data[len(data)-8:]) != trailerMagic {
		return nil, fmt.Errorf("colstore: bad segment trailer magic")
	}
	body := len(data) - trailerSize
	if footerOff64 > uint64(body) {
		return nil, fmt.Errorf("colstore: footer offset %d beyond segment body %d", footerOff64, body)
	}
	footerOff := int(footerOff64)
	if crc := crc32.ChecksumIEEE(data[:body]); crc != wantCRC {
		return nil, fmt.Errorf("colstore: segment CRC mismatch (got %08x, want %08x)", crc, wantCRC)
	}

	r := segReader{data: data[:footerOff], pos: len(segMagic)}
	records32, err := r.u32()
	if err != nil {
		return nil, err
	}
	attrs32, err := r.u32()
	if err != nil {
		return nil, err
	}
	classes32, err := r.u32()
	if err != nil {
		return nil, err
	}
	// Bound every count by the bytes it implies before allocating.
	if int64(attrs32) > int64(footerOff)/4 {
		return nil, fmt.Errorf("colstore: segment attr count %d exceeds file size", attrs32)
	}
	if int64(records32) > int64(footerOff)/4 {
		return nil, fmt.Errorf("colstore: segment record count %d exceeds file size", records32)
	}
	// The class vocabulary is cumulative across segments, so it is
	// bounded by the footer's class-count array, not by this segment's
	// record count.
	if int64(classes32) > int64(body-footerOff)/8 {
		return nil, fmt.Errorf("colstore: segment class count %d exceeds footer size", classes32)
	}
	sg := &segment{
		records:  int(records32),
		classes:  int(classes32),
		attrVals: make([]int, attrs32),
		valOff:   make([]int, attrs32),
		raw:      data,
	}
	w := sg.words()
	totalVals := 0
	for a := range sg.attrVals {
		nv, err := r.u32()
		if err != nil {
			return nil, err
		}
		sg.valOff[a] = totalVals
		sg.attrVals[a] = int(nv)
		totalVals += int(nv)
		if w > 0 && int64(totalVals) > int64(footerOff)/int64(w*8) {
			return nil, fmt.Errorf("colstore: segment value count %d exceeds file size", totalVals)
		}
	}
	if err := r.need(4 * sg.records); err != nil {
		return nil, err
	}
	sg.labels = make([]int32, sg.records)
	for i := range sg.labels {
		v, _ := r.u32()
		if v >= classes32 {
			return nil, fmt.Errorf("colstore: record %d label %d out of range [0,%d)", i, v, classes32)
		}
		sg.labels[i] = int32(v)
	}
	sg.bitmaps = r.pos
	if err := r.need(totalVals * w * 8); err != nil {
		return nil, err
	}
	r.pos += totalVals * w * 8
	if r.pos != footerOff {
		return nil, fmt.Errorf("colstore: segment sections end at %d, footer starts at %d", r.pos, footerOff)
	}

	// Footer.
	f := segReader{data: data[:body], pos: footerOff}
	if err := f.need(len(footerMagic)); err != nil {
		return nil, err
	}
	if string(data[footerOff:footerOff+len(footerMagic)]) != footerMagic {
		return nil, fmt.Errorf("colstore: bad segment footer magic")
	}
	f.pos += len(footerMagic)
	sg.classCounts = make([]uint64, sg.classes)
	var sum uint64
	for c := range sg.classCounts {
		v, err := f.u64()
		if err != nil {
			return nil, err
		}
		if v > uint64(sg.records) {
			return nil, fmt.Errorf("colstore: class %d count %d exceeds %d records", c, v, sg.records)
		}
		sg.classCounts[c] = v
		sum += v
	}
	if sum != uint64(sg.records) {
		return nil, fmt.Errorf("colstore: class counts sum to %d, segment has %d records", sum, sg.records)
	}
	// Cross-check the footer against the labels actually stored.
	recount := make([]uint64, sg.classes)
	for _, c := range sg.labels {
		recount[c]++
	}
	for c := range recount {
		if recount[c] != sg.classCounts[c] {
			return nil, fmt.Errorf("colstore: class %d footer count %d, labels count %d", c, sg.classCounts[c], recount[c])
		}
	}
	sg.attrDeltas = make([][]string, attrs32)
	for a := range sg.attrDeltas {
		d, err := f.strs("attr delta")
		if err != nil {
			return nil, err
		}
		if len(d) > sg.attrVals[a] {
			return nil, fmt.Errorf("colstore: attr %d delta %d exceeds its %d values", a, len(d), sg.attrVals[a])
		}
		sg.attrDeltas[a] = d
	}
	if sg.classDelta, err = f.strs("class delta"); err != nil {
		return nil, err
	}
	if len(sg.classDelta) > sg.classes {
		return nil, fmt.Errorf("colstore: class delta %d exceeds %d classes", len(sg.classDelta), sg.classes)
	}
	if f.pos != body {
		return nil, fmt.Errorf("colstore: %d trailing bytes after segment footer", body-f.pos)
	}
	return sg, nil
}
