package colstore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/dataset"
)

// ManifestName is the manifest file inside a store directory.
const ManifestName = "MANIFEST.json"

// manifestFormat is the manifest wire-format version; readers reject
// anything else.
const manifestFormat = 1

// manifestSeg is one segment entry: the file name, the records it
// covers, and the absolute record id of its first record. Entries must
// be contiguous and in increasing base order.
type manifestSeg struct {
	File    string `json:"file"`
	Records int    `json:"records"`
	Base    int    `json:"base"`
}

// manifest is the store's index file. Version starts at 1 and bumps on
// every append; the session layer folds it into its stage-cache keys, so
// a bump invalidates every cached tree/rule/permutation stage.
type manifest struct {
	Format     int           `json:"format"`
	Version    uint64        `json:"version"`
	NumRecords int           `json:"num_records"`
	AttrNames  []string      `json:"attr_names"`
	ClassName  string        `json:"class_name"`
	Segments   []manifestSeg `json:"segments"`
}

// validate checks structural invariants: known format, monotone
// contiguous segment ranges starting at record 0, and a record total
// matching the segment sum. Out-of-order or gapped manifests are errors,
// never reordered silently.
func (m *manifest) validate() error {
	if m.Format != manifestFormat {
		return fmt.Errorf("colstore: manifest format %d, want %d", m.Format, manifestFormat)
	}
	if m.Version == 0 {
		return fmt.Errorf("colstore: manifest version must be >= 1")
	}
	base := 0
	for i, s := range m.Segments {
		if s.Records <= 0 {
			return fmt.Errorf("colstore: segment %d covers %d records", i, s.Records)
		}
		if s.File != segFileName(i) {
			return fmt.Errorf("colstore: segment %d named %q, want %q", i, s.File, segFileName(i))
		}
		if s.Base != base {
			return fmt.Errorf("colstore: segment %d base %d out of order (want %d)", i, s.Base, base)
		}
		base += s.Records
	}
	if m.NumRecords != base {
		return fmt.Errorf("colstore: manifest records %d, segments sum to %d", m.NumRecords, base)
	}
	return nil
}

func segFileName(i int) string { return fmt.Sprintf("seg-%08d.arm", i) }

// Options configures ingestion into a store. The class is always the
// CSV's last column, matching the server upload and armine conventions.
type Options struct {
	// SegRecords caps records per segment (default
	// dataset.DefaultSegRecords).
	SegRecords int
}

// Store is an opened on-disk segmented dataset. All methods are safe for
// concurrent use; Append swaps in a fresh schema snapshot rather than
// mutating the one previous Snapshot calls returned.
type Store struct {
	dir string

	mu          sync.RWMutex
	man         manifest
	schema      *dataset.Schema
	classCounts []int
}

// Create ingests a CSV stream into a new store directory (created if
// missing; it must not already contain a manifest). The encode streams:
// peak memory is one segment regardless of input size.
func Create(dir string, r io.Reader, opts Options) (*Store, error) {
	return createFrom(dir, r, opts)
}

// FromDataset writes an in-memory dataset into a new store directory,
// preserving its schema verbatim (the full vocabulary travels in the
// first segment's delta, so values that never occur in any record — or
// occur out of first-appearance order — survive the round trip and the
// reloaded encoding is byte-identical to dataset.Encode(d)).
func FromDataset(dir string, d *dataset.Dataset, opts Options) (*Store, error) {
	if opts.SegRecords <= 0 {
		opts.SegRecords = dataset.DefaultSegRecords
	}
	if d.NumRecords() == 0 {
		return nil, fmt.Errorf("colstore: FromDataset: empty dataset")
	}
	if err := prepareDir(dir); err != nil {
		return nil, err
	}
	classes := d.Schema.NumClasses()
	var segs []manifestSeg
	for base := 0; base < d.NumRecords(); base += opts.SegRecords {
		n := d.NumRecords() - base
		if n > opts.SegRecords {
			n = opts.SegRecords
		}
		blk := blockFromDataset(d, base, n)
		if base == 0 {
			for a := range d.Schema.Attrs {
				blk.AttrDeltas[a] = d.Schema.Attrs[a].Values
			}
			blk.ClassDelta = d.Schema.Class.Values
		}
		if err := writeSegment(dir, len(segs), blk, classes); err != nil {
			return nil, err
		}
		segs = append(segs, manifestSeg{File: segFileName(len(segs)), Records: n, Base: base})
	}
	man := manifest{
		Format:     manifestFormat,
		Version:    1,
		NumRecords: d.NumRecords(),
		AttrNames:  attrNames(d.Schema),
		ClassName:  d.Schema.Class.Name,
		Segments:   segs,
	}
	if err := writeManifest(dir, &man); err != nil {
		return nil, err
	}
	return Open(dir)
}

// blockFromDataset packs records [base, base+n) of d into a segment
// block spanning the full (final) vocabulary.
func blockFromDataset(d *dataset.Dataset, base, n int) *dataset.SegmentBlock {
	nAttrs := len(d.Schema.Attrs)
	blk := &dataset.SegmentBlock{
		Base:       base,
		NumRecords: n,
		Labels:     d.Labels[base : base+n],
		Bitmaps:    make([][][]uint64, nAttrs),
		AttrDeltas: make([][]string, nAttrs),
	}
	w := (n + 63) / 64
	for a := range blk.Bitmaps {
		blk.Bitmaps[a] = make([][]uint64, len(d.Schema.Attrs[a].Values))
	}
	for ri := 0; ri < n; ri++ {
		for a, v := range d.Cells[base+ri] {
			if v < 0 {
				continue
			}
			if blk.Bitmaps[a][v] == nil {
				blk.Bitmaps[a][v] = make([]uint64, w)
			}
			blk.Bitmaps[a][v][ri>>6] |= 1 << (uint(ri) & 63)
		}
	}
	blk.ClassCounts = make([]int, d.Schema.NumClasses())
	for _, c := range blk.Labels {
		blk.ClassCounts[c]++
	}
	return blk
}

func createFrom(dir string, r io.Reader, opts Options) (*Store, error) {
	if err := prepareDir(dir); err != nil {
		return nil, err
	}
	var segs []manifestSeg
	emit := func(blk *dataset.SegmentBlock) error {
		if err := writeSegment(dir, len(segs), blk, len(blk.ClassCounts)); err != nil {
			return err
		}
		segs = append(segs, manifestSeg{File: segFileName(len(segs)), Records: blk.NumRecords, Base: blk.Base})
		return nil
	}
	schema, total, err := dataset.EncodeSegments(r, dataset.SegmentOptions{
		ClassCol:   -1,
		SegRecords: opts.SegRecords,
	}, emit)
	if err != nil {
		return nil, err
	}
	man := manifest{
		Format:     manifestFormat,
		Version:    1,
		NumRecords: total,
		AttrNames:  attrNames(schema),
		ClassName:  schema.Class.Name,
		Segments:   segs,
	}
	if err := writeManifest(dir, &man); err != nil {
		return nil, err
	}
	return Open(dir)
}

// prepareDir creates dir if needed and refuses to overwrite an existing
// store: segments are immutable, so replacing a dataset means removing
// its directory first.
func prepareDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err == nil {
		return fmt.Errorf("colstore: %s already contains a store", dir)
	} else if !os.IsNotExist(err) {
		return err
	}
	return nil
}

func attrNames(s *dataset.Schema) []string {
	names := make([]string, len(s.Attrs))
	for a := range s.Attrs {
		names[a] = s.Attrs[a].Name
	}
	return names
}

func writeSegment(dir string, idx int, blk *dataset.SegmentBlock, classes int) error {
	data := encodeSegment(blk, classes, blk.ClassCounts)
	return writeFileAtomic(filepath.Join(dir, segFileName(idx)), data)
}

// writeManifest atomically replaces the manifest via temp file + rename,
// so a crash mid-append leaves the previous consistent manifest (new
// segment files without manifest entries are ignored by validate's exact
// naming and overwritten by the next append).
func writeManifest(dir string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, ManifestName), append(data, '\n'))
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Open loads a store directory: it parses and validates the manifest,
// then decodes every segment once to replay the vocabulary deltas into
// the schema and sum the footer class counts. Bitmaps are only decoded
// later, by Snapshot.
func Open(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir}
	dec := json.NewDecoder(newStrictReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s.man); err != nil {
		return nil, fmt.Errorf("colstore: parsing %s: %w", ManifestName, err)
	}
	if err := s.man.validate(); err != nil {
		return nil, err
	}
	schema, counts, err := replaySegments(dir, &s.man, nil)
	if err != nil {
		return nil, err
	}
	s.schema, s.classCounts = schema, counts
	return s, nil
}

// newStrictReader wraps manifest bytes for decoding. (A plain bytes
// reader; kept as a hook for size limits if manifests ever grow.)
func newStrictReader(data []byte) io.Reader {
	return &byteReader{data: data}
}

type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// replaySegments walks the manifest's segments in order, validating the
// vocabulary chain (each segment's per-attribute value count must equal
// the previous count plus its delta, likewise for classes) and returning
// the final schema and summed class counts. When fn is non-nil it runs
// on each decoded segment before its memory is released.
func replaySegments(dir string, man *manifest, fn func(int, *segment) error) (*dataset.Schema, []int, error) {
	schema := &dataset.Schema{Class: dataset.Attribute{Name: man.ClassName}}
	for _, name := range man.AttrNames {
		schema.Attrs = append(schema.Attrs, dataset.Attribute{Name: name})
	}
	var counts []int
	for i, ms := range man.Segments {
		data, err := os.ReadFile(filepath.Join(dir, ms.File))
		if err != nil {
			return nil, nil, err
		}
		sg, err := decodeSegment(data)
		if err != nil {
			return nil, nil, fmt.Errorf("colstore: segment %s: %w", ms.File, err)
		}
		if sg.records != ms.Records {
			return nil, nil, fmt.Errorf("colstore: segment %s holds %d records, manifest says %d", ms.File, sg.records, ms.Records)
		}
		if len(sg.attrVals) != len(schema.Attrs) {
			return nil, nil, fmt.Errorf("colstore: segment %s has %d attributes, manifest has %d", ms.File, len(sg.attrVals), len(schema.Attrs))
		}
		for a := range schema.Attrs {
			if want := len(schema.Attrs[a].Values) + len(sg.attrDeltas[a]); sg.attrVals[a] != want {
				return nil, nil, fmt.Errorf("colstore: segment %s attr %d has %d values, chain expects %d",
					ms.File, a, sg.attrVals[a], want)
			}
			schema.Attrs[a].Values = append(schema.Attrs[a].Values, sg.attrDeltas[a]...)
		}
		if want := len(schema.Class.Values) + len(sg.classDelta); sg.classes != want {
			return nil, nil, fmt.Errorf("colstore: segment %s has %d classes, chain expects %d", ms.File, sg.classes, want)
		}
		schema.Class.Values = append(schema.Class.Values, sg.classDelta...)
		for len(counts) < sg.classes {
			counts = append(counts, 0)
		}
		for c, n := range sg.classCounts {
			counts[c] += int(n)
		}
		if fn != nil {
			if err := fn(i, sg); err != nil {
				return nil, nil, err
			}
		}
	}
	return schema, counts, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// NumRecords returns the store's total record count.
func (s *Store) NumRecords() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.man.NumRecords
}

// NumSegments returns the number of immutable segments.
func (s *Store) NumSegments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.man.Segments)
}

// Version returns the store's monotone version, bumped by every Append.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.man.Version
}

// Schema returns the current schema snapshot. It is immutable: Append
// builds a new schema rather than growing this one.
func (s *Store) Schema() *dataset.Schema {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.schema
}

// ClassCounts returns the summed per-class record counts. The slice is
// shared; callers must not mutate it.
func (s *Store) ClassCounts() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.classCounts
}

// Snapshot rebuilds the vertical encoding from the segment files —
// concatenating each item's per-segment word runs in record order and
// summing footer class counts — and returns it with the version it
// corresponds to. The result is byte-identical to dataset.Encode over
// the equivalent in-memory dataset: segments are replayed in manifest
// order, so every tid-list is increasing, and the schema replay keeps
// vocabularies in original first-appearance order. Peak extra memory is
// one segment file beyond the returned encoding.
func (s *Store) Snapshot() (*dataset.Encoded, uint64, error) {
	s.mu.RLock()
	man := s.man
	schema := s.schema
	counts := append([]int(nil), s.classCounts...)
	s.mu.RUnlock()

	enc := dataset.NewEncoding(schema)
	e := &dataset.Encoded{
		Enc:         enc,
		NumRecords:  man.NumRecords,
		Tids:        make([][]uint32, enc.NumItems()),
		Labels:      make([]int32, 0, man.NumRecords),
		NumClasses:  schema.NumClasses(),
		ClassCounts: counts,
	}
	// First pass: per-item occurrence counts, so each tid-list is
	// allocated exactly once (mirroring Encode's two-pass shape).
	itemCounts := make([]int, enc.NumItems())
	_, _, err := replaySegments(s.dir, &man, func(i int, sg *segment) error {
		// Item ids are stable under the final encoding because value
		// indices within an attribute never change once assigned; a
		// segment just covers a prefix of each attribute's value range.
		counts := make([]int, sg.valOff[len(sg.valOff)-1]+sg.attrVals[len(sg.attrVals)-1])
		if len(sg.attrVals) == 0 {
			counts = nil
		}
		sg.itemCounts(counts)
		for a, nv := range sg.attrVals {
			for v := 0; v < nv; v++ {
				itemCounts[enc.ItemOf(a, int32(v))] += counts[sg.valOff[a]+v]
			}
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	for i := range e.Tids {
		e.Tids[i] = make([]uint32, 0, itemCounts[i])
	}
	_, _, err = replaySegments(s.dir, &man, func(i int, sg *segment) error {
		base := uint32(man.Segments[i].Base)
		for a, nv := range sg.attrVals {
			for v := 0; v < nv; v++ {
				it := enc.ItemOf(a, int32(v))
				e.Tids[it] = sg.appendTids(a, v, base, e.Tids[it])
			}
		}
		e.Labels = append(e.Labels, sg.labels...)
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return e, man.Version, nil
}

// Append ingests a CSV delta (same header layout as the original
// ingest) as new immutable segments, atomically rewrites the manifest
// with a bumped version, and swaps in the grown schema. Existing
// segment files are never touched. It returns the number of records
// added. Concurrent Snapshot callers keep the schema snapshot they
// already hold.
func (s *Store) Append(r io.Reader, opts Options) (int, error) {
	if opts.SegRecords <= 0 {
		opts.SegRecords = dataset.DefaultSegRecords
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	man := s.man // copy; segment slice is re-appended below
	man.Segments = append([]manifestSeg(nil), s.man.Segments...)
	var added []manifestSeg
	emit := func(blk *dataset.SegmentBlock) error {
		idx := len(man.Segments) + len(added)
		if err := writeSegment(s.dir, idx, blk, len(blk.ClassCounts)); err != nil {
			return err
		}
		added = append(added, manifestSeg{File: segFileName(idx), Records: blk.NumRecords, Base: blk.Base})
		return nil
	}
	schema, total, err := dataset.EncodeSegments(r, dataset.SegmentOptions{
		ClassCol:    -1,
		SegRecords:  opts.SegRecords,
		Base:        s.schema,
		BaseRecords: man.NumRecords,
	}, emit)
	if err != nil {
		return 0, err
	}
	man.Segments = append(man.Segments, added...)
	man.NumRecords += total
	man.Version++
	if err := writeManifest(s.dir, &man); err != nil {
		return 0, err
	}
	s.man = man
	s.schema = schema // fresh object from the resume reader, never aliased
	counts := make([]int, schema.NumClasses())
	copy(counts, s.classCounts)
	s.classCounts = counts
	for _, ms := range added {
		// Re-read the fresh segments' footers for their class counts
		// rather than trusting in-memory state, keeping Open and Append
		// agreeing on what disk says.
		data, err := os.ReadFile(filepath.Join(s.dir, ms.File))
		if err != nil {
			return 0, err
		}
		sg, err := decodeSegment(data)
		if err != nil {
			return 0, err
		}
		for c, n := range sg.classCounts {
			s.classCounts[c] += int(n)
		}
	}
	return total, nil
}

// Remove deletes a store directory and every file in it. It refuses
// paths that do not look like a store (no manifest), to avoid deleting
// arbitrary directories on a mis-typed path.
func Remove(dir string) error {
	if _, err := os.Stat(filepath.Join(dir, ManifestName)); err != nil {
		return fmt.Errorf("colstore: %s is not a store: %w", dir, err)
	}
	return os.RemoveAll(dir)
}

// List returns the names of stores under root (directories containing a
// manifest), sorted.
func List(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(root, e.Name(), ManifestName)); err == nil {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
