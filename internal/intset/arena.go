package intset

import "fmt"

// Arena is a typed bump allocator with LIFO checkpoint/rewind semantics,
// built for recursive walks that need per-level scratch: take a Checkpoint
// before descending, Alloc freely inside the subtree, Rewind on the way
// back up, and the same chunked backing memory serves every level — the
// steady state allocates nothing. The permutation engine's walkers own one
// arena each for count tiles and child-count buffers (DESIGN.md §8).
//
// Checkpoints are strictly LIFO. Rewind validates the discipline and
// panics on misuse (a double rewind, a rewind that skips an inner
// checkpoint, or a mark from a different arena) rather than silently
// handing out memory that is still live.
//
// An Arena is not synchronized; give each goroutine its own.
type Arena[T any] struct {
	chunks   [][]T
	ci       int // index of the chunk currently allocated from (-1 = none)
	off      int // allocation offset within chunks[ci]
	depth    int // number of outstanding checkpoints
	chunkLen int
}

// Mark is an arena position returned by Checkpoint and consumed by Rewind.
type Mark struct {
	ci, off, depth int
}

// NewArena returns an empty arena whose backing chunks hold at least
// chunkLen elements each (larger single allocations get their own chunk).
func NewArena[T any](chunkLen int) *Arena[T] {
	if chunkLen < 1 {
		chunkLen = 1024
	}
	return &Arena[T]{ci: -1, chunkLen: chunkLen}
}

// Alloc returns a slice of n elements carved from the arena. The contents
// are unspecified (previously rewound memory is reused as-is); use
// AllocZero when the caller needs zeroed memory. The slice is valid until
// the enclosing checkpoint is rewound or Reset is called.
//
//armine:noalloc
func (a *Arena[T]) Alloc(n int) []T {
	if n < 0 {
		panicNegativeAlloc(n)
	}
	if n == 0 {
		return nil
	}
	if a.ci < 0 || n > len(a.chunks[a.ci])-a.off {
		a.advance(n)
	}
	s := a.chunks[a.ci][a.off : a.off+n : a.off+n]
	a.off += n
	return s
}

// AllocZero is Alloc with the returned slice cleared.
//
//armine:noalloc
func (a *Arena[T]) AllocZero(n int) []T {
	s := a.Alloc(n)
	clear(s)
	return s
}

// panicNegativeAlloc keeps the message formatting — an allocation — out of
// Alloc's noalloc body.
func panicNegativeAlloc(n int) {
	panic(fmt.Sprintf("intset: Arena.Alloc: negative length %d", n))
}

// advance moves allocation to the next chunk, growing the chunk list (or
// widening an existing too-small chunk) so that n elements fit.
func (a *Arena[T]) advance(n int) {
	a.ci++
	a.off = 0
	want := a.chunkLen
	if n > want {
		want = n
	}
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]T, want))
	} else if len(a.chunks[a.ci]) < n {
		a.chunks[a.ci] = make([]T, want)
	}
}

// Checkpoint records the current allocation point. Every Checkpoint must
// be matched by exactly one Rewind, in LIFO order.
//
//armine:noalloc
func (a *Arena[T]) Checkpoint() Mark {
	a.depth++
	return Mark{ci: a.ci, off: a.off, depth: a.depth}
}

// Rewind releases every allocation made since the matching Checkpoint.
// The mark must be the most recent outstanding checkpoint: rewinding one
// mark twice, or an outer mark while an inner checkpoint is outstanding,
// panics.
//
//armine:noalloc
func (a *Arena[T]) Rewind(m Mark) {
	if m.depth != a.depth {
		panicDepthMismatch(m.depth, a.depth)
	}
	if m.ci > a.ci || (m.ci == a.ci && m.off > a.off) {
		panic("intset: Arena.Rewind: mark lies past the arena's current allocation point (mark from another arena?)")
	}
	a.ci, a.off = m.ci, m.off
	a.depth--
}

// panicDepthMismatch keeps the message formatting — an allocation — out of
// Rewind's noalloc body.
func panicDepthMismatch(mark, arena int) {
	panic(fmt.Sprintf(
		"intset: Arena.Rewind: mark depth %d does not match arena depth %d (double rewind, or rewind past an outstanding inner checkpoint)",
		mark, arena))
}

// Reset releases every allocation and forgets all checkpoints; the backing
// chunks are retained for reuse.
func (a *Arena[T]) Reset() {
	a.ci = -1
	a.off = 0
	a.depth = 0
}

// Depth returns the number of outstanding checkpoints.
func (a *Arena[T]) Depth() int { return a.depth }
