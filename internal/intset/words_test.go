package intset

import (
	"math/rand/v2"
	"testing"
)

// randomIds returns a strictly increasing id list over [0, n) where each
// element is kept with probability p.
func randomIds(rng *rand.Rand, n int, p float64) []uint32 {
	var ids []uint32
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			ids = append(ids, uint32(i))
		}
	}
	return ids
}

// fullIds returns [0, n).
func fullIds(n int) []uint32 {
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(i)
	}
	return ids
}

func TestIntersectCountWordsEdgeCases(t *testing.T) {
	// Universes deliberately not multiples of 64, plus exact multiples and
	// degenerate sizes.
	for _, n := range []int{0, 1, 63, 64, 65, 100, 127, 128, 129, 300, 1000} {
		full := fullIds(n)
		cases := []struct {
			name string
			a, b []uint32
		}{
			{"empty-empty", nil, nil},
			{"empty-full", nil, full},
			{"full-empty", full, nil},
			{"full-full", full, full},
		}
		if n > 2 {
			evens := make([]uint32, 0, n/2+1)
			for i := 0; i < n; i += 2 {
				evens = append(evens, uint32(i))
			}
			cases = append(cases,
				struct {
					name string
					a, b []uint32
				}{"evens-full", evens, full},
				struct {
					name string
					a, b []uint32
				}{"evens-evens", evens, evens},
				struct {
					name string
					a, b []uint32
				}{"last-only", []uint32{uint32(n - 1)}, full},
			)
		}
		for _, c := range cases {
			want := IntersectCount(c.a, c.b)
			aw := make([]uint64, Words(n))
			bw := make([]uint64, Words(n))
			SetWords(aw, c.a)
			SetWords(bw, c.b)
			if got := IntersectCountWords(aw, bw); got != want {
				t.Errorf("n=%d %s: IntersectCountWords = %d, want %d", n, c.name, got, want)
			}
			// The Bitset method must agree with the package kernel.
			if got := FromSlice(n, c.a).IntersectCountWords(bw); got != want {
				t.Errorf("n=%d %s: Bitset.IntersectCountWords = %d, want %d", n, c.name, got, want)
			}
		}
	}
}

func TestIntersectCountWordsUnequalLengths(t *testing.T) {
	// Operands over different universes count over the shorter bitmap.
	a := make([]uint64, Words(100))
	b := make([]uint64, Words(200))
	SetWords(a, []uint32{0, 63, 64, 99})
	SetWords(b, []uint32{0, 64, 99, 150, 199})
	if got := IntersectCountWords(a, b); got != 3 {
		t.Errorf("IntersectCountWords unequal = %d, want 3", got)
	}
	if got := IntersectCountWords(b, a); got != 3 {
		t.Errorf("IntersectCountWords swapped = %d, want 3", got)
	}
}

func TestSetClearWordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 0))
	for _, n := range []int{65, 130, 500} {
		ws := make([]uint64, Words(n))
		ids := randomIds(rng, n, 0.3)
		SetWords(ws, ids)
		if got := IntersectCountWords(ws, ws); got != len(ids) {
			t.Fatalf("n=%d: popcount after SetWords = %d, want %d", n, got, len(ids))
		}
		ClearWords(ws, ids)
		for i, w := range ws {
			if w != 0 {
				t.Fatalf("n=%d: word %d = %#x after ClearWords, want 0", n, i, w)
			}
		}
	}
}

func TestRepWordsFastPath(t *testing.T) {
	n := 300
	dense := fullIds(n)[:n/2]      // 150/300: dense, carries a bitset
	sparse := []uint32{1, 77, 298} // sparse: slice only
	rd := NewRep(n, dense)
	if rd.Words() == nil {
		t.Fatal("dense Rep returned nil Words")
	}
	other := make([]uint64, Words(n))
	SetWords(other, []uint32{0, 100, 149, 150, 299})
	if got, want := IntersectCountWords(rd.Words(), other), 3; got != want {
		t.Errorf("dense Rep word count = %d, want %d", got, want)
	}
	if rs := NewRep(n, sparse); rs.Words() != nil {
		t.Error("sparse Rep returned non-nil Words")
	}
}

// TestIntersectCountWordsRandomOracle cross-checks the word kernel against
// the slice-walk oracle over many random (density, universe) mixes.
func TestIntersectCountWordsRandomOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.IntN(700) // frequently not a multiple of 64
		a := randomIds(rng, n, rng.Float64())
		b := randomIds(rng, n, rng.Float64())
		aw := make([]uint64, Words(n))
		bw := make([]uint64, Words(n))
		SetWords(aw, a)
		SetWords(bw, b)
		want := IntersectCount(a, b)
		if got := IntersectCountWords(aw, bw); got != want {
			t.Fatalf("trial %d n=%d: words=%d oracle=%d", trial, n, got, want)
		}
	}
}

// FuzzIntersectCountWords feeds arbitrary byte strings interpreted as two
// id sets over a shared universe and requires the word kernel to agree
// with the slice-walk IntersectCount oracle.
func FuzzIntersectCountWords(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{2, 3, 4}, uint16(300))
	f.Add([]byte{}, []byte{0}, uint16(64))
	f.Add([]byte{255, 254}, []byte{255}, uint16(65))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, universe uint16) {
		n := int(universe)%701 + 1
		toIds := func(raw []byte) []uint32 {
			seen := make(map[uint32]bool)
			for _, by := range raw {
				seen[uint32(by)%uint32(n)] = true
			}
			ids := make([]uint32, 0, len(seen))
			for i := 0; i < n; i++ {
				if seen[uint32(i)] {
					ids = append(ids, uint32(i))
				}
			}
			return ids
		}
		a, b := toIds(rawA), toIds(rawB)
		aw := make([]uint64, Words(n))
		bw := make([]uint64, Words(n))
		SetWords(aw, a)
		SetWords(bw, b)
		if got, want := IntersectCountWords(aw, bw), IntersectCount(a, b); got != want {
			t.Fatalf("n=%d: IntersectCountWords=%d, IntersectCount=%d", n, got, want)
		}
	})
}
