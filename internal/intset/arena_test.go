package intset

import (
	"strings"
	"testing"
)

func TestArenaAllocAndRewind(t *testing.T) {
	a := NewArena[int32](8) // tiny chunks force multi-chunk paths
	outer := a.Checkpoint()
	s1 := a.AllocZero(5)
	for i := range s1 {
		s1[i] = int32(i + 1)
	}
	inner := a.Checkpoint()
	s2 := a.AllocZero(20) // larger than a chunk: gets its own
	s2[19] = 7
	a.Rewind(inner)
	// s1 must be untouched by the inner allocation and rewind.
	for i := range s1 {
		if s1[i] != int32(i+1) {
			t.Fatalf("s1[%d] = %d after inner rewind, want %d", i, s1[i], i+1)
		}
	}
	// Memory handed out after a rewind reuses the rewound chunks.
	s3 := a.Alloc(20)
	if &s3[0] != &s2[0] {
		t.Error("arena did not reuse rewound memory")
	}
	a.Rewind(outer)
	if a.Depth() != 0 {
		t.Fatalf("depth = %d after matching rewinds, want 0", a.Depth())
	}
}

func TestArenaAllocZeroClearsReusedMemory(t *testing.T) {
	a := NewArena[int32](64)
	m := a.Checkpoint()
	s := a.Alloc(10)
	for i := range s {
		s[i] = -1
	}
	a.Rewind(m)
	m = a.Checkpoint()
	for i, v := range a.AllocZero(10) {
		if v != 0 {
			t.Fatalf("AllocZero[%d] = %d on reused memory, want 0", i, v)
		}
	}
	a.Rewind(m)
}

func TestArenaSteadyStateZeroAllocs(t *testing.T) {
	a := NewArena[int32](1024)
	// Warm the chunks once, then the checkpoint/alloc/rewind cycle must be
	// allocation-free.
	warm := func() {
		m := a.Checkpoint()
		a.AllocZero(100)
		inner := a.Checkpoint()
		a.Alloc(900)
		a.Rewind(inner)
		a.Alloc(200)
		a.Rewind(m)
	}
	warm()
	if allocs := testing.AllocsPerRun(50, warm); allocs != 0 {
		t.Fatalf("steady-state arena cycle allocates %.1f times, want 0", allocs)
	}
}

// mustPanic runs fn and returns the recovered panic message, failing the
// test if fn does not panic.
func mustPanic(t *testing.T, fn func()) string {
	t.Helper()
	defer func() { _ = recover() }()
	msg := func() (m string) {
		defer func() {
			if r := recover(); r != nil {
				m = r.(string)
			}
		}()
		fn()
		t.Fatal("expected panic, got none")
		return ""
	}()
	return msg
}

// TestArenaRewindMisusePanics is the regression test for checkpoint/rewind
// misuse: a double rewind and a rewind that skips an outstanding inner
// checkpoint must both panic with a message naming the problem, and a
// foreign mark past the allocation point must be rejected too.
func TestArenaRewindMisusePanics(t *testing.T) {
	t.Run("double-rewind", func(t *testing.T) {
		a := NewArena[int32](64)
		m := a.Checkpoint()
		a.Alloc(10)
		a.Rewind(m)
		msg := mustPanic(t, func() { a.Rewind(m) })
		if !strings.Contains(msg, "double rewind") {
			t.Fatalf("double-rewind panic message %q does not name the misuse", msg)
		}
	})
	t.Run("rewind-past-inner-checkpoint", func(t *testing.T) {
		a := NewArena[int32](64)
		outer := a.Checkpoint()
		a.Alloc(5)
		a.Checkpoint() // inner, deliberately left outstanding
		msg := mustPanic(t, func() { a.Rewind(outer) })
		if !strings.Contains(msg, "depth") {
			t.Fatalf("out-of-order panic message %q does not mention depth", msg)
		}
	})
	t.Run("mark-past-allocation-point", func(t *testing.T) {
		a := NewArena[int32](64)
		a.Checkpoint()
		a.Alloc(50)
		fwd := a.Checkpoint() // deeper mark...
		a.Alloc(30)
		a.Rewind(fwd)
		a.Reset() // ...invalidated wholesale
		a.Checkpoint()
		forged := Mark{ci: 5, off: 0, depth: 1}
		msg := mustPanic(t, func() { a.Rewind(forged) })
		if !strings.Contains(msg, "past the arena") {
			t.Fatalf("forged-mark panic message %q does not name the misuse", msg)
		}
	})
}

func TestArenaResetReusesChunks(t *testing.T) {
	a := NewArena[uint64](32)
	m := a.Checkpoint()
	first := a.Alloc(16)
	a.Rewind(m)
	a.Reset()
	again := a.Alloc(16)
	if &again[0] != &first[0] {
		t.Error("Reset did not retain backing chunks")
	}
	if a.Depth() != 0 {
		t.Fatalf("Depth after Reset = %d, want 0", a.Depth())
	}
}
