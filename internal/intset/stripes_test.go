package intset

import (
	"math/rand/v2"
	"testing"
)

// stripeOracle counts lane s of a striped matrix by walking the id slice:
// the ground truth IntersectCountStripes must reproduce for every width.
func stripeOracle(ids []uint32, width, s int, stripes []uint64) int32 {
	var c int32
	for _, x := range ids {
		if stripes[int(x>>6)*width+s]&(1<<(x&63)) != 0 {
			c++
		}
	}
	return c
}

// buildStripes packs one id set per lane into a striped matrix of the given
// width over a universe of n records.
func buildStripes(n, width int, lanes [][]uint32) []uint64 {
	stripes := make([]uint64, Words(n)*width)
	for s, ids := range lanes {
		for _, x := range ids {
			stripes[int(x>>6)*width+s] |= 1 << (x & 63)
		}
	}
	return stripes
}

// sparseForm converts ids to the (idx, word) sparse word form via the
// package helpers, verifying the declared length along the way.
func sparseForm(t *testing.T, ids []uint32) ([]int32, []uint64) {
	t.Helper()
	nz := NonzeroWords(ids)
	idx := make([]int32, nz)
	word := make([]uint64, nz)
	FillNonzeroWords(idx, word, ids)
	// The sparse form must hold exactly the ids' bits, in ascending word
	// order.
	total := 0
	for i, w := range word {
		if i > 0 && idx[i] <= idx[i-1] {
			t.Fatalf("FillNonzeroWords: idx not ascending at %d: %v", i, idx)
		}
		for w != 0 {
			total++
			w &= w - 1
		}
	}
	if total != len(ids) {
		t.Fatalf("FillNonzeroWords: %d bits set, want %d", total, len(ids))
	}
	return idx, word
}

// adversarialIdSets returns id patterns chosen to stress the sparse-word
// form: empty, singletons at word boundaries, dense runs, alternating
// bits, and isolated far-apart words.
func adversarialIdSets(n int) [][]uint32 {
	full := fullIds(n)
	sets := [][]uint32{nil, full}
	if n > 2 {
		sets = append(sets, []uint32{0}, []uint32{uint32(n - 1)})
		evens := make([]uint32, 0, n/2+1)
		for i := 0; i < n; i += 2 {
			evens = append(evens, uint32(i))
		}
		sets = append(sets, evens)
	}
	if n > 130 {
		sets = append(sets,
			[]uint32{0, 63, 64, 127, 128, uint32(n - 1)}, // word-boundary bits
			full[n/3:2*n/3], // dense middle run
		)
	}
	return sets
}

// TestIntersectCountStripesOracle drives the striped kernels — the generic
// width form, the unrolled width-8 form, and the width-1 degenerate form —
// against the slice-walk oracle across widths 1, 4, 8 and 16, random and
// adversarial bit patterns, and universes that are not word multiples.
func TestIntersectCountStripesOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 1))
	for _, n := range []int{1, 63, 64, 65, 129, 300, 1000} {
		var idSets [][]uint32
		idSets = append(idSets, adversarialIdSets(n)...)
		for i := 0; i < 4; i++ {
			idSets = append(idSets, randomIds(rng, n, rng.Float64()))
		}
		for _, width := range []int{1, 4, 8, 16} {
			lanes := make([][]uint32, width)
			for s := range lanes {
				lanes[s] = randomIds(rng, n, rng.Float64())
			}
			// Stress lanes too: one all-ones lane, one empty lane.
			if width >= 2 {
				lanes[0] = fullIds(n)
				lanes[width-1] = nil
			}
			stripes := buildStripes(n, width, lanes)
			for si, ids := range idSets {
				idx, word := sparseForm(t, ids)
				got := make([]int32, width)
				IntersectCountStripes(got, width, idx, word, stripes)
				for s := 0; s < width; s++ {
					if want := stripeOracle(ids, width, s, stripes); got[s] != want {
						t.Fatalf("n=%d width=%d set=%d lane=%d: got %d, want %d",
							n, width, si, s, got[s], want)
					}
				}
				if width == 8 {
					var k8 [8]int32
					IntersectCountStripes8(&k8, idx, word, stripes)
					for s := range k8 {
						if k8[s] != got[s] {
							t.Fatalf("n=%d set=%d lane=%d: unrolled %d != generic %d",
								n, si, s, k8[s], got[s])
						}
					}
				}
				if width == 1 {
					if c := IntersectCountStripes1(idx, word, stripes); c != got[0] {
						t.Fatalf("n=%d set=%d: width-1 form %d != generic %d", n, si, c, got[0])
					}
				}
			}
		}
	}
}

// refCountStripesBinary recomputes CountStripesBinary's contract from the
// generic-width kernel — the pure-Go oracle both the asm and fallback
// forms must match exactly.
func refCountStripesBinary(dst0, dst1, base0, base1 []int32, ln int32, idx []int32, word, stripes []uint64, ntiles, strideWords int) {
	for t := 0; t < ntiles; t++ {
		k := make([]int32, 8)
		IntersectCountStripes(k, 8, idx, word, stripes[t*strideWords:(t+1)*strideWords])
		for s := 0; s < 8; s++ {
			j := t*8 + s
			if base1 != nil {
				dst1[j] = base1[j] - k[s]
				dst0[j] = base0[j] - (ln - k[s])
			} else {
				dst1[j] = k[s]
				dst0[j] = ln - k[s]
			}
		}
	}
}

// TestCountStripesBinaryOracle drives the fused binary-class kernel — both
// the fresh and the Diffset-base write-back forms — against the generic
// reference across tile counts, universes that are not word multiples, and
// adversarial id patterns.
func TestCountStripesBinaryOracle(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 7))
	for _, n := range []int{1, 64, 129, 1000} {
		stride := Words(n) * 8
		for _, ntiles := range []int{1, 3} {
			stripes := make([]uint64, ntiles*stride)
			for tt := 0; tt < ntiles; tt++ {
				lanes := make([][]uint32, 8)
				for s := range lanes {
					lanes[s] = randomIds(rng, n, rng.Float64())
				}
				copy(stripes[tt*stride:], buildStripes(n, 8, lanes))
			}
			for si, ids := range adversarialIdSets(n) {
				idx, word := sparseForm(t, ids)
				ln := int32(len(ids))
				rows := ntiles * 8
				base0, base1 := make([]int32, rows), make([]int32, rows)
				for j := range base0 {
					base0[j] = rng.Int32N(1000)
					base1[j] = rng.Int32N(1000)
				}
				for _, withBase := range []bool{false, true} {
					b0, b1 := base0, base1
					if !withBase {
						b0, b1 = nil, nil
					}
					got0, got1 := make([]int32, rows), make([]int32, rows)
					want0, want1 := make([]int32, rows), make([]int32, rows)
					CountStripesBinary(got0, got1, b0, b1, ln, idx, word, stripes, ntiles, stride)
					refCountStripesBinary(want0, want1, b0, b1, ln, idx, word, stripes, ntiles, stride)
					for j := range got0 {
						if got0[j] != want0[j] || got1[j] != want1[j] {
							t.Fatalf("n=%d ntiles=%d set=%d base=%v j=%d: got (%d,%d), want (%d,%d)",
								n, ntiles, si, withBase, j, got0[j], got1[j], want0[j], want1[j])
						}
					}
				}
			}
		}
	}
}

// TestCountStripesBinaryValidation pins the misuse panics guarding the asm
// kernel: short dst rows, mismatched base rows, short stripes, and idx
// values addressing outside the tile plane must all fail loudly.
func TestCountStripesBinaryValidation(t *testing.T) {
	idx, word := []int32{0}, []uint64{1}
	stripes := make([]uint64, 8)
	ok := make([]int32, 8)
	for name, fn := range map[string]func(){
		"short dst":   func() { CountStripesBinary(make([]int32, 4), ok, nil, nil, 1, idx, word, stripes, 1, 8) },
		"half base":   func() { CountStripesBinary(ok, ok, ok, nil, 1, idx, word, stripes, 1, 8) },
		"short base":  func() { CountStripesBinary(ok, ok, make([]int32, 4), ok, 1, idx, word, stripes, 1, 8) },
		"word len":    func() { CountStripesBinary(ok, ok, nil, nil, 1, idx, nil, stripes, 1, 8) },
		"stripes len": func() { CountStripesBinary(ok, ok, nil, nil, 1, idx, word, stripes, 2, 8) },
		"idx range":   func() { CountStripesBinary(ok, ok, nil, nil, 1, []int32{1}, word, stripes, 1, 8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
	// A zero tile count is a no-op, not an error.
	CountStripesBinary(nil, nil, nil, nil, 1, idx, word, stripes, 0, 8)
}

// TestIntersectCountStripesAccumulates pins the += contract: lane counts
// add to whatever the caller left in k.
func TestIntersectCountStripesAccumulates(t *testing.T) {
	n := 200
	ids := []uint32{0, 5, 64, 199}
	idx, word := sparseForm(t, ids)
	stripes := buildStripes(n, 8, [][]uint32{fullIds(n), nil, ids})
	k := [8]int32{100, 100, 100, 100, 100, 100, 100, 100}
	IntersectCountStripes8(&k, idx, word, stripes)
	if k[0] != 104 || k[1] != 100 || k[2] != 104 {
		t.Fatalf("accumulation broken: %v", k)
	}
}

// TestStripedKernelZeroAllocs pins the steady-state inner loop of the
// blocked kernel — sparse-form fill plus striped AND+popcount into
// preallocated buffers — at exactly zero heap allocations.
func TestStripedKernelZeroAllocs(t *testing.T) {
	n := 1000
	rng := rand.New(rand.NewPCG(3, 3))
	ids := randomIds(rng, n, 0.4)
	stripes := buildStripes(n, 8, [][]uint32{randomIds(rng, n, 0.5), fullIds(n)})
	nz := NonzeroWords(ids)
	idx := make([]int32, nz)
	word := make([]uint64, nz)
	var k [8]int32
	allocs := testing.AllocsPerRun(100, func() {
		FillNonzeroWords(idx, word, ids)
		IntersectCountStripes8(&k, idx, word, stripes)
		k = [8]int32{}
	})
	if allocs != 0 {
		t.Fatalf("striped kernel inner loop allocates %.1f times per run, want 0", allocs)
	}
}

var sinkStripes [8]int32

// Microbenchmarks for the striped kernel at the widths the engine uses,
// against the one-lane-at-a-time baseline (IntersectCountWords per lane).
func benchStripesCase(b *testing.B) (idx []int32, word []uint64, stripes []uint64, laneWords [][]uint64) {
	n := 1000
	rng := rand.New(rand.NewPCG(8, 2))
	ids := randomIds(rng, n, 0.5)
	nz := NonzeroWords(ids)
	idx = make([]int32, nz)
	word = make([]uint64, nz)
	FillNonzeroWords(idx, word, ids)
	lanes := make([][]uint32, 8)
	laneWords = make([][]uint64, 8)
	for s := range lanes {
		lanes[s] = randomIds(rng, n, 0.5)
		laneWords[s] = make([]uint64, Words(n))
		SetWords(laneWords[s], lanes[s])
	}
	stripes = buildStripes(n, 8, lanes)
	b.ReportAllocs()
	b.ResetTimer()
	return
}

func BenchmarkIntersectCountStripes8(b *testing.B) {
	idx, word, stripes, _ := benchStripesCase(b)
	for i := 0; i < b.N; i++ {
		var k [8]int32
		IntersectCountStripes8(&k, idx, word, stripes)
		sinkStripes = k
	}
}

func BenchmarkIntersectCountStripesGeneric8(b *testing.B) {
	idx, word, stripes, _ := benchStripesCase(b)
	k := make([]int32, 8)
	for i := 0; i < b.N; i++ {
		clear(k)
		IntersectCountStripes(k, 8, idx, word, stripes)
		sinkStripes[0] = k[0]
	}
}

func BenchmarkCountStripesBinary(b *testing.B) {
	idx, word, stripes, _ := benchStripesCase(b)
	stride := len(stripes)
	dst0, dst1 := make([]int32, 8), make([]int32, 8)
	base0, base1 := make([]int32, 8), make([]int32, 8)
	for i := 0; i < b.N; i++ {
		CountStripesBinary(dst0, dst1, base0, base1, 500, idx, word, stripes, 1, stride)
		sinkStripes[0] = dst0[0]
	}
}

func BenchmarkIntersectCountPerLane(b *testing.B) {
	idx, word, _, laneWords := benchStripesCase(b)
	full := make([]uint64, Words(1000))
	for t, wi := range idx {
		full[wi] = word[t]
	}
	for i := 0; i < b.N; i++ {
		var k [8]int32
		for s := range laneWords {
			k[s] = int32(IntersectCountWords(full, laneWords[s]))
		}
		sinkStripes = k
	}
}
