package intset

import "testing"

// TestStripedKernelGoFallback re-runs the striped-kernel oracle suites
// with the AVX-512 kernel forced off, so amd64 runs also cover the
// pure-Go forms every other architecture depends on. useAsmKernel is only
// flipped here, serially, before any parallel subtests exist.
func TestStripedKernelGoFallback(t *testing.T) {
	if !useAsmKernel {
		t.Skip("asm kernel unavailable; the Go path is already what every test runs")
	}
	useAsmKernel = false
	defer func() { useAsmKernel = true }()
	t.Run("stripes8", TestIntersectCountStripesOracle)
	t.Run("binary", TestCountStripesBinaryOracle)
}
