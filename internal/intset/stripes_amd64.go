package intset

// useAsmKernel gates the AVX-512 striped kernels in stripes_amd64.s. It is
// a variable (not a const) so tests can force the pure-Go fallback on
// machines that have the instructions.
var useAsmKernel = hasAVX512Popcnt()

// hasAVX512Popcnt reports whether the CPU and OS support the kernels'
// instruction set: AVX2, AVX512F, AVX512VPOPCNTDQ, and zmm register state
// enabled in XCR0.
func hasAVX512Popcnt() bool

//go:noescape
func intersectCountStripes8Asm(k *[8]int32, idx *int32, n int, word *uint64, stripes *uint64)

//go:noescape
func countStripes2Asm(dst0, dst1, base0, base1 *int32, ln int32, idx *int32, nIdx int, word *uint64, stripes *uint64, ntiles, strideWords int)
