package intset

import "math/bits"

// This file holds the striped word-parallel counting primitives behind the
// permutation engine's blocked kernel (DESIGN.md §8). A tid-list is kept in
// sparse word form — the indices and 64-bit bitmaps of only its occupied
// words (NonzeroWords / FillNonzeroWords) — and intersect-counted against a
// striped matrix that interleaves the same bitmap word of `width`
// consecutive permutations: stripes[w*width + s] is word w of stripe lane
// s. One pass over the sparse words then counts the whole block of
// permutations, loading each tid word once and AND+popcounting it against
// width label words that sit adjacent in memory.

// NonzeroWords returns the number of distinct 64-bit words occupied by the
// strictly increasing ids — the length FillNonzeroWords needs.
//
//armine:noalloc
func NonzeroWords(ids []uint32) int {
	n := 0
	last := -1
	for _, x := range ids {
		if w := int(x >> 6); w != last {
			n++
			last = w
		}
	}
	return n
}

// FillNonzeroWords writes the sparse word form of ids: idx[t] is the t-th
// occupied word index (ascending) and word[t] the 64-bit bitmap of the ids
// falling in it. Both slices must have length NonzeroWords(ids).
//
//armine:noalloc
func FillNonzeroWords(idx []int32, word []uint64, ids []uint32) {
	k := -1
	last := int32(-1)
	for _, x := range ids {
		if w := int32(x >> 6); w != last {
			k++
			idx[k] = w
			word[k] = 0
			last = w
		}
		word[k] |= 1 << (x & 63)
	}
}

// IntersectCountStripes adds, for every stripe lane s in [0, width), the
// intersection count of the sparse word set (idx, word) against lane s of
// the striped matrix:
//
//	k[s] += Σ_t popcount(word[t] & stripes[int(idx[t])*width + s])
//
// len(k) must be at least width. This is the generic-width reference form;
// the engine's hot path uses the unrolled IntersectCountStripes8.
//
//armine:noalloc
func IntersectCountStripes(k []int32, width int, idx []int32, word, stripes []uint64) {
	for t, wi := range idx {
		w := word[t]
		seg := stripes[int(wi)*width : int(wi)*width+width]
		for s, sw := range seg {
			k[s] += int32(bits.OnesCount64(w & sw))
		}
	}
}

// IntersectCountStripes8 is IntersectCountStripes specialised and unrolled
// for width 8 — the blocked kernel's stripe width. On amd64 with
// AVX512VPOPCNTDQ one 512-bit lane holds a whole tile row, so each tid
// word costs one AND and one vector popcount; elsewhere the eight lane
// counts accumulate in scalar registers.
//
//armine:noalloc
func IntersectCountStripes8(k *[8]int32, idx []int32, word, stripes []uint64) {
	if useAsmKernel && len(idx) > 0 {
		intersectCountStripes8Asm(k, &idx[0], len(idx), &word[0], &stripes[0])
		return
	}
	intersectCountStripes8Go(k, idx, word, stripes)
}

//armine:noalloc
func intersectCountStripes8Go(k *[8]int32, idx []int32, word, stripes []uint64) {
	var c0, c1, c2, c3, c4, c5, c6, c7 int32
	for t, wi := range idx {
		w := word[t]
		seg := stripes[int(wi)*8 : int(wi)*8+8]
		c0 += int32(bits.OnesCount64(w & seg[0]))
		c1 += int32(bits.OnesCount64(w & seg[1]))
		c2 += int32(bits.OnesCount64(w & seg[2]))
		c3 += int32(bits.OnesCount64(w & seg[3]))
		c4 += int32(bits.OnesCount64(w & seg[4]))
		c5 += int32(bits.OnesCount64(w & seg[5]))
		c6 += int32(bits.OnesCount64(w & seg[6]))
		c7 += int32(bits.OnesCount64(w & seg[7]))
	}
	k[0] += c0
	k[1] += c1
	k[2] += c2
	k[3] += c3
	k[4] += c4
	k[5] += c5
	k[6] += c6
	k[7] += c7
}

// CountStripesBinary is the fused binary-class form of the blocked kernel:
// it intersect-counts the sparse word set (idx, word) against ntiles
// consecutive stripe tiles and writes both class rows of the count matrix
// in the same pass. Tile t's class-1 plane starts at stripes[t*strideWords]
// with the width-8 lane layout (lane word w at offset w*8); for lane s and
// output position j = t*8 + s, with k the lane's intersection count:
//
//	base nil:     dst1[j] = k            dst0[j] = ln - k
//	base non-nil: dst1[j] = base1[j] - k dst0[j] = base0[j] - (ln - k)
//
// ln is the total size of the id set, so ln-k is its class-0 count under
// that permutation; the base form fuses the Diffset subtraction of the
// permutation engine (DESIGN.md §8). base0 and base1 must be both nil or
// both set. dst and base rows need ntiles*8 elements and stripes
// ntiles*strideWords words; every idx value must address a word inside the
// plane (idx[t]*8+8 <= strideWords).
//
//armine:noalloc
func CountStripesBinary(dst0, dst1, base0, base1 []int32, ln int32, idx []int32, word, stripes []uint64, ntiles, strideWords int) {
	if ntiles <= 0 {
		return
	}
	need := ntiles * 8
	if len(dst0) < need || len(dst1) < need {
		panic("intset: CountStripesBinary dst shorter than ntiles*8")
	}
	if (base0 != nil) != (base1 != nil) {
		panic("intset: CountStripesBinary base rows must be both nil or both set")
	}
	if base0 != nil && (len(base0) < need || len(base1) < need) {
		panic("intset: CountStripesBinary base shorter than ntiles*8")
	}
	if len(word) != len(idx) {
		panic("intset: CountStripesBinary sparse-form length mismatch")
	}
	if len(stripes) < ntiles*strideWords {
		panic("intset: CountStripesBinary stripes shorter than ntiles*strideWords")
	}
	for _, wi := range idx {
		if int(wi)*8+8 > strideWords {
			panic("intset: CountStripesBinary idx outside tile plane")
		}
	}
	if useAsmKernel {
		var b0, b1 *int32
		if base0 != nil {
			b0, b1 = &base0[0], &base1[0]
		}
		var ip *int32
		var wp *uint64
		if len(idx) > 0 {
			ip, wp = &idx[0], &word[0]
		}
		countStripes2Asm(&dst0[0], &dst1[0], b0, b1, ln, ip, len(idx), wp, &stripes[0], ntiles, strideWords)
		return
	}
	for t := 0; t < ntiles; t++ {
		var k [8]int32
		intersectCountStripes8Go(&k, idx, word, stripes[t*strideWords:(t+1)*strideWords])
		d0, d1 := dst0[t*8:t*8+8], dst1[t*8:t*8+8]
		if base1 != nil {
			b0, b1 := base0[t*8:t*8+8], base1[t*8:t*8+8]
			for s := 0; s < 8; s++ {
				d1[s] = b1[s] - k[s]
				d0[s] = b0[s] - (ln - k[s])
			}
		} else {
			for s := 0; s < 8; s++ {
				d1[s] = k[s]
				d0[s] = ln - k[s]
			}
		}
	}
}

// IntersectCountStripes1 is the width-1 degenerate form: a plain sparse
// AND+popcount of (idx, word) against one unstriped bitmap. It serves the
// DisableBlockedCounting ablation, where the label matrix stores each
// permutation's words contiguously.
//
//armine:noalloc
func IntersectCountStripes1(idx []int32, word, stripes []uint64) int32 {
	var c int32
	for t, wi := range idx {
		c += int32(bits.OnesCount64(word[t] & stripes[wi]))
	}
	return c
}
