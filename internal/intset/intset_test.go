package intset

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestIntersectBasic(t *testing.T) {
	cases := []struct{ a, b, want []uint32 }{
		{nil, nil, nil},
		{[]uint32{1, 2, 3}, nil, nil},
		{[]uint32{1, 2, 3}, []uint32{2, 3, 4}, []uint32{2, 3}},
		{[]uint32{1, 3, 5}, []uint32{2, 4, 6}, nil},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}, []uint32{1, 2, 3}},
		{[]uint32{0, 100, 200}, []uint32{100}, []uint32{100}},
	}
	for _, c := range cases {
		got := Intersect(c.a, c.b)
		if !Equal(got, c.want) {
			t.Errorf("Intersect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if n := IntersectCount(c.a, c.b); n != len(c.want) {
			t.Errorf("IntersectCount(%v, %v) = %d, want %d", c.a, c.b, n, len(c.want))
		}
	}
}

func TestDiffBasic(t *testing.T) {
	cases := []struct{ a, b, want []uint32 }{
		{nil, nil, nil},
		{[]uint32{1, 2, 3}, nil, []uint32{1, 2, 3}},
		{[]uint32{1, 2, 3}, []uint32{2}, []uint32{1, 3}},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}, nil},
		{[]uint32{1, 2, 3}, []uint32{0, 4}, []uint32{1, 2, 3}},
	}
	for _, c := range cases {
		got := Diff(c.a, c.b)
		if !Equal(got, c.want) {
			t.Errorf("Diff(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestUnionBasic(t *testing.T) {
	got := Union([]uint32{1, 3, 5}, []uint32{2, 3, 6})
	want := []uint32{1, 2, 3, 5, 6}
	if !Equal(got, want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
}

func TestSubsetContains(t *testing.T) {
	a := []uint32{2, 4, 6}
	b := []uint32{1, 2, 3, 4, 5, 6}
	if !Subset(a, b) {
		t.Error("Subset(a, b) = false, want true")
	}
	if Subset(b, a) {
		t.Error("Subset(b, a) = true, want false")
	}
	if !Subset(nil, a) {
		t.Error("Subset(nil, a) = false, want true")
	}
	for _, x := range a {
		if !Contains(b, x) {
			t.Errorf("Contains(b, %d) = false", x)
		}
	}
	if Contains(a, 3) {
		t.Error("Contains(a, 3) = true, want false")
	}
}

// randomSorted returns a random strictly increasing slice over [0, 256).
func randomSorted(rng *rand.Rand) []uint32 {
	n := rng.IntN(40)
	seen := make(map[uint32]bool, n)
	for len(seen) < n {
		seen[uint32(rng.IntN(256))] = true
	}
	out := make([]uint32, 0, n)
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestSetOpsAgainstMaps(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 500; trial++ {
		a, b := randomSorted(rng), randomSorted(rng)
		inB := make(map[uint32]bool)
		for _, v := range b {
			inB[v] = true
		}
		var wantI, wantD []uint32
		for _, v := range a {
			if inB[v] {
				wantI = append(wantI, v)
			} else {
				wantD = append(wantD, v)
			}
		}
		if got := Intersect(a, b); !Equal(got, wantI) {
			t.Fatalf("Intersect(%v, %v) = %v, want %v", a, b, got, wantI)
		}
		if got := Diff(a, b); !Equal(got, wantD) {
			t.Fatalf("Diff(%v, %v) = %v, want %v", a, b, got, wantD)
		}
		if got := IntersectCount(a, b); got != len(wantI) {
			t.Fatalf("IntersectCount = %d, want %d", got, len(wantI))
		}
		u := Union(a, b)
		if !IsSorted(u) {
			t.Fatalf("Union not sorted: %v", u)
		}
		if len(u) != len(a)+len(b)-len(wantI) {
			t.Fatalf("Union size = %d, want %d", len(u), len(a)+len(b)-len(wantI))
		}
	}
}

func TestQuickIntersectSubsetOfBoth(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := dedupSorted(xs)
		b := dedupSorted(ys)
		i := Intersect(a, b)
		return Subset(i, a) && Subset(i, b) && IsSorted(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDiffDisjointFromB(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := dedupSorted(xs)
		b := dedupSorted(ys)
		d := Diff(a, b)
		return IntersectCount(d, b) == 0 && len(d)+IntersectCount(a, b) == len(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func dedupSorted(xs []uint16) []uint32 {
	seen := make(map[uint32]bool)
	for _, x := range xs {
		seen[uint32(x)] = true
	}
	out := make([]uint32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestBitset(t *testing.T) {
	b := NewBitset(200)
	ids := []uint32{0, 1, 63, 64, 65, 127, 128, 199}
	for _, id := range ids {
		b.Set(uint(id))
	}
	if got := b.Count(); got != len(ids) {
		t.Errorf("Count = %d, want %d", got, len(ids))
	}
	for _, id := range ids {
		if !b.Has(uint(id)) {
			t.Errorf("Has(%d) = false", id)
		}
	}
	if b.Has(2) || b.Has(198) {
		t.Error("Has reports elements that were never set")
	}
	if got := b.Slice(nil); !Equal(got, ids) {
		t.Errorf("Slice = %v, want %v", got, ids)
	}
	b.Clear(63)
	if b.Has(63) {
		t.Error("Has(63) = true after Clear")
	}
	if got := b.Count(); got != len(ids)-1 {
		t.Errorf("Count after Clear = %d, want %d", got, len(ids)-1)
	}
}

func TestBitsetAndCount(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 200; trial++ {
		a, b := randomSorted(rng), randomSorted(rng)
		ba := FromSlice(256, a)
		bb := FromSlice(256, b)
		if got, want := ba.AndCount(bb), IntersectCount(a, b); got != want {
			t.Fatalf("AndCount = %d, want %d (a=%v b=%v)", got, want, a, b)
		}
	}
}

func TestBitsetReset(t *testing.T) {
	b := FromSlice(100, []uint32{1, 50, 99})
	b.Reset()
	if b.Count() != 0 {
		t.Errorf("Count after Reset = %d, want 0", b.Count())
	}
}

func TestIntersectIntoReuse(t *testing.T) {
	buf := make([]uint32, 0, 16)
	a := []uint32{1, 2, 3, 4}
	b := []uint32{2, 4, 6}
	got := IntersectInto(buf, a, b)
	if !Equal(got, []uint32{2, 4}) {
		t.Errorf("IntersectInto = %v", got)
	}
	got2 := DiffInto(buf, a, b)
	if !Equal(got2, []uint32{1, 3}) {
		t.Errorf("DiffInto = %v", got2)
	}
}

// randomSet returns a sorted, strictly increasing random subset of
// [0, universe) with the given density.
func randomSet(rng *rand.Rand, universe int, density float64) []uint32 {
	var out []uint32
	for i := 0; i < universe; i++ {
		if rng.Float64() < density {
			out = append(out, uint32(i))
		}
	}
	return out
}

func TestBitsetIntersectSliceAndContainsAll(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for iter := 0; iter < 50; iter++ {
		universe := 1 + rng.IntN(500)
		a := randomSet(rng, universe, 0.3)
		b := randomSet(rng, universe, 0.5)
		bs := FromSlice(universe, b)
		got := bs.IntersectSliceInto(nil, a)
		want := Intersect(a, b)
		if !Equal(got, want) {
			t.Fatalf("IntersectSliceInto = %v, want %v", got, want)
		}
		if bs.ContainsAll(a) != Subset(a, b) {
			t.Fatalf("ContainsAll(%v) over %v disagrees with Subset", a, b)
		}
		if !bs.ContainsAll(want) {
			t.Fatalf("ContainsAll of the intersection must hold")
		}
	}
}

func TestRepMatchesSliceSemantics(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 3))
	for iter := 0; iter < 60; iter++ {
		universe := 1 + rng.IntN(800)
		// Mix sparse and dense sets so both Rep paths are exercised.
		density := []float64{0.01, 0.1, 0.4, 0.9}[rng.IntN(4)]
		ids := randomSet(rng, universe, density)
		a := randomSet(rng, universe, 0.2)
		r := NewRep(universe, ids)
		if r.Len() != len(ids) {
			t.Fatalf("Len = %d, want %d", r.Len(), len(ids))
		}
		if got, want := r.Intersect(a), Intersect(a, ids); !Equal(got, want) {
			t.Fatalf("dense=%v: Rep.Intersect = %v, want %v", r.Dense(), got, want)
		}
		if got, want := r.ContainsAll(a), Subset(a, ids); got != want {
			t.Fatalf("dense=%v: Rep.ContainsAll = %v, want %v", r.Dense(), got, want)
		}
		sub := r.Intersect(a)
		if !r.ContainsAll(sub) {
			t.Fatal("Rep must contain its own intersection output")
		}
	}
}

func TestRepDensityChoice(t *testing.T) {
	universe := 1024
	dense := make([]uint32, 0, universe/2)
	for i := 0; i < universe; i += 2 {
		dense = append(dense, uint32(i))
	}
	if !NewRep(universe, dense).Dense() {
		t.Error("half-full set should use the bitset path")
	}
	sparse := []uint32{1, 5, 900}
	if NewRep(universe, sparse).Dense() {
		t.Error("3-element set should stay slice-only")
	}
	if NewRep(0, nil).Dense() {
		t.Error("empty universe should stay slice-only")
	}
}
