//go:build !amd64

package intset

// useAsmKernel is false off amd64: the pure-Go striped kernels are the
// only implementation, and the stubs below are never reached.
const useAsmKernel = false

func intersectCountStripes8Asm(k *[8]int32, idx *int32, n int, word *uint64, stripes *uint64) {
	panic("intset: no asm kernel on this architecture")
}

func countStripes2Asm(dst0, dst1, base0, base1 *int32, ln int32, idx *int32, nIdx int, word *uint64, stripes *uint64, ntiles, strideWords int) {
	panic("intset: no asm kernel on this architecture")
}
