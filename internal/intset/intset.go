// Package intset provides sorted uint32 id-list and fixed-size bitset
// utilities. Both representations are used throughout the miner for record
// id lists ("tid-lists"): sorted slices when lists are sparse and the code
// walks them element by element, bitsets when constant-time membership or
// bulk intersection counting is needed. Rep bundles the two adaptively: it
// always keeps the sorted slice and adds a bitset when the set is dense
// relative to its universe, so hot intersections against dense sets become
// membership probes instead of merge loops.
//
// The word-level layer (Words, SetWords/ClearWords, IntersectCountWords,
// and the striped NonzeroWords/IntersectCountStripes family) underpins the
// permutation engine's word-parallel counting: a tid-list packed into a
// []uint64 bitmap intersect-counts against another bitmap at 64 elements
// per AND+popcount instead of one element per merge step, and the striped
// forms count a whole block of permutations per pass over the tid words.
// Arena is a generic bump allocator with checkpoint/rewind, so recursive
// walks reuse scratch instead of reallocating it.
//
// All slice-based functions require their inputs to be strictly increasing;
// they never modify their inputs and allocate only when documented.
package intset

import "math/bits"

// Intersect returns the sorted intersection of two strictly increasing
// slices. The result is newly allocated (capacity = min(len(a), len(b))).
func Intersect(a, b []uint32) []uint32 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]uint32, 0, n)
	return IntersectInto(out, a, b)
}

// IntersectInto appends the sorted intersection of a and b to dst and
// returns the extended slice. dst must not alias a or b.
func IntersectInto(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// IntersectCount returns |a ∩ b| without allocating.
func IntersectCount(a, b []uint32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Diff returns the sorted set difference a \ b (elements of a not in b).
// The result is newly allocated.
func Diff(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a))
	return DiffInto(out, a, b)
}

// DiffInto appends a \ b to dst and returns the extended slice.
// dst must not alias a or b.
func DiffInto(dst, a, b []uint32) []uint32 {
	i, j := 0, 0
	for i < len(a) {
		if j >= len(b) || a[i] < b[j] {
			dst = append(dst, a[i])
			i++
		} else if a[i] > b[j] {
			j++
		} else {
			i++
			j++
		}
	}
	return dst
}

// Union returns the sorted union of two strictly increasing slices.
func Union(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Subset reports whether every element of a is contained in b.
func Subset(a, b []uint32) bool {
	if len(a) > len(b) {
		return false
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			return false
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return i == len(a)
}

// Contains reports whether the strictly increasing slice a contains x,
// using binary search.
func Contains(a []uint32, x uint32) bool {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == x
}

// Equal reports whether a and b hold the same elements.
func Equal(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IsSorted reports whether a is strictly increasing (the invariant every
// function in this package requires of its inputs).
func IsSorted(a []uint32) bool {
	for i := 1; i < len(a); i++ {
		if a[i] <= a[i-1] {
			return false
		}
	}
	return true
}

// Bitset is a fixed-capacity set of non-negative integers backed by a
// []uint64. The zero value is an empty set of capacity zero; use NewBitset
// to create one with room for n elements.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitset returns an empty bitset able to hold values in [0, n).
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// FromSlice returns a bitset of capacity n containing the given ids.
func FromSlice(n int, ids []uint32) *Bitset {
	b := NewBitset(n)
	for _, id := range ids {
		b.Set(uint(id))
	}
	return b
}

// Len returns the capacity (in bits) of the set.
func (b *Bitset) Len() int { return b.n }

// Set adds i to the set. i must be < Len().
func (b *Bitset) Set(i uint) { b.words[i>>6] |= 1 << (i & 63) }

// Clear removes i from the set.
func (b *Bitset) Clear(i uint) { b.words[i>>6] &^= 1 << (i & 63) }

// Has reports whether i is in the set.
func (b *Bitset) Has(i uint) bool { return b.words[i>>6]&(1<<(i&63)) != 0 }

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// AndCount returns |b ∩ o| without materialising the intersection.
// The two sets must have equal capacity.
func (b *Bitset) AndCount(o *Bitset) int {
	n := 0
	for i, w := range b.words {
		n += bits.OnesCount64(w & o.words[i])
	}
	return n
}

// Words exposes the set's backing bitmap. The returned slice is the live
// storage, not a copy — callers must treat it as read-only.
func (b *Bitset) Words() []uint64 { return b.words }

// IntersectCountWords returns |b ∩ ws| where ws is a word bitmap over the
// same universe: popcount(b & ws) over the shorter operand, one AND per 64
// elements.
func (b *Bitset) IntersectCountWords(ws []uint64) int {
	return IntersectCountWords(b.words, ws)
}

// IntersectSliceInto appends a ∩ b to dst by membership-testing each
// element of the strictly increasing slice a against the bitset — O(len(a))
// regardless of the bitset's population. dst must not alias a.
func (b *Bitset) IntersectSliceInto(dst, a []uint32) []uint32 {
	for _, x := range a {
		if b.words[x>>6]&(1<<(x&63)) != 0 {
			dst = append(dst, x)
		}
	}
	return dst
}

// ContainsAll reports whether every element of a is in the set.
func (b *Bitset) ContainsAll(a []uint32) bool {
	for _, x := range a {
		if b.words[x>>6]&(1<<(x&63)) == 0 {
			return false
		}
	}
	return true
}

// Reset removes all elements.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Slice appends the elements of the set to dst in increasing order and
// returns the extended slice.
func (b *Bitset) Slice(dst []uint32) []uint32 {
	for wi, w := range b.words {
		base := uint32(wi * 64)
		for w != 0 {
			dst = append(dst, base+uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return dst
}

// Words returns the number of uint64 words needed to hold a bitmap over a
// universe of n elements.
func Words(n int) int { return (n + 63) / 64 }

// SetWords sets the bit of every id in the bitmap ws. ids values must be
// < 64*len(ws). O(len(ids)).
func SetWords(ws []uint64, ids []uint32) {
	for _, x := range ids {
		ws[x>>6] |= 1 << (x & 63)
	}
}

// ClearWords clears the bit of every id in the bitmap ws — the O(len(ids))
// inverse of SetWords, so a scratch bitmap is reset without touching the
// full universe.
func ClearWords(ws []uint64, ids []uint32) {
	for _, x := range ids {
		ws[x>>6] &^= 1 << (x & 63)
	}
}

// IntersectCountWords returns the number of elements common to two word
// bitmaps: popcount(a & b) over the shorter of the two. This is the
// word-parallel counterpart of IntersectCount — 64 universe elements per
// AND+popcount.
func IntersectCountWords(a, b []uint64) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	n := 0
	for i, w := range a {
		n += bits.OnesCount64(w & b[i])
	}
	return n
}

// denseShift sets the adaptive density cut-off: a tid-set covering at
// least universe>>denseShift records (≥ 1/8 of the universe) gets a bitset
// alongside its sorted slice. Below that, the bitset's memory (universe/8
// bytes) and construction cost outweigh the membership-test savings.
const denseShift = 3

// denseMin is the minimum element count before a bitset is worthwhile at
// all; tiny sets are faster as plain merge loops whatever their density.
const denseMin = 64

// Rep is an adaptive tid-set representation: the sorted slice is always
// present, and sets dense relative to their universe additionally carry a
// bitset so intersections and subset tests against them cost O(len(other))
// membership probes instead of an O(len(a)+len(b)) merge loop.
//
// Rep is immutable after construction and safe for concurrent readers.
type Rep struct {
	// Ids is the sorted tid-list (always valid).
	Ids  []uint32
	bits *Bitset // non-nil iff the set is dense
}

// NewRep wraps ids (strictly increasing, values < universe) in a Rep,
// building the bitset when the set is dense. The slice is retained, not
// copied.
func NewRep(universe int, ids []uint32) *Rep {
	r := &Rep{Ids: ids}
	if len(ids) >= denseMin && universe > 0 && len(ids) >= universe>>denseShift {
		r.bits = FromSlice(universe, ids)
	}
	return r
}

// Dense reports whether the Rep carries a bitset.
func (r *Rep) Dense() bool { return r.bits != nil }

// Len returns the number of elements.
func (r *Rep) Len() int { return len(r.Ids) }

// IntersectInto appends a ∩ r to dst and returns the extended slice,
// choosing the membership-probe path when the Rep is dense. dst must not
// alias a.
func (r *Rep) IntersectInto(dst, a []uint32) []uint32 {
	if r.bits != nil {
		return r.bits.IntersectSliceInto(dst, a)
	}
	return IntersectInto(dst, a, r.Ids)
}

// Intersect returns a newly allocated a ∩ r.
func (r *Rep) Intersect(a []uint32) []uint32 {
	n := len(a)
	if len(r.Ids) < n {
		n = len(r.Ids)
	}
	return r.IntersectInto(make([]uint32, 0, n), a)
}

// Words is the zero-build fast path into word-parallel counting: it
// returns the Rep's backing bitmap when the Rep is dense (treat as
// read-only), or nil when only the sorted slice exists and callers must
// pack a bitmap (e.g. via SetWords) themselves.
func (r *Rep) Words() []uint64 {
	if r.bits == nil {
		return nil
	}
	return r.bits.words
}

// ContainsAll reports whether a ⊆ r.
func (r *Rep) ContainsAll(a []uint32) bool {
	if len(a) > len(r.Ids) {
		return false
	}
	if r.bits != nil {
		return r.bits.ContainsAll(a)
	}
	return Subset(a, r.Ids)
}
