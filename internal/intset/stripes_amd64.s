// AVX-512 forms of the striped counting primitives (DESIGN.md §8). A
// stripe tile interleaves the same bitmap word of 8 consecutive
// permutations, so one 512-bit lane holds exactly one tile row: VPANDQ +
// VPOPCNTQ count all 8 lanes of a tid word in two instructions. Guarded
// at runtime by hasAVX512Popcnt (AVX2 + AVX512F + AVX512VPOPCNTDQ + OS
// zmm state); the pure-Go forms in stripes.go remain the fallback and
// the oracle.

#include "textflag.h"

// func hasAVX512Popcnt() bool
TEXT ·hasAVX512Popcnt(SB), NOSPLIT, $0-1
	// Max basic CPUID leaf must reach 7.
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JL   no

	// Leaf 1 ECX: OSXSAVE (bit 27) and AVX (bit 28).
	MOVL  $1, AX
	MOVL  $0, CX
	CPUID
	MOVL  CX, DI
	ANDL  $0x18000000, DI
	CMPL  DI, $0x18000000
	JNE   no

	// XCR0: SSE+AVX state (bits 1-2) and opmask+zmm state (bits 5-7).
	MOVL   $0, CX
	XGETBV
	ANDL   $0xe6, AX
	CMPL   AX, $0xe6
	JNE    no

	// Leaf 7 subleaf 0: EBX AVX2 (bit 5) + AVX512F (bit 16),
	// ECX AVX512VPOPCNTDQ (bit 14).
	MOVL  $7, AX
	MOVL  $0, CX
	CPUID
	MOVL  BX, DI
	ANDL  $0x10020, DI
	CMPL  DI, $0x10020
	JNE   no
	TESTL $0x4000, CX
	JZ    no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func intersectCountStripes8Asm(k *[8]int32, idx *int32, n int, word *uint64, stripes *uint64)
//
// Z0/Z5 accumulate the 8 lane counts as int64 (two chains to hide the
// popcount latency); the epilogue narrows to int32 (counts are bounded by
// the universe size) and adds into *k.
TEXT ·intersectCountStripes8Asm(SB), NOSPLIT, $0-40
	MOVQ   k+0(FP), DI
	MOVQ   idx+8(FP), SI
	MOVQ   n+16(FP), CX
	MOVQ   word+24(FP), R8
	MOVQ   stripes+32(FP), R9
	VPXORQ Z0, Z0, Z0
	VPXORQ Z5, Z5, Z5

pair:
	CMPQ         CX, $2
	JL           tail
	MOVLQSX      (SI), AX
	MOVLQSX      4(SI), BX
	SHLQ         $6, AX               // idx[t] * 8 lanes * 8 bytes
	SHLQ         $6, BX
	VPBROADCASTQ (R8), Z1
	VPANDQ       (R9)(AX*1), Z1, Z1
	VPOPCNTQ     Z1, Z1
	VPADDQ       Z1, Z0, Z0
	VPBROADCASTQ 8(R8), Z2
	VPANDQ       (R9)(BX*1), Z2, Z2
	VPOPCNTQ     Z2, Z2
	VPADDQ       Z2, Z5, Z5
	ADDQ         $8, SI
	ADDQ         $16, R8
	SUBQ         $2, CX
	JMP          pair

tail:
	TESTQ        CX, CX
	JZ           done
	MOVLQSX      (SI), AX
	SHLQ         $6, AX
	VPBROADCASTQ (R8), Z1
	VPANDQ       (R9)(AX*1), Z1, Z1
	VPOPCNTQ     Z1, Z1
	VPADDQ       Z1, Z0, Z0

done:
	VPADDQ     Z5, Z0, Z0
	VPMOVQD    Z0, Y0
	VMOVDQU    (DI), Y1
	VPADDD     Y0, Y1, Y1
	VMOVDQU    Y1, (DI)
	VZEROUPPER
	RET

// func countStripes2Asm(dst0, dst1, base0, base1 *int32, ln int32, idx *int32, nIdx int, word *uint64, stripes *uint64, ntiles, strideWords int)
//
// Fused binary-class node kernel: for each of ntiles consecutive tiles,
// intersect-count the sparse words against the tile's class-1 plane
// (Z0/Z5 dual accumulator chains, two words per iteration) and write both
// derived class rows (see CountStripesBinary). Y4 holds ln broadcast
// across lanes.
TEXT ·countStripes2Asm(SB), NOSPLIT, $0-88
	MOVQ         dst0+0(FP), DI
	MOVQ         dst1+8(FP), R10
	MOVQ         base0+16(FP), R11
	MOVQ         base1+24(FP), R12
	MOVL         ln+32(FP), AX
	MOVQ         AX, X4
	VPBROADCASTD X4, Y4
	MOVQ         stripes+64(FP), R9
	MOVQ         ntiles+72(FP), R13
	MOVQ         strideWords+80(FP), R14
	SHLQ         $3, R14              // stride in bytes

tile:
	TESTQ  R13, R13
	JZ     end
	MOVQ   idx+40(FP), SI
	MOVQ   word+56(FP), R8
	MOVQ   nIdx+48(FP), CX
	VPXORQ Z0, Z0, Z0
	VPXORQ Z5, Z5, Z5

words:
	CMPQ         CX, $2
	JL           wtail
	MOVLQSX      (SI), AX
	MOVLQSX      4(SI), BX
	SHLQ         $6, AX
	SHLQ         $6, BX
	VPBROADCASTQ (R8), Z1
	VPANDQ       (R9)(AX*1), Z1, Z1
	VPOPCNTQ     Z1, Z1
	VPADDQ       Z1, Z0, Z0
	VPBROADCASTQ 8(R8), Z2
	VPANDQ       (R9)(BX*1), Z2, Z2
	VPOPCNTQ     Z2, Z2
	VPADDQ       Z2, Z5, Z5
	ADDQ         $8, SI
	ADDQ         $16, R8
	SUBQ         $2, CX
	JMP          words

wtail:
	TESTQ        CX, CX
	JZ           rows
	MOVLQSX      (SI), AX
	SHLQ         $6, AX
	VPBROADCASTQ (R8), Z1
	VPANDQ       (R9)(AX*1), Z1, Z1
	VPOPCNTQ     Z1, Z1
	VPADDQ       Z1, Z0, Z0

rows:
	VPADDQ  Z5, Z0, Z0
	VPMOVQD Z0, Y0        // k_1, 8 x int32
	VPSUBD  Y0, Y4, Y1    // k_0 = ln - k_1
	TESTQ   R12, R12
	JZ      fresh

	// Diffset write-back: dst_c = base_c - k_c.
	VMOVDQU (R12), Y2
	VPSUBD  Y0, Y2, Y2
	VMOVDQU Y2, (R10)
	VMOVDQU (R11), Y3
	VPSUBD  Y1, Y3, Y3
	VMOVDQU Y3, (DI)
	ADDQ    $32, R11
	ADDQ    $32, R12
	JMP     next

fresh:
	VMOVDQU Y0, (R10)
	VMOVDQU Y1, (DI)

next:
	ADDQ $32, DI
	ADDQ $32, R10
	ADDQ R14, R9
	DECQ R13
	JMP  tile

end:
	VZEROUPPER
	RET
