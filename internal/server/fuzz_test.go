package server

import (
	"encoding/json"
	"testing"

	"repro/internal/core"
)

// FuzzConfigJSON drives the server wire codec with arbitrary request
// bodies: decoding plus ToConfig must never panic, and any config the
// codec accepts must round-trip through the normalization the mining
// session applies (enum strings parse back, adaptive budgets positive).
func FuzzConfigJSON(f *testing.F) {
	f.Add(`{}`)
	f.Add(`{"min_sup": 30, "method": "direct", "control": "fdr"}`)
	f.Add(`{"min_sup_frac": 0.05, "method": "permutation", "permutations": 100, "seed": 7}`)
	f.Add(`{"method": "permutation", "adaptive": {"max_perms": 1000}}`)
	f.Add(`{"method": "permutation", "adaptive": {"min_perms": 50, "max_perms": 200, "exceedances": -1}}`)
	f.Add(`{"adaptive": {"max_perms": 0}}`)
	f.Add(`{"adaptive": {"max_perms": -3}}`)
	f.Add(`{"method": "holdout", "holdout_random": true}`)
	f.Add(`{"method": "bogus"}`)
	f.Add(`{"control": "neither"}`)
	f.Add(`{"test": "chi2", "redundancy_epsilon": 0.1}`)
	f.Add(`{"alpha": 1e308, "workers": -5, "max_len": 9999999}`)
	f.Add(`{"min_sup": -1, "permutations": -100}`)
	f.Add(`[1,2,3]`)
	f.Add(`"just a string"`)
	f.Add(`{"adaptive": null}`)

	f.Fuzz(func(t *testing.T, body string) {
		var cj ConfigJSON
		if err := json.Unmarshal([]byte(body), &cj); err != nil {
			return
		}
		cfg, err := cj.ToConfig()
		if err != nil {
			return
		}
		// Accepted configs must satisfy the invariants ToConfig promises.
		if cj.Adaptive != nil && !cfg.Adaptive.Enabled() {
			t.Fatalf("adaptive request body accepted but config disabled: %+v", cj.Adaptive)
		}
		if _, err := core.ParseMethod(cfg.Method.String()); err != nil {
			t.Fatalf("accepted method %v does not round-trip: %v", cfg.Method, err)
		}
	})
}
