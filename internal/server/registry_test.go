package server

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

func tinyData() *dataset.Dataset {
	d := dataset.New(&dataset.Schema{
		Attrs: []dataset.Attribute{{Name: "a", Values: []string{"x", "y"}}},
		Class: dataset.Attribute{Name: "class", Values: []string{"p", "n"}},
	}, 4)
	d.Append([]int32{0}, 0)
	d.Append([]int32{0}, 0)
	d.Append([]int32{1}, 1)
	d.Append([]int32{1}, 1)
	return d
}

func TestRegistryLRUEviction(t *testing.T) {
	r := NewRegistry(2, core.CacheLimits{})
	d := tinyData()
	mustRegister := func(name string) {
		t.Helper()
		if _, err := r.Register(name, d); err != nil {
			t.Fatal(err)
		}
	}
	mustRegister("a")
	mustRegister("b")
	if _, ok := r.Get("a"); !ok { // touch a: b becomes the victim
		t.Fatal("a not found")
	}
	mustRegister("c")
	if r.Len() != 2 || r.Evictions() != 1 {
		t.Fatalf("len=%d evictions=%d, want 2/1", r.Len(), r.Evictions())
	}
	if _, ok := r.Get("b"); ok {
		t.Error("LRU victim b still registered")
	}
	if _, ok := r.Get("a"); !ok {
		t.Error("recently used a evicted")
	}
	if _, ok := r.Get("c"); !ok {
		t.Error("newest c evicted")
	}
}

func TestRegistryReplaceAndRemove(t *testing.T) {
	r := NewRegistry(2, core.CacheLimits{})
	d := tinyData()
	s1, err := r.Register("a", d)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Register("a", d) // replace: no eviction, fresh session
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Error("re-registering did not build a fresh session")
	}
	if r.Len() != 1 || r.Evictions() != 0 {
		t.Fatalf("len=%d evictions=%d after replace, want 1/0", r.Len(), r.Evictions())
	}
	if got, _ := r.Get("a"); got != s2 {
		t.Error("lookup did not return the replacement session")
	}
	if !r.Remove("a") || r.Remove("a") {
		t.Error("Remove should succeed once then report missing")
	}
	if r.Len() != 0 {
		t.Errorf("len=%d after remove, want 0", r.Len())
	}
}

func TestRegistryNameValidation(t *testing.T) {
	r := NewRegistry(2, core.CacheLimits{})
	d := tinyData()
	for _, bad := range []string{"", "-lead", "a b", "a/b", "..", "x\n"} {
		if _, err := r.Register(bad, d); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
	for _, good := range []string{"a", "A-1", "data.v2", "x_y"} {
		if _, err := r.Register(good, d); err != nil {
			t.Errorf("name %q rejected: %v", good, err)
		}
	}
}

func TestRegistryNamesOrder(t *testing.T) {
	r := NewRegistry(8, core.CacheLimits{})
	d := tinyData()
	for _, n := range []string{"a", "b", "c"} {
		if _, err := r.Register(n, d); err != nil {
			t.Fatal(err)
		}
	}
	r.Get("a")
	names := r.Names()
	if len(names) != 3 || names[0] != "a" {
		t.Errorf("Names() = %v, want a first (most recently used)", names)
	}
}
