package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/core"
	"repro/internal/shard"
)

// shardRequestJSON is the POST /v1/datasets/{name}/shard body: the mining
// config that identifies the prepared session on this worker, plus the
// span assignment to evaluate against it.
type shardRequestJSON struct {
	Config  ConfigJSON    `json:"config"`
	Request shard.Request `json:"request"`
}

// handleShard is the worker half of distributed permutation counting: it
// resolves the same session stages a local mine would (sharing the
// singleflight stage caches), evaluates the assignment's permutation
// range, and replies with the shard's statistics for the coordinator to
// merge.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	sess, name, ok := s.session(w, r)
	if !ok {
		return
	}
	var sj shardRequestJSON
	if err := decodeBody(w, r, &sj); err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	cfg, err := sj.Config.ToConfig()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	rep, err := sess.ShardSpan(ctx, cfg, sj.Request)
	if err != nil {
		s.opts.Log.Printf("server: shard %s: %v", name, err)
		writeError(w, mineStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// applyShards finishes a decoded mining config's shard wiring: the shard
// count defaults from the server options, and when the run shards with
// peers configured, the config gains one HTTP worker per shard —
// round-robin over the peers — so the session's coordinator fans the
// permutation range out over the wire. Without peers the count alone makes
// the session shard in-process, which is the conformance-testing
// configuration. The peers receive the client's own wire config, so they
// resolve the identical prepared session (their ShardSpan ignores the
// shard fields — a worker is a leaf of the fan-out, never a coordinator).
func (s *Server) applyShards(cfg *core.Config, cj ConfigJSON, name string) error {
	if cfg.Shards == 0 {
		cfg.Shards = s.opts.DefaultShards
	}
	if cfg.Method != core.MethodPermutation || cfg.Shards <= 1 || len(s.opts.ShardPeers) == 0 {
		return nil
	}
	cj.Shards = cfg.Shards
	raw, err := json.Marshal(cj)
	if err != nil {
		return fmt.Errorf("server: encoding peer config: %w", err)
	}
	workers := make([]shard.Worker, cfg.Shards)
	for i := range workers {
		peer := strings.TrimSuffix(s.opts.ShardPeers[i%len(s.opts.ShardPeers)], "/")
		workers[i] = &shard.HTTP{
			Client: s.shardClient,
			URL:    peer + "/v1/datasets/" + url.PathEscape(name) + "/shard",
			Config: raw,
		}
	}
	cfg.ShardWorkers = workers
	return nil
}
