package server

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/permute"
	"repro/internal/synth"
)

// TestRegistryConcurrentPreloadEvictMine hammers one capacity-2 registry
// with concurrent preloads (Register), evictions (Register past capacity
// plus explicit Remove) and adaptive mining runs resolved through Get —
// the serving daemon's steady state. Run under -race (CI always does):
// the assertions are that nothing panics, in-flight sessions survive
// their own eviction, and every successful mine returns a well-formed
// result.
func TestRegistryConcurrentPreloadEvictMine(t *testing.T) {
	const names = 5
	datasets := make([]*synth.Result, names)
	for i := range datasets {
		p := synth.PaperDefaults()
		p.N = 120
		p.Attrs = 5
		p.Seed = uint64(100 + i)
		res, err := synth.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		datasets[i] = res
	}
	name := func(i int) string { return fmt.Sprintf("d%d", i%names) }

	reg := NewRegistry(2, core.CacheLimits{})
	cfg := core.Config{
		MinSup: 12,
		Method: core.MethodPermutation,
		Seed:   7,
		Adaptive: permute.Adaptive{
			MinPerms: 8,
			MaxPerms: 32,
		},
	}

	var wg sync.WaitGroup
	const iters = 30

	// Preloaders: keep re-registering datasets, forcing LRU evictions.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				idx := (w + i) % names
				if _, err := reg.Register(name(idx), datasets[idx].Data); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Evictors: remove names outright.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			reg.Remove(name(i))
			reg.Names()
			reg.Len()
		}
	}()
	// Miners: resolve a session and run an adaptive config; a session may
	// be evicted mid-run and must still complete.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters/3; i++ {
				sess, ok := reg.Get(name(w + i))
				if !ok {
					continue
				}
				res, err := sess.RunContext(context.Background(), cfg)
				if err != nil {
					t.Errorf("miner %d: %v", w, err)
					return
				}
				if res.Perm == nil || res.Perm.MaxPerms != 32 {
					t.Errorf("miner %d: missing adaptive telemetry: %+v", w, res.Perm)
					return
				}
				if res.NumTested < 0 || res.Outcome == nil {
					t.Errorf("miner %d: malformed result", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if reg.Len() > reg.Capacity() {
		t.Errorf("registry holds %d sessions, capacity %d", reg.Len(), reg.Capacity())
	}
}
