package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

// mineBody is the permutation config every sharded-serving test mines
// with; shards only get to differ in where counting happens, never in the
// answer.
const mineBody = `{"min_sup": 60, "method": "permutation", "permutations": 120, "seed": 5, "control": "fwer"}`

func shardedBody(shards int) string {
	return fmt.Sprintf(`{"min_sup": 60, "method": "permutation", "permutations": 120, "seed": 5, "control": "fwer", "shards": %d}`, shards)
}

// TestServerShardedMineByteIdentical: the same mine request at shards 1,
// in-process shards 3, and HTTP fan-out over a peer must return
// byte-identical bodies (timings zeroed) — the serving layer's half of the
// conformance contract.
func TestServerShardedMineByteIdentical(t *testing.T) {
	d := signalDataset(t, 3)

	// The worker peer: holds the same dataset, serves /shard.
	peerSrv, peerTS := newTestServer(t, 4, Options{})
	if _, err := peerSrv.Registry().Register("sig", d); err != nil {
		t.Fatal(err)
	}

	// The coordinator: same dataset, fans sharded runs out to the peer.
	coordSrv, coordTS := newTestServer(t, 4, Options{ShardPeers: []string{peerTS.URL}})
	if _, err := coordSrv.Registry().Register("sig", d); err != nil {
		t.Fatal(err)
	}

	status, single := post(t, peerTS.URL+"/v1/datasets/sig/mine", mineBody)
	if status != 200 {
		t.Fatalf("single-node mine: status %d: %s", status, single)
	}
	want := canonBody(t, single)

	// In-process sharding on the peer (no ShardPeers configured there).
	status, inproc := post(t, peerTS.URL+"/v1/datasets/sig/mine", shardedBody(3))
	if status != 200 {
		t.Fatalf("in-process sharded mine: status %d: %s", status, inproc)
	}
	if got := canonBody(t, inproc); string(got) != string(want) {
		t.Fatalf("in-process sharded mine diverged:\n got %s\nwant %s", got, want)
	}

	// HTTP fan-out: the coordinator posts shard assignments to the peer.
	status, fanned := post(t, coordTS.URL+"/v1/datasets/sig/mine", shardedBody(3))
	if status != 200 {
		t.Fatalf("fanned-out sharded mine: status %d: %s", status, fanned)
	}
	if got := canonBody(t, fanned); string(got) != string(want) {
		t.Fatalf("HTTP fan-out mine diverged:\n got %s\nwant %s", got, want)
	}
}

// TestServerDefaultShards: a server started with DefaultShards shards
// every permutation config that leaves the count unset, and the result
// still matches single-node output.
func TestServerDefaultShards(t *testing.T) {
	d := signalDataset(t, 3)
	plainSrv, plainTS := newTestServer(t, 4, Options{})
	shardSrv, shardTS := newTestServer(t, 4, Options{DefaultShards: 3})
	for _, s := range []*Server{plainSrv, shardSrv} {
		if _, err := s.Registry().Register("sig", d); err != nil {
			t.Fatal(err)
		}
	}
	_, plain := post(t, plainTS.URL+"/v1/datasets/sig/mine", mineBody)
	status, sharded := post(t, shardTS.URL+"/v1/datasets/sig/mine", mineBody)
	if status != 200 {
		t.Fatalf("default-sharded mine: status %d: %s", status, sharded)
	}
	if string(canonBody(t, sharded)) != string(canonBody(t, plain)) {
		t.Fatal("DefaultShards mine diverged from single-node output")
	}
}

// TestServerShardEndpoint exercises the worker endpoint directly: a valid
// assignment returns the shard's statistics, malformed assignments are
// rejected with request-level statuses.
func TestServerShardEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, 4, Options{})
	if _, err := srv.Registry().Register("sig", signalDataset(t, 3)); err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"config": %s, "request": {"shard": 0, "lo": 10, "hi": 20, "with_own": true, "with_pool": true}}`, mineBody)
	status, reply := post(t, ts.URL+"/v1/datasets/sig/shard", body)
	if status != 200 {
		t.Fatalf("shard endpoint: status %d: %s", status, reply)
	}
	var rep struct {
		Shard int       `json:"shard"`
		Lo    int       `json:"lo"`
		Hi    int       `json:"hi"`
		MinP  []float64 `json:"min_p"`
		OwnLE []int64   `json:"own_le"`
	}
	if err := json.Unmarshal(reply, &rep); err != nil {
		t.Fatalf("shard reply %s: %v", reply, err)
	}
	if rep.Lo != 10 || rep.Hi != 20 || len(rep.MinP) != 10 || len(rep.OwnLE) == 0 {
		t.Fatalf("shard reply shape wrong: %+v", rep)
	}

	for name, bad := range map[string]string{
		"range overrun":     fmt.Sprintf(`{"config": %s, "request": {"lo": 0, "hi": 1000}}`, mineBody),
		"inverted range":    fmt.Sprintf(`{"config": %s, "request": {"lo": 9, "hi": 3}}`, mineBody),
		"non-perm method":   `{"config": {"min_sup": 60, "method": "direct"}, "request": {"lo": 0, "hi": 5}}`,
		"unknown field":     `{"config": {}, "request": {"lo": 0, "hi": 5}, "extra": 1}`,
		"unknown dataset":   "",
		"retired unordered": fmt.Sprintf(`{"config": %s, "request": {"lo": 0, "hi": 5, "retired": [3, 1]}}`, mineBody),
	} {
		url := ts.URL + "/v1/datasets/sig/shard"
		if name == "unknown dataset" {
			url = ts.URL + "/v1/datasets/nope/shard"
			bad = fmt.Sprintf(`{"config": %s, "request": {"lo": 0, "hi": 5}}`, mineBody)
		}
		if status, body := post(t, url, bad); status < 400 {
			t.Errorf("%s: status %d (%s), want an error", name, status, body)
		}
	}
}

// TestServerShardedMineSurvivesEviction: sharded mines hold their session
// (resolved through Get, exactly as the handler does) while the registry
// evicts the dataset underneath them — every run must complete with the
// same answer, like the unsharded eviction guarantee, with coordinator
// fan-out in flight. Run under -race in the CI matrix.
func TestServerShardedMineSurvivesEviction(t *testing.T) {
	srv, _ := newTestServer(t, 1, Options{})
	reg := srv.Registry()
	d := signalDataset(t, 3)
	if _, err := reg.Register("sig", d); err != nil {
		t.Fatal(err)
	}
	sess, ok := reg.Get("sig")
	if !ok {
		t.Fatal("session vanished before the test began")
	}
	cfg := core.Config{
		MinSup: 60, Method: core.MethodPermutation, Permutations: 120,
		Seed: 5, Control: core.ControlFWER,
	}
	want, err := sess.RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.Shards = 3

	var wg sync.WaitGroup
	results := make([]*core.Result, 4)
	errs := make([]error, len(results))
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = sess.RunContext(context.Background(), scfg)
		}(i)
	}
	// Concurrent registrations into a capacity-1 registry: each evicts the
	// previous session while the sharded mines are mid-flight.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			if _, err := reg.Register(fmt.Sprintf("evict%d", i), signalDataset(t, 100+i)); err != nil {
				t.Error(err)
			}
		}(uint64(i))
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("sharded mine %d under eviction: %v", i, errs[i])
		}
		if got := wireBytes(t, canonRun(EncodeRun(results[i], 0))); string(got) != string(wireBytes(t, canonRun(EncodeRun(want, 0)))) {
			t.Fatalf("sharded mine %d under eviction diverged from the pre-eviction answer", i)
		}
	}
}
