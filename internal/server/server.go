package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/disc"
)

// Options configures the HTTP mining service.
type Options struct {
	// Addr is the listen address for ListenAndServe (default ":8080").
	Addr string
	// Timeout bounds each mining request's wall clock: the request context
	// is cancelled at the deadline and the response is 504 (default 2m;
	// negative disables).
	Timeout time.Duration
	// MaxUploadBytes caps a CSV upload body (default 64 MiB).
	MaxUploadBytes int64
	// Log receives request-level diagnostics (default log.Default()).
	Log *log.Logger
	// DefaultShards splits permutation runs whose config leaves shards
	// unset across this many shards (0 or 1 = single-node). Results are
	// byte-identical either way; sharding only changes where the counting
	// happens.
	DefaultShards int
	// ShardPeers lists peer base URLs (e.g. "http://host:8080") holding
	// the same datasets. When a permutation run shards and peers are
	// configured, the coordinator POSTs shard assignments to the peers'
	// /v1/datasets/{name}/shard endpoints instead of counting in-process.
	ShardPeers []string
	// StoreDir, when set, switches uploads to out-of-core mode: each CSV
	// upload streams into a segment store at StoreDir/{name} instead of
	// an in-memory dataset, and POST /v1/datasets/{name}/append grows it
	// with CSV deltas. Store-mode uploads must be pre-discretized — the
	// immutable segment bitmaps cannot be re-binned, so numeric columns
	// are rejected with 400 (discretize offline with `armine convert`).
	StoreDir string
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = ":8080"
	}
	if o.Timeout == 0 {
		o.Timeout = 2 * time.Minute
	}
	if o.MaxUploadBytes == 0 {
		o.MaxUploadBytes = 64 << 20
	}
	if o.Log == nil {
		o.Log = log.Default()
	}
	return o
}

// Server is the long-lived HTTP mining service: a registry of prepared
// sessions behind JSON endpoints. Concurrent requests against one dataset
// share mining work through the session's singleflight stage caches, and
// Shutdown drains in-flight mining before returning.
type Server struct {
	reg  *Registry
	opts Options
	http *http.Server
	// shardClient issues fan-out requests to shard peers; one client so
	// connections to the peers are pooled across mining requests.
	shardClient *http.Client
}

// New builds a Server over reg. Call Handler for an http.Handler (tests,
// custom listeners) or ListenAndServe to serve opts.Addr.
func New(reg *Registry, opts Options) *Server {
	s := &Server{reg: reg, opts: opts.withDefaults(), shardClient: &http.Client{}}
	s.http = &http.Server{Addr: s.opts.Addr, Handler: s.Handler()}
	return s
}

// Registry returns the server's dataset registry (for pre-loading datasets
// before serving).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the service's endpoint table:
//
//	GET    /healthz                     liveness + registry occupancy
//	GET    /v1/datasets                 list registered dataset names
//	POST   /v1/datasets?name=N          register a CSV upload as dataset N
//	DELETE /v1/datasets/{name}          drop a dataset
//	GET    /v1/datasets/{name}/stats    session stage/cache counters
//	POST   /v1/datasets/{name}/append   append a CSV delta (store mode only)
//	POST   /v1/datasets/{name}/mine     run one Config (body: ConfigJSON)
//	POST   /v1/datasets/{name}/batch    run many Configs (body: [ConfigJSON])
//	POST   /v1/datasets/{name}/shard    evaluate one shard assignment
//
// Mine and batch accept ?limit=K to truncate the reported rule lists.
// Shard is the worker half of distributed permutation counting: a peer
// coordinator posts {config, request} bodies here and merges the replies.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/datasets", s.handleList)
	mux.HandleFunc("POST /v1/datasets", s.handleUpload)
	mux.HandleFunc("DELETE /v1/datasets/{name}", s.handleDelete)
	mux.HandleFunc("GET /v1/datasets/{name}/stats", s.handleStats)
	mux.HandleFunc("POST /v1/datasets/{name}/append", s.handleAppend)
	mux.HandleFunc("POST /v1/datasets/{name}/mine", s.handleMine)
	mux.HandleFunc("POST /v1/datasets/{name}/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/datasets/{name}/shard", s.handleShard)
	return mux
}

// ListenAndServe serves opts.Addr until Shutdown (or a listener error).
func (s *Server) ListenAndServe() error {
	s.opts.Log.Printf("server: listening on %s (registry capacity %d)", s.opts.Addr, s.reg.Capacity())
	err := s.http.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops accepting connections and waits for in-flight requests —
// including running mining stages — to drain, up to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.http.Shutdown(ctx)
}

// requestCtx derives the per-request mining context: the connection's
// context (cancelled on client disconnect) bounded by the configured
// timeout.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.Timeout < 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.opts.Timeout)
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// mineStatus maps a pipeline error to an HTTP status: deadline overruns
// are the server's fault (504), an incomplete stage is an internal fault
// (500), everything else — config validation, node-budget exhaustion — is
// the request's (422).
func mineStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	if errors.Is(err, context.Canceled) {
		return 499 // client closed request (nginx convention)
	}
	if errors.Is(err, core.ErrStageIncomplete) {
		return http.StatusInternalServerError
	}
	return http.StatusUnprocessableEntity
}

// session resolves the {name} path value, 404ing unknown datasets.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*core.Session, string, bool) {
	name := r.PathValue("name")
	sess, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return nil, name, false
	}
	return sess, name, true
}

// limitParam parses the ?limit= rule-truncation parameter (0 = all).
func limitParam(r *http.Request) (int, error) {
	q := r.URL.Query().Get("limit")
	if q == "" {
		return 0, nil
	}
	limit, err := strconv.Atoi(q)
	if err != nil || limit < 0 {
		return 0, fmt.Errorf("invalid limit %q", q)
	}
	return limit, nil
}

// healthJSON is the GET /healthz body.
type healthJSON struct {
	Status    string `json:"status"`
	Datasets  int    `json:"datasets"`
	Capacity  int    `json:"capacity"`
	Evictions int64  `json:"evictions"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthJSON{
		Status:    "ok",
		Datasets:  s.reg.Len(),
		Capacity:  s.reg.Capacity(),
		Evictions: s.reg.Evictions(),
	})
}

// listJSON is the GET /v1/datasets body.
type listJSON struct {
	Datasets  []string `json:"datasets"`
	Capacity  int      `json:"capacity"`
	Evictions int64    `json:"evictions"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, listJSON{
		Datasets:  s.reg.Names(),
		Capacity:  s.reg.Capacity(),
		Evictions: s.reg.Evictions(),
	})
}

// datasetJSON describes a registered dataset.
type datasetJSON struct {
	Name       string `json:"name"`
	NumRecords int    `json:"num_records"`
	NumAttrs   int    `json:"num_attrs"`
	NumClasses int    `json:"num_classes"`
}

func describe(name string, sess *core.Session) datasetJSON {
	schema := sess.Schema()
	return datasetJSON{
		Name:       name,
		NumRecords: sess.NumRecords(),
		NumAttrs:   schema.NumAttrs(),
		NumClasses: len(schema.Class.Values),
	}
}

// handleUpload registers the request body — a CSV stream with a header
// row, class label last — under ?name=. In-memory mode discretizes
// numeric columns automatically; store mode (Options.StoreDir) streams
// the CSV into a segment store instead and requires pre-discretized
// input.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing ?name= query parameter"))
		return
	}
	// Reject bad names before parsing a potentially large body;
	// Registry re-checks under its lock.
	if !nameRE.MatchString(name) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: invalid dataset name %q", name))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	var sess *core.Session
	var err error
	if s.opts.StoreDir != "" {
		sess, err = s.uploadStore(name, body)
	} else {
		sess, err = s.uploadMemory(name, body)
	}
	if err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	s.opts.Log.Printf("server: registered dataset %q (%d records, %d attrs)", name, sess.NumRecords(), sess.Schema().NumAttrs())
	writeJSON(w, http.StatusCreated, describe(name, sess))
}

// uploadMemory streams the CSV straight into an encoded dataset — the
// row reader interns values as it parses, so the raw string table and
// the cell matrix never coexist — then discretizes numeric columns in
// place.
func (s *Server) uploadMemory(name string, body io.Reader) (*core.Session, error) {
	d, err := dataset.ReadDataset(body, -1)
	if err != nil {
		return nil, err
	}
	if err := disc.DiscretizeDataset(d); err != nil {
		return nil, err
	}
	return s.reg.Register(name, d)
}

// uploadStore streams the CSV into a segment store at StoreDir/name,
// replacing any existing store of that name. Numeric columns cannot be
// discretized after ingest (segment bitmaps are immutable), so they are
// rejected and the fresh store removed.
func (s *Server) uploadStore(name string, body io.Reader) (*core.Session, error) {
	dir := filepath.Join(s.opts.StoreDir, name)
	if _, err := os.Stat(filepath.Join(dir, colstore.ManifestName)); err == nil {
		if err := colstore.Remove(dir); err != nil {
			return nil, err
		}
	}
	st, err := colstore.Create(dir, body, colstore.Options{})
	if err != nil {
		os.RemoveAll(dir) // partial ingest: segments without a manifest
		return nil, err
	}
	for _, attr := range st.Schema().Attrs {
		if disc.NumericVocab(attr.Values) {
			colstore.Remove(dir)
			return nil, fmt.Errorf("server: column %q is numeric; store-mode uploads must be pre-discretized (run `armine convert` first)", attr.Name)
		}
	}
	return s.reg.RegisterSource(name, st)
}

// LoadStores opens every segment store under Options.StoreDir and
// registers it, so a restarted server serves its datasets without
// re-upload. It is a no-op when StoreDir is unset.
func (s *Server) LoadStores() error {
	if s.opts.StoreDir == "" {
		return nil
	}
	names, err := colstore.List(s.opts.StoreDir)
	if err != nil {
		return err
	}
	for _, name := range names {
		st, err := colstore.Open(filepath.Join(s.opts.StoreDir, name))
		if err != nil {
			return fmt.Errorf("server: opening store %q: %w", name, err)
		}
		if _, err := s.reg.RegisterSource(name, st); err != nil {
			return err
		}
	}
	s.opts.Log.Printf("server: loaded %d store(s) from %s", len(names), s.opts.StoreDir)
	return nil
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.reg.Remove(name) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
		return
	}
	if s.opts.StoreDir != "" {
		// Best effort: the binding is gone either way, and Remove refuses
		// anything that is not a store directory.
		if err := colstore.Remove(filepath.Join(s.opts.StoreDir, name)); err != nil {
			s.opts.Log.Printf("server: removing store for %q: %v", name, err)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// appendJSON is the POST /v1/datasets/{name}/append response body.
type appendJSON struct {
	Name       string `json:"name"`
	Added      int    `json:"added"`
	NumRecords int    `json:"num_records"`
	Version    uint64 `json:"version"`
}

// handleAppend ingests a CSV delta — same header as the original upload —
// as new immutable segments of a store-backed dataset. The store's
// version bump flows into every stage-cache key, so the next mine
// re-snapshots the grown dataset; no stale stage can be served. Appending
// to an in-memory dataset is a 409.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	sess, name, ok := s.session(w, r)
	if !ok {
		return
	}
	store, isStore := sess.Source().(*colstore.Store)
	if !isStore {
		writeError(w, http.StatusConflict,
			fmt.Errorf("dataset %q is in-memory; append needs a store-backed dataset (serve with -store-dir)", name))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	added, err := store.Append(body, colstore.Options{})
	if err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	s.opts.Log.Printf("server: appended %d records to %q (now %d, version %d)", added, name, store.NumRecords(), store.Version())
	writeJSON(w, http.StatusOK, appendJSON{
		Name:       name,
		Added:      added,
		NumRecords: store.NumRecords(),
		Version:    store.Version(),
	})
}

// statsJSON is the GET /v1/datasets/{name}/stats body.
type statsJSON struct {
	Dataset datasetJSON `json:"dataset"`
	Session StatsJSON   `json:"session"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	sess, name, ok := s.session(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, statsJSON{
		Dataset: describe(name, sess),
		Session: EncodeStats(sess.Stats()),
	})
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	sess, name, ok := s.session(w, r)
	if !ok {
		return
	}
	limit, err := limitParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var cj ConfigJSON
	if err := decodeBody(w, r, &cj); err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	cfg, err := cj.ToConfig()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.applyShards(&cfg, cj, name); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	res, err := sess.RunContext(ctx, cfg)
	if err != nil {
		s.opts.Log.Printf("server: mine %s: %v", name, err)
		writeError(w, mineStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, EncodeRun(res, limit))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	sess, name, ok := s.session(w, r)
	if !ok {
		return
	}
	limit, err := limitParam(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var cjs []ConfigJSON
	if err := decodeBody(w, r, &cjs); err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	if len(cjs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch"))
		return
	}
	if len(cjs) > maxBatchConfigs {
		// RunBatch holds every distinct stage for the batch's duration
		// (bypassing the session cache bounds by design), so the request
		// size is the memory bound — keep it modest.
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d configs exceeds the per-request maximum %d", len(cjs), maxBatchConfigs))
		return
	}
	cfgs, err := validateConfigs(cjs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	for i := range cfgs {
		if err := s.applyShards(&cfgs[i], cjs[i], name); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	results, err := sess.RunBatch(ctx, cfgs)
	if err != nil {
		s.opts.Log.Printf("server: batch %s: %v", name, err)
		writeError(w, mineStatus(err), err)
		return
	}
	runs := make([]RunJSON, len(results))
	for i, res := range results {
		runs[i] = EncodeRun(res, limit)
	}
	writeJSON(w, http.StatusOK, runs)
}

// maxJSONBody caps mine/batch request bodies: configs are tiny, so a
// modest fixed bound keeps a single request from buffering unbounded
// client input.
const maxJSONBody = 1 << 20

// maxBatchConfigs caps the configs in one batch request.
const maxBatchConfigs = 256

// bodyErrStatus distinguishes a size-limit hit (413, matching the upload
// path) from a malformed body (400).
func bodyErrStatus(err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// decodeBody strictly decodes one JSON value from the request body:
// unknown fields, trailing content after the value, and bodies over
// maxJSONBody are errors.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJSONBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return fmt.Errorf("request body has trailing content after the JSON value")
	}
	return nil
}
