// Package server exposes the mining library as a long-lived HTTP/JSON
// service: named datasets are registered once (CSV upload) and served as
// core.Sessions behind a capacity-bounded LRU registry, so repeated and
// concurrent mining requests share prepared stages while process memory
// stays bounded. See Handler for the endpoint table.
package server

import (
	"fmt"
	"regexp"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/lru"
)

// nameRE restricts dataset names to path- and shell-safe tokens.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$`)

// Registry maps dataset names to prepared mining Sessions behind an LRU
// with a fixed capacity: registering past the capacity evicts the least
// recently used session (its in-flight requests, which hold the Session
// pointer directly, still complete; the name just stops resolving). Every
// lookup counts as a use. A Registry is safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	limits core.CacheLimits
	byName map[string]*core.Session
	idx    *lru.Index[string]
}

// DefaultCapacity is the registry capacity when NewRegistry is given a
// non-positive one.
const DefaultCapacity = 16

// NewRegistry returns a registry holding at most capacity sessions
// (DefaultCapacity if capacity <= 0), each with the given per-session
// stage-cache limits (zero fields pick the core defaults).
func NewRegistry(capacity int, limits core.CacheLimits) *Registry {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Registry{
		limits: limits,
		byName: make(map[string]*core.Session),
		idx:    lru.New[string](capacity),
	}
}

// Register builds a Session over d and binds it to name, replacing any
// existing binding and evicting the LRU session if the registry is full.
func (r *Registry) Register(name string, d *dataset.Dataset) (*core.Session, error) {
	return r.bind(name, func() *core.Session { return core.NewSessionLimits(d, r.limits) })
}

// RegisterSource builds a Session over an encoded source — typically an
// opened segment store — and binds it to name, with the same replacement
// and eviction semantics as Register.
func (r *Registry) RegisterSource(name string, src core.EncodedSource) (*core.Session, error) {
	return r.bind(name, func() *core.Session { return core.NewSessionSourceLimits(src, r.limits) })
}

func (r *Registry) bind(name string, build func() *core.Session) (*core.Session, error) {
	if !nameRE.MatchString(name) {
		return nil, fmt.Errorf("server: invalid dataset name %q (want [A-Za-z0-9][A-Za-z0-9._-]*, at most 128 chars)", name)
	}
	sess := build()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byName[name] = sess
	for _, victim := range r.idx.Insert(name) {
		delete(r.byName, victim)
	}
	return sess, nil
}

// Get resolves name to its session, marking it most recently used.
func (r *Registry) Get(name string) (*core.Session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sess, ok := r.byName[name]
	if ok {
		r.idx.Touch(name)
	}
	return sess, ok
}

// Remove drops name's session. It reports whether the name was bound.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.byName, name)
	return r.idx.Remove(name)
}

// Names lists the registered dataset names, most recently used first.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.idx.Keys()
}

// Len reports the number of registered sessions.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.idx.Len()
}

// Capacity reports the maximum number of registered sessions.
func (r *Registry) Capacity() int { return r.idx.Cap() }

// Evictions reports how many sessions the capacity bound has dropped.
func (r *Registry) Evictions() int64 { return r.idx.Evictions() }
