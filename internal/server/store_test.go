package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/colstore"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/disc"
)

// datasetCSV renders a signal dataset as CSV text.
func datasetCSV(t *testing.T, seed uint64) (string, *dataset.Dataset) {
	t.Helper()
	d := signalDataset(t, seed)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String(), d
}

// TestServerStoreModeRoundTrip covers the out-of-core serving path end to
// end: a store-mode upload lands on disk as a segment store, mines
// byte-identically to a direct in-memory run, grows through the append
// endpoint (after which a re-mine equals a fresh run over the
// concatenated CSV), survives a server restart via LoadStores, and is
// removed from disk on DELETE.
func TestServerStoreModeRoundTrip(t *testing.T) {
	storeDir := t.TempDir()
	_, ts := newTestServer(t, 4, Options{StoreDir: storeDir})
	csvText, d := datasetCSV(t, 31)

	status, body := post(t, ts.URL+"/v1/datasets?name=demo", csvText)
	if status != http.StatusCreated {
		t.Fatalf("upload status %d: %s", status, body)
	}
	var info datasetJSON
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "demo" || info.NumRecords != d.NumRecords() {
		t.Fatalf("upload response %+v", info)
	}
	manifest := filepath.Join(storeDir, "demo", colstore.ManifestName)
	if _, err := os.Stat(manifest); err != nil {
		t.Fatalf("store-mode upload left no store on disk: %v", err)
	}

	mineBody := `{"min_sup": 60, "method": "direct", "control": "fdr"}`
	cfg := core.Config{MinSup: 60, Method: core.MethodDirect, Control: core.ControlFDR}
	wantFor := func(csv string) []byte {
		local, err := dataset.ReadDataset(strings.NewReader(csv), -1)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := core.Run(local, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return wireBytes(t, canonRun(EncodeRun(fresh, 0)))
	}
	status, body = post(t, ts.URL+"/v1/datasets/demo/mine", mineBody)
	if status != http.StatusOK {
		t.Fatalf("mine status %d: %s", status, body)
	}
	if got, want := canonBody(t, body), wantFor(csvText); !bytes.Equal(got, want) {
		t.Fatalf("store-backed mine differs from direct run:\n got %s\nwant %s", got, want)
	}

	// Append a delta with the same header; the response reports the grown
	// store, and a re-mine equals a fresh run over the concatenated CSV.
	delta, d2 := datasetCSV(t, 32)
	parts := strings.SplitAfterN(delta, "\n", 2)
	header, deltaRows := parts[0], parts[1]
	if !strings.HasPrefix(csvText, header) {
		t.Fatalf("fixture drift: headers differ (%q)", header)
	}
	status, body = post(t, ts.URL+"/v1/datasets/demo/append", header+deltaRows)
	if status != http.StatusOK {
		t.Fatalf("append status %d: %s", status, body)
	}
	var ap appendJSON
	if err := json.Unmarshal(body, &ap); err != nil {
		t.Fatal(err)
	}
	if ap.Added != d2.NumRecords() || ap.NumRecords != d.NumRecords()+d2.NumRecords() || ap.Version != 2 {
		t.Fatalf("append response %+v", ap)
	}
	wantGrown := wantFor(csvText + deltaRows)
	status, body = post(t, ts.URL+"/v1/datasets/demo/mine", mineBody)
	if status != http.StatusOK {
		t.Fatalf("post-append mine status %d: %s", status, body)
	}
	if got := canonBody(t, body); !bytes.Equal(got, wantGrown) {
		t.Fatalf("post-append mine differs from fresh concatenated run:\n got %s\nwant %s", got, wantGrown)
	}

	// A restarted server over the same directory re-serves the dataset.
	s2, ts2 := newTestServer(t, 4, Options{StoreDir: storeDir})
	if err := s2.LoadStores(); err != nil {
		t.Fatal(err)
	}
	status, body = post(t, ts2.URL+"/v1/datasets/demo/mine", mineBody)
	if status != http.StatusOK {
		t.Fatalf("mine after restart status %d: %s", status, body)
	}
	if got := canonBody(t, body); !bytes.Equal(got, wantGrown) {
		t.Fatalf("mine after restart differs:\n got %s\nwant %s", got, wantGrown)
	}

	// DELETE drops the binding and the on-disk store.
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/datasets/demo", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if _, err := os.Stat(manifest); !os.IsNotExist(err) {
		t.Fatalf("delete left the store on disk: %v", err)
	}
}

// TestServerAppendRequiresStore pins the append endpoint's modes: an
// in-memory dataset is 409, an unknown one 404, and a bad delta leaves
// the store's version untouched.
func TestServerAppendRequiresStore(t *testing.T) {
	csvText, _ := datasetCSV(t, 33)
	_, ts := newTestServer(t, 4, Options{})
	if status, body := post(t, ts.URL+"/v1/datasets?name=mem", csvText); status != http.StatusCreated {
		t.Fatalf("upload status %d: %s", status, body)
	}
	status, body := post(t, ts.URL+"/v1/datasets/mem/append", csvText)
	if status != http.StatusConflict {
		t.Fatalf("append to in-memory dataset: status %d (%s), want 409", status, body)
	}
	if status, _ := post(t, ts.URL+"/v1/datasets/nope/append", csvText); status != http.StatusNotFound {
		t.Fatalf("append to unknown dataset: status %d, want 404", status)
	}

	sDir := t.TempDir()
	s2, ts2 := newTestServer(t, 4, Options{StoreDir: sDir})
	if status, body := post(t, ts2.URL+"/v1/datasets?name=st", csvText); status != http.StatusCreated {
		t.Fatalf("store upload status %d: %s", status, body)
	}
	if status, body := post(t, ts2.URL+"/v1/datasets/st/append", "wrong,header\nx,y\n"); status != http.StatusBadRequest {
		t.Fatalf("mismatched append: status %d (%s), want 400", status, body)
	}
	sess, ok := s2.Registry().Get("st")
	if !ok {
		t.Fatal("store dataset vanished")
	}
	if v := sess.Source().(*colstore.Store).Version(); v != 1 {
		t.Fatalf("failed append bumped version to %d", v)
	}
}

// TestServerStoreModeRejectsNumeric pins the store-mode contract that
// numeric columns must be discretized before upload: the ingest is
// rejected with 400, the half-built store is removed, and the same CSV
// still uploads fine in in-memory mode (where it is discretized).
func TestServerStoreModeRejectsNumeric(t *testing.T) {
	storeDir := t.TempDir()
	_, ts := newTestServer(t, 4, Options{StoreDir: storeDir})
	csv := "age,outcome\n1.5,yes\n2.5,no\n3.5,yes\n4.5,no\n"
	status, body := post(t, ts.URL+"/v1/datasets?name=num", csv)
	if status != http.StatusBadRequest || !strings.Contains(string(body), "numeric") {
		t.Fatalf("numeric store upload: status %d (%s), want 400 naming the numeric column", status, body)
	}
	if _, err := os.Stat(filepath.Join(storeDir, "num")); !os.IsNotExist(err) {
		t.Fatalf("rejected upload left a store directory: %v", err)
	}
	if status, _ := get(t, ts.URL+"/v1/datasets/num/stats"); status != http.StatusNotFound {
		t.Fatalf("rejected dataset is registered: stats status %d", status)
	}

	_, ts2 := newTestServer(t, 4, Options{})
	if status, body := post(t, ts2.URL+"/v1/datasets?name=num", csv); status != http.StatusCreated {
		t.Fatalf("in-memory upload of the same CSV: status %d (%s)", status, body)
	}
}

// TestServerUploadNameRoundTrip is the reachability half of name
// validation: every accepted name must round-trip — appear in the list
// and resolve on the mine endpoint — and every rejected name must 400 at
// upload and stay unregistered, so no dataset can be created under a
// name its own URLs cannot reach.
func TestServerUploadNameRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, 16, Options{})
	csv := "a,class\nx,y\nz,w\nx,w\n"
	good := []string{"demo", "Data.Set-1_x", "9lives", strings.Repeat("n", 128)}
	for _, name := range good {
		status, body := post(t, ts.URL+"/v1/datasets?name="+url.QueryEscape(name), csv)
		if status != http.StatusCreated {
			t.Errorf("name %q: upload status %d (%s), want 201", name, status, body)
			continue
		}
		status, body = get(t, ts.URL+"/v1/datasets")
		if status != http.StatusOK {
			t.Fatalf("list status %d", status)
		}
		var l listJSON
		if err := json.Unmarshal(body, &l); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, n := range l.Datasets {
			found = found || n == name
		}
		if !found {
			t.Errorf("name %q accepted but missing from the list %v", name, l.Datasets)
		}
		status, body = post(t, ts.URL+"/v1/datasets/"+name+"/mine", `{"min_sup": 1, "method": "none"}`)
		if status != http.StatusOK {
			t.Errorf("name %q accepted but unreachable: mine status %d (%s)", name, status, body)
		}
	}
	bad := []string{"-lead", ".lead", "_lead", "has space", "has/slash", "naïve", strings.Repeat("n", 129)}
	for _, name := range bad {
		status, body := post(t, ts.URL+"/v1/datasets?name="+url.QueryEscape(name), csv)
		if status != http.StatusBadRequest {
			t.Errorf("name %q: upload status %d (%s), want 400", name, status, body)
		}
		if status, _ := get(t, ts.URL+"/v1/datasets/"+url.PathEscape(name)+"/stats"); status != http.StatusNotFound {
			t.Errorf("rejected name %q is registered: stats status %d", name, status)
		}
	}
}

// csvGen streams a deterministic synthetic CSV without materialising it,
// so the allocation test can feed an upload an order of magnitude larger
// than the heap budget it asserts.
type csvGen struct {
	attrs, rows int
	row         int
	buf         []byte
	off         int
	state       uint64
}

func newCSVGen(attrs, rows int) *csvGen { return &csvGen{attrs: attrs, rows: rows, state: 1} }

// next is a splitmix64 step: deterministic, no package-level state.
func (g *csvGen) next() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4568b
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (g *csvGen) Read(p []byte) (int, error) {
	if g.off >= len(g.buf) {
		if g.row > g.rows {
			return 0, io.EOF
		}
		g.buf, g.off = g.buf[:0], 0
		if g.row == 0 {
			for a := 0; a < g.attrs; a++ {
				g.buf = append(g.buf, fmt.Sprintf("attribute_%02d,", a)...)
			}
			g.buf = append(g.buf, "class\n"...)
		} else {
			for a := 0; a < g.attrs; a++ {
				g.buf = append(g.buf, fmt.Sprintf("a%02d_value_%02d,", a, g.next()%8)...)
			}
			g.buf = append(g.buf, 'c', byte('0'+g.next()%2), '\n')
		}
		g.row++
	}
	n := copy(p, g.buf[g.off:])
	g.off += n
	return n, nil
}

// TestServerUploadStreamingAllocs is the regression guard for the
// streaming upload path: handleUpload must encode the CSV row by row,
// never holding the raw string table and the cell matrix at once. It
// asserts two bounds on a ~12 MB upload: total allocation well below the
// historical ReadTable → DiscretizeTable → ToDataset path measured on
// the identical stream (that path's floor is one string table plus one
// matrix, ~2.5-3x the CSV size), and a live-heap ceiling of a fraction
// of the input (the registered session retains only the encoded cells).
func TestServerUploadStreamingAllocs(t *testing.T) {
	const attrs, rows = 20, 48000
	csvBytes, err := io.Copy(io.Discard, newCSVGen(attrs, rows))
	if err != nil {
		t.Fatal(err)
	}
	if csvBytes < 10<<20 {
		t.Fatalf("generator produced only %d bytes; the bounds below assume a multi-MB upload", csvBytes)
	}

	measure := func(f func()) (total, live uint64) {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		f()
		runtime.GC()
		runtime.ReadMemStats(&m1)
		total = m1.TotalAlloc - m0.TotalAlloc
		if m1.HeapAlloc > m0.HeapAlloc {
			live = m1.HeapAlloc - m0.HeapAlloc
		}
		return total, live
	}

	s := New(NewRegistry(2, core.CacheLimits{}), Options{Log: log.New(io.Discard, "", 0)})
	h := s.Handler()
	var status int
	streamTotal, streamLive := measure(func() {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/datasets?name=big", newCSVGen(attrs, rows))
		h.ServeHTTP(rec, req)
		status = rec.Code
	})
	if status != http.StatusCreated {
		t.Fatalf("upload status %d", status)
	}

	// The pre-streaming path over the identical stream, as the comparison
	// baseline (comparative, so value- and row-size drift in the
	// generator cannot silently relax the bound).
	var tableTotal uint64
	tableTotal, _ = measure(func() {
		tab, err := dataset.ReadTable(newCSVGen(attrs, rows))
		if err != nil {
			t.Error(err)
			return
		}
		dt, err := disc.DiscretizeTable(tab, attrs)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := dt.ToDataset(attrs); err != nil {
			t.Error(err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}

	t.Logf("csv=%d bytes, streaming total=%d live=%d, table-path total=%d",
		csvBytes, streamTotal, streamLive, tableTotal)
	if streamTotal >= tableTotal*3/4 {
		t.Errorf("streaming upload allocated %d bytes total, not clearly below the table path's %d — did the upload stop streaming?",
			streamTotal, tableTotal)
	}
	if streamLive > uint64(csvBytes)*3/4 {
		t.Errorf("streaming upload retains %d live bytes for a %d-byte CSV", streamLive, csvBytes)
	}
}
