package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/disc"
	"repro/internal/synth"
)

// signalDataset returns a dataset with one strong embedded rule.
func signalDataset(t *testing.T, seed uint64) *dataset.Dataset {
	t.Helper()
	p := synth.PaperDefaults()
	p.N = 600
	p.Attrs = 10
	p.NumRules = 1
	p.MinCvg, p.MaxCvg = 150, 150
	p.MinConf, p.MaxConf = 0.9, 0.9
	p.Seed = seed
	res, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return res.Data
}

// newTestServer builds a server over a fresh registry and an httptest
// listener.
func newTestServer(t *testing.T, capacity int, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	opts.Log = log.New(io.Discard, "", 0)
	s := New(NewRegistry(capacity, core.CacheLimits{}), opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// wireBytes encodes v exactly as the server's response writer does.
func wireBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// canonRun strips the only nondeterministic response fields — the
// wall-clock timings — so the rest of the run can be compared
// byte-for-byte.
func canonRun(run RunJSON) RunJSON {
	run.MineMillis, run.CorrectMillis = 0, 0
	return run
}

// canonBody re-encodes a response body with timings zeroed.
func canonBody(t *testing.T, body []byte) []byte {
	t.Helper()
	var run RunJSON
	if err := json.Unmarshal(body, &run); err != nil {
		t.Fatalf("response %q: %v", body, err)
	}
	return wireBytes(t, canonRun(run))
}

// canonBatchBody is canonBody over a batch ([]RunJSON) response.
func canonBatchBody(t *testing.T, body []byte) []byte {
	t.Helper()
	var runs []RunJSON
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatalf("response %q: %v", body, err)
	}
	for i := range runs {
		runs[i] = canonRun(runs[i])
	}
	return wireBytes(t, runs)
}

// post issues a JSON POST and returns status and body.
func post(t *testing.T, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestServerUploadMineRoundTrip covers the zero-to-mined path over HTTP:
// CSV upload → registered dataset → one mine whose response is
// byte-identical to a direct pipeline run over the identically parsed CSV.
func TestServerUploadMineRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, 4, Options{})
	d := signalDataset(t, 31)
	var csvBuf bytes.Buffer
	if err := d.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	csvBytes := csvBuf.Bytes()

	status, body := post(t, ts.URL+"/v1/datasets?name=demo", string(csvBytes))
	if status != http.StatusCreated {
		t.Fatalf("upload status %d: %s", status, body)
	}
	var info datasetJSON
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "demo" || info.NumRecords != d.NumRecords() {
		t.Fatalf("upload response %+v", info)
	}

	// The direct run must see the dataset exactly as the server parsed it:
	// same CSV, same read/discretize/convert path.
	tab, err := dataset.ReadTable(bytes.NewReader(csvBytes))
	if err != nil {
		t.Fatal(err)
	}
	classCol := len(tab.Header) - 1
	dt, err := disc.DiscretizeTable(tab, classCol)
	if err != nil {
		t.Fatal(err)
	}
	local, err := dt.ToDataset(classCol)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{MinSup: 60, Method: core.MethodDirect, Control: core.ControlFDR}
	fresh, err := core.Run(local, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := wireBytes(t, canonRun(EncodeRun(fresh, 0)))

	status, body = post(t, ts.URL+"/v1/datasets/demo/mine",
		`{"min_sup": 60, "method": "direct", "control": "fdr"}`)
	if status != http.StatusOK {
		t.Fatalf("mine status %d: %s", status, body)
	}
	if got := canonBody(t, body); !bytes.Equal(got, want) {
		t.Fatalf("mine response differs from direct run:\n got %s\nwant %s", got, want)
	}
}

// TestServerConcurrentMineSharedStages is the serving acceptance property:
// N concurrent mine requests against two registered datasets all return
// responses byte-identical to direct Mine calls, while each session's
// counters show exactly one executed mine — concurrent requests shared one
// mine per stage key via the singleflight caches.
func TestServerConcurrentMineSharedStages(t *testing.T) {
	s, ts := newTestServer(t, 4, Options{})
	names := []string{"d1", "d2"}
	cfgs := map[string]string{
		"d1": `{"min_sup": 100, "method": "direct", "control": "fwer"}`,
		"d2": `{"min_sup": 120, "method": "direct", "control": "fdr", "alpha": 0.01}`,
	}
	coreCfgs := map[string]core.Config{
		"d1": {MinSup: 100, Method: core.MethodDirect, Control: core.ControlFWER},
		"d2": {MinSup: 120, Method: core.MethodDirect, Control: core.ControlFDR, Alpha: 0.01},
	}
	want := make(map[string][]byte)
	for i, name := range names {
		d := signalDataset(t, 40+uint64(i))
		if _, err := s.Registry().Register(name, d); err != nil {
			t.Fatal(err)
		}
		fresh, err := core.Run(d, coreCfgs[name])
		if err != nil {
			t.Fatal(err)
		}
		want[name] = wireBytes(t, canonRun(EncodeRun(fresh, 0)))
	}

	const perDataset = 8
	var wg sync.WaitGroup
	errs := make(chan error, 2*perDataset)
	for _, name := range names {
		for g := 0; g < perDataset; g++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/datasets/"+name+"/mine", "application/json",
					strings.NewReader(cfgs[name]))
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				body, err := io.ReadAll(resp.Body)
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d: %s", name, resp.StatusCode, body)
					return
				}
				var run RunJSON
				if err := json.Unmarshal(body, &run); err != nil {
					errs <- fmt.Errorf("%s: %w", name, err)
					return
				}
				var buf bytes.Buffer
				enc := json.NewEncoder(&buf)
				enc.SetEscapeHTML(false)
				if err := enc.Encode(canonRun(run)); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(buf.Bytes(), want[name]) {
					errs <- fmt.Errorf("%s: response differs from direct run", name)
				}
			}(name)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	for _, name := range names {
		status, body := get(t, ts.URL+"/v1/datasets/"+name+"/stats")
		if status != http.StatusOK {
			t.Fatalf("stats status %d: %s", status, body)
		}
		var st statsJSON
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.Session.Mines != 1 || st.Session.Scores != 1 || st.Session.Encodes != 1 {
			t.Errorf("%s: concurrent requests did not share stages: mines=%d scores=%d encodes=%d",
				name, st.Session.Mines, st.Session.Scores, st.Session.Encodes)
		}
		if st.Session.Corrections != perDataset {
			t.Errorf("%s: corrections=%d, want %d", name, st.Session.Corrections, perDataset)
		}
	}
}

// TestServerBatch maps the batch endpoint onto Session.RunBatch: one mine,
// N corrections, responses in request order and byte-identical to direct
// runs.
func TestServerBatch(t *testing.T) {
	s, ts := newTestServer(t, 4, Options{})
	d := signalDataset(t, 50)
	if _, err := s.Registry().Register("d", d); err != nil {
		t.Fatal(err)
	}
	batch := `[
		{"min_sup": 100, "method": "none"},
		{"min_sup": 100, "method": "direct", "control": "fwer"},
		{"min_sup": 100, "method": "direct", "control": "fdr"}
	]`
	coreCfgs := []core.Config{
		{MinSup: 100, Method: core.MethodNone},
		{MinSup: 100, Method: core.MethodDirect, Control: core.ControlFWER},
		{MinSup: 100, Method: core.MethodDirect, Control: core.ControlFDR},
	}
	wantRuns := make([]RunJSON, len(coreCfgs))
	for i, cfg := range coreCfgs {
		fresh, err := core.Run(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wantRuns[i] = canonRun(EncodeRun(fresh, 0))
	}
	status, body := post(t, ts.URL+"/v1/datasets/d/batch", batch)
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, body)
	}
	if got, want := canonBatchBody(t, body), wireBytes(t, wantRuns); !bytes.Equal(got, want) {
		t.Fatalf("batch response differs from direct runs:\n got %s\nwant %s", got, want)
	}
	var st statsJSON
	if status, sb := get(t, ts.URL+"/v1/datasets/d/stats"); status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	} else if err := json.Unmarshal(sb, &st); err != nil {
		t.Fatal(err)
	}
	if st.Session.Mines != 1 || st.Session.Corrections != int64(len(coreCfgs)) {
		t.Errorf("batch stats: mines=%d corrections=%d, want 1/%d",
			st.Session.Mines, st.Session.Corrections, len(coreCfgs))
	}
}

// TestServerRegistryEvictionObservable fills the registry past capacity:
// the LRU dataset stops resolving (404) and the eviction is visible in
// /healthz.
func TestServerRegistryEvictionObservable(t *testing.T) {
	s, ts := newTestServer(t, 2, Options{})
	d := tinyData()
	for _, name := range []string{"a", "b", "c"} {
		if _, err := s.Registry().Register(name, d); err != nil {
			t.Fatal(err)
		}
	}
	if status, body := get(t, ts.URL+"/v1/datasets/a/stats"); status != http.StatusNotFound {
		t.Errorf("evicted dataset stats status %d: %s", status, body)
	}
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	var h healthJSON
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Datasets != 2 || h.Evictions != 1 {
		t.Errorf("healthz = %+v, want ok/2 datasets/1 eviction", h)
	}
}

// TestServerTimeout enforces the per-request deadline: an unmeetable
// timeout turns into 504, and a fresh request with a live deadline still
// succeeds (the deadline error never poisons the caches).
func TestServerTimeout(t *testing.T) {
	s, ts := newTestServer(t, 2, Options{Timeout: time.Nanosecond})
	d := signalDataset(t, 60)
	if _, err := s.Registry().Register("d", d); err != nil {
		t.Fatal(err)
	}
	body := `{"min_sup": 100, "method": "direct"}`
	status, resp := post(t, ts.URL+"/v1/datasets/d/mine", body)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", status, resp)
	}
	// A server with a livable deadline serves the same dataset fine — the
	// deadline error never poisons the session caches.
	s2, ts2 := newTestServer(t, 2, Options{})
	if _, err := s2.Registry().Register("d", d); err != nil {
		t.Fatal(err)
	}
	if status, resp := post(t, ts2.URL+"/v1/datasets/d/mine", body); status != http.StatusOK {
		t.Fatalf("with live deadline: status %d (%s)", status, resp)
	}
}

// TestServerErrors covers the failure surface: unknown datasets, malformed
// bodies, invalid enums/limits and pipeline-level config errors, each with
// the right status code and a JSON error body.
func TestServerErrors(t *testing.T) {
	s, ts := newTestServer(t, 2, Options{})
	if _, err := s.Registry().Register("d", signalDataset(t, 70)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		label  string
		method string
		url    string
		body   string
		status int
	}{
		{"mine unknown dataset", "POST", "/v1/datasets/nope/mine", `{"min_sup":5}`, http.StatusNotFound},
		{"stats unknown dataset", "GET", "/v1/datasets/nope/stats", "", http.StatusNotFound},
		{"bad json", "POST", "/v1/datasets/d/mine", `{`, http.StatusBadRequest},
		{"trailing content", "POST", "/v1/datasets/d/mine", `{"min_sup":5} {"min_sup":6}`, http.StatusBadRequest},
		{"unknown field", "POST", "/v1/datasets/d/mine", `{"bogus": 1}`, http.StatusBadRequest},
		{"bad method enum", "POST", "/v1/datasets/d/mine", `{"min_sup":5,"method":"bogus"}`, http.StatusBadRequest},
		{"bad control enum", "POST", "/v1/datasets/d/mine", `{"min_sup":5,"control":"bogus"}`, http.StatusBadRequest},
		{"bad test enum", "POST", "/v1/datasets/d/mine", `{"min_sup":5,"test":"bogus"}`, http.StatusBadRequest},
		{"bad limit", "POST", "/v1/datasets/d/mine?limit=-1", `{"min_sup":5}`, http.StatusBadRequest},
		{"config rejected by pipeline", "POST", "/v1/datasets/d/mine", `{"min_sup":5,"alpha":2}`, http.StatusUnprocessableEntity},
		{"empty batch", "POST", "/v1/datasets/d/batch", `[]`, http.StatusBadRequest},
		{"batch bad entry", "POST", "/v1/datasets/d/batch", `[{"min_sup":5},{"method":"bogus"}]`, http.StatusBadRequest},
		{"upload missing name", "POST", "/v1/datasets", "a,class\nx,y\n", http.StatusBadRequest},
		{"upload bad name", "POST", "/v1/datasets?name=a/b", "a,class\nx,y\n", http.StatusBadRequest},
		{"upload empty csv", "POST", "/v1/datasets?name=e", "", http.StatusBadRequest},
		{"delete unknown", "DELETE", "/v1/datasets/nope", "", http.StatusNotFound},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.url, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d (%s), want %d", tc.label, resp.StatusCode, body, tc.status)
			continue
		}
		var e errorJSON
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not JSON", tc.label, body)
		}
	}
	// Batch index: the malformed entry's position is reported.
	status, body := post(t, ts.URL+"/v1/datasets/d/batch", `[{"min_sup":5},{"method":"bogus"}]`)
	if status != http.StatusBadRequest || !strings.Contains(string(body), "config 1") {
		t.Errorf("batch error should name the offending index: %d %s", status, body)
	}
}

// TestServerUploadTooLarge distinguishes a size-limit hit (413) from a
// malformed CSV (400) so clients can react to each.
func TestServerUploadTooLarge(t *testing.T) {
	_, ts := newTestServer(t, 2, Options{MaxUploadBytes: 16})
	status, body := post(t, ts.URL+"/v1/datasets?name=big", "a,class\nx,y\nx,y\nx,y\n")
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d (%s), want 413", status, body)
	}
}

// TestServerJSONBodyLimits bounds the per-request memory of mine/batch:
// oversized JSON bodies get 413 (like uploads) and oversized batches 400.
func TestServerJSONBodyLimits(t *testing.T) {
	s, ts := newTestServer(t, 2, Options{})
	if _, err := s.Registry().Register("d", tinyData()); err != nil {
		t.Fatal(err)
	}
	huge := `{"min_sup": 1, "test": "` + strings.Repeat(" ", maxJSONBody) + `"}`
	status, body := post(t, ts.URL+"/v1/datasets/d/mine", huge)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d (%.80s), want 413", status, body)
	}
	var b strings.Builder
	b.WriteString("[")
	for i := 0; i <= maxBatchConfigs; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"min_sup":%d}`, i+1)
	}
	b.WriteString("]")
	status, body = post(t, ts.URL+"/v1/datasets/d/batch", b.String())
	if status != http.StatusBadRequest || !strings.Contains(string(body), "maximum") {
		t.Fatalf("oversized batch: status %d (%.120s), want 400 naming the cap", status, body)
	}
}

// TestServerDeleteAndList exercises dataset lifecycle endpoints.
func TestServerDeleteAndList(t *testing.T) {
	s, ts := newTestServer(t, 4, Options{})
	d := tinyData()
	for _, n := range []string{"a", "b"} {
		if _, err := s.Registry().Register(n, d); err != nil {
			t.Fatal(err)
		}
	}
	status, body := get(t, ts.URL+"/v1/datasets")
	if status != http.StatusOK {
		t.Fatalf("list status %d", status)
	}
	var l listJSON
	if err := json.Unmarshal(body, &l); err != nil {
		t.Fatal(err)
	}
	if len(l.Datasets) != 2 {
		t.Fatalf("list = %v", l.Datasets)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/datasets/a", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if s.Registry().Len() != 1 {
		t.Errorf("registry len = %d after delete", s.Registry().Len())
	}
}
