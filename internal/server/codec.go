package server

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/permute"
)

// ConfigJSON is the wire form of a core.Config: enum-valued fields travel
// as lower-case strings ("direct", "fdr", "fisher", ...) so request bodies
// stay readable and stable across internal renumbering. Zero fields keep
// the library defaults (Alpha 0.05, 1000 permutations, Fisher test, all
// CPUs).
type ConfigJSON struct {
	MinSup       int     `json:"min_sup,omitempty"`
	MinSupFrac   float64 `json:"min_sup_frac,omitempty"`
	MinConf      float64 `json:"min_conf,omitempty"`
	Alpha        float64 `json:"alpha,omitempty"`
	Control      string  `json:"control,omitempty"`
	Method       string  `json:"method,omitempty"`
	Permutations int     `json:"permutations,omitempty"`
	Seed         uint64  `json:"seed,omitempty"`
	Workers      int     `json:"workers,omitempty"`
	// Shards splits a permutation run's index range across that many
	// disjoint contiguous shards (0 or 1 = single-node); results are
	// byte-identical regardless of the count.
	Shards            int     `json:"shards,omitempty"`
	MaxLen            int     `json:"max_len,omitempty"`
	MaxNodes          int     `json:"max_nodes,omitempty"`
	Test              string  `json:"test,omitempty"`
	RedundancyEpsilon float64 `json:"redundancy_epsilon,omitempty"`
	HoldoutRandom     bool    `json:"holdout_random,omitempty"`
	// Adaptive switches permutation runs into sequential early-stopping
	// mode; max_perms is the permutation budget and must be positive when
	// the object is present.
	Adaptive *AdaptiveJSON `json:"adaptive,omitempty"`
}

// AdaptiveJSON is the wire form of permute.Adaptive.
type AdaptiveJSON struct {
	MinPerms    int `json:"min_perms,omitempty"`
	MaxPerms    int `json:"max_perms"`
	Exceedances int `json:"exceedances,omitempty"`
}

// ToConfig decodes the wire form into a core.Config. The method defaults
// to "direct" when empty; unknown enum strings are rejected.
func (c ConfigJSON) ToConfig() (core.Config, error) {
	cfg := core.Config{
		MinSup:            c.MinSup,
		MinSupFrac:        c.MinSupFrac,
		MinConf:           c.MinConf,
		Alpha:             c.Alpha,
		Permutations:      c.Permutations,
		Seed:              c.Seed,
		Workers:           c.Workers,
		Shards:            c.Shards,
		MaxLen:            c.MaxLen,
		MaxNodes:          c.MaxNodes,
		RedundancyEpsilon: c.RedundancyEpsilon,
		HoldoutRandom:     c.HoldoutRandom,
	}
	var err error
	if cfg.Control, err = core.ParseControl(c.Control); err != nil {
		return cfg, err
	}
	method := c.Method
	if method == "" {
		method = "direct"
	}
	if cfg.Method, err = core.ParseMethod(method); err != nil {
		return cfg, err
	}
	if cfg.Test, err = core.ParseTest(c.Test); err != nil {
		return cfg, err
	}
	if c.Adaptive != nil {
		if c.Adaptive.MaxPerms <= 0 {
			return cfg, fmt.Errorf("adaptive.max_perms must be > 0, got %d", c.Adaptive.MaxPerms)
		}
		cfg.Adaptive = permute.Adaptive{
			MinPerms:    c.Adaptive.MinPerms,
			MaxPerms:    c.Adaptive.MaxPerms,
			Exceedances: c.Adaptive.Exceedances,
		}
	}
	return cfg, nil
}

// RuleJSON is the wire form of one significant rule.
type RuleJSON struct {
	Items      []string `json:"items"`
	Class      string   `json:"class"`
	Coverage   int      `json:"coverage"`
	Support    int      `json:"support"`
	Confidence float64  `json:"confidence"`
	P          float64  `json:"p"`
}

// RunJSON is the wire form of one mining run's result.
type RunJSON struct {
	Method         string  `json:"method"`
	Control        string  `json:"control"`
	Alpha          float64 `json:"alpha"`
	MinSup         int     `json:"min_sup"`
	NumRecords     int     `json:"num_records"`
	NumPatterns    int     `json:"num_patterns"`
	NumTested      int     `json:"num_tested"`
	NumSignificant int     `json:"num_significant"`
	Cutoff         float64 `json:"cutoff"`
	MineMillis     float64 `json:"mine_ms"`
	CorrectMillis  float64 `json:"correct_ms"`
	// Perm carries the adaptive engine's telemetry; absent for
	// non-adaptive runs.
	Perm  *PermStatsJSON `json:"perm,omitempty"`
	Rules []RuleJSON     `json:"rules"`
}

// PermStatsJSON is the wire form of core.PermStats.
type PermStatsJSON struct {
	Rounds       int   `json:"rounds"`
	PermsRun     int   `json:"perms_run"`
	MaxPerms     int   `json:"max_perms"`
	RulesRetired int   `json:"rules_retired"`
	PermsSaved   int64 `json:"perms_saved"`
}

// EncodeRun converts a pipeline result into wire form, truncating the rule
// list to limit entries (0 = all).
func EncodeRun(res *core.Result, limit int) RunJSON {
	run := RunJSON{
		Method:         res.Method.String(),
		Control:        res.Control.String(),
		Alpha:          res.Alpha,
		MinSup:         res.MinSup,
		NumRecords:     res.NumRecords,
		NumPatterns:    res.NumPatterns,
		NumTested:      res.NumTested,
		NumSignificant: len(res.Significant),
		Cutoff:         res.Cutoff,
		MineMillis:     float64(res.MineTime.Microseconds()) / 1e3,
		CorrectMillis:  float64(res.CorrectTime.Microseconds()) / 1e3,
		Rules:          []RuleJSON{},
	}
	if res.Perm != nil {
		run.Perm = &PermStatsJSON{
			Rounds:       res.Perm.Rounds,
			PermsRun:     res.Perm.PermsRun,
			MaxPerms:     res.Perm.MaxPerms,
			RulesRetired: res.Perm.RulesRetired,
			PermsSaved:   res.Perm.PermsSaved,
		}
	}
	n := len(res.Significant)
	if limit > 0 && n > limit {
		n = limit
	}
	for _, r := range res.Significant[:n] {
		run.Rules = append(run.Rules, RuleJSON{
			Items:      r.Items,
			Class:      r.Class,
			Coverage:   r.Coverage,
			Support:    r.Support,
			Confidence: r.Confidence,
			P:          r.P,
		})
	}
	return run
}

// StatsJSON is the wire form of a session's stage counters plus its
// cache occupancy — the observable evidence that the size bounds hold in a
// long-lived process.
type StatsJSON struct {
	Encodes       int64 `json:"encodes"`
	Mines         int64 `json:"mines"`
	Scores        int64 `json:"scores"`
	TreeHits      int64 `json:"tree_hits"`
	ScoreHits     int64 `json:"score_hits"`
	Corrections   int64 `json:"corrections"`
	AdaptiveRuns  int64 `json:"adaptive_runs"`
	PermsSaved    int64 `json:"perms_saved"`
	Holdouts      int64 `json:"holdouts"`
	TreeEvictions int64 `json:"tree_evictions"`
	RuleEvictions int64 `json:"rule_evictions"`
	CachedTrees   int64 `json:"cached_trees"`
	CachedRules   int64 `json:"cached_rules"`
}

// EncodeStats converts session stage counters into wire form.
func EncodeStats(st core.SessionStats) StatsJSON {
	return StatsJSON{
		Encodes:       st.Encodes,
		Mines:         st.Mines,
		Scores:        st.Scores,
		TreeHits:      st.TreeHits,
		ScoreHits:     st.ScoreHits,
		Corrections:   st.Corrections,
		AdaptiveRuns:  st.AdaptiveRuns,
		PermsSaved:    st.PermsSaved,
		Holdouts:      st.Holdouts,
		TreeEvictions: st.TreeEvictions,
		RuleEvictions: st.RuleEvictions,
		CachedTrees:   st.CachedTrees,
		CachedRules:   st.CachedRules,
	}
}

// validateConfigs decodes a batch of wire configs, rejecting the first
// malformed entry with its index in the error — before any mining starts.
func validateConfigs(cfgs []ConfigJSON) ([]core.Config, error) {
	out := make([]core.Config, len(cfgs))
	for i, cj := range cfgs {
		cfg, err := cj.ToConfig()
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		out[i] = cfg
	}
	return out, nil
}
