package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func tinySchema() *Schema {
	return &Schema{
		Attrs: []Attribute{
			{Name: "color", Values: []string{"red", "green", "blue"}},
			{Name: "size", Values: []string{"S", "L"}},
		},
		Class: Attribute{Name: "class", Values: []string{"yes", "no"}},
	}
}

func tinyDataset() *Dataset {
	d := New(tinySchema(), 4)
	d.Append([]int32{0, 0}, 0)  // red, S, yes
	d.Append([]int32{0, 1}, 0)  // red, L, yes
	d.Append([]int32{1, 1}, 1)  // green, L, no
	d.Append([]int32{2, -1}, 1) // blue, ?, no
	return d
}

func TestDatasetBasics(t *testing.T) {
	d := tinyDataset()
	if d.NumRecords() != 4 {
		t.Fatalf("NumRecords = %d, want 4", d.NumRecords())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	counts := d.ClassCounts()
	if counts[0] != 2 || counts[1] != 2 {
		t.Errorf("ClassCounts = %v, want [2 2]", counts)
	}
}

func TestValidateCatchesBadCells(t *testing.T) {
	d := tinyDataset()
	d.Cells[1][0] = 5 // out of vocabulary
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted an out-of-range cell")
	}
	d = tinyDataset()
	d.Labels[0] = 9
	if err := d.Validate(); err == nil {
		t.Error("Validate accepted an out-of-range label")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := tinyDataset()
	c := d.Clone()
	c.Cells[0][0] = 2
	c.Labels[0] = 1
	if d.Cells[0][0] != 0 || d.Labels[0] != 0 {
		t.Error("Clone shares mutable state with the original")
	}
}

func TestConcatAndSplitHalves(t *testing.T) {
	d := tinyDataset()
	a, b := d.SplitHalves()
	if a.NumRecords() != 2 || b.NumRecords() != 2 {
		t.Fatalf("halves sized %d/%d, want 2/2", a.NumRecords(), b.NumRecords())
	}
	back := Concat(a, b)
	if back.NumRecords() != 4 {
		t.Fatalf("Concat size = %d, want 4", back.NumRecords())
	}
	for r := range back.Cells {
		if back.Labels[r] != d.Labels[r] {
			t.Errorf("record %d label changed after round-trip", r)
		}
		for a2 := range back.Cells[r] {
			if back.Cells[r][a2] != d.Cells[r][a2] {
				t.Errorf("record %d cell %d changed after round-trip", r, a2)
			}
		}
	}
}

func TestRandomSplit(t *testing.T) {
	s := tinySchema()
	d := New(s, 101)
	for i := 0; i < 101; i++ {
		d.Append([]int32{int32(i % 3), int32(i % 2)}, int32(i%2))
	}
	a, b := d.RandomSplit(42)
	if a.NumRecords() != 51 || b.NumRecords() != 50 {
		t.Fatalf("split sizes %d/%d, want 51/50", a.NumRecords(), b.NumRecords())
	}
	// Same seed → same partition.
	a2, _ := d.RandomSplit(42)
	for r := range a.Cells {
		if a.Labels[r] != a2.Labels[r] {
			t.Fatal("RandomSplit not deterministic for equal seeds")
		}
	}
	// Every record appears exactly once across the two parts (count by
	// multiset of label+cells signature).
	if a.NumRecords()+b.NumRecords() != d.NumRecords() {
		t.Error("records lost or duplicated by RandomSplit")
	}
}

func TestEncodingRoundTrip(t *testing.T) {
	s := tinySchema()
	e := NewEncoding(s)
	if e.NumItems() != 5 {
		t.Fatalf("NumItems = %d, want 5", e.NumItems())
	}
	for a := range s.Attrs {
		for v := range s.Attrs[a].Values {
			it := e.ItemOf(a, int32(v))
			ga, gv := e.AttrValue(it)
			if ga != a || gv != int32(v) {
				t.Errorf("round trip (%d,%d) -> item %d -> (%d,%d)", a, v, it, ga, gv)
			}
		}
	}
	if got := e.String(e.ItemOf(1, 1)); got != "size=L" {
		t.Errorf("String = %q, want size=L", got)
	}
}

func TestEncodeVertical(t *testing.T) {
	d := tinyDataset()
	enc := Encode(d)
	if enc.NumRecords != 4 || enc.NumClasses != 2 {
		t.Fatalf("enc dims wrong: %d records, %d classes", enc.NumRecords, enc.NumClasses)
	}
	e := enc.Enc
	// color=red appears in records 0,1.
	red := enc.Tids[e.ItemOf(0, 0)]
	if len(red) != 2 || red[0] != 0 || red[1] != 1 {
		t.Errorf("tids(color=red) = %v, want [0 1]", red)
	}
	// size=L appears in records 1,2.
	l := enc.Tids[e.ItemOf(1, 1)]
	if len(l) != 2 || l[0] != 1 || l[1] != 2 {
		t.Errorf("tids(size=L) = %v, want [1 2]", l)
	}
	// Record 3's missing size appears in no size tid-list.
	sCount := len(enc.Tids[e.ItemOf(1, 0)]) + len(enc.Tids[e.ItemOf(1, 1)])
	if sCount != 3 {
		t.Errorf("size tid-lists cover %d records, want 3 (one missing)", sCount)
	}
	if enc.ClassCounts[0] != 2 || enc.ClassCounts[1] != 2 {
		t.Errorf("ClassCounts = %v", enc.ClassCounts)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := tinyDataset()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	tab, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tab.ToDataset(len(tab.Header) - 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRecords() != d.NumRecords() {
		t.Fatalf("round trip records = %d, want %d", got.NumRecords(), d.NumRecords())
	}
	// The missing cell must survive the round trip.
	if got.Cells[3][1] != -1 {
		t.Errorf("missing cell read back as %d, want -1", got.Cells[3][1])
	}
	// Re-encode and compare class counts and per-item supports.
	e1, e2 := Encode(d), Encode(got)
	if e1.NumRecords != e2.NumRecords {
		t.Fatal("record counts differ")
	}
	for r := range d.Labels {
		lbl1 := d.Schema.Class.Values[d.Labels[r]]
		lbl2 := got.Schema.Class.Values[got.Labels[r]]
		if lbl1 != lbl2 {
			t.Errorf("record %d label %q != %q", r, lbl1, lbl2)
		}
	}
}

// TestReadTableStripsBOM is the Excel-export regression: a UTF-8 BOM at
// stream start must not leak into the first header name (which would make
// column lookups silently miss), and a BOM-only prefix shorter than three
// bytes or mid-stream BOM bytes must be left alone.
func TestReadTableStripsBOM(t *testing.T) {
	tab, err := ReadTable(strings.NewReader("\uFEFFa,b,class\nx,y,z\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Header[0] != "a" {
		t.Errorf("BOM leaked into header: %q", tab.Header[0])
	}
	// A BOM only counts at the very start of the stream; a field that
	// legitimately begins with U+FEFF in a data row is preserved.
	tab, err = ReadTable(strings.NewReader("a,b,class\n\uFEFFx,y,z\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][0] != "\uFEFFx" {
		t.Errorf("mid-stream BOM mangled: %q", tab.Rows[0][0])
	}
	// Streams shorter than a BOM still parse (here: fail cleanly on EOF).
	if _, err := ReadTable(strings.NewReader("ab")); err != nil {
		t.Fatalf("short stream: %v", err)
	}
}

func TestReadTableErrors(t *testing.T) {
	if _, err := ReadTable(strings.NewReader("")); err == nil {
		t.Error("empty stream should fail")
	}
	// Ragged rows fail.
	if _, err := ReadTable(strings.NewReader("a,b,c\n1,2\n")); err == nil {
		t.Error("ragged CSV should fail")
	}
}

func TestToDatasetMissingClass(t *testing.T) {
	tab := &Table{
		Header: []string{"a", "class"},
		Rows:   [][]string{{"x", "?"}},
	}
	if _, err := tab.ToDataset(1); err == nil {
		t.Error("missing class label should be rejected")
	}
}

func TestNumericColumn(t *testing.T) {
	tab := &Table{
		Header: []string{"num", "cat", "mixed", "allmissing"},
		Rows: [][]string{
			{"1.5", "a", "1", "?"},
			{"2", "b", "x", ""},
			{"?", "c", "3", "?"},
		},
	}
	if !tab.NumericColumn(0) {
		t.Error("column 0 should be numeric")
	}
	if tab.NumericColumn(1) {
		t.Error("column 1 should not be numeric")
	}
	if tab.NumericColumn(2) {
		t.Error("column 2 (mixed) should not be numeric")
	}
	if tab.NumericColumn(3) {
		t.Error("column of only missing values should not be numeric")
	}
}

func TestContainsPattern(t *testing.T) {
	d := tinyDataset()
	// Pattern color=red, size=L matches only record 1.
	attrs, vals := []int{0, 1}, []int32{0, 1}
	want := []bool{false, true, false, false}
	for r := range d.Cells {
		if got := d.ContainsPattern(r, attrs, vals); got != want[r] {
			t.Errorf("record %d: ContainsPattern = %v, want %v", r, got, want[r])
		}
	}
}
