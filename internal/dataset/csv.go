package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Table is a raw string-valued table, the intermediate form between CSV
// files and a categorical Dataset. Continuous columns are discretized on a
// Table (see internal/disc) before conversion.
type Table struct {
	Header []string
	Rows   [][]string
	// Lines, when present, holds the 1-based file line on which each row
	// started. ReadTable fills it from csv.Reader.FieldPos so error
	// messages can point at the true offending line even when quoted
	// fields span lines; hand-built tables may leave it nil.
	Lines []int
}

// line returns the file line to report for row ri: the recorded starting
// line when known, otherwise the legacy one-line-per-row estimate (header
// on line 1, first row on line 2).
func (t *Table) line(ri int) int {
	if ri < len(t.Lines) {
		return t.Lines[ri]
	}
	return ri + 2
}

// utf8BOM is the byte-order mark Excel (and other Windows tools) prepend
// to UTF-8 CSV exports. encoding/csv does not strip it, so without special
// handling the first header cell is parsed as "\uFEFFname" and column
// lookups silently miss.
var utf8BOM = []byte{0xEF, 0xBB, 0xBF}

// skipBOM returns r with a leading UTF-8 byte-order mark consumed, if
// present.
func skipBOM(r io.Reader) io.Reader {
	br := bufio.NewReader(r)
	if lead, err := br.Peek(len(utf8BOM)); err == nil &&
		lead[0] == utf8BOM[0] && lead[1] == utf8BOM[1] && lead[2] == utf8BOM[2] {
		br.Discard(len(utf8BOM))
	}
	return br
}

// ReadTable reads a CSV stream with a header row. A leading UTF-8 BOM
// (as written by Excel CSV exports) is stripped.
func ReadTable(r io.Reader) (*Table, error) {
	cr := csv.NewReader(skipBOM(r))
	cr.ReuseRecord = false
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	t := &Table{Header: header}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			// csv errors carry their own line position, which stays
			// correct when quoted fields span lines; a row count here
			// would not.
			return nil, fmt.Errorf("dataset: reading CSV: %w", err)
		}
		line, _ := cr.FieldPos(0)
		t.Rows = append(t.Rows, rec)
		t.Lines = append(t.Lines, line)
	}
	return t, nil
}

// ReadTableFile reads a CSV file with a header row.
func ReadTableFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTable(f)
}

// NumericColumn reports whether every non-missing value in column c parses
// as a float (used to decide which columns need discretization). Missing
// values are the empty string and "?".
func (t *Table) NumericColumn(c int) bool {
	seen := false
	for _, row := range t.Rows {
		v := row[c]
		if v == "" || v == "?" {
			continue
		}
		if _, err := strconv.ParseFloat(v, 64); err != nil {
			return false
		}
		seen = true
	}
	return seen
}

// ToDataset converts the table into a categorical Dataset, treating column
// classCol as the class attribute and every other column as categorical
// (each distinct string becomes a value). Missing values ("" or "?") map to
// cell value -1. Records with a missing class label are rejected.
func (t *Table) ToDataset(classCol int) (*Dataset, error) {
	if classCol < 0 || classCol >= len(t.Header) {
		return nil, fmt.Errorf("dataset: class column %d out of range [0,%d)", classCol, len(t.Header))
	}
	schema := &Schema{}
	attrCols := make([]int, 0, len(t.Header)-1)
	for c := range t.Header {
		if c != classCol {
			attrCols = append(attrCols, c)
		}
	}
	// Build vocabularies in first-appearance order for determinism.
	vocabs := make([]map[string]int32, len(attrCols))
	for i, c := range attrCols {
		schema.Attrs = append(schema.Attrs, Attribute{Name: t.Header[c]})
		vocabs[i] = make(map[string]int32)
	}
	classVocab := make(map[string]int32)
	schema.Class = Attribute{Name: t.Header[classCol]}

	d := New(schema, len(t.Rows))
	for ri, row := range t.Rows {
		if len(row) != len(t.Header) {
			return nil, fmt.Errorf("dataset: line %d has %d fields, header has %d", t.line(ri), len(row), len(t.Header))
		}
		cv := row[classCol]
		if cv == "" || cv == "?" {
			return nil, fmt.Errorf("dataset: line %d has a missing class label", t.line(ri))
		}
		ci, ok := classVocab[cv]
		if !ok {
			ci = int32(len(schema.Class.Values))
			classVocab[cv] = ci
			schema.Class.Values = append(schema.Class.Values, cv)
		}
		cells := make([]int32, len(attrCols))
		for i, c := range attrCols {
			v := row[c]
			if v == "" || v == "?" {
				cells[i] = -1
				continue
			}
			vi, ok := vocabs[i][v]
			if !ok {
				vi = int32(len(schema.Attrs[i].Values))
				vocabs[i][v] = vi
				schema.Attrs[i].Values = append(schema.Attrs[i].Values, v)
			}
			cells[i] = vi
		}
		d.Append(cells, ci)
	}
	return d, nil
}

// WriteCSV writes the dataset as CSV with a header row; the class column is
// written last under its schema name. Missing cells are written as "?".
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, d.Schema.NumAttrs()+1)
	for _, a := range d.Schema.Attrs {
		header = append(header, a.Name)
	}
	header = append(header, d.Schema.Class.Name)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for r, cells := range d.Cells {
		for a, v := range cells {
			if v < 0 {
				row[a] = "?"
			} else {
				row[a] = d.Schema.Attrs[a].Values[v]
			}
		}
		row[len(row)-1] = d.Schema.Class.Values[d.Labels[r]]
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the dataset to a CSV file.
func (d *Dataset) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
