package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzCSVRoundTrip feeds arbitrary CSV text through ReadTable → ToDataset
// → WriteCSV → ReadTable and checks the parsers never panic and that a
// successfully parsed dataset survives the round trip with identical
// record count and class labels.
func FuzzCSVRoundTrip(f *testing.F) {
	f.Add("a,b,class\n1,x,yes\n2,y,no\n")
	f.Add("c1,c2\n?,lab\n,lab2\n")
	f.Add("h\nv\n")
	f.Fuzz(func(t *testing.T, in string) {
		tab, err := ReadTable(strings.NewReader(in))
		if err != nil {
			return // malformed CSV is allowed to fail
		}
		if len(tab.Header) == 0 {
			return
		}
		d, err := tab.ToDataset(len(tab.Header) - 1)
		if err != nil {
			return // missing class labels etc. are allowed to fail
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("parsed dataset invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		tab2, err := ReadTable(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		d2, err := tab2.ToDataset(len(tab2.Header) - 1)
		if err != nil {
			t.Fatalf("re-convert failed: %v", err)
		}
		if d2.NumRecords() != d.NumRecords() {
			t.Fatalf("round trip changed record count %d -> %d", d.NumRecords(), d2.NumRecords())
		}
		for r := range d.Labels {
			l1 := d.Schema.Class.Values[d.Labels[r]]
			l2 := d2.Schema.Class.Values[d2.Labels[r]]
			if l1 != l2 {
				t.Fatalf("record %d label %q -> %q", r, l1, l2)
			}
		}
	})
}
