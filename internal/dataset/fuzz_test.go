package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzCSVRoundTrip feeds arbitrary CSV text through ReadTable → ToDataset
// → WriteCSV → ReadTable and checks the parsers never panic and that a
// successfully parsed dataset survives the round trip with identical
// record count and class labels.
func FuzzCSVRoundTrip(f *testing.F) {
	f.Add("a,b,class\n1,x,yes\n2,y,no\n")
	f.Add("c1,c2\n?,lab\n,lab2\n")
	f.Add("h\nv\n")
	f.Fuzz(func(t *testing.T, in string) {
		tab, err := ReadTable(strings.NewReader(in))
		if err != nil {
			return // malformed CSV is allowed to fail
		}
		if len(tab.Header) == 0 {
			return
		}
		d, err := tab.ToDataset(len(tab.Header) - 1)
		if err != nil {
			return // missing class labels etc. are allowed to fail
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("parsed dataset invalid: %v", err)
		}
		var buf bytes.Buffer
		if err := d.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		tab2, err := ReadTable(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		d2, err := tab2.ToDataset(len(tab2.Header) - 1)
		if err != nil {
			t.Fatalf("re-convert failed: %v", err)
		}
		if d2.NumRecords() != d.NumRecords() {
			t.Fatalf("round trip changed record count %d -> %d", d.NumRecords(), d2.NumRecords())
		}
		for r := range d.Labels {
			l1 := d.Schema.Class.Values[d.Labels[r]]
			l2 := d2.Schema.Class.Values[d2.Labels[r]]
			if l1 != l2 {
				t.Fatalf("record %d label %q -> %q", r, l1, l2)
			}
		}
	})
}

// FuzzReadTable targets the CSV reader itself with adversarial inputs —
// BOMs, quoting, ragged rows, CRLF, embedded newlines — and checks its
// contract: never panic, and every accepted table is rectangular (any
// ragged row slipping through would crash NumericColumn and the encoder
// downstream).
func FuzzReadTable(f *testing.F) {
	f.Add("a,b,cls\n1,2,yes\n3,4,no\n")
	f.Add("\xEF\xBB\xBFa,b,cls\n1,2,yes\n")          // Excel UTF-8 BOM
	f.Add("a,b,cls\n\"x,y\",2,yes\n")                // quoted comma
	f.Add("a,b,cls\r\n1,2,yes\r\n3,4,no\r\n")        // CRLF line endings
	f.Add("a,b,cls\n1,2\n")                          // ragged: too few fields
	f.Add("a,b,cls\n1,2,yes,extra\n")                // ragged: too many fields
	f.Add("a,b,cls\n\"unterminated,2,yes\n")         // broken quoting
	f.Add("")                                        // empty stream
	f.Add("\xEF\xBB\xBF")                            // BOM only
	f.Add("\xEF\xBB")                                // truncated BOM
	f.Add("a,a,a\n?,,?\n")                           // duplicate headers, missing cells
	f.Add("a,b,cls\n  1,2,yes\n")                    // leading spaces (trimmed)
	f.Add(strings.Repeat(",", 40) + "\n1,2\n")       // empty header names
	f.Add("a,b,cls\n1,2,\"multi\nline\"\n3,4,yes\n") // embedded newline

	f.Fuzz(func(t *testing.T, input string) {
		tab, err := ReadTable(strings.NewReader(input))
		if err != nil {
			return
		}
		if tab.Header == nil {
			t.Fatal("accepted table has nil header")
		}
		for i, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Fatalf("accepted row %d has %d fields, header %d", i, len(row), len(tab.Header))
			}
		}
		for c := range tab.Header {
			tab.NumericColumn(c)
		}
		if len(tab.Header) > 0 {
			if d, err := tab.ToDataset(len(tab.Header) - 1); err == nil {
				if d.NumRecords() != len(tab.Rows) {
					t.Fatalf("ToDataset kept %d of %d rows", d.NumRecords(), len(tab.Rows))
				}
			}
		}
	})
}
