package dataset

import (
	"fmt"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
)

// randCSV builds a deterministic categorical CSV with missing values and
// the occasional quoted field, returning the text.
func randCSV(seed uint64, rows, attrs int) string {
	rng := rand.New(rand.NewPCG(seed, 0))
	var b strings.Builder
	for a := 0; a < attrs; a++ {
		fmt.Fprintf(&b, "a%d,", a)
	}
	b.WriteString("class\n")
	for r := 0; r < rows; r++ {
		for a := 0; a < attrs; a++ {
			switch rng.IntN(10) {
			case 0:
				b.WriteString("?")
			case 1:
				// empty = missing
			default:
				fmt.Fprintf(&b, "v%d", rng.IntN(2+a))
			}
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "c%d\n", rng.IntN(3))
	}
	return b.String()
}

func TestReadDatasetMatchesToDataset(t *testing.T) {
	cases := map[string]string{
		"random": randCSV(1, 200, 5),
		"quoted": "a,b,class\n\"x,1\",\"line\nbreak\",yes\nplain,\"v\"\"q\",no\n?,,yes\n",
		"bom":    "\xEF\xBB\xBFa,class\nv,c\n",
	}
	for name, csvText := range cases {
		t.Run(name, func(t *testing.T) {
			tab, err := ReadTable(strings.NewReader(csvText))
			if err != nil {
				t.Fatal(err)
			}
			want, err := tab.ToDataset(len(tab.Header) - 1)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ReadDataset(strings.NewReader(csvText), -1)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Schema, want.Schema) {
				t.Fatalf("schema mismatch:\n got %+v\nwant %+v", got.Schema, want.Schema)
			}
			if !reflect.DeepEqual(got.Cells, want.Cells) || !reflect.DeepEqual(got.Labels, want.Labels) {
				t.Fatalf("cells/labels mismatch")
			}
		})
	}
}

func TestReadDatasetClassCol(t *testing.T) {
	csvText := "class,a\nyes,v1\nno,v2\n"
	d, err := ReadDataset(strings.NewReader(csvText), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Schema.Class.Name != "class" || d.Schema.Attrs[0].Name != "a" {
		t.Fatalf("wrong columns: %+v", d.Schema)
	}
	if got := d.Schema.Class.Values; !reflect.DeepEqual(got, []string{"yes", "no"}) {
		t.Fatalf("class vocab = %v", got)
	}
}

// TestQuotedNewlineLineNumbers is the satellite-bug fixture: a quoted
// field spanning three file lines shifts every later row's file line, and
// error messages must report the true line, not row-index+2.
func TestQuotedNewlineLineNumbers(t *testing.T) {
	csvText := "a,class\n" + // line 1
		"\"x\ny\nz\",c1\n" + // row 0 spans lines 2-4
		"v,c1\n" + // row 1 on line 5
		"w,?\n" // row 2 on line 6: missing class
	tab, err := ReadTable(strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{2, 5, 6}; !reflect.DeepEqual(tab.Lines, want) {
		t.Fatalf("Lines = %v, want %v", tab.Lines, want)
	}
	_, err = tab.ToDataset(1)
	if err == nil || !strings.Contains(err.Error(), "line 6") {
		t.Fatalf("ToDataset error = %v, want mention of line 6", err)
	}
	// The streaming reader must agree.
	_, err = ReadDataset(strings.NewReader(csvText), -1)
	if err == nil || !strings.Contains(err.Error(), "line 6") {
		t.Fatalf("ReadDataset error = %v, want mention of line 6", err)
	}
}

func TestTableLineFallback(t *testing.T) {
	// Hand-built tables have no recorded lines; the legacy row+2
	// estimate keeps errors plausible.
	tab := &Table{Header: []string{"a", "class"}, Rows: [][]string{{"v", ""}}}
	_, err := tab.ToDataset(1)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error = %v, want fallback line 2", err)
	}
}

func TestRowReaderResumeMatchesConcat(t *testing.T) {
	head := randCSV(2, 120, 4)
	tailRows := strings.SplitAfterN(randCSV(3, 80, 4), "\n", 2)[1]
	tail := strings.SplitAfterN(head, "\n", 2)[0] + tailRows

	whole, err := ReadDataset(strings.NewReader(strings.TrimSuffix(head, "\n")+"\n"+tailRows), -1)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ReadDataset(strings.NewReader(head), -1)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRowReaderResume(strings.NewReader(tail), -1, first.Schema)
	if err != nil {
		t.Fatal(err)
	}
	got := New(rr.Schema(), 0)
	got.Cells = append(got.Cells, first.Cells...)
	got.Labels = append(got.Labels, first.Labels...)
	for {
		cells := make([]int32, len(rr.Schema().Attrs))
		label, err := rr.Next(cells)
		if err != nil {
			break
		}
		got.Cells = append(got.Cells, cells)
		got.Labels = append(got.Labels, label)
	}
	if !reflect.DeepEqual(rr.Schema(), whole.Schema) {
		t.Fatalf("resumed schema mismatch:\n got %+v\nwant %+v", rr.Schema(), whole.Schema)
	}
	if !reflect.DeepEqual(got.Cells, whole.Cells) || !reflect.DeepEqual(got.Labels, whole.Labels) {
		t.Fatal("resumed cells/labels mismatch")
	}
	// The base schema must not have been mutated by the resume reader.
	if len(first.Schema.Attrs[0].Values) > len(whole.Schema.Attrs[0].Values) {
		t.Fatal("base schema grew")
	}
}

func TestRowReaderResumeRejectsHeaderMismatch(t *testing.T) {
	base, err := ReadDataset(strings.NewReader("a,b,class\nx,y,c\n"), -1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"a,class\nx,c\n",     // wrong arity
		"a,z,class\nx,y,c\n", // wrong attr name
		"a,b,klass\nx,y,c\n", // wrong class name
	} {
		if _, err := NewRowReaderResume(strings.NewReader(bad), -1, base.Schema); err == nil {
			t.Errorf("resume accepted mismatched header %q", bad)
		}
	}
}

// TestEncodeSegmentsReconstruct checks the streaming block path against
// the in-memory encoder: replaying every block's deltas and bitmaps must
// rebuild the exact vertical encoding, at several block sizes including
// ones that split the vocabulary growth across blocks.
func TestEncodeSegmentsReconstruct(t *testing.T) {
	csvText := randCSV(4, 157, 4)
	want, err := ReadDataset(strings.NewReader(csvText), -1)
	if err != nil {
		t.Fatal(err)
	}
	wantEnc := Encode(want)
	for _, segRecords := range []int{1, 7, 64, 100, 1000} {
		t.Run(fmt.Sprintf("seg=%d", segRecords), func(t *testing.T) {
			var blocks []*SegmentBlock
			schema, total, err := EncodeSegments(strings.NewReader(csvText),
				SegmentOptions{ClassCol: -1, SegRecords: segRecords},
				func(b *SegmentBlock) error { blocks = append(blocks, b); return nil })
			if err != nil {
				t.Fatal(err)
			}
			if total != want.NumRecords() {
				t.Fatalf("total = %d, want %d", total, want.NumRecords())
			}
			if !reflect.DeepEqual(schema, want.Schema) {
				t.Fatalf("schema mismatch")
			}
			// Replay deltas and bitmaps.
			replayed := &Schema{Class: Attribute{Name: schema.Class.Name}}
			for _, a := range schema.Attrs {
				replayed.Attrs = append(replayed.Attrs, Attribute{Name: a.Name})
			}
			enc := NewEncoding(schema)
			tids := make([][]uint32, enc.NumItems())
			var labels []int32
			base := 0
			for bi, blk := range blocks {
				if blk.Base != base {
					t.Fatalf("block %d base %d, want %d", bi, blk.Base, base)
				}
				for a := range replayed.Attrs {
					replayed.Attrs[a].Values = append(replayed.Attrs[a].Values, blk.AttrDeltas[a]...)
					if len(blk.Bitmaps[a]) != len(replayed.Attrs[a].Values) {
						t.Fatalf("block %d attr %d axis %d, vocab %d", bi, a, len(blk.Bitmaps[a]), len(replayed.Attrs[a].Values))
					}
					for v, bm := range blk.Bitmaps[a] {
						for w, word := range bm {
							for word != 0 {
								bit := word & -word
								r := w*64 + popLow(word)
								word &^= bit
								it := enc.ItemOf(a, int32(v))
								tids[it] = append(tids[it], uint32(blk.Base+r))
							}
						}
					}
				}
				replayed.Class.Values = append(replayed.Class.Values, blk.ClassDelta...)
				labels = append(labels, blk.Labels...)
				counts := make([]int, len(replayed.Class.Values))
				for _, c := range blk.Labels {
					counts[c]++
				}
				if !reflect.DeepEqual(counts, blk.ClassCounts) {
					t.Fatalf("block %d class counts %v, want %v", bi, blk.ClassCounts, counts)
				}
				base += blk.NumRecords
			}
			if !reflect.DeepEqual(replayed, want.Schema) {
				t.Fatalf("replayed schema mismatch")
			}
			if !reflect.DeepEqual(labels, wantEnc.Labels) {
				t.Fatal("labels mismatch")
			}
			for it := range tids {
				got, want := tids[it], wantEnc.Tids[it]
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("item %d tids %v, want %v", it, got, want)
				}
			}
		})
	}
}

// popLow returns the index of the lowest set bit of a non-zero word.
func popLow(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}
