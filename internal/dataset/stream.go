package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
)

// This file is the streaming half of the package: CSV input is encoded
// record by record — growing the attribute and class vocabularies in
// first-appearance order, exactly like Table.ToDataset — without ever
// materialising the raw string table. ReadDataset builds an in-memory
// Dataset this way (one materialisation instead of two), and
// EncodeSegments chunks the stream into per-item tid-word bitmap blocks
// for the out-of-core column store (internal/colstore, DESIGN.md §11).

// RowReader streams a CSV with a header row into encoded records: each
// Next call returns one record's cell value indices and class index,
// growing the schema's vocabularies in first-appearance order. The
// resulting schema (and therefore any dataset or segment store built
// from the stream) is byte-identical to reading the whole file with
// ReadTable and converting with ToDataset.
type RowReader struct {
	cr         *csv.Reader
	schema     *Schema
	classCol   int
	attrCols   []int
	vocabs     []map[string]int32
	classVocab map[string]int32
	rows       int
	line       int
}

// NewRowReader opens a CSV stream (header row required; a leading UTF-8
// BOM is stripped). classCol selects the class column; negative means
// the last column.
func NewRowReader(r io.Reader, classCol int) (*RowReader, error) {
	return newRowReader(r, classCol, nil)
}

// NewRowReaderResume is NewRowReader continuing an existing vocabulary:
// the header must name base's attributes and class in the same column
// layout, and value/class indices continue past base's vocabularies —
// the append path of a segment store. base is deep-copied; the reader's
// growing schema never aliases it.
func NewRowReaderResume(r io.Reader, classCol int, base *Schema) (*RowReader, error) {
	if base == nil {
		return nil, fmt.Errorf("dataset: NewRowReaderResume: nil base schema")
	}
	return newRowReader(r, classCol, base)
}

func newRowReader(r io.Reader, classCol int, base *Schema) (*RowReader, error) {
	cr := csv.NewReader(skipBOM(r))
	cr.ReuseRecord = true
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	if classCol < 0 {
		classCol = len(header) - 1
	}
	if classCol >= len(header) {
		return nil, fmt.Errorf("dataset: class column %d out of range [0,%d)", classCol, len(header))
	}
	rr := &RowReader{cr: cr, classCol: classCol}
	for c := range header {
		if c != classCol {
			rr.attrCols = append(rr.attrCols, c)
		}
	}
	if base != nil {
		if err := rr.resume(header, base); err != nil {
			return nil, err
		}
		return rr, nil
	}
	rr.schema = &Schema{Class: Attribute{Name: header[classCol]}}
	rr.vocabs = make([]map[string]int32, len(rr.attrCols))
	for i, c := range rr.attrCols {
		rr.schema.Attrs = append(rr.schema.Attrs, Attribute{Name: header[c]})
		rr.vocabs[i] = make(map[string]int32)
	}
	rr.classVocab = make(map[string]int32)
	return rr, nil
}

// resume seeds the reader's schema and vocabularies from a deep copy of
// base, after validating the header against it.
func (rr *RowReader) resume(header []string, base *Schema) error {
	if len(rr.attrCols) != len(base.Attrs) {
		return fmt.Errorf("dataset: resume header has %d attribute columns, schema has %d",
			len(rr.attrCols), len(base.Attrs))
	}
	if name := header[rr.classCol]; name != base.Class.Name {
		return fmt.Errorf("dataset: resume class column %q, schema class is %q", name, base.Class.Name)
	}
	rr.schema = &Schema{Class: Attribute{Name: base.Class.Name}}
	rr.vocabs = make([]map[string]int32, len(rr.attrCols))
	for i, c := range rr.attrCols {
		if header[c] != base.Attrs[i].Name {
			return fmt.Errorf("dataset: resume attribute column %d is %q, schema has %q",
				i, header[c], base.Attrs[i].Name)
		}
		vals := append([]string(nil), base.Attrs[i].Values...)
		rr.schema.Attrs = append(rr.schema.Attrs, Attribute{Name: base.Attrs[i].Name, Values: vals})
		rr.vocabs[i] = make(map[string]int32, len(vals))
		for vi, v := range vals {
			rr.vocabs[i][v] = int32(vi)
		}
	}
	rr.schema.Class.Values = append([]string(nil), base.Class.Values...)
	rr.classVocab = make(map[string]int32, len(base.Class.Values))
	for ci, v := range rr.schema.Class.Values {
		rr.classVocab[v] = int32(ci)
	}
	return nil
}

// Schema returns the reader's growing schema. It is owned by the reader
// until the stream is exhausted; callers must not mutate it.
func (rr *RowReader) Schema() *Schema { return rr.schema }

// NumRows reports the records decoded so far.
func (rr *RowReader) NumRows() int { return rr.rows }

// Line reports the 1-based file line on which the last-decoded record
// started (quoted fields may span lines, so this is not the row count).
func (rr *RowReader) Line() int { return rr.line }

// Next decodes the next record into cells (which must have one slot per
// attribute) and returns its class index. Missing attribute values ("" or
// "?") encode as -1; a missing class label is an error. io.EOF signals a
// clean end of stream.
func (rr *RowReader) Next(cells []int32) (label int32, err error) {
	row, err := rr.cr.Read()
	if err == io.EOF {
		return 0, io.EOF
	}
	if err != nil {
		return 0, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	rr.line, _ = rr.cr.FieldPos(0)
	cv := row[rr.classCol]
	if cv == "" || cv == "?" {
		return 0, fmt.Errorf("dataset: line %d has a missing class label", rr.line)
	}
	ci, ok := rr.classVocab[cv]
	if !ok {
		ci = int32(len(rr.schema.Class.Values))
		rr.classVocab[cv] = ci
		rr.schema.Class.Values = append(rr.schema.Class.Values, cv)
	}
	if len(cells) != len(rr.attrCols) {
		return 0, fmt.Errorf("dataset: Next: %d cell slots for %d attributes", len(cells), len(rr.attrCols))
	}
	for i, c := range rr.attrCols {
		v := row[c]
		if v == "" || v == "?" {
			cells[i] = -1
			continue
		}
		vi, ok := rr.vocabs[i][v]
		if !ok {
			vi = int32(len(rr.schema.Attrs[i].Values))
			rr.vocabs[i][v] = vi
			rr.schema.Attrs[i].Values = append(rr.schema.Attrs[i].Values, v)
		}
		cells[i] = vi
	}
	rr.rows++
	return ci, nil
}

// ReadDataset streams a CSV (header row; classCol negative = last
// column) into a Dataset without materialising the intermediate string
// table: each row is encoded to value indices as it is read, so peak
// memory is one row of strings plus the growing cell matrix — not both
// the full [][]string table and the matrix, as the ReadTable + ToDataset
// path holds. The result is byte-identical to that path.
func ReadDataset(r io.Reader, classCol int) (*Dataset, error) {
	rr, err := NewRowReader(r, classCol)
	if err != nil {
		return nil, err
	}
	d := New(rr.Schema(), 0)
	n := len(rr.Schema().Attrs)
	for {
		cells := make([]int32, n)
		label, err := rr.Next(cells)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		d.Cells = append(d.Cells, cells)
		d.Labels = append(d.Labels, label)
	}
	return d, nil
}

// SegmentBlock is one flushed chunk of a streaming encode: a contiguous
// record range with per-item packed tid-word bitmaps and the vocabulary
// growth observed inside the range. Blocks are what internal/colstore
// serialises as immutable segment files (DESIGN.md §11).
type SegmentBlock struct {
	// Base is the absolute record id of the block's first record;
	// NumRecords the records it covers.
	Base       int
	NumRecords int
	// Labels holds the class index of each record in the range.
	Labels []int32
	// Bitmaps[a][v] packs the block-relative tid bitmap of attribute a's
	// value v — bit (r - Base) set when record r carries the value — in
	// ceil(NumRecords/64) little-endian words. The value axis spans the
	// vocabulary known at the END of the block; a nil entry is an
	// all-zero bitmap (the value does not occur in the range).
	Bitmaps [][][]uint64
	// AttrDeltas[a] lists attribute a's values first seen inside this
	// block, in first-appearance order; ClassDelta likewise for class
	// labels. Replaying the deltas of every block in order rebuilds the
	// full vocabulary.
	AttrDeltas [][]string
	ClassDelta []string
	// ClassCounts counts the block's records per class, spanning the
	// class vocabulary known at the end of the block.
	ClassCounts []int
}

// SegmentOptions configures a streaming segment encode.
type SegmentOptions struct {
	// ClassCol selects the class column (negative = last).
	ClassCol int
	// SegRecords caps the records per emitted block (default 8192).
	SegRecords int
	// Base, when non-nil, resumes an existing vocabulary (the append
	// path): value and class indices continue past it, and only newly
	// seen values appear in the deltas. BaseRecords offsets Block.Base.
	Base        *Schema
	BaseRecords int
}

// DefaultSegRecords is the block size when SegmentOptions.SegRecords is
// unset: small enough that ingest memory stays a few MB regardless of
// input size, large enough that per-segment overheads stay negligible.
const DefaultSegRecords = 8192

// EncodeSegments streams CSV r into per-item tid-word segment blocks,
// invoking emit for each completed block in record order. Peak memory is
// one block — one row of strings, SegRecords labels and the block's
// bitmaps — independent of the input size; neither the string table nor
// a full cell matrix ever exists. It returns the final schema and the
// total records encoded. An emit error aborts the stream.
func EncodeSegments(r io.Reader, opts SegmentOptions, emit func(*SegmentBlock) error) (*Schema, int, error) {
	if opts.SegRecords <= 0 {
		opts.SegRecords = DefaultSegRecords
	}
	var rr *RowReader
	var err error
	if opts.Base != nil {
		rr, err = NewRowReaderResume(r, opts.ClassCol, opts.Base)
	} else {
		rr, err = NewRowReader(r, opts.ClassCol)
	}
	if err != nil {
		return nil, 0, err
	}
	schema := rr.Schema()
	nAttrs := len(schema.Attrs)
	cells := make([]int32, nAttrs)

	var (
		blk        *SegmentBlock
		vocabStart []int // per-attr vocab size at block start
		classStart int
	)
	openBlock := func(base int) {
		blk = &SegmentBlock{
			Base:    base,
			Labels:  make([]int32, 0, opts.SegRecords),
			Bitmaps: make([][][]uint64, nAttrs),
		}
		vocabStart = make([]int, nAttrs)
		for a := range schema.Attrs {
			vocabStart[a] = len(schema.Attrs[a].Values)
			blk.Bitmaps[a] = make([][]uint64, vocabStart[a])
		}
		classStart = len(schema.Class.Values)
	}
	words := func() int { return (opts.SegRecords + 63) / 64 }
	flush := func() error {
		blk.NumRecords = len(blk.Labels)
		blk.AttrDeltas = make([][]string, nAttrs)
		for a := range schema.Attrs {
			blk.AttrDeltas[a] = append([]string(nil), schema.Attrs[a].Values[vocabStart[a]:]...)
			// The value axis must span the vocabulary at block end even
			// if the highest-indexed values never occurred in the range.
			for len(blk.Bitmaps[a]) < len(schema.Attrs[a].Values) {
				blk.Bitmaps[a] = append(blk.Bitmaps[a], nil)
			}
			// Trim bitmap words to the block's true length (the last
			// block is usually short).
			w := (blk.NumRecords + 63) / 64
			for v, bm := range blk.Bitmaps[a] {
				if bm != nil {
					blk.Bitmaps[a][v] = bm[:w]
				}
			}
		}
		blk.ClassDelta = append([]string(nil), schema.Class.Values[classStart:]...)
		blk.ClassCounts = make([]int, len(schema.Class.Values))
		for _, c := range blk.Labels {
			blk.ClassCounts[c]++
		}
		err := emit(blk)
		blk = nil
		return err
	}

	base := opts.BaseRecords
	total := 0
	for {
		// Open before reading: Next may grow the vocabulary while
		// decoding the block's first record, and vocabStart must be the
		// size before that record so the delta includes its new values.
		if blk == nil {
			openBlock(base + total)
		}
		label, err := rr.Next(cells)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, err
		}
		ri := len(blk.Labels)
		blk.Labels = append(blk.Labels, label)
		for a, v := range cells {
			if v < 0 {
				continue
			}
			// Bitmap slots exist for every value known at block start;
			// values first seen inside the block grow the axis here.
			for int(v) >= len(blk.Bitmaps[a]) {
				blk.Bitmaps[a] = append(blk.Bitmaps[a], nil)
			}
			if blk.Bitmaps[a][v] == nil {
				blk.Bitmaps[a][v] = make([]uint64, words())
			}
			blk.Bitmaps[a][v][ri>>6] |= 1 << (uint(ri) & 63)
		}
		total++
		if len(blk.Labels) == opts.SegRecords {
			if err := flush(); err != nil {
				return nil, 0, err
			}
		}
	}
	if blk != nil && len(blk.Labels) > 0 {
		if err := flush(); err != nil {
			return nil, 0, err
		}
	}
	return schema, total, nil
}
