// Package dataset defines the attribute-valued, class-labelled record model
// used throughout the reproduction (§2.1 of the paper): records over
// categorical attributes A1..Am plus a class attribute C, with every
// attribute–value pair mapped to a dense item id for mining.
//
// The package also provides CSV I/O, dataset splitting (for the holdout
// approach), and basic summary statistics.
package dataset

import (
	"fmt"
	"math/rand/v2"
	"sort"
)

// Attribute is a categorical attribute: a name plus its value vocabulary.
// Values are indexed by their position in Values.
type Attribute struct {
	Name   string
	Values []string
}

// ValueIndex returns the index of value v, or -1 if v is not in the
// vocabulary.
func (a *Attribute) ValueIndex(v string) int {
	for i, s := range a.Values {
		if s == v {
			return i
		}
	}
	return -1
}

// Schema describes the attributes and the class attribute of a dataset.
type Schema struct {
	Attrs []Attribute
	Class Attribute
}

// NumAttrs returns the number of (non-class) attributes.
func (s *Schema) NumAttrs() int { return len(s.Attrs) }

// NumClasses returns the number of class labels.
func (s *Schema) NumClasses() int { return len(s.Class.Values) }

// Dataset is a table of records over a Schema. Cells[r][a] holds the value
// index of attribute a in record r (-1 for a missing value); Labels[r]
// holds the class index of record r.
type Dataset struct {
	Schema *Schema
	Cells  [][]int32
	Labels []int32
}

// New returns an empty dataset with capacity for n records over schema s.
func New(s *Schema, n int) *Dataset {
	return &Dataset{
		Schema: s,
		Cells:  make([][]int32, 0, n),
		Labels: make([]int32, 0, n),
	}
}

// NumRecords returns the number of records.
func (d *Dataset) NumRecords() int { return len(d.Cells) }

// Append adds a record. cells must have one entry per attribute; label must
// be a valid class index.
func (d *Dataset) Append(cells []int32, label int32) {
	if len(cells) != d.Schema.NumAttrs() {
		panic(fmt.Sprintf("dataset: Append: record has %d cells, schema has %d attributes",
			len(cells), d.Schema.NumAttrs()))
	}
	d.Cells = append(d.Cells, cells)
	d.Labels = append(d.Labels, label)
}

// ClassCounts returns the number of records in each class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.Schema.NumClasses())
	for _, c := range d.Labels {
		counts[c]++
	}
	return counts
}

// Validate checks structural invariants: cell values within vocabulary
// bounds (or -1) and labels within class bounds. It returns the first
// violation found, or nil.
func (d *Dataset) Validate() error {
	m := d.Schema.NumAttrs()
	nc := d.Schema.NumClasses()
	for r, row := range d.Cells {
		if len(row) != m {
			return fmt.Errorf("record %d has %d cells, want %d", r, len(row), m)
		}
		for a, v := range row {
			if v < -1 || int(v) >= len(d.Schema.Attrs[a].Values) {
				return fmt.Errorf("record %d attribute %q: value index %d out of range [0,%d)",
					r, d.Schema.Attrs[a].Name, v, len(d.Schema.Attrs[a].Values))
			}
		}
		if d.Labels[r] < 0 || int(d.Labels[r]) >= nc {
			return fmt.Errorf("record %d: class index %d out of range [0,%d)", r, d.Labels[r], nc)
		}
	}
	return nil
}

// Clone returns a deep copy of the dataset (sharing the schema, which is
// immutable by convention).
func (d *Dataset) Clone() *Dataset {
	out := New(d.Schema, d.NumRecords())
	for r, row := range d.Cells {
		cells := make([]int32, len(row))
		copy(cells, row)
		out.Append(cells, d.Labels[r])
	}
	return out
}

// Subset returns a new dataset containing the records with the given
// indices, in order. Cell slices are shared with the receiver.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := New(d.Schema, len(idx))
	for _, r := range idx {
		out.Cells = append(out.Cells, d.Cells[r])
		out.Labels = append(out.Labels, d.Labels[r])
	}
	return out
}

// Concat returns a new dataset holding the records of a followed by the
// records of b. The two datasets must share the same schema pointer. This
// is the paper's construction for fair holdout evaluation (§5.1): two
// sub-datasets are generated independently and then catenated.
func Concat(a, b *Dataset) *Dataset {
	if a.Schema != b.Schema {
		panic("dataset: Concat: schemas differ")
	}
	out := New(a.Schema, a.NumRecords()+b.NumRecords())
	out.Cells = append(out.Cells, a.Cells...)
	out.Cells = append(out.Cells, b.Cells...)
	out.Labels = append(out.Labels, a.Labels...)
	out.Labels = append(out.Labels, b.Labels...)
	return out
}

// SplitHalves splits the dataset into its first and second halves (the
// inverse of Concat for the paper's paired synthetic construction).
func (d *Dataset) SplitHalves() (first, second *Dataset) {
	h := d.NumRecords() / 2
	idx := make([]int, d.NumRecords())
	for i := range idx {
		idx[i] = i
	}
	return d.Subset(idx[:h]), d.Subset(idx[h:])
}

// RandomSplit partitions the records uniformly at random into two datasets
// of sizes ⌈n/2⌉ and ⌊n/2⌋ using the given seed. This is the paper's
// "random holdout" partitioning.
func (d *Dataset) RandomSplit(seed uint64) (first, second *Dataset) {
	n := d.NumRecords()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	h := (n + 1) / 2
	return d.Subset(idx[:h]), d.Subset(idx[h:])
}

// StratifiedSplit partitions the records into two halves preserving the
// class proportions (each class's records are shuffled and split evenly).
// Stratification removes the class-balance noise that a plain random split
// adds to holdout evaluation.
func (d *Dataset) StratifiedSplit(seed uint64) (first, second *Dataset) {
	rng := rand.New(rand.NewPCG(seed, 0xc2b2ae3d27d4eb4f))
	byClass := make([][]int, d.Schema.NumClasses())
	for r, c := range d.Labels {
		byClass[c] = append(byClass[c], r)
	}
	var aIdx, bIdx []int
	for _, ids := range byClass {
		rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		h := (len(ids) + 1) / 2
		aIdx = append(aIdx, ids[:h]...)
		bIdx = append(bIdx, ids[h:]...)
	}
	sort.Ints(aIdx)
	sort.Ints(bIdx)
	return d.Subset(aIdx), d.Subset(bIdx)
}

// ContainsPattern reports whether record r contains every (attribute,
// value) pair of the pattern given as parallel slices attrs/vals.
func (d *Dataset) ContainsPattern(r int, attrs []int, vals []int32) bool {
	row := d.Cells[r]
	for i, a := range attrs {
		if row[a] != vals[i] {
			return false
		}
	}
	return true
}
