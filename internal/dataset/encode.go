package dataset

import "fmt"

// Item identifies an attribute–value pair ("item" in §2.1). Items are
// numbered densely: item ids of attribute a occupy a contiguous range, so
// the mapping in both directions is O(1) via offset tables.
type Item int32

// Encoding maps between items and (attribute, value) pairs for a schema.
type Encoding struct {
	Schema  *Schema
	offsets []int32 // offsets[a] = first item id of attribute a
	total   int32
}

// NewEncoding builds the item encoding of a schema.
func NewEncoding(s *Schema) *Encoding {
	offsets := make([]int32, len(s.Attrs)+1)
	var total int32
	for a := range s.Attrs {
		offsets[a] = total
		total += int32(len(s.Attrs[a].Values))
	}
	offsets[len(s.Attrs)] = total
	return &Encoding{Schema: s, offsets: offsets, total: total}
}

// NumItems returns the total number of items.
func (e *Encoding) NumItems() int { return int(e.total) }

// ItemOf returns the item id of attribute a taking value index v.
func (e *Encoding) ItemOf(a int, v int32) Item {
	return Item(e.offsets[a] + v)
}

// AttrValue returns the (attribute index, value index) pair of an item.
func (e *Encoding) AttrValue(it Item) (a int, v int32) {
	// Binary search over offsets (attribute count is small; this is cheap
	// and keeps the encoding compact).
	lo, hi := 0, len(e.offsets)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if e.offsets[mid] <= int32(it) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, int32(it) - e.offsets[lo]
}

// String returns the human-readable "Attr=value" form of an item.
func (e *Encoding) String(it Item) string {
	a, v := e.AttrValue(it)
	return fmt.Sprintf("%s=%s", e.Schema.Attrs[a].Name, e.Schema.Attrs[a].Values[v])
}

// Encoded is the vertical (item → tid-list) representation of a dataset
// that the miner consumes. Tids[i] lists, in increasing order, the ids of
// the records containing item i. Missing values (-1 cells) simply appear in
// no tid-list of their attribute.
type Encoded struct {
	Enc         *Encoding
	NumRecords  int
	Tids        [][]uint32
	Labels      []int32
	NumClasses  int
	ClassCounts []int
}

// Encode builds the vertical representation of d.
func Encode(d *Dataset) *Encoded {
	enc := NewEncoding(d.Schema)
	tids := make([][]uint32, enc.NumItems())
	// First pass: count, to allocate exactly.
	counts := make([]int, enc.NumItems())
	for _, row := range d.Cells {
		for a, v := range row {
			if v >= 0 {
				counts[enc.ItemOf(a, v)]++
			}
		}
	}
	for i := range tids {
		tids[i] = make([]uint32, 0, counts[i])
	}
	for r, row := range d.Cells {
		for a, v := range row {
			if v >= 0 {
				it := enc.ItemOf(a, v)
				tids[it] = append(tids[it], uint32(r))
			}
		}
	}
	return &Encoded{
		Enc:         enc,
		NumRecords:  d.NumRecords(),
		Tids:        tids,
		Labels:      d.Labels,
		NumClasses:  d.Schema.NumClasses(),
		ClassCounts: d.ClassCounts(),
	}
}

// Support returns the support (tid-list length) of item i.
func (e *Encoded) Support(i Item) int { return len(e.Tids[i]) }
