package dataset

import "testing"

func TestStratifiedSplit(t *testing.T) {
	s := tinySchema()
	d := New(s, 100)
	// 70/30 class split.
	for i := 0; i < 100; i++ {
		label := int32(0)
		if i >= 70 {
			label = 1
		}
		d.Append([]int32{int32(i % 3), int32(i % 2)}, label)
	}
	a, b := d.StratifiedSplit(5)
	if a.NumRecords()+b.NumRecords() != 100 {
		t.Fatalf("split sizes %d+%d != 100", a.NumRecords(), b.NumRecords())
	}
	ca, cb := a.ClassCounts(), b.ClassCounts()
	if ca[0] != 35 || cb[0] != 35 {
		t.Errorf("class 0 split %d/%d, want 35/35", ca[0], cb[0])
	}
	if ca[1] != 15 || cb[1] != 15 {
		t.Errorf("class 1 split %d/%d, want 15/15", ca[1], cb[1])
	}
	// Deterministic for equal seeds.
	a2, _ := d.StratifiedSplit(5)
	for r := range a.Cells {
		if a.Labels[r] != a2.Labels[r] {
			t.Fatal("StratifiedSplit not deterministic")
		}
	}
	// Different for different seeds (with overwhelming probability on
	// this size).
	a3, _ := d.StratifiedSplit(6)
	same := true
	for r := range a.Cells {
		if a.Cells[r][0] != a3.Cells[r][0] {
			same = false
			break
		}
	}
	if same {
		t.Log("note: different seeds produced an identical stratified split")
	}
}

func TestStratifiedSplitOddCounts(t *testing.T) {
	s := tinySchema()
	d := New(s, 7)
	for i := 0; i < 7; i++ {
		d.Append([]int32{0, 0}, int32(i%2)) // classes 4/3
	}
	a, b := d.StratifiedSplit(1)
	if a.NumRecords()+b.NumRecords() != 7 {
		t.Fatal("records lost")
	}
	ca, cb := a.ClassCounts(), b.ClassCounts()
	if ca[0]+cb[0] != 4 || ca[1]+cb[1] != 3 {
		t.Errorf("class totals wrong: %v %v", ca, cb)
	}
	// Each class splits as evenly as parity allows.
	if diff := ca[0] - cb[0]; diff < 0 || diff > 1 {
		t.Errorf("class 0 imbalance: %v vs %v", ca, cb)
	}
}
