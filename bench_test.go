// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark runs its experiment at a reduced but
// shape-preserving scale (a few Monte-Carlo datasets, tens of
// permutations); `go run ./cmd/experiments -fig <id> -full` runs the
// paper-scale version, recording paper-vs-measured numbers for each.
package repro

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchio"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/mining"
	"repro/internal/permute"
)

// benchOptions returns deterministic, benchmark-sized experiment options.
func benchOptions() experiments.Options {
	return experiments.Options{
		Datasets: 2,
		Perms:    20,
		Seed:     1,
	}
}

// sink prevents dead-code elimination of experiment results.
var sink any

func BenchmarkFig01PValueCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Fig1()
	}
}

func BenchmarkFig02PValueBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Fig2()
	}
}

func BenchmarkFig03PValueDistribution(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig3(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = f
	}
}

func BenchmarkFig04OptimizationLadder(b *testing.B) {
	o := benchOptions()
	o.Perms = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig4(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = f
	}
}

func BenchmarkFig05ApproachRuntime(b *testing.B) {
	o := benchOptions()
	o.Perms = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig5(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = f
	}
}

func BenchmarkFig06RandomDatasets(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = f
	}
}

func BenchmarkFig07RulesTested(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = f
	}
}

func BenchmarkFig08PowerFWER(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = f
	}
}

func BenchmarkFig09PValueHalving(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sink = experiments.Fig9()
	}
}

func BenchmarkFig10PowerFDR(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig10(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = f
	}
}

func BenchmarkFig11RulesTestedMinSup(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = f
	}
}

func BenchmarkFig12MinSupFWER(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig12(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = f
	}
}

func BenchmarkFig13MinSupFDR(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig13(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = f
	}
}

func BenchmarkFig14RealFWER(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig14(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = f
	}
}

func BenchmarkFig15RealPDistribution(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig15(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = f
	}
}

func BenchmarkFig16RealFDR(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.Fig16(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = f
	}
}

func BenchmarkTable4ConfidencePValue(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.Table4(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = t
	}
}

// Parallel engine benchmarks: one synthetic mining / mining+permutation
// workload at Workers = 1, 2 and NumCPU. The worker counts appear as
// sub-benchmark names, so the parallel speedup on your hardware is
//
//	go test -bench 'BenchmarkParallel' -benchtime 5x .
//
// and comparing the workers=1 line against workers=NumCPU. Results are
// byte-identical across worker counts; only the wall clock moves.

// benchWorkerCounts returns {1, 2, NumCPU} deduplicated and sorted.
func benchWorkerCounts() []int {
	counts := []int{1}
	if runtime.NumCPU() > 2 {
		counts = append(counts, 2)
	}
	if runtime.NumCPU() > 1 {
		counts = append(counts, runtime.NumCPU())
	}
	return counts
}

// benchDataset generates the workload once per benchmark: a D5kA25
// synthetic dataset with 10 embedded rules.
func benchDataset(b *testing.B) *Dataset {
	b.Helper()
	p := SyntheticDefaults()
	p.N = 5000
	p.Attrs = 25
	p.NumRules = 10
	p.MinCvg = 200
	p.MaxCvg = 400
	p.MinConf = 0.7
	p.MaxConf = 0.9
	p.Seed = 7
	res, err := Synthetic(p)
	if err != nil {
		b.Fatal(err)
	}
	return res.Data
}

func BenchmarkParallelMine(b *testing.B) {
	d := benchDataset(b)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Mine(d, Config{
					MinSup:  120,
					Method:  MethodDirect,
					Control: ControlFWER,
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				sink = res
			}
		})
	}
}

func BenchmarkParallelMinePermute(b *testing.B) {
	d := benchDataset(b)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Mine(d, Config{
					MinSup:       120,
					Method:       MethodPermutation,
					Control:      ControlFWER,
					Permutations: 60,
					Seed:         1,
					Workers:      workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				sink = res
			}
		})
	}
}

// sessionBatchConfigs returns N configs that differ only in correction
// method/control/alpha — the "many configs, one dataset" shape Sessions
// amortise (one encode + one mine + one score instead of N).
func sessionBatchConfigs() []Config {
	return []Config{
		{MinSup: 120, Method: MethodNone},
		{MinSup: 120, Method: MethodDirect, Control: ControlFWER},
		{MinSup: 120, Method: MethodDirect, Control: ControlFDR},
		{MinSup: 120, Method: MethodDirect, Control: ControlFDR, Alpha: 0.01},
		{MinSup: 120, Method: MethodLayered, Control: ControlFWER},
		{MinSup: 120, Method: MethodPermutation, Control: ControlFWER, Permutations: 30, Seed: 1},
	}
}

// BenchmarkSessionBatch compares N independent Mine calls against one
// Session.MineBatch over the same N configs. Mining dominates each
// independent call, so the batch is expected to spend ≈N× less mining
// time (the corrections still run once per config).
func BenchmarkSessionBatch(b *testing.B) {
	d := benchDataset(b)
	cfgs := sessionBatchConfigs()

	b.Run("fresh-mines", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, cfg := range cfgs {
				res, err := Mine(d, cfg)
				if err != nil {
					b.Fatal(err)
				}
				sink = res
			}
		}
	})
	b.Run("session-batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			results, err := NewSession(d).MineBatch(context.Background(), cfgs)
			if err != nil {
				b.Fatal(err)
			}
			sink = results
		}
	})
	// The serving-layer shape: the Session outlives the batch, so later
	// requests pay only their correction.
	b.Run("session-warm", func(b *testing.B) {
		sess := NewSession(d)
		if _, err := sess.MineBatch(context.Background(), cfgs); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sess.Mine(cfgs[i%len(cfgs)])
			if err != nil {
				b.Fatal(err)
			}
			sink = res
		}
	})
}

// TestWordPathNotSlowerAtOptNone guards the one cell where the PR 4 word
// path used to lose to the element walk (word_speedup ≈ 1.0 at opt=none):
// the blocked kernel must serve opt=none at least as fast as the scalar
// ablation. Timing assertions are inherently noisy, so both sides keep
// the minimum of several runs and the word path gets a 15% grace margin —
// a real regression to the old behaviour shows up as a ratio near or
// above 1, far outside it.
func TestWordPathNotSlowerAtOptNone(t *testing.T) {
	p := SyntheticDefaults()
	p.N = 1000
	p.Attrs = 15
	p.Seed = 5
	res, err := Synthetic(p)
	if err != nil {
		t.Fatal(err)
	}
	enc := dataset.Encode(res.Data)
	tree, err := mining.MineClosed(enc, mining.Options{MinSup: 50})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := mining.GenerateRules(tree, mining.RuleOptions{Policy: mining.PaperPolicy})
	if err != nil {
		t.Fatal(err)
	}
	time1 := func(disableWords bool) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 5; i++ {
			e, err := permute.NewEngine(tree, rules, permute.Config{
				NumPerms: 30, Seed: 3, Opt: permute.OptNone, Workers: 1,
				DisableWordCounting: disableWords,
			})
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			sink = e.MinP()
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	time1(false) // warm caches before either timed side
	word, scalar := time1(false), time1(true)
	if float64(word) > float64(scalar)*1.15 {
		t.Fatalf("opt=none word path %v slower than scalar %v (ratio %.2f, want <= 1.15)",
			word, scalar, float64(word)/float64(scalar))
	}
	t.Logf("opt=none: word %v, scalar %v (ratio %.2f)", word, scalar, float64(word)/float64(scalar))
}

// TestBenchPr6Baseline keeps the committed benchmark trajectory honest:
// BENCH_pr6.json must pass the regression gate against BENCH_pr5.json,
// and the headline claims of the blocked-kernel PR — ≥3x ns/op and ≥10x
// fewer allocations at the buffered 10k-permutation cell — must hold
// between the two committed files. Both were recorded on the same
// machine (same-file comparison is skipped otherwise, mirroring armine
// bench's environment check).
func TestBenchPr6Baseline(t *testing.T) {
	pr5, err := benchio.ReadFile("BENCH_pr5.json")
	if err != nil {
		t.Fatal(err)
	}
	pr6, err := benchio.ReadFile("BENCH_pr6.json")
	if err != nil {
		t.Fatal(err)
	}
	if regs := benchio.Compare(pr5, pr6, 0.20); len(regs) != 0 {
		t.Fatalf("BENCH_pr6.json regresses vs BENCH_pr5.json: %v", regs)
	}
	if pr5.GOOS != pr6.GOOS || pr5.GOARCH != pr6.GOARCH || pr5.CPUs != pr6.CPUs {
		t.Skip("baselines recorded on different environments; ratio claims not comparable")
	}
	find := func(rep *benchio.Report) *benchio.Entry {
		for i := range rep.Entries {
			e := &rep.Entries[i]
			if e.Opt == "static" && e.Workers == 1 && e.Perms == 10000 {
				return e
			}
		}
		t.Fatal("static/1/10000 cell missing")
		return nil
	}
	was, now := find(pr5), find(pr6)
	if speedup := float64(was.NsPerOp) / float64(now.NsPerOp); speedup < 3 {
		t.Errorf("static/10k ns/op speedup vs pr5 = %.2fx, want >= 3x", speedup)
	}
	if was.AllocsPerOp < 10*now.AllocsPerOp {
		t.Errorf("static/10k allocs/op %d -> %d, want >= 10x reduction",
			was.AllocsPerOp, now.AllocsPerOp)
	}
}

// Extension ablations (beyond the paper's figures).

func BenchmarkExtRedundancyAblation(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := experiments.ExtRedundancy(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = f
	}
}

func BenchmarkExtTestKinds(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.ExtTestKinds(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = t
	}
}

func BenchmarkExtBufferBudget(b *testing.B) {
	o := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.ExtBufferBudget(o)
		if err != nil {
			b.Fatal(err)
		}
		sink = t
	}
}
