package main

import "testing"

func TestParseIntRange(t *testing.T) {
	lo, hi, err := parseIntRange("2:8")
	if err != nil || lo != 2 || hi != 8 {
		t.Errorf("parseIntRange(2:8) = %d,%d,%v", lo, hi, err)
	}
	if _, _, err := parseIntRange("nope"); err == nil {
		t.Error("malformed range accepted")
	}
	if _, _, err := parseIntRange("5"); err == nil {
		t.Error("missing colon accepted")
	}
}

func TestParseFloatRange(t *testing.T) {
	lo, hi, err := parseFloatRange("0.6:0.8")
	if err != nil || lo != 0.6 || hi != 0.8 {
		t.Errorf("parseFloatRange = %g,%g,%v", lo, hi, err)
	}
	if _, _, err := parseFloatRange("x:y"); err == nil {
		t.Error("malformed float range accepted")
	}
}
