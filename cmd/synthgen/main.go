// Command synthgen generates synthetic class-labelled datasets with
// embedded association rules, using the paper's Table 1 generator, and
// writes them as CSV (class label last). The embedded ground truth is
// printed to stderr so experiments can verify recovery.
//
// Example:
//
//	synthgen -n 2000 -attrs 40 -rules 1 -cvg 400:400 -conf 0.65:0.65 -seed 7 -o data.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		n       = flag.Int("n", 2000, "number of records")
		classes = flag.Int("classes", 2, "number of classes")
		attrs   = flag.Int("attrs", 40, "number of attributes")
		vals    = flag.String("vals", "2:8", "attribute cardinality range min:max")
		rules   = flag.Int("rules", 0, "number of embedded rules")
		length  = flag.String("len", "2:16", "embedded rule length range min:max")
		cvg     = flag.String("cvg", "400:600", "embedded rule coverage range min:max")
		conf    = flag.String("conf", "0.6:0.8", "embedded rule confidence range min:max")
		overlap = flag.Bool("overlap", false, "allow embedded rules to share records")
		paired  = flag.Bool("paired", false, "paired construction: two N/2 halves with half-coverage rules (fair holdout)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("o", "", "output CSV path (default stdout)")
	)
	flag.Parse()

	p := repro.SyntheticDefaults()
	p.N = *n
	p.Classes = *classes
	p.Attrs = *attrs
	p.NumRules = *rules
	p.AllowOverlap = *overlap
	p.Seed = *seed
	var err error
	if p.MinV, p.MaxV, err = parseIntRange(*vals); err != nil {
		fail(fmt.Errorf("-vals: %w", err))
	}
	if p.MinLen, p.MaxLen, err = parseIntRange(*length); err != nil {
		fail(fmt.Errorf("-len: %w", err))
	}
	if p.MinCvg, p.MaxCvg, err = parseIntRange(*cvg); err != nil {
		fail(fmt.Errorf("-cvg: %w", err))
	}
	if p.MinConf, p.MaxConf, err = parseFloatRange(*conf); err != nil {
		fail(fmt.Errorf("-conf: %w", err))
	}

	res, err := repro.Synthetic(p)
	if err != nil {
		fail(err)
	}
	_ = *paired // paired handled below (whole dataset written either way)
	if *paired {
		// Regenerate with the paired construction so rules straddle both
		// halves; the written dataset is the concatenation.
		whole, _, _, perr := repro.SyntheticPaired(p)
		if perr != nil {
			fail(perr)
		}
		res = whole
	}

	for i, r := range res.Rules {
		var lhs []string
		for k, a := range r.Attrs {
			lhs = append(lhs, fmt.Sprintf("%s=%s",
				res.Data.Schema.Attrs[a].Name, res.Data.Schema.Attrs[a].Values[r.Vals[k]]))
		}
		fmt.Fprintf(os.Stderr, "# embedded rule %d: %s => class=%s cvg=%d conf=%.3f\n",
			i, strings.Join(lhs, " ^ "), res.Data.Schema.Class.Values[r.Class],
			r.Coverage(), r.Conf)
	}

	if *out == "" {
		if err := res.Data.WriteCSV(os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	if err := res.Data.WriteCSVFile(*out); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "# wrote %d records to %s\n", res.Data.NumRecords(), *out)
}

func parseIntRange(s string) (int, int, error) {
	var lo, hi int
	if _, err := fmt.Sscanf(s, "%d:%d", &lo, &hi); err != nil {
		return 0, 0, fmt.Errorf("want min:max, got %q", s)
	}
	return lo, hi, nil
}

func parseFloatRange(s string) (float64, float64, error) {
	var lo, hi float64
	if _, err := fmt.Sscanf(s, "%g:%g", &lo, &hi); err != nil {
		return 0, 0, fmt.Errorf("want min:max, got %q", s)
	}
	return lo, hi, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "synthgen:", err)
	os.Exit(1)
}
