package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestConvertMineRoundTrip: convert a CSV to a segment store and mine it
// with -store; the report must be byte-identical to mining the CSV
// directly.
func TestConvertMineRoundTrip(t *testing.T) {
	csv := writeTempCSV(t)
	store := filepath.Join(t.TempDir(), "d.store")

	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"convert", "-in", csv, "-out", store}, &stdout, &stderr); code != 0 {
		t.Fatalf("convert exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "60 records") {
		t.Errorf("convert summary missing record count: %q", stdout.String())
	}
	if _, err := os.Stat(filepath.Join(store, "MANIFEST.json")); err != nil {
		t.Fatalf("store manifest not written: %v", err)
	}

	mine := func(args ...string) string {
		var out, errb bytes.Buffer
		if code := realMain(args, &out, &errb); code != 0 {
			t.Fatalf("mine %v exit %d: %s", args, code, errb.String())
		}
		return out.String()
	}
	fromCSV := mine("mine", "-in", csv, "-minsup", "20", "-method", "permutation", "-perms", "50")
	fromStore := mine("mine", "-store", store, "-minsup", "20", "-method", "permutation", "-perms", "50")
	if fromCSV != fromStore {
		t.Errorf("store-backed mine diverged from in-memory mine:\n--- csv ---\n%s--- store ---\n%s", fromCSV, fromStore)
	}

	// Re-converting without -force refuses; with -force it succeeds.
	stdout.Reset()
	stderr.Reset()
	if code := realMain([]string{"convert", "-in", csv, "-out", store}, &stdout, &stderr); code != 1 {
		t.Errorf("re-convert without -force exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "-force") {
		t.Errorf("refusal should mention -force: %q", stderr.String())
	}
	stderr.Reset()
	if code := realMain([]string{"convert", "-in", csv, "-out", store, "-force", "-q"}, &stdout, &stderr); code != 0 {
		t.Errorf("re-convert with -force exit %d: %s", code, stderr.String())
	}
}

// TestConvertRejectsNumeric: the streaming path cannot discretize, so a
// numeric column must fail with advice and leave no partial store —
// while -discretize converts the same file via the in-memory path.
func TestConvertRejectsNumeric(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "num.csv")
	var b strings.Builder
	b.WriteString("age,class\n")
	for i := 0; i < 30; i++ {
		b.WriteString("17,yes\n")
	}
	for i := 0; i < 30; i++ {
		b.WriteString("64,no\n")
	}
	if err := os.WriteFile(csv, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	store := filepath.Join(dir, "num.store")

	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"convert", "-in", csv, "-out", store}, &stdout, &stderr); code != 1 {
		t.Fatalf("numeric convert exit %d, want 1 (stderr %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "-discretize") {
		t.Errorf("numeric refusal should point at -discretize: %q", stderr.String())
	}
	if _, err := os.Stat(filepath.Join(store, "MANIFEST.json")); !os.IsNotExist(err) {
		t.Errorf("partial store left behind: stat err = %v", err)
	}

	stderr.Reset()
	if code := realMain([]string{"convert", "-in", csv, "-out", store, "-discretize", "-q"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-discretize convert exit %d: %s", code, stderr.String())
	}
	fromStore := func() string {
		var out, errb bytes.Buffer
		if code := realMain([]string{"mine", "-store", store, "-minsup", "20"}, &out, &errb); code != 0 {
			t.Fatalf("mine -store exit %d: %s", code, errb.String())
		}
		return out.String()
	}()
	var out, errb bytes.Buffer
	if code := realMain([]string{"mine", "-in", csv, "-minsup", "20"}, &out, &errb); code != 0 {
		t.Fatalf("mine -in exit %d: %s", code, errb.String())
	}
	if out.String() != fromStore {
		t.Errorf("discretized store mine diverged from CSV mine:\n--- csv ---\n%s--- store ---\n%s", out.String(), fromStore)
	}
}

// TestMineStoreConflicts: -store excludes -in/-uci.
func TestMineStoreConflicts(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := realMain([]string{"mine", "-store", "x.store", "-uci", "german", "-minsup", "10"}, &stdout, &stderr); code != 1 {
		t.Fatalf("conflicting inputs exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "not both") {
		t.Errorf("conflict message: %q", stderr.String())
	}
}
