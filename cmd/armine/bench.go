package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"

	"repro"
	"repro/internal/benchio"
	"repro/internal/permute"
)

// benchFlags bundles the bench subcommand's flag set with its parsed
// values.
type benchFlags struct {
	fs                   *flag.FlagSet
	in, uciName          *string
	minSup, maxLen       *int
	opts, workers, perms *string
	shards               *string
	warmup, repeat       *int
	seed                 *uint64
	quick, scalar        *bool
	adaptive, store      *bool
	alpha                *float64
	rev, out, baseline   *string
	tolerance            *float64
}

func newBenchFlags(stderr io.Writer) *benchFlags {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	return &benchFlags{
		fs:        fs,
		in:        fs.String("in", "", "input CSV file (header row, class label last); default: paper-defaults synthetic data"),
		uciName:   fs.String("uci", "", "use a built-in UCI stand-in instead of -in (adult|german|hypo|mushroom)"),
		minSup:    fs.Int("minsup", 50, "absolute minimum support for the mined tree"),
		maxLen:    fs.Int("maxlen", 0, "maximum pattern length (0 = unlimited)"),
		opts:      fs.String("opts", "none,dynamic,diffsets,static", "comma-separated optimisation levels to measure"),
		workers:   fs.String("workers", "1,0", "comma-separated worker counts (0 = all CPUs)"),
		perms:     fs.String("perms", "100", "comma-separated permutation counts"),
		shards:    fs.String("shards", "1", "comma-separated shard counts; counts > 1 time the same pass through the shard coordinator (in-process workers)"),
		warmup:    fs.Int("warmup", 1, "discarded warmup runs per cell"),
		repeat:    fs.Int("repeat", 3, "timed runs per cell (minimum kept)"),
		seed:      fs.Uint64("seed", 3, "random seed for the permutation shuffles"),
		quick:     fs.Bool("quick", false, "small matrix for CI smoke runs (perms 25, warmup 0, repeat 1 unless set explicitly)"),
		scalar:    fs.Bool("scalar", true, "also time each cell with word-parallel counting disabled (records the word-path speedup)"),
		adaptive:  fs.Bool("adaptive", true, "also time each cell as an adaptive early-stopping FWER run of the same budget (records the adaptive speedup; budgets too small to retire anything are skipped)"),
		store:     fs.Bool("store", false, "also time each single-node cell out-of-core: the vertical encoding is rebuilt from an on-disk segment store inside the timed region (records the storage overhead as its own keyed cells, so in-memory baselines keep gating)"),
		alpha:     fs.Float64("alpha", 0.05, "error level the adaptive cells stop against"),
		rev:       fs.String("rev", "dev", "revision label recorded in the report and default output name"),
		out:       fs.String("out", "", "output path (default BENCH_<rev>.json)"),
		baseline:  fs.String("baseline", "", "BENCH json to compare against; >tolerance speedup drops or allocs/op growth fail the run"),
		tolerance: fs.Float64("tolerance", 0.20, "allowed relative-speedup drop and relative allocs/op growth vs -baseline"),
	}
}

// parseIntList parses a comma-separated list of non-negative ints.
func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, tok := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("invalid -%s entry %q (want non-negative integers)", flagName, tok)
		}
		out = append(out, n)
	}
	return out, nil
}

func runBench(args []string, stdout, stderr io.Writer) error {
	f := newBenchFlags(stderr)
	if err := parseArgs(f.fs, args); err != nil {
		return err
	}
	if f.fs.NArg() > 0 {
		return fmt.Errorf("bench takes no positional arguments, got %q", f.fs.Arg(0))
	}

	// -quick shrinks the matrix but explicit flags always win.
	set := map[string]bool{}
	f.fs.Visit(func(fl *flag.Flag) { set[fl.Name] = true })
	if *f.quick {
		if !set["perms"] {
			*f.perms = "25"
		}
		if !set["warmup"] {
			*f.warmup = 0
		}
		if !set["repeat"] {
			*f.repeat = 1
		}
	}

	var opts []permute.OptLevel
	for _, tok := range strings.Split(*f.opts, ",") {
		o, err := permute.ParseOpt(tok)
		if err != nil {
			return err
		}
		opts = append(opts, o)
	}
	workers, err := parseIntList("workers", *f.workers)
	if err != nil {
		return err
	}
	perms, err := parseIntList("perms", *f.perms)
	if err != nil {
		return err
	}
	shards, err := parseIntList("shards", *f.shards)
	if err != nil {
		return err
	}

	name, data, err := benchDataset(*f.in, *f.uciName, *f.seed)
	if err != nil {
		return err
	}

	rep, err := benchio.Run(context.Background(), benchio.Spec{
		Datasets:        []benchio.Dataset{{Name: name, Data: data, MinSup: *f.minSup}},
		Opts:            opts,
		Workers:         workers,
		Perms:           perms,
		Shards:          shards,
		Warmup:          *f.warmup,
		Repeat:          *f.repeat,
		Seed:            *f.seed,
		MeasureScalar:   *f.scalar,
		MeasureAdaptive: *f.adaptive,
		MeasureStore:    *f.store,
		Alpha:           *f.alpha,
		MaxLen:          *f.maxLen,
	}, *f.rev)
	if err != nil {
		return err
	}

	printBenchTable(stdout, rep)
	out := *f.out
	if out == "" {
		out = fmt.Sprintf("BENCH_%s.json", *f.rev)
	}
	if err := benchio.WriteFile(out, rep); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# wrote %s (%d entries)\n", out, len(rep.Entries))

	if *f.baseline != "" {
		base, err := benchio.ReadFile(*f.baseline)
		if err != nil {
			return err
		}
		// Even the relative speedups shift with the CPU (cache sizes move
		// the counting/p-value balance), so regressions are only gated
		// against a baseline measured on the same kind of machine.
		if base.GOOS != rep.GOOS || base.GOARCH != rep.GOARCH || base.CPUs != rep.CPUs {
			fmt.Fprintf(stdout, "# baseline %s is from a different environment (%s/%s %d CPUs vs %s/%s %d CPUs); skipping regression gate\n",
				*f.baseline, base.GOOS, base.GOARCH, base.CPUs, rep.GOOS, rep.GOARCH, rep.CPUs)
			return nil
		}
		if regs := benchio.Compare(base, rep, *f.tolerance); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(stderr, "armine bench: regression:", r)
			}
			return fmt.Errorf("%d cell(s) regressed more than %.0f%% vs %s",
				len(regs), *f.tolerance*100, *f.baseline)
		}
		fmt.Fprintf(stdout, "# no regressions vs %s (tolerance %.0f%%)\n", *f.baseline, *f.tolerance*100)
	}
	return nil
}

// benchDataset resolves the bench input: a CSV, a UCI stand-in, or the
// paper-defaults synthetic dataset when neither is given.
func benchDataset(in, uciName string, seed uint64) (string, *repro.Dataset, error) {
	switch {
	case in != "" && uciName != "":
		return "", nil, fmt.Errorf("use either -in or -uci, not both")
	case in != "":
		d, err := repro.LoadCSVFile(in)
		name := strings.TrimSuffix(filepath.Base(in), filepath.Ext(in))
		return name, d, err
	case uciName != "":
		d, err := repro.UCIStandIn(uciName, seed)
		return uciName, d, err
	default:
		p := repro.SyntheticDefaults()
		p.N = 1000
		p.Attrs = 15
		p.Seed = seed
		res, err := repro.Synthetic(p)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("synth-n%d-a%d", p.N, p.Attrs), res.Data, nil
	}
}

// printBenchTable renders the report in the Fig 4 spirit: one line per
// cell, speedups against the no-optimisation level and the word-counting
// ablation.
func printBenchTable(w io.Writer, rep *benchio.Report) {
	fmt.Fprintf(w, "# %s %s/%s %d CPUs rev=%s\n", rep.GoVersion, rep.GOOS, rep.GOARCH, rep.CPUs, rep.Rev)
	fmt.Fprintf(w, "%-20s %-10s %7s %6s %6s %6s %12s %10s %8s %6s %7s\n",
		"dataset", "opt", "workers", "perms", "shards", "src", "ms/op", "allocs/op", "vs-none", "word", "adapt")
	for _, e := range rep.Entries {
		word := "-"
		if e.WordSpeedup > 0 {
			word = fmt.Sprintf("%.2fx", e.WordSpeedup)
		}
		adapt := "-"
		if e.AdaptiveSpeedup > 0 {
			adapt = fmt.Sprintf("%.2fx", e.AdaptiveSpeedup)
		}
		shards := e.Shards
		if shards == 0 {
			shards = 1
		}
		src := "mem"
		if e.Store {
			src = "store"
		}
		fmt.Fprintf(w, "%-20s %-10s %7d %6d %6d %6s %12.3f %10d %7.2fx %6s %7s\n",
			e.Dataset, e.Opt, e.Workers, e.Perms, shards, src,
			float64(e.NsPerOp)/1e6, e.AllocsPerOp, e.SpeedupVsNone, word, adapt)
	}
}
