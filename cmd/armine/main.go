// Command armine mines statistically significant class association rules
// from a CSV file (header row; the LAST column is the class label; numeric
// columns are discretized automatically with Fayyad–Irani).
//
// Examples:
//
//	armine -in data.csv -minsup-frac 0.05 -control fdr -method direct
//	armine -in data.csv -minsup 60 -method permutation -perms 1000
//	armine -uci german -minsup 60 -method holdout -control fwer
//
// Output: one rule per line, most significant first, with coverage,
// support, confidence and p-value.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	var (
		in         = flag.String("in", "", "input CSV file (header row, class label last)")
		uciName    = flag.String("uci", "", "use a built-in UCI stand-in instead of -in (adult|german|hypo|mushroom)")
		minSup     = flag.Int("minsup", 0, "absolute minimum support")
		minSupFrac = flag.Float64("minsup-frac", 0, "relative minimum support (fraction of records)")
		minConf    = flag.Float64("minconf", 0, "minimum confidence (domain filter; default 0)")
		alpha      = flag.Float64("alpha", 0.05, "error level")
		control    = flag.String("control", "fwer", "error measure: fwer | fdr")
		method     = flag.String("method", "direct", "correction: none | direct | permutation | holdout | layered")
		perms      = flag.Int("perms", 1000, "permutations for -method permutation")
		seed       = flag.Uint64("seed", 1, "random seed (permutations, holdout split, stand-ins)")
		workers    = flag.Int("workers", 0, "worker goroutines for mining and permutations (0 = all CPUs)")
		maxLen     = flag.Int("maxlen", 0, "maximum rule LHS length (0 = unlimited)")
		limit      = flag.Int("limit", 50, "print at most this many rules (0 = all)")
		quiet      = flag.Bool("q", false, "print rules only, no summary")
	)
	flag.Parse()

	d, err := loadDataset(*in, *uciName, *seed)
	if err != nil {
		fail(err)
	}

	cfg := repro.Config{
		MinSup:       *minSup,
		MinSupFrac:   *minSupFrac,
		MinConf:      *minConf,
		Alpha:        *alpha,
		Permutations: *perms,
		Seed:         *seed,
		Workers:      *workers,
		MaxLen:       *maxLen,
	}
	switch strings.ToLower(*control) {
	case "fwer":
		cfg.Control = repro.ControlFWER
	case "fdr":
		cfg.Control = repro.ControlFDR
	default:
		fail(fmt.Errorf("unknown -control %q (want fwer or fdr)", *control))
	}
	switch strings.ToLower(*method) {
	case "none":
		cfg.Method = repro.MethodNone
	case "direct":
		cfg.Method = repro.MethodDirect
	case "permutation":
		cfg.Method = repro.MethodPermutation
	case "holdout":
		cfg.Method = repro.MethodHoldout
		cfg.HoldoutRandom = true
	case "layered":
		cfg.Method = repro.MethodLayered
	default:
		fail(fmt.Errorf("unknown -method %q", *method))
	}

	res, err := repro.Mine(d, cfg)
	if err != nil {
		fail(err)
	}

	if !*quiet {
		fmt.Printf("# %d records, %d rules tested (min_sup=%d), method=%s control=%s alpha=%g\n",
			res.NumRecords, res.NumTested, res.MinSup, res.Method, res.Control, res.Alpha)
		fmt.Printf("# %d significant rules, cutoff p <= %.4g, mine %v + correct %v\n",
			len(res.Significant), res.Cutoff, res.MineTime.Round(1e6), res.CorrectTime.Round(1e6))
	}
	n := len(res.Significant)
	if *limit > 0 && n > *limit {
		n = *limit
	}
	for _, r := range res.Significant[:n] {
		fmt.Printf("%s => %s=%s  cvg=%d supp=%d conf=%.3f p=%.4g\n",
			strings.Join(r.Items, " ^ "), d.Schema.Class.Name, r.Class,
			r.Coverage, r.Support, r.Confidence, r.P)
	}
	if !*quiet && n < len(res.Significant) {
		fmt.Printf("# ... %d more (raise -limit)\n", len(res.Significant)-n)
	}
}

func loadDataset(in, uciName string, seed uint64) (*repro.Dataset, error) {
	switch {
	case in != "" && uciName != "":
		return nil, fmt.Errorf("use either -in or -uci, not both")
	case in != "":
		return repro.LoadCSVFile(in)
	case uciName != "":
		return repro.UCIStandIn(uciName, seed)
	default:
		return nil, fmt.Errorf("need -in FILE or -uci NAME")
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "armine:", err)
	os.Exit(1)
}
