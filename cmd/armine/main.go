// Command armine mines statistically significant class association rules
// from a CSV file (header row; the LAST column is the class label; numeric
// columns are discretized automatically with Fayyad–Irani), or serves the
// mining pipeline as a long-lived HTTP/JSON service.
//
// Subcommands:
//
//	armine mine    [flags]   one-shot mining run (default when flags come first)
//	armine serve   [flags]   HTTP mining service over a bounded session registry
//	armine bench   [flags]   permutation-engine benchmark matrix -> BENCH_<rev>.json
//	armine convert [flags]   CSV -> on-disk segment store for out-of-core mining
//
// Mining examples:
//
//	armine mine -in data.csv -minsup-frac 0.05 -control fdr -method direct
//	armine mine -in data.csv -minsup 60 -method permutation -perms 1000
//	armine mine -uci german -minsup 60 -method permutation -perms 10000 -adaptive
//	armine mine -uci german -minsup 60 -method permutation -perms 1000 -shards 4
//	armine -uci german -minsup 60 -method holdout -control fwer
//
// Out-of-core examples — convert once, then mine datasets larger than
// memory from the store (results are byte-identical to the in-memory
// path; see DESIGN.md §11):
//
//	armine convert -in big.csv -out big.store
//	armine convert -in numeric.csv -out numeric.store -discretize
//	armine mine -store big.store -minsup 60 -method permutation -perms 1000
//
// -adaptive switches permutation runs into sequential early stopping:
// -perms becomes the permutation budget, and rules whose correction fate
// is already decided retire from further counting after each round
// (-adaptive-min sets the first round size, -adaptive-exceed how many
// exceedances a rule needs before it may retire early; see DESIGN.md §7).
//
// A comma-separated -methods list reports several corrections from a
// single mine: the dataset is encoded, mined and scored once and only the
// corrections differ. (Holdout is the exception — it mines the
// exploratory half separately by construction, so listing it adds one
// extra, smaller mine.)
//
//	armine mine -uci german -minsup 60 -methods none,direct,permutation,layered
//
// Output: one rule per line, most significant first, with coverage,
// support, confidence and p-value; -json switches to machine-readable
// output (a JSON array with one entry per method run) on stdout — errors
// always go to stderr with a non-zero exit, never into the JSON stream.
// -cpuprofile and -memprofile write pprof profiles.
//
// Serving examples:
//
//	armine serve -addr :8080 -capacity 16 -timeout 2m
//	armine serve -preload census=data.csv -preload german=uci:german
//	armine serve -shards 3 -shard-peers http://h1:8080,http://h2:8080
//	armine serve -store-dir /var/lib/armine
//
// With -store-dir uploads stream into immutable segment stores under
// that directory instead of in-memory sessions (pre-discretized CSV
// only), existing stores are re-registered on restart, and
// POST /v1/datasets/{name}/append ingests CSV deltas as new segments.
//
// -shards splits permutation counting across coordinated shards (DESIGN.md
// §10); results are byte-identical to single-node runs. With -shard-peers
// the shards fan out over HTTP to peers holding the same datasets,
// otherwise they run in-process.
//
// See the repro package docs (api.go) for the endpoint table.
//
// Benchmarking examples (see DESIGN.md §6 for the BENCH json schema):
//
//	armine bench -quick -rev $(git rev-parse --short HEAD)
//	armine bench -in data.csv -minsup 60 -perms 100,1000 -workers 1,0 \
//	    -baseline BENCH_prev.json -out BENCH_cur.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain dispatches to a subcommand; bare flags select "mine" for
// backward compatibility. Errors go to stderr with exit 1 — stdout carries
// only the requested report (text or JSON).
func realMain(args []string, stdout, stderr io.Writer) int {
	cmd, rest := "mine", args
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, rest = args[0], args[1:]
	}
	var err error
	switch cmd {
	case "mine":
		err = runMine(rest, stdout, stderr)
	case "serve":
		err = runServe(rest, stderr)
	case "bench":
		err = runBench(rest, stdout, stderr)
	case "convert":
		err = runConvert(rest, stdout, stderr)
	case "help":
		usage(stdout)
	default:
		err = fmt.Errorf("unknown command %q (want mine, serve, bench or convert)", cmd)
	}
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	case errors.Is(err, errUsage):
		// The flag set already reported the problem on stderr.
		return 1
	default:
		fmt.Fprintln(stderr, "armine:", err)
		return 1
	}
}

// errUsage marks a flag-parse failure already reported by the flag set.
var errUsage = errors.New("usage error")

func usage(w io.Writer) {
	fmt.Fprintln(w, `armine — significant class association rule mining

  armine mine    [flags]   one-shot mining run ("armine -in ..." also works)
  armine serve   [flags]   HTTP mining service
  armine bench   [flags]   permutation-engine benchmarks -> BENCH_<rev>.json
  armine convert [flags]   CSV -> on-disk segment store for out-of-core mining

Run "armine mine -h", "armine serve -h", "armine bench -h" or
"armine convert -h" for flags.`)
}

// parseArgs runs fs over args, normalizing help and parse failures.
func parseArgs(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp
		}
		return errUsage
	}
	return nil
}

// mineFlags bundles the mine subcommand's flag set with its parsed
// values. Flag registration lives in one constructor per subcommand so
// the README drift test can assert documented flags against the real
// sets.
type mineFlags struct {
	fs                         *flag.FlagSet
	in, uciName, store         *string
	minSup                     *int
	minSupFrac, minConf, alpha *float64
	control, method, methods   *string
	perms, workers, maxLen     *int
	shards                     *int
	adaptive                   *bool
	adaptMin, adaptExceed      *int
	seed                       *uint64
	limit                      *int
	jsonOut, quiet             *bool
	cpuProf, memProf           *string
}

func newMineFlags(stderr io.Writer) *mineFlags {
	fs := flag.NewFlagSet("mine", flag.ContinueOnError)
	fs.SetOutput(stderr)
	return &mineFlags{
		fs:         fs,
		in:         fs.String("in", "", "input CSV file (header row, class label last)"),
		uciName:    fs.String("uci", "", "use a built-in UCI stand-in instead of -in (adult|german|hypo|mushroom)"),
		store:      fs.String("store", "", "mine an on-disk segment store directory (see \"armine convert\") instead of -in/-uci; the dataset is never loaded whole into memory"),
		minSup:     fs.Int("minsup", 0, "absolute minimum support"),
		minSupFrac: fs.Float64("minsup-frac", 0, "relative minimum support (fraction of records)"),
		minConf:    fs.Float64("minconf", 0, "minimum confidence (domain filter; default 0)"),
		alpha:      fs.Float64("alpha", 0.05, "error level"),
		control:    fs.String("control", "fwer", "error measure: fwer | fdr"),
		method:     fs.String("method", "direct", "correction: none | direct | permutation | holdout | layered"),
		methods:    fs.String("methods", "", "comma-separated corrections sharing a single mine (overrides -method; holdout mines its exploratory half separately), e.g. none,direct,permutation"),
		perms:      fs.Int("perms", 1000, "permutations for permutation runs"),
		adaptive:   fs.Bool("adaptive", false, "sequential early-stopping permutation testing: -perms becomes the budget and decided rules retire from counting early (DESIGN.md 7)"),
		adaptMin:   fs.Int("adaptive-min", 0, "first adaptive round size (0 = default 100)"),
		adaptExceed: fs.Int("adaptive-exceed", 0,
			"exceedances a rule needs before early retirement (0 = default 20, negative = never retire)"),
		seed:    fs.Uint64("seed", 1, "random seed (permutations, holdout split, stand-ins)"),
		workers: fs.Int("workers", 0, "worker goroutines for mining and permutations (0 = all CPUs)"),
		shards:  fs.Int("shards", 0, "split permutation counting across this many coordinated shards (0 or 1 = single-node; results are byte-identical)"),
		maxLen:  fs.Int("maxlen", 0, "maximum rule LHS length (0 = unlimited)"),
		limit:   fs.Int("limit", 50, "print at most this many rules per run (0 = all)"),
		jsonOut: fs.Bool("json", false, "emit a JSON array (one entry per method run) instead of text"),
		cpuProf: fs.String("cpuprofile", "", "write a pprof CPU profile of the mining to this file"),
		memProf: fs.String("memprofile", "", "write a pprof heap profile after mining to this file"),
		quiet:   fs.Bool("q", false, "print rules only, no summaries"),
	}
}

func runMine(args []string, stdout, stderr io.Writer) error {
	f := newMineFlags(stderr)
	if err := parseArgs(f.fs, args); err != nil {
		return err
	}
	if f.fs.NArg() > 0 {
		// flag parsing stops at the first positional: anything after it
		// would be silently dropped, so reject rather than misbehave.
		return fmt.Errorf("mine takes no positional arguments, got %q", f.fs.Arg(0))
	}

	base := repro.Config{
		MinSup:       *f.minSup,
		MinSupFrac:   *f.minSupFrac,
		MinConf:      *f.minConf,
		Alpha:        *f.alpha,
		Permutations: *f.perms,
		Seed:         *f.seed,
		Workers:      *f.workers,
		MaxLen:       *f.maxLen,
		Shards:       *f.shards,
	}
	if *f.adaptive {
		base.Adaptive = repro.Adaptive{
			MinPerms:    *f.adaptMin,
			MaxPerms:    *f.perms,
			Exceedances: *f.adaptExceed,
		}
	}
	var err error
	if base.Control, err = repro.ParseControl(*f.control); err != nil {
		return err
	}

	// Validate the whole method list up front — before any dataset load or
	// mining — so a typo in -methods fails fast instead of surfacing after
	// minutes of work (and never leaks into a -json stream).
	names := []string{*f.method}
	if *f.methods != "" {
		names = strings.Split(*f.methods, ",")
	}
	cfgs := make([]repro.Config, len(names))
	for i, name := range names {
		cfg := base
		if err := setMethod(&cfg, name); err != nil {
			return err
		}
		cfgs[i] = cfg
	}

	var sess *repro.Session
	if *f.store != "" {
		if *f.in != "" || *f.uciName != "" {
			return fmt.Errorf("use either -store or -in/-uci, not both")
		}
		st, err := repro.OpenStore(*f.store)
		if err != nil {
			return err
		}
		sess = repro.NewStoreSession(st)
	} else {
		d, err := loadDataset(*f.in, *f.uciName, *f.seed)
		if err != nil {
			return err
		}
		sess = repro.NewSession(d)
	}

	if *f.cpuProf != "" {
		pf, err := os.Create(*f.cpuProf)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	results, err := sess.MineBatch(context.Background(), cfgs)
	if err != nil {
		return err
	}

	if *f.memProf != "" {
		pf, err := os.Create(*f.memProf)
		if err != nil {
			return err
		}
		defer pf.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(pf); err != nil {
			return err
		}
	}

	if *f.jsonOut {
		return printJSON(stdout, results, *f.limit)
	}
	printText(stdout, sess.Schema().Class.Name, results, *f.limit, *f.quiet)
	if !*f.quiet && len(results) > 1 {
		st := sess.Stats()
		line := fmt.Sprintf("# session: %d mine(s) + %d score(s)", st.Mines, st.Scores)
		if st.Holdouts > 0 {
			line += fmt.Sprintf(" + %d holdout run(s)", st.Holdouts)
		}
		fmt.Fprintf(stdout, "%s served %d method runs\n", line, len(results))
	}
	return nil
}

// preloads collects repeated -preload name=path flags.
type preloads []struct{ name, path string }

func (p *preloads) set(spec string) error {
	name, path, ok := strings.Cut(spec, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("invalid -preload %q (want name=path.csv or name=uci:standin)", spec)
	}
	*p = append(*p, struct{ name, path string }{name, path})
	return nil
}

// serveFlags bundles the serve subcommand's flag set with its parsed
// values.
type serveFlags struct {
	fs                             *flag.FlagSet
	addr                           *string
	capacity, treeCache, ruleCache *int
	timeout, drain                 *time.Duration
	maxUpload                      *int64
	seed                           *uint64
	shards                         *int
	shardPeers, storeDir           *string
	pre                            *preloads
}

func newServeFlags(stderr io.Writer) *serveFlags {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	f := &serveFlags{
		fs:        fs,
		addr:      fs.String("addr", ":8080", "listen address"),
		capacity:  fs.Int("capacity", 0, "max registered datasets; the LRU session is evicted past this (0 = default 16)"),
		timeout:   fs.Duration("timeout", 2*time.Minute, "per-request mining deadline (negative = none)"),
		treeCache: fs.Int("tree-cache", 0, "per-session mined-tree cache entries (0 = default, negative = unbounded)"),
		ruleCache: fs.Int("rule-cache", 0, "per-session scored-rule cache entries (0 = default, negative = unbounded)"),
		maxUpload: fs.Int64("max-upload", 0, "max CSV upload bytes (0 = default 64 MiB)"),
		drain:     fs.Duration("drain", 30*time.Second, "max wait for in-flight mining on shutdown"),
		seed:      fs.Uint64("seed", 1, "seed for uci: preloads"),
		shards:    fs.Int("shards", 0, "default shard count for permutation runs whose config leaves shards unset (0 or 1 = single-node)"),
		shardPeers: fs.String("shard-peers", "",
			"comma-separated peer base URLs holding the same datasets; sharded runs fan out to their /shard endpoints (empty = shard in-process)"),
		storeDir: fs.String("store-dir", "",
			"serve datasets out-of-core: uploads stream into segment stores under this directory (pre-discretized CSV only), existing stores are re-served on restart, and POST .../append grows them (empty = in-memory sessions)"),
		pre: &preloads{},
	}
	fs.Func("preload", "register a dataset at startup: name=path.csv or name=uci:standin (repeatable)", f.pre.set)
	return f
}

func runServe(args []string, stderr io.Writer) error {
	f := newServeFlags(stderr)
	fs := f.fs
	if err := parseArgs(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve takes no positional arguments, got %q", fs.Arg(0))
	}

	logger := log.New(stderr, "", log.LstdFlags)
	reg := repro.NewRegistry(*f.capacity, repro.CacheLimits{MaxTrees: *f.treeCache, MaxRules: *f.ruleCache})
	for _, p := range *f.pre {
		var d *repro.Dataset
		var err error
		if uciName, ok := strings.CutPrefix(p.path, "uci:"); ok {
			d, err = repro.UCIStandIn(uciName, *f.seed)
		} else {
			d, err = repro.LoadCSVFile(p.path)
		}
		if err != nil {
			return fmt.Errorf("preloading %s: %w", p.name, err)
		}
		if _, err := reg.Register(p.name, d); err != nil {
			return err
		}
		logger.Printf("armine: preloaded dataset %q (%d records)", p.name, d.NumRecords())
	}

	var peers []string
	if *f.shardPeers != "" {
		peers = strings.Split(*f.shardPeers, ",")
	}
	srv := repro.NewServer(reg, repro.ServeOptions{
		Addr:           *f.addr,
		Timeout:        *f.timeout,
		MaxUploadBytes: *f.maxUpload,
		Log:            logger,
		DefaultShards:  *f.shards,
		ShardPeers:     peers,
		StoreDir:       *f.storeDir,
	})
	if err := srv.LoadStores(); err != nil {
		return fmt.Errorf("loading stores from %s: %w", *f.storeDir, err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		logger.Printf("armine: shutting down, draining in-flight requests (max %v)", *f.drain)
		shCtx, cancel := context.WithTimeout(context.Background(), *f.drain)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return <-errCh
	}
}

// setMethod applies one -method/-methods name to cfg.
func setMethod(cfg *repro.Config, name string) error {
	m, err := repro.ParseMethod(name)
	if err != nil {
		return err
	}
	cfg.Method = m
	if m == repro.MethodHoldout {
		cfg.HoldoutRandom = true
	}
	return nil
}

// printText renders the classic line-per-rule report, one block per run.
// className labels the rule consequents (store-backed sessions have no
// in-memory dataset, only a schema).
func printText(w io.Writer, className string, results []*repro.Result, limit int, quiet bool) {
	for _, res := range results {
		if !quiet {
			fmt.Fprintf(w, "# %d records, %d rules tested (min_sup=%d), method=%s control=%s alpha=%g\n",
				res.NumRecords, res.NumTested, res.MinSup, res.Method, res.Control, res.Alpha)
			fmt.Fprintf(w, "# %d significant rules, cutoff p <= %.4g, mine %v + correct %v\n",
				len(res.Significant), res.Cutoff, res.MineTime.Round(1e6), res.CorrectTime.Round(1e6))
			if res.Perm != nil {
				fmt.Fprintf(w, "# adaptive: %d round(s), %d/%d perms run, %d/%d rules retired, %d rule-perm evals saved\n",
					res.Perm.Rounds, res.Perm.PermsRun, res.Perm.MaxPerms,
					res.Perm.RulesRetired, res.NumTested, res.Perm.PermsSaved)
			}
		}
		n := len(res.Significant)
		if limit > 0 && n > limit {
			n = limit
		}
		for _, r := range res.Significant[:n] {
			fmt.Fprintf(w, "%s => %s=%s  cvg=%d supp=%d conf=%.3f p=%.4g\n",
				strings.Join(r.Items, " ^ "), className, r.Class,
				r.Coverage, r.Support, r.Confidence, r.P)
		}
		if !quiet && n < len(res.Significant) {
			fmt.Fprintf(w, "# ... %d more (raise -limit)\n", len(res.Significant)-n)
		}
	}
}

// printJSON emits one array entry per run, rules truncated to limit, using
// the same wire form the HTTP service serves.
func printJSON(w io.Writer, results []*repro.Result, limit int) error {
	runs := make([]repro.RunJSON, len(results))
	for i, res := range results {
		runs[i] = repro.EncodeRun(res, limit)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(runs)
}

func loadDataset(in, uciName string, seed uint64) (*repro.Dataset, error) {
	switch {
	case in != "" && uciName != "":
		return nil, fmt.Errorf("use either -in or -uci, not both")
	case in != "":
		return repro.LoadCSVFile(in)
	case uciName != "":
		return repro.UCIStandIn(uciName, seed)
	default:
		return nil, fmt.Errorf("need -in FILE or -uci NAME")
	}
}
