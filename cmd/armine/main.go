// Command armine mines statistically significant class association rules
// from a CSV file (header row; the LAST column is the class label; numeric
// columns are discretized automatically with Fayyad–Irani).
//
// Examples:
//
//	armine -in data.csv -minsup-frac 0.05 -control fdr -method direct
//	armine -in data.csv -minsup 60 -method permutation -perms 1000
//	armine -uci german -minsup 60 -method holdout -control fwer
//
// A comma-separated -methods list reports several corrections from a
// single mine: the dataset is encoded, mined and scored once and only the
// corrections differ. (Holdout is the exception — it mines the
// exploratory half separately by construction, so listing it adds one
// extra, smaller mine.)
//
//	armine -uci german -minsup 60 -methods none,direct,permutation,layered
//
// Output: one rule per line, most significant first, with coverage,
// support, confidence and p-value; -json switches to machine-readable
// output (a JSON array with one entry per method run). -cpuprofile and
// -memprofile write pprof profiles for production-style inspection.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "armine:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		in         = flag.String("in", "", "input CSV file (header row, class label last)")
		uciName    = flag.String("uci", "", "use a built-in UCI stand-in instead of -in (adult|german|hypo|mushroom)")
		minSup     = flag.Int("minsup", 0, "absolute minimum support")
		minSupFrac = flag.Float64("minsup-frac", 0, "relative minimum support (fraction of records)")
		minConf    = flag.Float64("minconf", 0, "minimum confidence (domain filter; default 0)")
		alpha      = flag.Float64("alpha", 0.05, "error level")
		control    = flag.String("control", "fwer", "error measure: fwer | fdr")
		method     = flag.String("method", "direct", "correction: none | direct | permutation | holdout | layered")
		methods    = flag.String("methods", "", "comma-separated corrections sharing a single mine (overrides -method; holdout mines its exploratory half separately), e.g. none,direct,permutation")
		perms      = flag.Int("perms", 1000, "permutations for permutation runs")
		seed       = flag.Uint64("seed", 1, "random seed (permutations, holdout split, stand-ins)")
		workers    = flag.Int("workers", 0, "worker goroutines for mining and permutations (0 = all CPUs)")
		maxLen     = flag.Int("maxlen", 0, "maximum rule LHS length (0 = unlimited)")
		limit      = flag.Int("limit", 50, "print at most this many rules per run (0 = all)")
		jsonOut    = flag.Bool("json", false, "emit a JSON array (one entry per method run) instead of text")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile of the mining to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile after mining to this file")
		quiet      = flag.Bool("q", false, "print rules only, no summaries")
	)
	flag.Parse()

	d, err := loadDataset(*in, *uciName, *seed)
	if err != nil {
		return err
	}

	base := repro.Config{
		MinSup:       *minSup,
		MinSupFrac:   *minSupFrac,
		MinConf:      *minConf,
		Alpha:        *alpha,
		Permutations: *perms,
		Seed:         *seed,
		Workers:      *workers,
		MaxLen:       *maxLen,
	}
	switch strings.ToLower(*control) {
	case "fwer":
		base.Control = repro.ControlFWER
	case "fdr":
		base.Control = repro.ControlFDR
	default:
		return fmt.Errorf("unknown -control %q (want fwer or fdr)", *control)
	}

	names := []string{*method}
	if *methods != "" {
		names = strings.Split(*methods, ",")
	}
	cfgs := make([]repro.Config, len(names))
	for i, name := range names {
		cfg := base
		if err := setMethod(&cfg, name); err != nil {
			return err
		}
		cfgs[i] = cfg
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	sess := repro.NewSession(d)
	results, err := sess.MineBatch(context.Background(), cfgs)
	if err != nil {
		return err
	}

	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}

	if *jsonOut {
		return printJSON(d, results, *limit)
	}
	printText(d, results, *limit, *quiet)
	if !*quiet && len(results) > 1 {
		st := sess.Stats()
		line := fmt.Sprintf("# session: %d mine(s) + %d score(s)", st.Mines, st.Scores)
		if st.Holdouts > 0 {
			line += fmt.Sprintf(" + %d holdout run(s)", st.Holdouts)
		}
		fmt.Printf("%s served %d method runs\n", line, len(results))
	}
	return nil
}

// setMethod applies one -method/-methods name to cfg.
func setMethod(cfg *repro.Config, name string) error {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "none":
		cfg.Method = repro.MethodNone
	case "direct":
		cfg.Method = repro.MethodDirect
	case "permutation":
		cfg.Method = repro.MethodPermutation
	case "holdout":
		cfg.Method = repro.MethodHoldout
		cfg.HoldoutRandom = true
	case "layered":
		cfg.Method = repro.MethodLayered
	default:
		return fmt.Errorf("unknown method %q (want none|direct|permutation|holdout|layered)", name)
	}
	return nil
}

// printText renders the classic line-per-rule report, one block per run.
func printText(d *repro.Dataset, results []*repro.Result, limit int, quiet bool) {
	for _, res := range results {
		if !quiet {
			fmt.Printf("# %d records, %d rules tested (min_sup=%d), method=%s control=%s alpha=%g\n",
				res.NumRecords, res.NumTested, res.MinSup, res.Method, res.Control, res.Alpha)
			fmt.Printf("# %d significant rules, cutoff p <= %.4g, mine %v + correct %v\n",
				len(res.Significant), res.Cutoff, res.MineTime.Round(1e6), res.CorrectTime.Round(1e6))
		}
		n := len(res.Significant)
		if limit > 0 && n > limit {
			n = limit
		}
		for _, r := range res.Significant[:n] {
			fmt.Printf("%s => %s=%s  cvg=%d supp=%d conf=%.3f p=%.4g\n",
				strings.Join(r.Items, " ^ "), d.Schema.Class.Name, r.Class,
				r.Coverage, r.Support, r.Confidence, r.P)
		}
		if !quiet && n < len(res.Significant) {
			fmt.Printf("# ... %d more (raise -limit)\n", len(res.Significant)-n)
		}
	}
}

// jsonRule is the machine-readable form of one significant rule.
type jsonRule struct {
	Items      []string `json:"items"`
	Class      string   `json:"class"`
	Coverage   int      `json:"coverage"`
	Support    int      `json:"support"`
	Confidence float64  `json:"confidence"`
	P          float64  `json:"p"`
}

// jsonRun is the machine-readable form of one method run.
type jsonRun struct {
	Method         string     `json:"method"`
	Control        string     `json:"control"`
	Alpha          float64    `json:"alpha"`
	MinSup         int        `json:"min_sup"`
	NumRecords     int        `json:"num_records"`
	NumPatterns    int        `json:"num_patterns"`
	NumTested      int        `json:"num_tested"`
	NumSignificant int        `json:"num_significant"`
	Cutoff         float64    `json:"cutoff"`
	MineMillis     float64    `json:"mine_ms"`
	CorrectMillis  float64    `json:"correct_ms"`
	Rules          []jsonRule `json:"rules"`
}

// printJSON emits one array entry per run, rules truncated to limit.
func printJSON(d *repro.Dataset, results []*repro.Result, limit int) error {
	runs := make([]jsonRun, len(results))
	for i, res := range results {
		run := jsonRun{
			Method:         res.Method.String(),
			Control:        res.Control.String(),
			Alpha:          res.Alpha,
			MinSup:         res.MinSup,
			NumRecords:     res.NumRecords,
			NumPatterns:    res.NumPatterns,
			NumTested:      res.NumTested,
			NumSignificant: len(res.Significant),
			Cutoff:         res.Cutoff,
			MineMillis:     float64(res.MineTime.Microseconds()) / 1e3,
			CorrectMillis:  float64(res.CorrectTime.Microseconds()) / 1e3,
			Rules:          []jsonRule{},
		}
		n := len(res.Significant)
		if limit > 0 && n > limit {
			n = limit
		}
		for _, r := range res.Significant[:n] {
			run.Rules = append(run.Rules, jsonRule{
				Items:      r.Items,
				Class:      r.Class,
				Coverage:   r.Coverage,
				Support:    r.Support,
				Confidence: r.Confidence,
				P:          r.P,
			})
		}
		runs[i] = run
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(runs)
}

func loadDataset(in, uciName string, seed uint64) (*repro.Dataset, error) {
	switch {
	case in != "" && uciName != "":
		return nil, fmt.Errorf("use either -in or -uci, not both")
	case in != "":
		return repro.LoadCSVFile(in)
	case uciName != "":
		return repro.UCIStandIn(uciName, seed)
	default:
		return nil, fmt.Errorf("need -in FILE or -uci NAME")
	}
}
