package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/colstore"
	"repro/internal/disc"
)

// convertFlags bundles the convert subcommand's flag set with its parsed
// values.
type convertFlags struct {
	fs         *flag.FlagSet
	in, out    *string
	segRecords *int
	force      *bool
	discretize *bool
	quiet      *bool
}

func newConvertFlags(stderr io.Writer) *convertFlags {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	return &convertFlags{
		fs:         fs,
		in:         fs.String("in", "", "input CSV file (header row, class label last)"),
		out:        fs.String("out", "", "store directory to create"),
		segRecords: fs.Int("seg-records", 0, "records per segment file (0 = default 8192)"),
		force:      fs.Bool("force", false, "replace an existing store at -out"),
		discretize: fs.Bool("discretize", false,
			"load the CSV in memory and discretize numeric columns (Fayyad-Irani) before writing; needed when the CSV has numeric columns, at the cost of streaming"),
		quiet: fs.Bool("q", false, "no summary line"),
	}
}

// runConvert ingests a CSV into an on-disk segment store. The default
// path streams — peak memory is one segment regardless of input size —
// but can only accept categorical data, because segment bitmaps are
// immutable once written and numeric columns need supervised
// discretization over the whole column. -discretize trades streaming
// for that: load, discretize, then write the store from memory.
func runConvert(args []string, stdout, stderr io.Writer) error {
	f := newConvertFlags(stderr)
	if err := parseArgs(f.fs, args); err != nil {
		return err
	}
	if f.fs.NArg() > 0 {
		return fmt.Errorf("convert takes no positional arguments, got %q", f.fs.Arg(0))
	}
	if *f.in == "" || *f.out == "" {
		return fmt.Errorf("convert needs -in FILE and -out DIR")
	}
	if _, err := os.Stat(filepath.Join(*f.out, colstore.ManifestName)); err == nil {
		if !*f.force {
			return fmt.Errorf("%s already holds a store (use -force to replace)", *f.out)
		}
		if err := repro.RemoveStore(*f.out); err != nil {
			return err
		}
	}

	opts := repro.StoreOptions{SegRecords: *f.segRecords}
	var st *repro.Store
	if *f.discretize {
		d, err := repro.LoadCSVFile(*f.in)
		if err != nil {
			return err
		}
		if st, err = repro.StoreFromDataset(*f.out, d, opts); err != nil {
			return err
		}
	} else {
		in, err := os.Open(*f.in)
		if err != nil {
			return err
		}
		defer in.Close()
		if st, err = repro.CreateStore(*f.out, in, opts); err != nil {
			return err
		}
		for _, a := range st.Schema().Attrs {
			if disc.NumericVocab(a.Values) {
				// Roll back: a store with raw numeric columns would be
				// rejected at every downstream mine anyway.
				if rmErr := repro.RemoveStore(*f.out); rmErr != nil {
					return fmt.Errorf("column %q is numeric (and removing the partial store failed: %v)", a.Name, rmErr)
				}
				return fmt.Errorf("column %q is numeric; segment bitmaps are immutable, so discretize at convert time with -discretize", a.Name)
			}
		}
	}
	if !*f.quiet {
		fmt.Fprintf(stdout, "armine: wrote store %s (%d records, %d segments)\n",
			*f.out, st.NumRecords(), st.NumSegments())
	}
	return nil
}
